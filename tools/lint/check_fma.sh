#!/bin/sh
# check_fma.sh — objdump gate on the AVX2 micro-kernel TU.
#
# The bit-identity contract (README "Runtime ISA dispatch") requires
# src/kernels/dispatch_avx2.cc to round twice per multiply-add
# (mul-round-add-round); a fused multiply-add rounds once. The build
# enforces this by compiling the TU with -mavx2 and never -mfma; this
# check enforces it from the other side: compile the TU standalone
# under the house flag sets, disassemble, and fail on ANY fused
# multiply-add mnemonic (vfmadd/vfmsub/vfnmadd/vfnmsub).
#
#   tools/lint/check_fma.sh              # the gate (CI, ctest -L lint)
#   tools/lint/check_fma.sh --self-test  # seed a violation (-mfma
#                                        # -ffp-contract=fast) and
#                                        # assert the detector fires
#
# Exit 0 = clean (or self-test detector fired); non-zero otherwise.
# Runs from the repo root. $CXX overrides the compiler (default c++).

set -eu

cd "$(dirname "$0")/../.."
CXX="${CXX:-c++}"
TU=src/kernels/dispatch_avx2.cc
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

FMA_RE='vfmadd|vfmsub|vfnmadd|vfnmsub'

# Disassemble $1.o, print count of fused-multiply-add instructions.
count_fma() {
    objdump -d "$1" | grep -cE "$FMA_RE" || true
}

# Sanity gate: the object must actually contain AVX2 code (ymm
# registers) — otherwise the TU compiled to the nullptr fallback and
# the FMA scan inspected nothing.
count_ymm() {
    objdump -d "$1" | grep -c '%ymm' || true
}

compile() {
    # $1 = output object, rest = extra flags
    out="$1"; shift
    "$CXX" -std=c++17 -c -Isrc "$@" "$TU" -o "$out"
}

if [ "${1:-}" = "--self-test" ]; then
    # Seed the violation the gate exists to catch: same TU, FMA ISA
    # enabled and contraction explicitly allowed. The detector MUST
    # fire — if it does not, the gate is blind and every green run
    # it ever produced is meaningless.
    compile "$WORK/seeded.o" -O2 -mavx2 -mfma -ffp-contract=fast
    n=$(count_fma "$WORK/seeded.o")
    if [ "$n" -eq 0 ]; then
        echo "check_fma SELF-TEST FAILED: compiled with -mfma" \
             "-ffp-contract=fast yet found 0 fused instructions —" \
             "the detector is blind" >&2
        exit 1
    fi
    echo "check_fma self-test OK: detector fired ($n fused" \
         "instructions in the seeded build)"
    exit 0
fi

status=0
for flags in "-O2 -mavx2" "-O2 -DNDEBUG -mavx2" "-O3 -DNDEBUG -mavx2"; do
    # shellcheck disable=SC2086
    compile "$WORK/gate.o" $flags
    ymm=$(count_ymm "$WORK/gate.o")
    if [ "$ymm" -eq 0 ]; then
        echo "check_fma: [$flags] produced no AVX2 code (0 ymm" \
             "references) — nothing was checked" >&2
        status=1
        continue
    fi
    n=$(count_fma "$WORK/gate.o")
    if [ "$n" -ne 0 ]; then
        echo "check_fma: [$flags] emitted $n fused multiply-add" \
             "instruction(s) in $TU — the mul-round-add-round" \
             "bit-identity contract is broken:" >&2
        objdump -d "$WORK/gate.o" | grep -E "$FMA_RE" | head -5 >&2
        status=1
    else
        echo "check_fma: [$flags] clean ($ymm ymm refs, 0 fused)"
    fi
done
exit $status
