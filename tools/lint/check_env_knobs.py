#!/usr/bin/env python3
"""check_env_knobs.py -- cross-check the SE_* env-knob and failpoint
registries against code, tests and docs.

A knob that exists in code but not in the README is invisible to
operators; one in the README but not in code is a lie; one nobody
tests is one refactor away from both. This check makes the four
surfaces agree by construction:

  1. every `getenv("SE_*")` knob in src/ is parsed (strictly) in
     RuntimeOptions::fromEnv (src/runtime/options.hh);
  2. every knob is exercised by at least one tests/*.cc;
  3. every knob is documented in README.md;
  4. every SE_* token README documents is a real knob (allowlist for
     non-knob tokens like the SE_SANITIZE CMake option);
  5. every failpoint site named in src/ (SE_FAILPOINT,
     SE_FAILPOINT_THROW, failpoint::evaluate) appears in >= 1 test
     AND in README's named-sites list;
  6. every site README names is a real site in src/.

Run from the repo root (the lint ctest entry and CI do). Exit 0 when
all six hold; 1 with a per-violation report otherwise.

    tools/lint/check_env_knobs.py              # the gate
    tools/lint/check_env_knobs.py --self-test  # seed violations,
                                               # assert they are caught
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent

# SE_* identifiers in README/code that are NOT runtime env knobs:
# build options, assertion macros, the failpoint macro names
# themselves, and C++ include guards / annotation macros.
KNOB_ALLOWLIST = {
    "SE_SANITIZE",   # CMake option, not an env var
    "SE_ASSERT",     # assertion macro
    "SE_FATAL",      # logging macro
    "SE_FAILPOINT",  # the macro, not a knob
    "SE_FAILPOINT_THROW",
    # Thread-safety annotation macros (base/thread_annotations.hh).
    "SE_CAPABILITY",
    "SE_SCOPED_CAPABILITY",
    "SE_GUARDED_BY",
    "SE_PT_GUARDED_BY",
    "SE_REQUIRES",
    "SE_ACQUIRE",
    "SE_RELEASE",
    "SE_TRY_ACQUIRE",
    "SE_EXCLUDES",
    "SE_ACQUIRED_BEFORE",
    "SE_ACQUIRED_AFTER",
    "SE_RETURN_CAPABILITY",
    "SE_NO_THREAD_SAFETY_ANALYSIS",
}

GETENV_RE = re.compile(r'getenv\("(SE_[A-Z_]+)"\)')
SITE_RE = re.compile(
    r'(?:SE_FAILPOINT(?:_THROW)?|evaluate)\("([a-z][a-z0-9_]*)"')
README_TOKEN_RE = re.compile(r"\bSE_[A-Z_]+\b")


def read(path):
    return path.read_text(encoding="utf-8", errors="replace")


def collect(root=ROOT):
    """Scan the tree once; return the raw registries."""
    src = sorted((root / "src").rglob("*.cc")) + sorted(
        (root / "src").rglob("*.hh"))
    tests = sorted((root / "tests").glob("*.cc"))
    readme = read(root / "README.md")
    src_text = {p: read(p) for p in src}
    tests_text = "\n".join(read(p) for p in tests)

    knobs = set()
    sites = set()
    for text in src_text.values():
        knobs.update(GETENV_RE.findall(text))
        sites.update(SITE_RE.findall(text))

    from_env = read(root / "src" / "runtime" / "options.hh")
    return {
        "knobs": knobs,
        "sites": sites,
        "from_env": from_env,
        "tests_text": tests_text,
        "readme": readme,
    }


def check(reg):
    """Return the list of violations (empty == clean)."""
    bad = []
    knobs = reg["knobs"]
    for knob in sorted(knobs):
        if knob not in reg["from_env"]:
            bad.append(
                f"knob {knob}: getenv'd in src/ but not parsed in "
                f"RuntimeOptions::fromEnv (src/runtime/options.hh)")
        if knob not in reg["tests_text"]:
            bad.append(f"knob {knob}: not exercised by any tests/*.cc")
        if knob not in reg["readme"]:
            bad.append(f"knob {knob}: not documented in README.md")

    documented = set(README_TOKEN_RE.findall(reg["readme"]))
    for token in sorted(documented - knobs - KNOB_ALLOWLIST):
        bad.append(
            f"README documents {token} but no src/ code reads it "
            f"(stale doc, or add it to KNOB_ALLOWLIST if it is not "
            f"an env knob)")

    for site in sorted(reg["sites"]):
        if not re.search(r'"%s"' % re.escape(site),
                         reg["tests_text"]):
            bad.append(
                f"failpoint site '{site}': no tests/*.cc arms or "
                f"names it")
        if f"`{site}`" not in reg["readme"]:
            bad.append(
                f"failpoint site '{site}': missing from README's "
                f"named-sites list (search for 'Named sites:')")

    # README sites that do not exist in code. Sites are written as
    # `backticked_lowercase` in the named-sites sentence; extract
    # just that sentence to avoid matching unrelated code spans.
    m = re.search(r"Named sites:(.*?)\.\s", reg["readme"], re.S)
    if not m:
        bad.append("README.md lost its 'Named sites:' list")
    else:
        for doc_site in re.findall(r"`([a-z][a-z0-9_]*)`", m.group(1)):
            if doc_site not in reg["sites"]:
                bad.append(
                    f"README names failpoint site '{doc_site}' but "
                    f"no src/ site evaluates it")
    return bad


def self_test():
    """Seed each violation class into a copy of the real registries
    and assert the checker reports it."""
    failures = []

    def expect(label, mutate, needle):
        reg = collect()
        mutate(reg)
        found = check(reg)
        if not any(needle in v for v in found):
            failures.append(
                f"self-test '{label}': seeded violation not "
                f"detected (wanted a report containing {needle!r})")

    expect("unparsed knob",
           lambda r: r["knobs"].add("SE_SELFTEST_BOGUS"),
           "SE_SELFTEST_BOGUS")
    expect("undocumented README token",
           lambda r: r.update(
               readme=r["readme"] + "\n`SE_SELFTEST_STALE` doc\n"),
           "SE_SELFTEST_STALE")
    expect("untested failpoint site",
           lambda r: r["sites"].add("selftest_bogus_site"),
           "selftest_bogus_site")
    expect("stale README site",
           lambda r: r.update(readme=r["readme"].replace(
               "Named sites: ",
               "Named sites: `selftest_stale_site`, ")),
           "selftest_stale_site")

    if failures:
        print("check_env_knobs SELF-TEST FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("check_env_knobs self-test OK: all 4 seeded violation "
          "classes detected")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    bad = check(collect())
    if bad:
        print(f"check_env_knobs: {len(bad)} violation(s):",
              file=sys.stderr)
        for v in bad:
            print("  " + v, file=sys.stderr)
        return 1
    reg = collect()
    print(f"check_env_knobs: OK ({len(reg['knobs'])} knobs, "
          f"{len(reg['sites'])} failpoint sites — all parsed, "
          f"tested and documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
