/**
 * @file
 * Quickstart: decompose one weight matrix with SmartExchange and
 * inspect the result — the 60-second tour of the core API.
 *
 * Usage: ./quickstart
 */

#include <cstdio>

#include "base/random.hh"
#include "core/smart_exchange.hh"
#include "linalg/linalg.hh"

int
main()
{
    using namespace se;

    // A weight matrix shaped like one 3x3-conv filter with 64 input
    // channels: (C*R) x S = 192 x 3, as in the paper's Fig. 9 example.
    Rng rng(7);
    Tensor w = randn({192, 3}, rng, 0.0f, 0.05f);

    // Decompose: W ~= Ce * B with sparse, power-of-2 Ce.
    core::SeOptions opts;
    opts.coefBits = 4;          // 4-bit coefficients
    opts.basisBits = 8;         // 8-bit basis
    opts.vectorThreshold = 0.02;
    core::SeTrace trace;
    core::SeMatrix se = core::decomposeMatrix(w, opts, &trace);

    std::printf("SmartExchange quickstart\n");
    std::printf("  W: %lld x %lld (FP32: %lld bits)\n",
                (long long)w.dim(0), (long long)w.dim(1),
                (long long)(w.size() * 32));
    std::printf("  iterations: %d\n", se.iterations);
    std::printf("  relative reconstruction error: %.4f\n",
                se.reconRelError);
    std::printf("  Ce vector sparsity: %.1f%%  element sparsity:"
                " %.1f%%\n",
                100.0 * se.vectorSparsity(),
                100.0 * se.elementSparsity());
    const long long stored =
        (long long)(se.ceStorageBits(opts.coefBits) +
                    se.basisStorageBits(opts.basisBits));
    std::printf("  stored: %lld bits (Ce+index %lld, B %lld)\n",
                stored, (long long)se.ceStorageBits(opts.coefBits),
                (long long)se.basisStorageBits(opts.basisBits));
    std::printf("  compression rate: %.1fx\n",
                (double)(w.size() * 32) / (double)stored);

    // Every non-zero Ce entry is +-2^p: show a few.
    std::printf("  sample Ce row 0: [%g, %g, %g]\n", se.ce.at(0, 0),
                se.ce.at(0, 1), se.ce.at(0, 2));
    std::printf("  basis B row 0:   [%g, %g, %g]\n", se.basis.at(0, 0),
                se.basis.at(0, 1), se.basis.at(0, 2));

    // Rebuild the weights the way the accelerator's RE does.
    Tensor rebuilt = se.reconstruct();
    std::printf("  ||W - CeB||_F / ||W||_F = %.4f\n",
                linalg::frobDiff(w, rebuilt) /
                    linalg::frobNorm(w));
    return 0;
}
