/**
 * @file
 * Accelerator comparison: run the seven paper-scale benchmark models
 * through the SmartExchange accelerator and the four baselines and
 * print energy / latency / DRAM-access comparisons (the Fig. 10-12
 * protocol in one program).
 *
 * Usage: ./accelerator_compare
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "accel/annotate.hh"
#include "accel/baselines.hh"
#include "accel/smartexchange_accel.hh"
#include "base/table.hh"

int
main()
{
    using namespace se;

    std::vector<accel::AcceleratorPtr> accs;
    accs.push_back(std::make_unique<accel::DianNao>());
    accs.push_back(std::make_unique<accel::Scnn>());
    accs.push_back(std::make_unique<accel::CambriconX>());
    accs.push_back(std::make_unique<accel::BitPragmatic>());
    accs.push_back(std::make_unique<accel::SmartExchangeAccel>());

    for (models::ModelId id : models::acceleratorBenchmarkModels()) {
        auto w = accel::annotatedWorkload(id);
        std::printf("\n%s on %s (%lld conv-ish layers, %.2f GMACs)\n",
                    w.name.c_str(), w.dataset.c_str(),
                    (long long)w.layers.size(),
                    (double)w.totalMacs() / 1e9);
        Table t({"accelerator", "energy(mJ)", "latency(ms@1GHz)",
                 "DRAM(MB)", "vs DianNao energy", "vs DianNao speed"});
        double dn_energy = 0.0;
        int64_t dn_cycles = 0;
        for (const auto &acc : accs) {
            // SCNN cannot run the squeeze-excite network (paper
            // protocol: Eff-B0 excluded for SCNN).
            if (acc->name() == "SCNN" &&
                id == models::ModelId::EfficientNetB0)
                continue;
            auto st = acc->runNetwork(w, /*include_fc=*/false);
            if (acc->name() == "DianNao") {
                dn_energy = st.totalEnergyPj();
                dn_cycles = st.cycles;
            }
            t.row()
                .cell(acc->name())
                .cell(st.totalEnergyPj() / 1e9, 3)
                .cell((double)st.cycles / 1e6, 3)
                .cell((double)st.dramAccessBytes() / 1e6, 2)
                .cell(dn_energy / st.totalEnergyPj(), 2)
                .cell((double)dn_cycles / (double)st.cycles, 2);
        }
        t.print();
    }
    return 0;
}
