/**
 * @file
 * Accelerator comparison: run the seven paper-scale benchmark models
 * through the SmartExchange accelerator and the four baselines and
 * print energy / latency / DRAM-access comparisons (the Fig. 10-12
 * protocol in one program).
 *
 * Usage: ./accelerator_compare
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "accel/annotate.hh"
#include "accel/baselines.hh"
#include "accel/smartexchange_accel.hh"
#include "base/table.hh"
#include "runtime/sim_driver.hh"

int
main()
{
    using namespace se;

    std::vector<accel::AcceleratorPtr> accs;
    accs.push_back(std::make_unique<accel::DianNao>());
    accs.push_back(std::make_unique<accel::Scnn>());
    accs.push_back(std::make_unique<accel::CambriconX>());
    accs.push_back(std::make_unique<accel::BitPragmatic>());
    accs.push_back(std::make_unique<accel::SmartExchangeAccel>());

    auto ids = models::acceleratorBenchmarkModels();
    std::vector<sim::Workload> workloads;
    for (auto id : ids)
        workloads.push_back(accel::annotatedWorkload(id));

    // The whole 5-accelerator x 7-model grid in one batched sweep.
    // SCNN cannot run the squeeze-excite network (paper protocol:
    // Eff-B0 excluded for SCNN).
    runtime::RuntimeOptions ro;
    ro.threads = -1;  // one worker per core
    runtime::SimDriver driver(ro);
    auto cells = driver.sweep(
        accs, workloads, /*include_fc=*/false,
        [&](size_t ai, size_t wi) {
            return accs[ai]->name() == "SCNN" &&
                   ids[wi] == models::ModelId::EfficientNetB0;
        });

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const auto &w = workloads[wi];
        std::printf("\n%s on %s (%lld conv-ish layers, %.2f GMACs)\n",
                    w.name.c_str(), w.dataset.c_str(),
                    (long long)w.layers.size(),
                    (double)w.totalMacs() / 1e9);
        Table t({"accelerator", "energy(mJ)", "latency(ms@1GHz)",
                 "DRAM(MB)", "vs DianNao energy", "vs DianNao speed"});
        const auto &dn = cells[0][wi].stats;  // row 0 is DianNao
        for (size_t ai = 0; ai < accs.size(); ++ai) {
            if (!cells[ai][wi].run)
                continue;
            const auto &st = cells[ai][wi].stats;
            t.row()
                .cell(accs[ai]->name())
                .cell(st.totalEnergyPj() / 1e9, 3)
                .cell((double)st.cycles / 1e6, 3)
                .cell((double)st.dramAccessBytes() / 1e6, 2)
                .cell(dn.totalEnergyPj() / st.totalEnergyPj(), 2)
                .cell((double)dn.cycles / (double)st.cycles, 2);
        }
        t.print();
    }
    return 0;
}
