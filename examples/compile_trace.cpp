/**
 * @file
 * Software-hardware interface walkthrough (Fig. 7): build a model,
 * parse it into layer descriptors, compile it into tiling plans and a
 * controller instruction stream, and run the compiled workload on the
 * accelerator model.
 *
 * Usage: ./compile_trace
 */

#include <cstdio>

#include "accel/program_sim.hh"
#include "accel/smartexchange_accel.hh"
#include "base/table.hh"
#include "compiler/compiler.hh"
#include "compiler/parser.hh"
#include "models/zoo.hh"

int
main()
{
    using namespace se;

    // 1. PyTorch-stand-in: a live model from the zoo.
    models::SimConfig cfg;
    cfg.inHeight = cfg.inWidth = 16;
    auto net = models::buildSim(models::ModelId::MobileNetV2, cfg);

    // 2. Parser: extract layer types and dimensions.
    auto w = compiler::parseNetwork(*net, cfg.inChannels, cfg.inHeight,
                                    cfg.inWidth, "MobileNetV2-sim");
    std::printf("parsed %zu weight-bearing layers, %.1f MMACs\n\n",
                w.layers.size(), (double)w.totalMacs() / 1e6);

    // 3. Compiler: dataflow + tiling + instructions.
    auto hw = sim::ArrayConfig::bitSerialDefault();
    auto prog = compiler::compileNetwork(w, hw);

    Table t({"layer", "kind", "dataflow", "mT", "cT", "fT", "util",
             "input fits GB"});
    for (size_t i = 0; i < w.layers.size() && i < 12; ++i) {
        const auto &l = w.layers[i];
        const auto &p = prog.plans[i];
        const char *kind =
            l.kind == sim::LayerKind::Conv ? "conv"
            : l.kind == sim::LayerKind::DepthwiseConv ? "dw-conv"
            : l.kind == sim::LayerKind::SqueezeExcite ? "sq-ex"
                                                      : "fc";
        const char *df =
            p.dataflow == compiler::Dataflow::RowStationary2d
                ? "row-stationary"
            : p.dataflow == compiler::Dataflow::DepthwiseRemapped
                ? "dw-remapped"
                : "fc-clustered";
        t.row()
            .cell(l.name)
            .cell(kind)
            .cell(df)
            .cell(p.mTiles)
            .cell(p.cTiles)
            .cell(p.fTiles)
            .cell(p.utilization, 2)
            .cell(p.inputFitsGb ? "yes" : "no");
    }
    t.print();

    std::printf("\ninstruction stream head (%zu instructions "
                "total):\n%s\n",
                prog.instructions.size(),
                compiler::disassemble(prog, 14).c_str());

    // 4. Run the compiled workload on the accelerator model.
    accel::SmartExchangeAccel acc;
    auto st = acc.runNetwork(w, true);
    std::printf("accelerator model on the parsed workload: "
                "%.3f uJ, %lld cycles, %.1f KB DRAM\n",
                st.totalEnergyPj() / 1e6, (long long)st.cycles,
                (double)st.dramAccessBytes() / 1e3);

    // 5. Execute the instruction stream on the program simulator.
    auto pst = accel::simulateProgram(prog, w, hw);
    std::printf("program simulator: %lld cycles "
                "(compute util %.0f%%, read-DRAM util %.0f%%, "
                "stalls %lld)\n",
                (long long)pst.totalCycles,
                100.0 * pst.computeUtilization(),
                100.0 * pst.dramUtilization(),
                (long long)pst.stallCycles);
    return 0;
}
