/**
 * @file
 * End-to-end serving demo: train-free compression of a zoo model into
 * SmartExchange form, ship it through the binary model file, then
 * stand up a ServeEngine and push synthetic traffic through it —
 * the software mirror of deploying Ce*B weights to the accelerator.
 *
 * Usage: ./serve_demo [model] [requests] [threads] [max_batch]
 *   model ∈ {vgg11, vgg19, resnet50, resnet164, mobilenetv2}
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "base/hash.hh"
#include "base/random.hh"
#include "models/zoo.hh"
#include "runtime/pipeline.hh"
#include "serve/engine.hh"

using namespace se;

namespace {

models::ModelId
parseModel(const char *name)
{
    const struct
    {
        const char *key;
        models::ModelId id;
    } table[] = {
        {"vgg11", models::ModelId::VGG11},
        {"vgg19", models::ModelId::VGG19},
        {"resnet50", models::ModelId::ResNet50},
        {"resnet164", models::ModelId::ResNet164},
        {"mobilenetv2", models::ModelId::MobileNetV2},
    };
    for (const auto &e : table)
        if (std::strcmp(name, e.key) == 0)
            return e.id;
    std::fprintf(stderr, "unknown model '%s', using vgg19\n", name);
    return models::ModelId::VGG19;
}

} // namespace

int
main(int argc, char **argv)
{
    const models::ModelId id =
        parseModel(argc > 1 ? argv[1] : "vgg19");
    const int requests = argc > 2 ? std::atoi(argv[2]) : 48;
    serve::ServeOptions serve_opts;
    serve_opts.threads = argc > 3 ? std::atoi(argv[3]) : -1;
    serve_opts.maxBatch = argc > 4 ? (size_t)std::atoi(argv[4]) : 8;

    models::SimConfig cfg;
    cfg.inHeight = cfg.inWidth = 12;
    cfg.baseWidth = 8;
    cfg.seed = 7;

    // 1. Compress a fresh zoo model into shippable records (the
    //    per-matrix decompositions go through the pipeline's
    //    decomposition cache; compressToRecords itself is serial).
    std::printf("=== se::serve demo: %s ===\n",
                models::modelName(id).c_str());
    auto net = models::buildSim(id, cfg);
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    runtime::CompressionPipeline pipe(
        runtime::RuntimeOptions::fromEnv());
    auto compressed = core::compressToRecords(
        *net, se_opts, apply_opts,
        [&pipe](const Tensor &w, const core::SeOptions &o) {
            return pipe.cache().getOrCompute(w, o);
        });
    std::printf("compressed %zu layers, CR %.2fx, recon rel-err "
                "%.4f (worst layer)\n",
                compressed.records.size(),
                compressed.report.compressionRate(),
                [&] {
                    double worst = 0.0;
                    for (const auto &l : compressed.report.layers)
                        if (l.decomposed &&
                            l.reconRelError > worst)
                            worst = l.reconRelError;
                    return worst;
                }());

    // 2. Ship: save + reload the binary bundle (checksummed).
    const std::string path = "/tmp/serve_demo.sexm";
    core::saveModelFile(path, compressed.records);
    std::ifstream probe(path,
                        std::ios::binary | std::ios::ate);
    std::printf("model file: %s (%lld bytes)\n", path.c_str(),
                (long long)probe.tellg());
    auto records =
        std::make_shared<std::vector<core::SeLayerRecord>>(
            core::loadModelFile(path));

    // 3. Serve synthetic traffic.
    serve::ServeEngine engine(
        records, [&] { return models::buildSim(id, cfg); }, se_opts,
        apply_opts, serve_opts);
    std::printf("engine: %d replica(s), max batch %zu\n",
                engine.replicaCount(), serve_opts.maxBatch);

    Rng rng(99);
    std::vector<std::future<Tensor>> futs;
    futs.reserve((size_t)requests);
    for (int i = 0; i < requests; ++i)
        futs.push_back(engine.submit(randn(
            {cfg.inChannels, cfg.inHeight, cfg.inWidth}, rng, 0.0f,
            1.0f)));
    engine.drain();

    uint64_t digest = kFnvOffsetBasis;
    for (auto &f : futs)
        digest = hashTensor(f.get(), digest);

    const auto st = engine.stats();
    std::printf("served %llu requests in %llu batches "
                "(mean batch %.1f)\n",
                (unsigned long long)st.requests,
                (unsigned long long)st.batches, st.meanBatchSize);
    std::printf("latency ms: mean %.2f  p50 %.2f  p95 %.2f  "
                "p99 %.2f  max %.2f\n",
                st.meanLatencyMs, st.p50Ms, st.p95Ms, st.p99Ms,
                st.maxMs);
    std::printf("response digest: %016llx (thread/batch invariant)\n",
                (unsigned long long)digest);
    return 0;
}
