/**
 * @file
 * End-to-end serving demo: train-free compression of zoo models into
 * SmartExchange form, ship them through the binary model file, then
 * stand up a multi-model ServeFront and push synthetic traffic
 * through it — the software mirror of deploying Ce*B weights to a
 * fleet of accelerators.
 *
 * Also tours the failure semantics: a malformed request fails only
 * itself, a full queue sheds with AdmissionError, and a stopped
 * engine refuses with EngineStoppedError — nothing panics.
 *
 * Usage: ./serve_demo [models] [requests] [threads] [max_batch]
 *   models: comma-separated from {vgg11, vgg19, resnet50,
 *           resnet164, mobilenetv2}, e.g. "vgg19,mobilenetv2"
 *
 * Environment: SE_SERVE_QUEUE_CAP bounds admission (0 = unbounded),
 * SE_SERVE_DEADLINE_MS > 0 selects the Deadline flush policy,
 * SE_MODEL_FORMAT picks the bundle format shipped through /tmp
 * (3 = packed 4-bit + dense residual, 2 = legacy records-only), and
 * SE_SERVE_WEIGHT_SOURCE=ce serves from the packed codes directly.
 * SE_PIPELINE=on overlaps the engines' form/execute/complete stages
 * (stage and stall counters are printed per model) and
 * SE_PREFETCH_DEPTH>0 arms the v4 stream's async decode lane.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/hash.hh"
#include "base/random.hh"
#include "core/stream_loader.hh"
#include "models/zoo.hh"
#include "runtime/pipeline.hh"
#include "serve/front.hh"

using namespace se;

namespace {

models::ModelId
parseModel(const std::string &name)
{
    const struct
    {
        const char *key;
        models::ModelId id;
    } table[] = {
        {"vgg11", models::ModelId::VGG11},
        {"vgg19", models::ModelId::VGG19},
        {"resnet50", models::ModelId::ResNet50},
        {"resnet164", models::ModelId::ResNet164},
        {"mobilenetv2", models::ModelId::MobileNetV2},
    };
    for (const auto &e : table)
        if (name == e.key)
            return e.id;
    std::fprintf(stderr, "unknown model '%s', using vgg19\n",
                 name.c_str());
    return models::ModelId::VGG19;
}

std::vector<std::string>
splitModels(const char *arg)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ',')) {
        const size_t b = item.find_first_not_of(" \t");
        if (b == std::string::npos)
            continue;
        item = item.substr(b, item.find_last_not_of(" \t") - b + 1);
        // Model ids must be unique in the registry; keep the first.
        if (std::find(out.begin(), out.end(), item) == out.end())
            out.push_back(item);
        else
            std::fprintf(stderr, "duplicate model '%s' ignored\n",
                         item.c_str());
    }
    if (out.empty())
        out.push_back("vgg19");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> names =
        splitModels(argc > 1 ? argv[1] : "vgg19,mobilenetv2");
    const int requests = argc > 2 ? std::atoi(argv[2]) : 48;
    serve::ServeOptions serve_opts;
    serve_opts.threads = argc > 3 ? std::atoi(argv[3]) : -1;
    serve_opts.maxBatch = argc > 4 ? (size_t)std::atoi(argv[4]) : 8;

    models::SimConfig cfg;
    cfg.inHeight = cfg.inWidth = 12;
    cfg.baseWidth = 8;
    cfg.seed = 7;

    // The serving knobs from the environment.
    const runtime::RuntimeOptions run_opts =
        runtime::RuntimeOptions::fromEnv();
    run_opts.applyFailpoints();  // honour SE_FAILPOINTS fault drills
    serve_opts.queueCap = run_opts.serveQueueCap;
    if (run_opts.serveDeadlineMs > 0.0) {
        serve_opts.flush = serve::FlushPolicy::Deadline;
        serve_opts.flushDeadlineMs = run_opts.serveDeadlineMs;
    }
    // SE_PIPELINE=on overlaps form/execute/complete in every engine
    // and rebuilds layer groups concurrently with the forward;
    // responses are bit-identical either way.
    serve_opts.pipeline = run_opts.servePipeline;
    serve_opts.session.pipelineRebuild = run_opts.servePipeline;
    serve_opts.expectedSample = {cfg.inChannels, cfg.inHeight,
                                 cfg.inWidth};

    std::printf("=== se::serve demo: %zu model(s) ===\n",
                names.size());

    // 1. Compress each zoo model into shippable records, ship it
    //    (save + reload the checksummed binary bundle), and register
    //    it under its name.
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;
    runtime::CompressionPipeline pipe(run_opts);
    const serve::WeightSource source =
        run_opts.serveWeightSource ==
                runtime::ServeWeightSource::CeDirect
            ? serve::WeightSource::CeDirect
            : serve::WeightSource::Dense;
    serve::ModelRegistry registry;
    // Streamed handles kept aside so the prefetch-lane counters can
    // be reported after the traffic (the registry owns one ref too).
    std::vector<std::shared_ptr<core::StreamedModel>> streams(
        names.size());
    for (size_t ni = 0; ni < names.size(); ++ni) {
        const std::string &name = names[ni];
        const models::ModelId id = parseModel(name);
        auto net = models::buildSim(id, cfg);
        auto compressed = core::compressToRecords(
            *net, se_opts, apply_opts,
            [&pipe](const Tensor &w, const core::SeOptions &o) {
                return pipe.cache().getOrCompute(w, o);
            });
        const std::string path = "/tmp/serve_demo_" + name + ".sexm";
        if (run_opts.modelFormat >= 4) {
            // v4 requires the compress-time int8 basis pin so the
            // bundle serves the same bits as the live net.
            core::quantizeBasisAtCompress(*net, compressed, se_opts,
                                          apply_opts);
            core::saveModelV4File(path, compressed.bundle());
        } else if (run_opts.modelFormat == 3) {
            core::saveModelV3File(path, compressed.bundle());
        } else {
            core::saveModelFile(path, compressed.records);
        }
        std::ifstream probe(path, std::ios::binary | std::ios::ate);
        std::printf(
            "[%s] compressed %zu layers, CR %.2fx -> %s (v%d, %lld "
            "bytes)\n",
            name.c_str(), compressed.records.size(),
            compressed.report.compressionRate(), path.c_str(),
            run_opts.modelFormat, (long long)probe.tellg());
        auto factory = [id, cfg] { return models::buildSim(id, cfg); };
        if (run_opts.modelFormat >= 4) {
            // Streamed entry: the mmap open verifies only the meta;
            // piece decode (and the engine build) waits for this
            // model's first request. SE_STREAM_LOADER=eager opts
            // out; SE_PREFETCH_DEPTH>0 arms the async lane that
            // decodes ahead of the consumer.
            auto streamed = std::make_shared<core::StreamedModel>(
                path,
                core::StreamLoaderOptions{run_opts.streamEager, false,
                                          run_opts.prefetchDepth});
            streams[ni] = streamed;
            registry.add(name, serve::makeModelEntry(
                                   std::move(streamed), factory,
                                   se_opts, apply_opts, source));
        } else {
            registry.add(name, serve::makeModelEntry(
                                   core::loadModelBundleFile(path),
                                   factory, se_opts, apply_opts,
                                   source));
        }
    }

    // 2. One front, one engine per model, the thread budget split.
    serve::ServeFront front(registry, serve_opts);
    std::printf("front: %zu engine(s), %d replica(s) total, max "
                "batch %zu, queue cap %zu, flush %s\n",
                front.modelCount(), front.replicaCount(),
                serve_opts.maxBatch, serve_opts.queueCap,
                serve_opts.flush == serve::FlushPolicy::Deadline
                    ? "deadline"
                    : "greedy");

    // 3. Serve synthetic traffic round-robin across the tenants.
    Rng rng(99);
    std::vector<std::vector<std::future<Tensor>>> futs(names.size());
    int shed = 0;
    for (int i = 0; i < requests; ++i) {
        for (size_t m = 0; m < names.size(); ++m) {
            try {
                futs[m].push_back(front.submit(
                    names[m],
                    randn({cfg.inChannels, cfg.inHeight,
                           cfg.inWidth},
                          rng, 0.0f, 1.0f)));
            } catch (const serve::AdmissionError &) {
                ++shed;  // queueCap at work: fail fast, no hang
            }
        }
    }
    front.drain();

    for (size_t m = 0; m < names.size(); ++m) {
        uint64_t digest = kFnvOffsetBasis;
        for (auto &f : futs[m])
            digest = hashTensor(f.get(), digest);
        const auto st = front.stats(names[m]);
        std::printf("[%s] served %llu in %llu batches (mean %.1f)  "
                    "latency ms: mean %.2f p50 %.2f p95 %.2f p99 "
                    "%.2f max %.2f  digest %016llx\n",
                    names[m].c_str(),
                    (unsigned long long)st.requests,
                    (unsigned long long)st.batches, st.meanBatchSize,
                    st.meanLatencyMs, st.p50Ms, st.p95Ms, st.p99Ms,
                    st.maxMs, (unsigned long long)digest);
        if (serve_opts.pipeline)
            std::printf("[%s] pipeline: decode stall %.3f ms, "
                        "stages ms form %.3f exec %.3f complete "
                        "%.3f, overlapped %llu/%llu batches "
                        "(occupancy %.2f)\n",
                        names[m].c_str(), st.decodeStallMs,
                        st.formMs, st.execMs, st.completeMs,
                        (unsigned long long)st.overlappedBatches,
                        (unsigned long long)st.batches,
                        st.pipelineOccupancy);
        if (streams[m]) {
            streams[m]->drainPrefetch();
            const auto ss = streams[m]->streamStats();
            std::printf("[%s] stream: %zu/%zu pieces decoded, "
                        "prefetch hits %llu misses %llu errors "
                        "%llu, decode stall %.3f ms\n",
                        names[m].c_str(),
                        streams[m]->decodedPieces(),
                        streams[m]->pieceCount(),
                        (unsigned long long)ss.prefetchHits,
                        (unsigned long long)ss.prefetchMisses,
                        (unsigned long long)ss.prefetchErrors,
                        ss.decodeStallMs);
        }
    }
    if (shed > 0)
        std::printf("admission: %d request(s) shed at queue cap "
                    "%zu\n",
                    shed, serve_opts.queueCap);

    // 4. Failure-semantics tour: every failure is catchable.
    {
        auto bad = front.submit(
            names[0], randn({cfg.inChannels, cfg.inHeight + 3,
                             cfg.inWidth},
                            rng));
        front.drain();
        try {
            bad.get();
        } catch (const std::invalid_argument &e) {
            std::printf("malformed request failed only itself: %s\n",
                        e.what());
        }
        try {
            front.submit("no-such-model",
                         randn({cfg.inChannels, cfg.inHeight,
                                cfg.inWidth},
                               rng));
        } catch (const serve::UnknownModelError &e) {
            std::printf("unknown model refused: %s\n", e.what());
        }
        front.stop();
        try {
            front.submit(names[0],
                         randn({cfg.inChannels, cfg.inHeight,
                                cfg.inWidth},
                               rng));
        } catch (const serve::EngineStoppedError &e) {
            std::printf("stopped front refused (no panic): %s\n",
                        e.what());
        }
    }
    const auto agg = front.aggregateStats();
    std::printf("aggregate: %llu served, %llu rejected, %llu shed, "
                "%llu failed\n",
                (unsigned long long)agg.requests,
                (unsigned long long)agg.rejected,
                (unsigned long long)agg.shed,
                (unsigned long long)agg.failed);
    return 0;
}
