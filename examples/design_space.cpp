/**
 * @file
 * Design-space exploration: sweep the PE-array geometry (dimM x dimC x
 * dimF at a fixed 8K-lane budget) and the buffer split, and report how
 * energy and latency respond on ResNet50 — the kind of study the
 * paper's Section IV design principles are distilled from.
 *
 * Usage: ./design_space
 */

#include <cstdio>

#include "accel/annotate.hh"
#include "accel/smartexchange_accel.hh"
#include "base/table.hh"

namespace {

/** Run one geometry (same total lanes) and report. */
void
runGeometry(se::Table &t, int64_t dim_m, int64_t dim_c, int64_t dim_f)
{
    using namespace se;
    sim::ArrayConfig cfg = sim::ArrayConfig::bitSerialDefault();
    cfg.dimM = dim_m;
    cfg.dimC = dim_c;
    cfg.dimF = dim_f;

    // The Accelerator constructor takes the config via subclassing;
    // emulate by constructing a custom accelerator around the config.
    class Custom : public accel::SmartExchangeAccel
    {
      public:
        Custom(sim::ArrayConfig c) : SmartExchangeAccel()
        {
            cfg = c;
        }
    };
    Custom acc(cfg);
    auto w = accel::annotatedWorkload(models::ModelId::ResNet50);
    auto st = acc.runNetwork(w, false);

    char geom[48];
    std::snprintf(geom, sizeof(geom), "%lldx%lldx%lld",
                  (long long)dim_m, (long long)dim_c,
                  (long long)dim_f);
    t.row()
        .cell(std::string(geom))
        .cell((int64_t)(dim_m * dim_c * dim_f))
        .cell(st.totalEnergyPj() / 1e9, 3)
        .cell((double)st.cycles / 1e6, 3)
        .cell((double)st.dramAccessBytes() / 1e6, 2);
}

} // namespace

int
main()
{
    using namespace se;
    std::printf("=== PE-array geometry sweep (ResNet50, conv layers, "
                "8K bit-serial lanes) ===\n\n");
    Table t({"dimM x dimC x dimF", "lanes", "energy (mJ)",
             "latency (Mcycles)", "DRAM (MB)"});
    runGeometry(t, 64, 16, 8);   // the paper's configuration
    runGeometry(t, 128, 8, 8);
    runGeometry(t, 32, 32, 8);
    runGeometry(t, 64, 8, 16);
    runGeometry(t, 16, 16, 32);
    runGeometry(t, 256, 16, 2);
    t.print();
    std::printf("\nthe paper's 64x16x8 balances output-channel "
                "parallelism (input reuse) against\nper-line MAC "
                "utilization on narrow late-layer feature maps.\n");
    return 0;
}
