/**
 * @file
 * Design-space exploration: sweep the PE-array geometry (dimM x dimC x
 * dimF at a fixed 8K-lane budget) and the buffer split, and report how
 * energy and latency respond on ResNet50 — the kind of study the
 * paper's Section IV design principles are distilled from.
 *
 * Usage: ./design_space
 */

#include <cstdio>
#include <vector>

#include "accel/annotate.hh"
#include "accel/smartexchange_accel.hh"
#include "base/table.hh"
#include "runtime/sim_driver.hh"

namespace {

/** SmartExchangeAccel with an overridden PE-array geometry. */
class CustomGeometry : public se::accel::SmartExchangeAccel
{
  public:
    CustomGeometry(int64_t dim_m, int64_t dim_c, int64_t dim_f)
    {
        cfg = se::sim::ArrayConfig::bitSerialDefault();
        cfg.dimM = dim_m;
        cfg.dimC = dim_c;
        cfg.dimF = dim_f;
    }
};

} // namespace

int
main()
{
    using namespace se;
    std::printf("=== PE-array geometry sweep (ResNet50, conv layers, "
                "8K bit-serial lanes) ===\n\n");
    Table t({"dimM x dimC x dimF", "lanes", "energy (mJ)",
             "latency (Mcycles)", "DRAM (MB)"});

    const int64_t geoms[][3] = {
        {64, 16, 8},  // the paper's configuration
        {128, 8, 8}, {32, 32, 8}, {64, 8, 16},
        {16, 16, 32}, {256, 16, 2},
    };

    // All geometries batched through the simulation driver at once.
    std::vector<std::unique_ptr<CustomGeometry>> variants;
    std::vector<const accel::Accelerator *> accs;
    for (const auto &g : geoms) {
        variants.push_back(
            std::make_unique<CustomGeometry>(g[0], g[1], g[2]));
        accs.push_back(variants.back().get());
    }
    runtime::RuntimeOptions ro;
    ro.threads = -1;  // one worker per core
    runtime::SimDriver driver(ro);
    auto cells = driver.sweep(
        accs, {accel::annotatedWorkload(models::ModelId::ResNet50)},
        /*include_fc=*/false);

    for (size_t i = 0; i < accs.size(); ++i) {
        const auto &st = cells[i][0].stats;
        char geom[48];
        std::snprintf(geom, sizeof(geom), "%lldx%lldx%lld",
                      (long long)geoms[i][0], (long long)geoms[i][1],
                      (long long)geoms[i][2]);
        t.row()
            .cell(std::string(geom))
            .cell((int64_t)(geoms[i][0] * geoms[i][1] * geoms[i][2]))
            .cell(st.totalEnergyPj() / 1e9, 3)
            .cell((double)st.cycles / 1e6, 3)
            .cell((double)st.dramAccessBytes() / 1e6, 2);
    }
    t.print();
    std::printf("\nthe paper's 64x16x8 balances output-channel "
                "parallelism (input reuse) against\nper-line MAC "
                "utilization on narrow late-layer feature maps.\n");
    return 0;
}
