/**
 * @file
 * End-to-end CNN compression: train a reduced-scale VGG on a synthetic
 * CIFAR-like task, post-process with SmartExchange, re-train with the
 * alternating projection loop (Section III-C), and report the paper's
 * Table II columns.
 *
 * Usage: ./compress_cnn
 */

#include <cstdio>

#include "base/table.hh"
#include "core/trainer.hh"
#include "models/zoo.hh"
#include "runtime/pipeline.hh"

int
main()
{
    using namespace se;

    data::ClassSetConfig dcfg;
    dcfg.numClasses = 6;
    dcfg.height = dcfg.width = 12;
    dcfg.trainBatches = 16;
    dcfg.testBatches = 6;
    dcfg.noise = 0.4f;
    auto task = data::makeClassification(dcfg);

    models::SimConfig mcfg;
    mcfg.numClasses = dcfg.numClasses;
    mcfg.inHeight = mcfg.inWidth = 12;
    mcfg.baseWidth = 8;
    auto net = models::buildSim(models::ModelId::VGG19, mcfg);

    std::printf("training baseline VGG19-sim...\n");
    core::TrainConfig tc;
    tc.epochs = 10;
    tc.lr = 0.05f;
    const double base_acc = core::trainClassifier(*net, task, tc);
    std::printf("baseline accuracy: %.1f%%\n", 100.0 * base_acc);

    std::printf("applying SmartExchange + re-training...\n");
    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.02;
    core::ApplyOptions apply_opts;
    apply_opts.channelGammaThreshold = 0.05;
    core::SeRetrainConfig rc;
    rc.rounds = 4;
    // Run every SE projection through the thread-pooled runtime
    // pipeline; the output is bit-identical to the serial path.
    runtime::RuntimeOptions ro;
    ro.threads = -1;  // one worker per core
    runtime::CompressionPipeline pipe(ro);
    rc.applyFn = [&pipe](nn::Sequential &n, const core::SeOptions &o,
                         const core::ApplyOptions &a) {
        return pipe.run(n, o, a);
    };
    auto res = core::retrainWithSmartExchange(*net, task, se_opts,
                                              apply_opts, rc);

    Table t({"stage", "top-1", "CR", "Param(KB)", "B(KB)", "Ce(KB)",
             "Spar."});
    t.row()
        .cell("baseline")
        .cell(100.0 * res.accBaseline, 1)
        .cell("-")
        .cell(res.report.originalMB() * 1000.0, 1)
        .cell("-")
        .cell("-")
        .cell("-");
    t.row()
        .cell("SE post-process")
        .cell(100.0 * res.accPostProcess, 1)
        .cell(res.report.compressionRate(), 1)
        .cell(res.report.paramMB() * 1000.0, 2)
        .cell(res.report.basisMB() * 1000.0, 2)
        .cell(res.report.ceMB() * 1000.0, 2)
        .cell(100.0 * res.report.prunedParamRatio(), 1);
    t.row()
        .cell("SE + re-train")
        .cell(100.0 * res.accRetrained, 1)
        .cell(res.report.compressionRate(), 1)
        .cell(res.report.paramMB() * 1000.0, 2)
        .cell(res.report.basisMB() * 1000.0, 2)
        .cell(res.report.ceMB() * 1000.0, 2)
        .cell(100.0 * res.report.prunedParamRatio(), 1);
    t.print();

    std::printf("\nper-layer breakdown:\n");
    Table lt({"layer", "weights", "vec-spar", "elem-spar", "rel-err"});
    for (const auto &l : res.report.layers) {
        if (!l.decomposed)
            continue;
        lt.row()
            .cell(l.name)
            .cell((int64_t)l.weightCount)
            .cell(100.0 * l.vectorSparsity, 1)
            .cell(100.0 * l.elementSparsity, 1)
            .cell(l.reconRelError, 3);
    }
    lt.print();
    return 0;
}
