/**
 * @file
 * Segmentation scenario: train a reduced-scale DeepLabV3+-style model
 * on a synthetic CamVid-like task, compress it with SmartExchange and
 * report the mIoU before/after (the paper's Section V-A extension
 * beyond classification).
 *
 * Usage: ./segmentation
 */

#include <cstdio>

#include "core/trainer.hh"
#include "models/zoo.hh"
#include "runtime/pipeline.hh"

int
main()
{
    using namespace se;

    data::SegSetConfig scfg;
    scfg.numClasses = 4;
    scfg.height = scfg.width = 16;
    scfg.batchSize = 6;
    scfg.trainBatches = 12;
    scfg.testBatches = 4;
    auto task = data::makeSegmentation(scfg);

    models::SimConfig mcfg;
    mcfg.numClasses = scfg.numClasses;
    mcfg.inHeight = mcfg.inWidth = 16;
    mcfg.baseWidth = 8;
    auto net = models::buildSim(models::ModelId::DeepLabV3Plus, mcfg);

    std::printf("training DeepLabV3+-sim on synthetic CamVid...\n");
    core::TrainConfig tc;
    tc.epochs = 8;
    tc.lr = 0.1f;
    const double miou = core::trainSegmenter(*net, task, tc);
    std::printf("baseline mIoU: %.1f%%\n", 100.0 * miou);

    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.015;
    // Thread-pooled decomposition; bit-identical to the serial path.
    runtime::RuntimeOptions ro;
    ro.threads = -1;  // one worker per core
    runtime::CompressionPipeline pipe(ro);
    auto report = pipe.run(*net, se_opts, core::ApplyOptions{});
    const double miou_se = core::evaluateSegmenter(*net, task.test);

    std::printf("after SmartExchange: mIoU %.1f%% (drop %.1f pts), "
                "CR %.1fx, vector sparsity %.1f%%\n",
                100.0 * miou_se, 100.0 * (miou - miou_se),
                report.compressionRate(),
                100.0 * report.overallVectorSparsity());
    std::printf("paper reference: 74.20%% -> 71.20%% mIoU at "
                "10.86x CR on CamVid\n");
    return 0;
}
