/**
 * @file
 * Functional SmartExchange execution engine: runs one CONV layer end
 * to end through the modelled hardware — index selector, ping-pong
 * rebuild engines, and bit-serial row-stationary PE lines — producing
 * both the numerical output (validated against the NN reference in
 * the tests) and the cycle/activity counts the analytical accelerator
 * models abstract.
 */

#ifndef SE_ARCH_ENGINE_HH
#define SE_ARCH_ENGINE_HH

#include <vector>

#include "core/smart_exchange.hh"
#include "tensor/tensor.hh"

namespace se {
namespace arch {

/** Datapath configuration of the functional engine. */
struct EngineConfig
{
    int64_t dimF = 8;          ///< MACs per PE line
    int actBits = 8;           ///< activation precision
    int weightBits = 8;        ///< rebuilt-weight precision
    bool skipZeroRows = true;  ///< index-selector vector skipping
};

/** Functional run outcome. */
struct EngineResult
{
    Tensor output;             ///< (1, M, E, F) dequantized floats

    int64_t macCycles = 0;     ///< synchronized bit-serial cycles
    int64_t reCycles = 0;      ///< rebuild-engine busy cycles
    int64_t reStallCycles = 0; ///< basis-load stalls exposed
    int64_t selectorCycles = 0;

    int64_t rowsProcessed = 0; ///< coefficient rows reaching PE lines
    int64_t rowsSkipped = 0;   ///< rows dropped by the selector

    int64_t
    totalCycles() const
    {
        // REs run in the shadow of the MACs except for exposed
        // stalls; the selector runs ahead of the array.
        return macCycles + reStallCycles;
    }
};

/**
 * Execute one standard convolution (groups = 1, square kernel) from
 * its SmartExchange form. `pieces` holds one SeMatrix per output
 * filter, in order, with Ce rows laid out as (c * R + kr) — exactly
 * what core::decomposeConvWeight produces without slicing.
 */
EngineResult runConvLayer(const Tensor &input,
                          const std::vector<core::SeMatrix> &pieces,
                          int64_t kernel, int64_t stride, int64_t pad,
                          const EngineConfig &cfg);

} // namespace arch
} // namespace se

#endif // SE_ARCH_ENGINE_HH
