/**
 * @file
 * Functional model of one PE line executing a 1D convolution with the
 * row-stationary schedule of Fig. 6: a weight row stays in the line
 * while input activations shift past dimF bit-serial MACs; each weight
 * element is broadcast to all MACs in a cycle group, and the group
 * advances only when the slowest lane has streamed all non-zero Booth
 * digits of its activation (lane synchronization).
 */

#ifndef SE_ARCH_PE_LINE_HH
#define SE_ARCH_PE_LINE_HH

#include <cstdint>
#include <vector>

namespace se {
namespace arch {

/** Outcome of one 1D convolution on a PE line. */
struct PeLineResult
{
    std::vector<int64_t> outputs;  ///< F partial sums (exact ints)
    int64_t cycles = 0;            ///< synchronized bit-serial cycles
};

/** Configuration of the PE line datapath. */
struct PeLineConfig
{
    int64_t dimF = 8;  ///< MACs per line
    int actBits = 8;   ///< activation precision
};

/**
 * Run one 1D convolution: out[f] = sum_s w[s] * in[f * stride + s].
 * The input row must already include any horizontal padding.
 */
PeLineResult conv1d(const std::vector<int32_t> &weight_row,
                    const std::vector<int32_t> &input_row,
                    int64_t f_out, int64_t stride,
                    const PeLineConfig &cfg);

} // namespace arch
} // namespace se

#endif // SE_ARCH_PE_LINE_HH
