#include "arch/bit_serial_mac.hh"

#include "quant/quant.hh"

namespace se {
namespace arch {

BitSerialMac::Product
BitSerialMac::multiply(int32_t activation, int32_t weight, int act_bits)
{
    Product p;
    const auto digits = quant::boothDigits(activation, act_bits);
    for (size_t d = 0; d < digits.size(); ++d) {
        if (digits[d] == 0)
            continue;
        // digit in {-2,-1,+1,+2}: one shift-and-add step. The shift
        // is written as a multiply because the product may be
        // negative, and shifting negatives left is UB before C++20.
        p.value +=
            (int64_t)digits[d] * weight * ((int64_t)1 << (2 * d));
        ++p.cycles;
    }
    // Even an all-zero activation occupies the issue slot one cycle.
    if (p.cycles == 0)
        p.cycles = 1;
    return p;
}

} // namespace arch
} // namespace se
