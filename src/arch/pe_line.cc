#include "arch/pe_line.hh"

#include <algorithm>

#include "arch/bit_serial_mac.hh"
#include "base/logging.hh"

namespace se {
namespace arch {

PeLineResult
conv1d(const std::vector<int32_t> &weight_row,
       const std::vector<int32_t> &input_row, int64_t f_out,
       int64_t stride, const PeLineConfig &cfg)
{
    const int64_t s_len = (int64_t)weight_row.size();
    PeLineResult res;
    res.outputs.assign((size_t)f_out, 0);

    // Process output pixels in groups of dimF lanes.
    for (int64_t f0 = 0; f0 < f_out; f0 += cfg.dimF) {
        const int64_t lanes =
            std::min<int64_t>(cfg.dimF, f_out - f0);
        // The weight element w[s] is broadcast; all lanes multiply it
        // by their own activation, serially over Booth digits. The
        // group advances at the pace of the slowest lane.
        for (int64_t s = 0; s < s_len; ++s) {
            if (weight_row[(size_t)s] == 0) {
                // Zero weight: the broadcast slot is skipped entirely
                // (the rebuilt row carries its own zero pattern).
                continue;
            }
            int max_lane_cycles = 0;
            for (int64_t l = 0; l < lanes; ++l) {
                const int64_t idx = (f0 + l) * stride + s;
                SE_ASSERT(idx >= 0 &&
                              idx < (int64_t)input_row.size(),
                          "input row index out of range");
                const auto p = BitSerialMac::multiply(
                    input_row[(size_t)idx], weight_row[(size_t)s],
                    cfg.actBits);
                res.outputs[(size_t)(f0 + l)] += p.value;
                max_lane_cycles = std::max(max_lane_cycles, p.cycles);
            }
            res.cycles += max_lane_cycles;
        }
    }
    return res;
}

} // namespace arch
} // namespace se
