#include "arch/rebuild_engine.hh"

#include <cmath>

#include "base/logging.hh"

namespace se {
namespace arch {

namespace {

/** Decompose a power-of-2 value into (sign, exponent); value != 0. */
std::pair<int, int>
pow2Parts(float v)
{
    const float av = std::abs(v);
    int exp;
    const float frac = std::frexp(av, &exp);
    SE_ASSERT(frac == 0.5f, "RE coefficient ", v,
              " is not a power of two");
    return {v > 0 ? 1 : -1, exp - 1};
}

} // namespace

void
RebuildEngine::loadBasis(const Tensor &basis)
{
    SE_ASSERT(basis.ndim() == 2, "basis must be 2-D");
    rf = basis;
    rows = basis.dim(0);
    cols = basis.dim(1);
    loaded = true;
    cycles += rows * cols;
}

std::vector<float>
RebuildEngine::rebuildRow(const std::vector<float> &ce_row)
{
    SE_ASSERT(loaded, "rebuild before basis load");
    SE_ASSERT((int64_t)ce_row.size() == rows,
              "coefficient row length mismatch");
    std::vector<float> out((size_t)cols, 0.0f);
    bool any = false;
    for (int64_t j = 0; j < rows; ++j) {
        const float c = ce_row[(size_t)j];
        if (c == 0.0f)
            continue;
        any = true;
        const auto [sign, exp] = pow2Parts(c);
        // One shift-and-add pass over the basis row per non-zero
        // coefficient.
        for (int64_t k = 0; k < cols; ++k) {
            const float shifted =
                std::ldexp(rf.at(j, k), exp);
            out[(size_t)k] += sign > 0 ? shifted : -shifted;
        }
        cycles += cols;
    }
    if (!any)
        ++cycles;  // zero-row bypass
    return out;
}

void
RebuildEnginePair::prefetchBasis(const Tensor &basis)
{
    engines[1 - active].loadBasis(basis);
    pendingLoadCycles = basis.dim(0) * basis.dim(1);
}

int64_t
RebuildEnginePair::swap(int64_t foreground_cycles_since_prefetch)
{
    const int64_t exposed = std::max<int64_t>(
        0, pendingLoadCycles - foreground_cycles_since_prefetch);
    stallCycles += exposed;
    pendingLoadCycles = 0;
    active = 1 - active;
    return exposed;
}

} // namespace arch
} // namespace se
