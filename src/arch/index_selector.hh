/**
 * @file
 * Streaming model of the index selector (Fig. 5 (a), "Index Sel."),
 * after Cambricon-S: it walks the 1-bit vector indexes of the
 * coefficient rows and the activation rows in lockstep and emits only
 * the positions where both are non-zero — the row pairs that reach the
 * PE lines. One position is examined per cycle.
 */

#ifndef SE_ARCH_INDEX_SELECTOR_HH
#define SE_ARCH_INDEX_SELECTOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/logging.hh"

namespace se {
namespace arch {

/** Streaming AND-selector over two 1-bit index streams. */
class IndexSelector
{
  public:
    IndexSelector(std::vector<uint8_t> weight_index,
                  std::vector<uint8_t> act_index)
        : wIdx(std::move(weight_index)), aIdx(std::move(act_index))
    {
        SE_ASSERT(wIdx.size() == aIdx.size(),
                  "index selector stream length mismatch");
    }

    /**
     * Advance to the next selected position. Returns std::nullopt at
     * end of stream. Each call consumes the cycles needed to scan the
     * skipped positions (one per cycle).
     */
    std::optional<int64_t>
    next()
    {
        while (pos < (int64_t)wIdx.size()) {
            const int64_t p = pos++;
            ++cycles;
            if (wIdx[(size_t)p] && aIdx[(size_t)p])
                return p;
        }
        return std::nullopt;
    }

    /** Drain the stream and return all selected positions. */
    std::vector<int64_t>
    selectAll()
    {
        std::vector<int64_t> out;
        while (auto p = next())
            out.push_back(*p);
        return out;
    }

    int64_t cyclesUsed() const { return cycles; }

  private:
    std::vector<uint8_t> wIdx, aIdx;
    int64_t pos = 0;
    int64_t cycles = 0;
};

} // namespace arch
} // namespace se

#endif // SE_ARCH_INDEX_SELECTOR_HH
