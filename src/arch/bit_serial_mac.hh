/**
 * @file
 * Functional model of the Booth-encoded bit-serial multiplier used in
 * the SmartExchange and Bit-pragmatic datapaths.
 *
 * The multiplier streams the non-zero radix-4 Booth digits of the
 * activation; each digit costs one cycle and contributes
 * (digit * weight) << (2 * position) to the product. Zero digits are
 * skipped entirely, which is how bit-level activation sparsity turns
 * into cycle savings (Section IV-A, third observation).
 */

#ifndef SE_ARCH_BIT_SERIAL_MAC_HH
#define SE_ARCH_BIT_SERIAL_MAC_HH

#include <cstdint>

namespace se {
namespace arch {

/** One bit-serial multiply-accumulate unit. */
class BitSerialMac
{
  public:
    /** Result of one serial multiplication. */
    struct Product
    {
        int64_t value = 0;  ///< exact product
        int cycles = 0;     ///< non-zero Booth digits processed (>= 1)
    };

    /**
     * Multiply an `act_bits`-wide two's-complement activation by a
     * weight by streaming the activation's Booth digits. Exact.
     */
    static Product multiply(int32_t activation, int32_t weight,
                            int act_bits = 8);

    /** Accumulate a product into the local partial sum register. */
    void
    accumulate(int64_t value)
    {
        psum += value;
    }

    int64_t partialSum() const { return psum; }
    void reset() { psum = 0; }

  private:
    int64_t psum = 0;
};

} // namespace arch
} // namespace se

#endif // SE_ARCH_BIT_SERIAL_MAC_HH
