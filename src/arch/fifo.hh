/**
 * @file
 * FIFO models: a bounded ring-buffer FIFO (the per-PE-line activation
 * FIFO of Fig. 5) and a ping-pong double buffer (the paper implements
 * "all the FIFOs in the PE lines in a ping-pong manner using double
 * buffers" to sustain the input GB bandwidth).
 */

#ifndef SE_ARCH_FIFO_HH
#define SE_ARCH_FIFO_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace se {
namespace arch {

/** Bounded single-clock FIFO. */
template <typename T>
class Fifo
{
  public:
    explicit Fifo(size_t capacity) : buf(capacity), cap(capacity)
    {
        SE_ASSERT(capacity > 0, "FIFO capacity must be positive");
    }

    bool full() const { return count == cap; }
    bool empty() const { return count == 0; }
    size_t size() const { return count; }
    size_t capacity() const { return cap; }

    /** Push one element; returns false (and drops) when full. */
    bool
    push(const T &v)
    {
        if (full())
            return false;
        buf[tail] = v;
        tail = (tail + 1) % cap;
        ++count;
        return true;
    }

    /** Pop the oldest element; FIFO must not be empty. */
    T
    pop()
    {
        SE_ASSERT(!empty(), "pop from empty FIFO");
        T v = buf[head];
        head = (head + 1) % cap;
        --count;
        return v;
    }

    /** Peek the n-th oldest element without removing it. */
    const T &
    peek(size_t n = 0) const
    {
        SE_ASSERT(n < count, "peek beyond FIFO contents");
        return buf[(head + n) % cap];
    }

  private:
    std::vector<T> buf;
    size_t cap;
    size_t head = 0, tail = 0, count = 0;
};

/**
 * Ping-pong double buffer: the producer fills the shadow bank while
 * the consumer drains the active bank; swap() flips them and reports
 * whether the producer had finished (a not-ready swap is a stall).
 */
template <typename T>
class DoubleBuffer
{
  public:
    /** Write the next shadow-bank contents. */
    void
    fill(std::vector<T> data)
    {
        shadow = std::move(data);
        shadowReady = true;
    }

    /** True when the shadow bank has been filled since last swap. */
    bool ready() const { return shadowReady; }

    /**
     * Swap banks. Returns true on a clean swap, false when the
     * shadow bank was not ready (the consumer must stall).
     */
    bool
    swap()
    {
        const bool ok = shadowReady;
        std::swap(active, shadow);
        shadow.clear();
        shadowReady = false;
        return ok;
    }

    const std::vector<T> &current() const { return active; }

  private:
    std::vector<T> active, shadow;
    bool shadowReady = false;
};

} // namespace arch
} // namespace se

#endif // SE_ARCH_FIFO_HH
