/**
 * @file
 * Functional model of the rebuild engine (RE) inside each PE line
 * (Fig. 5 (b)): an S x S register file holding one basis matrix and a
 * shift-and-add unit that restores weight rows from power-of-2
 * coefficient rows. A RebuildEnginePair models the ping-pong double-RE
 * arrangement that hides basis-load latency (Section IV-B, buffer
 * design).
 */

#ifndef SE_ARCH_REBUILD_ENGINE_HH
#define SE_ARCH_REBUILD_ENGINE_HH

#include <vector>

#include "tensor/tensor.hh"

namespace se {
namespace arch {

/** One rebuild engine with an S x S basis register file. */
class RebuildEngine
{
  public:
    /**
     * Load a basis matrix (r x n) into the RF. Costs r * n cycles
     * (one element per cycle through MUX1 path 2).
     */
    void loadBasis(const Tensor &basis);

    /**
     * Rebuild one weight row: w = ce_row * B via shift-and-add.
     * Every non-zero coefficient must be +-2^p (checked); each
     * non-zero coefficient costs n shift-add cycles. Zero rows cost a
     * single bypass cycle.
     */
    std::vector<float> rebuildRow(const std::vector<float> &ce_row);

    bool basisLoaded() const { return loaded; }
    int64_t basisRows() const { return rows; }
    int64_t basisCols() const { return cols; }

    /** Total cycles spent loading and rebuilding. */
    int64_t cyclesUsed() const { return cycles; }
    void resetCycles() { cycles = 0; }

  private:
    Tensor rf;      ///< the basis register file
    bool loaded = false;
    int64_t rows = 0, cols = 0;
    int64_t cycles = 0;
};

/**
 * The ping-pong RE pair of a PE line: while one RE serves rebuilds,
 * the other loads the next basis in the background, so the swap is
 * free once the background load has finished.
 */
class RebuildEnginePair
{
  public:
    /** Begin loading the next basis into the shadow RE. */
    void prefetchBasis(const Tensor &basis);

    /**
     * Make the shadow RE active. Returns the stall cycles exposed
     * (zero when the prefetch had at least `elapsed` cycles of
     * foreground work to hide behind).
     */
    int64_t swap(int64_t foreground_cycles_since_prefetch);

    /** Rebuild on the active RE. */
    std::vector<float>
    rebuildRow(const std::vector<float> &ce_row)
    {
        return engines[active].rebuildRow(ce_row);
    }

    RebuildEngine &activeEngine() { return engines[active]; }
    RebuildEngine &shadowEngine() { return engines[1 - active]; }

    int64_t
    totalCycles() const
    {
        return engines[0].cyclesUsed() + engines[1].cyclesUsed() +
               stallCycles;
    }
    int64_t stalls() const { return stallCycles; }

  private:
    RebuildEngine engines[2];
    int active = 0;
    int64_t pendingLoadCycles = 0;
    int64_t stallCycles = 0;
};

} // namespace arch
} // namespace se

#endif // SE_ARCH_REBUILD_ENGINE_HH
