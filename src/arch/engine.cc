#include "arch/engine.hh"

#include <algorithm>
#include <cmath>

#include "arch/index_selector.hh"
#include "arch/pe_line.hh"
#include "arch/rebuild_engine.hh"
#include "quant/quant.hh"

namespace se {
namespace arch {

namespace {

/** Quantize one padded input row of channel c at height ih. */
std::vector<int32_t>
paddedInputRow(const Tensor &input, int64_t c, int64_t ih, int64_t pad,
               const quant::FixedPointQuantizer &q)
{
    const int64_t w = input.dim(3);
    std::vector<int32_t> row((size_t)(w + 2 * pad), 0);
    if (ih < 0 || ih >= input.dim(2))
        return row;  // vertical padding: all zeros
    for (int64_t j = 0; j < w; ++j)
        row[(size_t)(j + pad)] = q.toInt(input.at(0, c, ih, j));
    return row;
}

} // namespace

EngineResult
runConvLayer(const Tensor &input,
             const std::vector<core::SeMatrix> &pieces, int64_t kernel,
             int64_t stride, int64_t pad, const EngineConfig &cfg)
{
    SE_ASSERT(input.ndim() == 4 && input.dim(0) == 1,
              "engine expects a single (1,C,H,W) input");
    const int64_t c_in = input.dim(1), h = input.dim(2),
                  w = input.dim(3);
    const int64_t m = (int64_t)pieces.size();
    const int64_t e_out = (h + 2 * pad - kernel) / stride + 1;
    const int64_t f_out = (w + 2 * pad - kernel) / stride + 1;

    // Per-tensor activation scale; per-layer rebuilt-weight scale.
    auto act_q = quant::FixedPointQuantizer::calibrate(input,
                                                       cfg.actBits);
    float w_max = 0.0f;
    for (const auto &p : pieces) {
        Tensor rec = p.reconstruct();
        for (int64_t i = 0; i < rec.size(); ++i)
            w_max = std::max(w_max, std::abs(rec[i]));
    }
    quant::FixedPointQuantizer w_q;
    w_q.bits = cfg.weightBits;
    const int32_t w_qmax = (1 << (cfg.weightBits - 1)) - 1;
    w_q.scale = w_max > 0 ? w_max / (float)w_qmax : 1.0f;

    EngineResult res;
    res.output = Tensor({1, m, e_out, f_out});

    // Pre-quantize all padded input rows and their zero/non-zero
    // vector index (used by the index selector).
    std::vector<std::vector<int32_t>> in_rows(
        (size_t)(c_in * (h + 2 * pad)));
    std::vector<uint8_t> in_row_nonzero(in_rows.size(), 0);
    for (int64_t c = 0; c < c_in; ++c)
        for (int64_t ih = -pad; ih < h + pad; ++ih) {
            auto row = paddedInputRow(input, c, ih, pad, act_q);
            uint8_t nz = 0;
            for (int32_t v : row)
                if (v != 0) {
                    nz = 1;
                    break;
                }
            const size_t slot = (size_t)(c * (h + 2 * pad) +
                                         (ih + pad));
            in_rows[slot] = std::move(row);
            in_row_nonzero[slot] = nz;
        }

    PeLineConfig line_cfg{cfg.dimF, cfg.actBits};
    RebuildEnginePair re;
    // Integer accumulators per (m, e, f).
    std::vector<int64_t> acc((size_t)(m * e_out * f_out), 0);

    int64_t fg_cycles_since_prefetch = 0;
    for (int64_t filt = 0; filt < m; ++filt) {
        const auto &piece = pieces[(size_t)filt];
        SE_ASSERT(piece.ce.dim(0) == c_in * kernel,
                  "piece rows do not match layer geometry");
        // Ping-pong: the basis for this filter was prefetched while
        // the previous filter computed (first filter pays the load).
        re.prefetchBasis(piece.basis);
        res.reStallCycles += re.swap(fg_cycles_since_prefetch);
        fg_cycles_since_prefetch = 0;

        for (int64_t c = 0; c < c_in; ++c) {
            for (int64_t kr = 0; kr < kernel; ++kr) {
                const int64_t row_idx = c * kernel + kr;
                // Vector-index bits for this coefficient row.
                std::vector<float> ce_row((size_t)kernel);
                bool row_nonzero = false;
                for (int64_t s = 0; s < kernel; ++s) {
                    ce_row[(size_t)s] =
                        piece.ce.at(row_idx, s);
                    row_nonzero |= ce_row[(size_t)s] != 0.0f;
                }
                ++res.selectorCycles;
                if (cfg.skipZeroRows && !row_nonzero) {
                    ++res.rowsSkipped;
                    continue;
                }

                // Rebuild the weight row in the RE, then quantize it
                // for the integer datapath.
                auto w_row_f = re.rebuildRow(ce_row);
                std::vector<int32_t> w_row((size_t)kernel);
                bool all_zero = true;
                for (int64_t s = 0; s < kernel; ++s) {
                    w_row[(size_t)s] = w_q.toInt(w_row_f[(size_t)s]);
                    all_zero &= w_row[(size_t)s] == 0;
                }
                if (all_zero) {
                    ++res.rowsSkipped;
                    continue;
                }
                ++res.rowsProcessed;

                // This weight row slides over every output row whose
                // receptive field contains input row (e*U + kr - pad).
                for (int64_t e = 0; e < e_out; ++e) {
                    const int64_t ih = e * stride + kr - pad;
                    const size_t slot =
                        (size_t)(c * (h + 2 * pad) + (ih + pad));
                    if (cfg.skipZeroRows && !in_row_nonzero[slot]) {
                        // Activation-vector skip: whole row of zeros.
                        continue;
                    }
                    auto line = conv1d(w_row, in_rows[slot], f_out,
                                       stride, line_cfg);
                    res.macCycles += line.cycles;
                    fg_cycles_since_prefetch += line.cycles;
                    int64_t *dst =
                        acc.data() + (filt * e_out + e) * f_out;
                    for (int64_t f = 0; f < f_out; ++f)
                        dst[f] += line.outputs[(size_t)f];
                }
            }
        }
        res.reCycles = re.totalCycles();
    }

    // Dequantize.
    const double out_scale = (double)act_q.scale * w_q.scale;
    for (int64_t i = 0; i < res.output.size(); ++i)
        res.output[i] = (float)((double)acc[(size_t)i] * out_scale);
    return res;
}

} // namespace arch
} // namespace se
