/**
 * @file
 * Tiny wall-clock helpers shared by the runtime/serve layers and the
 * benches, so every timing site uses the same clock and unit.
 */

#ifndef SE_BASE_CLOCK_HH
#define SE_BASE_CLOCK_HH

#include <chrono>

namespace se {

using SteadyClock = std::chrono::steady_clock;

/** Milliseconds elapsed since t0 (fractional). */
inline double
msSince(SteadyClock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               SteadyClock::now() - t0)
        .count();
}

} // namespace se

#endif // SE_BASE_CLOCK_HH
