/**
 * @file
 * Minimal fixed-width text table printer used by the benchmark binaries
 * to emit the paper's tables/figure series in a readable form.
 */

#ifndef SE_BASE_TABLE_HH
#define SE_BASE_TABLE_HH

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace se {

/**
 * Accumulates rows of string cells and prints them with per-column
 * widths. Numeric helpers format floats with a fixed precision.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : columns(std::move(header))
    {}

    /** Begin a new row; cells are appended with cell(). */
    Table &
    row()
    {
        rows.emplace_back();
        return *this;
    }

    Table &
    cell(const std::string &s)
    {
        rows.back().push_back(s);
        return *this;
    }

    Table &
    cell(double v, int precision = 2)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << v;
        return cell(os.str());
    }

    Table &
    cell(int64_t v)
    {
        return cell(std::to_string(v));
    }

    /** Render to the stream with aligned columns. */
    void
    print(std::ostream &os = std::cout) const
    {
        std::vector<size_t> widths(columns.size(), 0);
        for (size_t c = 0; c < columns.size(); ++c)
            widths[c] = columns[c].size();
        for (const auto &r : rows)
            for (size_t c = 0; c < r.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], r[c].size());

        auto line = [&](const std::vector<std::string> &cells) {
            for (size_t c = 0; c < columns.size(); ++c) {
                const std::string &s = c < cells.size() ? cells[c] : "";
                os << std::left << std::setw((int)widths[c] + 2) << s;
            }
            os << "\n";
        };
        line(columns);
        std::vector<std::string> sep;
        for (auto w : widths)
            sep.push_back(std::string(w, '-'));
        line(sep);
        for (const auto &r : rows)
            line(r);
        os.flush();
    }

  private:
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

} // namespace se

#endif // SE_BASE_TABLE_HH
