#include "base/failpoint.hh"

#include <cerrno>
#include <cstdlib>
#include <map>
#include <random>

#include "base/mutex.hh"

namespace se {
namespace failpoint {

namespace detail {
std::atomic<int> g_armedCount{0};
} // namespace detail

namespace {

/** Per-name armed state (counters survive disarm via the tombstone
 *  flag so tests can read hit/fire counts after a ScopedArm ends). */
struct State
{
    Policy policy;
    bool armed = false;
    uint64_t hits = 0;
    uint64_t fires = 0;
    std::mt19937_64 rng;  ///< Prob policies only
};

base::Mutex g_mu;
/** std::map keeps armedNames() deterministic; the registry is tiny.
 *  Function-local static (arming can legally happen during another
 *  TU's static init); SE_REQUIRES makes every access prove it holds
 *  g_mu, since the returned reference outlives the call. */
std::map<std::string, State> &
registry() SE_REQUIRES(g_mu)
{
    static std::map<std::string, State> r;
    return r;
}
std::vector<std::string> g_armOrder SE_GUARDED_BY(g_mu);

uint64_t
parseCount(const char *name, const std::string &digits, uint64_t min)
{
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        throw std::invalid_argument(
            std::string("failpoint policy ") + name +
            " needs an unsigned integer, got '" + digits + "'");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(digits.c_str(), &end, 10);
    if (errno == ERANGE || v < min)
        throw std::invalid_argument(
            std::string("failpoint policy ") + name +
            " count out of range: '" + digits + "'");
    return (uint64_t)v;
}

} // namespace

Policy
parsePolicy(const std::string &text)
{
    Policy p;
    if (text == "once") {
        p.kind = Policy::Kind::Once;
        return p;
    }
    if (text.rfind("1in", 0) == 0) {
        p.kind = Policy::Kind::EveryN;
        p.n = parseCount("1inN", text.substr(3), 1);
        return p;
    }
    if (text.rfind("after", 0) == 0) {
        p.kind = Policy::Kind::AfterN;
        p.n = parseCount("afterN", text.substr(5), 0);
        return p;
    }
    if (!text.empty() && text[0] == 'p') {
        p.kind = Policy::Kind::Prob;
        std::string prob = text.substr(1);
        const size_t at = prob.find('@');
        if (at != std::string::npos) {
            p.seed = parseCount("p@seed", prob.substr(at + 1), 0);
            prob = prob.substr(0, at);
        }
        char *end = nullptr;
        errno = 0;
        p.p = std::strtod(prob.c_str(), &end);
        if (prob.empty() || end != prob.c_str() + prob.size() ||
            errno == ERANGE || !(p.p > 0.0) || p.p > 1.0)
            throw std::invalid_argument(
                "failpoint probability must be in (0, 1], got '" +
                prob + "'");
        return p;
    }
    throw std::invalid_argument(
        "unrecognized failpoint policy '" + text +
        "' (expected once | 1inN | afterN | pF[@seed])");
}

std::vector<std::pair<std::string, Policy>>
parseSpec(const std::string &spec)
{
    std::vector<std::pair<std::string, Policy>> out;
    if (spec.empty())
        return out;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        const size_t colon = item.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= item.size())
            throw std::invalid_argument(
                "failpoint spec item must be name:policy, got '" +
                item + "'");
        const std::string name = item.substr(0, colon);
        for (const auto &prev : out)
            if (prev.first == name)
                throw std::invalid_argument(
                    "failpoint '" + name +
                    "' armed twice in one spec");
        out.emplace_back(name, parsePolicy(item.substr(colon + 1)));
        pos = comma + 1;
    }
    return out;
}

void
arm(const std::string &name, const Policy &policy)
{
    if (name.empty())
        throw std::invalid_argument(
            "failpoint name must be non-empty");
    base::LockGuard lk(g_mu);
    State &s = registry()[name];
    if (!s.armed)
        detail::g_armedCount.fetch_add(1, std::memory_order_relaxed);
    s.policy = policy;
    s.armed = true;
    s.hits = 0;
    s.fires = 0;
    s.rng.seed(policy.seed);
    for (const auto &n : g_armOrder)
        if (n == name)
            return;
    g_armOrder.push_back(name);
}

void
arm(const std::string &name, const std::string &policy)
{
    arm(name, parsePolicy(policy));
}

void
armFromSpec(const std::string &spec)
{
    const auto parsed = parseSpec(spec);  // all-or-nothing: parse first
    disarmAll();
    for (const auto &[name, policy] : parsed)
        arm(name, policy);
}

void
disarm(const std::string &name)
{
    base::LockGuard lk(g_mu);
    auto it = registry().find(name);
    if (it == registry().end() || !it->second.armed)
        return;
    it->second.armed = false;
    detail::g_armedCount.fetch_sub(1, std::memory_order_relaxed);
    for (auto oit = g_armOrder.begin(); oit != g_armOrder.end(); ++oit)
        if (*oit == name) {
            g_armOrder.erase(oit);
            break;
        }
}

void
disarmAll()
{
    base::LockGuard lk(g_mu);
    int armed = 0;
    for (auto &e : registry())
        if (e.second.armed) {
            e.second.armed = false;
            ++armed;
        }
    registry().clear();
    g_armOrder.clear();
    detail::g_armedCount.fetch_sub(armed, std::memory_order_relaxed);
}

std::vector<std::string>
armedNames()
{
    base::LockGuard lk(g_mu);
    return g_armOrder;
}

uint64_t
hitCount(const std::string &name)
{
    base::LockGuard lk(g_mu);
    auto it = registry().find(name);
    return it == registry().end() ? 0 : it->second.hits;
}

uint64_t
fireCount(const std::string &name)
{
    base::LockGuard lk(g_mu);
    auto it = registry().find(name);
    return it == registry().end() ? 0 : it->second.fires;
}

namespace detail {

bool
evaluateSlow(const char *name)
{
    base::LockGuard lk(g_mu);
    auto it = registry().find(name);
    if (it == registry().end() || !it->second.armed)
        return false;
    State &s = it->second;
    ++s.hits;
    bool fire = false;
    switch (s.policy.kind) {
    case Policy::Kind::Once:
        fire = s.hits == 1;
        break;
    case Policy::Kind::EveryN:
        fire = s.hits % s.policy.n == 0;
        break;
    case Policy::Kind::AfterN:
        fire = s.hits > s.policy.n;
        break;
    case Policy::Kind::Prob: {
        std::uniform_real_distribution<double> d(0.0, 1.0);
        fire = d(s.rng) < s.policy.p;
        break;
    }
    }
    if (fire)
        ++s.fires;
    return fire;
}

} // namespace detail

} // namespace failpoint
} // namespace se
