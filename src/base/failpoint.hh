/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * A failpoint is a named site in production code where a fault can be
 * injected on demand: the I/O call that writes a bundle, the lazy
 * piece decode a streamed model performs at first touch, the body of
 * a serve worker. Unarmed (the default, and the only state production
 * ever runs in) a site costs one relaxed atomic load and a predicted
 * branch; armed, the site's trigger policy decides per evaluation
 * whether the fault fires.
 *
 * Trigger policies (the SE_FAILPOINTS grammar, strictly parsed —
 * anything unrecognized throws std::invalid_argument instead of
 * silently not injecting):
 *
 *   name:once       fire on the 1st evaluation only
 *   name:1inN       fire on every Nth evaluation (N, 2N, ...)
 *   name:afterN     fire on every evaluation after the first N
 *   name:pF         fire with probability F in (0, 1], drawn from a
 *   name:pF@SEED    deterministic per-failpoint RNG (default seed or
 *                   an explicit one) — reproducible "random" faults
 *
 * Multiple failpoints arm as a comma-separated list:
 *   SE_FAILPOINTS=stream_piece_decode:1in8,decomp_spill_write:once
 *
 * Sites choose what an injected fault looks like so the error path
 * under test is the SAME path a real fault would take:
 *
 *   SE_FAILPOINT(name);              // throws failpoint::InjectedFault
 *   SE_FAILPOINT_THROW(name, Exc);   // throws Exc (e.g. ModelFileError)
 *
 * Every injected message carries the kInjectedPrefix marker so tests
 * (and humans reading a log) can tell injected faults from real ones.
 *
 * Evaluation counts are global per name, not per call site: two sites
 * sharing a name share one policy state. Arming is process-wide and
 * test-ordering-sensitive by nature — tests arm in a scope guard
 * (failpoint::ScopedArm) so a failed assertion can't leak an armed
 * fault into the next test.
 */

#ifndef SE_BASE_FAILPOINT_HH
#define SE_BASE_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace se {
namespace failpoint {

/** Marker prefix every injected fault's message starts with. */
constexpr const char *kInjectedPrefix = "injected fault at failpoint";

/** What SE_FAILPOINT(name) throws when the site fires. */
class InjectedFault : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One parsed trigger policy. */
struct Policy
{
    enum class Kind
    {
        Once,    ///< fire on evaluation 1 only
        EveryN,  ///< fire on evaluations N, 2N, 3N, ...
        AfterN,  ///< fire on every evaluation > N
        Prob,    ///< fire with probability p (seeded RNG)
    };
    Kind kind = Kind::Once;
    uint64_t n = 1;       ///< EveryN period / AfterN threshold
    double p = 0.0;       ///< Prob only
    uint64_t seed = 0x5e5e5e5eULL;  ///< Prob only
};

/**
 * Parse one policy string ("once", "1in8", "after3", "p0.25",
 * "p0.25@42"). Throws std::invalid_argument on anything else.
 */
Policy parsePolicy(const std::string &text);

/**
 * Parse a full comma-separated spec ("a:once,b:1in8") into
 * (name, policy) pairs. Strict: empty names, missing colons, bad
 * policies and duplicate names all throw std::invalid_argument. An
 * empty spec yields an empty list (and arms nothing).
 */
std::vector<std::pair<std::string, Policy>>
parseSpec(const std::string &spec);

/** Arm (or re-arm, resetting counters) one failpoint. */
void arm(const std::string &name, const Policy &policy);

/** Convenience: arm(name, parsePolicy(policy)). */
void arm(const std::string &name, const std::string &policy);

/** Disarm everything, then arm every entry of the spec. */
void armFromSpec(const std::string &spec);

/** Disarm one failpoint (a no-op when it was not armed). */
void disarm(const std::string &name);

/** Disarm everything and reset all counters. */
void disarmAll();

/** Names currently armed, in arming order. */
std::vector<std::string> armedNames();

/** Evaluations of `name` so far (0 when never armed). */
uint64_t hitCount(const std::string &name);

/** Times `name` actually fired (0 when never armed). */
uint64_t fireCount(const std::string &name);

namespace detail {
extern std::atomic<int> g_armedCount;
/** The slow path: count one evaluation and apply the policy. */
bool evaluateSlow(const char *name);
} // namespace detail

/** True when at least one failpoint is armed — the inline fast path. */
inline bool
anyArmed()
{
    return detail::g_armedCount.load(std::memory_order_relaxed) != 0;
}

/**
 * Count one evaluation of `name` and return whether the fault fires.
 * With nothing armed this is one relaxed load; sites normally use the
 * SE_FAILPOINT macros instead of calling this directly.
 */
inline bool
evaluate(const char *name)
{
    return anyArmed() && detail::evaluateSlow(name);
}

/** Arm one failpoint for the lifetime of a scope (test helper). */
class ScopedArm
{
  public:
    ScopedArm(const std::string &name, const std::string &policy)
        : name_(name)
    {
        arm(name_, policy);
    }
    ~ScopedArm() { disarm(name_); }
    ScopedArm(const ScopedArm &) = delete;
    ScopedArm &operator=(const ScopedArm &) = delete;

  private:
    std::string name_;
};

} // namespace failpoint
} // namespace se

/** Injection site: throws failpoint::InjectedFault when armed+fired. */
#define SE_FAILPOINT(name) \
    do { \
        if (::se::failpoint::evaluate(name)) \
            throw ::se::failpoint::InjectedFault( \
                std::string(::se::failpoint::kInjectedPrefix) + \
                " '" + (name) + "'"); \
    } while (0)

/**
 * Injection site that throws the SAME exception type a real fault at
 * this site would, so callers' error handling is exercised verbatim.
 */
#define SE_FAILPOINT_THROW(name, Exc) \
    do { \
        if (::se::failpoint::evaluate(name)) \
            throw Exc(std::string(::se::failpoint::kInjectedPrefix) + \
                      " '" + (name) + "'"); \
    } while (0)

#endif // SE_BASE_FAILPOINT_HH
