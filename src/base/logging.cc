#include "base/logging.hh"

namespace se {
namespace detail {

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace se
