/**
 * @file
 * Annotated mutex primitives — the only locks the library uses.
 *
 * se::base::Mutex / LockGuard / CondVar wrap their std:: counterparts
 * 1:1 at zero runtime cost; what they add is the thread-safety
 * annotation surface (base/thread_annotations.hh) that lets clang
 * verify every lock acquisition and every guarded-member access at
 * compile time. House rules the wrappers encode:
 *
 *  - No bare std::mutex outside base/ (grep-gated in CI): a new
 *    mutex is a base::Mutex, its protected members are tagged
 *    SE_GUARDED_BY, and helpers that assume the lock are tagged
 *    SE_REQUIRES.
 *  - No predicate-lambda condition waits. The analysis cannot see
 *    into a wait lambda, so guarded reads inside one would need an
 *    opt-out; write the explicit loop instead:
 *        while (!condition_over_guarded_members)
 *            cv_.wait(lk);
 *    which the analysis checks like any other locked region.
 *  - CondVar::wait() is modeled as holding the lock throughout
 *    (the caller's capability never lapses), matching how the
 *    post-wait state appears to the waiting code.
 *
 * LockGuard is deliberately both the lock_guard and the unique_lock
 * of the house: construction acquires, destruction releases whatever
 * is still held, and explicit unlock()/lock() support the
 * build-off-lock / re-check-after pattern (ServeFront::generationFor)
 * with the analysis tracking the capability across each transition.
 */

#ifndef SE_BASE_MUTEX_HH
#define SE_BASE_MUTEX_HH

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.hh"

namespace se {
namespace base {

class SE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() SE_ACQUIRE() { mu_.lock(); }
    void unlock() SE_RELEASE() { mu_.unlock(); }
    bool tryLock() SE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class LockGuard;
    std::mutex mu_;
};

/**
 * RAII lock over a Mutex. Acquired on construction; whatever is
 * still held is released on destruction. unlock()/lock() re-cycle
 * the capability mid-scope (the unique_lock idiom) under full
 * analysis tracking.
 */
class SE_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mu) SE_ACQUIRE(mu) : lk_(mu.mu_) {}

    ~LockGuard() SE_RELEASE() {}

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

    /** Release early (e.g. to run a build step off-lock). */
    void unlock() SE_RELEASE() { lk_.unlock(); }

    /** Re-acquire after an unlock(). */
    void lock() SE_ACQUIRE() { lk_.lock(); }

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lk_;
};

/**
 * Condition variable over base::Mutex. wait() atomically releases
 * and re-acquires the guard's mutex; to the thread-safety analysis
 * (and to the waiting code, which re-checks its predicate in an
 * explicit loop) the capability is held across the call.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void wait(LockGuard &lk) { cv_.wait(lk.lk_); }

    template <typename Clock, typename Duration>
    std::cv_status
    waitUntil(LockGuard &lk,
              const std::chrono::time_point<Clock, Duration> &tp)
    {
        return cv_.wait_until(lk.lk_, tp);
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace base
} // namespace se

#endif // SE_BASE_MUTEX_HH
