/**
 * @file
 * A fixed-size thread pool for the runtime layer.
 *
 * Deliberately simple: one shared FIFO queue, no work stealing. The
 * workloads this library fans out (per-matrix ALS decompositions,
 * per-layer accelerator runs) are coarse enough that queue contention
 * is irrelevant, and a FIFO keeps completion order close to submission
 * order, which keeps wall-clock profiles easy to reason about.
 *
 * Construction with `threads <= 1` still works: submit() runs fine on
 * a single worker, and parallelFor() degrades to an inline loop so
 * callers never need a special serial branch.
 */

#ifndef SE_BASE_THREAD_POOL_HH
#define SE_BASE_THREAD_POOL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "base/mutex.hh"

namespace se {

class ThreadPool
{
  public:
    /** Spawn `threads` workers; 0 or negative means "one per core". */
    explicit ThreadPool(int threads)
    {
        if (threads <= 0)
            threads = (int)std::thread::hardware_concurrency();
        if (threads < 1)
            threads = 1;
        workers_.reserve((size_t)threads);
        for (int i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            base::LockGuard lk(mu_);
            stopping_ = true;
        }
        cv_.notifyAll();
        for (auto &w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return (int)workers_.size(); }

    /**
     * Tasks drained by workers so far (monotonic). Exists for tests
     * that assert a code path stayed OFF the pool: snapshot, run the
     * path, and check the counter did not move. Inline parallelFor
     * degradations (serial pool, nested call, SerialScope upstream)
     * never touch it.
     */
    uint64_t
    tasksExecuted() const
    {
        return tasks_executed_.load(std::memory_order_relaxed);
    }

    /** Queue a task; the future carries its result (or exception). */
    template <typename F>
    auto
    submit(F &&f) -> std::future<decltype(f())>
    {
        using R = decltype(f());
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(f));
        std::future<R> fut = task->get_future();
        {
            base::LockGuard lk(mu_);
            queue_.emplace([task] { (*task)(); });
        }
        cv_.notifyOne();
        return fut;
    }

    /** True when the calling thread is one of this pool's workers. */
    bool
    onWorkerThread() const
    {
        return currentPool() == this;
    }

    /**
     * Run fn(i) for i in [0, n), spread over the pool; blocks until
     * every index has completed. Indices are handed out dynamically
     * (atomic counter), so uneven task costs balance themselves. With
     * a single worker the loop runs inline on the caller's thread.
     * Calling parallelFor from one of this pool's own workers (nested
     * parallelism) also runs inline — blocking a worker on tasks only
     * that same worker could drain would deadlock the pool.
     * The first exception thrown by any fn(i) is rethrown here.
     */
    void
    parallelFor(int64_t n, const std::function<void(int64_t)> &fn)
    {
        if (n <= 0)
            return;
        if (threadCount() <= 1 || n == 1 || onWorkerThread()) {
            for (int64_t i = 0; i < n; ++i)
                fn(i);
            return;
        }

        auto next = std::make_shared<std::atomic<int64_t>>(0);
        auto failed = std::make_shared<std::atomic<bool>>(false);
        auto first_error = std::make_shared<std::exception_ptr>();
        auto error_mu = std::make_shared<base::Mutex>();
        auto body = [next, failed, first_error, error_mu, n, &fn] {
            // Stop claiming new indices once any index has thrown,
            // mirroring the serial loop's early exit.
            for (int64_t i = next->fetch_add(1);
                 i < n && !failed->load(std::memory_order_relaxed);
                 i = next->fetch_add(1)) {
                try {
                    fn(i);
                } catch (...) {
                    failed->store(true, std::memory_order_relaxed);
                    base::LockGuard lk(*error_mu);
                    if (!*first_error)
                        *first_error = std::current_exception();
                }
            }
        };

        const int64_t chunks =
            std::min<int64_t>(n, (int64_t)threadCount());
        std::vector<std::future<void>> done;
        done.reserve((size_t)chunks);
        for (int64_t c = 0; c < chunks; ++c)
            done.push_back(submit(body));
        for (auto &d : done)
            d.wait();
        if (*first_error)
            std::rethrow_exception(*first_error);
    }

  private:
    /** The pool the calling thread serves as a worker, if any. */
    static const ThreadPool *&
    currentPool()
    {
        static thread_local const ThreadPool *current = nullptr;
        return current;
    }

    void
    workerLoop()
    {
        currentPool() = this;
        for (;;) {
            std::function<void()> task;
            {
                base::LockGuard lk(mu_);
                // Explicit loop, not a wait-lambda: the analysis
                // checks these guarded reads like any locked region.
                while (!stopping_ && queue_.empty())
                    cv_.wait(lk);
                if (stopping_ && queue_.empty())
                    return;
                task = std::move(queue_.front());
                queue_.pop();
            }
            tasks_executed_.fetch_add(1, std::memory_order_relaxed);
            task();
        }
    }

    base::Mutex mu_;
    base::CondVar cv_;
    std::queue<std::function<void()>> queue_ SE_GUARDED_BY(mu_);
    std::vector<std::thread> workers_;  ///< ctor/dtor only
    std::atomic<uint64_t> tasks_executed_{0};
    bool stopping_ SE_GUARDED_BY(mu_) = false;
};

} // namespace se

#endif // SE_BASE_THREAD_POOL_HH
