/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in the library draws from an explicitly
 * seeded Rng so that experiments and tests are bit-reproducible.
 */

#ifndef SE_BASE_RANDOM_HH
#define SE_BASE_RANDOM_HH

#include <cstdint>
#include <random>

namespace se {

/**
 * A small wrapper around std::mt19937_64 with convenience draws.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5e5e5e5eULL) : engine(seed) {}

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo = 0.0f, float hi = 1.0f)
    {
        std::uniform_real_distribution<float> d(lo, hi);
        return d(engine);
    }

    /** Standard normal draw scaled by stddev. */
    float
    gaussian(float mean = 0.0f, float stddev = 1.0f)
    {
        std::normal_distribution<float> d(mean, stddev);
        return d(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    integer(int64_t lo, int64_t hi)
    {
        std::uniform_int_distribution<int64_t> d(lo, hi);
        return d(engine);
    }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace se

#endif // SE_BASE_RANDOM_HH
