/**
 * @file
 * FNV-1a content hashing for cache keys.
 *
 * The runtime's decomposition cache keys results by the exact bytes of
 * the input weight matrix plus the algorithm options; FNV-1a is fast,
 * dependency-free, and a 64-bit digest makes accidental collisions
 * negligible at the cache sizes this library uses (thousands of
 * entries, not billions).
 */

#ifndef SE_BASE_HASH_HH
#define SE_BASE_HASH_HH

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "tensor/tensor.hh"

namespace se {

constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

/** FNV-1a over a byte range, chainable via the seed. */
inline uint64_t
fnv1a(const void *data, size_t len, uint64_t seed = kFnvOffsetBasis)
{
    const unsigned char *p = (const unsigned char *)data;
    uint64_t h = seed;
    for (size_t i = 0; i < len; ++i) {
        h ^= (uint64_t)p[i];
        h *= kFnvPrime;
    }
    return h;
}

/** Hash one trivially-copyable value into a running digest. */
template <typename T>
inline uint64_t
hashValue(const T &v, uint64_t seed = kFnvOffsetBasis)
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "hashValue needs a trivially copyable type");
    return fnv1a(&v, sizeof(T), seed);
}

/**
 * Content hash of a tensor: shape then raw float bytes, so tensors
 * with equal data but different shapes (e.g. (6,2) vs (4,3)) hash
 * differently. Float bit patterns are hashed as-is; -0.0f and 0.0f
 * therefore differ, which is correct for a cache that must reproduce
 * bit-identical results.
 */
inline uint64_t
hashTensor(const Tensor &t, uint64_t seed = kFnvOffsetBasis)
{
    uint64_t h = seed;
    const int64_t nd = t.ndim();
    h = hashValue(nd, h);
    for (int i = 0; i < t.ndim(); ++i)
        h = hashValue(t.dim(i), h);
    if (!t.empty())
        h = fnv1a(t.data(), (size_t)t.size() * sizeof(float), h);
    return h;
}

} // namespace se

#endif // SE_BASE_HASH_HH
