/**
 * @file
 * Clang -Wthread-safety macro shims.
 *
 * These macros make the library's lock discipline machine-checked:
 * a member tagged SE_GUARDED_BY(mu_) read without mu_ held, a
 * SE_REQUIRES method called off-lock, or an SE_EXCLUDES method called
 * under the lock it re-acquires is a COMPILE ERROR under the clang CI
 * job (`-Wthread-safety -Werror=thread-safety`). GCC ignores the
 * attributes entirely (every macro expands to nothing), so the g++
 * builds are byte-identical to the unannotated code.
 *
 * The vocabulary (mirrors clang's ThreadSafetyAnalysis doc, with the
 * same semantics as the widely used abseil shims):
 *
 *   SE_CAPABILITY("mutex")   class is a lockable capability
 *   SE_SCOPED_CAPABILITY     RAII class acquiring at ctor, releasing
 *                            at dtor (LockGuard)
 *   SE_GUARDED_BY(mu)        member may only be touched holding mu
 *   SE_PT_GUARDED_BY(mu)     pointee may only be touched holding mu
 *   SE_REQUIRES(mu)          caller must hold mu at entry
 *   SE_ACQUIRE(mu)           function acquires mu, holds it at exit
 *   SE_RELEASE(mu)           function releases mu
 *   SE_TRY_ACQUIRE(b, mu)    acquires mu iff it returns b
 *   SE_EXCLUDES(mu)          caller must NOT hold mu (the method
 *                            takes it itself — catches self-deadlock)
 *   SE_ACQUIRED_BEFORE/AFTER document (and, under
 *                            -Wthread-safety-beta, enforce) the house
 *                            lock order
 *   SE_NO_THREAD_SAFETY_ANALYSIS
 *                            opt one function out (used only where a
 *                            protocol the analysis cannot express —
 *                            never as a convenience)
 *
 * Annotations are contracts about CALLERS, not implementation notes:
 * when adding a member to an annotated class, decide which mutex
 * guards it and say so, or the clang job will make the next
 * off-lock access a build break — which is the point.
 */

#ifndef SE_BASE_THREAD_ANNOTATIONS_HH
#define SE_BASE_THREAD_ANNOTATIONS_HH

#if defined(__clang__)
#define SE_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SE_THREAD_ANNOTATION__(x)  // no-op on GCC and everything else
#endif

#define SE_CAPABILITY(x) SE_THREAD_ANNOTATION__(capability(x))

#define SE_SCOPED_CAPABILITY SE_THREAD_ANNOTATION__(scoped_lockable)

#define SE_GUARDED_BY(x) SE_THREAD_ANNOTATION__(guarded_by(x))

#define SE_PT_GUARDED_BY(x) SE_THREAD_ANNOTATION__(pt_guarded_by(x))

#define SE_ACQUIRED_BEFORE(...) \
    SE_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

#define SE_ACQUIRED_AFTER(...) \
    SE_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

#define SE_REQUIRES(...) \
    SE_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

#define SE_ACQUIRE(...) \
    SE_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

#define SE_RELEASE(...) \
    SE_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

#define SE_TRY_ACQUIRE(...) \
    SE_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define SE_EXCLUDES(...) \
    SE_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#define SE_RETURN_CAPABILITY(x) SE_THREAD_ANNOTATION__(lock_returned(x))

#define SE_NO_THREAD_SAFETY_ANALYSIS \
    SE_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif // SE_BASE_THREAD_ANNOTATIONS_HH
