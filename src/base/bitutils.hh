/**
 * @file
 * Bit-manipulation helpers used by the quantizers and the bit-serial
 * datapath models.
 */

#ifndef SE_BASE_BITUTILS_HH
#define SE_BASE_BITUTILS_HH

#include <cmath>
#include <cstdint>

namespace se {

/** Number of set bits in an unsigned value. */
inline int
popcount(uint64_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_popcountll(v);
#else
    int n = 0;
    while (v) {
        v &= v - 1;
        ++n;
    }
    return n;
#endif
}

/** True when v is an exact power of two (v > 0). */
inline bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Ceil of log2 for positive values; ceilLog2(1) == 0. */
inline int
ceilLog2(uint64_t v)
{
    int bits = 0;
    uint64_t p = 1;
    while (p < v) {
        p <<= 1;
        ++bits;
    }
    return bits;
}

/** Integer ceiling division. */
inline int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Round |x| to the nearest power of two exponent, i.e. the p minimizing
 * | |x| - 2^p |. Returns the exponent; caller handles sign and zero.
 *
 * Rounding in log domain: p = round(log2|x|), then the neighbour check
 * fixes the one-off cases where linear distance disagrees with log
 * distance (e.g. 3.0 is closer to 4 than to 2 linearly).
 */
inline int
nearestPow2Exp(double x)
{
    double ax = std::abs(x);
    int p = (int)std::lround(std::log2(ax));
    // Linear-distance neighbour correction.
    double best = std::abs(ax - std::ldexp(1.0, p));
    for (int dp : {-1, 1}) {
        double cand = std::abs(ax - std::ldexp(1.0, p + dp));
        if (cand < best) {
            best = cand;
            p += dp;
        }
    }
    return p;
}

} // namespace se

#endif // SE_BASE_BITUTILS_HH
