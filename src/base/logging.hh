/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            prints and aborts.
 * fatal()  — the simulation cannot continue because of a user error (bad
 *            configuration, invalid argument); prints and exits(1).
 * warn()   — something is approximated or may behave unexpectedly.
 * inform() — plain status output.
 */

#ifndef SE_BASE_LOGGING_HH
#define SE_BASE_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace se {

namespace detail {

/** Compose a message out of stream-insertable parts. */
template <typename... Args>
std::string
composeMessage(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

} // namespace se

/** Abort on an internal invariant violation (library bug). */
#define SE_PANIC(...) \
    ::se::detail::panicImpl(__FILE__, __LINE__, \
                            ::se::detail::composeMessage(__VA_ARGS__))

/** Exit on an unrecoverable user/configuration error. */
#define SE_FATAL(...) \
    ::se::detail::fatalImpl(__FILE__, __LINE__, \
                            ::se::detail::composeMessage(__VA_ARGS__))

/** Non-fatal warning. */
#define SE_WARN(...) \
    ::se::detail::warnImpl(::se::detail::composeMessage(__VA_ARGS__))

/** Informational status message. */
#define SE_INFORM(...) \
    ::se::detail::informImpl(::se::detail::composeMessage(__VA_ARGS__))

/** Checked assertion that survives NDEBUG; use for cheap invariants. */
#define SE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            SE_PANIC("assertion '", #cond, "' failed: ", \
                     ::se::detail::composeMessage(__VA_ARGS__)); \
        } \
    } while (0)

#endif // SE_BASE_LOGGING_HH
