/**
 * @file
 * Model zoo.
 *
 * Two products per architecture:
 *  - buildSim(): a live, trainable Sequential at reduced scale
 *    (functional runs: training, SE re-training, accuracy, activation
 *    statistics);
 *  - paperShapes(): the exact layer geometry of the full-size model the
 *    paper evaluates (VGG11/ResNet50/MBV2/EffB0 on ImageNet,
 *    VGG19/ResNet164 on CIFAR-10, DeepLabV3+ on CamVid, MLP-1/2 on
 *    MNIST), consumed by the accelerator simulators which need shapes
 *    and sparsity, not live tensors.
 */

#ifndef SE_MODELS_ZOO_HH
#define SE_MODELS_ZOO_HH

#include <memory>
#include <string>

#include "nn/blocks.hh"
#include "sim/layer_shape.hh"

namespace se {
namespace models {

/** The nine models the paper evaluates. */
enum class ModelId
{
    VGG11,          ///< ImageNet
    VGG19,          ///< CIFAR-10
    ResNet50,       ///< ImageNet
    ResNet164,      ///< CIFAR-10
    MobileNetV2,    ///< ImageNet (compact)
    EfficientNetB0, ///< ImageNet (compact, squeeze-excite)
    DeepLabV3Plus,  ///< CamVid (segmentation)
    MLP1,           ///< MNIST
    MLP2,           ///< MNIST
};

/** Display name, e.g. "ResNet50". */
std::string modelName(ModelId id);

/** Dataset the paper pairs with the model, e.g. "ImageNet". */
std::string datasetName(ModelId id);

/** Options for the reduced-scale trainable builders. */
struct SimConfig
{
    int numClasses = 10;
    int64_t inChannels = 3;
    int64_t inHeight = 16;
    int64_t inWidth = 16;
    /** Base width; architectures scale their stage widths from this. */
    int64_t baseWidth = 8;
    uint64_t seed = 7;
};

/** Build a reduced-scale trainable instance of the architecture. */
std::unique_ptr<nn::Sequential> buildSim(ModelId id,
                                         const SimConfig &cfg);

/** Exact full-size layer geometry for the accelerator simulators. */
sim::Workload paperShapes(ModelId id);

/** All seven accelerator-benchmark models in the paper's plot order. */
std::vector<ModelId> acceleratorBenchmarkModels();

} // namespace models
} // namespace se

#endif // SE_MODELS_ZOO_HH
