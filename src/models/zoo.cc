#include "models/zoo.hh"

#include <algorithm>

#include "base/random.hh"

namespace se {
namespace models {

using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::InvertedResidual;
using nn::Linear;
using nn::MaxPool2d;
using nn::ReLU;
using nn::Residual;
using nn::Sequential;
using nn::SqueezeExcite;
using nn::UpsampleNearest;
using sim::LayerKind;
using sim::LayerShape;
using sim::Workload;

std::string
modelName(ModelId id)
{
    switch (id) {
      case ModelId::VGG11: return "VGG11";
      case ModelId::VGG19: return "VGG19";
      case ModelId::ResNet50: return "ResNet50";
      case ModelId::ResNet164: return "ResNet164";
      case ModelId::MobileNetV2: return "MobileNetV2";
      case ModelId::EfficientNetB0: return "EfficientNet-B0";
      case ModelId::DeepLabV3Plus: return "DeepLabV3+";
      case ModelId::MLP1: return "MLP-1";
      case ModelId::MLP2: return "MLP-2";
    }
    return "?";
}

std::string
datasetName(ModelId id)
{
    switch (id) {
      case ModelId::VGG11:
      case ModelId::ResNet50:
      case ModelId::MobileNetV2:
      case ModelId::EfficientNetB0:
        return "ImageNet";
      case ModelId::VGG19:
      case ModelId::ResNet164:
        return "CIFAR-10";
      case ModelId::DeepLabV3Plus:
        return "CamVid";
      case ModelId::MLP1:
      case ModelId::MLP2:
        return "MNIST";
    }
    return "?";
}

std::vector<ModelId>
acceleratorBenchmarkModels()
{
    return {ModelId::VGG11, ModelId::ResNet50, ModelId::MobileNetV2,
            ModelId::EfficientNetB0, ModelId::VGG19, ModelId::ResNet164,
            ModelId::DeepLabV3Plus};
}

// ====================================================================
// Reduced-scale trainable builders
// ====================================================================

namespace {

void
addConvBnRelu(Sequential &net, int64_t in_ch, int64_t out_ch,
              int64_t kernel, int64_t stride, int64_t pad, Rng &rng)
{
    net.add<Conv2d>(in_ch, out_ch, kernel, stride, pad, 1, rng, false);
    net.add<BatchNorm2d>(out_ch);
    net.add<ReLU>();
}

/** Bottleneck residual (1x1 -> 3x3 -> 1x1) with optional projection. */
std::unique_ptr<Residual>
makeBottleneck(int64_t in_ch, int64_t mid_ch, int64_t out_ch,
               int64_t stride, Rng &rng)
{
    auto main = std::make_unique<Sequential>();
    main->add<Conv2d>(in_ch, mid_ch, 1, 1, 0, 1, rng, false);
    main->add<BatchNorm2d>(mid_ch);
    main->add<ReLU>();
    main->add<Conv2d>(mid_ch, mid_ch, 3, stride, 1, 1, rng, false);
    main->add<BatchNorm2d>(mid_ch);
    main->add<ReLU>();
    main->add<Conv2d>(mid_ch, out_ch, 1, 1, 0, 1, rng, false);
    main->add<BatchNorm2d>(out_ch);

    std::unique_ptr<Sequential> shortcut;
    if (stride != 1 || in_ch != out_ch) {
        shortcut = std::make_unique<Sequential>();
        shortcut->add<Conv2d>(in_ch, out_ch, 1, stride, 0, 1, rng,
                              false);
        shortcut->add<BatchNorm2d>(out_ch);
    }
    return std::make_unique<Residual>(std::move(main),
                                      std::move(shortcut));
}

std::unique_ptr<Sequential>
buildVggSim(const SimConfig &cfg, int convs_per_stage, Rng &rng)
{
    auto net = std::make_unique<Sequential>();
    int64_t ch = cfg.inChannels;
    int64_t width = cfg.baseWidth;
    // Three stages with pooling between; VGG19-sim gets deeper stages.
    for (int stage = 0; stage < 3; ++stage) {
        for (int i = 0; i < convs_per_stage; ++i) {
            addConvBnRelu(*net, ch, width, 3, 1, 1, rng);
            ch = width;
        }
        net->add<MaxPool2d>(2, 2);
        width *= 2;
    }
    net->add<GlobalAvgPool>();
    net->add<Flatten>();
    net->add<Linear>(ch, cfg.numClasses, rng);
    return net;
}

std::unique_ptr<Sequential>
buildResNetSim(const SimConfig &cfg, int blocks_per_stage, Rng &rng)
{
    auto net = std::make_unique<Sequential>();
    int64_t w = cfg.baseWidth;
    addConvBnRelu(*net, cfg.inChannels, w, 3, 1, 1, rng);
    int64_t in_ch = w;
    for (int stage = 0; stage < 3; ++stage) {
        const int64_t mid = w << stage;
        const int64_t out = mid * 2;
        for (int b = 0; b < blocks_per_stage; ++b) {
            const int64_t stride = (b == 0 && stage > 0) ? 2 : 1;
            net->addLayer(makeBottleneck(in_ch, mid, out, stride, rng));
            in_ch = out;
        }
    }
    net->add<GlobalAvgPool>();
    net->add<Flatten>();
    net->add<Linear>(in_ch, cfg.numClasses, rng);
    return net;
}

std::unique_ptr<Sequential>
buildMobileNetSim(const SimConfig &cfg, bool use_se, Rng &rng)
{
    auto net = std::make_unique<Sequential>();
    const int64_t w = cfg.baseWidth;
    addConvBnRelu(*net, cfg.inChannels, w, 3, 1, 1, rng);
    // (expand, out, stride) triplets, scaled-down MBV2 profile.
    struct Cfg { int64_t t, c, s; };
    const Cfg stages[] = {{1, w, 1}, {4, w * 2, 2}, {4, w * 2, 1},
                          {4, w * 4, 2}, {4, w * 4, 1}};
    int64_t in_ch = w;
    for (const auto &st : stages) {
        net->add<InvertedResidual>(in_ch, st.c, st.s, st.t, use_se, rng);
        in_ch = st.c;
    }
    addConvBnRelu(*net, in_ch, w * 8, 1, 1, 0, rng);
    net->add<GlobalAvgPool>();
    net->add<Flatten>();
    net->add<Linear>(w * 8, cfg.numClasses, rng);
    return net;
}

std::unique_ptr<Sequential>
buildDeepLabSim(const SimConfig &cfg, Rng &rng)
{
    // Encoder (stride 4) -> atrous conv -> 1x1 classifier -> upsample.
    auto net = std::make_unique<Sequential>();
    const int64_t w = cfg.baseWidth;
    addConvBnRelu(*net, cfg.inChannels, w, 3, 1, 1, rng);
    net->add<MaxPool2d>(2, 2);
    addConvBnRelu(*net, w, w * 2, 3, 1, 1, rng);
    net->add<MaxPool2d>(2, 2);
    net->addLayer(makeBottleneck(w * 2, w, w * 4, 1, rng));
    // Atrous 3x3 (dilation 2) emulating the ASPP branch.
    net->add<Conv2d>(w * 4, w * 4, 3, 1, 2, 1, rng, false, 2);
    net->add<BatchNorm2d>(w * 4);
    net->add<ReLU>();
    net->add<Conv2d>(w * 4, cfg.numClasses, 1, 1, 0, 1, rng, true);
    net->add<UpsampleNearest>(4);
    return net;
}

std::unique_ptr<Sequential>
buildMlpSim(const SimConfig &cfg, std::vector<int64_t> hidden, Rng &rng)
{
    auto net = std::make_unique<Sequential>();
    net->add<Flatten>();
    int64_t in_f = cfg.inChannels * cfg.inHeight * cfg.inWidth;
    for (int64_t h : hidden) {
        net->add<Linear>(in_f, h, rng);
        net->add<ReLU>();
        in_f = h;
    }
    net->add<Linear>(in_f, cfg.numClasses, rng);
    return net;
}

} // namespace

std::unique_ptr<nn::Sequential>
buildSim(ModelId id, const SimConfig &cfg)
{
    Rng rng(cfg.seed);
    switch (id) {
      case ModelId::VGG11:
        return buildVggSim(cfg, 1, rng);
      case ModelId::VGG19:
        return buildVggSim(cfg, 2, rng);
      case ModelId::ResNet50:
        return buildResNetSim(cfg, 2, rng);
      case ModelId::ResNet164:
        return buildResNetSim(cfg, 3, rng);
      case ModelId::MobileNetV2:
        return buildMobileNetSim(cfg, false, rng);
      case ModelId::EfficientNetB0:
        return buildMobileNetSim(cfg, true, rng);
      case ModelId::DeepLabV3Plus:
        return buildDeepLabSim(cfg, rng);
      case ModelId::MLP1:
        return buildMlpSim(cfg, {128, 64}, rng);
      case ModelId::MLP2:
        return buildMlpSim(cfg, {64}, rng);
    }
    SE_PANIC("unknown model id");
}

// ====================================================================
// Paper-scale geometry
// ====================================================================

namespace {

LayerShape
conv(const std::string &name, int64_t c, int64_t m, int64_t hw,
     int64_t k, int64_t stride, int64_t pad)
{
    LayerShape l;
    l.name = name;
    l.kind = LayerKind::Conv;
    l.c = c;
    l.m = m;
    l.h = hw;
    l.w = hw;
    l.r = k;
    l.s = k;
    l.stride = stride;
    l.pad = pad;
    return l;
}

LayerShape
convHW(const std::string &name, int64_t c, int64_t m, int64_t h,
       int64_t w, int64_t k, int64_t stride, int64_t pad)
{
    LayerShape l = conv(name, c, m, h, k, stride, pad);
    l.w = w;
    return l;
}

LayerShape
dwconv(const std::string &name, int64_t c, int64_t hw, int64_t k,
       int64_t stride, int64_t pad)
{
    LayerShape l = conv(name, c, c, hw, k, stride, pad);
    l.kind = LayerKind::DepthwiseConv;
    return l;
}

LayerShape
fc(const std::string &name, int64_t c, int64_t m)
{
    LayerShape l;
    l.name = name;
    l.kind = LayerKind::FullyConnected;
    l.c = c;
    l.m = m;
    return l;
}

LayerShape
seGate(const std::string &name, int64_t c, int64_t reduced)
{
    // Modeled as the pair of FC layers c->reduced->c; the simulator
    // treats SqueezeExcite like FC with no weight reuse.
    LayerShape l;
    l.name = name;
    l.kind = LayerKind::SqueezeExcite;
    l.c = c;
    l.m = 2 * reduced;  // total MACs c*reduced + reduced*c == c * (2r)
    return l;
}

Workload
vgg11Paper()
{
    Workload w;
    w.name = "VGG11";
    w.dataset = "ImageNet";
    // conv layers (C, M, in HW); pool halves HW after marked layers.
    w.layers = {
        conv("conv1", 3, 64, 224, 3, 1, 1),
        conv("conv2", 64, 128, 112, 3, 1, 1),
        conv("conv3", 128, 256, 56, 3, 1, 1),
        conv("conv4", 256, 256, 56, 3, 1, 1),
        conv("conv5", 256, 512, 28, 3, 1, 1),
        conv("conv6", 512, 512, 28, 3, 1, 1),
        conv("conv7", 512, 512, 14, 3, 1, 1),
        conv("conv8", 512, 512, 14, 3, 1, 1),
        fc("fc1", 512 * 7 * 7, 4096),
        fc("fc2", 4096, 4096),
        fc("fc3", 4096, 1000),
    };
    return w;
}

Workload
vgg19CifarPaper()
{
    Workload w;
    w.name = "VGG19";
    w.dataset = "CIFAR-10";
    const struct { int64_t c, m, hw; } cfg[] = {
        {3, 64, 32},    {64, 64, 32},
        {64, 128, 16},  {128, 128, 16},
        {128, 256, 8},  {256, 256, 8},  {256, 256, 8},  {256, 256, 8},
        {256, 512, 4},  {512, 512, 4},  {512, 512, 4},  {512, 512, 4},
        {512, 512, 2},  {512, 512, 2},  {512, 512, 2},  {512, 512, 2},
    };
    int idx = 1;
    for (const auto &l : cfg)
        w.layers.push_back(conv("conv" + std::to_string(idx++), l.c,
                                l.m, l.hw, 3, 1, 1));
    w.layers.push_back(fc("fc", 512, 10));
    return w;
}

void
addBottleneckPaper(Workload &w, const std::string &prefix, int64_t in_ch,
                   int64_t mid, int64_t out, int64_t hw, int64_t stride,
                   bool project)
{
    w.layers.push_back(conv(prefix + ".conv1", in_ch, mid, hw, 1, 1, 0));
    w.layers.push_back(
        conv(prefix + ".conv2", mid, mid, hw, 3, stride, 1));
    const int64_t hw2 = (hw + 2 - 3) / stride + 1;
    w.layers.push_back(conv(prefix + ".conv3", mid, out, hw2, 1, 1, 0));
    if (project)
        w.layers.push_back(
            conv(prefix + ".proj", in_ch, out, hw, 1, stride, 0));
}

Workload
resnet50Paper()
{
    Workload w;
    w.name = "ResNet50";
    w.dataset = "ImageNet";
    w.layers.push_back(conv("conv1", 3, 64, 224, 7, 2, 3));
    // After conv1 + maxpool: 56x56, 64 channels.
    const struct { int64_t mid, out, blocks, hw; } stages[] = {
        {64, 256, 3, 56}, {128, 512, 4, 56},
        {256, 1024, 6, 28}, {512, 2048, 3, 14},
    };
    int64_t in_ch = 64;
    for (int s = 0; s < 4; ++s) {
        int64_t hw = stages[s].hw;
        for (int64_t b = 0; b < stages[s].blocks; ++b) {
            const int64_t stride = (b == 0 && s > 0) ? 2 : 1;
            const std::string prefix =
                "stage" + std::to_string(s + 1) + ".block" +
                std::to_string(b + 1);
            addBottleneckPaper(w, prefix, in_ch, stages[s].mid,
                               stages[s].out, hw, stride, b == 0);
            in_ch = stages[s].out;
            if (stride == 2)
                hw /= 2;
        }
    }
    w.layers.push_back(fc("fc", 2048, 1000));
    return w;
}

Workload
resnet164Paper()
{
    Workload w;
    w.name = "ResNet164";
    w.dataset = "CIFAR-10";
    w.layers.push_back(conv("conv1", 3, 16, 32, 3, 1, 1));
    // 3 stages x 18 bottleneck blocks.
    const struct { int64_t mid, out, hw; } stages[] = {
        {16, 64, 32}, {32, 128, 32}, {64, 256, 16},
    };
    int64_t in_ch = 16;
    for (int s = 0; s < 3; ++s) {
        int64_t hw = stages[s].hw;
        for (int b = 0; b < 18; ++b) {
            const int64_t stride = (b == 0 && s > 0) ? 2 : 1;
            const std::string prefix =
                "stage" + std::to_string(s + 1) + ".block" +
                std::to_string(b + 1);
            addBottleneckPaper(w, prefix, in_ch, stages[s].mid,
                               stages[s].out, hw, stride, b == 0);
            in_ch = stages[s].out;
            if (stride == 2)
                hw /= 2;
        }
    }
    w.layers.push_back(fc("fc", 256, 10));
    return w;
}

Workload
mobileNetV2Paper()
{
    Workload w;
    w.name = "MobileNetV2";
    w.dataset = "ImageNet";
    w.layers.push_back(conv("stem", 3, 32, 224, 3, 2, 1));
    // t (expand), c (out), n (repeat), s (first stride).
    const struct { int64_t t, c, n, s; } cfg[] = {
        {1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
        {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
    };
    int64_t in_ch = 32, hw = 112;
    int blk = 0;
    for (const auto &st : cfg) {
        for (int64_t i = 0; i < st.n; ++i) {
            const int64_t stride = i == 0 ? st.s : 1;
            const int64_t hidden = in_ch * st.t;
            const std::string p = "block" + std::to_string(++blk);
            if (st.t != 1)
                w.layers.push_back(
                    conv(p + ".expand", in_ch, hidden, hw, 1, 1, 0));
            w.layers.push_back(
                dwconv(p + ".dw", hidden, hw, 3, stride, 1));
            if (stride == 2)
                hw /= 2;
            w.layers.push_back(
                conv(p + ".project", hidden, st.c, hw, 1, 1, 0));
            in_ch = st.c;
        }
    }
    w.layers.push_back(conv("head", 320, 1280, 7, 1, 1, 0));
    w.layers.push_back(fc("fc", 1280, 1000));
    return w;
}

Workload
efficientNetB0Paper()
{
    Workload w;
    w.name = "EfficientNet-B0";
    w.dataset = "ImageNet";
    w.layers.push_back(conv("stem", 3, 32, 224, 3, 2, 1));
    // MBConv: t, c, n, s, kernel; every block has squeeze-excite with
    // reduction computed from the block input channels (ratio 0.25).
    const struct { int64_t t, c, n, s, k; } cfg[] = {
        {1, 16, 1, 1, 3}, {6, 24, 2, 2, 3}, {6, 40, 2, 2, 5},
        {6, 80, 3, 2, 3}, {6, 112, 3, 1, 5}, {6, 192, 4, 2, 5},
        {6, 320, 1, 1, 3},
    };
    int64_t in_ch = 32, hw = 112;
    int blk = 0;
    for (const auto &st : cfg) {
        for (int64_t i = 0; i < st.n; ++i) {
            const int64_t stride = i == 0 ? st.s : 1;
            const int64_t hidden = in_ch * st.t;
            const int64_t se_red =
                std::max<int64_t>(1, in_ch / 4);
            const std::string p = "mbconv" + std::to_string(++blk);
            if (st.t != 1)
                w.layers.push_back(
                    conv(p + ".expand", in_ch, hidden, hw, 1, 1, 0));
            w.layers.push_back(dwconv(p + ".dw", hidden, hw, st.k,
                                      stride, st.k / 2));
            if (stride == 2)
                hw /= 2;
            w.layers.push_back(seGate(p + ".se", hidden, se_red));
            w.layers.push_back(
                conv(p + ".project", hidden, st.c, hw, 1, 1, 0));
            in_ch = st.c;
        }
    }
    w.layers.push_back(conv("head", 320, 1280, 7, 1, 1, 0));
    w.layers.push_back(fc("fc", 1280, 1000));
    return w;
}

Workload
deepLabV3PlusPaper()
{
    // DeepLabV3+ with ResNet50 backbone at output stride 16 on
    // CamVid-sized inputs (360x480). The last ResNet stage runs at
    // stride 1 with dilation 2 (geometry below keeps the dilated
    // spatial size).
    Workload w;
    w.name = "DeepLabV3+";
    w.dataset = "CamVid";
    const int64_t H = 360, W = 480;
    w.layers.push_back(convHW("conv1", 3, 64, H, W, 7, 2, 3));
    const struct { int64_t mid, out, blocks; } stages[] = {
        {64, 256, 3}, {128, 512, 4}, {256, 1024, 6}, {512, 2048, 3},
    };
    int64_t in_ch = 64;
    int64_t h = H / 4, ww = W / 4;  // after conv1 + maxpool
    for (int s = 0; s < 4; ++s) {
        for (int64_t b = 0; b < stages[s].blocks; ++b) {
            // Output stride 16: stage 4 keeps stride 1.
            const int64_t stride = (b == 0 && s > 0 && s < 3) ? 2 : 1;
            const std::string prefix =
                "stage" + std::to_string(s + 1) + ".block" +
                std::to_string(b + 1);
            w.layers.push_back(convHW(prefix + ".conv1", in_ch,
                                      stages[s].mid, h, ww, 1, 1, 0));
            w.layers.push_back(convHW(prefix + ".conv2", stages[s].mid,
                                      stages[s].mid, h, ww, 3, stride,
                                      1));
            if (stride == 2) {
                h /= 2;
                ww /= 2;
            }
            w.layers.push_back(convHW(prefix + ".conv3", stages[s].mid,
                                      stages[s].out, h, ww, 1, 1, 0));
            if (b == 0)
                w.layers.push_back(convHW(prefix + ".proj", in_ch,
                                          stages[s].out, h * stride,
                                          ww * stride, 1, stride, 0));
            in_ch = stages[s].out;
        }
    }
    // ASPP at 23x30: 1x1 + 3 atrous 3x3 + image pooling, all to 256.
    w.layers.push_back(convHW("aspp.conv1x1", 2048, 256, h, ww, 1, 1, 0));
    for (int rate : {6, 12, 18})
        w.layers.push_back(convHW(
            "aspp.atrous" + std::to_string(rate), 2048, 256, h, ww, 3, 1,
            1));
    w.layers.push_back(convHW("aspp.pool", 2048, 256, 1, 1, 1, 1, 0));
    w.layers.push_back(convHW("aspp.merge", 1280, 256, h, ww, 1, 1, 0));
    // Decoder on stride-4 low-level features.
    w.layers.push_back(
        convHW("decoder.lowlevel", 256, 48, H / 4, W / 4, 1, 1, 0));
    w.layers.push_back(
        convHW("decoder.conv1", 304, 256, H / 4, W / 4, 3, 1, 1));
    w.layers.push_back(
        convHW("decoder.conv2", 256, 256, H / 4, W / 4, 3, 1, 1));
    w.layers.push_back(
        convHW("decoder.classifier", 256, 11, H / 4, W / 4, 1, 1, 0));
    return w;
}

Workload
mlpPaper(const std::string &name, std::vector<int64_t> dims)
{
    Workload w;
    w.name = name;
    w.dataset = "MNIST";
    for (size_t i = 0; i + 1 < dims.size(); ++i)
        w.layers.push_back(fc("fc" + std::to_string(i + 1), dims[i],
                              dims[i + 1]));
    return w;
}

} // namespace

Workload
paperShapes(ModelId id)
{
    switch (id) {
      case ModelId::VGG11: return vgg11Paper();
      case ModelId::VGG19: return vgg19CifarPaper();
      case ModelId::ResNet50: return resnet50Paper();
      case ModelId::ResNet164: return resnet164Paper();
      case ModelId::MobileNetV2: return mobileNetV2Paper();
      case ModelId::EfficientNetB0: return efficientNetB0Paper();
      case ModelId::DeepLabV3Plus: return deepLabV3PlusPaper();
      case ModelId::MLP1:
        // MLP-1 from [40]: 784-1024-1024-1024-10 (14.1 MB FP32).
        return mlpPaper("MLP-1", {784, 1024, 1024, 1024, 10});
      case ModelId::MLP2:
        // MLP-2 from [56]: 784-300-100-10 (~1.07 MB FP32).
        return mlpPaper("MLP-2", {784, 300, 100, 10});
    }
    SE_PANIC("unknown model id");
}

} // namespace models
} // namespace se
