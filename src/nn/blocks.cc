#include "nn/blocks.hh"

#include "base/random.hh"

namespace se {
namespace nn {

// ------------------------------------------------------------ Sequential

Tensor
Sequential::forward(const Tensor &x, bool train)
{
    Tensor h = x;
    for (auto &l : children)
        h = l->forward(h, train);
    return h;
}

Tensor
Sequential::backward(const Tensor &gy)
{
    Tensor g = gy;
    for (auto it = children.rbegin(); it != children.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

std::vector<Param>
Sequential::params()
{
    std::vector<Param> all;
    for (auto &l : children)
        for (auto &p : l->params())
            all.push_back(p);
    return all;
}

void
Sequential::visit(const std::function<void(Layer &)> &fn)
{
    for (auto &l : children) {
        if (auto *seq = dynamic_cast<Sequential *>(l.get()))
            seq->visit(fn);
        else if (auto *res = dynamic_cast<Residual *>(l.get()))
            res->visit(fn);
        else if (auto *inv = dynamic_cast<InvertedResidual *>(l.get()))
            inv->visit(fn);
        else if (auto *sqz = dynamic_cast<SqueezeExcite *>(l.get()))
            sqz->visit(fn);
        else
            fn(*l);
    }
}

// -------------------------------------------------------------- Residual

Tensor
Residual::forward(const Tensor &x, bool train)
{
    Tensor main_out = mainPath->forward(x, train);
    Tensor short_out =
        shortcutPath ? shortcutPath->forward(x, train) : x;
    SE_ASSERT(main_out.size() == short_out.size(),
              "residual branch shape mismatch");
    Tensor sum = main_out;
    for (int64_t i = 0; i < sum.size(); ++i)
        sum[i] += short_out[i];
    return outRelu.forward(sum, train);
}

Tensor
Residual::backward(const Tensor &gy)
{
    Tensor gsum = outRelu.backward(gy);
    Tensor gmain = mainPath->backward(gsum);
    Tensor gshort =
        shortcutPath ? shortcutPath->backward(gsum) : gsum;
    Tensor gx = gmain;
    for (int64_t i = 0; i < gx.size(); ++i)
        gx[i] += gshort[i];
    return gx;
}

std::vector<Param>
Residual::params()
{
    std::vector<Param> all = mainPath->params();
    if (shortcutPath)
        for (auto &p : shortcutPath->params())
            all.push_back(p);
    return all;
}

void
Residual::visit(const std::function<void(Layer &)> &fn)
{
    mainPath->visit(fn);
    if (shortcutPath)
        shortcutPath->visit(fn);
}

// --------------------------------------------------------- SqueezeExcite

SqueezeExcite::SqueezeExcite(int64_t channels, int64_t reduced, Rng &rng)
    : ch(channels)
{
    fc1 = std::make_unique<Linear>(channels, reduced, rng);
    fc2 = std::make_unique<Linear>(reduced, channels, rng);
}

Tensor
SqueezeExcite::forward(const Tensor &x, bool train)
{
    cachedX = x;
    Tensor pooled = gap.forward(x, train);
    Tensor flat = flatten.forward(pooled, train);
    Tensor h = fc1->forward(flat, train);
    h = relu.forward(h, train);
    h = fc2->forward(h, train);
    Tensor scale = sigmoid.forward(h, train);  // (N, C)
    cachedScale = scale;

    const int64_t n = x.dim(0), hh = x.dim(2), ww = x.dim(3);
    Tensor y(x.shape());
    for (int64_t b = 0; b < n; ++b)
        for (int64_t c = 0; c < ch; ++c) {
            const float s = scale.at(b, c);
            for (int64_t i = 0; i < hh; ++i)
                for (int64_t j = 0; j < ww; ++j)
                    y.at(b, c, i, j) = x.at(b, c, i, j) * s;
        }
    return y;
}

Tensor
SqueezeExcite::backward(const Tensor &gy)
{
    const Tensor &x = cachedX;
    const int64_t n = x.dim(0), hh = x.dim(2), ww = x.dim(3);

    // d/dscale: sum over spatial of gy * x; d/dx (direct): gy * scale.
    Tensor gscale({n, ch});
    Tensor gx(x.shape());
    for (int64_t b = 0; b < n; ++b)
        for (int64_t c = 0; c < ch; ++c) {
            double s = 0.0;
            const float sc = cachedScale.at(b, c);
            for (int64_t i = 0; i < hh; ++i)
                for (int64_t j = 0; j < ww; ++j) {
                    s += (double)gy.at(b, c, i, j) * x.at(b, c, i, j);
                    gx.at(b, c, i, j) = gy.at(b, c, i, j) * sc;
                }
            gscale.at(b, c) = (float)s;
        }

    Tensor g = sigmoid.backward(gscale);
    g = fc2->backward(g);
    g = relu.backward(g);
    g = fc1->backward(g);
    g = flatten.backward(g);
    Tensor gx_pool = gap.backward(g);
    for (int64_t i = 0; i < gx.size(); ++i)
        gx[i] += gx_pool[i];
    return gx;
}

std::vector<Param>
SqueezeExcite::params()
{
    std::vector<Param> all = fc1->params();
    for (auto &p : fc2->params())
        all.push_back(p);
    return all;
}

void
SqueezeExcite::visit(const std::function<void(Layer &)> &fn)
{
    fn(*fc1);
    fn(*fc2);
}

// ------------------------------------------------------ InvertedResidual

InvertedResidual::InvertedResidual(int64_t in_ch, int64_t out_ch,
                                   int64_t stride, int64_t expand_ratio,
                                   bool use_se, Rng &rng)
{
    useSkip = stride == 1 && in_ch == out_ch;
    path = std::make_unique<Sequential>();
    const int64_t hidden = in_ch * expand_ratio;
    if (expand_ratio != 1) {
        path->add<Conv2d>(in_ch, hidden, 1, 1, 0, 1, rng, false);
        path->add<BatchNorm2d>(hidden);
        path->add<ReLU>(6.0f);
    }
    // Depth-wise 3x3.
    path->add<Conv2d>(hidden, hidden, 3, stride, 1, hidden, rng, false);
    path->add<BatchNorm2d>(hidden);
    path->add<ReLU>(6.0f);
    if (use_se)
        path->add<SqueezeExcite>(hidden, std::max<int64_t>(1, hidden / 4),
                                 rng);
    // Linear projection.
    path->add<Conv2d>(hidden, out_ch, 1, 1, 0, 1, rng, false);
    path->add<BatchNorm2d>(out_ch);
}

Tensor
InvertedResidual::forward(const Tensor &x, bool train)
{
    Tensor y = path->forward(x, train);
    if (useSkip)
        for (int64_t i = 0; i < y.size(); ++i)
            y[i] += x[i];
    return y;
}

Tensor
InvertedResidual::backward(const Tensor &gy)
{
    Tensor gx = path->backward(gy);
    if (useSkip)
        for (int64_t i = 0; i < gx.size(); ++i)
            gx[i] += gy[i];
    return gx;
}

std::vector<Param>
InvertedResidual::params()
{
    return path->params();
}

void
InvertedResidual::visit(const std::function<void(Layer &)> &fn)
{
    path->visit(fn);
}

} // namespace nn
} // namespace se
