/**
 * @file
 * SGD with momentum and weight decay — the optimizer the paper's
 * re-training loop interleaves with the SmartExchange projection.
 */

#ifndef SE_NN_OPTIM_HH
#define SE_NN_OPTIM_HH

#include <unordered_map>

#include "nn/layer.hh"

namespace se {
namespace nn {

/** Stochastic gradient descent with classical momentum. */
class Sgd
{
  public:
    explicit Sgd(float lr, float momentum = 0.9f,
                 float weight_decay = 0.0f)
        : lr(lr), momentum(momentum), weightDecay(weight_decay)
    {}

    /** Apply one update to all parameters and zero their gradients. */
    void
    step(const std::vector<Param> &params)
    {
        for (const auto &p : params) {
            Tensor &v = velocity[p.value];
            if (v.empty())
                v = Tensor(p.value->shape());
            for (int64_t i = 0; i < p.value->size(); ++i) {
                float g = (*p.grad)[i] + weightDecay * (*p.value)[i];
                v[i] = momentum * v[i] - lr * g;
                (*p.value)[i] += v[i];
            }
            p.grad->fill(0.0f);
        }
    }

    void setLr(float new_lr) { lr = new_lr; }
    float getLr() const { return lr; }

  private:
    float lr, momentum, weightDecay;
    std::unordered_map<Tensor *, Tensor> velocity;
};

} // namespace nn
} // namespace se

#endif // SE_NN_OPTIM_HH
