/**
 * @file
 * Concrete layers: Conv2d (grouped => depth-wise), Linear, BatchNorm2d,
 * ReLU (with optional clamp for ReLU6), Sigmoid, MaxPool2d,
 * GlobalAvgPool, Flatten, UpsampleNearest.
 */

#ifndef SE_NN_LAYERS_HH
#define SE_NN_LAYERS_HH

#include "kernels/scratch.hh"
#include "nn/layer.hh"

namespace se {
class Rng;
namespace nn {

/**
 * 2-D convolution in NCHW with square kernels, zero padding and groups.
 * groups == inChannels == outChannels gives a depth-wise convolution.
 *
 * Execution is dispatched through kernels::defaultConvImpl(): the
 * default lowers forward onto im2col + blocked GEMM (bit-identical to
 * the legacy loop, with a per-layer scratch arena instead of per-call
 * buffers) and keeps the legacy backward; SE_CONV_IMPL selects naive
 * or full-GEMM execution (see kernels/kernels.hh).
 */
class Conv2d : public Layer
{
  public:
    Conv2d(int64_t in_ch, int64_t out_ch, int64_t kernel,
           int64_t stride, int64_t pad, int64_t groups, Rng &rng,
           bool bias = true, int64_t dilation = 1);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &gy) override;
    std::vector<Param> params() override;
    std::string name() const override { return "conv"; }

    /** Weight tensor in (M, C/groups, R, S) layout. */
    Tensor &weightTensor() { return weight; }
    const Tensor &weightTensor() const { return weight; }
    Tensor &biasTensor() { return bias_; }

    int64_t inChannels() const { return inCh; }
    int64_t outChannels() const { return outCh; }
    int64_t kernelSize() const { return kern; }
    int64_t strideLen() const { return strd; }
    int64_t padLen() const { return pad_; }
    int64_t groupCount() const { return grps; }
    int64_t dilationLen() const { return dil; }

  private:
    Tensor forwardNaive(const Tensor &x) const;
    Tensor backwardNaive(const Tensor &gy);

    int64_t inCh, outCh, kern, strd, pad_, grps, dil;
    bool hasBias;
    Tensor weight, bias_, gradW, gradB;
    Tensor cachedX;
    kernels::ScratchArena scratch_;
};

/**
 * Fully-connected layer y = x W^T + b, x is (N, C). Dispatched like
 * Conv2d; both directions of the GEMM lowering are bit-identical to
 * the legacy loops, so Auto takes the fast path everywhere.
 */
class Linear : public Layer
{
  public:
    Linear(int64_t in_features, int64_t out_features, Rng &rng,
           bool bias = true);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &gy) override;
    std::vector<Param> params() override;
    std::string name() const override { return "linear"; }

    /** Weight tensor in (out, in) layout. */
    Tensor &weightTensor() { return weight; }
    const Tensor &weightTensor() const { return weight; }
    /** Bias tensor; empty when constructed with bias = false. */
    Tensor &biasTensor() { return bias_; }

    int64_t inFeatures() const { return inF; }
    int64_t outFeatures() const { return outF; }

  private:
    Tensor forwardNaive(const Tensor &x) const;
    Tensor backwardNaive(const Tensor &gy);

    int64_t inF, outF;
    bool hasBias;
    Tensor weight, bias_, gradW, gradB;
    Tensor cachedX;
    kernels::ScratchArena scratch_;
};

/**
 * Batch normalization over NCHW channels. gamma is exposed because the
 * SmartExchange channel pruning step thresholds BN scaling factors.
 */
class BatchNorm2d : public Layer
{
  public:
    explicit BatchNorm2d(int64_t channels, float eps = 1e-5f,
                         float momentum = 0.1f);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &gy) override;
    std::vector<Param> params() override;
    std::string name() const override { return "bn"; }

    Tensor &gammaTensor() { return gamma; }
    const Tensor &gammaTensor() const { return gamma; }
    Tensor &betaTensor() { return beta; }
    /**
     * Eval-mode normalization state. Exposed so model-file v3 can ship
     * the dense residual (a served model must reproduce the
     * compression-time running stats, which no seeded re-build can).
     */
    Tensor &runningMeanTensor() { return runningMean; }
    Tensor &runningVarTensor() { return runningVar; }

  private:
    int64_t ch;
    float eps, momentum;
    Tensor gamma, beta, gradGamma, gradBeta;
    Tensor runningMean, runningVar;
    // Caches for backward.
    Tensor cachedXhat;
    std::vector<double> cachedInvStd;
    int64_t cachedCount = 0;
};

/** ReLU, optionally clamped at maxVal (ReLU6 for compact models). */
class ReLU : public Layer
{
  public:
    explicit ReLU(float max_val = 0.0f) : maxVal(max_val) {}

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &gy) override;
    std::string name() const override { return "relu"; }

  private:
    float maxVal;  ///< 0 => unbounded.
    Tensor mask;
};

/** Logistic sigmoid (used by squeeze-and-excite gates). */
class Sigmoid : public Layer
{
  public:
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &gy) override;
    std::string name() const override { return "sigmoid"; }

  private:
    Tensor cachedY;
};

/** Max pooling with square window. */
class MaxPool2d : public Layer
{
  public:
    MaxPool2d(int64_t kernel, int64_t stride)
        : kern(kernel), strd(stride)
    {}

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &gy) override;
    std::string name() const override { return "maxpool"; }

    int64_t kernelSize() const { return kern; }
    int64_t strideLen() const { return strd; }

  private:
    int64_t kern, strd;
    Shape inShape;
    std::vector<int64_t> argmax;
};

/** Global average pooling to (N, C, 1, 1). */
class GlobalAvgPool : public Layer
{
  public:
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &gy) override;
    std::string name() const override { return "gap"; }

  private:
    Shape inShape;
};

/** Flatten (N, C, H, W) -> (N, C*H*W). */
class Flatten : public Layer
{
  public:
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &gy) override;
    std::string name() const override { return "flatten"; }

  private:
    Shape inShape;
};

/** Nearest-neighbour upsampling by an integer factor (DeepLab head). */
class UpsampleNearest : public Layer
{
  public:
    explicit UpsampleNearest(int64_t factor) : fac(factor) {}

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &gy) override;
    std::string name() const override { return "upsample"; }

    int64_t factor() const { return fac; }

  private:
    int64_t fac;
    Shape inShape;
};

} // namespace nn
} // namespace se

#endif // SE_NN_LAYERS_HH
