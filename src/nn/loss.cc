#include "nn/loss.hh"

#include <algorithm>
#include <cmath>

namespace se {
namespace nn {

LossResult
softmaxCrossEntropy(const Tensor &logits, const std::vector<int> &labels)
{
    const int64_t n = logits.dim(0), k = logits.dim(1);
    SE_ASSERT((int64_t)labels.size() == n, "label count mismatch");
    LossResult res;
    res.grad = Tensor(logits.shape());
    double total = 0.0;
    for (int64_t b = 0; b < n; ++b) {
        float mx = -1e30f;
        for (int64_t c = 0; c < k; ++c)
            mx = std::max(mx, logits.at(b, c));
        double z = 0.0;
        for (int64_t c = 0; c < k; ++c)
            z += std::exp((double)logits.at(b, c) - mx);
        const int y = labels[(size_t)b];
        total += -((double)logits.at(b, y) - mx - std::log(z));
        for (int64_t c = 0; c < k; ++c) {
            const double p = std::exp((double)logits.at(b, c) - mx) / z;
            res.grad.at(b, c) =
                (float)((p - (c == y ? 1.0 : 0.0)) / (double)n);
        }
    }
    res.loss = total / (double)n;
    return res;
}

double
accuracy(const Tensor &logits, const std::vector<int> &labels)
{
    const int64_t n = logits.dim(0), k = logits.dim(1);
    int64_t correct = 0;
    for (int64_t b = 0; b < n; ++b) {
        int64_t best = 0;
        for (int64_t c = 1; c < k; ++c)
            if (logits.at(b, c) > logits.at(b, best))
                best = c;
        correct += best == labels[(size_t)b];
    }
    return n > 0 ? (double)correct / (double)n : 0.0;
}

LossResult
pixelCrossEntropy(const Tensor &logits, const Tensor &labels)
{
    const int64_t n = logits.dim(0), k = logits.dim(1);
    const int64_t h = logits.dim(2), w = logits.dim(3);
    LossResult res;
    res.grad = Tensor(logits.shape());
    double total = 0.0;
    const double inv = 1.0 / (double)(n * h * w);
    for (int64_t b = 0; b < n; ++b)
        for (int64_t i = 0; i < h; ++i)
            for (int64_t j = 0; j < w; ++j) {
                float mx = -1e30f;
                for (int64_t c = 0; c < k; ++c)
                    mx = std::max(mx, logits.at(b, c, i, j));
                double z = 0.0;
                for (int64_t c = 0; c < k; ++c)
                    z += std::exp((double)logits.at(b, c, i, j) - mx);
                const int y = (int)labels.at(b, i, j);
                total += -((double)logits.at(b, y, i, j) - mx -
                           std::log(z));
                for (int64_t c = 0; c < k; ++c) {
                    const double p =
                        std::exp((double)logits.at(b, c, i, j) - mx) / z;
                    res.grad.at(b, c, i, j) =
                        (float)((p - (c == y ? 1.0 : 0.0)) * inv);
                }
            }
    res.loss = total * inv;
    return res;
}

double
meanIoU(const Tensor &logits, const Tensor &labels, int num_classes)
{
    const int64_t n = logits.dim(0), k = logits.dim(1);
    const int64_t h = logits.dim(2), w = logits.dim(3);
    std::vector<int64_t> inter((size_t)num_classes, 0),
        uni((size_t)num_classes, 0);
    for (int64_t b = 0; b < n; ++b)
        for (int64_t i = 0; i < h; ++i)
            for (int64_t j = 0; j < w; ++j) {
                int64_t best = 0;
                for (int64_t c = 1; c < k; ++c)
                    if (logits.at(b, c, i, j) > logits.at(b, best, i, j))
                        best = c;
                const int y = (int)labels.at(b, i, j);
                if ((int)best == y)
                    ++inter[(size_t)y];
                else {
                    ++uni[(size_t)best];
                    ++uni[(size_t)y];
                }
            }
    double sum = 0.0;
    int present = 0;
    for (int c = 0; c < num_classes; ++c) {
        const int64_t u = uni[(size_t)c] + inter[(size_t)c];
        if (u == 0)
            continue;
        sum += (double)inter[(size_t)c] / (double)u;
        ++present;
    }
    return present > 0 ? sum / present : 0.0;
}

} // namespace nn
} // namespace se
