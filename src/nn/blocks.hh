/**
 * @file
 * Composite blocks: Sequential containers, residual blocks (ResNet),
 * squeeze-and-excite gates and inverted residual blocks (MobileNetV2 /
 * EfficientNet). Composites chain their children's forward/backward by
 * hand — no autograd tape is needed for these simple topologies.
 */

#ifndef SE_NN_BLOCKS_HH
#define SE_NN_BLOCKS_HH

#include "nn/layers.hh"

namespace se {
namespace nn {

/** Ordered container of layers; also the top-level "model" type. */
class Sequential : public Layer
{
  public:
    Sequential() = default;

    /** Append a layer, returning a raw observer pointer. */
    template <typename T, typename... Args>
    T *
    add(Args&&... args)
    {
        auto layer = std::make_unique<T>(std::forward<Args>(args)...);
        T *raw = layer.get();
        children.push_back(std::move(layer));
        return raw;
    }

    void addLayer(LayerPtr l) { children.push_back(std::move(l)); }

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &gy) override;
    std::vector<Param> params() override;
    std::string name() const override { return "sequential"; }

    size_t size() const { return children.size(); }
    Layer *layer(size_t i) { return children[i].get(); }

    /** Depth-first visit of every leaf layer (for SE application). */
    void visit(const std::function<void(Layer &)> &fn);

  private:
    std::vector<LayerPtr> children;
};

/**
 * Residual block: y = relu(main(x) + shortcut(x)); shortcut may be
 * empty (identity) or a projection (1x1 conv + BN).
 */
class Residual : public Layer
{
  public:
    Residual(std::unique_ptr<Sequential> main_path,
             std::unique_ptr<Sequential> shortcut_path)
        : mainPath(std::move(main_path)),
          shortcutPath(std::move(shortcut_path))
    {}

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &gy) override;
    std::vector<Param> params() override;
    std::string name() const override { return "residual"; }

    Sequential &main() { return *mainPath; }
    Sequential *shortcut() { return shortcutPath.get(); }

    /** Visit leaves of both paths. */
    void visit(const std::function<void(Layer &)> &fn);

  private:
    std::unique_ptr<Sequential> mainPath;
    std::unique_ptr<Sequential> shortcutPath;  ///< may be null
    ReLU outRelu;
    Tensor cachedSumMask;
};

/**
 * Squeeze-and-excite gate: per-channel scale
 * s = sigmoid(W2 relu(W1 gap(x))), y = x * s.
 */
class SqueezeExcite : public Layer
{
  public:
    SqueezeExcite(int64_t channels, int64_t reduced, Rng &rng);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &gy) override;
    std::vector<Param> params() override;
    std::string name() const override { return "squeeze_excite"; }

    Linear &reduceFc() { return *fc1; }
    Linear &expandFc() { return *fc2; }

    /** Visit the two FC leaves. */
    void visit(const std::function<void(Layer &)> &fn);

  private:
    int64_t ch;
    std::unique_ptr<Linear> fc1, fc2;
    ReLU relu;
    Sigmoid sigmoid;
    GlobalAvgPool gap;
    Flatten flatten;
    Tensor cachedX, cachedScale;
};

/**
 * MobileNetV2 inverted residual: 1x1 expand -> 3x3 depth-wise ->
 * optional squeeze-excite -> 1x1 project, with identity skip when the
 * stride is 1 and channel counts match.
 */
class InvertedResidual : public Layer
{
  public:
    InvertedResidual(int64_t in_ch, int64_t out_ch, int64_t stride,
                     int64_t expand_ratio, bool use_se, Rng &rng);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &gy) override;
    std::vector<Param> params() override;
    std::string name() const override { return "inverted_residual"; }

    Sequential &body() { return *path; }
    bool hasSkip() const { return useSkip; }

    void visit(const std::function<void(Layer &)> &fn);

  private:
    std::unique_ptr<Sequential> path;
    bool useSkip;
};

} // namespace nn
} // namespace se

#endif // SE_NN_BLOCKS_HH
