/**
 * @file
 * Layer interface for the from-scratch NN framework.
 *
 * The framework exists because SmartExchange needs (a) real trained
 * weights to decompose, (b) re-training epochs interleaved with the
 * decomposition (Section III-C of the paper), and (c) real activation
 * tensors to measure bit-level sparsity (Fig. 4). It is a teaching-size
 * CPU implementation: eager, single-threaded, NCHW.
 */

#ifndef SE_NN_LAYER_HH
#define SE_NN_LAYER_HH

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace se {
namespace nn {

/** A learnable parameter: value plus accumulated gradient. */
struct Param
{
    Tensor *value = nullptr;
    Tensor *grad = nullptr;
    std::string name;
};

/**
 * Base class of all layers. forward() caches whatever backward() needs;
 * backward() consumes the gradient w.r.t. the output and returns the
 * gradient w.r.t. the input, accumulating parameter gradients.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    virtual Tensor forward(const Tensor &x, bool train) = 0;
    virtual Tensor backward(const Tensor &gy) = 0;

    /** Learnable parameters (empty for stateless layers). */
    virtual std::vector<Param> params() { return {}; }

    /** Human-readable layer kind, e.g. "conv3x3". */
    virtual std::string name() const = 0;

    /** Zero all parameter gradients. */
    void
    zeroGrad()
    {
        for (auto &p : params())
            p.grad->fill(0.0f);
    }
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace nn
} // namespace se

#endif // SE_NN_LAYER_HH
