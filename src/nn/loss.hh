/**
 * @file
 * Losses and evaluation metrics: softmax cross-entropy for
 * classification, pixel-wise cross-entropy and mean IoU for
 * segmentation, top-1 accuracy.
 */

#ifndef SE_NN_LOSS_HH
#define SE_NN_LOSS_HH

#include <vector>

#include "tensor/tensor.hh"

namespace se {
namespace nn {

/** Loss value plus the gradient w.r.t. the logits. */
struct LossResult
{
    double loss = 0.0;
    Tensor grad;
};

/**
 * Mean softmax cross-entropy over a batch of logits (N, K) with integer
 * labels.
 */
LossResult softmaxCrossEntropy(const Tensor &logits,
                               const std::vector<int> &labels);

/** Top-1 accuracy for logits (N, K). */
double accuracy(const Tensor &logits, const std::vector<int> &labels);

/**
 * Pixel-wise mean cross-entropy for segmentation logits (N, K, H, W)
 * against a label map (N, H, W) stored as a Tensor of class indices.
 */
LossResult pixelCrossEntropy(const Tensor &logits, const Tensor &labels);

/** Mean intersection-over-union over K classes. */
double meanIoU(const Tensor &logits, const Tensor &labels, int num_classes);

} // namespace nn
} // namespace se

#endif // SE_NN_LOSS_HH
