#include "nn/layers.hh"

#include <algorithm>
#include <cmath>

#include "base/random.hh"
#include "kernels/conv.hh"
#include "kernels/kernels.hh"
#include "kernels/linear.hh"

namespace se {
namespace nn {

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(int64_t in_ch, int64_t out_ch, int64_t kernel,
               int64_t stride, int64_t pad, int64_t groups, Rng &rng,
               bool bias, int64_t dilation)
    : inCh(in_ch), outCh(out_ch), kern(kernel), strd(stride), pad_(pad),
      grps(groups), dil(dilation), hasBias(bias)
{
    SE_ASSERT(in_ch % groups == 0 && out_ch % groups == 0,
              "channels not divisible by groups");
    const int64_t cpg = in_ch / groups;
    weight = Tensor({out_ch, cpg, kernel, kernel});
    gradW = Tensor(weight.shape());
    // He initialization.
    const float std_dev =
        std::sqrt(2.0f / (float)(cpg * kernel * kernel));
    for (int64_t i = 0; i < weight.size(); ++i)
        weight[i] = rng.gaussian(0.0f, std_dev);
    if (hasBias) {
        bias_ = Tensor({out_ch});
        gradB = Tensor({out_ch});
    }
}

Tensor
Conv2d::forward(const Tensor &x, bool train)
{
    SE_ASSERT(x.ndim() == 4 && x.dim(1) == inCh,
              "conv input shape mismatch");
    if (train)
        cachedX = x;
    if (kernels::useBitIdenticalFastPath(kernels::defaultConvImpl())) {
        const kernels::ConvSpec spec{inCh, outCh, kern, strd,
                                     pad_,  grps,  dil};
        return kernels::conv2dForwardGemm(
            x, weight, hasBias ? &bias_ : nullptr, spec, scratch_);
    }
    return forwardNaive(x);
}

Tensor
Conv2d::forwardNaive(const Tensor &x) const
{
    const int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    const int64_t kext = dil * (kern - 1) + 1;
    const int64_t oh = (h + 2 * pad_ - kext) / strd + 1;
    const int64_t ow = (w + 2 * pad_ - kext) / strd + 1;
    const int64_t cpg = inCh / grps;
    const int64_t mpg = outCh / grps;

    Tensor y({n, outCh, oh, ow});
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < grps; ++g) {
            for (int64_t mo = 0; mo < mpg; ++mo) {
                const int64_t m = g * mpg + mo;
                for (int64_t e = 0; e < oh; ++e) {
                    for (int64_t f = 0; f < ow; ++f) {
                        double acc = hasBias ? bias_[m] : 0.0;
                        for (int64_t ci = 0; ci < cpg; ++ci) {
                            const int64_t c = g * cpg + ci;
                            for (int64_t kr = 0; kr < kern; ++kr) {
                                const int64_t ih =
                                    e * strd + kr * dil - pad_;
                                if (ih < 0 || ih >= h)
                                    continue;
                                for (int64_t ks = 0; ks < kern; ++ks) {
                                    const int64_t iw =
                                        f * strd + ks * dil - pad_;
                                    if (iw < 0 || iw >= w)
                                        continue;
                                    acc += (double)weight.at(m, ci, kr,
                                                             ks) *
                                           x.at(b, c, ih, iw);
                                }
                            }
                        }
                        y.at(b, m, e, f) = (float)acc;
                    }
                }
            }
        }
    }
    return y;
}

Tensor
Conv2d::backward(const Tensor &gy)
{
    SE_ASSERT(!cachedX.empty(), "backward without cached forward");
    if (kernels::useReassociatingFastPath(kernels::defaultConvImpl())) {
        const kernels::ConvSpec spec{inCh, outCh, kern, strd,
                                     pad_,  grps,  dil};
        Tensor gx(cachedX.shape());
        kernels::conv2dBackwardGemm(cachedX, weight, gy, spec,
                                    scratch_, gradW,
                                    hasBias ? &gradB : nullptr, gx);
        return gx;
    }
    return backwardNaive(gy);
}

Tensor
Conv2d::backwardNaive(const Tensor &gy)
{
    const Tensor &x = cachedX;
    const int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    const int64_t oh = gy.dim(2), ow = gy.dim(3);
    const int64_t cpg = inCh / grps;
    const int64_t mpg = outCh / grps;

    Tensor gx(x.shape());
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < grps; ++g) {
            for (int64_t mo = 0; mo < mpg; ++mo) {
                const int64_t m = g * mpg + mo;
                for (int64_t e = 0; e < oh; ++e) {
                    for (int64_t f = 0; f < ow; ++f) {
                        const float gv = gy.at(b, m, e, f);
                        if (gv == 0.0f)
                            continue;
                        if (hasBias)
                            gradB[m] += gv;
                        for (int64_t ci = 0; ci < cpg; ++ci) {
                            const int64_t c = g * cpg + ci;
                            for (int64_t kr = 0; kr < kern; ++kr) {
                                const int64_t ih =
                                    e * strd + kr * dil - pad_;
                                if (ih < 0 || ih >= h)
                                    continue;
                                for (int64_t ks = 0; ks < kern; ++ks) {
                                    const int64_t iw =
                                        f * strd + ks * dil - pad_;
                                    if (iw < 0 || iw >= w)
                                        continue;
                                    gradW.at(m, ci, kr, ks) +=
                                        gv * x.at(b, c, ih, iw);
                                    gx.at(b, c, ih, iw) +=
                                        gv * weight.at(m, ci, kr, ks);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return gx;
}

std::vector<Param>
Conv2d::params()
{
    std::vector<Param> p{{&weight, &gradW, "conv.weight"}};
    if (hasBias)
        p.push_back({&bias_, &gradB, "conv.bias"});
    return p;
}

// ---------------------------------------------------------------- Linear

Linear::Linear(int64_t in_features, int64_t out_features, Rng &rng,
               bool bias)
    : inF(in_features), outF(out_features), hasBias(bias)
{
    weight = Tensor({outF, inF});
    gradW = Tensor(weight.shape());
    const float std_dev = std::sqrt(2.0f / (float)inF);
    for (int64_t i = 0; i < weight.size(); ++i)
        weight[i] = rng.gaussian(0.0f, std_dev);
    if (hasBias) {
        bias_ = Tensor({outF});
        gradB = Tensor({outF});
    }
}

Tensor
Linear::forward(const Tensor &x, bool train)
{
    SE_ASSERT(x.ndim() == 2 && x.dim(1) == inF,
              "linear input shape mismatch");
    if (train)
        cachedX = x;
    if (kernels::useBitIdenticalFastPath(kernels::defaultConvImpl()))
        return kernels::linearForwardGemm(
            x, weight, hasBias ? &bias_ : nullptr, scratch_);
    return forwardNaive(x);
}

Tensor
Linear::forwardNaive(const Tensor &x) const
{
    const int64_t n = x.dim(0);
    Tensor y({n, outF});
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t o = 0; o < outF; ++o) {
            double acc = hasBias ? bias_[o] : 0.0;
            for (int64_t i = 0; i < inF; ++i)
                acc += (double)weight.at(o, i) * x.at(b, i);
            y.at(b, o) = (float)acc;
        }
    }
    return y;
}

Tensor
Linear::backward(const Tensor &gy)
{
    SE_ASSERT(!cachedX.empty(), "backward without cached forward");
    // Both gradient GEMMs continue the legacy float chains exactly,
    // so (unlike Conv2d) Auto lowers the backward pass too.
    if (kernels::useBitIdenticalFastPath(kernels::defaultConvImpl())) {
        Tensor gx(cachedX.shape());
        kernels::linearBackwardGemm(cachedX, weight, gy, scratch_,
                                    gradW, hasBias ? &gradB : nullptr,
                                    gx);
        return gx;
    }
    return backwardNaive(gy);
}

Tensor
Linear::backwardNaive(const Tensor &gy)
{
    const Tensor &x = cachedX;
    const int64_t n = x.dim(0);
    Tensor gx(x.shape());
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t o = 0; o < outF; ++o) {
            const float gv = gy.at(b, o);
            if (gv == 0.0f)
                continue;
            if (hasBias)
                gradB[o] += gv;
            for (int64_t i = 0; i < inF; ++i) {
                gradW.at(o, i) += gv * x.at(b, i);
                gx.at(b, i) += gv * weight.at(o, i);
            }
        }
    }
    return gx;
}

std::vector<Param>
Linear::params()
{
    std::vector<Param> p{{&weight, &gradW, "linear.weight"}};
    if (hasBias)
        p.push_back({&bias_, &gradB, "linear.bias"});
    return p;
}

// ----------------------------------------------------------- BatchNorm2d

BatchNorm2d::BatchNorm2d(int64_t channels, float eps, float momentum)
    : ch(channels), eps(eps), momentum(momentum)
{
    gamma = Tensor({ch}, 1.0f);
    beta = Tensor({ch});
    gradGamma = Tensor({ch});
    gradBeta = Tensor({ch});
    runningMean = Tensor({ch});
    runningVar = Tensor({ch}, 1.0f);
}

Tensor
BatchNorm2d::forward(const Tensor &x, bool train)
{
    SE_ASSERT(x.ndim() == 4 && x.dim(1) == ch, "bn input shape mismatch");
    const int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    const int64_t count = n * h * w;
    Tensor y(x.shape());

    if (train) {
        cachedXhat = Tensor(x.shape());
        cachedInvStd.assign((size_t)ch, 0.0);
        cachedCount = count;
    }

    for (int64_t c = 0; c < ch; ++c) {
        double mean, var;
        if (train) {
            double s = 0.0, s2 = 0.0;
            for (int64_t b = 0; b < n; ++b)
                for (int64_t i = 0; i < h; ++i)
                    for (int64_t j = 0; j < w; ++j) {
                        double v = x.at(b, c, i, j);
                        s += v;
                        s2 += v * v;
                    }
            mean = s / (double)count;
            var = s2 / (double)count - mean * mean;
            var = std::max(var, 0.0);
            runningMean[c] = (1.0f - momentum) * runningMean[c] +
                             momentum * (float)mean;
            runningVar[c] = (1.0f - momentum) * runningVar[c] +
                            momentum * (float)var;
        } else {
            mean = runningMean[c];
            var = runningVar[c];
        }
        const double inv_std = 1.0 / std::sqrt(var + eps);
        if (train)
            cachedInvStd[(size_t)c] = inv_std;
        for (int64_t b = 0; b < n; ++b)
            for (int64_t i = 0; i < h; ++i)
                for (int64_t j = 0; j < w; ++j) {
                    const double xh =
                        ((double)x.at(b, c, i, j) - mean) * inv_std;
                    if (train)
                        cachedXhat.at(b, c, i, j) = (float)xh;
                    y.at(b, c, i, j) =
                        (float)(gamma[c] * xh + beta[c]);
                }
    }
    return y;
}

Tensor
BatchNorm2d::backward(const Tensor &gy)
{
    SE_ASSERT(!cachedXhat.empty(), "bn backward without forward");
    const int64_t n = gy.dim(0), h = gy.dim(2), w = gy.dim(3);
    const double count = (double)cachedCount;
    Tensor gx(gy.shape());

    for (int64_t c = 0; c < ch; ++c) {
        double sum_gy = 0.0, sum_gy_xhat = 0.0;
        for (int64_t b = 0; b < n; ++b)
            for (int64_t i = 0; i < h; ++i)
                for (int64_t j = 0; j < w; ++j) {
                    const double g = gy.at(b, c, i, j);
                    sum_gy += g;
                    sum_gy_xhat += g * cachedXhat.at(b, c, i, j);
                }
        gradGamma[c] += (float)sum_gy_xhat;
        gradBeta[c] += (float)sum_gy;
        const double inv_std = cachedInvStd[(size_t)c];
        const double gmma = gamma[c];
        for (int64_t b = 0; b < n; ++b)
            for (int64_t i = 0; i < h; ++i)
                for (int64_t j = 0; j < w; ++j) {
                    const double g = gy.at(b, c, i, j);
                    const double xh = cachedXhat.at(b, c, i, j);
                    gx.at(b, c, i, j) = (float)(gmma * inv_std *
                        (g - sum_gy / count - xh * sum_gy_xhat / count));
                }
    }
    return gx;
}

std::vector<Param>
BatchNorm2d::params()
{
    return {{&gamma, &gradGamma, "bn.gamma"},
            {&beta, &gradBeta, "bn.beta"}};
}

// ------------------------------------------------------------------ ReLU

Tensor
ReLU::forward(const Tensor &x, bool train)
{
    Tensor y = x;
    if (train)
        mask = Tensor(x.shape());
    for (int64_t i = 0; i < y.size(); ++i) {
        float v = y[i];
        float out = v > 0.0f ? v : 0.0f;
        if (maxVal > 0.0f && out > maxVal)
            out = maxVal;
        if (train)
            mask[i] = (v > 0.0f && (maxVal <= 0.0f || v < maxVal))
                          ? 1.0f : 0.0f;
        y[i] = out;
    }
    return y;
}

Tensor
ReLU::backward(const Tensor &gy)
{
    Tensor gx = gy;
    for (int64_t i = 0; i < gx.size(); ++i)
        gx[i] *= mask[i];
    return gx;
}

// --------------------------------------------------------------- Sigmoid

Tensor
Sigmoid::forward(const Tensor &x, bool train)
{
    Tensor y = x;
    y.apply([](float v) { return 1.0f / (1.0f + std::exp(-v)); });
    if (train)
        cachedY = y;
    return y;
}

Tensor
Sigmoid::backward(const Tensor &gy)
{
    Tensor gx = gy;
    for (int64_t i = 0; i < gx.size(); ++i)
        gx[i] *= cachedY[i] * (1.0f - cachedY[i]);
    return gx;
}

// ------------------------------------------------------------- MaxPool2d

Tensor
MaxPool2d::forward(const Tensor &x, bool train)
{
    const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    const int64_t oh = (h - kern) / strd + 1;
    const int64_t ow = (w - kern) / strd + 1;
    inShape = x.shape();
    Tensor y({n, c, oh, ow});
    if (train)
        argmax.assign((size_t)y.size(), 0);
    int64_t oi = 0;
    for (int64_t b = 0; b < n; ++b)
        for (int64_t cc = 0; cc < c; ++cc)
            for (int64_t e = 0; e < oh; ++e)
                for (int64_t f = 0; f < ow; ++f, ++oi) {
                    float best = -1e30f;
                    int64_t best_idx = 0;
                    for (int64_t kr = 0; kr < kern; ++kr)
                        for (int64_t ks = 0; ks < kern; ++ks) {
                            const int64_t ih = e * strd + kr;
                            const int64_t iw = f * strd + ks;
                            const float v = x.at(b, cc, ih, iw);
                            if (v > best) {
                                best = v;
                                best_idx = ((b * c + cc) * h + ih) * w +
                                           iw;
                            }
                        }
                    y[oi] = best;
                    if (train)
                        argmax[(size_t)oi] = best_idx;
                }
    return y;
}

Tensor
MaxPool2d::backward(const Tensor &gy)
{
    Tensor gx(inShape);
    for (int64_t i = 0; i < gy.size(); ++i)
        gx[argmax[(size_t)i]] += gy[i];
    return gx;
}

// --------------------------------------------------------- GlobalAvgPool

Tensor
GlobalAvgPool::forward(const Tensor &x, bool train)
{
    (void)train;
    const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    inShape = x.shape();
    Tensor y({n, c, 1, 1});
    const double inv = 1.0 / (double)(h * w);
    for (int64_t b = 0; b < n; ++b)
        for (int64_t cc = 0; cc < c; ++cc) {
            double s = 0.0;
            for (int64_t i = 0; i < h; ++i)
                for (int64_t j = 0; j < w; ++j)
                    s += x.at(b, cc, i, j);
            y.at(b, cc, 0, 0) = (float)(s * inv);
        }
    return y;
}

Tensor
GlobalAvgPool::backward(const Tensor &gy)
{
    const int64_t h = inShape[2], w = inShape[3];
    Tensor gx(inShape);
    const float inv = 1.0f / (float)(h * w);
    for (int64_t b = 0; b < inShape[0]; ++b)
        for (int64_t cc = 0; cc < inShape[1]; ++cc) {
            const float g = gy.at(b, cc, 0, 0) * inv;
            for (int64_t i = 0; i < h; ++i)
                for (int64_t j = 0; j < w; ++j)
                    gx.at(b, cc, i, j) = g;
        }
    return gx;
}

// --------------------------------------------------------------- Flatten

Tensor
Flatten::forward(const Tensor &x, bool train)
{
    (void)train;
    inShape = x.shape();
    return x.reshaped({x.dim(0), x.size() / x.dim(0)});
}

Tensor
Flatten::backward(const Tensor &gy)
{
    return gy.reshaped(inShape);
}

// ------------------------------------------------------- UpsampleNearest

Tensor
UpsampleNearest::forward(const Tensor &x, bool train)
{
    (void)train;
    inShape = x.shape();
    const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    Tensor y({n, c, h * fac, w * fac});
    for (int64_t b = 0; b < n; ++b)
        for (int64_t cc = 0; cc < c; ++cc)
            for (int64_t i = 0; i < h * fac; ++i)
                for (int64_t j = 0; j < w * fac; ++j)
                    y.at(b, cc, i, j) = x.at(b, cc, i / fac, j / fac);
    return y;
}

Tensor
UpsampleNearest::backward(const Tensor &gy)
{
    Tensor gx(inShape);
    const int64_t h = inShape[2], w = inShape[3];
    for (int64_t b = 0; b < inShape[0]; ++b)
        for (int64_t cc = 0; cc < inShape[1]; ++cc)
            for (int64_t i = 0; i < h * fac; ++i)
                for (int64_t j = 0; j < w * fac; ++j)
                    gx.at(b, cc, i / fac, j / fac) += gy.at(b, cc, i, j);
    return gx;
}

} // namespace nn
} // namespace se
