#include "compiler/parser.hh"

#include "base/logging.hh"

namespace se {
namespace compiler {

namespace {

/** Symbolic activation geometry during the walk. */
struct ShapeState
{
    int64_t c = 0, h = 0, w = 0;
    bool flattened = false;  ///< after Flatten, c holds features
};

void walkSequential(nn::Sequential &seq, ShapeState &st,
                    sim::Workload &out, int &idx);

void
walkLayer(nn::Layer &l, ShapeState &st, sim::Workload &out, int &idx)
{
    using sim::LayerKind;
    using sim::LayerShape;

    if (auto *seq = dynamic_cast<nn::Sequential *>(&l)) {
        walkSequential(*seq, st, out, idx);
    } else if (auto *conv = dynamic_cast<nn::Conv2d *>(&l)) {
        SE_ASSERT(!st.flattened, "conv after flatten");
        SE_ASSERT(st.c == conv->inChannels(),
                  "parser: channel mismatch at conv (", st.c, " vs ",
                  conv->inChannels(), ")");
        LayerShape s;
        s.name = "layer" + std::to_string(idx++);
        const bool depthwise =
            conv->groupCount() == conv->inChannels() &&
            conv->inChannels() == conv->outChannels() &&
            conv->groupCount() > 1;
        s.kind = depthwise ? LayerKind::DepthwiseConv
                           : LayerKind::Conv;
        s.c = conv->inChannels();
        s.m = conv->outChannels();
        s.h = st.h;
        s.w = st.w;
        s.r = s.s = conv->kernelSize();
        s.stride = conv->strideLen();
        // Fold dilation into the effective kernel extent so output
        // geometry stays exact.
        const int64_t kext =
            conv->dilationLen() * (conv->kernelSize() - 1) + 1;
        s.pad = conv->padLen() - (kext - conv->kernelSize()) / 2;
        const int64_t oh =
            (st.h + 2 * conv->padLen() - kext) / conv->strideLen() + 1;
        const int64_t ow =
            (st.w + 2 * conv->padLen() - kext) / conv->strideLen() + 1;
        out.layers.push_back(s);
        st.c = conv->outChannels();
        st.h = oh;
        st.w = ow;
    } else if (auto *lin = dynamic_cast<nn::Linear *>(&l)) {
        LayerShape s;
        s.name = "layer" + std::to_string(idx++);
        s.kind = LayerKind::FullyConnected;
        s.c = lin->inFeatures();
        s.m = lin->outFeatures();
        out.layers.push_back(s);
        st.c = lin->outFeatures();
        st.flattened = true;
    } else if (auto *pool = dynamic_cast<nn::MaxPool2d *>(&l)) {
        st.h = (st.h - pool->kernelSize()) / pool->strideLen() + 1;
        st.w = (st.w - pool->kernelSize()) / pool->strideLen() + 1;
    } else if (dynamic_cast<nn::GlobalAvgPool *>(&l)) {
        st.h = st.w = 1;
    } else if (dynamic_cast<nn::Flatten *>(&l)) {
        st.c = st.c * st.h * st.w;
        st.h = st.w = 1;
        st.flattened = true;
    } else if (auto *up = dynamic_cast<nn::UpsampleNearest *>(&l)) {
        st.h *= up->factor();
        st.w *= up->factor();
    } else if (auto *res = dynamic_cast<nn::Residual *>(&l)) {
        ShapeState main_state = st;
        walkSequential(res->main(), main_state, out, idx);
        if (res->shortcut()) {
            ShapeState short_state = st;
            walkSequential(*res->shortcut(), short_state, out, idx);
            SE_ASSERT(short_state.c == main_state.c,
                      "residual branch channel mismatch");
        }
        st = main_state;
    } else if (auto *inv = dynamic_cast<nn::InvertedResidual *>(&l)) {
        walkSequential(inv->body(), st, out, idx);
    } else if (auto *se_gate = dynamic_cast<nn::SqueezeExcite *>(&l)) {
        LayerShape s;
        s.name = "layer" + std::to_string(idx++);
        s.kind = sim::LayerKind::SqueezeExcite;
        s.c = se_gate->reduceFc().inFeatures();
        s.m = 2 * se_gate->reduceFc().outFeatures();
        out.layers.push_back(s);
        // Shape unchanged: the gate rescales channels.
    }
    // BN / ReLU / Sigmoid: shape-preserving, nothing to record.
}

void
walkSequential(nn::Sequential &seq, ShapeState &st, sim::Workload &out,
               int &idx)
{
    for (size_t i = 0; i < seq.size(); ++i)
        walkLayer(*seq.layer(i), st, out, idx);
}

} // namespace

sim::Workload
parseNetwork(nn::Sequential &net, int64_t in_channels,
             int64_t in_height, int64_t in_width,
             const std::string &name)
{
    sim::Workload out;
    out.name = name;
    out.dataset = "parsed";
    ShapeState st{in_channels, in_height, in_width, false};
    int idx = 0;
    walkSequential(net, st, out, idx);
    return out;
}

void
annotateFromReport(sim::Workload &w,
                   const std::vector<double> &vector_sparsity,
                   const std::vector<double> &element_sparsity,
                   double act_value_sparsity,
                   double act_avg_booth_digits)
{
    for (size_t i = 0; i < w.layers.size(); ++i) {
        auto &l = w.layers[i];
        if (i < vector_sparsity.size())
            l.weightVectorSparsity = vector_sparsity[i];
        if (i < element_sparsity.size())
            l.weightElementSparsity = element_sparsity[i];
        l.actValueSparsity = i == 0 ? 0.1 : act_value_sparsity;
        l.actAvgBoothDigits = act_avg_booth_digits;
    }
}

} // namespace compiler
} // namespace se
