/**
 * @file
 * The DNN Compiler of the software-hardware interface (Fig. 7): maps
 * each parsed layer onto the PE array (tiling plan + dataflow choice),
 * allocates global-buffer space, and emits the instruction stream the
 * accelerator's controller executes.
 */

#ifndef SE_COMPILER_COMPILER_HH
#define SE_COMPILER_COMPILER_HH

#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/layer_shape.hh"

namespace se {
namespace compiler {

/** Dataflow selected for a layer (Section IV-B). */
enum class Dataflow
{
    RowStationary2d,    ///< standard CONV: 1D row stationary per line
    DepthwiseRemapped,  ///< dw-CONV: R 1D convs spread across lines
    FcClustered,        ///< FC / squeeze-excite: MAC-array clusters
};

/** How one layer tiles onto the array. */
struct TilePlan
{
    Dataflow dataflow = Dataflow::RowStationary2d;
    int64_t mTiles = 1;  ///< output-channel passes (dimM slices each)
    int64_t cTiles = 1;  ///< input-channel groups (dimC lines each)
    int64_t fTiles = 1;  ///< output-pixel groups (dimF MACs each)
    double utilization = 1.0;  ///< fraction of lanes doing real work
    int64_t inputGbBytes = 0;  ///< input tile footprint
    int64_t weightBufBytes = 0;  ///< Ce+B footprint per slice
    bool inputFitsGb = true;
};

/** Controller opcodes. */
enum class Opcode
{
    ConfigLayer,  ///< set dataflow, dims, precisions
    LoadInput,    ///< DRAM -> input GB (one tile)
    LoadBasis,    ///< weight buffer -> RE register file
    LoadCoeff,    ///< DRAM -> weight buffer (Ce rows + index)
    Compute,      ///< run the PE array for one (m, c) tile pair
    StoreOutput,  ///< output GB -> DRAM
};

/** One controller instruction. */
struct Instruction
{
    Opcode op;
    int64_t layer = 0;  ///< layer index
    int64_t arg0 = 0;   ///< tile index / row count (op-specific)
    int64_t arg1 = 0;
};

/** A compiled network: plans plus the flat instruction stream. */
struct Program
{
    std::vector<TilePlan> plans;         ///< one per layer
    std::vector<Instruction> instructions;

    int64_t
    countOps(Opcode op) const
    {
        int64_t n = 0;
        for (const auto &i : instructions)
            n += i.op == op;
        return n;
    }
};

/** Plan one layer's mapping onto the array. */
TilePlan planLayer(const sim::LayerShape &l,
                   const sim::ArrayConfig &cfg);

/** Compile a whole workload into a Program. */
Program compileNetwork(const sim::Workload &w,
                       const sim::ArrayConfig &cfg);

/** Human-readable opcode name. */
std::string opcodeName(Opcode op);

/** Render an instruction stream for inspection. */
std::string disassemble(const Program &p, size_t max_lines = 64);

} // namespace compiler
} // namespace se

#endif // SE_COMPILER_COMPILER_HH
