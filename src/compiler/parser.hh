/**
 * @file
 * The DNN Parser of the software-hardware interface (Fig. 7): walks a
 * live network, infers every layer's activation geometry by symbolic
 * shape propagation, and emits the Workload descriptor the compiler
 * and the accelerator models consume (layer type, C, M, E, F, R, S, U
 * — exactly the parameters the paper lists).
 */

#ifndef SE_COMPILER_PARSER_HH
#define SE_COMPILER_PARSER_HH

#include "nn/blocks.hh"
#include "sim/layer_shape.hh"

namespace se {
namespace compiler {

/**
 * Parse a network into a Workload given the input geometry
 * (channels, height, width). Weight-bearing layers (conv, linear,
 * squeeze-excite) become workload entries; shape-only layers (BN,
 * ReLU, pooling, flatten, upsample) only advance the symbolic shape.
 */
sim::Workload parseNetwork(nn::Sequential &net, int64_t in_channels,
                           int64_t in_height, int64_t in_width,
                           const std::string &name = "parsed");

/**
 * Attach measured sparsity statistics to a parsed workload from a
 * compression report (per-layer vector/element/channel sparsity, in
 * layer order) and a single activation profile.
 */
void annotateFromReport(sim::Workload &w,
                        const std::vector<double> &vector_sparsity,
                        const std::vector<double> &element_sparsity,
                        double act_value_sparsity,
                        double act_avg_booth_digits);

} // namespace compiler
} // namespace se

#endif // SE_COMPILER_PARSER_HH
