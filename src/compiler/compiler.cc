#include "compiler/compiler.hh"

#include <algorithm>
#include <sstream>

#include "base/bitutils.hh"

namespace se {
namespace compiler {

using sim::ArrayConfig;
using sim::LayerKind;
using sim::LayerShape;

TilePlan
planLayer(const LayerShape &l, const ArrayConfig &cfg)
{
    TilePlan p;
    switch (l.kind) {
      case LayerKind::Conv:
        p.dataflow = Dataflow::RowStationary2d;
        p.mTiles = ceilDiv(l.m, cfg.dimM);
        p.cTiles = ceilDiv(l.c, cfg.dimC);
        p.fTiles = ceilDiv(l.outW(), cfg.dimF);
        p.utilization =
            std::min(1.0, (double)l.c / (double)cfg.dimC) *
            std::min(1.0, (double)l.outW() / (double)cfg.dimF);
        break;
      case LayerKind::DepthwiseConv:
        // The dedicated remap: the R 1D convolutions of one filter
        // spread across PE lines.
        p.dataflow = Dataflow::DepthwiseRemapped;
        p.mTiles = ceilDiv(l.m, cfg.dimM);
        p.cTiles = 1;
        p.fTiles = ceilDiv(l.outW(), cfg.dimF);
        p.utilization =
            std::min(1.0, (double)l.r / (double)cfg.dimC) *
            std::min(1.0, (double)l.outW() / (double)cfg.dimF);
        break;
      case LayerKind::FullyConnected:
      case LayerKind::SqueezeExcite:
        p.dataflow = Dataflow::FcClustered;
        p.mTiles = ceilDiv(l.m, cfg.dimM);
        p.cTiles = ceilDiv(l.c, cfg.dimC * cfg.dimF);
        p.fTiles = 1;
        p.utilization =
            std::min(1.0, (double)l.c / (double)cfg.dimC) * 0.5;
        break;
    }

    p.inputGbBytes = l.inputCount() * l.actBits / 8;
    p.inputFitsGb = p.inputGbBytes <= cfg.inputGbBytes;

    // Per-slice weight footprint: the Ce rows + basis of the filters
    // mapped to one slice.
    const int64_t s = std::max<int64_t>(l.s, 1);
    const int64_t rows_per_filter =
        std::max<int64_t>(1, l.weightCount() / std::max<int64_t>(l.m, 1) / s);
    const int64_t filters_per_slice = ceilDiv(l.m, cfg.dimM);
    p.weightBufBytes =
        filters_per_slice *
        (rows_per_filter * s * l.coefBits + s * s * l.basisBits + rows_per_filter) / 8;
    return p;
}

Program
compileNetwork(const sim::Workload &w, const ArrayConfig &cfg)
{
    Program prog;
    for (size_t li = 0; li < w.layers.size(); ++li) {
        const auto &l = w.layers[li];
        TilePlan plan = planLayer(l, cfg);
        prog.plans.push_back(plan);

        const int64_t layer = (int64_t)li;
        prog.instructions.push_back(
            {Opcode::ConfigLayer, layer, (int64_t)plan.dataflow, 0});

        // Inputs stream in per input tile (or once, when they fit).
        const int64_t input_tiles =
            plan.inputFitsGb
                ? 1
                : ceilDiv(plan.inputGbBytes, cfg.inputGbBytes);
        for (int64_t t = 0; t < input_tiles; ++t)
            prog.instructions.push_back(
                {Opcode::LoadInput, layer, t, 0});

        // Per output-channel pass: coefficients stream into the
        // weight buffers, bases into the REs (ping-pong pairs), then
        // the array computes over the input-channel tiles.
        for (int64_t mt = 0; mt < plan.mTiles; ++mt) {
            prog.instructions.push_back(
                {Opcode::LoadCoeff, layer, mt, 0});
            prog.instructions.push_back(
                {Opcode::LoadBasis, layer, mt, 0});
            for (int64_t ct = 0; ct < plan.cTiles; ++ct)
                prog.instructions.push_back(
                    {Opcode::Compute, layer, mt, ct});
            prog.instructions.push_back(
                {Opcode::StoreOutput, layer, mt, 0});
        }
    }
    return prog;
}

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ConfigLayer: return "CONFIG";
      case Opcode::LoadInput: return "LD.IN";
      case Opcode::LoadBasis: return "LD.BASIS";
      case Opcode::LoadCoeff: return "LD.COEFF";
      case Opcode::Compute: return "COMPUTE";
      case Opcode::StoreOutput: return "ST.OUT";
    }
    return "?";
}

std::string
disassemble(const Program &p, size_t max_lines)
{
    std::ostringstream os;
    size_t n = 0;
    for (const auto &i : p.instructions) {
        if (n++ >= max_lines) {
            os << "... (" << p.instructions.size() - max_lines
               << " more)\n";
            break;
        }
        os << opcodeName(i.op) << " layer=" << i.layer
           << " a0=" << i.arg0 << " a1=" << i.arg1 << "\n";
    }
    return os.str();
}

} // namespace compiler
} // namespace se
