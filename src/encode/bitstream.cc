#include "encode/bitstream.hh"

#include <string>

namespace se {
namespace encode {

void
BitWriter::writeBits(uint32_t value, int width)
{
    if (width < 0 || width > 32)
        throw BitstreamError("bit width " + std::to_string(width) +
                             " outside [0, 32]");
    if (width < 32 && (value >> width) != 0)
        throw BitstreamError("value " + std::to_string(value) +
                             " does not fit in " +
                             std::to_string(width) + " bits");
    for (int k = 0; k < width; ++k) {
        const int off = (int)(bits_ & 7);
        if (off == 0)
            bytes_.push_back(0);
        bytes_.back() |= (uint8_t)(((value >> k) & 1u) << off);
        ++bits_;
    }
}

void
BitWriter::alignToByte()
{
    bits_ = (bits_ + 7) & ~(size_t)7;
    // The open byte was zero-initialized on push, so the pad bits are
    // already zero — only the counter moves.
}

const std::vector<uint8_t> &
BitWriter::bytes() const
{
    if (!aligned())
        throw BitstreamError(
            "bytes() on an unaligned BitWriter (call alignToByte())");
    return bytes_;
}

std::vector<uint8_t>
BitWriter::take()
{
    if (!aligned())
        throw BitstreamError(
            "take() on an unaligned BitWriter (call alignToByte())");
    std::vector<uint8_t> out = std::move(bytes_);
    bytes_.clear();
    bits_ = 0;
    return out;
}

uint32_t
BitReader::readBits(int width)
{
    if (width < 0 || width > 32)
        throw BitstreamError("bit width " + std::to_string(width) +
                             " outside [0, 32]");
    if ((size_t)width > bitsRemaining())
        throw BitstreamError(
            "bitstream ends " +
            std::to_string((size_t)width - bitsRemaining()) +
            " bit(s) short of a " + std::to_string(width) +
            "-bit read");
    uint32_t out = 0;
    for (int k = 0; k < width; ++k) {
        const uint32_t bit =
            (data_[pos_ >> 3] >> (pos_ & 7)) & 1u;
        out |= bit << k;
        ++pos_;
    }
    return out;
}

uint32_t
BitReader::alignToByte()
{
    const int pad = (int)((8 - (pos_ & 7)) & 7);
    return readBits(pad);
}

} // namespace encode
} // namespace se
