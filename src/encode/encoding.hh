/**
 * @file
 * Sparse index encodings discussed in Sections II/IV of the paper:
 *  - 1-bit direct indexing (Cambricon-S style): one bit per element
 *    (or per vector, the SmartExchange choice),
 *  - run-length coding (RLC, Eyeriss/SCNN style),
 *  - compressed row storage (CRS, EIE style),
 * plus the index-selector pairing logic that matches non-zero
 * coefficient rows with non-zero activation rows so both memory
 * accesses and computation can be skipped.
 */

#ifndef SE_ENCODE_ENCODING_HH
#define SE_ENCODE_ENCODING_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace se {
namespace encode {

/** A 1-bit-per-entry occupancy bitmap. */
struct Bitmap
{
    std::vector<uint8_t> bits;  ///< 0/1 per position
    int64_t storageBits() const { return (int64_t)bits.size(); }
};

/** Build the bitmap of non-zero entries of a flat vector. */
Bitmap directBitmap(const std::vector<float> &values);

/**
 * Build the vector-wise bitmap of a matrix: one bit per row, set when
 * the row has any non-zero (the SmartExchange Fig. 3 encoding).
 */
Bitmap vectorBitmap(const Tensor &mat);

/** Run-length encoded zero-run lengths with a fixed code width. */
struct RunLength
{
    std::vector<uint32_t> runs;  ///< zero-run length before each nnz
    int codeBits = 4;

    int64_t storageBits() const;
};

/** RLC-encode the zero runs of a flat vector. Runs longer than the
 *  code capacity emit placeholder zero-valued entries, as in Eyeriss;
 *  the count of such padding entries is returned via padded. */
RunLength runLengthEncode(const std::vector<float> &values,
                          int code_bits = 4, int64_t *padded = nullptr);

/** The non-zero (and padding-zero) payload entries matching an RLC
 *  stream, in order. Together with RunLength this is the full
 *  compressed form. */
std::vector<float> runLengthPayload(const std::vector<float> &values,
                                    int code_bits = 4);

/**
 * Reverse runLengthEncode: expand (runs, payload) back to the flat
 * vector of the original length (trailing zeros restored from
 * total_len).
 */
std::vector<float> runLengthDecode(const RunLength &rl,
                                   const std::vector<float> &payload,
                                   int64_t total_len);

/** Expand a bitmap + packed non-zero values to the flat vector. */
std::vector<float> bitmapDecode(const Bitmap &bitmap,
                                const std::vector<float> &payload);

/** Pack the non-zero values of a flat vector (bitmap payload). */
std::vector<float> bitmapPayload(const std::vector<float> &values);

/** CRS storage cost for a sparse matrix with given index width. */
struct CrsCost
{
    int64_t nnz = 0;
    int64_t columnIndexBits = 0;
    int64_t rowPointerBits = 0;

    int64_t
    storageBits(int value_bits) const
    {
        return nnz * value_bits + columnIndexBits + rowPointerBits;
    }
};

/** Compute CRS cost of a 2-D tensor. */
CrsCost crsCost(const Tensor &mat);

/**
 * Index selector (Section IV-B, inspired by Cambricon-S): given the
 * 1-bit vector indexes of coefficient rows and activation rows, emit
 * the list of positions where BOTH are non-zero — the only row pairs
 * that reach the PE lines.
 */
std::vector<int64_t> selectPairs(const Bitmap &weight_rows,
                                 const Bitmap &activation_rows);

/**
 * Encoding overhead comparison behind Fig. 3 (b): bits of index needed
 * under element-wise vs vector-wise encoding of an (rows x cols)
 * weight block.
 */
struct IndexOverhead
{
    int64_t elementWiseBits = 0;  ///< rows * cols
    int64_t vectorWiseBits = 0;   ///< rows
};

IndexOverhead indexOverhead(int64_t rows, int64_t cols);

} // namespace encode
} // namespace se

#endif // SE_ENCODE_ENCODING_HH
