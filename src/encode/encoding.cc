#include "encode/encoding.hh"

namespace se {
namespace encode {

Bitmap
directBitmap(const std::vector<float> &values)
{
    Bitmap b;
    b.bits.reserve(values.size());
    for (float v : values)
        b.bits.push_back(v != 0.0f ? 1 : 0);
    return b;
}

Bitmap
vectorBitmap(const Tensor &mat)
{
    SE_ASSERT(mat.ndim() == 2, "vectorBitmap needs a 2-D tensor");
    Bitmap b;
    for (int64_t i = 0; i < mat.dim(0); ++i) {
        uint8_t any = 0;
        for (int64_t j = 0; j < mat.dim(1); ++j)
            if (mat.at(i, j) != 0.0f) {
                any = 1;
                break;
            }
        b.bits.push_back(any);
    }
    return b;
}

int64_t
RunLength::storageBits() const
{
    return (int64_t)runs.size() * codeBits;
}

RunLength
runLengthEncode(const std::vector<float> &values, int code_bits,
                int64_t *padded)
{
    RunLength rl;
    rl.codeBits = code_bits;
    const uint32_t max_run = (1u << code_bits) - 1;
    uint32_t run = 0;
    int64_t pad_count = 0;
    for (float v : values) {
        if (v == 0.0f) {
            if (run == max_run) {
                // Emit a padding zero entry, as Eyeriss RLC does.
                rl.runs.push_back(run);
                ++pad_count;
                run = 0;
            } else {
                ++run;
            }
        } else {
            rl.runs.push_back(run);
            run = 0;
        }
    }
    if (padded)
        *padded = pad_count;
    return rl;
}

std::vector<float>
runLengthPayload(const std::vector<float> &values, int code_bits)
{
    const uint32_t max_run = (1u << code_bits) - 1;
    std::vector<float> payload;
    uint32_t run = 0;
    for (float v : values) {
        if (v == 0.0f) {
            if (run == max_run) {
                payload.push_back(0.0f);  // padding entry
                run = 0;
            } else {
                ++run;
            }
        } else {
            payload.push_back(v);
            run = 0;
        }
    }
    return payload;
}

std::vector<float>
runLengthDecode(const RunLength &rl, const std::vector<float> &payload,
                int64_t total_len)
{
    SE_ASSERT(rl.runs.size() == payload.size(),
              "RLC runs/payload length mismatch");
    std::vector<float> out;
    out.reserve((size_t)total_len);
    for (size_t i = 0; i < rl.runs.size(); ++i) {
        for (uint32_t z = 0; z < rl.runs[i]; ++z)
            out.push_back(0.0f);
        out.push_back(payload[i]);
    }
    SE_ASSERT((int64_t)out.size() <= total_len,
              "RLC stream longer than declared length");
    out.resize((size_t)total_len, 0.0f);
    return out;
}

std::vector<float>
bitmapPayload(const std::vector<float> &values)
{
    std::vector<float> payload;
    for (float v : values)
        if (v != 0.0f)
            payload.push_back(v);
    return payload;
}

std::vector<float>
bitmapDecode(const Bitmap &bitmap, const std::vector<float> &payload)
{
    std::vector<float> out(bitmap.bits.size(), 0.0f);
    size_t p = 0;
    for (size_t i = 0; i < bitmap.bits.size(); ++i)
        if (bitmap.bits[i]) {
            SE_ASSERT(p < payload.size(),
                      "bitmap payload too short");
            out[i] = payload[p++];
        }
    SE_ASSERT(p == payload.size(), "bitmap payload too long");
    return out;
}

CrsCost
crsCost(const Tensor &mat)
{
    SE_ASSERT(mat.ndim() == 2, "crsCost needs a 2-D tensor");
    CrsCost c;
    const int64_t rows = mat.dim(0), cols = mat.dim(1);
    int col_bits = 1;
    while ((1LL << col_bits) < cols)
        ++col_bits;
    for (int64_t i = 0; i < rows; ++i)
        for (int64_t j = 0; j < cols; ++j)
            if (mat.at(i, j) != 0.0f)
                ++c.nnz;
    int ptr_bits = 1;
    while ((1LL << ptr_bits) < c.nnz + 1)
        ++ptr_bits;
    c.columnIndexBits = c.nnz * col_bits;
    c.rowPointerBits = (rows + 1) * ptr_bits;
    return c;
}

std::vector<int64_t>
selectPairs(const Bitmap &weight_rows, const Bitmap &activation_rows)
{
    SE_ASSERT(weight_rows.bits.size() == activation_rows.bits.size(),
              "index selector length mismatch");
    std::vector<int64_t> pairs;
    for (size_t i = 0; i < weight_rows.bits.size(); ++i)
        if (weight_rows.bits[i] && activation_rows.bits[i])
            pairs.push_back((int64_t)i);
    return pairs;
}

IndexOverhead
indexOverhead(int64_t rows, int64_t cols)
{
    IndexOverhead o;
    o.elementWiseBits = rows * cols;
    o.vectorWiseBits = rows;
    return o;
}

} // namespace encode
} // namespace se
