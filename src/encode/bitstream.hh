/**
 * @file
 * BitWriter / BitReader — the sub-byte serialization layer under the
 * model-file v4 adaptive-width coefficient codec (tthresh-style
 * per-column bit widths, cf. Ballester-Ripoll et al.).
 *
 * Bit order is LSB-first within each byte: bit k of the stream lives
 * at bit (k & 7) of byte (k >> 3), and a multi-bit field's least
 * significant bit is written first. This matches the nibble order of
 * the v3 packed-Ce form (low nibble first), so a 4-bit field written
 * at a byte boundary lands exactly where v3 would put it.
 *
 * The writer never pads silently: alignToByte() is the only way bits
 * are skipped, and the reader's alignToByte() returns the pad bits it
 * consumed so a decoder can enforce zero padding (the model-file
 * canonical-encoding rule: two different byte streams must never
 * decode to the same value).
 *
 * Reads past the end of the buffer throw BitstreamError — a truncated
 * stream can never yield data.
 */

#ifndef SE_ENCODE_BITSTREAM_HH
#define SE_ENCODE_BITSTREAM_HH

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace se {
namespace encode {

/** Thrown on any malformed bitstream operation (over-read, bad width,
 *  out-of-range value). Mirrors core::ModelFileError one layer down:
 *  decode either returns valid data or throws, never crashes. */
class BitstreamError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Append-only bit sink backed by a byte vector. */
class BitWriter
{
  public:
    /**
     * Append the low `width` bits of `value`, LSB first. width must be
     * in [0, 32] and value must fit in width bits (writeBits(v, 0)
     * requires v == 0 and appends nothing) — anything else throws
     * BitstreamError, because silently masking would corrupt the
     * stream instead of the call site that produced the bad value.
     */
    void writeBits(uint32_t value, int width);

    void writeBit(bool bit) { writeBits(bit ? 1u : 0u, 1); }

    /** Pad the current byte with zero bits (no-op when aligned). */
    void alignToByte();

    size_t bitsWritten() const { return bits_; }
    bool aligned() const { return (bits_ & 7) == 0; }

    /**
     * The serialized bytes. Must be byte-aligned (call alignToByte()
     * first) — handing out a buffer whose tail byte is still open
     * would let the caller concatenate streams mid-byte; throws
     * BitstreamError instead.
     */
    const std::vector<uint8_t> &bytes() const;

    /** bytes(), destructively (resets the writer to empty). */
    std::vector<uint8_t> take();

  private:
    std::vector<uint8_t> bytes_;
    size_t bits_ = 0;  ///< total bits written
};

/** Bounded bit source over caller-owned bytes (not copied). */
class BitReader
{
  public:
    BitReader(const uint8_t *data, size_t size)
        : data_(data), size_bits_(size * 8)
    {
    }

    /**
     * Read `width` bits (LSB first), width in [0, 32]. Throws
     * BitstreamError when fewer than `width` bits remain — a
     * truncated stream fails loudly at the exact read that crossed
     * the end, never returns fabricated zeros.
     */
    uint32_t readBits(int width);

    bool readBit() { return readBits(1) != 0; }

    /**
     * Skip to the next byte boundary and return the pad bits consumed
     * (as a value, LSB first; 0 when already aligned). Callers that
     * require canonical streams check the result is zero.
     */
    uint32_t alignToByte();

    size_t bitsConsumed() const { return pos_; }
    size_t bitsRemaining() const { return size_bits_ - pos_; }
    bool atEnd() const { return pos_ == size_bits_; }

  private:
    const uint8_t *data_;
    size_t size_bits_;
    size_t pos_ = 0;  ///< bits consumed
};

} // namespace encode
} // namespace se

#endif // SE_ENCODE_BITSTREAM_HH
