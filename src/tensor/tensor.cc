#include "tensor/tensor.hh"

#include "base/random.hh"

namespace se {

Tensor
eye(int64_t n)
{
    Tensor t({n, n});
    for (int64_t i = 0; i < n; ++i)
        t.at(i, i) = 1.0f;
    return t;
}

Tensor
randn(const Shape &shape, Rng &rng, float mean, float stddev)
{
    Tensor t(shape);
    for (int64_t i = 0; i < t.size(); ++i)
        t[i] = rng.gaussian(mean, stddev);
    return t;
}

Tensor
randu(const Shape &shape, Rng &rng, float lo, float hi)
{
    Tensor t(shape);
    for (int64_t i = 0; i < t.size(); ++i)
        t[i] = rng.uniform(lo, hi);
    return t;
}

} // namespace se
