/**
 * @file
 * A small dense row-major float tensor.
 *
 * This is the numeric substrate for both the SmartExchange algorithm
 * (which operates on 2-D weight matrices) and the NN framework (which
 * uses 4-D activation/weight tensors in NCHW / MCRS layout).
 */

#ifndef SE_TENSOR_TENSOR_HH
#define SE_TENSOR_TENSOR_HH

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <numeric>
#include <vector>

#include "base/logging.hh"

namespace se {

/** Shape of a tensor: up to 4 dimensions in practice. */
using Shape = std::vector<int64_t>;

/** Number of elements implied by a shape. */
inline int64_t
numel(const Shape &s)
{
    int64_t n = 1;
    for (auto d : s)
        n *= d;
    return n;
}

/**
 * Dense row-major float tensor with value semantics.
 *
 * Indexing helpers are provided for 1-4 dims; at() checks bounds via
 * SE_ASSERT in all builds (the library is simulation-scale, not HPC).
 */
class Tensor
{
  public:
    Tensor() = default;

    explicit Tensor(Shape shape, float fill = 0.0f)
        : shape_(std::move(shape)), data_(numel(shape_), fill)
    {
        computeStrides();
    }

    Tensor(Shape shape, std::vector<float> values)
        : shape_(std::move(shape)), data_(std::move(values))
    {
        SE_ASSERT((int64_t)data_.size() == numel(shape_),
                  "value count does not match shape");
        computeStrides();
    }

    const Shape &shape() const { return shape_; }
    int64_t dim(int i) const { return shape_[(size_t)i]; }
    int ndim() const { return (int)shape_.size(); }
    int64_t size() const { return (int64_t)data_.size(); }
    bool empty() const { return data_.empty(); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }
    std::vector<float> &vec() { return data_; }
    const std::vector<float> &vec() const { return data_; }

    float &operator[](int64_t i) { return data_[(size_t)i]; }
    float operator[](int64_t i) const { return data_[(size_t)i]; }

    /** Bounds-checked linear access. */
    float &
    at(int64_t i)
    {
        SE_ASSERT(i >= 0 && i < size(), "index ", i, " out of range ",
                  size());
        return data_[(size_t)i];
    }

    /** 2-D access (row, col). */
    float &
    at(int64_t i, int64_t j)
    {
        return data_[(size_t)(i * strides_[0] + j)];
    }
    float
    at(int64_t i, int64_t j) const
    {
        return data_[(size_t)(i * strides_[0] + j)];
    }

    /** 3-D access. */
    float &
    at(int64_t i, int64_t j, int64_t k)
    {
        return data_[(size_t)(i * strides_[0] + j * strides_[1] + k)];
    }
    float
    at(int64_t i, int64_t j, int64_t k) const
    {
        return data_[(size_t)(i * strides_[0] + j * strides_[1] + k)];
    }

    /** 4-D access (n, c, h, w). */
    float &
    at(int64_t n, int64_t c, int64_t h, int64_t w)
    {
        return data_[(size_t)(n * strides_[0] + c * strides_[1] +
                              h * strides_[2] + w)];
    }
    float
    at(int64_t n, int64_t c, int64_t h, int64_t w) const
    {
        return data_[(size_t)(n * strides_[0] + c * strides_[1] +
                              h * strides_[2] + w)];
    }

    /** Reinterpret the data with a new shape of equal element count. */
    Tensor
    reshaped(Shape new_shape) const
    {
        SE_ASSERT(numel(new_shape) == size(), "reshape element mismatch");
        Tensor t;
        t.shape_ = std::move(new_shape);
        t.data_ = data_;
        t.computeStrides();
        return t;
    }

    /** Elementwise in-place map. */
    Tensor &
    apply(const std::function<float(float)> &f)
    {
        for (auto &v : data_)
            v = f(v);
        return *this;
    }

    /** Fill with a constant. */
    void
    fill(float v)
    {
        std::fill(data_.begin(), data_.end(), v);
    }

    /** Sum of all elements. */
    double
    sum() const
    {
        return std::accumulate(data_.begin(), data_.end(), 0.0);
    }

  private:
    void
    computeStrides()
    {
        strides_.assign(shape_.size(), 1);
        for (int i = (int)shape_.size() - 2; i >= 0; --i)
            strides_[(size_t)i] =
                strides_[(size_t)i + 1] * shape_[(size_t)i + 1];
    }

    Shape shape_;
    std::vector<int64_t> strides_;
    std::vector<float> data_;
};

/** Identity matrix of size n (2-D tensor). */
Tensor eye(int64_t n);

/** Tensor with i.i.d. N(mean, stddev) entries. */
Tensor randn(const Shape &shape, class Rng &rng, float mean = 0.0f,
             float stddev = 1.0f);

/** Tensor with i.i.d. U[lo, hi) entries. */
Tensor randu(const Shape &shape, class Rng &rng, float lo = 0.0f,
             float hi = 1.0f);

} // namespace se

#endif // SE_TENSOR_TENSOR_HH
