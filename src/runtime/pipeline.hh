/**
 * @file
 * The parallel compression pipeline.
 *
 * CompressionPipeline runs core::applySmartExchange's work — one
 * independent ALS decomposition per reshaped weight slice — across a
 * fixed-size thread pool, optionally through the decomposition cache,
 * and reassembles the CompressionReport deterministically. Because
 * decomposeMatrix is deterministic and every slice is independent, the
 * parallel result is bit-identical to the serial one; with
 * RuntimeOptions{threads = 0} the pipeline literally calls the legacy
 * serial path.
 */

#ifndef SE_RUNTIME_PIPELINE_HH
#define SE_RUNTIME_PIPELINE_HH

#include <memory>

#include "base/thread_pool.hh"
#include "core/apply.hh"
#include "runtime/decomp_cache.hh"
#include "runtime/options.hh"

namespace se {
namespace runtime {

/** Counters from the last CompressionPipeline::run(). */
struct PipelineStats
{
    size_t units = 0;       ///< decomposition tasks executed
    size_t cacheHits = 0;   ///< tasks answered from the cache
    int threadsUsed = 0;    ///< pool width (0 = legacy serial path)
};

class CompressionPipeline
{
  public:
    explicit CompressionPipeline(RuntimeOptions opts = {})
        : opts_(opts),
          cache_(DecompCacheOptions{opts.cacheCapacity, opts.cacheDir})
    {
        // The pool lives as long as the pipeline so repeated runs
        // (re-training rounds, sweeps) don't re-spawn workers.
        const int threads = opts_.resolvedThreads();
        if (threads > 1)
            pool_ = std::make_unique<ThreadPool>(threads);
    }

    /**
     * Drop-in parallel equivalent of core::applySmartExchange: same
     * inputs, same in-place weight replacement, bit-identical report.
     */
    core::CompressionReport run(nn::Sequential &net,
                                const core::SeOptions &se_opts,
                                const core::ApplyOptions &apply_opts);

    const PipelineStats &stats() const { return stats_; }
    DecompCache &cache() { return cache_; }
    const RuntimeOptions &options() const { return opts_; }

  private:
    RuntimeOptions opts_;
    DecompCache cache_;
    PipelineStats stats_;
    std::unique_ptr<ThreadPool> pool_;  ///< null when <= 1 thread
};

} // namespace runtime
} // namespace se

#endif // SE_RUNTIME_PIPELINE_HH
