/**
 * @file
 * An LRU cache of SmartExchange decomposition results.
 *
 * Keyed by the FNV-1a content hash of (weight matrix bytes + shape +
 * SeOptions), so any sweep that re-decomposes the same matrix with the
 * same options — ablations over accelerator knobs, design-space scans,
 * repeated benchmark protocols — gets the cached {Ce, B} back instead
 * of re-running the ALS loop. decomposeMatrix is deterministic, so a
 * cache hit is bit-identical to a recompute.
 *
 * Thread-safe: one mutex around the map + LRU list. The guarded work
 * is pointer shuffling and an SeMatrix copy, orders of magnitude
 * cheaper than the ALS solve it replaces, so contention is immaterial.
 */

#ifndef SE_RUNTIME_DECOMP_CACHE_HH
#define SE_RUNTIME_DECOMP_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "core/smart_exchange.hh"

namespace se {
namespace runtime {

/** Cache key for one (weight matrix, SeOptions) decomposition. */
uint64_t decompKey(const Tensor &w, const core::SeOptions &opts);

class DecompCache
{
  public:
    /** capacity == 0 disables the cache (every lookup misses). */
    explicit DecompCache(size_t capacity) : capacity_(capacity) {}

    /** Copy the cached result into `out`; true on hit. */
    bool lookup(uint64_t key, core::SeMatrix &out);

    /** Insert (or refresh) a result; evicts the LRU entry when full. */
    void insert(uint64_t key, const core::SeMatrix &m);

    /**
     * The main entry point: return the cached decomposition of `w`
     * under `opts`, computing and caching it on a miss.
     */
    core::SeMatrix getOrCompute(const Tensor &w,
                                const core::SeOptions &opts);

    size_t size() const;
    size_t capacity() const { return capacity_; }
    uint64_t hits() const;
    uint64_t misses() const;
    void clear();

  private:
    struct Entry
    {
        uint64_t key;
        core::SeMatrix value;
    };

    size_t capacity_;
    mutable std::mutex mu_;
    std::list<Entry> lru_;  ///< front = most recently used
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace runtime
} // namespace se

#endif // SE_RUNTIME_DECOMP_CACHE_HH
