/**
 * @file
 * An LRU cache of SmartExchange decomposition results, optionally
 * persisted to disk.
 *
 * Keyed by the FNV-1a content hash of (weight matrix bytes + shape +
 * SeOptions), so any sweep that re-decomposes the same matrix with the
 * same options — ablations over accelerator knobs, design-space scans,
 * repeated benchmark protocols — gets the cached {Ce, B} back instead
 * of re-running the ALS loop. decomposeMatrix is deterministic, so a
 * cache hit is bit-identical to a recompute.
 *
 * Persistence (DecompCacheOptions::spillDir, SE_CACHE_DIR from the
 * drivers): every insert also spills the entry to
 * `<spillDir>/<key-hex>.sedc` so compression sweeps and serve
 * cold-starts survive restarts, and concurrent processes pointed at
 * one directory share each other's work. The spill tier is crash-safe
 * by construction:
 *
 *  - writes go to a unique temp file first and land via atomic
 *    rename(2) — a reader can never observe a half-written entry;
 *  - every entry carries a key-seeded FNV-1a checksum over its
 *    payload; a corrupt or truncated entry (a crash mid-write, a
 *    flipped bit at rest) is silently treated as a miss and deleted;
 *  - recoverScan() (run at construction) sweeps the directory once,
 *    deleting stale temp files and corrupt entries, and reports how
 *    many valid entries survive.
 *
 * A spill-tier I/O failure never fails the computation: the write is
 * dropped, counted in spillFailures(), and the in-memory result is
 * returned as usual. `capacity` bounds the in-memory tier only;
 * memory eviction does not delete the on-disk copy (that is the
 * persistent tier's point). purgeSpill() wipes the directory.
 *
 * Thread-safe: one mutex around the map + LRU list, a second around
 * the spill directory I/O. Cross-process safety comes from the atomic
 * rename + checksum-validated reads, not from locking.
 */

#ifndef SE_RUNTIME_DECOMP_CACHE_HH
#define SE_RUNTIME_DECOMP_CACHE_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "base/mutex.hh"
#include "core/smart_exchange.hh"

namespace se {
namespace runtime {

/** Cache key for one (weight matrix, SeOptions) decomposition. */
uint64_t decompKey(const Tensor &w, const core::SeOptions &opts);

struct DecompCacheOptions
{
    /** In-memory capacity in entries; 0 disables the memory tier
     *  (every memory lookup misses — disk, when set, still works). */
    size_t capacity = 0;
    /** Spill directory; empty disables persistence (legacy
     *  memory-only behaviour). Created if missing. */
    std::string spillDir;
};

class DecompCache
{
  public:
    /** Memory-only cache; capacity == 0 disables it entirely. */
    explicit DecompCache(size_t capacity)
        : DecompCache(DecompCacheOptions{capacity, {}})
    {
    }

    /** May persist to opts.spillDir; runs a recovery scan when the
     *  directory is set (creating it if missing). Throws
     *  std::runtime_error when the directory cannot be created. */
    explicit DecompCache(const DecompCacheOptions &opts);

    /**
     * Copy the cached result into `out`; true on hit. Misses in
     * memory fall through to the spill tier: a valid disk entry is
     * promoted into memory and counts as a diskHit, a corrupt one is
     * deleted and counts as a miss.
     */
    bool lookup(uint64_t key, core::SeMatrix &out);

    /** Insert (or refresh) a result; evicts the LRU entry when the
     *  memory tier is full, and spills to disk when persistent. */
    void insert(uint64_t key, const core::SeMatrix &m);

    /**
     * The main entry point: return the cached decomposition of `w`
     * under `opts`, computing and caching it on a miss.
     */
    core::SeMatrix getOrCompute(const Tensor &w,
                                const core::SeOptions &opts);

    /**
     * Sweep the spill directory: delete stale temp files and corrupt
     * or truncated entries, return the number of valid entries left.
     * Run at construction; callable again to model crash recovery.
     * No-op (returns 0) without a spill directory.
     */
    size_t recoverScan();

    /** Delete every spill entry and temp file (memory untouched). */
    void purgeSpill();

    size_t size() const;
    size_t capacity() const { return capacity_; }
    bool persistent() const { return !spillDir_.empty(); }
    const std::string &spillDir() const { return spillDir_; }
    uint64_t hits() const;
    uint64_t misses() const;
    uint64_t diskHits() const;
    /** Entries written to the spill tier by this instance. */
    uint64_t spills() const;
    /** Spill writes dropped on an I/O error (never fatal). */
    uint64_t spillFailures() const;
    /** Corrupt/truncated spill entries deleted (lookups + scans). */
    uint64_t corruptDropped() const;
    /** Clear the MEMORY tier and counters; the spill tier persists
     *  (that is its point — use purgeSpill() to wipe it). */
    void clear();

  private:
    struct Entry
    {
        uint64_t key;
        core::SeMatrix value;
    };

    bool memoryLookup(uint64_t key, core::SeMatrix &out)
        SE_EXCLUDES(mu_);
    void memoryInsert(uint64_t key, const core::SeMatrix &m)
        SE_EXCLUDES(mu_);
    std::string entryPath(uint64_t key) const;
    /** True + decoded value when the entry exists and validates;
     *  deletes the file and returns false otherwise. */
    bool spillRead(uint64_t key, core::SeMatrix &out)
        SE_EXCLUDES(spillMu_);
    void spillWrite(uint64_t key, const core::SeMatrix &m)
        SE_EXCLUDES(spillMu_);

    size_t capacity_;
    std::string spillDir_;

    /** Memory tier: map + LRU list + their hit/miss counters. House
     *  lock order (never nested today, enforced by SE_EXCLUDES on
     *  every helper): mu_ and spillMu_ are only ever held one at a
     *  time. */
    mutable base::Mutex mu_;
    std::list<Entry> lru_ SE_GUARDED_BY(mu_);  ///< front = MRU
    std::unordered_map<uint64_t, std::list<Entry>::iterator>
        index_ SE_GUARDED_BY(mu_);
    uint64_t hits_ SE_GUARDED_BY(mu_) = 0;
    uint64_t misses_ SE_GUARDED_BY(mu_) = 0;

    /** Spill tier: disk I/O counters + the temp-name sequence. */
    mutable base::Mutex spillMu_;
    uint64_t diskHits_ SE_GUARDED_BY(spillMu_) = 0;
    uint64_t spills_ SE_GUARDED_BY(spillMu_) = 0;
    uint64_t spillFailures_ SE_GUARDED_BY(spillMu_) = 0;
    uint64_t corruptDropped_ SE_GUARDED_BY(spillMu_) = 0;
    /** Unique temp-file suffix counter. */
    uint64_t tempSeq_ SE_GUARDED_BY(spillMu_) = 0;
};

} // namespace runtime
} // namespace se

#endif // SE_RUNTIME_DECOMP_CACHE_HH
