#include "runtime/decomp_cache.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/failpoint.hh"
#include "base/hash.hh"
#include "base/logging.hh"
#include "core/model_file.hh"

namespace se {
namespace runtime {

namespace fs = std::filesystem;

namespace {

// Spill entry layout: u32 magic, u32 version, u64 key, u64
// payloadBytes, payload (saveSeMatrix bytes), u64 checksum. The
// checksum is FNV-1a over the payload seeded with (version, key), so
// an entry can neither be truncated nor served under the wrong key
// (a renamed or cross-linked file fails validation like any other
// corruption).
constexpr uint32_t kSpillMagic = 0x53454443u;  // "SEDC"
constexpr uint32_t kSpillVersion = 1;
constexpr size_t kSpillHeaderBytes = 4 + 4 + 8 + 8;

uint64_t
spillChecksum(uint64_t key, const std::string &payload)
{
    uint64_t seed = hashValue(kSpillVersion);
    seed = hashValue(key, seed);
    return fnv1a(payload.data(), payload.size(), seed);
}

template <typename T>
void
putRaw(std::string &out, const T &v)
{
    out.append((const char *)&v, sizeof(T));
}

template <typename T>
T
getRaw(const std::string &in, size_t offset)
{
    T v;
    std::memcpy(&v, in.data() + offset, sizeof(T));
    return v;
}

/**
 * Validate one spill file's bytes end to end; on success decode the
 * payload into `out` (when non-null) and return the stored key.
 * Returns false on ANY damage — wrong magic/version, truncation,
 * trailing garbage, checksum mismatch, undecodable payload.
 */
bool
validateSpillBytes(const std::string &bytes, core::SeMatrix *out,
                   uint64_t *keyOut)
{
    if (bytes.size() < kSpillHeaderBytes + 8)
        return false;
    if (getRaw<uint32_t>(bytes, 0) != kSpillMagic ||
        getRaw<uint32_t>(bytes, 4) != kSpillVersion)
        return false;
    const uint64_t key = getRaw<uint64_t>(bytes, 8);
    const uint64_t payloadBytes = getRaw<uint64_t>(bytes, 16);
    if (payloadBytes != bytes.size() - kSpillHeaderBytes - 8)
        return false;
    const std::string payload =
        bytes.substr(kSpillHeaderBytes, (size_t)payloadBytes);
    if (getRaw<uint64_t>(bytes, bytes.size() - 8) !=
        spillChecksum(key, payload))
        return false;
    if (out) {
        try {
            std::istringstream is(payload, std::ios::binary);
            *out = core::loadSeMatrix(is);
        } catch (...) {
            return false;
        }
    }
    if (keyOut)
        *keyOut = key;
    return true;
}

std::string
keyHex(uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)key);
    return buf;
}

} // namespace

uint64_t
decompKey(const Tensor &w, const core::SeOptions &opts)
{
    // Every SeOptions field must be hashed below; if this assert
    // fires, a field was added or resized — extend the field list and
    // update the expected size, or cached results will silently stop
    // distinguishing the new knob.
    static_assert(sizeof(core::SeOptions) == 56,
                  "SeOptions changed: update decompKey's field list");
    uint64_t h = hashTensor(w);
    h = hashValue(opts.coefBits, h);
    h = hashValue(opts.basisBits, h);
    h = hashValue(opts.vectorThreshold, h);
    h = hashValue(opts.minVectorSparsity, h);
    h = hashValue(opts.maxIterations, h);
    h = hashValue(opts.tol, h);
    h = hashValue(opts.ridge, h);
    h = hashValue(opts.refineOnSupport, h);
    return h;
}

DecompCache::DecompCache(const DecompCacheOptions &opts)
    : capacity_(opts.capacity), spillDir_(opts.spillDir)
{
    if (spillDir_.empty())
        return;
    std::error_code ec;
    fs::create_directories(spillDir_, ec);
    if (ec || !fs::is_directory(spillDir_))
        throw std::runtime_error("DecompCache: cannot create spill "
                                 "directory '" +
                                 spillDir_ + "'");
    recoverScan();
}

bool
DecompCache::memoryLookup(uint64_t key, core::SeMatrix &out)
{
    if (capacity_ == 0)
        return false;
    base::LockGuard lk(mu_);
    auto it = index_.find(key);
    if (it == index_.end())
        return false;
    lru_.splice(lru_.begin(), lru_, it->second);
    out = it->second->value;
    return true;
}

void
DecompCache::memoryInsert(uint64_t key, const core::SeMatrix &m)
{
    if (capacity_ == 0)
        return;
    base::LockGuard lk(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->value = m;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(Entry{key, m});
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
    }
}

std::string
DecompCache::entryPath(uint64_t key) const
{
    return (fs::path(spillDir_) / (keyHex(key) + ".sedc")).string();
}

bool
DecompCache::spillRead(uint64_t key, core::SeMatrix &out)
{
    const std::string path = entryPath(key);
    std::string bytes;
    bool corrupt = false;
    try {
        SE_FAILPOINT("decomp_spill_read");
        std::ifstream is(path, std::ios::binary);
        if (!is.good())
            return false;  // plain miss: no such entry
        std::ostringstream os;
        os << is.rdbuf();
        bytes = os.str();
        uint64_t storedKey = 0;
        corrupt = !validateSpillBytes(bytes, &out, &storedKey) ||
                  storedKey != key;
    } catch (...) {
        // An unreadable entry (I/O error, injected fault) is handled
        // exactly like a corrupt one: miss, and drop the file so the
        // next writer re-creates it cleanly.
        corrupt = true;
    }
    if (corrupt) {
        std::error_code ec;
        fs::remove(path, ec);
        base::LockGuard lk(spillMu_);
        ++corruptDropped_;
        return false;
    }
    return true;
}

void
DecompCache::spillWrite(uint64_t key, const core::SeMatrix &m)
{
    // A failed spill must never fail the computation that produced
    // the entry: every throw below (real I/O error or injected fault)
    // is absorbed into spillFailures().
    std::string tmp;
    try {
        SE_FAILPOINT("decomp_spill_write");
        std::ostringstream payload_os(std::ios::binary);
        core::saveSeMatrix(payload_os, m);
        const std::string payload = payload_os.str();
        std::string bytes;
        bytes.reserve(kSpillHeaderBytes + payload.size() + 8);
        putRaw(bytes, kSpillMagic);
        putRaw(bytes, kSpillVersion);
        putRaw(bytes, key);
        putRaw(bytes, (uint64_t)payload.size());
        bytes += payload;
        putRaw(bytes, spillChecksum(key, payload));

        uint64_t seq;
        {
            base::LockGuard lk(spillMu_);
            seq = tempSeq_++;
        }
        // Unique per (instance, write); concurrent processes sharing
        // the directory are still safe because the commit below is a
        // single atomic rename.
        tmp = entryPath(key) + ".tmp" + keyHex((uint64_t)(uintptr_t)this) +
              "." + std::to_string(seq);
        {
            std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
            if (!os.good())
                throw std::runtime_error("cannot open spill temp");
            os.write(bytes.data(), (std::streamsize)bytes.size());
            os.flush();
            if (!os.good())
                throw std::runtime_error("spill temp write failed");
        }
        // A crash between the write above and the rename below leaves
        // only a temp file — invisible to readers, swept by the next
        // recoverScan. This failpoint simulates exactly that kill.
        SE_FAILPOINT("decomp_spill_commit");
        fs::rename(tmp, entryPath(key));
        base::LockGuard lk(spillMu_);
        ++spills_;
    } catch (...) {
        base::LockGuard lk(spillMu_);
        ++spillFailures_;
    }
}

bool
DecompCache::lookup(uint64_t key, core::SeMatrix &out)
{
    if (memoryLookup(key, out)) {
        base::LockGuard lk(mu_);
        ++hits_;
        return true;
    }
    if (!spillDir_.empty() && spillRead(key, out)) {
        memoryInsert(key, out);  // promote for the next lookup
        base::LockGuard lk(spillMu_);
        ++diskHits_;
        return true;
    }
    base::LockGuard lk(mu_);
    ++misses_;
    return false;
}

void
DecompCache::insert(uint64_t key, const core::SeMatrix &m)
{
    memoryInsert(key, m);
    if (!spillDir_.empty())
        spillWrite(key, m);
}

core::SeMatrix
DecompCache::getOrCompute(const Tensor &w, const core::SeOptions &opts)
{
    const uint64_t key = decompKey(w, opts);
    core::SeMatrix m;
    if (lookup(key, m))
        return m;
    m = core::decomposeMatrix(w, opts);
    insert(key, m);
    return m;
}

size_t
DecompCache::recoverScan()
{
    if (spillDir_.empty())
        return 0;
    size_t valid = 0;
    uint64_t dropped = 0;
    for (const auto &entry : fs::directory_iterator(spillDir_)) {
        const std::string name = entry.path().filename().string();
        std::error_code ec;
        if (name.find(".tmp") != std::string::npos) {
            // A temp file at scan time is a write that never
            // committed (crash mid-write) — readers never saw it.
            fs::remove(entry.path(), ec);
            ++dropped;
            continue;
        }
        if (name.size() < 6 ||
            name.compare(name.size() - 5, 5, ".sedc") != 0)
            continue;  // not ours; leave foreign files alone
        std::string bytes;
        {
            std::ifstream is(entry.path(), std::ios::binary);
            std::ostringstream os;
            os << is.rdbuf();
            bytes = os.str();
        }
        uint64_t key = 0;
        if (validateSpillBytes(bytes, nullptr, &key) &&
            keyHex(key) + ".sedc" == name) {
            ++valid;
        } else {
            fs::remove(entry.path(), ec);
            ++dropped;
        }
    }
    base::LockGuard lk(spillMu_);
    corruptDropped_ += dropped;
    return valid;
}

void
DecompCache::purgeSpill()
{
    if (spillDir_.empty())
        return;
    for (const auto &entry : fs::directory_iterator(spillDir_)) {
        const std::string name = entry.path().filename().string();
        if (name.find(".sedc") != std::string::npos) {
            std::error_code ec;
            fs::remove(entry.path(), ec);
        }
    }
}

size_t
DecompCache::size() const
{
    base::LockGuard lk(mu_);
    return lru_.size();
}

uint64_t
DecompCache::hits() const
{
    base::LockGuard lk(mu_);
    return hits_;
}

uint64_t
DecompCache::misses() const
{
    base::LockGuard lk(mu_);
    return misses_;
}

uint64_t
DecompCache::diskHits() const
{
    base::LockGuard lk(spillMu_);
    return diskHits_;
}

uint64_t
DecompCache::spills() const
{
    base::LockGuard lk(spillMu_);
    return spills_;
}

uint64_t
DecompCache::spillFailures() const
{
    base::LockGuard lk(spillMu_);
    return spillFailures_;
}

uint64_t
DecompCache::corruptDropped() const
{
    base::LockGuard lk(spillMu_);
    return corruptDropped_;
}

void
DecompCache::clear()
{
    {
        base::LockGuard lk(mu_);
        lru_.clear();
        index_.clear();
        hits_ = 0;
        misses_ = 0;
    }
    base::LockGuard lk(spillMu_);
    diskHits_ = 0;
    spills_ = 0;
    spillFailures_ = 0;
    corruptDropped_ = 0;
}

} // namespace runtime
} // namespace se
