#include "runtime/decomp_cache.hh"

#include "base/hash.hh"

namespace se {
namespace runtime {

uint64_t
decompKey(const Tensor &w, const core::SeOptions &opts)
{
    // Every SeOptions field must be hashed below; if this assert
    // fires, a field was added or resized — extend the field list and
    // update the expected size, or cached results will silently stop
    // distinguishing the new knob.
    static_assert(sizeof(core::SeOptions) == 56,
                  "SeOptions changed: update decompKey's field list");
    uint64_t h = hashTensor(w);
    h = hashValue(opts.coefBits, h);
    h = hashValue(opts.basisBits, h);
    h = hashValue(opts.vectorThreshold, h);
    h = hashValue(opts.minVectorSparsity, h);
    h = hashValue(opts.maxIterations, h);
    h = hashValue(opts.tol, h);
    h = hashValue(opts.ridge, h);
    h = hashValue(opts.refineOnSupport, h);
    return h;
}

bool
DecompCache::lookup(uint64_t key, core::SeMatrix &out)
{
    if (capacity_ == 0)
        return false;
    std::lock_guard<std::mutex> lk(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    out = it->second->value;
    ++hits_;
    return true;
}

void
DecompCache::insert(uint64_t key, const core::SeMatrix &m)
{
    if (capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lk(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->value = m;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(Entry{key, m});
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
    }
}

core::SeMatrix
DecompCache::getOrCompute(const Tensor &w, const core::SeOptions &opts)
{
    const uint64_t key = decompKey(w, opts);
    core::SeMatrix m;
    if (lookup(key, m))
        return m;
    m = core::decomposeMatrix(w, opts);
    insert(key, m);
    return m;
}

size_t
DecompCache::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return lru_.size();
}

uint64_t
DecompCache::hits() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return hits_;
}

uint64_t
DecompCache::misses() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return misses_;
}

void
DecompCache::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    lru_.clear();
    index_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace runtime
} // namespace se
