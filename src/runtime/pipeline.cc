#include "runtime/pipeline.hh"

#include "kernels/kernels.hh"

namespace se {
namespace runtime {

core::CompressionReport
CompressionPipeline::run(nn::Sequential &net,
                         const core::SeOptions &se_opts,
                         const core::ApplyOptions &apply_opts)
{
    stats_ = PipelineStats{};

    const int threads = opts_.resolvedThreads();
    if (threads == 0) {
        // Legacy serial path, untouched (the cache is bypassed too:
        // threads = 0 means "exactly the pre-runtime code").
        return core::applySmartExchange(net, se_opts, apply_opts);
    }

    core::CompressionPlan plan =
        core::planCompression(net, se_opts, apply_opts);
    std::vector<core::SeMatrix> results(plan.units.size());
    stats_.units = plan.units.size();

    const uint64_t hits_before = cache_.hits();
    auto decompose = [&](int64_t i) {
        // One unit per worker already saturates the pool; the ALS
        // matmuls inside stay inline.
        kernels::SerialScope serial;
        const core::DecompUnit &u = plan.units[(size_t)i];
        if (opts_.cacheCapacity > 0)
            results[(size_t)i] = cache_.getOrCompute(u.matrix, se_opts);
        else
            results[(size_t)i] =
                core::decomposeMatrix(u.matrix, se_opts);
    };

    if (!pool_) {
        for (int64_t i = 0; i < (int64_t)plan.units.size(); ++i)
            decompose(i);
        stats_.threadsUsed = threads;
    } else {
        pool_->parallelFor((int64_t)plan.units.size(), decompose);
        stats_.threadsUsed = pool_->threadCount();
    }
    stats_.cacheHits = (size_t)(cache_.hits() - hits_before);

    return core::finishCompression(plan, std::move(results), se_opts);
}

} // namespace runtime
} // namespace se
