#include "runtime/sim_driver.hh"

#include "base/thread_pool.hh"

namespace se {
namespace runtime {

SimResults
SimDriver::sweep(const std::vector<const accel::Accelerator *> &accs,
                 const std::vector<sim::Workload> &workloads,
                 bool include_fc,
                 const std::function<bool(size_t, size_t)> &skip) const
{
    const size_t na = accs.size(), nw = workloads.size();
    SimResults cells(na, std::vector<SimCell>(nw));

    // One task per (accelerator, workload) cell. Each cell accumulates
    // its layers serially in network order, exactly like runNetwork,
    // so the parallel sweep is bit-identical to the serial one.
    auto run_cell = [&](int64_t flat) {
        const size_t ai = (size_t)flat / nw, wi = (size_t)flat % nw;
        if (skip && skip(ai, wi))
            return;
        SimCell &cell = cells[ai][wi];
        cell.stats = accs[ai]->runNetwork(workloads[wi], include_fc);
        cell.run = true;
    };

    const int64_t n = (int64_t)(na * nw);
    if (!pool_) {
        for (int64_t i = 0; i < n; ++i)
            run_cell(i);
    } else {
        pool_->parallelFor(n, run_cell);
    }
    return cells;
}

SimResults
SimDriver::sweep(const std::vector<accel::AcceleratorPtr> &accs,
                 const std::vector<sim::Workload> &workloads,
                 bool include_fc,
                 const std::function<bool(size_t, size_t)> &skip) const
{
    std::vector<const accel::Accelerator *> raw;
    raw.reserve(accs.size());
    for (const auto &a : accs)
        raw.push_back(a.get());
    return sweep(raw, workloads, include_fc, skip);
}

sim::RunStats
SimDriver::runLayers(const accel::Accelerator &acc,
                     const std::vector<sim::LayerShape> &layers) const
{
    const int64_t n = (int64_t)layers.size();
    std::vector<sim::RunStats> per((size_t)n);
    auto run_one = [&](int64_t i) {
        per[(size_t)i] = acc.runLayer(layers[(size_t)i]);
    };

    if (!pool_) {
        for (int64_t i = 0; i < n; ++i)
            run_one(i);
    } else {
        pool_->parallelFor(n, run_one);
    }

    // Reduce in layer order: deterministic and equal to the serial
    // accumulation.
    sim::RunStats total;
    for (const auto &st : per)
        total += st;
    return total;
}

} // namespace runtime
} // namespace se
