/**
 * @file
 * Batched accelerator simulation.
 *
 * Every figure/table bench and example used to hand-roll the same
 * nested loop: for each accelerator, for each workload, sum runLayer()
 * over the layers. SimDriver owns that loop once, fans the
 * (accelerator, workload) cells out across a thread pool, and returns
 * the full result matrix. Accelerator::runLayer is const and
 * side-effect free, and each cell accumulates its own RunStats in
 * layer order, so parallel results are identical to serial ones.
 */

#ifndef SE_RUNTIME_SIM_DRIVER_HH
#define SE_RUNTIME_SIM_DRIVER_HH

#include <functional>
#include <memory>
#include <vector>

#include "accel/accelerator.hh"
#include "base/thread_pool.hh"
#include "runtime/options.hh"

namespace se {
namespace runtime {

/** One (accelerator, workload) cell of a sweep. */
struct SimCell
{
    sim::RunStats stats;
    bool run = false;  ///< false when the skip predicate excluded it
};

/** Result matrix of a sweep: cells[accelerator][workload]. */
using SimResults = std::vector<std::vector<SimCell>>;

class SimDriver
{
  public:
    explicit SimDriver(RuntimeOptions opts = {}) : opts_(opts)
    {
        // The pool lives as long as the driver so repeated sweeps
        // don't re-spawn workers.
        const int threads = opts_.resolvedThreads();
        if (threads > 1)
            pool_ = std::make_unique<ThreadPool>(threads);
    }

    /**
     * Run every accelerator over every workload. `skip(ai, wi)` may
     * exclude pairs (e.g. the paper's SCNN-on-EfficientNet protocol
     * hole); excluded cells come back with run == false.
     */
    SimResults
    sweep(const std::vector<const accel::Accelerator *> &accs,
          const std::vector<sim::Workload> &workloads,
          bool include_fc = true,
          const std::function<bool(size_t, size_t)> &skip = nullptr)
        const;

    /** Convenience overload for owning-pointer accelerator lists. */
    SimResults
    sweep(const std::vector<accel::AcceleratorPtr> &accs,
          const std::vector<sim::Workload> &workloads,
          bool include_fc = true,
          const std::function<bool(size_t, size_t)> &skip = nullptr)
        const;

    /**
     * Aggregate a batch of layers on one accelerator (layer order
     * preserved, so the sum equals serial runLayer accumulation).
     */
    sim::RunStats
    runLayers(const accel::Accelerator &acc,
              const std::vector<sim::LayerShape> &layers) const;

    const RuntimeOptions &options() const { return opts_; }

  private:
    RuntimeOptions opts_;
    std::unique_ptr<ThreadPool> pool_;  ///< null when <= 1 thread
};

} // namespace runtime
} // namespace se

#endif // SE_RUNTIME_SIM_DRIVER_HH
