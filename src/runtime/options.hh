/**
 * @file
 * Shared knobs of the se::runtime layer.
 */

#ifndef SE_RUNTIME_OPTIONS_HH
#define SE_RUNTIME_OPTIONS_HH

#include <cstddef>
#include <cstdlib>
#include <thread>

#include "kernels/kernels.hh"

namespace se {
namespace runtime {

/** Execution policy for the runtime drivers. */
struct RuntimeOptions
{
    /**
     * Worker threads. 0 selects the legacy serial path (no pool, no
     * task plumbing, cache bypassed — byte-for-byte the pre-runtime
     * behaviour); negative means "one per hardware core".
     */
    int threads = 0;
    /**
     * Decomposition-cache capacity in entries; 0 disables caching.
     * Repeated sweeps (ablations, design-space scans) with identical
     * (weights, options) inputs then skip the ALS loop entirely.
     * Ignored on the legacy path (threads = 0).
     */
    size_t cacheCapacity = 0;
    /**
     * Which conv/GEMM lowering the nn layers use (SE_CONV_IMPL in the
     * environment: auto | naive | gemm). Results never depend on Auto
     * vs Naive — the fast forward paths are bit-identical — so like
     * `threads` this knob only moves wall-clock. Unlike `threads`,
     * this field is NOT consumed by the pipeline/serve constructors:
     * kernel dispatch is process-wide, already initialized from
     * SE_CONV_IMPL, and a *programmatic* override takes effect only
     * through applyKernelConfig() (see bench_runtime's impl column).
     */
    kernels::ConvImpl convImpl = kernels::ConvImpl::Auto;
    /**
     * Serving admission cap (SE_SERVE_QUEUE_CAP in the environment):
     * requests beyond this many queued-but-undispatched ones are shed
     * with serve::AdmissionError. 0 = unbounded. Consumed by the
     * serve-layer drivers (bench_serve, serve_demo), which copy it
     * into serve::ServeOptions::queueCap.
     */
    size_t serveQueueCap = 0;
    /**
     * Serving flush deadline in ms (SE_SERVE_DEADLINE_MS): > 0 makes
     * the serve drivers select FlushPolicy::Deadline with this bound
     * on the oldest queued request's age. <= 0 leaves the driver's
     * default policy in place.
     */
    double serveDeadlineMs = 0.0;

    /** Install convImpl as the process-wide kernel default. */
    void
    applyKernelConfig() const
    {
        kernels::setDefaultConvImpl(convImpl);
    }

    /** The thread count after resolving the "per core" sentinel. */
    int
    resolvedThreads() const
    {
        if (threads >= 0)
            return threads;
        const unsigned hc = std::thread::hardware_concurrency();
        return hc > 0 ? (int)hc : 1;
    }

    /**
     * The convention every driver binary shares: one worker per core
     * and a warm cache, with SE_THREADS in the environment overriding
     * the thread count (0 = legacy serial path) and SE_CONV_IMPL the
     * kernel lowering. Results never depend on either value — they
     * only move wall-clock.
     */
    static RuntimeOptions
    fromEnv(size_t cache_capacity = 4096)
    {
        RuntimeOptions ro;
        ro.threads = -1;
        if (const char *t = std::getenv("SE_THREADS"))
            ro.threads = std::atoi(t);
        ro.cacheCapacity = cache_capacity;
        ro.convImpl = kernels::convImplFromEnv();
        if (const char *c = std::getenv("SE_SERVE_QUEUE_CAP"))
            ro.serveQueueCap = (size_t)std::strtoull(c, nullptr, 10);
        if (const char *d = std::getenv("SE_SERVE_DEADLINE_MS"))
            ro.serveDeadlineMs = std::atof(d);
        return ro;
    }
};

} // namespace runtime
} // namespace se

#endif // SE_RUNTIME_OPTIONS_HH
