/**
 * @file
 * Shared knobs of the se::runtime layer.
 */

#ifndef SE_RUNTIME_OPTIONS_HH
#define SE_RUNTIME_OPTIONS_HH

#include <cstddef>
#include <thread>

namespace se {
namespace runtime {

/** Execution policy for the runtime drivers. */
struct RuntimeOptions
{
    /**
     * Worker threads. 0 selects the legacy serial path (no pool, no
     * task plumbing, cache bypassed — byte-for-byte the pre-runtime
     * behaviour); negative means "one per hardware core".
     */
    int threads = 0;
    /**
     * Decomposition-cache capacity in entries; 0 disables caching.
     * Repeated sweeps (ablations, design-space scans) with identical
     * (weights, options) inputs then skip the ALS loop entirely.
     * Ignored on the legacy path (threads = 0).
     */
    size_t cacheCapacity = 0;

    /** The thread count after resolving the "per core" sentinel. */
    int
    resolvedThreads() const
    {
        if (threads >= 0)
            return threads;
        const unsigned hc = std::thread::hardware_concurrency();
        return hc > 0 ? (int)hc : 1;
    }
};

} // namespace runtime
} // namespace se

#endif // SE_RUNTIME_OPTIONS_HH
