/**
 * @file
 * Shared knobs of the se::runtime layer.
 */

#ifndef SE_RUNTIME_OPTIONS_HH
#define SE_RUNTIME_OPTIONS_HH

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "base/failpoint.hh"
#include "kernels/dispatch.hh"
#include "kernels/kernels.hh"

namespace se {
namespace runtime {

namespace detail {

/**
 * Strict env-var parsers: every SE_* knob either parses completely or
 * the run refuses to start. The old atoi/atof plumbing silently
 * mapped typos to 0 — SE_THREADS=four used to select the legacy
 * serial path instead of failing, which is the worst possible way to
 * "honor" a perf knob.
 */
inline long long
envInt(const char *name, const char *value)
{
    char *end = nullptr;
    errno = 0;
    const long long out = std::strtoll(value, &end, 10);
    if (end == value || *end != '\0' || errno == ERANGE)
        throw std::invalid_argument(std::string(name) +
                                    " must be an integer, got '" +
                                    value + "'");
    return out;
}

inline double
envDouble(const char *name, const char *value)
{
    char *end = nullptr;
    errno = 0;
    const double out = std::strtod(value, &end);
    if (end == value || *end != '\0' || errno == ERANGE ||
        !std::isfinite(out))
        throw std::invalid_argument(std::string(name) +
                                    " must be a finite number, got '" +
                                    value + "'");
    return out;
}

} // namespace detail

/**
 * Weight storage the serve drivers hand to the serve layer
 * (runtime-level mirror of serve::WeightSource — the runtime layer
 * does not link against se::serve).
 */
enum class ServeWeightSource
{
    Dense,     ///< decoded float Ce matrices (the v2-era path)
    CeDirect,  ///< packed 4-bit codes through kernels::gemmCeB
};

/** Execution policy for the runtime drivers. */
struct RuntimeOptions
{
    /**
     * Worker threads. 0 selects the legacy serial path (no pool, no
     * task plumbing, cache bypassed — byte-for-byte the pre-runtime
     * behaviour); negative means "one per hardware core".
     */
    int threads = 0;
    /**
     * Decomposition-cache capacity in entries; 0 disables caching.
     * Repeated sweeps (ablations, design-space scans) with identical
     * (weights, options) inputs then skip the ALS loop entirely.
     * Ignored on the legacy path (threads = 0).
     */
    size_t cacheCapacity = 0;
    /**
     * Which conv/GEMM lowering the nn layers use (SE_CONV_IMPL in the
     * environment: auto | naive | gemm). Results never depend on Auto
     * vs Naive — the fast forward paths are bit-identical — so like
     * `threads` this knob only moves wall-clock. Unlike `threads`,
     * this field is NOT consumed by the pipeline/serve constructors:
     * kernel dispatch is process-wide, already initialized from
     * SE_CONV_IMPL, and a *programmatic* override takes effect only
     * through applyKernelConfig() (see bench_runtime's impl column).
     */
    kernels::ConvImpl convImpl = kernels::ConvImpl::Auto;
    /**
     * Which micro-kernel ISA variant the GEMM layer runs
     * (SE_KERNEL_ISA = auto | scalar | sse2 | avx2). Empty (the
     * default) leaves the process-wide selection alone — dispatch
     * already initialized itself from SE_KERNEL_ISA at startup, so
     * this field only matters for programmatic overrides via
     * applyKernelConfig(). Every variant is bit-identical; the knob
     * moves wall-clock only. Requesting an ISA the CPU lacks throws.
     */
    std::optional<kernels::KernelIsa> kernelIsa;
    /**
     * Serving admission cap (SE_SERVE_QUEUE_CAP in the environment):
     * requests beyond this many queued-but-undispatched ones are shed
     * with serve::AdmissionError. 0 = unbounded. Consumed by the
     * serve-layer drivers (bench_serve, serve_demo), which copy it
     * into serve::ServeOptions::queueCap.
     */
    size_t serveQueueCap = 0;
    /**
     * Serving flush deadline in ms (SE_SERVE_DEADLINE_MS): > 0 makes
     * the serve drivers select FlushPolicy::Deadline with this bound
     * on the oldest queued request's age. <= 0 leaves the driver's
     * default policy in place.
     */
    double serveDeadlineMs = 0.0;
    /**
     * Which storage the serve drivers rebuild weights from
     * (SE_SERVE_WEIGHT_SOURCE = dense | ce). Responses are
     * bit-identical either way — CeDirect moves storage width and
     * rebuild wall-clock, never values.
     */
    ServeWeightSource serveWeightSource = ServeWeightSource::Dense;
    /**
     * Model-file version the drivers save bundles in
     * (SE_MODEL_FORMAT = 2 | 3 | 4). v4 is the streaming format:
     * adaptive per-column Ce bit widths, int8 basis (quantized at
     * compress time), checksummed piece directory served lazily
     * through core::StreamedModel. v3 packs Ce codes at fixed 4-bit
     * width and ships the dense residual; v2 is the legacy
     * byte-per-code records-only format.
     */
    int modelFormat = 3;
    /**
     * How the serve drivers open a v4 bundle (SE_STREAM_LOADER =
     * mmap | eager). `mmap` (default) opens lazily — O(meta) at
     * open, pieces decode on first touch. `eager` decodes and fully
     * validates everything up front. Responses are bit-identical
     * either way; only cold-start wall-clock moves. Meaningless
     * (and ignored) for v2/v3 bundles.
     */
    bool streamEager = false;
    /**
     * Pipelined streaming execution in the serve drivers
     * (SE_PIPELINE = on | off). On, engines run the stage-decoupled
     * dispatch loop (form / execute / complete overlap) and sessions
     * rebuild weights on a lane concurrent with compute. Responses
     * are bit-identical either way — the knob moves wall-clock and
     * the stage/occupancy stats, never values.
     */
    bool servePipeline = false;
    /**
     * Streaming-loader lookahead window (SE_PREFETCH_DEPTH >= 0):
     * how many pieces the v4 prefetch lane decodes ahead of every
     * touch. 0 (default) disables the lane. Decoded bits are
     * identical on every path; only decode-stall wall-clock moves.
     */
    size_t prefetchDepth = 0;
    /**
     * Spill directory of the persistent DecompCache (SE_CACHE_DIR).
     * Empty (the default) keeps the cache memory-only; set, every
     * decomposition result is also written to disk (atomic
     * temp+rename, per-entry checksum) so compression sweeps and
     * serve cold-starts survive restarts and are shared across
     * processes pointed at the same directory. Results never depend
     * on this knob — a disk hit is bit-identical to a recompute.
     */
    std::string cacheDir;
    /**
     * Failpoint arming spec (SE_FAILPOINTS = name:policy,... with
     * policies once | 1inN | afterN | pF[@seed]), strictly parsed by
     * fromEnv — a malformed spec refuses to start instead of silently
     * not injecting. Empty arms nothing. Takes effect through
     * applyFailpoints(); see base/failpoint.hh.
     */
    std::string failpoints;

    /**
     * Install convImpl (and, when set, kernelIsa) as the process-wide
     * kernel defaults.
     */
    void
    applyKernelConfig() const
    {
        kernels::setDefaultConvImpl(convImpl);
        if (kernelIsa)
            kernels::setActiveIsa(*kernelIsa);
    }

    /**
     * Arm exactly the failpoints of `failpoints` process-wide
     * (disarming anything armed before). Driver binaries call this
     * next to applyKernelConfig() so SE_FAILPOINTS reaches the
     * library's injection sites.
     */
    void
    applyFailpoints() const
    {
        failpoint::armFromSpec(failpoints);
    }

    /** The thread count after resolving the "per core" sentinel. */
    int
    resolvedThreads() const
    {
        if (threads >= 0)
            return threads;
        const unsigned hc = std::thread::hardware_concurrency();
        return hc > 0 ? (int)hc : 1;
    }

    /**
     * The convention every driver binary shares: one worker per core
     * and a warm cache, with SE_THREADS in the environment overriding
     * the thread count (0 = legacy serial path) and SE_CONV_IMPL the
     * kernel lowering. Results never depend on either value — they
     * only move wall-clock.
     *
     * Every SE_* knob is parsed strictly: a value that is not fully
     * recognized throws std::invalid_argument (SE_CONV_IMPL keeps
     * its own fatal rejection in convImplFromEnv) instead of being
     * silently coerced to a default.
     */
    static RuntimeOptions
    fromEnv(size_t cache_capacity = 4096)
    {
        RuntimeOptions ro;
        ro.threads = -1;
        if (const char *t = std::getenv("SE_THREADS")) {
            const long long v = detail::envInt("SE_THREADS", t);
            // Reject before narrowing: SE_THREADS=4294967296 must
            // not wrap to 0 and silently select the serial path.
            if (v < INT_MIN || v > INT_MAX)
                throw std::invalid_argument(
                    "SE_THREADS out of range: '" + std::string(t) +
                    "'");
            ro.threads = (int)v;
        }
        ro.cacheCapacity = cache_capacity;
        ro.convImpl = kernels::convImplFromEnv();
        // parseKernelIsa throws std::invalid_argument on anything it
        // does not recognize, matching the other knobs' strictness.
        if (const char *isa = std::getenv("SE_KERNEL_ISA"))
            ro.kernelIsa = kernels::parseKernelIsa(isa);
        if (const char *c = std::getenv("SE_SERVE_QUEUE_CAP")) {
            const long long cap =
                detail::envInt("SE_SERVE_QUEUE_CAP", c);
            if (cap < 0)
                throw std::invalid_argument(
                    "SE_SERVE_QUEUE_CAP must be >= 0, got '" +
                    std::string(c) + "'");
            ro.serveQueueCap = (size_t)cap;
        }
        if (const char *d = std::getenv("SE_SERVE_DEADLINE_MS"))
            ro.serveDeadlineMs =
                detail::envDouble("SE_SERVE_DEADLINE_MS", d);
        if (const char *w = std::getenv("SE_SERVE_WEIGHT_SOURCE")) {
            if (!std::strcmp(w, "dense"))
                ro.serveWeightSource = ServeWeightSource::Dense;
            else if (!std::strcmp(w, "ce") ||
                     !std::strcmp(w, "cedirect"))
                ro.serveWeightSource = ServeWeightSource::CeDirect;
            else
                throw std::invalid_argument(
                    "SE_SERVE_WEIGHT_SOURCE must be dense|ce, got '" +
                    std::string(w) + "'");
        }
        if (const char *f = std::getenv("SE_MODEL_FORMAT")) {
            const long long v = detail::envInt("SE_MODEL_FORMAT", f);
            if (v != 2 && v != 3 && v != 4)
                throw std::invalid_argument(
                    "SE_MODEL_FORMAT must be 2, 3 or 4, got '" +
                    std::string(f) + "'");
            ro.modelFormat = (int)v;
        }
        if (const char *s = std::getenv("SE_STREAM_LOADER")) {
            if (!std::strcmp(s, "mmap"))
                ro.streamEager = false;
            else if (!std::strcmp(s, "eager"))
                ro.streamEager = true;
            else
                throw std::invalid_argument(
                    "SE_STREAM_LOADER must be mmap|eager, got '" +
                    std::string(s) + "'");
        }
        if (const char *p = std::getenv("SE_PIPELINE")) {
            if (!std::strcmp(p, "on"))
                ro.servePipeline = true;
            else if (!std::strcmp(p, "off"))
                ro.servePipeline = false;
            else
                throw std::invalid_argument(
                    "SE_PIPELINE must be on|off, got '" +
                    std::string(p) + "'");
        }
        if (const char *d = std::getenv("SE_PREFETCH_DEPTH")) {
            const long long v =
                detail::envInt("SE_PREFETCH_DEPTH", d);
            if (v < 0)
                throw std::invalid_argument(
                    "SE_PREFETCH_DEPTH must be >= 0, got '" +
                    std::string(d) + "'");
            ro.prefetchDepth = (size_t)v;
        }
        if (const char *d = std::getenv("SE_CACHE_DIR")) {
            if (*d == '\0')
                throw std::invalid_argument(
                    "SE_CACHE_DIR must name a directory (unset it "
                    "to disable the persistent cache)");
            ro.cacheDir = d;
        }
        if (const char *fp = std::getenv("SE_FAILPOINTS")) {
            // Validate the whole spec now — a typo'd policy must
            // refuse the run, not silently skip injection.
            failpoint::parseSpec(fp);
            ro.failpoints = fp;
        }
        return ro;
    }
};

} // namespace runtime
} // namespace se

#endif // SE_RUNTIME_OPTIONS_HH
