/**
 * @file
 * Deterministic synthetic datasets standing in for CIFAR-10 / ImageNet /
 * MNIST / CamVid (none of which are available offline).
 *
 * Classification sets draw images as class prototype + structured noise:
 * each class owns a smooth random prototype so that a small CNN can
 * reach high accuracy with a few epochs while an untrained or damaged
 * network cannot — exactly the sensitivity the compression experiments
 * need. Segmentation sets place geometric objects on a textured
 * background with per-pixel labels.
 */

#ifndef SE_DATA_SYNTHETIC_HH
#define SE_DATA_SYNTHETIC_HH

#include <vector>

#include "base/random.hh"
#include "tensor/tensor.hh"

namespace se {
namespace data {

/** A batched classification dataset. */
struct ClassificationSet
{
    std::vector<Tensor> batches;               ///< each (N, C, H, W)
    std::vector<std::vector<int>> labels;      ///< per-batch labels
    int numClasses = 0;
};

/** Configuration for the synthetic classification generator. */
struct ClassSetConfig
{
    int numClasses = 10;
    int64_t channels = 3;
    int64_t height = 16;
    int64_t width = 16;
    int batchSize = 16;
    int trainBatches = 24;
    int testBatches = 8;
    float noise = 0.45f;     ///< per-pixel noise stddev
    uint64_t seed = 1234;
};

/** Train/test split of a synthetic classification task. */
struct ClassificationTask
{
    ClassificationSet train;
    ClassificationSet test;
};

/** Build a classification task from prototypes + noise. */
ClassificationTask makeClassification(const ClassSetConfig &cfg);

/** A batched segmentation dataset (labels are HxW class-index maps). */
struct SegmentationSet
{
    std::vector<Tensor> images;  ///< each (N, C, H, W)
    std::vector<Tensor> labels;  ///< each (N, H, W) of class indices
    int numClasses = 0;
};

/** Configuration for the synthetic segmentation generator. */
struct SegSetConfig
{
    int numClasses = 4;          ///< background + 3 object classes
    int64_t channels = 3;
    int64_t height = 24;
    int64_t width = 24;
    int batchSize = 8;
    int trainBatches = 16;
    int testBatches = 6;
    float noise = 0.25f;
    uint64_t seed = 4321;
};

struct SegmentationTask
{
    SegmentationSet train;
    SegmentationSet test;
};

/** Build a CamVid-like segmentation task with geometric objects. */
SegmentationTask makeSegmentation(const SegSetConfig &cfg);

} // namespace data
} // namespace se

#endif // SE_DATA_SYNTHETIC_HH
