#include "data/synthetic.hh"

#include <algorithm>
#include <cmath>

namespace se {
namespace data {

namespace {

/**
 * Smooth a tensor with a separable 3-tap [1 2 1]/4 filter a few times so
 * class prototypes carry low-frequency structure (CNN-learnable).
 */
void
smooth(Tensor &t, int passes)
{
    const int64_t c = t.dim(0), h = t.dim(1), w = t.dim(2);
    for (int p = 0; p < passes; ++p) {
        Tensor tmp = t;
        for (int64_t cc = 0; cc < c; ++cc)
            for (int64_t i = 0; i < h; ++i)
                for (int64_t j = 0; j < w; ++j) {
                    double s = 2.0 * tmp.at(cc, i, j);
                    s += tmp.at(cc, std::max<int64_t>(i - 1, 0), j);
                    s += tmp.at(cc, std::min<int64_t>(i + 1, h - 1), j);
                    t.at(cc, i, j) = (float)(s / 4.0);
                }
        tmp = t;
        for (int64_t cc = 0; cc < c; ++cc)
            for (int64_t i = 0; i < h; ++i)
                for (int64_t j = 0; j < w; ++j) {
                    double s = 2.0 * tmp.at(cc, i, j);
                    s += tmp.at(cc, i, std::max<int64_t>(j - 1, 0));
                    s += tmp.at(cc, i, std::min<int64_t>(j + 1, w - 1));
                    t.at(cc, i, j) = (float)(s / 4.0);
                }
    }
}

ClassificationSet
fillSet(const ClassSetConfig &cfg, const std::vector<Tensor> &protos,
        int batches, Rng &rng)
{
    ClassificationSet set;
    set.numClasses = cfg.numClasses;
    for (int b = 0; b < batches; ++b) {
        Tensor batch({cfg.batchSize, cfg.channels, cfg.height,
                      cfg.width});
        std::vector<int> labels((size_t)cfg.batchSize);
        for (int i = 0; i < cfg.batchSize; ++i) {
            const int cls = (int)rng.integer(0, cfg.numClasses - 1);
            labels[(size_t)i] = cls;
            const Tensor &p = protos[(size_t)cls];
            for (int64_t cc = 0; cc < cfg.channels; ++cc)
                for (int64_t y = 0; y < cfg.height; ++y)
                    for (int64_t x = 0; x < cfg.width; ++x)
                        batch.at(i, cc, y, x) =
                            p.at(cc, y, x) +
                            rng.gaussian(0.0f, cfg.noise);
        }
        set.batches.push_back(std::move(batch));
        set.labels.push_back(std::move(labels));
    }
    return set;
}

} // namespace

ClassificationTask
makeClassification(const ClassSetConfig &cfg)
{
    Rng rng(cfg.seed);
    std::vector<Tensor> protos;
    for (int k = 0; k < cfg.numClasses; ++k) {
        Tensor p = randn({cfg.channels, cfg.height, cfg.width}, rng,
                         0.0f, 1.0f);
        smooth(p, 2);
        // Re-normalize so prototypes stay separable after smoothing.
        double norm = 0.0;
        for (int64_t i = 0; i < p.size(); ++i)
            norm += (double)p[i] * p[i];
        const float scale =
            (float)(1.0 / std::sqrt(norm / (double)p.size() + 1e-12));
        for (int64_t i = 0; i < p.size(); ++i)
            p[i] *= scale;
        protos.push_back(std::move(p));
    }

    ClassificationTask task;
    task.train = fillSet(cfg, protos, cfg.trainBatches, rng);
    task.test = fillSet(cfg, protos, cfg.testBatches, rng);
    return task;
}

SegmentationTask
makeSegmentation(const SegSetConfig &cfg)
{
    Rng rng(cfg.seed);
    auto fill = [&](int batches) {
        SegmentationSet set;
        set.numClasses = cfg.numClasses;
        for (int b = 0; b < batches; ++b) {
            Tensor img({cfg.batchSize, cfg.channels, cfg.height,
                        cfg.width});
            Tensor lbl({cfg.batchSize, cfg.height, cfg.width});
            for (int i = 0; i < cfg.batchSize; ++i) {
                // Textured background = class 0.
                for (int64_t cc = 0; cc < cfg.channels; ++cc)
                    for (int64_t y = 0; y < cfg.height; ++y)
                        for (int64_t x = 0; x < cfg.width; ++x)
                            img.at(i, cc, y, x) =
                                rng.gaussian(0.0f, cfg.noise);
                // Drop 2 objects of random non-background classes.
                for (int obj = 0; obj < 2; ++obj) {
                    const int cls =
                        (int)rng.integer(1, cfg.numClasses - 1);
                    const int64_t oh = rng.integer(4, cfg.height / 2);
                    const int64_t ow = rng.integer(4, cfg.width / 2);
                    const int64_t oy =
                        rng.integer(0, cfg.height - oh - 1);
                    const int64_t ox =
                        rng.integer(0, cfg.width - ow - 1);
                    // Each class has a distinctive per-channel tint.
                    for (int64_t y = oy; y < oy + oh; ++y)
                        for (int64_t x = ox; x < ox + ow; ++x) {
                            lbl.at(i, y, x) = (float)cls;
                            for (int64_t cc = 0; cc < cfg.channels;
                                 ++cc) {
                                const float tint =
                                    ((cls + (int)cc) % cfg.numClasses) *
                                        (2.0f / cfg.numClasses) -
                                    1.0f;
                                img.at(i, cc, y, x) =
                                    tint +
                                    rng.gaussian(0.0f, cfg.noise / 2);
                            }
                        }
                }
            }
            set.images.push_back(std::move(img));
            set.labels.push_back(std::move(lbl));
        }
        return set;
    };

    SegmentationTask task;
    task.train = fill(cfg.trainBatches);
    task.test = fill(cfg.testBatches);
    return task;
}

} // namespace data
} // namespace se
