#include "quant/quant.hh"

#include <algorithm>
#include <cmath>

#include "base/bitutils.hh"

namespace se {
namespace quant {

float
Pow2Alphabet::project(float x) const
{
    if (x == 0.0f)
        return 0.0f;
    int p = nearestPow2Exp(x);
    p = std::clamp(p, expMin(), expMax);
    float mag = std::ldexp(1.0f, p);
    // Values whose magnitude is closer to zero than to the smallest
    // representable power collapse to zero.
    float smallest = std::ldexp(1.0f, expMin());
    if (std::abs(x) < smallest * 0.5f)
        return 0.0f;
    return x > 0 ? mag : -mag;
}

bool
Pow2Alphabet::contains(float x) const
{
    if (x == 0.0f)
        return true;
    float ax = std::abs(x);
    int p;
    float frac = std::frexp(ax, &p);   // ax = frac * 2^p, frac in [0.5,1)
    if (frac != 0.5f)
        return false;
    int exponent = p - 1;
    return exponent >= expMin() && exponent <= expMax;
}

Pow2Alphabet
choosePow2Alphabet(const Tensor &t, int bits)
{
    SE_ASSERT(bits >= 2, "need at least sign + 1 exponent bit");
    float max_abs = 0.0f;
    for (int64_t i = 0; i < t.size(); ++i)
        max_abs = std::max(max_abs, std::abs(t[i]));

    Pow2Alphabet a;
    // bits-1 exponent codes, one reserved for zero.
    a.numLevels = (1 << (bits - 1)) - 1;
    a.expMax = max_abs > 0 ? nearestPow2Exp(max_abs) : 0;
    return a;
}

Tensor
projectPow2(const Tensor &t, const Pow2Alphabet &alpha)
{
    Tensor out = t;
    for (int64_t i = 0; i < out.size(); ++i)
        out[i] = alpha.project(out[i]);
    return out;
}

double
pow2Distance(const Tensor &t, const Pow2Alphabet &alpha)
{
    double d = 0.0;
    for (int64_t i = 0; i < t.size(); ++i)
        d += std::abs((double)t[i] - alpha.project(t[i]));
    return d;
}

FixedPointQuantizer
FixedPointQuantizer::calibrate(const Tensor &t, int bits)
{
    float max_abs = 0.0f;
    for (int64_t i = 0; i < t.size(); ++i)
        max_abs = std::max(max_abs, std::abs(t[i]));
    FixedPointQuantizer q;
    q.bits = bits;
    const int32_t qmax = (1 << (bits - 1)) - 1;
    q.scale = max_abs > 0 ? max_abs / (float)qmax : 1.0f;
    return q;
}

int32_t
FixedPointQuantizer::toInt(float x) const
{
    const int32_t qmax = (1 << (bits - 1)) - 1;
    const int32_t qmin = -qmax;
    int32_t q = (int32_t)std::lround(x / scale);
    return std::clamp(q, qmin, qmax);
}

Tensor
FixedPointQuantizer::fakeQuantize(const Tensor &t) const
{
    Tensor out = t;
    for (int64_t i = 0; i < out.size(); ++i)
        out[i] = toFloat(toInt(out[i]));
    return out;
}

std::vector<int>
boothDigits(int32_t value, int bits)
{
    // Radix-4 Booth: examine overlapping triplets (b_{2i+1}, b_{2i},
    // b_{2i-1}) of the two's-complement representation with b_{-1}=0.
    const int ndigits = (bits + 1) / 2;
    std::vector<int> digits((size_t)ndigits, 0);
    uint32_t u = (uint32_t)value & ((bits >= 32) ? ~0u
                                                 : ((1u << bits) - 1));
    auto bit = [&](int i) -> int {
        if (i < 0)
            return 0;
        if (i >= bits)  // sign extension
            return (int)((u >> (bits - 1)) & 1);
        return (int)((u >> i) & 1);
    };
    static const int lut[8] = {0, 1, 1, 2, -2, -1, -1, 0};
    for (int d = 0; d < ndigits; ++d) {
        int code = (bit(2 * d + 1) << 2) | (bit(2 * d) << 1) |
                   bit(2 * d - 1);
        digits[(size_t)d] = lut[code];
    }
    return digits;
}

int
boothNonzeroDigits(int32_t value, int bits)
{
    int n = 0;
    for (int d : boothDigits(value, bits))
        n += d != 0;
    return n;
}

int
essentialBits(int32_t value, int bits)
{
    uint32_t mag = (uint32_t)std::abs((int64_t)value);
    mag &= (bits >= 32) ? ~0u : ((1u << bits) - 1);
    return popcount(mag);
}

BitSparsityStats
measureBitSparsity(const Tensor &t, int bits)
{
    auto q = FixedPointQuantizer::calibrate(t, bits);
    const int ndigits = (bits + 1) / 2;
    int64_t total = t.size();
    int64_t zero_values = 0;
    int64_t plain_nonzero_bits = 0, booth_nonzero_digits = 0;

    for (int64_t i = 0; i < total; ++i) {
        int32_t v = q.toInt(t[i]);
        if (v == 0)
            ++zero_values;
        plain_nonzero_bits += essentialBits(v, bits);
        booth_nonzero_digits += boothNonzeroDigits(v, bits);
    }

    BitSparsityStats s;
    if (total == 0)
        return s;
    s.valueSparsity = (double)zero_values / (double)total;
    s.plainBitSparsity =
        1.0 - (double)plain_nonzero_bits / (double)(total * bits);
    s.boothBitSparsity =
        1.0 - (double)booth_nonzero_digits / (double)(total * ndigits);
    s.avgEssentialBits = (double)plain_nonzero_bits / (double)total;
    s.avgBoothDigits = (double)booth_nonzero_digits / (double)total;
    return s;
}

} // namespace quant
} // namespace se
