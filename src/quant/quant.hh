/**
 * @file
 * Quantization primitives:
 *  - power-of-2 projection onto Omega_P = {0, +-2^p | p in P} used by the
 *    SmartExchange coefficient matrix,
 *  - symmetric linear fixed-point quantization used for activations
 *    (8-bit) and basis matrices (8-bit),
 *  - radix-4 Booth encoding and bit-level sparsity statistics used by
 *    the bit-serial datapath models (Fig. 4, Bit-pragmatic baseline).
 */

#ifndef SE_QUANT_QUANT_HH
#define SE_QUANT_QUANT_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace se {
namespace quant {

/**
 * The power-of-2 alphabet Omega_P: exponents span
 * [expMax - numLevels + 1, expMax]. With 4-bit coefficients the paper
 * uses 1 sign bit + 3 exponent bits => numLevels = 7 plus the zero code.
 */
struct Pow2Alphabet
{
    int expMax = 0;      ///< Largest exponent p in P.
    int numLevels = 7;   ///< |P|: number of representable exponents.

    int expMin() const { return expMax - numLevels + 1; }

    /** Project one value onto {0, +-2^p}: nearest in linear distance. */
    float project(float x) const;

    /** True when x is exactly representable (0 or +-2^p, p in P). */
    bool contains(float x) const;
};

/**
 * Value of one non-zero Omega_P exponent code (1..numLevels): the
 * single decode rule the model-file loaders and kernels::gemmCeB must
 * share bit for bit — powers of two are exact floats, so every
 * consumer that funnels through here reconstructs identical values.
 * Callers validate the code range and handle the zero / sign-on-zero
 * encodings under their own error policy.
 */
inline float
pow2CodeValue(int exp_min, int code, bool negative)
{
    const float mag = std::ldexp(1.0f, exp_min + code - 1);
    return negative ? -mag : mag;
}

/**
 * Choose the alphabet for a matrix: expMax from the largest magnitude,
 * numLevels from the coefficient bit budget (bits-1 sign, rest exponent
 * codes; one exponent code is reserved for zero).
 */
Pow2Alphabet choosePow2Alphabet(const Tensor &t, int bits = 4);

/** Project every element of t onto the alphabet (returns a copy). */
Tensor projectPow2(const Tensor &t, const Pow2Alphabet &alpha);

/** Sum |t - projectPow2(t)| distance, the delta(Ce) of Algorithm 1. */
double pow2Distance(const Tensor &t, const Pow2Alphabet &alpha);

/**
 * Symmetric linear quantizer mapping floats to signed integers of a
 * given bit width with a per-tensor scale.
 */
struct FixedPointQuantizer
{
    int bits = 8;
    float scale = 1.0f;  ///< Real value represented by one LSB.

    /** Calibrate the scale from the max |x| of a tensor. */
    static FixedPointQuantizer calibrate(const Tensor &t, int bits = 8);

    int32_t toInt(float x) const;
    float toFloat(int32_t q) const { return (float)q * scale; }

    /** Quantize-dequantize a whole tensor (fake quantization). */
    Tensor fakeQuantize(const Tensor &t) const;
};

/**
 * Radix-4 Booth encoding of a two's-complement integer.
 *
 * An n-bit value yields ceil(n/2) digits, each in {-2,-1,0,+1,+2}. The
 * number of non-zero digits is the work a Booth bit-serial multiplier
 * performs, and zero digits are the "bit-level sparsity" the paper's
 * Fig. 4 reports under Booth encoding.
 */
std::vector<int> boothDigits(int32_t value, int bits);

/** Count of non-zero Booth digits (essential digits). */
int boothNonzeroDigits(int32_t value, int bits);

/** Count of set bits in the magnitude (essential bits, no Booth). */
int essentialBits(int32_t value, int bits);

/** Aggregate bit-level sparsity statistics over a tensor. */
struct BitSparsityStats
{
    double plainBitSparsity = 0.0;  ///< zero bits / total bits (no Booth)
    double boothBitSparsity = 0.0;  ///< zero digits / total digits
    double valueSparsity = 0.0;     ///< zero values / total values
    double avgEssentialBits = 0.0;  ///< mean nonzero bits per value
    double avgBoothDigits = 0.0;    ///< mean nonzero Booth digits
};

/**
 * Quantize t to `bits` and measure bit-level sparsity with and without
 * 4-bit (radix-4) Booth encoding, reproducing the Fig. 4 metric.
 */
BitSparsityStats measureBitSparsity(const Tensor &t, int bits = 8);

} // namespace quant
} // namespace se

#endif // SE_QUANT_QUANT_HH
