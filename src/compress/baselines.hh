/**
 * @file
 * Algorithm-level baselines the paper compares against in Fig. 8:
 * structured pruning (Network-Slimming-style BN-gamma channel pruning,
 * ThiNet-style filter pruning) and quantization (DoReFa-style k-bit,
 * S8/FP8-style 8-bit, power-of-2-alone). Each mutates a trained network
 * in place and reports the resulting storage so accuracy-vs-model-size
 * trade-off curves can be traced.
 */

#ifndef SE_COMPRESS_BASELINES_HH
#define SE_COMPRESS_BASELINES_HH

#include <string>

#include "nn/blocks.hh"

namespace se {
namespace compress {

/** Storage outcome of one baseline application. */
struct BaselineReport
{
    std::string technique;
    int64_t originalBits = 0;  ///< FP32 storage
    int64_t storedBits = 0;    ///< after the technique
    double sparsity = 0.0;     ///< zero / total weights

    double
    compressionRate() const
    {
        return storedBits > 0
                   ? (double)originalBits / (double)storedBits : 0.0;
    }
};

/**
 * Network-Slimming-style channel pruning: rank all BN gammas globally,
 * zero the lowest `ratio` fraction together with the producing conv
 * filters. Pruned channels are not stored (32-bit dense for the rest).
 */
BaselineReport pruneChannelsBnGamma(nn::Sequential &net, double ratio);

/**
 * ThiNet-style filter pruning: per conv layer, zero the `ratio`
 * fraction of filters with the smallest L1 norm.
 */
BaselineReport pruneFiltersL1(nn::Sequential &net, double ratio);

/**
 * DoReFa-style uniform k-bit weight quantization (fake-quantized in
 * place; storage counted at k bits per weight).
 */
BaselineReport quantizeKBit(nn::Sequential &net, int bits);

/**
 * Power-of-2-alone quantization [40]: every weight rounds to the
 * nearest +-2^p from a `bits`-wide alphabet (no decomposition, no
 * sparsity).
 */
BaselineReport quantizePow2(nn::Sequential &net, int bits);

/**
 * Deep-Compression-style weight clustering [15]/[48]: 1-D k-means
 * over each layer's weights; every weight snaps to its centroid and
 * is stored as a log2(k)-bit code plus a per-layer FP32 codebook.
 */
BaselineReport clusterKMeans(nn::Sequential &net, int clusters,
                             int iterations = 15);

} // namespace compress
} // namespace se

#endif // SE_COMPRESS_BASELINES_HH
