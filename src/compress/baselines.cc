#include "compress/baselines.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "quant/quant.hh"

namespace se {
namespace compress {

namespace {

/** Collect all weight-bearing leaves. */
struct WeightLayers
{
    std::vector<nn::Conv2d *> convs;
    std::vector<nn::BatchNorm2d *> bns;
    std::vector<nn::Linear *> linears;
    /** bn[i] follows conv[i] when bnAfterConv[i] is set. */
    std::vector<int> bnAfterConv;
};

WeightLayers
collect(nn::Sequential &net)
{
    WeightLayers out;
    std::vector<nn::Layer *> leaves;
    net.visit([&](nn::Layer &l) { leaves.push_back(&l); });
    for (size_t i = 0; i < leaves.size(); ++i) {
        if (auto *c = dynamic_cast<nn::Conv2d *>(leaves[i])) {
            out.convs.push_back(c);
            auto *bn = (i + 1 < leaves.size())
                ? dynamic_cast<nn::BatchNorm2d *>(leaves[i + 1])
                : nullptr;
            out.bns.push_back(bn);
            out.bnAfterConv.push_back(bn != nullptr);
        } else if (auto *l = dynamic_cast<nn::Linear *>(leaves[i])) {
            out.linears.push_back(l);
        }
    }
    return out;
}

int64_t
totalWeights(const WeightLayers &wl)
{
    int64_t t = 0;
    for (auto *c : wl.convs)
        t += c->weightTensor().size();
    for (auto *l : wl.linears)
        t += l->weightTensor().size();
    return t;
}

int64_t
countZeros(const WeightLayers &wl)
{
    int64_t z = 0;
    for (auto *c : wl.convs)
        for (int64_t i = 0; i < c->weightTensor().size(); ++i)
            z += c->weightTensor()[i] == 0.0f;
    for (auto *l : wl.linears)
        for (int64_t i = 0; i < l->weightTensor().size(); ++i)
            z += l->weightTensor()[i] == 0.0f;
    return z;
}

} // namespace

BaselineReport
pruneChannelsBnGamma(nn::Sequential &net, double ratio)
{
    auto wl = collect(net);
    BaselineReport rep;
    rep.technique = "NetworkSlimming";
    rep.originalBits = totalWeights(wl) * 32;

    // Global gamma ranking across all BNs that follow a conv; prune
    // exactly the bottom `ratio` fraction of channels (ties broken by
    // position, as the original implementation's percentile threshold
    // effectively does).
    struct Entry
    {
        float mag;
        size_t conv;
        int64_t channel;
    };
    std::vector<Entry> entries;
    for (size_t i = 0; i < wl.convs.size(); ++i)
        if (wl.bns[i])
            for (int64_t c = 0; c < wl.bns[i]->gammaTensor().size();
                 ++c)
                entries.push_back(
                    {std::abs(wl.bns[i]->gammaTensor()[c]), i, c});
    if (entries.empty()) {
        rep.storedBits = rep.originalBits;
        return rep;
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry &a, const Entry &b) {
                         return a.mag < b.mag;
                     });
    const size_t kill = (size_t)((double)entries.size() * ratio);
    for (size_t k = 0; k < kill; ++k) {
        const Entry &e = entries[k];
        wl.bns[e.conv]->gammaTensor()[e.channel] = 0.0f;
        wl.bns[e.conv]->betaTensor()[e.channel] = 0.0f;
        Tensor &w = wl.convs[e.conv]->weightTensor();
        const int64_t per_filter = w.size() / w.dim(0);
        for (int64_t j = 0; j < per_filter; ++j)
            w[e.channel * per_filter + j] = 0.0f;
    }
    const int64_t zeros = countZeros(wl);
    const int64_t total = totalWeights(wl);
    rep.sparsity = (double)zeros / (double)total;
    // Channel pruning is structured: pruned filters simply vanish from
    // storage; survivors stay FP32.
    rep.storedBits = (total - zeros) * 32;
    return rep;
}

BaselineReport
pruneFiltersL1(nn::Sequential &net, double ratio)
{
    auto wl = collect(net);
    BaselineReport rep;
    rep.technique = "ThiNet";
    rep.originalBits = totalWeights(wl) * 32;

    for (auto *conv : wl.convs) {
        Tensor &w = conv->weightTensor();
        const int64_t m = w.dim(0);
        const int64_t per_filter = w.size() / m;
        std::vector<std::pair<double, int64_t>> norms;
        for (int64_t f = 0; f < m; ++f) {
            double l1 = 0.0;
            for (int64_t k = 0; k < per_filter; ++k)
                l1 += std::abs(w[f * per_filter + k]);
            norms.emplace_back(l1, f);
        }
        std::sort(norms.begin(), norms.end());
        const int64_t kill = (int64_t)((double)m * ratio);
        for (int64_t i = 0; i < kill; ++i) {
            const int64_t f = norms[(size_t)i].second;
            for (int64_t k = 0; k < per_filter; ++k)
                w[f * per_filter + k] = 0.0f;
        }
    }
    const int64_t zeros = countZeros(wl);
    const int64_t total = totalWeights(wl);
    rep.sparsity = (double)zeros / (double)total;
    rep.storedBits = (total - zeros) * 32;
    return rep;
}

BaselineReport
quantizeKBit(nn::Sequential &net, int bits)
{
    auto wl = collect(net);
    BaselineReport rep;
    rep.technique = "DoReFa-" + std::to_string(bits) + "b";
    const int64_t total = totalWeights(wl);
    rep.originalBits = total * 32;

    auto fake = [&](Tensor &w) {
        auto q = quant::FixedPointQuantizer::calibrate(w, bits);
        w = q.fakeQuantize(w);
    };
    for (auto *c : wl.convs)
        fake(c->weightTensor());
    for (auto *l : wl.linears)
        fake(l->weightTensor());

    rep.sparsity = (double)countZeros(wl) / (double)total;
    rep.storedBits = total * bits;
    return rep;
}

BaselineReport
quantizePow2(nn::Sequential &net, int bits)
{
    auto wl = collect(net);
    BaselineReport rep;
    rep.technique = "Pow2-" + std::to_string(bits) + "b";
    const int64_t total = totalWeights(wl);
    rep.originalBits = total * 32;

    auto fake = [&](Tensor &w) {
        auto alpha = quant::choosePow2Alphabet(w, bits);
        w = quant::projectPow2(w, alpha);
    };
    for (auto *c : wl.convs)
        fake(c->weightTensor());
    for (auto *l : wl.linears)
        fake(l->weightTensor());

    rep.sparsity = (double)countZeros(wl) / (double)total;
    rep.storedBits = total * bits;
    return rep;
}

namespace {

/** Lloyd's 1-D k-means over a weight tensor; snaps in place. */
void
kmeansSnap(Tensor &w, int clusters, int iterations)
{
    if (w.size() == 0)
        return;
    float lo = w[0], hi = w[0];
    for (int64_t i = 0; i < w.size(); ++i) {
        lo = std::min(lo, w[i]);
        hi = std::max(hi, w[i]);
    }
    std::vector<double> centroid((size_t)clusters);
    for (int c = 0; c < clusters; ++c)
        centroid[(size_t)c] =
            lo + (hi - lo) * (c + 0.5) / clusters;

    std::vector<int> assign((size_t)w.size(), 0);
    for (int it = 0; it < iterations; ++it) {
        // Assignment step.
        for (int64_t i = 0; i < w.size(); ++i) {
            int best = 0;
            double best_d = 1e30;
            for (int c = 0; c < clusters; ++c) {
                const double d =
                    std::abs((double)w[i] - centroid[(size_t)c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            assign[(size_t)i] = best;
        }
        // Update step.
        std::vector<double> sum((size_t)clusters, 0.0);
        std::vector<int64_t> cnt((size_t)clusters, 0);
        for (int64_t i = 0; i < w.size(); ++i) {
            sum[(size_t)assign[(size_t)i]] += w[i];
            ++cnt[(size_t)assign[(size_t)i]];
        }
        for (int c = 0; c < clusters; ++c)
            if (cnt[(size_t)c] > 0)
                centroid[(size_t)c] =
                    sum[(size_t)c] / (double)cnt[(size_t)c];
    }
    for (int64_t i = 0; i < w.size(); ++i)
        w[i] = (float)centroid[(size_t)assign[(size_t)i]];
}

} // namespace

BaselineReport
clusterKMeans(nn::Sequential &net, int clusters, int iterations)
{
    auto wl = collect(net);
    BaselineReport rep;
    rep.technique = "KMeans-" + std::to_string(clusters);
    const int64_t total = totalWeights(wl);
    rep.originalBits = total * 32;

    int code_bits = 1;
    while ((1 << code_bits) < clusters)
        ++code_bits;

    int64_t codebooks = 0;
    for (auto *c : wl.convs) {
        kmeansSnap(c->weightTensor(), clusters, iterations);
        ++codebooks;
    }
    for (auto *l : wl.linears) {
        kmeansSnap(l->weightTensor(), clusters, iterations);
        ++codebooks;
    }

    rep.sparsity = (double)countZeros(wl) / (double)total;
    rep.storedBits = total * code_bits + codebooks * clusters * 32;
    return rep;
}

} // namespace compress
} // namespace se
