#include "linalg/linalg.hh"

#include <cmath>

#include "kernels/gemm.hh"
#include "kernels/kernels.hh"

namespace se {
namespace linalg {

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    SE_ASSERT(a.ndim() == 2 && b.ndim() == 2, "matmul needs 2-D inputs");
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    SE_ASSERT(b.dim(0) == k, "matmul inner dim mismatch: ", k, " vs ",
              b.dim(0));
    // The blocked kernel reproduces this loop's rounding sequence
    // (ascending-k float chain per element, zero rows of A skipped)
    // exactly; SE_CONV_IMPL=naive keeps the legacy loop selectable
    // for differential tests.
    if (kernels::useBitIdenticalFastPath(kernels::defaultConvImpl()))
        return kernels::gemm(a, b);
    Tensor c({m, n});
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t p = 0; p < k; ++p) {
            const float av = a.at(i, p);
            if (av == 0.0f)
                continue;
            for (int64_t j = 0; j < n; ++j)
                c.at(i, j) += av * b.at(p, j);
        }
    }
    return c;
}

Tensor
transpose(const Tensor &a)
{
    SE_ASSERT(a.ndim() == 2, "transpose needs a 2-D input");
    Tensor t({a.dim(1), a.dim(0)});
    for (int64_t i = 0; i < a.dim(0); ++i)
        for (int64_t j = 0; j < a.dim(1); ++j)
            t.at(j, i) = a.at(i, j);
    return t;
}

double
frobNorm(const Tensor &a)
{
    double s = 0.0;
    for (int64_t i = 0; i < a.size(); ++i)
        s += (double)a[i] * a[i];
    return std::sqrt(s);
}

double
frobDiff(const Tensor &a, const Tensor &b)
{
    SE_ASSERT(a.size() == b.size(), "frobDiff size mismatch");
    double s = 0.0;
    for (int64_t i = 0; i < a.size(); ++i) {
        double d = (double)a[i] - b[i];
        s += d * d;
    }
    return std::sqrt(s);
}

Tensor
choleskySolve(Tensor a, Tensor b)
{
    SE_ASSERT(a.ndim() == 2 && a.dim(0) == a.dim(1),
              "choleskySolve needs a square A");
    const int64_t n = a.dim(0), m = b.dim(1);
    SE_ASSERT(b.dim(0) == n, "choleskySolve RHS row mismatch");

    // In-place lower-triangular Cholesky: A = L L^T.
    for (int64_t j = 0; j < n; ++j) {
        double d = a.at(j, j);
        for (int64_t k = 0; k < j; ++k)
            d -= (double)a.at(j, k) * a.at(j, k);
        SE_ASSERT(d > 0.0, "matrix not positive definite (d=", d, ")");
        const double ljj = std::sqrt(d);
        a.at(j, j) = (float)ljj;
        for (int64_t i = j + 1; i < n; ++i) {
            double s = a.at(i, j);
            for (int64_t k = 0; k < j; ++k)
                s -= (double)a.at(i, k) * a.at(j, k);
            a.at(i, j) = (float)(s / ljj);
        }
    }

    // Forward substitution L Y = B, then backward L^T X = Y, per column.
    Tensor x = b;
    for (int64_t c = 0; c < m; ++c) {
        for (int64_t i = 0; i < n; ++i) {
            double s = x.at(i, c);
            for (int64_t k = 0; k < i; ++k)
                s -= (double)a.at(i, k) * x.at(k, c);
            x.at(i, c) = (float)(s / a.at(i, i));
        }
        for (int64_t i = n - 1; i >= 0; --i) {
            double s = x.at(i, c);
            for (int64_t k = i + 1; k < n; ++k)
                s -= (double)a.at(k, i) * x.at(k, c);
            x.at(i, c) = (float)(s / a.at(i, i));
        }
    }
    return x;
}

namespace {

/**
 * Add a ridge scaled to the Gram matrix magnitude so rank-deficient
 * systems (fully-pruned coefficient columns, duplicated power-of-2
 * columns) stay numerically positive definite.
 */
void
addAdaptiveRidge(Tensor &gram, double ridge)
{
    float max_diag = 0.0f;
    for (int64_t i = 0; i < gram.dim(0); ++i)
        max_diag = std::max(max_diag, gram.at(i, i));
    // The 1e-5 * max_diag term dominates float32 round-off in the
    // Gram accumulation, keeping the factorization positive definite
    // even for rank-deficient (heavily pruned) coefficient matrices.
    const float eps = (float)(ridge + 1e-5 * (double)max_diag) + 1e-7f;
    for (int64_t i = 0; i < gram.dim(0); ++i)
        gram.at(i, i) += eps;
}

} // namespace

Tensor
fitBasis(const Tensor &w, const Tensor &ce, double ridge)
{
    // Normal equations: (Ce^T Ce + ridge I) B = Ce^T W.
    Tensor cet = transpose(ce);
    Tensor gram = matmul(cet, ce);
    addAdaptiveRidge(gram, ridge);
    Tensor rhs = matmul(cet, w);
    return choleskySolve(gram, rhs);
}

Tensor
fitCoefficients(const Tensor &w, const Tensor &b, double ridge)
{
    // argmin_Ce ||W - Ce B|| -> (B B^T + ridge I) Ce^T = B W^T.
    Tensor bt = transpose(b);
    Tensor gram = matmul(b, bt);
    addAdaptiveRidge(gram, ridge);
    Tensor rhs = matmul(b, transpose(w));
    Tensor cet = choleskySolve(gram, rhs);
    return transpose(cet);
}

Tensor
fitCoefficientsMasked(const Tensor &w, const Tensor &b, const Tensor &mask,
                      double ridge)
{
    SE_ASSERT(mask.dim(0) == w.dim(0) && mask.dim(1) == b.dim(0),
              "mask shape mismatch");
    const int64_t m = w.dim(0), r = b.dim(0), n = b.dim(1);
    Tensor ce({m, r});

    if (kernels::useBitIdenticalFastPath(kernels::defaultConvImpl())) {
        // GEMM-backed lowering. Every per-row Gram entry is a dot
        // product of two full basis rows — independent of the mask —
        // so the r x r Gram B B^T and the m x r right-hand side W B^T
        // are each computed ONCE through kernels::gemmABtColBiasD
        // (the double-chain ascending-t kernel, the exact rounding
        // sequence of the legacy per-row dots), and each row's solve
        // just gathers its masked submatrix. This replaces the legacy
        // O(m * q^2 * n) per-row dot products with O(r^2 * n + m*r*n)
        // GEMM work; outputs are bit-identical.
        Tensor gram_full({r, r});
        kernels::gemmABtColBiasD(b.data(), b.data(), nullptr,
                                 gram_full.data(), r, n, r);
        Tensor rhs_full({m, r});
        kernels::gemmABtColBiasD(w.data(), b.data(), nullptr,
                                 rhs_full.data(), m, n, r);

        std::vector<int64_t> idx;
        idx.reserve((size_t)r);
        for (int64_t i = 0; i < m; ++i) {
            idx.clear();
            for (int64_t j = 0; j < r; ++j)
                if (mask.at(i, j) != 0.0f)
                    idx.push_back(j);
            if (idx.empty())
                continue;
            const int64_t q = (int64_t)idx.size();
            Tensor gram({q, q});
            Tensor rhs({q, (int64_t)1});
            for (int64_t u = 0; u < q; ++u) {
                for (int64_t v = 0; v < q; ++v)
                    gram.at(u, v) = gram_full.at(idx[(size_t)u],
                                                 idx[(size_t)v]);
                gram.at(u, u) += (float)ridge + 1e-7f;
                rhs.at(u, 0) = rhs_full.at(i, idx[(size_t)u]);
            }
            Tensor sol = choleskySolve(gram, rhs);
            for (int64_t u = 0; u < q; ++u)
                ce.at(i, idx[(size_t)u]) = sol.at(u, 0);
        }
        return ce;
    }

    // Legacy path (SE_CONV_IMPL=naive): each row of Ce is an
    // independent least-squares problem over the subset of basis rows
    // allowed by the mask, with the Gram dots recomputed per row —
    // the reference the lowering above is diffed against.
    for (int64_t i = 0; i < m; ++i) {
        std::vector<int64_t> idx;
        for (int64_t j = 0; j < r; ++j)
            if (mask.at(i, j) != 0.0f)
                idx.push_back(j);
        if (idx.empty())
            continue;
        const int64_t q = (int64_t)idx.size();
        Tensor gram({q, q});
        Tensor rhs({q, (int64_t)1});
        for (int64_t u = 0; u < q; ++u) {
            for (int64_t v = 0; v < q; ++v) {
                double s = 0.0;
                for (int64_t t = 0; t < n; ++t)
                    s += (double)b.at(idx[(size_t)u], t) *
                         b.at(idx[(size_t)v], t);
                gram.at(u, v) = (float)s;
            }
            gram.at(u, u) += (float)ridge + 1e-7f;
            double s = 0.0;
            for (int64_t t = 0; t < n; ++t)
                s += (double)b.at(idx[(size_t)u], t) * w.at(i, t);
            rhs.at(u, 0) = (float)s;
        }
        Tensor sol = choleskySolve(gram, rhs);
        for (int64_t u = 0; u < q; ++u)
            ce.at(i, idx[(size_t)u]) = sol.at(u, 0);
    }
    return ce;
}

} // namespace linalg
} // namespace se
