/**
 * @file
 * Dense linear algebra kernels used by the SmartExchange decomposition:
 * matrix multiplication, norms, Cholesky-based SPD solves, and the two
 * alternating least-squares factor updates for W ~= Ce * B.
 *
 * All matrices are 2-D Tensors in row-major layout. Problem sizes are
 * tiny (B is SxS with S in {1,3,5,7}; Ce has at most a few thousand
 * rows), so clarity is favoured over blocking/vectorization.
 */

#ifndef SE_LINALG_LINALG_HH
#define SE_LINALG_LINALG_HH

#include "tensor/tensor.hh"

namespace se {
namespace linalg {

/** C = A * B for 2-D tensors (m x k) * (k x n). */
Tensor matmul(const Tensor &a, const Tensor &b);

/** Transpose of a 2-D tensor. */
Tensor transpose(const Tensor &a);

/** Frobenius norm of any tensor. */
double frobNorm(const Tensor &a);

/** Frobenius norm of (a - b); shapes must match. */
double frobDiff(const Tensor &a, const Tensor &b);

/**
 * Solve the SPD system A * X = B in-place via Cholesky factorization.
 *
 * A is n x n symmetric positive definite (a small ridge may be added by
 * the caller), B is n x m. Returns X (n x m).
 */
Tensor choleskySolve(Tensor a, Tensor b);

/**
 * Least-squares update of the basis: argmin_B || W - Ce * B ||_F.
 *
 * Solves the normal equations (Ce^T Ce + ridge I) B = Ce^T W. The ridge
 * keeps the solve well-posed when Ce has zero columns (fully pruned
 * coefficients), which the SmartExchange sparsifier produces routinely.
 */
Tensor fitBasis(const Tensor &w, const Tensor &ce, double ridge = 1e-8);

/**
 * Least-squares update of the coefficients:
 * argmin_Ce || W - Ce * B ||_F, i.e. the transposed problem
 * (B B^T + ridge I) Ce^T = B W^T.
 */
Tensor fitCoefficients(const Tensor &w, const Tensor &b,
                       double ridge = 1e-8);

/**
 * Least-squares refit of Ce restricted to its current support: zero
 * entries stay zero, only non-zeros are re-estimated (row by row).
 * Used after sparsification so pruning does not destroy the fit.
 */
Tensor fitCoefficientsMasked(const Tensor &w, const Tensor &b,
                             const Tensor &mask, double ridge = 1e-8);

} // namespace linalg
} // namespace se

#endif // SE_LINALG_LINALG_HH
