/**
 * @file
 * Grow-only scratch arena for the kernel lowerings.
 *
 * Each Conv2d/Linear layer owns one arena, so the im2col column
 * buffer, weight-transpose buffer and column-space gradient are
 * allocated once at the layer's steady-state sizes and reused across
 * every subsequent forward/backward call — the per-call allocation
 * churn of the original loops. Not thread-safe: an arena belongs to
 * exactly one layer instance, which the nn layer contract already
 * restricts to one caller at a time.
 */

#ifndef SE_KERNELS_SCRATCH_HH
#define SE_KERNELS_SCRATCH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace se {
namespace kernels {

class ScratchArena
{
  public:
    /** im2col column matrix (also the gy transpose for Linear). */
    float *
    colBuffer(int64_t floats)
    {
        return grow(col_, floats);
    }

    /** Transposed weights for the gx GEMM. */
    float *
    transposeBuffer(int64_t floats)
    {
        return grow(wt_, floats);
    }

    /** Column-space gradient (col2im input). */
    float *
    gradBuffer(int64_t floats)
    {
        return grow(grad_, floats);
    }

    /** Total floats currently reserved (observability/tests). */
    size_t
    floatsReserved() const
    {
        return col_.size() + wt_.size() + grad_.size();
    }

    /** Drop every buffer (e.g. after a model is torn down). */
    void
    release()
    {
        col_.clear();
        col_.shrink_to_fit();
        wt_.clear();
        wt_.shrink_to_fit();
        grad_.clear();
        grad_.shrink_to_fit();
    }

  private:
    static float *
    grow(std::vector<float> &v, int64_t floats)
    {
        if ((int64_t)v.size() < floats)
            v.resize((size_t)floats);
        return v.data();
    }

    std::vector<float> col_, wt_, grad_;
};

} // namespace kernels
} // namespace se

#endif // SE_KERNELS_SCRATCH_HH
