/**
 * @file
 * AVX2 micro-kernel variants: 256-bit register tiles (16 columns as
 * two YMM accumulators, two A rows per pass — 4 live accumulator
 * registers plus broadcasts and B loads, sized for FMA-class cores).
 *
 * This TU is compiled with -mavx2 and deliberately WITHOUT -mfma:
 * a fused multiply-add rounds once where the bit-identity contract
 * (the legacy loops' mul-round-add-round float chain) rounds twice,
 * so with the FMA ISA masked off the compiler cannot contract the
 * mul+add pairs below and every byte matches the scalar reference.
 * Lanes are distinct output elements accumulated in ascending-k
 * order, and the A-side zero-skip is kept per row.
 *
 * When the build lacks -mavx2 support (non-x86 target, old compiler),
 * avx2Ops() returns nullptr and dispatch falls back to SSE2/scalar.
 */

#include "kernels/dispatch_variants.hh"

#ifdef __AVX2__

#include <immintrin.h>

#include <algorithm>
#include <vector>

namespace se {
namespace kernels {
namespace detail {

namespace {

constexpr int64_t kTile = 16;  // columns per register tile (2 x YMM)
constexpr int64_t kHalf = 8;   // single-YMM stage

/** Scalar remainder columns [jt, j1) — the reference loop verbatim. */
inline void
sgemmTail(const float *a, const float *b, float *c, int64_t m,
          int64_t k, int64_t n, bool accumulate, int64_t jt, int64_t j1)
{
    for (; jt < j1; ++jt) {
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * k;
            float acc = accumulate ? c[i * n + jt] : 0.0f;
            for (int64_t p = 0; p < k; ++p) {
                const float av = ai[p];
                if (av != 0.0f)
                    acc += av * b[p * n + jt];
            }
            c[i * n + jt] = acc;
        }
    }
}

void
sgemmPanelAvx2(const float *__restrict a, const float *__restrict b,
               float *__restrict c, int64_t m, int64_t k, int64_t n,
               bool accumulate, int64_t j0, int64_t j1)
{
    int64_t jt = j0;
    for (; jt + kTile <= j1; jt += kTile) {
        int64_t i = 0;
        for (; i + 2 <= m; i += 2) {
            const float *a0 = a + i * k;
            const float *a1 = a0 + k;
            float *c0 = c + i * n + jt;
            float *c1 = c0 + n;
            __m256 acc00, acc01, acc10, acc11;
            if (accumulate) {
                acc00 = _mm256_loadu_ps(c0);
                acc01 = _mm256_loadu_ps(c0 + 8);
                acc10 = _mm256_loadu_ps(c1);
                acc11 = _mm256_loadu_ps(c1 + 8);
            } else {
                acc00 = acc01 = acc10 = acc11 = _mm256_setzero_ps();
            }
            const float *bp = b + jt;
            for (int64_t p = 0; p < k; ++p, bp += n) {
                const float av0 = a0[p];
                const float av1 = a1[p];
                if (av0 == 0.0f && av1 == 0.0f)
                    continue;
                const __m256 b0 = _mm256_loadu_ps(bp);
                const __m256 b1 = _mm256_loadu_ps(bp + 8);
                if (av0 != 0.0f) {
                    const __m256 va = _mm256_set1_ps(av0);
                    acc00 = _mm256_add_ps(acc00,
                                          _mm256_mul_ps(va, b0));
                    acc01 = _mm256_add_ps(acc01,
                                          _mm256_mul_ps(va, b1));
                }
                if (av1 != 0.0f) {
                    const __m256 va = _mm256_set1_ps(av1);
                    acc10 = _mm256_add_ps(acc10,
                                          _mm256_mul_ps(va, b0));
                    acc11 = _mm256_add_ps(acc11,
                                          _mm256_mul_ps(va, b1));
                }
            }
            _mm256_storeu_ps(c0, acc00);
            _mm256_storeu_ps(c0 + 8, acc01);
            _mm256_storeu_ps(c1, acc10);
            _mm256_storeu_ps(c1 + 8, acc11);
        }
        if (i < m) {
            const float *ai = a + i * k;
            float *ci = c + i * n + jt;
            __m256 acc0, acc1;
            if (accumulate) {
                acc0 = _mm256_loadu_ps(ci);
                acc1 = _mm256_loadu_ps(ci + 8);
            } else {
                acc0 = acc1 = _mm256_setzero_ps();
            }
            const float *bp = b + jt;
            for (int64_t p = 0; p < k; ++p, bp += n) {
                const float av = ai[p];
                if (av == 0.0f)
                    continue;
                const __m256 va = _mm256_set1_ps(av);
                acc0 = _mm256_add_ps(
                    acc0, _mm256_mul_ps(va, _mm256_loadu_ps(bp)));
                acc1 = _mm256_add_ps(
                    acc1, _mm256_mul_ps(va, _mm256_loadu_ps(bp + 8)));
            }
            _mm256_storeu_ps(ci, acc0);
            _mm256_storeu_ps(ci + 8, acc1);
        }
    }
    for (; jt + kHalf <= j1; jt += kHalf) {
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * k;
            float *ci = c + i * n + jt;
            __m256 acc = accumulate ? _mm256_loadu_ps(ci)
                                    : _mm256_setzero_ps();
            const float *bp = b + jt;
            for (int64_t p = 0; p < k; ++p, bp += n) {
                const float av = ai[p];
                if (av == 0.0f)
                    continue;
                acc = _mm256_add_ps(
                    acc, _mm256_mul_ps(_mm256_set1_ps(av),
                                       _mm256_loadu_ps(bp)));
            }
            _mm256_storeu_ps(ci, acc);
        }
    }
    sgemmTail(a, b, c, m, k, n, accumulate, jt, j1);
}

/** Per-thread transposed strip of B (see the SSE2 variant). */
std::vector<float> &
packBuffer()
{
    static thread_local std::vector<float> buf;
    return buf;
}

void
sgemmABtPanelAvx2(const float *__restrict a, const float *__restrict b,
                  float *__restrict c, int64_t m, int64_t l, int64_t n,
                  bool accumulate, int64_t j0, int64_t j1)
{
    std::vector<float> &pack = packBuffer();
    if ((int64_t)pack.size() < l * kTile)
        pack.resize((size_t)(l * kTile));
    int64_t jt = j0;
    for (; jt + kTile <= j1; jt += kTile) {
        for (int jj = 0; jj < kTile; ++jj) {
            const float *bj = b + (jt + jj) * l;
            for (int64_t p = 0; p < l; ++p)
                pack[(size_t)(p * kTile + jj)] = bj[p];
        }
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * l;
            float *ci = c + i * n + jt;
            __m256 acc0, acc1;
            if (accumulate) {
                acc0 = _mm256_loadu_ps(ci);
                acc1 = _mm256_loadu_ps(ci + 8);
            } else {
                acc0 = acc1 = _mm256_setzero_ps();
            }
            const float *bp = pack.data();
            for (int64_t p = 0; p < l; ++p, bp += kTile) {
                const float av = ai[p];
                if (av == 0.0f)
                    continue;
                const __m256 va = _mm256_set1_ps(av);
                acc0 = _mm256_add_ps(
                    acc0, _mm256_mul_ps(va, _mm256_loadu_ps(bp)));
                acc1 = _mm256_add_ps(
                    acc1, _mm256_mul_ps(va, _mm256_loadu_ps(bp + 8)));
            }
            _mm256_storeu_ps(ci, acc0);
            _mm256_storeu_ps(ci + 8, acc1);
        }
    }
    for (; jt < j1; ++jt) {
        const float *bj = b + jt * l;
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * l;
            float acc = accumulate ? c[i * n + jt] : 0.0f;
            for (int64_t p = 0; p < l; ++p) {
                const float av = ai[p];
                if (av != 0.0f)
                    acc += av * bj[p];
            }
            c[i * n + jt] = acc;
        }
    }
}

inline uint8_t
nibbleAt(const uint8_t *nibbles, int64_t idx)
{
    const uint8_t byte = nibbles[idx >> 1];
    return (idx & 1) ? (uint8_t)(byte >> 4) : (uint8_t)(byte & 0xF);
}

void
gemmCePanelAvx2(const uint8_t *row_mask, const uint8_t *nibbles,
                int64_t m, int64_t r, const float *__restrict basis,
                int64_t n, const float *__restrict lut,
                float *__restrict out, int64_t j0, int64_t j1)
{
    int64_t nz_seen = 0;
    for (int64_t row = 0; row < m; ++row) {
        float *crow = out + row * n;
        if (!(row_mask[row >> 3] & (1u << (row & 7)))) {
            std::fill(crow + j0, crow + j1, 0.0f);
            continue;
        }
        const int64_t code0 = nz_seen * r;
        ++nz_seen;
        int64_t jt = j0;
        for (; jt + kTile <= j1; jt += kTile) {
            __m256 acc0 = _mm256_setzero_ps();
            __m256 acc1 = _mm256_setzero_ps();
            const float *bp = basis + jt;
            for (int64_t p = 0; p < r; ++p, bp += n) {
                const float av = lut[nibbleAt(nibbles, code0 + p)];
                if (av == 0.0f)
                    continue;
                const __m256 va = _mm256_set1_ps(av);
                acc0 = _mm256_add_ps(
                    acc0, _mm256_mul_ps(va, _mm256_loadu_ps(bp)));
                acc1 = _mm256_add_ps(
                    acc1, _mm256_mul_ps(va, _mm256_loadu_ps(bp + 8)));
            }
            _mm256_storeu_ps(crow + jt, acc0);
            _mm256_storeu_ps(crow + jt + 8, acc1);
        }
        for (; jt + kHalf <= j1; jt += kHalf) {
            __m256 acc = _mm256_setzero_ps();
            const float *bp = basis + jt;
            for (int64_t p = 0; p < r; ++p, bp += n) {
                const float av = lut[nibbleAt(nibbles, code0 + p)];
                if (av == 0.0f)
                    continue;
                acc = _mm256_add_ps(
                    acc, _mm256_mul_ps(_mm256_set1_ps(av),
                                       _mm256_loadu_ps(bp)));
            }
            _mm256_storeu_ps(crow + jt, acc);
        }
        for (; jt < j1; ++jt) {
            float acc = 0.0f;
            for (int64_t p = 0; p < r; ++p) {
                const float av = lut[nibbleAt(nibbles, code0 + p)];
                if (av != 0.0f)
                    acc += av * basis[p * n + jt];
            }
            crow[jt] = acc;
        }
    }
}

const KernelOps kAvx2Ops{sgemmPanelAvx2, sgemmABtPanelAvx2,
                         gemmCePanelAvx2};

} // namespace

const KernelOps *
avx2Ops()
{
    return &kAvx2Ops;
}

} // namespace detail
} // namespace kernels
} // namespace se

#else  // !__AVX2__

namespace se {
namespace kernels {
namespace detail {

const KernelOps *
avx2Ops()
{
    return nullptr;
}

} // namespace detail
} // namespace kernels
} // namespace se

#endif
