#include "kernels/im2col.hh"

#include <algorithm>
#include <cstring>

namespace se {
namespace kernels {

void
im2col(const float *x, int64_t c, int64_t h, int64_t w, int64_t r,
       int64_t s, int64_t stride, int64_t pad, int64_t dil, int64_t oh,
       int64_t ow, float *col)
{
    for (int64_t ci = 0; ci < c; ++ci) {
        const float *xc = x + ci * h * w;
        for (int64_t kr = 0; kr < r; ++kr) {
            for (int64_t ks = 0; ks < s; ++ks) {
                float *row = col + (((ci * r) + kr) * s + ks) * oh * ow;
                const int64_t woff = ks * dil - pad;
                for (int64_t e = 0; e < oh; ++e) {
                    const int64_t ih = e * stride + kr * dil - pad;
                    float *dst = row + e * ow;
                    if (ih < 0 || ih >= h) {
                        std::memset(dst, 0,
                                    (size_t)ow * sizeof(float));
                        continue;
                    }
                    const float *xr = xc + ih * w;
                    if (stride == 1) {
                        // Contiguous middle span; zero the pad edges.
                        const int64_t f0 =
                            std::max<int64_t>(0, -woff);
                        const int64_t f1 = std::min(ow, w - woff);
                        for (int64_t f = 0; f < std::min(f0, ow); ++f)
                            dst[f] = 0.0f;
                        if (f1 > f0)
                            std::memcpy(dst + f0, xr + f0 + woff,
                                        (size_t)(f1 - f0) *
                                            sizeof(float));
                        for (int64_t f = std::max(f1, (int64_t)0);
                             f < ow; ++f)
                            dst[f] = 0.0f;
                    } else {
                        for (int64_t f = 0; f < ow; ++f) {
                            const int64_t iw = f * stride + woff;
                            dst[f] = (iw >= 0 && iw < w) ? xr[iw]
                                                         : 0.0f;
                        }
                    }
                }
            }
        }
    }
}

void
col2imAdd(const float *col, int64_t c, int64_t h, int64_t w, int64_t r,
          int64_t s, int64_t stride, int64_t pad, int64_t dil,
          int64_t oh, int64_t ow, float *x)
{
    for (int64_t ci = 0; ci < c; ++ci) {
        float *xc = x + ci * h * w;
        for (int64_t kr = 0; kr < r; ++kr) {
            for (int64_t ks = 0; ks < s; ++ks) {
                const float *row =
                    col + (((ci * r) + kr) * s + ks) * oh * ow;
                const int64_t woff = ks * dil - pad;
                for (int64_t e = 0; e < oh; ++e) {
                    const int64_t ih = e * stride + kr * dil - pad;
                    if (ih < 0 || ih >= h)
                        continue;
                    float *xr = xc + ih * w;
                    const float *src = row + e * ow;
                    for (int64_t f = 0; f < ow; ++f) {
                        const int64_t iw = f * stride + woff;
                        if (iw >= 0 && iw < w)
                            xr[iw] += src[f];
                    }
                }
            }
        }
    }
}

} // namespace kernels
} // namespace se
