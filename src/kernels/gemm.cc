#include "kernels/gemm.hh"

#include <algorithm>

#include "kernels/dispatch.hh"
#include "kernels/kernels.hh"

namespace se {
namespace kernels {

namespace {

/** Register-tile width of the double-chain panels below. */
constexpr int64_t kNr = 8;

/**
 * gemmRowBiasD over [j0, j1): the conv-forward micro-kernel. Two A
 * rows per pass halve the B-panel traffic; the double accumulators
 * round once on store, exactly like the legacy loop's `double acc`.
 */
void
gemmRowBiasDPanel(const float *__restrict a, const float *__restrict b,
                  const float *row_bias, float *__restrict c, int64_t m,
                  int64_t k, int64_t n, int64_t j0, int64_t j1)
{
    int64_t jt = j0;
    for (; jt + kNr <= j1; jt += kNr) {
        int64_t i = 0;
        for (; i + 2 <= m; i += 2) {
            const float *a0 = a + i * k;
            const float *a1 = a0 + k;
            const double bias0 = row_bias ? (double)row_bias[i] : 0.0;
            const double bias1 =
                row_bias ? (double)row_bias[i + 1] : 0.0;
            double acc0[kNr], acc1[kNr];
            for (int jj = 0; jj < kNr; ++jj) {
                acc0[jj] = bias0;
                acc1[jj] = bias1;
            }
            const float *bp = b + jt;
            for (int64_t p = 0; p < k; ++p, bp += n) {
                const double av0 = a0[p];
                const double av1 = a1[p];
                for (int jj = 0; jj < kNr; ++jj) {
                    const double bv = bp[jj];
                    acc0[jj] += av0 * bv;
                    acc1[jj] += av1 * bv;
                }
            }
            float *c0 = c + i * n + jt;
            float *c1 = c0 + n;
            for (int jj = 0; jj < kNr; ++jj) {
                c0[jj] = (float)acc0[jj];
                c1[jj] = (float)acc1[jj];
            }
        }
        if (i < m) {
            const float *ai = a + i * k;
            const double bias = row_bias ? (double)row_bias[i] : 0.0;
            double acc[kNr];
            for (int jj = 0; jj < kNr; ++jj)
                acc[jj] = bias;
            const float *bp = b + jt;
            for (int64_t p = 0; p < k; ++p, bp += n) {
                const double av = ai[p];
                for (int jj = 0; jj < kNr; ++jj)
                    acc[jj] += av * (double)bp[jj];
            }
            float *ci = c + i * n + jt;
            for (int jj = 0; jj < kNr; ++jj)
                ci[jj] = (float)acc[jj];
        }
    }
    for (; jt < j1; ++jt) {
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * k;
            double acc = row_bias ? (double)row_bias[i] : 0.0;
            for (int64_t p = 0; p < k; ++p)
                acc += (double)ai[p] * (double)b[p * n + jt];
            c[i * n + jt] = (float)acc;
        }
    }
}

/** gemmColBiasD over [j0, j1): gemmRowBiasD with per-column bias. */
void
gemmColBiasDPanel(const float *__restrict a, const float *__restrict b,
                  const float *col_bias, float *__restrict c, int64_t m,
                  int64_t k, int64_t n, int64_t j0, int64_t j1)
{
    int64_t jt = j0;
    for (; jt + kNr <= j1; jt += kNr) {
        double bias[kNr];
        for (int jj = 0; jj < kNr; ++jj)
            bias[jj] = col_bias ? (double)col_bias[jt + jj] : 0.0;
        int64_t i = 0;
        for (; i + 2 <= m; i += 2) {
            const float *a0 = a + i * k;
            const float *a1 = a0 + k;
            double acc0[kNr], acc1[kNr];
            for (int jj = 0; jj < kNr; ++jj) {
                acc0[jj] = bias[jj];
                acc1[jj] = bias[jj];
            }
            const float *bp = b + jt;
            for (int64_t p = 0; p < k; ++p, bp += n) {
                const double av0 = a0[p];
                const double av1 = a1[p];
                for (int jj = 0; jj < kNr; ++jj) {
                    const double bv = bp[jj];
                    acc0[jj] += av0 * bv;
                    acc1[jj] += av1 * bv;
                }
            }
            float *c0 = c + i * n + jt;
            float *c1 = c0 + n;
            for (int jj = 0; jj < kNr; ++jj) {
                c0[jj] = (float)acc0[jj];
                c1[jj] = (float)acc1[jj];
            }
        }
        if (i < m) {
            const float *ai = a + i * k;
            double acc[kNr];
            for (int jj = 0; jj < kNr; ++jj)
                acc[jj] = bias[jj];
            const float *bp = b + jt;
            for (int64_t p = 0; p < k; ++p, bp += n) {
                const double av = ai[p];
                for (int jj = 0; jj < kNr; ++jj)
                    acc[jj] += av * (double)bp[jj];
            }
            float *ci = c + i * n + jt;
            for (int jj = 0; jj < kNr; ++jj)
                ci[jj] = (float)acc[jj];
        }
    }
    for (; jt < j1; ++jt) {
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * k;
            double acc = col_bias ? (double)col_bias[jt] : 0.0;
            for (int64_t p = 0; p < k; ++p)
                acc += (double)ai[p] * (double)b[p * n + jt];
            c[i * n + jt] = (float)acc;
        }
    }
}

/** gemmABtColBiasD over the B-row range [j0, j1). */
void
gemmABtColBiasDPanel(const float *__restrict a,
                     const float *__restrict b, const float *col_bias,
                     float *__restrict c, int64_t m, int64_t k,
                     int64_t n, int64_t j0, int64_t j1)
{
    int64_t jt = j0;
    for (; jt + kNr <= j1; jt += kNr) {
        const float *br[kNr];
        for (int jj = 0; jj < kNr; ++jj)
            br[jj] = b + (jt + jj) * k;
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * k;
            double acc[kNr];
            for (int jj = 0; jj < kNr; ++jj)
                acc[jj] = col_bias ? (double)col_bias[jt + jj] : 0.0;
            for (int64_t p = 0; p < k; ++p) {
                const double av = ai[p];
                for (int jj = 0; jj < kNr; ++jj)
                    acc[jj] += (double)br[jj][p] * av;
            }
            float *ci = c + i * n + jt;
            for (int jj = 0; jj < kNr; ++jj)
                ci[jj] = (float)acc[jj];
        }
    }
    for (; jt < j1; ++jt) {
        const float *bj = b + jt * k;
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * k;
            double acc = col_bias ? (double)col_bias[jt] : 0.0;
            for (int64_t p = 0; p < k; ++p)
                acc += (double)bj[p] * (double)ai[p];
            c[i * n + jt] = (float)acc;
        }
    }
}

} // namespace

void
sgemm(const float *a, const float *b, float *c, int64_t m, int64_t k,
      int64_t n, bool accumulate)
{
    // The float-chain panels are ISA-dispatched (dispatch.hh); every
    // variant reproduces the scalar rounding sequence byte for byte.
    const KernelOps &o = ops();
    forEachColumnPanel(n, m * k * n, [&](int64_t j0, int64_t j1) {
        o.sgemmPanel(a, b, c, m, k, n, accumulate, j0, j1);
    });
}

void
sgemmABt(const float *a, const float *b, float *c, int64_t m, int64_t l,
         int64_t n, bool accumulate)
{
    const KernelOps &o = ops();
    forEachColumnPanel(n, m * l * n, [&](int64_t j0, int64_t j1) {
        o.sgemmABtPanel(a, b, c, m, l, n, accumulate, j0, j1);
    });
}

void
gemmRowBiasD(const float *a, const float *b, const float *row_bias,
             float *c, int64_t m, int64_t k, int64_t n)
{
    forEachColumnPanel(n, m * k * n, [&](int64_t j0, int64_t j1) {
        gemmRowBiasDPanel(a, b, row_bias, c, m, k, n, j0, j1);
    });
}

void
gemmABtColBiasD(const float *a, const float *b, const float *col_bias,
                float *c, int64_t m, int64_t k, int64_t n)
{
    forEachColumnPanel(n, m * k * n, [&](int64_t j0, int64_t j1) {
        gemmABtColBiasDPanel(a, b, col_bias, c, m, k, n, j0, j1);
    });
}

void
gemmColBiasD(const float *a, const float *b, const float *col_bias,
             float *c, int64_t m, int64_t k, int64_t n)
{
    forEachColumnPanel(n, m * k * n, [&](int64_t j0, int64_t j1) {
        gemmColBiasDPanel(a, b, col_bias, c, m, k, n, j0, j1);
    });
}

void
transposeF(const float *src, int64_t rows, int64_t cols, float *dst)
{
    // Tile both dimensions so either stride stays cache-resident.
    constexpr int64_t kBlk = 32;
    for (int64_t i0 = 0; i0 < rows; i0 += kBlk)
        for (int64_t j0 = 0; j0 < cols; j0 += kBlk) {
            const int64_t i1 = std::min(rows, i0 + kBlk);
            const int64_t j1 = std::min(cols, j0 + kBlk);
            for (int64_t i = i0; i < i1; ++i)
                for (int64_t j = j0; j < j1; ++j)
                    dst[j * rows + i] = src[i * cols + j];
        }
}

Tensor
gemm(const Tensor &a, const Tensor &b)
{
    SE_ASSERT(a.ndim() == 2 && b.ndim() == 2, "gemm needs 2-D inputs");
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    SE_ASSERT(b.dim(0) == k, "gemm inner dim mismatch: ", k, " vs ",
              b.dim(0));
    Tensor c({m, n});
    sgemm(a.data(), b.data(), c.data(), m, k, n, /*accumulate=*/false);
    return c;
}

} // namespace kernels
} // namespace se
