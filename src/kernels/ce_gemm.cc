#include "kernels/ce_gemm.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "kernels/dispatch.hh"
#include "kernels/gemm.hh"

namespace se {
namespace kernels {

namespace {

/**
 * Rows decoded per panel in the staged variant. Big enough that the
 * sgemm call amortizes, small enough that a panel of typical Ce ranks
 * (3..9 columns) stays resident in L1 next to the basis tile.
 */
constexpr int64_t kPanelRows = 128;

inline float
decodeNibble(uint8_t nib, int exp_min)
{
    const int code = nib & 0x7;
    if (code == 0) {
        // Nibble 0x8 (sign with a zero exponent code) never leaves
        // packCe / the v3 loader; rejecting it here would put a
        // branch in the hot loop for a can't-happen input.
        SE_ASSERT(nib == 0, "invalid packed Ce nibble");
        return 0.0f;
    }
    return quant::pow2CodeValue(exp_min, code, (nib & 0x8) != 0);
}

/**
 * The 16-entry nibble -> float table the fused kernels index with the
 * raw nibble. Built from the same pow2CodeValue rule decodeNibble
 * uses, so a lookup and a decode are the same bits. The two zero
 * encodings (0x0, and the 0x8 sign-on-zero pattern packCe never
 * emits) both map to +0.0f, which the kernels then skip exactly like
 * a decoded zero.
 */
void
buildDecodeLut(const quant::Pow2Alphabet &alpha, float *lut)
{
    const int exp_min = alpha.expMin();
    lut[0] = 0.0f;
    lut[8] = 0.0f;
    for (int code = 1; code <= 7; ++code) {
        lut[code] = quant::pow2CodeValue(exp_min, code, false);
        lut[8 | code] = quant::pow2CodeValue(exp_min, code, true);
    }
}

} // namespace

void
gemmCeB(const uint8_t *row_mask, const uint8_t *nibbles, int64_t m,
        int64_t r, const float *basis, int64_t n,
        const quant::Pow2Alphabet &alpha, float *out,
        ScratchArena &arena)
{
    (void)arena;  // the fused path stages nothing
    if (m <= 0 || n <= 0)
        return;
    float lut[16];
    buildDecodeLut(alpha, lut);
    const KernelOps &o = ops();
    forEachColumnPanel(n, m * r * n, [&](int64_t j0, int64_t j1) {
        o.gemmCePanel(row_mask, nibbles, m, r, basis, n, lut, out, j0,
                      j1);
    });
}

void
gemmCeBPanelDecode(const uint8_t *row_mask, const uint8_t *nibbles,
                   int64_t m, int64_t r, const float *basis, int64_t n,
                   const quant::Pow2Alphabet &alpha, float *out,
                   ScratchArena &arena)
{
    if (m <= 0 || n <= 0)
        return;
    const int exp_min = alpha.expMin();
    int64_t nz_seen = 0;  // non-zero rows before the current row
    for (int64_t row0 = 0; row0 < m; row0 += kPanelRows) {
        const int64_t pr = std::min(kPanelRows, m - row0);
        float *panel = arena.colBuffer(pr * r);
        for (int64_t i = 0; i < pr; ++i) {
            const int64_t row = row0 + i;
            float *dst = panel + i * r;
            if (!(row_mask[row >> 3] & (1u << (row & 7)))) {
                std::fill(dst, dst + r, 0.0f);
                continue;
            }
            const int64_t code0 = nz_seen * r;
            for (int64_t j = 0; j < r; ++j) {
                const int64_t k = code0 + j;
                uint8_t nib = nibbles[k >> 1];
                nib = (k & 1) ? (uint8_t)(nib >> 4)
                              : (uint8_t)(nib & 0xF);
                dst[j] = decodeNibble(nib, exp_min);
            }
            ++nz_seen;
        }
        // Panel rows are disjoint output rows: sgemm accumulates each
        // element over the full inner dimension in ascending order,
        // so the split is invisible in the results.
        sgemm(panel, basis, out + row0 * n, pr, r, n,
              /*accumulate=*/false);
    }
}

} // namespace kernels
} // namespace se
