/**
 * @file
 * im2col / col2im: lower a convolution's sliding-window geometry onto
 * a dense matrix so conv forward/backward become single GEMMs.
 *
 * Layout contract (shared with the conv lowering and the naive loop's
 * accumulation order): the column matrix is (c*r*s) x (oh*ow) with row
 * index (ci*r + kr)*s + ks — i.e. rows run over the patch in the same
 * (channel, kernel-row, kernel-col) order the weight tensor stores and
 * the legacy loop accumulates, which is what keeps the GEMM path
 * bit-identical. Out-of-image taps are written as exact 0.0f.
 */

#ifndef SE_KERNELS_IM2COL_HH
#define SE_KERNELS_IM2COL_HH

#include <cstdint>

namespace se {
namespace kernels {

/**
 * Expand one (c, h, w) channel block into col (c*r*s x oh*ow).
 * x points at the first channel of the block (a group slice of one
 * batch item); col must hold c*r*s*oh*ow floats.
 */
void im2col(const float *x, int64_t c, int64_t h, int64_t w, int64_t r,
            int64_t s, int64_t stride, int64_t pad, int64_t dil,
            int64_t oh, int64_t ow, float *col);

/**
 * Scatter-add the column-space gradient back into image space:
 * x += fold(col). The inverse geometry of im2col; out-of-image taps
 * are dropped.
 */
void col2imAdd(const float *col, int64_t c, int64_t h, int64_t w,
               int64_t r, int64_t s, int64_t stride, int64_t pad,
               int64_t dil, int64_t oh, int64_t ow, float *x);

} // namespace kernels
} // namespace se

#endif // SE_KERNELS_IM2COL_HH
