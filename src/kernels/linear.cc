#include "kernels/linear.hh"

#include "base/logging.hh"
#include "kernels/gemm.hh"

namespace se {
namespace kernels {

Tensor
linearForwardGemm(const Tensor &x, const Tensor &w, const Tensor *bias,
                  ScratchArena &scratch)
{
    SE_ASSERT(x.ndim() == 2 && x.dim(1) == w.dim(1),
              "linear input shape mismatch");
    const int64_t n = x.dim(0), in_f = x.dim(1), out_f = w.dim(0);
    Tensor y({n, out_f});
    if (n >= 4) {
        // Batched: materializing W^T lets the inner loop stream B
        // contiguously (SIMD-friendly); the transpose amortizes over
        // the batch. Same ascending-input double chain either way.
        float *wt = scratch.transposeBuffer(in_f * out_f);
        transposeF(w.data(), out_f, in_f, wt);
        gemmColBiasD(x.data(), wt, bias ? bias->data() : nullptr,
                     y.data(), n, in_f, out_f);
    } else {
        gemmABtColBiasD(x.data(), w.data(),
                        bias ? bias->data() : nullptr, y.data(), n,
                        in_f, out_f);
    }
    return y;
}

void
linearBackwardGemm(const Tensor &x, const Tensor &w, const Tensor &gy,
                   ScratchArena &scratch, Tensor &gradW, Tensor *gradB,
                   Tensor &gx)
{
    const int64_t n = x.dim(0), in_f = x.dim(1), out_f = w.dim(0);
    SE_ASSERT(gy.dim(0) == n && gy.dim(1) == out_f,
              "linear backward gy shape mismatch");

    if (gradB) {
        // Ascending-batch chain per output, like the legacy loop.
        float *gbd = gradB->data();
        const float *gyd = gy.data();
        for (int64_t b = 0; b < n; ++b) {
            const float *row = gyd + b * out_f;
            for (int64_t o = 0; o < out_f; ++o)
                gbd[o] += row[o];
        }
    }

    // gradW (out, in) += gy^T (out, n) * x (n, in): transposing gy
    // turns the scattered per-sample updates into one GEMM whose
    // ascending-batch float chains match the legacy loop.
    float *gyt = scratch.colBuffer(n * out_f);
    transposeF(gy.data(), n, out_f, gyt);
    sgemm(gyt, x.data(), gradW.data(), out_f, n, in_f,
          /*accumulate=*/true);

    // gx (n, in) = gy (n, out) * w (out, in), ascending outputs.
    sgemm(gy.data(), w.data(), gx.data(), n, out_f, in_f,
          /*accumulate=*/false);
}

} // namespace kernels
} // namespace se
