/**
 * @file
 * Process-wide configuration of the se::kernels layer: which conv
 * implementation the nn layers pick by default, and the shared thread
 * pool the blocked GEMM fans out over.
 *
 * Environment knobs (read once, overridable programmatically):
 *  - SE_CONV_IMPL = auto | naive | gemm
 *      auto  (default): forward passes lower onto im2col+GEMM (the
 *             fast path is bit-identical to the legacy loops, so
 *             golden outputs are unchanged); conv backward keeps the
 *             legacy loop, whose float accumulation order a GEMM
 *             lowering cannot reproduce exactly.
 *      naive: every layer runs the legacy scalar loops (the escape
 *             hatch correctness tests diff against).
 *      gemm:  backward lowers onto GEMM too; gradW/gradB stay
 *             bit-identical, gx agrees to ~1e-4 relative (col2im
 *             re-associates the scatter-add).
 *  - SE_THREADS: kernel pool width. 0 => serial, negative or unset
 *      => one worker per core (the same convention as RuntimeOptions).
 *
 * Every kernel is deterministic and thread-count invariant: each
 * output element is accumulated by exactly one worker in a fixed
 * ascending-k order, so SE_THREADS only moves wall-clock.
 */

#ifndef SE_KERNELS_KERNELS_HH
#define SE_KERNELS_KERNELS_HH

#include <cstdint>

#include "base/thread_pool.hh"

namespace se {
namespace kernels {

/** Which lowering the nn layers use. */
enum class ConvImpl {
    Auto,        ///< fast where bit-identical, legacy elsewhere
    Naive,       ///< legacy scalar loops everywhere
    Im2colGemm,  ///< im2col + blocked GEMM everywhere
};

/**
 * Parse SE_CONV_IMPL from the environment (the single parser — the
 * process-wide default and RuntimeOptions::fromEnv both use it).
 * Unset/empty means Auto; anything else but auto|naive|gemm is fatal.
 */
ConvImpl convImplFromEnv();

/** Process-wide default, initialized from SE_CONV_IMPL. */
ConvImpl defaultConvImpl();

/** Override the process-wide default (benches/tests). */
void setDefaultConvImpl(ConvImpl impl);

/**
 * Whether a bit-identical lowering (conv forward, Linear both
 * directions, matmul) should take the fast path: yes unless the
 * legacy loops were explicitly requested.
 */
bool useBitIdenticalFastPath(ConvImpl impl);

/**
 * Whether a re-associating lowering (conv backward's col2im
 * scatter-add) should take the fast path: only when Im2colGemm was
 * explicitly requested — Auto keeps the legacy loop so the
 * golden-pinned retrain benches never move.
 */
bool useReassociatingFastPath(ConvImpl impl);

/**
 * The shared kernel pool, lazily built with SE_THREADS workers.
 * Distinct from the serve/pipeline pools: those fan out whole tasks
 * (requests, per-matrix decompositions) and their workers block on
 * this pool's GEMM panels only through the nested-parallelism guard
 * or a SerialScope.
 */
ThreadPool &pool();

/**
 * Resize the kernel pool (test hook). Must not race in-flight
 * kernels; results are identical for any width by construction.
 */
void configureThreads(int threads);

/**
 * RAII suppression of kernel-level parallelism on this thread.
 * Outer fan-out layers (ServeEngine replicas, CompressionPipeline
 * units) wrap their per-task work in one so replica/unit parallelism
 * does not fight panel parallelism for the same cores.
 */
class SerialScope
{
  public:
    SerialScope();
    ~SerialScope();
    SerialScope(const SerialScope &) = delete;
    SerialScope &operator=(const SerialScope &) = delete;

  private:
    bool prev_;
};

/** True while a SerialScope is live on the calling thread. */
bool serialScopeActive();

/**
 * Fan fn(i), i in [0, n), over the kernel pool — or run inline when
 * the pool is serial, a SerialScope is active, or the caller already
 * is a kernel-pool worker.
 */
void parallelFor(int64_t n, const std::function<void(int64_t)> &fn);

} // namespace kernels
} // namespace se

#endif // SE_KERNELS_KERNELS_HH
