/**
 * @file
 * Convolution lowering: conv2d forward/backward as im2col + blocked
 * GEMM, supporting stride, zero padding, dilation and groups (so
 * depth-wise convolutions too).
 *
 * Numerics:
 *  - forward is bit-identical to the legacy 7-deep NCHW loop: the
 *    column matrix enumerates the patch in the loop's (channel, kr,
 *    ks) order, padding taps contribute exact zeros, and the GEMM
 *    carries the same per-output double accumulator (bias first,
 *    round once on store);
 *  - backward reproduces gradW/gradB bit-identically (same ascending
 *    (batch, e, f) float chains), while gx goes through col2im, whose
 *    scatter-add re-associates the naive loop's interleaved float
 *    sums — gx agrees to ~1e-4 relative, which is why ConvImpl::Auto
 *    keeps the legacy backward for the golden-pinned retrain benches.
 */

#ifndef SE_KERNELS_CONV_HH
#define SE_KERNELS_CONV_HH

#include "kernels/scratch.hh"
#include "tensor/tensor.hh"

namespace se {
namespace kernels {

/** Static geometry of a conv layer (square kernels, NCHW). */
struct ConvSpec
{
    int64_t inCh = 0;
    int64_t outCh = 0;
    int64_t kern = 1;
    int64_t stride = 1;
    int64_t pad = 0;
    int64_t groups = 1;
    int64_t dil = 1;
};

/**
 * y = conv(x, w) + bias for x (N, C, H, W) and w (M, C/g, R, S);
 * bias (M) may be null. Scratch holds the reused column buffer.
 */
Tensor conv2dForwardGemm(const Tensor &x, const Tensor &w,
                         const Tensor *bias, const ConvSpec &spec,
                         ScratchArena &scratch);

/**
 * Backward pass against the cached input: accumulates into gradW
 * (and gradB when non-null) exactly like the legacy loop, and writes
 * the input gradient into gx (which must come in zero-filled, shaped
 * like x).
 */
void conv2dBackwardGemm(const Tensor &x, const Tensor &w,
                        const Tensor &gy, const ConvSpec &spec,
                        ScratchArena &scratch, Tensor &gradW,
                        Tensor *gradB, Tensor &gx);

} // namespace kernels
} // namespace se

#endif // SE_KERNELS_CONV_HH
