#include "kernels/conv.hh"

#include "base/logging.hh"
#include "kernels/gemm.hh"
#include "kernels/im2col.hh"

namespace se {
namespace kernels {

namespace {

/** Derived per-call geometry shared by forward and backward. */
struct ConvDims
{
    int64_t n, h, w, oh, ow, cpg, mpg, patch, cols;
};

ConvDims
deriveDims(const Tensor &x, const ConvSpec &sp)
{
    SE_ASSERT(x.ndim() == 4 && x.dim(1) == sp.inCh,
              "conv input shape mismatch");
    ConvDims d;
    d.n = x.dim(0);
    d.h = x.dim(2);
    d.w = x.dim(3);
    const int64_t kext = sp.dil * (sp.kern - 1) + 1;
    d.oh = (d.h + 2 * sp.pad - kext) / sp.stride + 1;
    d.ow = (d.w + 2 * sp.pad - kext) / sp.stride + 1;
    d.cpg = sp.inCh / sp.groups;
    d.mpg = sp.outCh / sp.groups;
    d.patch = d.cpg * sp.kern * sp.kern;
    d.cols = d.oh * d.ow;
    return d;
}

} // namespace

Tensor
conv2dForwardGemm(const Tensor &x, const Tensor &w, const Tensor *bias,
                  const ConvSpec &sp, ScratchArena &scratch)
{
    const ConvDims d = deriveDims(x, sp);
    Tensor y({d.n, sp.outCh, d.oh, d.ow});
    float *col = scratch.colBuffer(d.patch * d.cols);
    const float *xd = x.data();
    const float *wd = w.data();
    const float *bd = bias ? bias->data() : nullptr;
    float *yd = y.data();

    for (int64_t b = 0; b < d.n; ++b) {
        for (int64_t g = 0; g < sp.groups; ++g) {
            im2col(xd + ((b * sp.inCh + g * d.cpg) * d.h * d.w), d.cpg,
                   d.h, d.w, sp.kern, sp.kern, sp.stride, sp.pad,
                   sp.dil, d.oh, d.ow, col);
            gemmRowBiasD(wd + g * d.mpg * d.patch, col,
                         bd ? bd + g * d.mpg : nullptr,
                         yd + ((b * sp.outCh + g * d.mpg) * d.cols),
                         d.mpg, d.patch, d.cols);
        }
    }
    return y;
}

void
conv2dBackwardGemm(const Tensor &x, const Tensor &w, const Tensor &gy,
                   const ConvSpec &sp, ScratchArena &scratch,
                   Tensor &gradW, Tensor *gradB, Tensor &gx)
{
    const ConvDims d = deriveDims(x, sp);
    SE_ASSERT(gy.dim(2) == d.oh && gy.dim(3) == d.ow,
              "conv backward gy shape mismatch");
    float *col = scratch.colBuffer(d.patch * d.cols);
    float *cg = scratch.gradBuffer(d.patch * d.cols);
    // One transposed weight block per group, hoisted out of the batch
    // loop (weights do not change inside one backward pass).
    float *wt = scratch.transposeBuffer(sp.groups * d.patch * d.mpg);
    const float *wd = w.data();
    for (int64_t g = 0; g < sp.groups; ++g)
        transposeF(wd + g * d.mpg * d.patch, d.mpg, d.patch,
                   wt + g * d.patch * d.mpg);

    const float *xd = x.data();
    const float *gyd = gy.data();
    float *gwd = gradW.data();
    float *gxd = gx.data();

    for (int64_t b = 0; b < d.n; ++b) {
        for (int64_t g = 0; g < sp.groups; ++g) {
            const float *gyg =
                gyd + ((b * sp.outCh + g * d.mpg) * d.cols);

            if (gradB) {
                float *gbd = gradB->data() + g * d.mpg;
                for (int64_t mo = 0; mo < d.mpg; ++mo) {
                    float acc = gbd[mo];
                    const float *row = gyg + mo * d.cols;
                    for (int64_t l = 0; l < d.cols; ++l)
                        acc += row[l];
                    gbd[mo] = acc;
                }
            }

            im2col(xd + ((b * sp.inCh + g * d.cpg) * d.h * d.w), d.cpg,
                   d.h, d.w, sp.kern, sp.kern, sp.stride, sp.pad,
                   sp.dil, d.oh, d.ow, col);
            // gradW_g += gy_g * col^T: ascending output positions,
            // continuing each element's float chain across batches —
            // the legacy accumulation order.
            sgemmABt(gyg, col, gwd + g * d.mpg * d.patch, d.mpg,
                     d.cols, d.patch, /*accumulate=*/true);

            // gx: column-space gradient, then fold back.
            sgemm(wt + g * d.patch * d.mpg, gyg, cg, d.patch, d.mpg,
                  d.cols, /*accumulate=*/false);
            col2imAdd(cg, d.cpg, d.h, d.w, sp.kern, sp.kern, sp.stride,
                      sp.pad, sp.dil, d.oh, d.ow,
                      gxd + ((b * sp.inCh + g * d.cpg) * d.h * d.w));
        }
    }
}

} // namespace kernels
} // namespace se
