/**
 * @file
 * Ce-code GEMM: rebuild W = Ce * B straight from the packed 4-bit
 * coefficient codes, without ever materializing the decoded Ce matrix.
 *
 * This is the software mirror of the accelerator's rebuild engine
 * datapath: storage holds {row mask, packed nibbles, alphabet} — the
 * model-file v3 wire form — and the fused kernel decodes each code
 * through a 16-entry alphabet LUT as part of the A-side load inside
 * the ISA-dispatched micro-kernel, so not even a per-panel float
 * staging buffer exists (the accelerator's no-dense-storage mode).
 *
 * Bit-identity contract: decoding a nibble yields exactly the float
 * +-2^p the dense path stores (powers of two are exact), the LUT is
 * built from the same quant::pow2CodeValue rule, and each output
 * element still accumulates over the inner dimension in ascending
 * order with the zero-code skip. gemmCeB is therefore bit-identical
 * to sgemm(decode(Ce), B) — and hence to SeMatrix::reconstruct() —
 * at every ISA level.
 *
 * Model-file v4 (adaptive per-column bit widths) feeds this kernel
 * through a transcode shim rather than a second decode path: the v4
 * loader decodes a piece to SeMatrix once, and serve's CeDirect bind
 * re-packs it with core::packCe into exactly this fixed 4-bit form.
 * Codes are codes — the widths are a wire-format concern — so the
 * kernel's LUT, and with it the bit-identity contract, is untouched.
 */

#ifndef SE_KERNELS_CE_GEMM_HH
#define SE_KERNELS_CE_GEMM_HH

#include <cstdint>

#include "kernels/scratch.hh"
#include "quant/quant.hh"

namespace se {
namespace kernels {

/**
 * out (m x n) = decode(Ce) (m x r) * basis (r x n), fused decode.
 *
 * `row_mask` is a LSB-first bitmap of non-zero Ce rows (ceil(m/8)
 * bytes); `nibbles` packs the non-zero rows' codes two per byte, low
 * nibble first (nibble = 0 for zero, else sign bit 0x8 | exponent
 * code 1..alpha.numLevels — the core::PackedCe layout). Rows absent
 * from the mask decode to zero. The arena is unused by the fused
 * path and kept for call-site compatibility with the staged variant.
 */
void gemmCeB(const uint8_t *row_mask, const uint8_t *nibbles,
             int64_t m, int64_t r, const float *basis, int64_t n,
             const quant::Pow2Alphabet &alpha, float *out,
             ScratchArena &arena);

/**
 * The PR-5 staged variant: decode 128-row panels into the arena and
 * feed sgemm. Kept as the differential/bench baseline the fused
 * kernel is gated against; bit-identical to gemmCeB by construction.
 */
void gemmCeBPanelDecode(const uint8_t *row_mask, const uint8_t *nibbles,
                        int64_t m, int64_t r, const float *basis,
                        int64_t n, const quant::Pow2Alphabet &alpha,
                        float *out, ScratchArena &arena);

} // namespace kernels
} // namespace se

#endif // SE_KERNELS_CE_GEMM_HH
