/**
 * @file
 * Ce-code GEMM: rebuild W = Ce * B straight from the packed 4-bit
 * coefficient codes, without ever materializing the decoded Ce matrix
 * at full size.
 *
 * This is the software mirror of the accelerator's rebuild engine
 * datapath: storage holds {row mask, packed nibbles, alphabet} — the
 * model-file v3 wire form — and only a small per-panel tile of rows
 * is decoded into the ScratchArena before the float GEMM consumes it.
 *
 * Bit-identity contract: decoding a nibble yields exactly the float
 * +-2^p the dense path stores (powers of two are exact), and the
 * panel split never changes any output element's accumulation order
 * (each element still sums over the full inner dimension in ascending
 * order inside sgemm). gemmCeB is therefore bit-identical to
 * sgemm(decode(Ce), B) — and hence to SeMatrix::reconstruct() — for
 * any panel size.
 */

#ifndef SE_KERNELS_CE_GEMM_HH
#define SE_KERNELS_CE_GEMM_HH

#include <cstdint>

#include "kernels/scratch.hh"
#include "quant/quant.hh"

namespace se {
namespace kernels {

/**
 * out (m x n) = decode(Ce) (m x r) * basis (r x n).
 *
 * `row_mask` is a LSB-first bitmap of non-zero Ce rows (ceil(m/8)
 * bytes); `nibbles` packs the non-zero rows' codes two per byte, low
 * nibble first (nibble = 0 for zero, else sign bit 0x8 | exponent
 * code 1..alpha.numLevels — the core::PackedCe layout). Rows absent
 * from the mask decode to zero. Decoding runs per panel into
 * `arena`'s column buffer.
 */
void gemmCeB(const uint8_t *row_mask, const uint8_t *nibbles,
             int64_t m, int64_t r, const float *basis, int64_t n,
             const quant::Pow2Alphabet &alpha, float *out,
             ScratchArena &arena);

} // namespace kernels
} // namespace se

#endif // SE_KERNELS_CE_GEMM_HH
