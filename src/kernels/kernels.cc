#include "kernels/kernels.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "base/logging.hh"

namespace se {
namespace kernels {

namespace {

std::atomic<ConvImpl> g_impl{convImplFromEnv()};

int
threadsFromEnv()
{
    // The RuntimeOptions convention: 0 = serial, negative/unset = one
    // worker per core.
    int threads = -1;
    if (const char *t = std::getenv("SE_THREADS"))
        threads = std::atoi(t);
    if (threads < 0) {
        const unsigned hc = std::thread::hardware_concurrency();
        threads = hc > 0 ? (int)hc : 1;
    }
    return threads < 1 ? 1 : threads;
}

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

bool &
serialFlag()
{
    static thread_local bool flag = false;
    return flag;
}

} // namespace

ConvImpl
convImplFromEnv()
{
    const char *s = std::getenv("SE_CONV_IMPL");
    if (!s || !*s)
        return ConvImpl::Auto;
    if (!std::strcmp(s, "auto"))
        return ConvImpl::Auto;
    if (!std::strcmp(s, "naive"))
        return ConvImpl::Naive;
    if (!std::strcmp(s, "gemm"))
        return ConvImpl::Im2colGemm;
    SE_FATAL("SE_CONV_IMPL must be auto|naive|gemm, got '", s, "'");
}

ConvImpl
defaultConvImpl()
{
    return g_impl.load(std::memory_order_relaxed);
}

void
setDefaultConvImpl(ConvImpl impl)
{
    g_impl.store(impl, std::memory_order_relaxed);
}

bool
useBitIdenticalFastPath(ConvImpl impl)
{
    return impl != ConvImpl::Naive;
}

bool
useReassociatingFastPath(ConvImpl impl)
{
    return impl == ConvImpl::Im2colGemm;
}

ThreadPool &
pool()
{
    std::lock_guard<std::mutex> lk(g_pool_mu);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(threadsFromEnv());
    return *g_pool;
}

void
configureThreads(int threads)
{
    std::lock_guard<std::mutex> lk(g_pool_mu);
    g_pool = std::make_unique<ThreadPool>(threads < 1 ? 1 : threads);
}

SerialScope::SerialScope() : prev_(serialFlag())
{
    serialFlag() = true;
}

SerialScope::~SerialScope()
{
    serialFlag() = prev_;
}

bool
serialScopeActive()
{
    return serialFlag();
}

void
parallelFor(int64_t n, const std::function<void(int64_t)> &fn)
{
    if (n <= 0)
        return;
    if (serialScopeActive()) {
        for (int64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    pool().parallelFor(n, fn);
}

} // namespace kernels
} // namespace se
