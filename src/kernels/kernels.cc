#include "kernels/kernels.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "base/logging.hh"
#include "base/mutex.hh"

namespace se {
namespace kernels {

namespace {

std::atomic<ConvImpl> g_impl{convImplFromEnv()};

int
threadsFromEnv()
{
    // The RuntimeOptions convention: 0 = serial, negative/unset = one
    // worker per core.
    int threads = -1;
    if (const char *t = std::getenv("SE_THREADS"))
        threads = std::atoi(t);
    if (threads < 0) {
        const unsigned hc = std::thread::hardware_concurrency();
        threads = hc > 0 ? (int)hc : 1;
    }
    return threads < 1 ? 1 : threads;
}

base::Mutex g_pool_mu;
/** The live pool. Only the pointer is guarded: pool() hands out a
 *  reference that callers use off-lock, which is safe because a pool
 *  is never destroyed mid-process — configureThreads() retires the
 *  old one into g_retired_pools instead of deleting it under a
 *  caller still fanning work onto it. */
std::unique_ptr<ThreadPool> g_pool SE_GUARDED_BY(g_pool_mu);
/** Replaced pools, kept alive until exit (see above). A test suite
 *  reconfiguring thread counts leaks a handful of idle workers at
 *  most; correctness beats that footprint. */
std::vector<std::unique_ptr<ThreadPool>> g_retired_pools
    SE_GUARDED_BY(g_pool_mu);

bool &
serialFlag()
{
    static thread_local bool flag = false;
    return flag;
}

} // namespace

ConvImpl
convImplFromEnv()
{
    const char *s = std::getenv("SE_CONV_IMPL");
    if (!s || !*s)
        return ConvImpl::Auto;
    if (!std::strcmp(s, "auto"))
        return ConvImpl::Auto;
    if (!std::strcmp(s, "naive"))
        return ConvImpl::Naive;
    if (!std::strcmp(s, "gemm"))
        return ConvImpl::Im2colGemm;
    SE_FATAL("SE_CONV_IMPL must be auto|naive|gemm, got '", s, "'");
}

ConvImpl
defaultConvImpl()
{
    return g_impl.load(std::memory_order_relaxed);
}

void
setDefaultConvImpl(ConvImpl impl)
{
    g_impl.store(impl, std::memory_order_relaxed);
}

bool
useBitIdenticalFastPath(ConvImpl impl)
{
    return impl != ConvImpl::Naive;
}

bool
useReassociatingFastPath(ConvImpl impl)
{
    return impl == ConvImpl::Im2colGemm;
}

ThreadPool &
pool()
{
    base::LockGuard lk(g_pool_mu);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(threadsFromEnv());
    return *g_pool;
}

void
configureThreads(int threads)
{
    base::LockGuard lk(g_pool_mu);
    // Retire, don't destroy: a concurrent parallelFor() may hold the
    // reference pool() returned before this call took the lock, and
    // destroying the pool under it would join workers mid-submit (a
    // use-after-free TSan catches). The old pool drains naturally and
    // idles until process exit.
    if (g_pool)
        g_retired_pools.push_back(std::move(g_pool));
    g_pool = std::make_unique<ThreadPool>(threads < 1 ? 1 : threads);
}

SerialScope::SerialScope() : prev_(serialFlag())
{
    serialFlag() = true;
}

SerialScope::~SerialScope()
{
    serialFlag() = prev_;
}

bool
serialScopeActive()
{
    return serialFlag();
}

void
parallelFor(int64_t n, const std::function<void(int64_t)> &fn)
{
    if (n <= 0)
        return;
    if (serialScopeActive()) {
        for (int64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    pool().parallelFor(n, fn);
}

} // namespace kernels
} // namespace se
