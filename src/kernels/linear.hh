/**
 * @file
 * Linear (fully-connected) lowering onto the blocked GEMM. Both
 * directions are bit-identical to the legacy loops: forward carries
 * the same per-output double accumulator over ascending input
 * features, backward continues the same ascending-batch /
 * ascending-output float chains — so ConvImpl::Auto takes the fast
 * path for Linear in training and serving alike.
 */

#ifndef SE_KERNELS_LINEAR_HH
#define SE_KERNELS_LINEAR_HH

#include "kernels/scratch.hh"
#include "tensor/tensor.hh"

namespace se {
namespace kernels {

/**
 * y = x W^T + bias for x (N, in), w (out, in); bias may be null.
 * Scratch holds the W transpose used on batched inputs.
 */
Tensor linearForwardGemm(const Tensor &x, const Tensor &w,
                         const Tensor *bias, ScratchArena &scratch);

/**
 * Backward against the cached input: accumulates into gradW (and
 * gradB when non-null), writes the input gradient into gx (must come
 * in zero-filled, shaped like x). Scratch holds the gy transpose.
 */
void linearBackwardGemm(const Tensor &x, const Tensor &w,
                        const Tensor &gy, ScratchArena &scratch,
                        Tensor &gradW, Tensor *gradB, Tensor &gx);

} // namespace kernels
} // namespace se

#endif // SE_KERNELS_LINEAR_HH
