#include "kernels/dispatch.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "base/logging.hh"
#include "kernels/dispatch_variants.hh"
#include "kernels/kernels.hh"

namespace se {
namespace kernels {

namespace {

/** Register-tile width the column panels are aligned to. */
constexpr int64_t kNr = 8;

/**
 * Multiply count below which a GEMM stays inline: the task plumbing
 * costs microseconds, so only panels worth >= ~0.5 MFLOP fan out.
 * The ALS solves and Ce*B slices (k or n of a few units) never do.
 */
constexpr int64_t kParallelMults = 1 << 19;

// ----------------------------------------------- scalar micro-kernels
//
// The reference rounding sequence every SIMD variant must reproduce
// byte for byte: per output element, ascending-k float chain with a
// round after every add, zero entries of A skipped.

/** sgemm over the column range [j0, j1). */
void
sgemmPanelScalar(const float *__restrict a, const float *__restrict b,
                 float *__restrict c, int64_t m, int64_t k, int64_t n,
                 bool accumulate, int64_t j0, int64_t j1)
{
    int64_t jt = j0;
    for (; jt + kNr <= j1; jt += kNr) {
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * k;
            float *ci = c + i * n + jt;
            float acc[kNr];
            for (int jj = 0; jj < kNr; ++jj)
                acc[jj] = accumulate ? ci[jj] : 0.0f;
            const float *bp = b + jt;
            for (int64_t p = 0; p < k; ++p, bp += n) {
                const float av = ai[p];
                if (av == 0.0f)
                    continue;
                for (int jj = 0; jj < kNr; ++jj)
                    acc[jj] += av * bp[jj];
            }
            for (int jj = 0; jj < kNr; ++jj)
                ci[jj] = acc[jj];
        }
    }
    for (; jt < j1; ++jt) {  // remainder columns
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * k;
            float acc = accumulate ? c[i * n + jt] : 0.0f;
            for (int64_t p = 0; p < k; ++p) {
                const float av = ai[p];
                if (av != 0.0f)
                    acc += av * b[p * n + jt];
            }
            c[i * n + jt] = acc;
        }
    }
}

/** sgemmABt over the B-row (output column) range [j0, j1). */
void
sgemmABtPanelScalar(const float *__restrict a, const float *__restrict b,
                    float *__restrict c, int64_t m, int64_t l, int64_t n,
                    bool accumulate, int64_t j0, int64_t j1)
{
    int64_t jt = j0;
    for (; jt + kNr <= j1; jt += kNr) {
        const float *br[kNr];
        for (int jj = 0; jj < kNr; ++jj)
            br[jj] = b + (jt + jj) * l;
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * l;
            float *ci = c + i * n + jt;
            float acc[kNr];
            for (int jj = 0; jj < kNr; ++jj)
                acc[jj] = accumulate ? ci[jj] : 0.0f;
            for (int64_t p = 0; p < l; ++p) {
                const float av = ai[p];
                if (av == 0.0f)
                    continue;
                for (int jj = 0; jj < kNr; ++jj)
                    acc[jj] += av * br[jj][p];
            }
            for (int jj = 0; jj < kNr; ++jj)
                ci[jj] = acc[jj];
        }
    }
    for (; jt < j1; ++jt) {
        const float *bj = b + jt * l;
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * l;
            float acc = accumulate ? c[i * n + jt] : 0.0f;
            for (int64_t p = 0; p < l; ++p) {
                const float av = ai[p];
                if (av != 0.0f)
                    acc += av * bj[p];
            }
            c[i * n + jt] = acc;
        }
    }
}

/** Extract packed nibble `idx` (two codes per byte, low first). */
inline uint8_t
nibbleAt(const uint8_t *nibbles, int64_t idx)
{
    const uint8_t byte = nibbles[idx >> 1];
    return (idx & 1) ? (uint8_t)(byte >> 4) : (uint8_t)(byte & 0xF);
}

/**
 * Fused Ce-code panel: the sgemm row body with the A-side element
 * load replaced by nibble-extract + alphabet-LUT lookup, so no
 * decoded row is ever staged. Masked-off rows write zeros, exactly
 * like a decoded zero row under accumulate=false.
 */
void
gemmCePanelScalar(const uint8_t *row_mask, const uint8_t *nibbles,
                  int64_t m, int64_t r, const float *__restrict basis,
                  int64_t n, const float *__restrict lut,
                  float *__restrict out, int64_t j0, int64_t j1)
{
    int64_t nz_seen = 0;  // non-zero rows before the current row
    for (int64_t row = 0; row < m; ++row) {
        float *crow = out + row * n;
        if (!(row_mask[row >> 3] & (1u << (row & 7)))) {
            std::fill(crow + j0, crow + j1, 0.0f);
            continue;
        }
        const int64_t code0 = nz_seen * r;
        ++nz_seen;
        int64_t jt = j0;
        for (; jt + kNr <= j1; jt += kNr) {
            float acc[kNr] = {};
            const float *bp = basis + jt;
            for (int64_t p = 0; p < r; ++p, bp += n) {
                const float av = lut[nibbleAt(nibbles, code0 + p)];
                if (av == 0.0f)
                    continue;
                for (int jj = 0; jj < kNr; ++jj)
                    acc[jj] += av * bp[jj];
            }
            float *ci = crow + jt;
            for (int jj = 0; jj < kNr; ++jj)
                ci[jj] = acc[jj];
        }
        for (; jt < j1; ++jt) {
            float acc = 0.0f;
            for (int64_t p = 0; p < r; ++p) {
                const float av = lut[nibbleAt(nibbles, code0 + p)];
                if (av != 0.0f)
                    acc += av * basis[p * n + jt];
            }
            crow[jt] = acc;
        }
    }
}

const KernelOps kScalarOps{sgemmPanelScalar, sgemmABtPanelScalar,
                           gemmCePanelScalar};

bool
cpuHasIsa(KernelIsa isa)
{
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    switch (isa) {
    case KernelIsa::Scalar:
        return true;
    case KernelIsa::Sse2:
        return __builtin_cpu_supports("sse2");
    case KernelIsa::Avx2:
        return __builtin_cpu_supports("avx2");
    }
    return false;
#else
    return isa == KernelIsa::Scalar;
#endif
}

KernelIsa
initialIsa()
{
    const char *s = std::getenv("SE_KERNEL_ISA");
    if (!s)
        return detectBestIsa();
    try {
        return parseKernelIsa(s);
    } catch (const std::invalid_argument &e) {
        SE_FATAL(e.what());
    }
}

std::atomic<KernelIsa> &
activeIsaSlot()
{
    static std::atomic<KernelIsa> isa{initialIsa()};
    return isa;
}

} // namespace

const char *
isaName(KernelIsa isa)
{
    switch (isa) {
    case KernelIsa::Scalar:
        return "scalar";
    case KernelIsa::Sse2:
        return "sse2";
    case KernelIsa::Avx2:
        return "avx2";
    }
    return "?";
}

bool
isaSupported(KernelIsa isa)
{
    switch (isa) {
    case KernelIsa::Scalar:
        return true;
    case KernelIsa::Sse2:
        return detail::sse2Ops() != nullptr && cpuHasIsa(isa);
    case KernelIsa::Avx2:
        return detail::avx2Ops() != nullptr && cpuHasIsa(isa);
    }
    return false;
}

std::vector<KernelIsa>
supportedIsas()
{
    std::vector<KernelIsa> out;
    for (KernelIsa isa :
         {KernelIsa::Scalar, KernelIsa::Sse2, KernelIsa::Avx2})
        if (isaSupported(isa))
            out.push_back(isa);
    return out;
}

KernelIsa
detectBestIsa()
{
    if (isaSupported(KernelIsa::Avx2))
        return KernelIsa::Avx2;
    if (isaSupported(KernelIsa::Sse2))
        return KernelIsa::Sse2;
    return KernelIsa::Scalar;
}

KernelIsa
parseKernelIsa(const char *s)
{
    if (!s || !*s || !std::strcmp(s, "auto"))
        return detectBestIsa();
    KernelIsa isa;
    if (!std::strcmp(s, "scalar"))
        isa = KernelIsa::Scalar;
    else if (!std::strcmp(s, "sse2"))
        isa = KernelIsa::Sse2;
    else if (!std::strcmp(s, "avx2"))
        isa = KernelIsa::Avx2;
    else
        throw std::invalid_argument(
            "SE_KERNEL_ISA must be auto|scalar|sse2|avx2, got '" +
            std::string(s) + "'");
    if (!isaSupported(isa))
        throw std::invalid_argument(
            std::string("SE_KERNEL_ISA=") + isaName(isa) +
            " is not supported by this build/CPU");
    return isa;
}

KernelIsa
activeIsa()
{
    return activeIsaSlot().load(std::memory_order_relaxed);
}

void
setActiveIsa(KernelIsa isa)
{
    if (!isaSupported(isa))
        throw std::invalid_argument(
            std::string("kernel ISA ") + isaName(isa) +
            " is not supported by this build/CPU");
    activeIsaSlot().store(isa, std::memory_order_relaxed);
}

const KernelOps &
opsFor(KernelIsa isa)
{
    switch (isa) {
    case KernelIsa::Scalar:
        return kScalarOps;
    case KernelIsa::Sse2:
        if (const KernelOps *o = detail::sse2Ops())
            return *o;
        break;
    case KernelIsa::Avx2:
        if (const KernelOps *o = detail::avx2Ops())
            return *o;
        break;
    }
    throw std::invalid_argument(std::string("kernel ISA ") +
                                isaName(isa) + " is not compiled in");
}

const KernelOps &
ops()
{
    return opsFor(activeIsa());
}

void
forEachColumnPanel(int64_t n, int64_t mults,
                   const std::function<void(int64_t, int64_t)> &panel)
{
    int64_t chunks = 1;
    if (mults >= kParallelMults && !serialScopeActive()) {
        const int64_t tiles = (n + kNr - 1) / kNr;
        chunks = std::min<int64_t>((int64_t)pool().threadCount(), tiles);
    }
    if (chunks <= 1) {
        panel(0, n);
        return;
    }
    const int64_t tiles = (n + kNr - 1) / kNr;
    const int64_t per = (tiles + chunks - 1) / chunks;
    parallelFor(chunks, [&](int64_t ci) {
        const int64_t j0 = ci * per * kNr;
        const int64_t j1 = std::min(n, j0 + per * kNr);
        if (j0 < j1)
            panel(j0, j1);
    });
}

} // namespace kernels
} // namespace se
