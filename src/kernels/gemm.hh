/**
 * @file
 * Cache-blocked, register-tiled, ThreadPool-parallel GEMM kernels.
 *
 * Every kernel preserves the legacy loops' per-element rounding
 * sequence exactly: each output element is accumulated over the inner
 * dimension in ascending order by exactly one worker, float-chain
 * kernels round after every add just like the scalar loops they
 * replace, and double-chain kernels round once on store just like the
 * forward passes' double accumulators. Blocking therefore changes
 * which elements are computed when — never what any element's value
 * is — so the fast paths are bit-identical to the naive ones and
 * thread-count invariant (goldens do not move).
 *
 * Parallelism: the output columns are split into register-tile-aligned
 * panels fanned over kernels::pool() once a matrix is big enough to
 * amortize the task plumbing. Small systems (the ALS solves, Ce*B
 * slices) stay inline.
 */

#ifndef SE_KERNELS_GEMM_HH
#define SE_KERNELS_GEMM_HH

#include "tensor/tensor.hh"

namespace se {
namespace kernels {

/**
 * C (m x n) = [C +] A (m x k) * B (k x n), float accumulator chain in
 * ascending-k order with zero entries of A skipped — the legacy
 * linalg::matmul rounding sequence. accumulate=false overwrites C.
 */
void sgemm(const float *a, const float *b, float *c, int64_t m,
           int64_t k, int64_t n, bool accumulate);

/**
 * C (m x n) = [C +] A (m x l) * B^T with B given (n x l) row-major —
 * the dot-product form used when both operands share their inner
 * dimension layout (gradW = gy * col^T). Float chain, ascending-l,
 * zero entries of A skipped.
 */
void sgemmABt(const float *a, const float *b, float *c, int64_t m,
              int64_t l, int64_t n, bool accumulate);

/**
 * C (m x n) = (float)(rowBias[i] + sum_p A[i][p] * B[p][j]) with a
 * double accumulator per element in ascending-p order — the conv
 * forward rounding sequence (bias first, round once on store).
 * row_bias may be null for a zero start.
 */
void gemmRowBiasD(const float *a, const float *b, const float *row_bias,
                  float *c, int64_t m, int64_t k, int64_t n);

/**
 * C (m x n) = (float)(colBias[j] + sum_p A[i][p] * B[j][p]) with B
 * given (n x k) row-major and a double accumulator per element — the
 * Linear forward y = x W^T + b rounding sequence. col_bias may be
 * null. Dot-product form: no transpose, but the per-p loads scatter
 * across B rows, so prefer gemmColBiasD on batched inputs.
 */
void gemmABtColBiasD(const float *a, const float *b,
                     const float *col_bias, float *c, int64_t m,
                     int64_t k, int64_t n);

/**
 * C (m x n) = (float)(colBias[j] + sum_p A[i][p] * B[p][j]) with B
 * (k x n) row-major — the same rounding sequence as gemmABtColBiasD
 * (ascending-p double chain per element), taken when the caller has
 * materialized B^T so the inner loop streams contiguously.
 */
void gemmColBiasD(const float *a, const float *b, const float *col_bias,
                  float *c, int64_t m, int64_t k, int64_t n);

/** dst (cols x rows) = src^T for a row-major (rows x cols) block. */
void transposeF(const float *src, int64_t rows, int64_t cols,
                float *dst);

/**
 * Tensor wrapper with linalg::matmul semantics (2-D inputs, inner
 * dims must agree) on the blocked kernel; bit-identical to the legacy
 * triple loop.
 */
Tensor gemm(const Tensor &a, const Tensor &b);

} // namespace kernels
} // namespace se

#endif // SE_KERNELS_GEMM_HH
