/**
 * @file
 * Internal registry hooks between dispatch.cc and the per-ISA
 * translation units. Each variant TU is compiled unconditionally but
 * returns nullptr when its ISA was not available at compile time
 * (non-x86 target, or the compiler lacking -mavx2), so the dispatch
 * table degrades gracefully instead of breaking the link.
 */

#ifndef SE_KERNELS_DISPATCH_VARIANTS_HH
#define SE_KERNELS_DISPATCH_VARIANTS_HH

#include "kernels/dispatch.hh"

namespace se {
namespace kernels {
namespace detail {

/** SSE2 variant table, or nullptr when not compiled in. */
const KernelOps *sse2Ops();

/** AVX2 variant table, or nullptr when not compiled in. */
const KernelOps *avx2Ops();

} // namespace detail
} // namespace kernels
} // namespace se

#endif // SE_KERNELS_DISPATCH_VARIANTS_HH
