/**
 * @file
 * SSE2 micro-kernel variants: 128-bit register tiles (8 columns as
 * two XMM accumulators, two A rows per pass). Lanes are distinct
 * output elements, each still accumulated in ascending-k order with a
 * round after every add, and the A-side zero-skip is kept per row —
 * so every byte matches the scalar reference. No FMA exists at this
 * ISA level, so the mul-round-add-round contract holds by
 * construction.
 */

#include "kernels/dispatch_variants.hh"

#ifdef __SSE2__

#include <emmintrin.h>

#include <algorithm>
#include <vector>

namespace se {
namespace kernels {
namespace detail {

namespace {

constexpr int64_t kTile = 8;  // columns per register tile (2 x XMM)

/** Scalar remainder columns [jt, j1) — the reference loop verbatim. */
inline void
sgemmTail(const float *a, const float *b, float *c, int64_t m,
          int64_t k, int64_t n, bool accumulate, int64_t jt, int64_t j1)
{
    for (; jt < j1; ++jt) {
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * k;
            float acc = accumulate ? c[i * n + jt] : 0.0f;
            for (int64_t p = 0; p < k; ++p) {
                const float av = ai[p];
                if (av != 0.0f)
                    acc += av * b[p * n + jt];
            }
            c[i * n + jt] = acc;
        }
    }
}

void
sgemmPanelSse2(const float *__restrict a, const float *__restrict b,
               float *__restrict c, int64_t m, int64_t k, int64_t n,
               bool accumulate, int64_t j0, int64_t j1)
{
    int64_t jt = j0;
    for (; jt + kTile <= j1; jt += kTile) {
        int64_t i = 0;
        for (; i + 2 <= m; i += 2) {
            const float *a0 = a + i * k;
            const float *a1 = a0 + k;
            float *c0 = c + i * n + jt;
            float *c1 = c0 + n;
            __m128 acc00, acc01, acc10, acc11;
            if (accumulate) {
                acc00 = _mm_loadu_ps(c0);
                acc01 = _mm_loadu_ps(c0 + 4);
                acc10 = _mm_loadu_ps(c1);
                acc11 = _mm_loadu_ps(c1 + 4);
            } else {
                acc00 = acc01 = acc10 = acc11 = _mm_setzero_ps();
            }
            const float *bp = b + jt;
            for (int64_t p = 0; p < k; ++p, bp += n) {
                const float av0 = a0[p];
                const float av1 = a1[p];
                if (av0 == 0.0f && av1 == 0.0f)
                    continue;
                const __m128 b0 = _mm_loadu_ps(bp);
                const __m128 b1 = _mm_loadu_ps(bp + 4);
                if (av0 != 0.0f) {
                    const __m128 va = _mm_set1_ps(av0);
                    acc00 = _mm_add_ps(acc00, _mm_mul_ps(va, b0));
                    acc01 = _mm_add_ps(acc01, _mm_mul_ps(va, b1));
                }
                if (av1 != 0.0f) {
                    const __m128 va = _mm_set1_ps(av1);
                    acc10 = _mm_add_ps(acc10, _mm_mul_ps(va, b0));
                    acc11 = _mm_add_ps(acc11, _mm_mul_ps(va, b1));
                }
            }
            _mm_storeu_ps(c0, acc00);
            _mm_storeu_ps(c0 + 4, acc01);
            _mm_storeu_ps(c1, acc10);
            _mm_storeu_ps(c1 + 4, acc11);
        }
        if (i < m) {
            const float *ai = a + i * k;
            float *ci = c + i * n + jt;
            __m128 acc0, acc1;
            if (accumulate) {
                acc0 = _mm_loadu_ps(ci);
                acc1 = _mm_loadu_ps(ci + 4);
            } else {
                acc0 = acc1 = _mm_setzero_ps();
            }
            const float *bp = b + jt;
            for (int64_t p = 0; p < k; ++p, bp += n) {
                const float av = ai[p];
                if (av == 0.0f)
                    continue;
                const __m128 va = _mm_set1_ps(av);
                acc0 = _mm_add_ps(acc0,
                                  _mm_mul_ps(va, _mm_loadu_ps(bp)));
                acc1 = _mm_add_ps(acc1,
                                  _mm_mul_ps(va, _mm_loadu_ps(bp + 4)));
            }
            _mm_storeu_ps(ci, acc0);
            _mm_storeu_ps(ci + 4, acc1);
        }
    }
    sgemmTail(a, b, c, m, k, n, accumulate, jt, j1);
}

/**
 * Per-thread pack buffer: one kTile-wide strip of B transposed so the
 * inner loop streams contiguously. Packing moves values, it never
 * re-associates them, so results are unchanged.
 */
std::vector<float> &
packBuffer()
{
    static thread_local std::vector<float> buf;
    return buf;
}

void
sgemmABtPanelSse2(const float *__restrict a, const float *__restrict b,
                  float *__restrict c, int64_t m, int64_t l, int64_t n,
                  bool accumulate, int64_t j0, int64_t j1)
{
    std::vector<float> &pack = packBuffer();
    if ((int64_t)pack.size() < l * kTile)
        pack.resize((size_t)(l * kTile));
    int64_t jt = j0;
    for (; jt + kTile <= j1; jt += kTile) {
        for (int jj = 0; jj < kTile; ++jj) {
            const float *bj = b + (jt + jj) * l;
            for (int64_t p = 0; p < l; ++p)
                pack[(size_t)(p * kTile + jj)] = bj[p];
        }
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * l;
            float *ci = c + i * n + jt;
            __m128 acc0, acc1;
            if (accumulate) {
                acc0 = _mm_loadu_ps(ci);
                acc1 = _mm_loadu_ps(ci + 4);
            } else {
                acc0 = acc1 = _mm_setzero_ps();
            }
            const float *bp = pack.data();
            for (int64_t p = 0; p < l; ++p, bp += kTile) {
                const float av = ai[p];
                if (av == 0.0f)
                    continue;
                const __m128 va = _mm_set1_ps(av);
                acc0 = _mm_add_ps(acc0,
                                  _mm_mul_ps(va, _mm_loadu_ps(bp)));
                acc1 = _mm_add_ps(acc1,
                                  _mm_mul_ps(va, _mm_loadu_ps(bp + 4)));
            }
            _mm_storeu_ps(ci, acc0);
            _mm_storeu_ps(ci + 4, acc1);
        }
    }
    for (; jt < j1; ++jt) {
        const float *bj = b + jt * l;
        for (int64_t i = 0; i < m; ++i) {
            const float *ai = a + i * l;
            float acc = accumulate ? c[i * n + jt] : 0.0f;
            for (int64_t p = 0; p < l; ++p) {
                const float av = ai[p];
                if (av != 0.0f)
                    acc += av * bj[p];
            }
            c[i * n + jt] = acc;
        }
    }
}

inline uint8_t
nibbleAt(const uint8_t *nibbles, int64_t idx)
{
    const uint8_t byte = nibbles[idx >> 1];
    return (idx & 1) ? (uint8_t)(byte >> 4) : (uint8_t)(byte & 0xF);
}

void
gemmCePanelSse2(const uint8_t *row_mask, const uint8_t *nibbles,
                int64_t m, int64_t r, const float *__restrict basis,
                int64_t n, const float *__restrict lut,
                float *__restrict out, int64_t j0, int64_t j1)
{
    int64_t nz_seen = 0;
    for (int64_t row = 0; row < m; ++row) {
        float *crow = out + row * n;
        if (!(row_mask[row >> 3] & (1u << (row & 7)))) {
            std::fill(crow + j0, crow + j1, 0.0f);
            continue;
        }
        const int64_t code0 = nz_seen * r;
        ++nz_seen;
        int64_t jt = j0;
        for (; jt + kTile <= j1; jt += kTile) {
            __m128 acc0 = _mm_setzero_ps();
            __m128 acc1 = _mm_setzero_ps();
            const float *bp = basis + jt;
            for (int64_t p = 0; p < r; ++p, bp += n) {
                const float av = lut[nibbleAt(nibbles, code0 + p)];
                if (av == 0.0f)
                    continue;
                const __m128 va = _mm_set1_ps(av);
                acc0 = _mm_add_ps(acc0,
                                  _mm_mul_ps(va, _mm_loadu_ps(bp)));
                acc1 = _mm_add_ps(acc1,
                                  _mm_mul_ps(va, _mm_loadu_ps(bp + 4)));
            }
            _mm_storeu_ps(crow + jt, acc0);
            _mm_storeu_ps(crow + jt + 4, acc1);
        }
        for (; jt < j1; ++jt) {
            float acc = 0.0f;
            for (int64_t p = 0; p < r; ++p) {
                const float av = lut[nibbleAt(nibbles, code0 + p)];
                if (av != 0.0f)
                    acc += av * basis[p * n + jt];
            }
            crow[jt] = acc;
        }
    }
}

const KernelOps kSse2Ops{sgemmPanelSse2, sgemmABtPanelSse2,
                         gemmCePanelSse2};

} // namespace

const KernelOps *
sse2Ops()
{
    return &kSse2Ops;
}

} // namespace detail
} // namespace kernels
} // namespace se

#else  // !__SSE2__

namespace se {
namespace kernels {
namespace detail {

const KernelOps *
sse2Ops()
{
    return nullptr;
}

} // namespace detail
} // namespace kernels
} // namespace se

#endif
