/**
 * @file
 * Runtime CPU-feature dispatch for the float-chain micro-kernels.
 *
 * The sgemm/sgemmABt column-panel kernels and the fused Ce-code panel
 * kernel exist in up to three explicitly register-tiled variants —
 * scalar (the reference, byte-for-byte the legacy rounding sequence),
 * SSE2 (4-lane tiles) and AVX2 (8-lane, 2x16 register tiles). The
 * best variant the CPU supports is detected once, and every variant
 * preserves the bit-identity contract: each output element is still
 * accumulated over the inner dimension in ascending order with a
 * round after every multiply-add (SIMD lanes are *different output
 * elements*, never partial sums of one element), and zero entries of
 * A keep the legacy skip so signed zeros and NaN propagation cannot
 * diverge. Fused multiply-add is deliberately never emitted — the
 * AVX2 translation unit is compiled with AVX2 but *not* FMA, because
 * a fused mul+add rounds once where the contract rounds twice.
 *
 * Selection order: SE_KERNEL_ISA (scalar | sse2 | avx2 | auto) if
 * set — rejected loudly when unrecognized or not supported by the
 * running CPU — else the best ISA the CPU reports (AVX2 > SSE2 >
 * scalar). All variants being bit-identical, the knob only ever moves
 * wall-clock.
 */

#ifndef SE_KERNELS_DISPATCH_HH
#define SE_KERNELS_DISPATCH_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace se {
namespace kernels {

/** Instruction-set level of a registered micro-kernel variant. */
enum class KernelIsa {
    Scalar,  ///< plain C++ register tiles (the bit-exact reference)
    Sse2,    ///< 128-bit tiles (x86 baseline)
    Avx2,    ///< 256-bit tiles (no FMA — see file comment)
};

/** Stable lowercase name ("scalar" | "sse2" | "avx2"). */
const char *isaName(KernelIsa isa);

/**
 * Parse an ISA name as used by SE_KERNEL_ISA. "auto" (and "") mean
 * "best supported" and return detectBestIsa(); unknown names throw
 * std::invalid_argument (the strict-env contract), as does requesting
 * a level this build/CPU cannot run.
 */
KernelIsa parseKernelIsa(const char *s);

/** True when this build + CPU can execute the given variant. */
bool isaSupported(KernelIsa isa);

/** Every supported level, scalar first (for differential sweeps). */
std::vector<KernelIsa> supportedIsas();

/** Best level the running CPU supports (never throws). */
KernelIsa detectBestIsa();

/**
 * The process-wide active level: SE_KERNEL_ISA if set (fatal on a bad
 * value — benches/tests that want a catchable error go through
 * RuntimeOptions::fromEnv), else detectBestIsa().
 */
KernelIsa activeIsa();

/**
 * Override the active level (benches, tests, RuntimeOptions).
 * Throws std::invalid_argument if the level is not supported here.
 * Must not race in-flight kernels; results are identical for any
 * level by construction.
 */
void setActiveIsa(KernelIsa isa);

/**
 * One micro-kernel variant: the column-panel bodies dispatched by
 * sgemm / sgemmABt / gemmCeB. Panels are [j0, j1) output-column
 * ranges; every variant computes bit-identical bytes.
 */
struct KernelOps
{
    /** sgemm body: C(m x n) = [C +] A(m x k) B(k x n) over [j0,j1). */
    void (*sgemmPanel)(const float *a, const float *b, float *c,
                       int64_t m, int64_t k, int64_t n, bool accumulate,
                       int64_t j0, int64_t j1);
    /** sgemmABt body: B given (n x l) row-major, over [j0,j1). */
    void (*sgemmABtPanel)(const float *a, const float *b, float *c,
                          int64_t m, int64_t l, int64_t n,
                          bool accumulate, int64_t j0, int64_t j1);
    /**
     * Fused Ce-code body: out(m x n) = decode(Ce)(m x r) * basis over
     * [j0,j1), decoding packed nibbles through the 16-entry alphabet
     * LUT as part of the A-side load — no decoded panel is ever
     * staged. Masked-off rows write zeros.
     */
    void (*gemmCePanel)(const uint8_t *row_mask, const uint8_t *nibbles,
                        int64_t m, int64_t r, const float *basis,
                        int64_t n, const float *lut, float *out,
                        int64_t j0, int64_t j1);
};

/** The variant table for one level (throws if unsupported). */
const KernelOps &opsFor(KernelIsa isa);

/** The variant table for activeIsa(). */
const KernelOps &ops();

/**
 * Split the n output columns into register-tile-aligned panels and
 * fan them over the kernel pool — or run inline when the work is
 * small, a SerialScope is active, or the pool is serial. Each column
 * is owned by exactly one panel, so any worker count and any ISA
 * level produce identical bytes. `mults` is the multiply count the
 * parallel threshold is judged on.
 */
void forEachColumnPanel(int64_t n, int64_t mults,
                        const std::function<void(int64_t, int64_t)> &panel);

} // namespace kernels
} // namespace se

#endif // SE_KERNELS_DISPATCH_HH
