/**
 * @file
 * The 28 nm unit-energy model of Table I (plus the DRAM number the
 * paper takes from [50]): all values are pJ per 8-bit access/operation.
 *
 *   DRAM 100  | SRAM 1.36-2.45 | MAC 0.143 | multiplier 0.124
 *   adder 0.019
 *
 * SRAM energy depends on the macro capacity; the paper's data-type
 * driven memory partition exists precisely to keep frequently-accessed
 * data in smaller, cheaper macros, so we interpolate between the two
 * published endpoints on a log scale.
 */

#ifndef SE_SIM_ENERGY_MODEL_HH
#define SE_SIM_ENERGY_MODEL_HH

#include <cstdint>

namespace se {
namespace sim {

/** Unit energies in pJ per 8-bit datum (Table I). */
struct EnergyModel
{
    double dramPj8 = 100.0;   ///< DRAM access per 8 bit [50]
    double sramMinPj8 = 1.36; ///< smallest SRAM macro (2 KB)
    double sramMaxPj8 = 2.45; ///< largest SRAM macro (64 KB+)
    double macPj = 0.143;     ///< 8-bit multiply-accumulate
    double multPj = 0.124;    ///< 8-bit multiply
    double addPj = 0.019;     ///< 8-bit add
    /** Register-file access inside a PE/RE (well below SRAM cost). */
    double rfPj8 = 0.03;
    /** One bit-serial Booth digit step: shift + add + control. */
    double bitSerialDigitPj = 0.022;
    /** One index-selector comparison (1-bit AND + queue push). */
    double indexSelectPj = 0.004;
    /**
     * Array control/clock/static power per cycle for the whole PE
     * array + buffers (~200 mW at 1 GHz). Makes poor utilization cost
     * energy as well as time, which is what the paper's dedicated
     * compact-model design recovers (Fig. 15).
     */
    double arrayControlPjPerCycle = 200.0;

    /** SRAM energy per 8-bit for a macro of `bytes` capacity. */
    double sramPj8(int64_t bytes) const;

    /** Convenience: energy of moving `bits` through DRAM. */
    double
    dramEnergy(int64_t bits) const
    {
        return (double)bits / 8.0 * dramPj8;
    }

    /** Energy of moving `bits` through an SRAM of given capacity. */
    double
    sramEnergy(int64_t bits, int64_t macro_bytes) const
    {
        return (double)bits / 8.0 * sramPj8(macro_bytes);
    }
};

} // namespace sim
} // namespace se

#endif // SE_SIM_ENERGY_MODEL_HH
