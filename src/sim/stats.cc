#include "sim/stats.hh"

namespace se {
namespace sim {

std::string
componentName(Component c)
{
    switch (c) {
      case Component::DramInput: return "DRAM input";
      case Component::DramOutput: return "DRAM output";
      case Component::DramWeight: return "DRAM weight";
      case Component::DramIndex: return "DRAM index";
      case Component::InputGbRead: return "input GB (read)";
      case Component::InputGbWrite: return "input GB (write)";
      case Component::OutputGbRead: return "output GB (read)";
      case Component::OutputGbWrite: return "output GB (write)";
      case Component::WeightGbRead: return "weight GB (read)";
      case Component::WeightGbWrite: return "weight GB (write)";
      case Component::Pe: return "PE";
      case Component::Accumulator: return "Accumulator";
      case Component::Re: return "RE";
      case Component::IndexSelector: return "Index selector";
      case Component::NumComponents: break;
    }
    return "?";
}

} // namespace sim
} // namespace se
