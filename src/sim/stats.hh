/**
 * @file
 * Per-run statistics: cycles plus an energy breakdown over the fourteen
 * components the paper's Fig. 13 stacks (DRAM in/out/weight/index,
 * input/output/weight GB reads and writes, PE, accumulator, RE, index
 * selector).
 */

#ifndef SE_SIM_STATS_HH
#define SE_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <string>

namespace se {
namespace sim {

/** Energy components (matches the Fig. 13 legend). */
enum class Component
{
    DramInput,
    DramOutput,
    DramWeight,
    DramIndex,
    InputGbRead,
    InputGbWrite,
    OutputGbRead,
    OutputGbWrite,
    WeightGbRead,
    WeightGbWrite,
    Pe,
    Accumulator,
    Re,
    IndexSelector,
    NumComponents,
};

/** Display name of a component. */
std::string componentName(Component c);

constexpr size_t kNumComponents =
    (size_t)Component::NumComponents;

/** Cycles + energy breakdown + DRAM traffic for one run. */
struct RunStats
{
    int64_t cycles = 0;
    std::array<double, kNumComponents> energyPj{};
    int64_t dramTrafficBits = 0;  ///< total DRAM traffic

    double &
    energy(Component c)
    {
        return energyPj[(size_t)c];
    }
    double
    energy(Component c) const
    {
        return energyPj[(size_t)c];
    }

    /** Total energy over all components (pJ). */
    double
    totalEnergyPj() const
    {
        double t = 0.0;
        for (double e : energyPj)
            t += e;
        return t;
    }

    /** DRAM accesses counted in bytes (Fig. 11 metric). */
    int64_t
    dramAccessBytes() const
    {
        return dramTrafficBits / 8;
    }

    /** Accumulate another run into this one. */
    RunStats &
    operator+=(const RunStats &o)
    {
        cycles += o.cycles;
        dramTrafficBits += o.dramTrafficBits;
        for (size_t i = 0; i < kNumComponents; ++i)
            energyPj[i] += o.energyPj[i];
        return *this;
    }
};

} // namespace sim
} // namespace se

#endif // SE_SIM_STATS_HH
