/**
 * @file
 * Hardware resource configurations (Table V). All accelerators are
 * normalized to the same computation resources and on-chip SRAM:
 * SmartExchange and Bit-pragmatic use 8K bit-serial multipliers
 * (dimM=64 slices x dimC=16 PE lines x dimF=8 MACs); DianNao, SCNN and
 * Cambricon-X use the equivalent 1K 8-bit parallel multipliers.
 */

#ifndef SE_SIM_CONFIG_HH
#define SE_SIM_CONFIG_HH

#include <cstdint>

namespace se {
namespace sim {

/** PE-array and buffer geometry for one accelerator instance. */
struct ArrayConfig
{
    // --- compute -------------------------------------------------------
    int64_t dimM = 64;  ///< PE slices (output channels in parallel)
    int64_t dimC = 16;  ///< PE lines per slice (input channels)
    int64_t dimF = 8;   ///< MACs per PE line (output pixels)
    bool bitSerial = true;  ///< bit-serial (8K) vs parallel (1K) muls

    // --- on-chip storage (Table V) --------------------------------------
    int64_t inputGbBytes = 16 * 1024 * 32;   ///< 16KB x 32 banks
    int64_t inputGbBankBytes = 16 * 1024;
    int64_t outputGbBytes = 2 * 1024 * 2;    ///< 2KB x 2 banks
    int64_t outputGbBankBytes = 2 * 1024;
    int64_t weightBufBytesPerSlice = 2 * 1024 * 2;  ///< 2KB x 2
    int64_t weightBufBankBytes = 2 * 1024;

    // --- bandwidths ------------------------------------------------------
    /** DRAM bytes per cycle (shared by all accelerators). The paper
     *  assumes sufficient DRAM bandwidth for its speedup numbers. */
    double dramBytesPerCycle = 64.0;

    /**
     * Fraction of vector-skipped work that converts into cycle
     * savings: skipped coefficient/activation row pairs leave bubbles
     * in lockstepped PE lines, so latency improves less than energy.
     */
    double vectorSkipCycleEfficiency = 0.75;

    /**
     * Fraction of vector-wise weight sparsity that aligns across the
     * filters processed in parallel, letting the corresponding input
     * rows skip the DRAM fetch as well (channel-pruning-adjacent rows
     * mostly align; isolated pruned rows mostly do not).
     */
    double inputVectorSkipAlignment = 0.6;

    /**
     * Residual DRAM traffic fraction for activation tensors that fit
     * in the input GB: most of such a tensor is retained on chip
     * between layers, with the remainder covering double-buffer
     * evictions and tiling boundaries.
     */
    double onChipRetentionResidual = 0.5;

    /**
     * Bit-serial digit synchronization overhead: lanes sharing a
     * weight must wait for the slowest activation's non-zero digit
     * count, so the effective serial digits exceed the mean.
     */
    double digitSyncOverhead = 1.5;

    /** Parallel 8-bit multipliers this geometry is equivalent to. */
    int64_t
    parallelMultipliers() const
    {
        const int64_t lanes = dimM * dimC * dimF;
        return bitSerial ? lanes / 8 : lanes;
    }

    /** Bit-serial lanes (valid when bitSerial). */
    int64_t
    bitSerialLanes() const
    {
        return dimM * dimC * dimF;
    }

    /** The SmartExchange / Bit-pragmatic configuration (Table V). */
    static ArrayConfig
    bitSerialDefault()
    {
        return ArrayConfig{};
    }

    /** The DianNao / SCNN / Cambricon-X configuration (Table V). */
    static ArrayConfig
    parallelDefault()
    {
        ArrayConfig c;
        c.bitSerial = false;
        c.dimM = 16;
        c.dimC = 8;
        c.dimF = 8;  // 16*8*8 = 1K 8-bit multipliers
        return c;
    }
};

} // namespace sim
} // namespace se

#endif // SE_SIM_CONFIG_HH
