#include "sim/energy_model.hh"

#include <algorithm>
#include <cmath>

namespace se {
namespace sim {

double
EnergyModel::sramPj8(int64_t bytes) const
{
    // Log-linear interpolation between the 2 KB and 64 KB endpoints.
    const double lo = 2.0 * 1024.0, hi = 64.0 * 1024.0;
    const double b = std::clamp((double)bytes, lo, hi);
    const double t = (std::log2(b) - std::log2(lo)) /
                     (std::log2(hi) - std::log2(lo));
    return sramMinPj8 + t * (sramMaxPj8 - sramMinPj8);
}

} // namespace sim
} // namespace se
