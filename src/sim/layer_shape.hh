/**
 * @file
 * Workload descriptors consumed by the accelerator simulators.
 *
 * A LayerShape carries the exact geometry of one DNN layer (the paper's
 * C, M, E, F, R, S, U notation from Section II-A) plus the sparsity
 * statistics the dataflow models need: vector-wise and element-wise
 * weight sparsity from the SmartExchange algorithm, and value/bit-level
 * activation sparsity measured on real forward passes.
 */

#ifndef SE_SIM_LAYER_SHAPE_HH
#define SE_SIM_LAYER_SHAPE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace se {
namespace sim {

/** Layer taxonomy relevant to the dataflow models. */
enum class LayerKind
{
    Conv,           ///< standard 2-D convolution
    DepthwiseConv,  ///< depth-wise convolution (compact models)
    FullyConnected, ///< FC layer
    SqueezeExcite,  ///< the two FC layers of an SE gate
};

/** Geometry and statistics of one layer. */
struct LayerShape
{
    std::string name;
    LayerKind kind = LayerKind::Conv;

    int64_t c = 1;      ///< input channels (C)
    int64_t m = 1;      ///< output channels / filters (M)
    int64_t h = 1;      ///< input feature height
    int64_t w = 1;      ///< input feature width
    int64_t r = 1;      ///< kernel height (R)
    int64_t s = 1;      ///< kernel width (S)
    int64_t stride = 1; ///< stride (U)
    int64_t pad = 0;    ///< zero padding

    // --- sparsity statistics -------------------------------------------
    /** Fraction of zero rows (S-element vectors) in the coefficient
     *  matrix; enables vector-wise skipping (Fig. 3). */
    double weightVectorSparsity = 0.0;
    /** Fraction of zero elements in Ce (storage accounting). */
    double weightElementSparsity = 0.0;
    /** Fraction of channels pruned channel-wise. */
    double channelSparsity = 0.0;
    /** Fraction of zero activation values. */
    double actValueSparsity = 0.0;
    /** Fraction of all-zero activation rows (vector-wise). */
    double actVectorSparsity = 0.0;
    /** Mean non-zero Booth digits per 8-bit activation (<= 4). */
    double actAvgBoothDigits = 4.0;
    /** Mean non-zero plain bits per 8-bit activation (<= 8). */
    double actAvgEssentialBits = 8.0;

    // --- precision ------------------------------------------------------
    int actBits = 8;    ///< activation precision
    int weightBits = 8; ///< dense-weight precision (baselines)
    int coefBits = 4;   ///< Ce precision (SmartExchange)
    int basisBits = 8;  ///< B precision (SmartExchange)

    /** Output feature height (E). */
    int64_t
    outH() const
    {
        return (h + 2 * pad - r) / stride + 1;
    }
    /** Output feature width (F). */
    int64_t
    outW() const
    {
        return (w + 2 * pad - s) / stride + 1;
    }

    /** Number of MAC operations for a dense layer, batch 1. */
    int64_t
    macs() const
    {
        if (kind == LayerKind::FullyConnected ||
            kind == LayerKind::SqueezeExcite)
            return c * m;
        if (kind == LayerKind::DepthwiseConv)
            return m * r * s * outH() * outW();
        return m * c * r * s * outH() * outW();
    }

    /** Number of weight elements. */
    int64_t
    weightCount() const
    {
        if (kind == LayerKind::FullyConnected ||
            kind == LayerKind::SqueezeExcite)
            return c * m;
        if (kind == LayerKind::DepthwiseConv)
            return m * r * s;
        return m * c * r * s;
    }

    /** Number of input activation elements (batch 1). */
    int64_t
    inputCount() const
    {
        if (kind == LayerKind::FullyConnected ||
            kind == LayerKind::SqueezeExcite)
            return c;
        return c * h * w;
    }

    /** Number of output activation elements (batch 1). */
    int64_t
    outputCount() const
    {
        if (kind == LayerKind::FullyConnected ||
            kind == LayerKind::SqueezeExcite)
            return m;
        return m * outH() * outW();
    }
};

/** A full network workload: ordered layers plus a display name. */
struct Workload
{
    std::string name;
    std::string dataset;
    std::vector<LayerShape> layers;

    /** Sum of dense MACs across layers. */
    int64_t
    totalMacs() const
    {
        int64_t t = 0;
        for (const auto &l : layers)
            t += l.macs();
        return t;
    }

    /** Sum of weight elements across layers. */
    int64_t
    totalWeights() const
    {
        int64_t t = 0;
        for (const auto &l : layers)
            t += l.weightCount();
        return t;
    }
};

} // namespace sim
} // namespace se

#endif // SE_SIM_LAYER_SHAPE_HH
