#include "serve/session.hh"

#include "base/clock.hh"

namespace se {
namespace serve {

/** One decomposed layer bound to its shipped pieces. */
struct InferenceSession::BoundLayer
{
    Tensor *weight = nullptr;  ///< live tensor inside net_
    bool convKxK = false;
    int64_t kernelR = 1;
    int64_t kernelS = 1;
    int64_t rowLength = 0;

    struct BoundUnit
    {
        const core::SeMatrix *piece = nullptr;  ///< into *model_
        int64_t filter = 0;
        int64_t rowOffset = 0;
    };
    std::vector<BoundUnit> units;

    bool stale = true;
    bool cacheValid = false;
    Tensor cache;  ///< assembled dense weight (warm-rebuild source)
};

InferenceSession::InferenceSession(
    std::unique_ptr<nn::Sequential> net,
    std::shared_ptr<const std::vector<core::SeLayerRecord>> model,
    const core::SeOptions &se_opts,
    const core::ApplyOptions &apply_opts, SessionOptions opts)
    : net_(std::move(net)), model_(std::move(model)), opts_(opts)
{
    // Re-derive the slice geometry from the live architecture, with
    // pruning disabled (its effect is baked into the coefficients).
    core::ApplyOptions plan_opts = apply_opts;
    plan_opts.channelGammaThreshold = 0.0;
    core::CompressionPlan plan =
        core::planCompression(*net_, se_opts, plan_opts);

    // The bound pieces point into *model_, which the session's
    // shared_ptr keeps alive.
    for (const core::RecordBinding &b :
         core::matchRecordsToPlan(plan, *model_)) {
        const core::PlannedLayer &pl = plan.layers[b.layerIndex];
        BoundLayer bl;
        bl.weight = pl.weight;
        bl.convKxK = pl.convKxK;
        bl.kernelR = pl.kernelR;
        bl.kernelS = pl.kernelS;
        bl.rowLength = pl.rowLength;
        for (size_t k = 0; k < b.unitCount; ++k) {
            const core::DecompUnit &u = plan.units[b.unitBegin + k];
            bl.units.push_back(
                {&b.record->pieces[k], u.filter, u.rowOffset});
        }
        layers_.push_back(std::move(bl));
    }
}

InferenceSession::~InferenceSession() = default;

size_t
InferenceSession::rebuildableLayers() const
{
    return layers_.size();
}

void
InferenceSession::rebuildLayer(BoundLayer &bl)
{
    const auto t0 = SteadyClock::now();
    if (bl.cacheValid && opts_.cacheRebuiltWeights) {
        *bl.weight = bl.cache;  // warm: one dense copy
        ++stats_.warmRebuilds;
    } else {
        // Cold: reconstruct every Ce*B slice and write it back, the
        // same geometry as core::finishCompression.
        Tensor &w = *bl.weight;
        for (const auto &bu : bl.units) {
            Tensor recon = bu.piece->reconstruct();
            if (bl.convKxK) {
                const int64_t r = bl.kernelR, s = bl.kernelS;
                for (int64_t i = 0; i < recon.dim(0); ++i) {
                    const int64_t g = bu.rowOffset + i;
                    for (int64_t ks = 0; ks < s; ++ks)
                        w.at(bu.filter, g / r, g % r, ks) =
                            recon.at(i, ks);
                }
            } else {
                const int64_t s = bl.kernelS, c = bl.rowLength;
                for (int64_t i = 0; i < recon.dim(0); ++i) {
                    const int64_t g = bu.rowOffset + i;
                    for (int64_t k = 0; k < s; ++k) {
                        const int64_t j = g * s + k;
                        if (j < c)
                            w[bu.filter * c + j] = recon.at(i, k);
                    }
                }
            }
        }
        if (opts_.cacheRebuiltWeights) {
            bl.cache = w;
            bl.cacheValid = true;
        }
        ++stats_.coldRebuilds;
    }
    bl.stale = false;
    stats_.rebuildMs += msSince(t0);
}

void
InferenceSession::ensureRebuilt()
{
    for (auto &bl : layers_)
        if (bl.stale)
            rebuildLayer(bl);
}

Tensor
InferenceSession::forward(const Tensor &batch)
{
    if (opts_.rebuildPerCall)
        invalidateWeights();
    ensureRebuilt();
    ++stats_.forwardCalls;
    return net_->forward(batch, /*train=*/false);
}

void
InferenceSession::invalidateWeights()
{
    for (auto &bl : layers_)
        bl.stale = true;
}

void
InferenceSession::clearRebuildCache()
{
    for (auto &bl : layers_) {
        bl.cacheValid = false;
        bl.cache = Tensor();
        bl.stale = true;
    }
}

} // namespace serve
} // namespace se
