#include "serve/session.hh"

#include <stdexcept>

#include "base/clock.hh"
#include "kernels/ce_gemm.hh"
#include "kernels/kernels.hh"
#include "kernels/scratch.hh"

namespace se {
namespace serve {

Shape
sampleShape(const Tensor &t)
{
    if (t.ndim() == 4) {
        if (t.dim(0) != 1)
            throw std::invalid_argument(
                "serve request batch dim must be 1");
        return {t.dim(1), t.dim(2), t.dim(3)};
    }
    return t.shape();
}

/** One decomposed layer bound to its shipped pieces. */
struct InferenceSession::BoundLayer
{
    Tensor *weight = nullptr;  ///< live tensor inside net_
    bool convKxK = false;
    int64_t kernelR = 1;
    int64_t kernelS = 1;
    int64_t rowLength = 0;

    struct BoundUnit
    {
        const core::SeMatrix *piece = nullptr;  ///< into *model_
        int64_t filter = 0;
        int64_t rowOffset = 0;
        /** 4-bit storage form; filled only under CeDirect. */
        core::PackedCe packed;
    };
    std::vector<BoundUnit> units;

    bool stale = true;
    bool cacheValid = false;
    Tensor cache;  ///< assembled dense weight (warm-rebuild source)
    /**
     * CeDirect decode-panel scratch. Per layer, not per session:
     * cold rebuild-all fans the disjoint layers over the kernel
     * pool, so a shared arena would race.
     */
    kernels::ScratchArena arena;
};

InferenceSession::InferenceSession(
    std::unique_ptr<nn::Sequential> net,
    std::shared_ptr<const std::vector<core::SeLayerRecord>> model,
    const core::SeOptions &se_opts,
    const core::ApplyOptions &apply_opts, SessionOptions opts)
    : net_(std::move(net)), model_(std::move(model)), opts_(opts)
{
    // Re-derive the slice geometry from the live architecture, with
    // pruning disabled (its effect is baked into the coefficients).
    core::ApplyOptions plan_opts = apply_opts;
    plan_opts.channelGammaThreshold = 0.0;
    core::CompressionPlan plan =
        core::planCompression(*net_, se_opts, plan_opts);

    // The bound pieces point into *model_, which the session's
    // shared_ptr keeps alive.
    for (const core::RecordBinding &b :
         core::matchRecordsToPlan(plan, *model_)) {
        const core::PlannedLayer &pl = plan.layers[b.layerIndex];
        BoundLayer bl;
        bl.weight = pl.weight;
        bl.convKxK = pl.convKxK;
        bl.kernelR = pl.kernelR;
        bl.kernelS = pl.kernelS;
        bl.rowLength = pl.rowLength;
        for (size_t k = 0; k < b.unitCount; ++k) {
            const core::DecompUnit &u = plan.units[b.unitBegin + k];
            bl.units.push_back(
                {&b.record->pieces[k], u.filter, u.rowOffset, {}});
        }
        layers_.push_back(std::move(bl));
    }

    // v3 dense residual: restore the non-decomposed state the records
    // cannot carry (pruned BN tensors, biases, undecomposed weights)
    // before anything runs. Full congruence is validated — a bundle
    // can never half-apply to a mismatched factory.
    if (opts_.denseState && !opts_.denseState->empty()) {
        std::vector<const Tensor *> decomposed;
        decomposed.reserve(layers_.size());
        for (const BoundLayer &bl : layers_)
            decomposed.push_back(bl.weight);
        core::installDenseState(*net_, *opts_.denseState, decomposed);
    }

    // Pipelined rebuild: map every bound layer to the top-level net
    // child owning its weight tensor, so the stepped forward knows
    // when a lane rebuild must have completed. Matching is by Param
    // pointer (params() recurses into composite children, so a conv
    // nested in a Residual maps to the Residual's child index). An
    // unmappable weight disables pipelining rather than risking a
    // forward through a half-rebuilt layer.
    if (opts_.pipelineRebuild) {
        childOf_.assign(layers_.size(), -1);
        pipelineOk_ = !layers_.empty();
        for (size_t c = 0; c < net_->size(); ++c)
            for (const nn::Param &p : net_->layer(c)->params())
                for (size_t i = 0; i < layers_.size(); ++i)
                    if (p.value == layers_[i].weight)
                        childOf_[i] = (int)c;
        for (int c : childOf_)
            if (c < 0)
                pipelineOk_ = false;
        if (pipelineOk_)
            lane_ = std::make_unique<ThreadPool>(1);
    }

    // CeDirect: keep each piece at the accelerator's storage width.
    // Packing is exact (codes are codes), so this is a one-time
    // transcode, not a quantization step; its cost is the CeDirect
    // cold-start price and lands in stats().packMs.
    if (opts_.weightSource == WeightSource::CeDirect) {
        const auto t0 = SteadyClock::now();
        for (BoundLayer &bl : layers_)
            for (auto &bu : bl.units)
                bu.packed =
                    core::packCe(bu.piece->ce, bu.piece->alphabet);
        stats_.packMs = msSince(t0);
    }
}

InferenceSession::~InferenceSession() = default;

size_t
InferenceSession::rebuildableLayers() const
{
    return layers_.size();
}

bool
InferenceSession::rebuildLayer(BoundLayer &bl)
{
    bool cold;
    if (bl.cacheValid && opts_.cacheRebuiltWeights) {
        *bl.weight = bl.cache;  // warm: one dense copy
        cold = false;
    } else {
        // Cold: reconstruct every Ce*B slice and write it back, the
        // same geometry as core::finishCompression. Under CeDirect
        // the fused gemmCeB decodes the packed 4-bit codes inside the
        // micro-kernel — no staged float panels, the arena stays cold
        // (bit-identical to the dense reconstruct at every ISA).
        Tensor &w = *bl.weight;
        for (const auto &bu : bl.units) {
            Tensor recon;
            if (opts_.weightSource == WeightSource::CeDirect) {
                const core::PackedCe &p = bu.packed;
                const int64_t cols = bu.piece->basis.dim(1);
                recon = Tensor({p.rows, cols});
                kernels::gemmCeB(p.rowMask.data(), p.nibbles.data(),
                                 p.rows, p.cols,
                                 bu.piece->basis.data(), cols,
                                 p.alphabet, recon.data(), bl.arena);
            } else {
                recon = bu.piece->reconstruct();
            }
            if (bl.convKxK) {
                const int64_t r = bl.kernelR, s = bl.kernelS;
                for (int64_t i = 0; i < recon.dim(0); ++i) {
                    const int64_t g = bu.rowOffset + i;
                    for (int64_t ks = 0; ks < s; ++ks)
                        w.at(bu.filter, g / r, g % r, ks) =
                            recon.at(i, ks);
                }
            } else {
                const int64_t s = bl.kernelS, c = bl.rowLength;
                for (int64_t i = 0; i < recon.dim(0); ++i) {
                    const int64_t g = bu.rowOffset + i;
                    for (int64_t k = 0; k < s; ++k) {
                        const int64_t j = g * s + k;
                        if (j < c)
                            w[bu.filter * c + j] = recon.at(i, k);
                    }
                }
            }
        }
        if (opts_.cacheRebuiltWeights) {
            bl.cache = w;
            bl.cacheValid = true;
        }
        cold = true;
    }
    bl.stale = false;
    return cold;
}

void
InferenceSession::ensureRebuilt()
{
    std::vector<size_t> stale;
    for (size_t i = 0; i < layers_.size(); ++i)
        if (layers_[i].stale)
            stale.push_back(i);
    if (stale.empty())
        return;

    // Layers are disjoint (each owns its weight tensor and cache), so
    // cold rebuild-all fans out over the kernel pool. The per-slice
    // Ce*B GEMMs are tiny, so each worker runs its layer serially;
    // stats are folded in index order afterwards, keeping counters
    // and outputs identical for any worker count.
    std::vector<char> cold(stale.size(), 0);
    const auto t0 = SteadyClock::now();
    if (stale.size() > 1 && !kernels::serialScopeActive()) {
        kernels::parallelFor(
            (int64_t)stale.size(), [&](int64_t i) {
                kernels::SerialScope serial;
                cold[(size_t)i] =
                    rebuildLayer(layers_[stale[(size_t)i]]);
            });
    } else {
        for (size_t i = 0; i < stale.size(); ++i)
            cold[i] = rebuildLayer(layers_[stale[i]]);
    }
    for (char c : cold) {
        if (c)
            ++stats_.coldRebuilds;
        else
            ++stats_.warmRebuilds;
    }
    // Wall-clock, not a sum of per-layer times: with a parallel
    // rebuild the layers overlap.
    const double ms = msSince(t0);
    stats_.rebuildMs += ms;
    // An inline rebuild blocks the forward that triggered it for its
    // whole duration — that is exactly the decode stall the pipelined
    // path exists to hide.
    stats_.decodeStallMs += ms;
}

bool
InferenceSession::anyStale() const
{
    for (const BoundLayer &bl : layers_)
        if (bl.stale)
            return true;
    return false;
}

Tensor
InferenceSession::forwardPipelined(const Tensor &batch)
{
    // Group the stale layers by owning net child, in child order:
    // group g's rebuild is launched on the lane while children before
    // its child index run their forwards, and waited on just before
    // that child executes.
    struct Group
    {
        int child = 0;
        std::vector<size_t> layers;
    };
    std::vector<Group> groups;
    for (size_t i = 0; i < layers_.size(); ++i) {
        if (!layers_[i].stale)
            continue;
        const int c = childOf_[i];
        auto it = groups.begin();
        while (it != groups.end() && it->child < c)
            ++it;
        if (it == groups.end() || it->child != c)
            it = groups.insert(it, Group{c, {}});
        it->layers.push_back(i);
    }

    std::vector<char> cold(layers_.size(), 0);
    std::vector<double> groupMs(groups.size(), 0.0);
    std::future<void> fut;
    // The lane task captures locals; if a child forward throws while a
    // rebuild is in flight, the future must be waited before those
    // locals unwind.
    struct LaneJoin
    {
        std::future<void> *fut;
        ~LaneJoin()
        {
            if (fut->valid())
                fut->wait();
        }
    } join{&fut};

    auto launch = [&](size_t gi) {
        fut = lane_->submit([this, &groups, &cold, &groupMs, gi] {
            // The lane already overlaps compute; keep the kernel
            // layer from fanning the tiny per-slice GEMMs out too.
            kernels::SerialScope serial;
            const auto t0 = SteadyClock::now();
            for (size_t li : groups[gi].layers)
                cold[li] = rebuildLayer(layers_[li]);
            groupMs[gi] = msSince(t0);
        });
    };

    if (!groups.empty())
        launch(0);
    size_t next = 0;  // next group to wait for
    Tensor h = batch;
    for (size_t c = 0; c < net_->size(); ++c) {
        if (next < groups.size() &&
            groups[next].child == (int)c) {
            const auto w0 = SteadyClock::now();
            fut.get();  // rethrows a lane rebuild failure
            stats_.decodeStallMs += msSince(w0);
            // Every group after the first (and a first group whose
            // child is not the entry layer) rebuilt while at least
            // one forward ran.
            if (next > 0 || groups[next].child > 0)
                stats_.overlappedRebuilds +=
                    groups[next].layers.size();
            ++next;
            if (next < groups.size())
                launch(next);
        }
        h = net_->layer(c)->forward(h, /*train=*/false);
    }

    for (size_t gi = 0; gi < groups.size(); ++gi) {
        for (size_t li : groups[gi].layers) {
            if (cold[li])
                ++stats_.coldRebuilds;
            else
                ++stats_.warmRebuilds;
        }
        // Lane wall-clock sums to the rebuild work done; the portion
        // forward actually waited for is decodeStallMs, accumulated
        // above.
        stats_.rebuildMs += groupMs[gi];
    }
    ++stats_.forwardCalls;
    return h;
}

Tensor
InferenceSession::forward(const Tensor &batch)
{
    if (opts_.rebuildPerCall)
        invalidateWeights();
    if (lane_ && pipelineOk_ && anyStale())
        return forwardPipelined(batch);
    ensureRebuilt();
    ++stats_.forwardCalls;
    return net_->forward(batch, /*train=*/false);
}

void
InferenceSession::invalidateWeights()
{
    for (auto &bl : layers_)
        bl.stale = true;
}

void
InferenceSession::clearRebuildCache()
{
    for (auto &bl : layers_) {
        bl.cacheValid = false;
        bl.cache = Tensor();
        bl.stale = true;
    }
}

} // namespace serve
} // namespace se
