#include "serve/session.hh"

#include <stdexcept>

#include "base/clock.hh"
#include "kernels/ce_gemm.hh"
#include "kernels/kernels.hh"
#include "kernels/scratch.hh"

namespace se {
namespace serve {

Shape
sampleShape(const Tensor &t)
{
    if (t.ndim() == 4) {
        if (t.dim(0) != 1)
            throw std::invalid_argument(
                "serve request batch dim must be 1");
        return {t.dim(1), t.dim(2), t.dim(3)};
    }
    return t.shape();
}

/** One decomposed layer bound to its shipped pieces. */
struct InferenceSession::BoundLayer
{
    Tensor *weight = nullptr;  ///< live tensor inside net_
    bool convKxK = false;
    int64_t kernelR = 1;
    int64_t kernelS = 1;
    int64_t rowLength = 0;

    struct BoundUnit
    {
        const core::SeMatrix *piece = nullptr;  ///< into *model_
        int64_t filter = 0;
        int64_t rowOffset = 0;
        /** 4-bit storage form; filled only under CeDirect. */
        core::PackedCe packed;
    };
    std::vector<BoundUnit> units;

    bool stale = true;
    bool cacheValid = false;
    Tensor cache;  ///< assembled dense weight (warm-rebuild source)
    /**
     * CeDirect decode-panel scratch. Per layer, not per session:
     * cold rebuild-all fans the disjoint layers over the kernel
     * pool, so a shared arena would race.
     */
    kernels::ScratchArena arena;
};

InferenceSession::InferenceSession(
    std::unique_ptr<nn::Sequential> net,
    std::shared_ptr<const std::vector<core::SeLayerRecord>> model,
    const core::SeOptions &se_opts,
    const core::ApplyOptions &apply_opts, SessionOptions opts)
    : net_(std::move(net)), model_(std::move(model)), opts_(opts)
{
    // Re-derive the slice geometry from the live architecture, with
    // pruning disabled (its effect is baked into the coefficients).
    core::ApplyOptions plan_opts = apply_opts;
    plan_opts.channelGammaThreshold = 0.0;
    core::CompressionPlan plan =
        core::planCompression(*net_, se_opts, plan_opts);

    // The bound pieces point into *model_, which the session's
    // shared_ptr keeps alive.
    for (const core::RecordBinding &b :
         core::matchRecordsToPlan(plan, *model_)) {
        const core::PlannedLayer &pl = plan.layers[b.layerIndex];
        BoundLayer bl;
        bl.weight = pl.weight;
        bl.convKxK = pl.convKxK;
        bl.kernelR = pl.kernelR;
        bl.kernelS = pl.kernelS;
        bl.rowLength = pl.rowLength;
        for (size_t k = 0; k < b.unitCount; ++k) {
            const core::DecompUnit &u = plan.units[b.unitBegin + k];
            bl.units.push_back(
                {&b.record->pieces[k], u.filter, u.rowOffset, {}});
        }
        layers_.push_back(std::move(bl));
    }

    // v3 dense residual: restore the non-decomposed state the records
    // cannot carry (pruned BN tensors, biases, undecomposed weights)
    // before anything runs. Full congruence is validated — a bundle
    // can never half-apply to a mismatched factory.
    if (opts_.denseState && !opts_.denseState->empty()) {
        std::vector<const Tensor *> decomposed;
        decomposed.reserve(layers_.size());
        for (const BoundLayer &bl : layers_)
            decomposed.push_back(bl.weight);
        core::installDenseState(*net_, *opts_.denseState, decomposed);
    }

    // CeDirect: keep each piece at the accelerator's storage width.
    // Packing is exact (codes are codes), so this is a one-time
    // transcode, not a quantization step; its cost is the CeDirect
    // cold-start price and lands in stats().packMs.
    if (opts_.weightSource == WeightSource::CeDirect) {
        const auto t0 = SteadyClock::now();
        for (BoundLayer &bl : layers_)
            for (auto &bu : bl.units)
                bu.packed =
                    core::packCe(bu.piece->ce, bu.piece->alphabet);
        stats_.packMs = msSince(t0);
    }
}

InferenceSession::~InferenceSession() = default;

size_t
InferenceSession::rebuildableLayers() const
{
    return layers_.size();
}

bool
InferenceSession::rebuildLayer(BoundLayer &bl)
{
    bool cold;
    if (bl.cacheValid && opts_.cacheRebuiltWeights) {
        *bl.weight = bl.cache;  // warm: one dense copy
        cold = false;
    } else {
        // Cold: reconstruct every Ce*B slice and write it back, the
        // same geometry as core::finishCompression. Under CeDirect
        // the fused gemmCeB decodes the packed 4-bit codes inside the
        // micro-kernel — no staged float panels, the arena stays cold
        // (bit-identical to the dense reconstruct at every ISA).
        Tensor &w = *bl.weight;
        for (const auto &bu : bl.units) {
            Tensor recon;
            if (opts_.weightSource == WeightSource::CeDirect) {
                const core::PackedCe &p = bu.packed;
                const int64_t cols = bu.piece->basis.dim(1);
                recon = Tensor({p.rows, cols});
                kernels::gemmCeB(p.rowMask.data(), p.nibbles.data(),
                                 p.rows, p.cols,
                                 bu.piece->basis.data(), cols,
                                 p.alphabet, recon.data(), bl.arena);
            } else {
                recon = bu.piece->reconstruct();
            }
            if (bl.convKxK) {
                const int64_t r = bl.kernelR, s = bl.kernelS;
                for (int64_t i = 0; i < recon.dim(0); ++i) {
                    const int64_t g = bu.rowOffset + i;
                    for (int64_t ks = 0; ks < s; ++ks)
                        w.at(bu.filter, g / r, g % r, ks) =
                            recon.at(i, ks);
                }
            } else {
                const int64_t s = bl.kernelS, c = bl.rowLength;
                for (int64_t i = 0; i < recon.dim(0); ++i) {
                    const int64_t g = bu.rowOffset + i;
                    for (int64_t k = 0; k < s; ++k) {
                        const int64_t j = g * s + k;
                        if (j < c)
                            w[bu.filter * c + j] = recon.at(i, k);
                    }
                }
            }
        }
        if (opts_.cacheRebuiltWeights) {
            bl.cache = w;
            bl.cacheValid = true;
        }
        cold = true;
    }
    bl.stale = false;
    return cold;
}

void
InferenceSession::ensureRebuilt()
{
    std::vector<size_t> stale;
    for (size_t i = 0; i < layers_.size(); ++i)
        if (layers_[i].stale)
            stale.push_back(i);
    if (stale.empty())
        return;

    // Layers are disjoint (each owns its weight tensor and cache), so
    // cold rebuild-all fans out over the kernel pool. The per-slice
    // Ce*B GEMMs are tiny, so each worker runs its layer serially;
    // stats are folded in index order afterwards, keeping counters
    // and outputs identical for any worker count.
    std::vector<char> cold(stale.size(), 0);
    const auto t0 = SteadyClock::now();
    if (stale.size() > 1 && !kernels::serialScopeActive()) {
        kernels::parallelFor(
            (int64_t)stale.size(), [&](int64_t i) {
                kernels::SerialScope serial;
                cold[(size_t)i] =
                    rebuildLayer(layers_[stale[(size_t)i]]);
            });
    } else {
        for (size_t i = 0; i < stale.size(); ++i)
            cold[i] = rebuildLayer(layers_[stale[i]]);
    }
    for (char c : cold) {
        if (c)
            ++stats_.coldRebuilds;
        else
            ++stats_.warmRebuilds;
    }
    // Wall-clock, not a sum of per-layer times: with a parallel
    // rebuild the layers overlap.
    stats_.rebuildMs += msSince(t0);
}

Tensor
InferenceSession::forward(const Tensor &batch)
{
    if (opts_.rebuildPerCall)
        invalidateWeights();
    ensureRebuilt();
    ++stats_.forwardCalls;
    return net_->forward(batch, /*train=*/false);
}

void
InferenceSession::invalidateWeights()
{
    for (auto &bl : layers_)
        bl.stale = true;
}

void
InferenceSession::clearRebuildCache()
{
    for (auto &bl : layers_) {
        bl.cacheValid = false;
        bl.cache = Tensor();
        bl.stale = true;
    }
}

} // namespace serve
} // namespace se
