#include "serve/engine.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "base/clock.hh"
#include "base/failpoint.hh"
#include "kernels/kernels.hh"

namespace se {
namespace serve {

namespace {
using Clock = SteadyClock;

/** Nearest-rank percentile of a sorted series. */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const size_t n = sorted.size();
    size_t idx = (size_t)std::ceil(q * (double)n);
    idx = idx > 0 ? idx - 1 : 0;
    return sorted[std::min(idx, n - 1)];
}

} // namespace

ServeEngine::ServeEngine(
    std::shared_ptr<const std::vector<core::SeLayerRecord>> model,
    const NetFactory &factory, const core::SeOptions &se_opts,
    const core::ApplyOptions &apply_opts, ServeOptions opts)
    : opts_(opts), expected_(opts.expectedSample),
      latency_(opts.latencyReservoirCap)
{
    if (opts_.maxBatch < 1)
        opts_.maxBatch = 1;
    if (opts_.flushDeadlineMs < 0.0)
        opts_.flushDeadlineMs = 0.0;
    const int threads = opts_.resolvedThreads();
    const int nrep = threads > 0 ? threads : 1;
    replicas_.reserve((size_t)nrep);
    for (int i = 0; i < nrep; ++i)
        replicas_.push_back(std::make_unique<InferenceSession>(
            factory(), model, se_opts, apply_opts, opts_.session));
    for (size_t i = 0; i < replicas_.size(); ++i)
        freeReplicas_.push_back(i);
    if (threads > 0)
        pool_ = std::make_unique<ThreadPool>(threads);
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

ServeEngine::~ServeEngine()
{
    stop();
}

void
ServeEngine::stop()
{
    base::LockGuard sl(stop_mu_);
    {
        base::LockGuard lk(mu_);
        stopping_ = true;
    }
    cv_.notifyAll();
    if (dispatcher_.joinable())
        dispatcher_.join();
    // The pool destructor runs every already-submitted batch; it must
    // happen here, while the queue/stats members the batches touch
    // are still alive.
    pool_.reset();
}

std::future<Tensor>
ServeEngine::submit(Tensor sample)
{
    Request r;
    r.input = std::move(sample);
    r.enqueued = Clock::now();
    std::future<Tensor> fut = r.promise.get_future();

    // Validate the shape before admission so one malformed request
    // can only ever fail itself, never the batch it would have
    // joined.
    Shape shape;
    std::exception_ptr malformed;
    try {
        shape = sampleShape(r.input);
    } catch (...) {
        malformed = std::current_exception();
    }

    {
        base::LockGuard lk(mu_);
        if (stopping_)
            throw EngineStoppedError(
                "submit() on a stopped ServeEngine");
        if (!malformed) {
            if (expected_.empty()) {
                expected_ = shape;  // first well-formed request locks
            } else if (shape != expected_) {
                try {
                    throw std::invalid_argument(
                        "sample shape does not match the shape this "
                        "engine serves");
                } catch (...) {
                    malformed = std::current_exception();
                }
            }
        }
        if (!malformed) {
            if (opts_.queueCap > 0 &&
                queue_.size() >= opts_.queueCap) {
                {
                    base::LockGuard sk(stats_mu_);
                    ++shed_;
                }
                throw AdmissionError(
                    "serve queue at capacity (" +
                    std::to_string(opts_.queueCap) +
                    "), request shed");
            }
            queue_.push_back(std::move(r));
            ++pending_;
        }
    }
    if (malformed) {
        r.promise.set_exception(malformed);
        base::LockGuard sk(stats_mu_);
        ++rejected_;
        return fut;
    }
    cv_.notifyAll();
    return fut;
}

void
ServeEngine::dispatchLoop()
{
    for (;;) {
        std::vector<Request> batch;
        size_t replica;
        {
            base::LockGuard lk(mu_);
            // Wait for work AND a free replica before forming the
            // batch: while every replica is busy the queue keeps
            // growing, so the batch popped at dispatch time is as
            // large as the backlog allows (adaptive batching).
            for (;;) {
                if (queue_.empty()) {
                    if (stopping_)
                        return;  // nothing left to serve
                    cv_.wait(lk);
                    continue;
                }
                if (freeReplicas_.empty()) {
                    cv_.wait(lk);
                    continue;
                }
                if (stopping_ || drainers_ > 0 ||
                    opts_.flush == FlushPolicy::Greedy ||
                    queue_.size() >= opts_.maxBatch)
                    break;
                if (opts_.flush == FlushPolicy::Deadline) {
                    // Close the batch when the oldest queued request
                    // has aged past the deadline; otherwise sleep at
                    // most until that moment (a notify on new work or
                    // a freed replica re-evaluates sooner).
                    const auto flushAt =
                        queue_.front().enqueued +
                        std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double,
                                                  std::milli>(
                                opts_.flushDeadlineMs));
                    if (Clock::now() >= flushAt)
                        break;
                    cv_.waitUntil(lk, flushAt);
                    continue;
                }
                cv_.wait(lk);  // Full: hold for a complete batch
            }
            replica = freeReplicas_.back();
            freeReplicas_.pop_back();
            const size_t k =
                std::min(queue_.size(), opts_.maxBatch);
            batch.reserve(k);
            for (size_t i = 0; i < k; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
        }
        if (pool_) {
            pool_->submit([this, replica,
                           b = std::move(batch)]() mutable {
                runBatch(replica, b);
                releaseReplica(replica);
            });
        } else {
            runBatch(replica, batch);
            releaseReplica(replica);
        }
    }
}

void
ServeEngine::releaseReplica(size_t idx)
{
    {
        base::LockGuard lk(mu_);
        freeReplicas_.push_back(idx);
    }
    cv_.notifyAll();
}

void
ServeEngine::runBatch(size_t replica, std::vector<Request> &batch)
{
    // Replicas already occupy one core each; keep the kernel layer
    // from fanning GEMM panels out under them and doubling up.
    kernels::SerialScope serial;
    const size_t n = batch.size();
    size_t fulfilled = 0;  // promises already satisfied
    try {
        // Injected faults take the same path as a throwing model
        // forward: unanswered requests fail, the replica survives.
        SE_FAILPOINT("serve_batch_exec");
        // Admission already rejected mismatched shapes; this is an
        // internal invariant, not a reachable request-error path.
        const Shape sample = sampleShape(batch[0].input);
        const int64_t sample_elems = numel(sample);
        for (const Request &r : batch)
            if (sampleShape(r.input) != sample)
                throw std::logic_error(
                    "mixed sample shapes leaked into one serve "
                    "batch");

        Shape in_shape;
        in_shape.push_back((int64_t)n);
        in_shape.insert(in_shape.end(), sample.begin(), sample.end());
        Tensor in(in_shape);
        for (size_t i = 0; i < n; ++i)
            std::memcpy(in.data() + (int64_t)i * sample_elems,
                        batch[i].input.data(),
                        (size_t)sample_elems * sizeof(float));

        Tensor out = replicas_[replica]->forward(in);
        if (out.ndim() < 1 || out.dim(0) != (int64_t)n)
            throw std::runtime_error(
                "model output lost the batch dimension");
        Shape out_sample(out.shape().begin() + 1, out.shape().end());
        if (out_sample.empty())
            out_sample.push_back(1);
        const int64_t out_elems = numel(out_sample);

        // Commit stats BEFORE fulfilling any promise: a caller that
        // has seen its future become ready must also see itself in
        // stats() (a waiter preempting this thread between set_value
        // and a later stats commit used to read requests == 0 after
        // a successful get() — a real flake under machine load).
        {
            base::LockGuard lk(stats_mu_);
            for (size_t i = 0; i < n; ++i)
                latency_.add(msSince(batch[i].enqueued));
            ++batches_;
            batchedRequests_ += n;
        }
        for (size_t i = 0; i < n; ++i) {
            Tensor resp(out_sample);
            std::memcpy(resp.data(),
                        out.data() + (int64_t)i * out_elems,
                        (size_t)out_elems * sizeof(float));
            batch[i].promise.set_value(std::move(resp));
            ++fulfilled;
        }
        // Schedule-perturbation failpoint: armed, the worker sleeps
        // 1ms right after publishing this batch's responses —
        // simulating preemption at the publish instant, the window
        // the stats-before-publish ordering above exists to close.
        if (failpoint::evaluate("serve_publish_delay"))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } catch (...) {
        // Fail only the requests whose promise is still pending —
        // set_exception on a satisfied promise would itself throw,
        // escape this handler and leak the replica.
        for (size_t i = fulfilled; i < n; ++i)
            batch[i].promise.set_exception(std::current_exception());
        base::LockGuard lk(stats_mu_);
        failed_ += n - fulfilled;
    }
    {
        base::LockGuard lk(mu_);
        pending_ -= n;
    }
    cv_.notifyAll();
}

void
ServeEngine::drain()
{
    base::LockGuard lk(mu_);
    // A counter, not a flag: with two concurrent drainers a flag
    // would be reset by whichever caller wakes first, leaving the
    // other stuck behind a Full/Deadline hold.
    ++drainers_;
    cv_.notifyAll();
    while (pending_ != 0)
        cv_.wait(lk);
    --drainers_;
}

ServeStats
ServeEngine::stats() const
{
    std::vector<double> lat;
    ServeStats s;
    {
        base::LockGuard lk(stats_mu_);
        lat = latency_.sortedSample();  // bounded by the reservoir cap
        s.requests = latency_.count();
        s.meanLatencyMs = latency_.mean();
        s.maxMs = latency_.max();
        s.batches = batches_;
        s.failed = failed_;
        s.rejected = rejected_;
        s.shed = shed_;
        s.meanBatchSize =
            batches_ > 0 ? (double)batchedRequests_ / (double)batches_
                         : 0.0;
    }
    s.p50Ms = percentile(lat, 0.50);
    s.p95Ms = percentile(lat, 0.95);
    s.p99Ms = percentile(lat, 0.99);
    return s;
}

} // namespace serve
} // namespace se
