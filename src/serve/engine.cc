#include "serve/engine.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "base/clock.hh"
#include "base/failpoint.hh"
#include "kernels/kernels.hh"

namespace se {
namespace serve {

namespace {
using Clock = SteadyClock;

/** Nearest-rank percentile of a sorted series. */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const size_t n = sorted.size();
    size_t idx = (size_t)std::ceil(q * (double)n);
    idx = idx > 0 ? idx - 1 : 0;
    return sorted[std::min(idx, n - 1)];
}

} // namespace

ServeEngine::ServeEngine(
    std::shared_ptr<const std::vector<core::SeLayerRecord>> model,
    const NetFactory &factory, const core::SeOptions &se_opts,
    const core::ApplyOptions &apply_opts, ServeOptions opts)
    : opts_(opts), expected_(opts.expectedSample),
      latency_(opts.latencyReservoirCap)
{
    if (opts_.maxBatch < 1)
        opts_.maxBatch = 1;
    if (opts_.flushDeadlineMs < 0.0)
        opts_.flushDeadlineMs = 0.0;
    const int threads = opts_.resolvedThreads();
    const int nrep = threads > 0 ? threads : 1;
    replicas_.reserve((size_t)nrep);
    for (int i = 0; i < nrep; ++i)
        replicas_.push_back(std::make_unique<InferenceSession>(
            factory(), model, se_opts, apply_opts, opts_.session));
    for (size_t i = 0; i < replicas_.size(); ++i)
        freeReplicas_.push_back(i);
    if (opts_.pipelineDepth < 1)
        opts_.pipelineDepth = 1;
    if (threads > 0)
        pool_ = std::make_unique<ThreadPool>(threads);
    if (opts_.pipeline) {
        completer_ = std::thread([this] { completerLoop(); });
        dispatcher_ = std::thread([this] { pipelinedDispatchLoop(); });
    } else {
        dispatcher_ = std::thread([this] { dispatchLoop(); });
    }
}

ServeEngine::~ServeEngine()
{
    stop();
}

void
ServeEngine::stop()
{
    base::LockGuard sl(stop_mu_);
    {
        base::LockGuard lk(mu_);
        stopping_ = true;
    }
    cv_.notifyAll();
    if (dispatcher_.joinable())
        dispatcher_.join();
    // Pipelined mode: the completer exits once the dispatcher is done
    // AND every in-flight execute has published (the exec tasks run
    // on the still-alive pool below and notify as they land).
    if (completer_.joinable())
        completer_.join();
    // The pool destructor runs every already-submitted batch; it must
    // happen here, while the queue/stats members the batches touch
    // are still alive.
    pool_.reset();
}

std::future<Tensor>
ServeEngine::submit(Tensor sample)
{
    Request r;
    r.input = std::move(sample);
    r.enqueued = Clock::now();
    std::future<Tensor> fut = r.promise.get_future();

    // Validate the shape before admission so one malformed request
    // can only ever fail itself, never the batch it would have
    // joined.
    Shape shape;
    std::exception_ptr malformed;
    try {
        shape = sampleShape(r.input);
    } catch (...) {
        malformed = std::current_exception();
    }

    {
        base::LockGuard lk(mu_);
        if (stopping_)
            throw EngineStoppedError(
                "submit() on a stopped ServeEngine");
        if (!malformed) {
            if (expected_.empty()) {
                expected_ = shape;  // first well-formed request locks
            } else if (shape != expected_) {
                try {
                    throw std::invalid_argument(
                        "sample shape does not match the shape this "
                        "engine serves");
                } catch (...) {
                    malformed = std::current_exception();
                }
            }
        }
        if (!malformed) {
            if (opts_.queueCap > 0 &&
                queue_.size() >= opts_.queueCap) {
                {
                    base::LockGuard sk(stats_mu_);
                    ++shed_;
                }
                throw AdmissionError(
                    "serve queue at capacity (" +
                    std::to_string(opts_.queueCap) +
                    "), request shed");
            }
            queue_.push_back(std::move(r));
            ++pending_;
        }
    }
    if (malformed) {
        r.promise.set_exception(malformed);
        base::LockGuard sk(stats_mu_);
        ++rejected_;
        return fut;
    }
    cv_.notifyAll();
    return fut;
}

void
ServeEngine::dispatchLoop()
{
    for (;;) {
        std::vector<Request> batch;
        size_t replica;
        {
            base::LockGuard lk(mu_);
            // Wait for work AND a free replica before forming the
            // batch: while every replica is busy the queue keeps
            // growing, so the batch popped at dispatch time is as
            // large as the backlog allows (adaptive batching).
            for (;;) {
                if (queue_.empty()) {
                    if (stopping_)
                        return;  // nothing left to serve
                    cv_.wait(lk);
                    continue;
                }
                if (freeReplicas_.empty()) {
                    cv_.wait(lk);
                    continue;
                }
                if (stopping_ || drainers_ > 0 ||
                    opts_.flush == FlushPolicy::Greedy ||
                    queue_.size() >= opts_.maxBatch)
                    break;
                if (opts_.flush == FlushPolicy::Deadline) {
                    // Close the batch when the oldest queued request
                    // has aged past the deadline; otherwise sleep at
                    // most until that moment (a notify on new work or
                    // a freed replica re-evaluates sooner).
                    const auto flushAt =
                        queue_.front().enqueued +
                        std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double,
                                                  std::milli>(
                                opts_.flushDeadlineMs));
                    if (Clock::now() >= flushAt)
                        break;
                    cv_.waitUntil(lk, flushAt);
                    continue;
                }
                cv_.wait(lk);  // Full: hold for a complete batch
            }
            replica = freeReplicas_.back();
            freeReplicas_.pop_back();
            const size_t k =
                std::min(queue_.size(), opts_.maxBatch);
            batch.reserve(k);
            for (size_t i = 0; i < k; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
        }
        if (pool_) {
            pool_->submit([this, replica,
                           b = std::move(batch)]() mutable {
                runBatch(replica, b);
                releaseReplica(replica);
            });
        } else {
            runBatch(replica, batch);
            releaseReplica(replica);
        }
    }
}

void
ServeEngine::releaseReplica(size_t idx)
{
    {
        base::LockGuard lk(mu_);
        freeReplicas_.push_back(idx);
    }
    cv_.notifyAll();
}

void
ServeEngine::runBatch(size_t replica, std::vector<Request> &batch)
{
    // Replicas already occupy one core each; keep the kernel layer
    // from fanning GEMM panels out under them and doubling up.
    kernels::SerialScope serial;
    const size_t n = batch.size();
    size_t fulfilled = 0;  // promises already satisfied
    try {
        // Injected faults take the same path as a throwing model
        // forward: unanswered requests fail, the replica survives.
        SE_FAILPOINT("serve_batch_exec");
        // Admission already rejected mismatched shapes; this is an
        // internal invariant, not a reachable request-error path.
        const auto f0 = Clock::now();
        const Shape sample = sampleShape(batch[0].input);
        const int64_t sample_elems = numel(sample);
        for (const Request &r : batch)
            if (sampleShape(r.input) != sample)
                throw std::logic_error(
                    "mixed sample shapes leaked into one serve "
                    "batch");

        Shape in_shape;
        in_shape.push_back((int64_t)n);
        in_shape.insert(in_shape.end(), sample.begin(), sample.end());
        Tensor in(in_shape);
        for (size_t i = 0; i < n; ++i)
            std::memcpy(in.data() + (int64_t)i * sample_elems,
                        batch[i].input.data(),
                        (size_t)sample_elems * sizeof(float));
        const double formMs = msSince(f0);

        const auto e0 = Clock::now();
        const double stall0 =
            replicas_[replica]->stats().decodeStallMs;
        Tensor out = replicas_[replica]->forward(in);
        const double stallDelta =
            replicas_[replica]->stats().decodeStallMs - stall0;
        const double execMs = msSince(e0);
        if (out.ndim() < 1 || out.dim(0) != (int64_t)n)
            throw std::runtime_error(
                "model output lost the batch dimension");
        Shape out_sample(out.shape().begin() + 1, out.shape().end());
        if (out_sample.empty())
            out_sample.push_back(1);
        const int64_t out_elems = numel(out_sample);

        // Commit stats BEFORE fulfilling any promise: a caller that
        // has seen its future become ready must also see itself in
        // stats() (a waiter preempting this thread between set_value
        // and a later stats commit used to read requests == 0 after
        // a successful get() — a real flake under machine load).
        const auto c0 = Clock::now();
        {
            base::LockGuard lk(stats_mu_);
            for (size_t i = 0; i < n; ++i)
                latency_.add(msSince(batch[i].enqueued));
            ++batches_;
            batchedRequests_ += n;
            formMs_ += formMs;
            execMs_ += execMs;
            stallMs_ += stallDelta;
        }
        for (size_t i = 0; i < n; ++i) {
            Tensor resp(out_sample);
            std::memcpy(resp.data(),
                        out.data() + (int64_t)i * out_elems,
                        (size_t)out_elems * sizeof(float));
            batch[i].promise.set_value(std::move(resp));
            ++fulfilled;
        }
        // Schedule-perturbation failpoint: armed, the worker sleeps
        // 1ms right after publishing this batch's responses —
        // simulating preemption at the publish instant, the window
        // the stats-before-publish ordering above exists to close.
        if (failpoint::evaluate("serve_publish_delay"))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        {
            base::LockGuard lk(stats_mu_);
            completeMs_ += msSince(c0);
        }
    } catch (...) {
        // Fail only the requests whose promise is still pending —
        // set_exception on a satisfied promise would itself throw,
        // escape this handler and leak the replica.
        for (size_t i = fulfilled; i < n; ++i)
            batch[i].promise.set_exception(std::current_exception());
        base::LockGuard lk(stats_mu_);
        failed_ += n - fulfilled;
    }
    {
        base::LockGuard lk(mu_);
        pending_ -= n;
    }
    cv_.notifyAll();
}

void
ServeEngine::formBatch(FormedBatch &fb, Tensor staging)
{
    // Admission already rejected mismatched shapes; this is an
    // internal invariant, not a reachable request-error path.
    const size_t n = fb.reqs.size();
    const Shape sample = sampleShape(fb.reqs[0].input);
    const int64_t sample_elems = numel(sample);
    for (const Request &r : fb.reqs)
        if (sampleShape(r.input) != sample)
            throw std::logic_error(
                "mixed sample shapes leaked into one serve batch");

    Shape in_shape;
    in_shape.push_back((int64_t)n);
    in_shape.insert(in_shape.end(), sample.begin(), sample.end());
    // Reuse a recycled staging tensor when the shape matches (all
    // full batches of one engine do) — the pipeline's double buffer:
    // this stage writes one buffer while the execute stage reads
    // another.
    if (staging.shape() == in_shape)
        fb.input = std::move(staging);
    else
        fb.input = Tensor(in_shape);
    for (size_t i = 0; i < n; ++i)
        std::memcpy(fb.input.data() + (int64_t)i * sample_elems,
                    fb.reqs[i].input.data(),
                    (size_t)sample_elems * sizeof(float));
}

void
ServeEngine::launchLocked()
{
    while (!formed_.empty() && !freeReplicas_.empty()) {
        const size_t replica = freeReplicas_.back();
        freeReplicas_.pop_back();
        ++executing_;
        pool_->submit([this, replica,
                       fb = std::move(formed_.front())]() mutable {
            execBatch(replica, fb);
        });
        formed_.pop_front();
    }
}

void
ServeEngine::execBatch(size_t replica, FormedBatch &fb)
{
    // Replicas already occupy one core each; keep the kernel layer
    // from fanning GEMM panels out under them and doubling up.
    kernels::SerialScope serial;
    DoneBatch d;
    d.reqs = std::move(fb.reqs);
    const size_t n = d.reqs.size();
    const auto e0 = Clock::now();
    try {
        // Injected faults take the same path as a throwing model
        // forward: the batch lands in done_ carrying the error and
        // the completer fails its requests; the replica survives.
        SE_FAILPOINT("serve_batch_exec");
        const double stall0 =
            replicas_[replica]->stats().decodeStallMs;
        d.out = replicas_[replica]->forward(fb.input);
        d.stallDelta =
            replicas_[replica]->stats().decodeStallMs - stall0;
        if (d.out.ndim() < 1 || d.out.dim(0) != (int64_t)n)
            throw std::runtime_error(
                "model output lost the batch dimension");
    } catch (...) {
        d.err = std::current_exception();
    }
    d.execMs = msSince(e0);
    {
        base::LockGuard lk(mu_);
        // Recycle the input tensor for a future form stage.
        if (stagePool_.size() <
            opts_.pipelineDepth + replicas_.size())
            stagePool_.push_back(std::move(fb.input));
        done_.push_back(std::move(d));
        freeReplicas_.push_back(replica);
        --executing_;
        if (pool_)
            launchLocked();
    }
    cv_.notifyAll();
}

void
ServeEngine::publishBatch(DoneBatch &d)
{
    const auto c0 = Clock::now();
    const size_t n = d.reqs.size();
    size_t fulfilled = 0;  // promises already satisfied
    if (!d.err) {
        try {
            Shape out_sample(d.out.shape().begin() + 1,
                             d.out.shape().end());
            if (out_sample.empty())
                out_sample.push_back(1);
            const int64_t out_elems = numel(out_sample);

            // Commit stats BEFORE fulfilling any promise — the same
            // ordering contract as the serial path: a caller that has
            // seen its future become ready must also see itself in
            // stats().
            {
                base::LockGuard lk(stats_mu_);
                for (size_t i = 0; i < n; ++i)
                    latency_.add(msSince(d.reqs[i].enqueued));
                ++batches_;
                batchedRequests_ += n;
                execMs_ += d.execMs;
                stallMs_ += d.stallDelta;
            }
            for (size_t i = 0; i < n; ++i) {
                Tensor resp(out_sample);
                std::memcpy(resp.data(),
                            d.out.data() + (int64_t)i * out_elems,
                            (size_t)out_elems * sizeof(float));
                d.reqs[i].promise.set_value(std::move(resp));
                ++fulfilled;
            }
            if (failpoint::evaluate("serve_publish_delay"))
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        } catch (...) {
            d.err = std::current_exception();
        }
    }
    if (d.err) {
        // Fail only the requests whose promise is still pending —
        // set_exception on a satisfied promise would itself throw.
        for (size_t i = fulfilled; i < n; ++i)
            d.reqs[i].promise.set_exception(d.err);
        base::LockGuard lk(stats_mu_);
        failed_ += n - fulfilled;
    }
    {
        base::LockGuard lk(stats_mu_);
        completeMs_ += msSince(c0);
    }
}

void
ServeEngine::pipelinedDispatchLoop()
{
    for (;;) {
        std::vector<Request> reqs;
        Tensor staging;
        {
            base::LockGuard lk(mu_);
            for (;;) {
                if (queue_.empty()) {
                    if (stopping_) {
                        dispatcherDone_ = true;
                        cv_.notifyAll();  // release the completer
                        return;
                    }
                    cv_.wait(lk);
                    continue;
                }
                if (formed_.size() >= opts_.pipelineDepth) {
                    // Backpressure: the execute stage drains formed_
                    // and notifies.
                    cv_.wait(lk);
                    continue;
                }
                if (stopping_ || drainers_ > 0 ||
                    opts_.flush == FlushPolicy::Greedy ||
                    queue_.size() >= opts_.maxBatch)
                    break;
                if (opts_.flush == FlushPolicy::Deadline) {
                    const auto flushAt =
                        queue_.front().enqueued +
                        std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double,
                                                  std::milli>(
                                opts_.flushDeadlineMs));
                    if (Clock::now() >= flushAt)
                        break;
                    cv_.waitUntil(lk, flushAt);
                    continue;
                }
                cv_.wait(lk);  // Full: hold for a complete batch
            }
            const size_t k =
                std::min(queue_.size(), opts_.maxBatch);
            reqs.reserve(k);
            for (size_t i = 0; i < k; ++i) {
                reqs.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            if (!stagePool_.empty()) {
                staging = std::move(stagePool_.back());
                stagePool_.pop_back();
            }
        }

        // Form OFF-lock: batch t+1 assembles while batch t executes
        // and batch t-1 publishes.
        FormedBatch fb;
        fb.reqs = std::move(reqs);
        std::exception_ptr formErr;
        const auto f0 = Clock::now();
        try {
            formBatch(fb, std::move(staging));
        } catch (...) {
            formErr = std::current_exception();
        }
        const double formMs = msSince(f0);

        bool overlapped = false;
        bool inlineRun = false;
        size_t replica = 0;
        FormedBatch inlineFb;
        {
            base::LockGuard lk(mu_);
            if (formErr) {
                // A failed form skips execute; the completer fails
                // its requests (and keeps publish ordering).
                DoneBatch d;
                d.reqs = std::move(fb.reqs);
                d.err = formErr;
                done_.push_back(std::move(d));
            } else {
                overlapped = executing_ > 0 || !done_.empty();
                formed_.push_back(std::move(fb));
                if (pool_) {
                    launchLocked();
                } else {
                    // threads == 0: execute inline on the dispatcher
                    // (its only replica is free by construction — the
                    // dispatcher itself returned it); the completer
                    // still overlaps publish with the next form.
                    replica = freeReplicas_.back();
                    freeReplicas_.pop_back();
                    ++executing_;
                    inlineFb = std::move(formed_.front());
                    formed_.pop_front();
                    inlineRun = true;
                }
            }
        }
        cv_.notifyAll();
        {
            base::LockGuard sk(stats_mu_);
            formMs_ += formMs;
            if (overlapped)
                ++overlapped_;
        }
        // Schedule-perturbation failpoint for the race wall: armed,
        // the form stage stalls 1ms between hand-offs, shifting every
        // stage boundary relative to stop()/drain() callers.
        if (failpoint::evaluate("pipeline_stage_delay"))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        if (inlineRun)
            execBatch(replica, inlineFb);
    }
}

void
ServeEngine::completerLoop()
{
    for (;;) {
        DoneBatch d;
        {
            base::LockGuard lk(mu_);
            for (;;) {
                if (!done_.empty())
                    break;
                if (dispatcherDone_ && executing_ == 0 &&
                    formed_.empty())
                    return;  // fully drained, stop in progress
                cv_.wait(lk);
            }
            d = std::move(done_.front());
            done_.pop_front();
        }
        publishBatch(d);
        {
            base::LockGuard lk(mu_);
            pending_ -= d.reqs.size();
        }
        cv_.notifyAll();
    }
}

void
ServeEngine::drain()
{
    base::LockGuard lk(mu_);
    // A counter, not a flag: with two concurrent drainers a flag
    // would be reset by whichever caller wakes first, leaving the
    // other stuck behind a Full/Deadline hold.
    ++drainers_;
    cv_.notifyAll();
    while (pending_ != 0)
        cv_.wait(lk);
    --drainers_;
}

ServeStats
ServeEngine::stats() const
{
    std::vector<double> lat;
    ServeStats s;
    {
        base::LockGuard lk(stats_mu_);
        lat = latency_.sortedSample();  // bounded by the reservoir cap
        s.requests = latency_.count();
        s.meanLatencyMs = latency_.mean();
        s.maxMs = latency_.max();
        s.batches = batches_;
        s.failed = failed_;
        s.rejected = rejected_;
        s.shed = shed_;
        s.meanBatchSize =
            batches_ > 0 ? (double)batchedRequests_ / (double)batches_
                         : 0.0;
        s.formMs = formMs_;
        s.execMs = execMs_;
        s.completeMs = completeMs_;
        s.decodeStallMs = stallMs_;
        s.overlappedBatches = overlapped_;
        s.pipelineOccupancy =
            batches_ > 0 ? (double)overlapped_ / (double)batches_
                         : 0.0;
    }
    s.p50Ms = percentile(lat, 0.50);
    s.p95Ms = percentile(lat, 0.95);
    s.p99Ms = percentile(lat, 0.99);
    return s;
}

} // namespace serve
} // namespace se
