#include "serve/front.hh"

#include <algorithm>

namespace se {
namespace serve {

void
ModelRegistry::add(std::string id, ModelEntry entry)
{
    if (id.empty())
        throw std::invalid_argument("model id must be non-empty");
    for (const auto &e : entries_)
        if (e.first == id)
            throw std::invalid_argument("model id '" + id +
                                        "' already registered");
    if (!entry.records)
        throw std::invalid_argument("model '" + id +
                                    "' has no records bundle");
    if (!entry.factory)
        throw std::invalid_argument("model '" + id +
                                    "' has no net factory");
    entries_.emplace_back(std::move(id), std::move(entry));
}

bool
ModelRegistry::contains(const std::string &id) const
{
    for (const auto &e : entries_)
        if (e.first == id)
            return true;
    return false;
}

const ModelEntry &
ModelRegistry::at(const std::string &id) const
{
    for (const auto &e : entries_)
        if (e.first == id)
            return e.second;
    throw UnknownModelError("model '" + id + "' is not registered");
}

std::vector<std::string>
ModelRegistry::ids() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.push_back(e.first);
    return out;
}

ServeFront::ServeFront(const ModelRegistry &registry,
                       ServeOptions opts)
{
    if (registry.size() == 0)
        throw std::invalid_argument(
            "ServeFront needs at least one registered model");
    // Split the worker budget across models instead of multiplying
    // it: N models on a T-thread budget get max(1, T/N) replicas
    // each (threads == 0 keeps every engine inline).
    const int total = opts.resolvedThreads();
    ServeOptions per = opts;
    if (total > 0)
        per.threads =
            std::max(1, total / (int)registry.size());
    ids_ = registry.ids();
    engines_.reserve(ids_.size());
    for (const std::string &id : ids_) {
        const ModelEntry &e = registry.at(id);
        // The entry decides its model's storage: weight source and
        // (when shipped) the v3 dense residual are per-model, so
        // quantized and float engines coexist behind one front.
        ServeOptions eopts = per;
        eopts.session.weightSource = e.weightSource;
        eopts.session.denseState = e.dense;
        engines_.push_back(std::make_unique<ServeEngine>(
            e.records, e.factory, e.seOpts, e.applyOpts, eopts));
    }
}

ModelEntry
makeModelEntry(core::ModelBundle bundle, NetFactory factory,
               const core::SeOptions &se_opts,
               const core::ApplyOptions &apply_opts,
               WeightSource source)
{
    ModelEntry e;
    e.records =
        std::make_shared<const std::vector<core::SeLayerRecord>>(
            std::move(bundle.records));
    e.factory = std::move(factory);
    e.seOpts = se_opts;
    e.applyOpts = apply_opts;
    e.dense =
        std::make_shared<const std::vector<core::DenseTensor>>(
            std::move(bundle.dense));
    e.weightSource = source;
    return e;
}

ServeFront::~ServeFront() = default;

size_t
ServeFront::indexOf(const std::string &modelId) const
{
    for (size_t i = 0; i < ids_.size(); ++i)
        if (ids_[i] == modelId)
            return i;
    throw UnknownModelError("model '" + modelId +
                            "' is not registered");
}

std::future<Tensor>
ServeFront::submit(const std::string &modelId, Tensor sample)
{
    return engines_[indexOf(modelId)]->submit(std::move(sample));
}

void
ServeFront::drain()
{
    for (auto &e : engines_)
        e->drain();
}

void
ServeFront::stop()
{
    for (auto &e : engines_)
        e->stop();
}

ServeStats
ServeFront::stats(const std::string &modelId) const
{
    return engines_[indexOf(modelId)]->stats();
}

ServeStats
ServeFront::aggregateStats() const
{
    ServeStats agg;
    double latWeighted = 0.0;
    double batchWeighted = 0.0;
    for (const auto &e : engines_) {
        const ServeStats s = e->stats();
        agg.requests += s.requests;
        agg.failed += s.failed;
        agg.rejected += s.rejected;
        agg.shed += s.shed;
        agg.batches += s.batches;
        latWeighted += s.meanLatencyMs * (double)s.requests;
        batchWeighted += s.meanBatchSize * (double)s.batches;
        if (s.maxMs > agg.maxMs)
            agg.maxMs = s.maxMs;
    }
    if (agg.requests > 0)
        agg.meanLatencyMs = latWeighted / (double)agg.requests;
    if (agg.batches > 0)
        agg.meanBatchSize = batchWeighted / (double)agg.batches;
    return agg;
}

ServeEngine &
ServeFront::engine(const std::string &modelId)
{
    return *engines_[indexOf(modelId)];
}

int
ServeFront::replicaCount() const
{
    int n = 0;
    for (const auto &e : engines_)
        n += e->replicaCount();
    return n;
}

} // namespace serve
} // namespace se
