#include "serve/front.hh"

#include <algorithm>

#include "core/stream_loader.hh"

namespace se {
namespace serve {

void
ModelRegistry::add(std::string id, ModelEntry entry)
{
    if (id.empty())
        throw std::invalid_argument("model id must be non-empty");
    for (const auto &e : entries_)
        if (e.first == id)
            throw std::invalid_argument("model id '" + id +
                                        "' already registered");
    if (!entry.records && !entry.streamed)
        throw std::invalid_argument("model '" + id +
                                    "' has no records bundle");
    if (!entry.factory)
        throw std::invalid_argument("model '" + id +
                                    "' has no net factory");
    entries_.emplace_back(std::move(id), std::move(entry));
}

bool
ModelRegistry::contains(const std::string &id) const
{
    for (const auto &e : entries_)
        if (e.first == id)
            return true;
    return false;
}

const ModelEntry &
ModelRegistry::at(const std::string &id) const
{
    for (const auto &e : entries_)
        if (e.first == id)
            return e.second;
    throw UnknownModelError("model '" + id + "' is not registered");
}

std::vector<std::string>
ModelRegistry::ids() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.push_back(e.first);
    return out;
}

ServeFront::ServeFront(const ModelRegistry &registry,
                       ServeOptions opts)
{
    if (registry.size() == 0)
        throw std::invalid_argument(
            "ServeFront needs at least one registered model");
    // Split the worker budget across models instead of multiplying
    // it: N models on a T-thread budget get max(1, T/N) replicas
    // each (threads == 0 keeps every engine inline). Streamed models
    // count toward the split even while unbuilt, so a late first
    // submit can't change anyone else's replica count.
    const int total = opts.resolvedThreads();
    perEngineOpts_ = opts;
    if (total > 0)
        perEngineOpts_.threads =
            std::max(1, total / (int)registry.size());
    ids_ = registry.ids();
    entries_.reserve(ids_.size());
    for (const std::string &id : ids_)
        entries_.push_back(registry.at(id));
    engines_.resize(ids_.size());
    // Records-backed entries build eagerly (their pieces are already
    // decoded — deferring would only delay failures). Streamed (v4)
    // entries wait for their first submit; until then the bundle's
    // pieces stay undecoded bytes on disk.
    for (size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].records)
            buildEngineLocked(i);
}

void
ServeFront::buildEngineLocked(size_t i)
{
    const ModelEntry &e = entries_[i];
    // The entry decides its model's storage: weight source and
    // (when shipped) the v3/v4 dense residual are per-model, so
    // quantized and float engines coexist behind one front.
    ServeOptions eopts = perEngineOpts_;
    eopts.session.weightSource = e.weightSource;
    eopts.session.denseState = e.dense;
    // For a streamed entry this records() call is where the bundle's
    // pieces actually decode — the lazy loader's first touch.
    auto records = e.records ? e.records : e.streamed->records();
    engines_[i] = std::make_unique<ServeEngine>(
        records, e.factory, e.seOpts, e.applyOpts, eopts);
}

ServeEngine &
ServeFront::engineAt(size_t i)
{
    std::lock_guard<std::mutex> lock(buildMu_);
    if (!engines_[i]) {
        if (stopped_)
            throw EngineStoppedError(
                "ServeFront is stopped; model '" + ids_[i] +
                "' cannot build its engine");
        buildEngineLocked(i);
    }
    return *engines_[i];
}

ModelEntry
makeModelEntry(core::ModelBundle bundle, NetFactory factory,
               const core::SeOptions &se_opts,
               const core::ApplyOptions &apply_opts,
               WeightSource source)
{
    ModelEntry e;
    e.records =
        std::make_shared<const std::vector<core::SeLayerRecord>>(
            std::move(bundle.records));
    e.factory = std::move(factory);
    e.seOpts = se_opts;
    e.applyOpts = apply_opts;
    e.dense =
        std::make_shared<const std::vector<core::DenseTensor>>(
            std::move(bundle.dense));
    e.weightSource = source;
    return e;
}

ModelEntry
makeModelEntry(std::shared_ptr<core::StreamedModel> streamed,
               NetFactory factory, const core::SeOptions &se_opts,
               const core::ApplyOptions &apply_opts,
               WeightSource source)
{
    if (!streamed)
        throw std::invalid_argument(
            "makeModelEntry: null streamed model");
    ModelEntry e;
    e.factory = std::move(factory);
    e.seOpts = se_opts;
    e.applyOpts = apply_opts;
    // The dense residual lives in the (already validated) meta
    // section: copying it out now costs nothing piece-related and
    // lets replica nets build before any piece decodes.
    e.dense = std::make_shared<const std::vector<core::DenseTensor>>(
        streamed->dense());
    e.weightSource = source;
    e.streamed = std::move(streamed);
    return e;
}

ServeFront::~ServeFront() = default;

size_t
ServeFront::indexOf(const std::string &modelId) const
{
    for (size_t i = 0; i < ids_.size(); ++i)
        if (ids_[i] == modelId)
            return i;
    throw UnknownModelError("model '" + modelId +
                            "' is not registered");
}

std::future<Tensor>
ServeFront::submit(const std::string &modelId, Tensor sample)
{
    return engineAt(indexOf(modelId)).submit(std::move(sample));
}

std::vector<ServeEngine *>
ServeFront::builtEngines() const
{
    // Snapshot under the build lock (engine slots are written by
    // concurrent first submits), then operate outside it so a long
    // drain can't block an unrelated model's engine build.
    std::lock_guard<std::mutex> lock(buildMu_);
    std::vector<ServeEngine *> out;
    out.reserve(engines_.size());
    for (const auto &e : engines_)
        if (e)
            out.push_back(e.get());
    return out;
}

void
ServeFront::drain()
{
    for (ServeEngine *e : builtEngines())
        e->drain();
}

void
ServeFront::stop()
{
    {
        std::lock_guard<std::mutex> lock(buildMu_);
        stopped_ = true;
    }
    for (ServeEngine *e : builtEngines())
        e->stop();
}

ServeStats
ServeFront::stats(const std::string &modelId) const
{
    const size_t i = indexOf(modelId);
    std::lock_guard<std::mutex> lock(buildMu_);
    // An unbuilt streamed engine has by definition served nothing.
    return engines_[i] ? engines_[i]->stats() : ServeStats{};
}

ServeStats
ServeFront::aggregateStats() const
{
    ServeStats agg;
    double latWeighted = 0.0;
    double batchWeighted = 0.0;
    for (const ServeEngine *e : builtEngines()) {
        const ServeStats s = e->stats();
        agg.requests += s.requests;
        agg.failed += s.failed;
        agg.rejected += s.rejected;
        agg.shed += s.shed;
        agg.batches += s.batches;
        latWeighted += s.meanLatencyMs * (double)s.requests;
        batchWeighted += s.meanBatchSize * (double)s.batches;
        if (s.maxMs > agg.maxMs)
            agg.maxMs = s.maxMs;
    }
    if (agg.requests > 0)
        agg.meanLatencyMs = latWeighted / (double)agg.requests;
    if (agg.batches > 0)
        agg.meanBatchSize = batchWeighted / (double)agg.batches;
    return agg;
}

ServeEngine &
ServeFront::engine(const std::string &modelId)
{
    return engineAt(indexOf(modelId));
}

bool
ServeFront::engineBuilt(const std::string &modelId) const
{
    const size_t i = indexOf(modelId);
    std::lock_guard<std::mutex> lock(buildMu_);
    return engines_[i] != nullptr;
}

int
ServeFront::replicaCount() const
{
    int n = 0;
    for (const ServeEngine *e : builtEngines())
        n += e->replicaCount();
    return n;
}

} // namespace serve
} // namespace se
