#include "serve/front.hh"

#include <algorithm>

#include "base/failpoint.hh"
#include "core/stream_loader.hh"

namespace se {
namespace serve {

namespace {

void
validateEntry(const std::string &id, const ModelEntry &entry)
{
    if (!entry.records && !entry.streamed)
        throw std::invalid_argument("model '" + id +
                                    "' has no records bundle");
    if (!entry.factory)
        throw std::invalid_argument("model '" + id +
                                    "' has no net factory");
}

std::string
describeException(std::exception_ptr err)
{
    try {
        std::rethrow_exception(err);
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown error";
    }
}

} // namespace

void
ModelRegistry::add(std::string id, ModelEntry entry)
{
    if (id.empty())
        throw std::invalid_argument("model id must be non-empty");
    for (const auto &e : entries_)
        if (e.id == id)
            throw std::invalid_argument("model id '" + id +
                                        "' already registered");
    validateEntry(id, entry);
    entries_.push_back(Row{std::move(id), std::move(entry), 1});
}

void
ModelRegistry::replace(const std::string &id, ModelEntry entry)
{
    validateEntry(id, entry);
    for (auto &e : entries_)
        if (e.id == id) {
            e.entry = std::move(entry);
            ++e.generation;
            return;
        }
    throw UnknownModelError("model '" + id + "' is not registered");
}

bool
ModelRegistry::contains(const std::string &id) const
{
    for (const auto &e : entries_)
        if (e.id == id)
            return true;
    return false;
}

const ModelEntry &
ModelRegistry::at(const std::string &id) const
{
    for (const auto &e : entries_)
        if (e.id == id)
            return e.entry;
    throw UnknownModelError("model '" + id + "' is not registered");
}

uint64_t
ModelRegistry::generationOf(const std::string &id) const
{
    for (const auto &e : entries_)
        if (e.id == id)
            return e.generation;
    throw UnknownModelError("model '" + id + "' is not registered");
}

std::vector<std::string>
ModelRegistry::ids() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.push_back(e.id);
    return out;
}

ServeFront::ServeFront(const ModelRegistry &registry,
                       ServeOptions opts)
{
    if (registry.size() == 0)
        throw std::invalid_argument(
            "ServeFront needs at least one registered model");
    // Split the worker budget across models instead of multiplying
    // it: N models on a T-thread budget get max(1, T/N) replicas
    // each (threads == 0 keeps every engine inline). Streamed models
    // count toward the split even while unbuilt, so a late first
    // submit can't change anyone else's replica count.
    const int total = opts.resolvedThreads();
    perEngineOpts_ = opts;
    if (total > 0)
        perEngineOpts_.threads =
            std::max(1, total / (int)registry.size());
    ids_ = registry.ids();
    slots_.resize(ids_.size());
    for (size_t i = 0; i < ids_.size(); ++i)
        slots_[i].entry = registry.at(ids_[i]);
    // Records-backed entries build eagerly (their pieces are already
    // decoded — deferring would only delay failures; a construction
    // failure here throws rather than quarantines, because nothing is
    // serving yet and a dead-on-arrival front helps nobody). Streamed
    // (v4) entries wait for their first submit; until then the
    // bundle's pieces stay undecoded bytes on disk.
    for (size_t i = 0; i < slots_.size(); ++i)
        if (slots_[i].entry.records) {
            slots_[i].current = buildGeneration(slots_[i].entry, 1);
            slots_[i].generation = 1;
        }
}

ServeFront::~ServeFront()
{
    stop();
}

std::shared_ptr<ServeFront::Generation>
ServeFront::buildGeneration(const ModelEntry &e, uint64_t number) const
{
    SE_FAILPOINT("serve_engine_build");
    auto gen = std::make_shared<Generation>();
    gen->number = number;
    gen->entry = e;
    // The entry decides its model's storage: weight source and
    // (when shipped) the v3/v4 dense residual are per-model, so
    // quantized and float engines coexist behind one front.
    ServeOptions eopts = perEngineOpts_;
    eopts.session.weightSource = e.weightSource;
    eopts.session.denseState = e.dense;
    // For a streamed entry this records() call is where the bundle's
    // pieces actually decode — the lazy loader's first touch (and
    // where a corrupt piece or the stream_piece_decode failpoint
    // surfaces, quarantining only this model).
    auto records = e.records ? e.records : e.streamed->records();
    gen->engine = std::make_unique<ServeEngine>(
        records, e.factory, e.seOpts, e.applyOpts, eopts);
    return gen;
}

std::shared_ptr<ServeFront::Generation>
ServeFront::generationFor(size_t i)
{
    base::LockGuard lk(mu_);
    for (;;) {
        Slot &s = slots_[i];
        if (stopped_)
            throw EngineStoppedError(
                "ServeFront is stopped; model '" + ids_[i] +
                "' cannot serve");
        if (s.health == ModelHealth::Unhealthy)
            throw ModelUnhealthyError("model '" + ids_[i] +
                                      "' is quarantined: " + s.reason);
        if (s.current)
            return s.current;
        if (s.building) {
            // Someone else's first touch is already standing the
            // engine up; wait for the verdict instead of building a
            // second copy (the old build-under-lock path both
            // double-built here and deadlocked stop() behind a slow
            // decode).
            cv_.wait(lk);
            continue;
        }
        s.building = true;
        break;
    }

    const uint64_t number = slots_[i].generation + 1;
    // Copy the entry while still locked. The building flag does keep
    // every other stand-up (including reloadModel's move-assign of
    // slots_[i].entry) out until we re-lock, but that exclusion is a
    // protocol spanning two functions; the copy makes the off-lock
    // build's safety local and checkable (no slots_ touch off-lock).
    ModelEntry entry = slots_[i].entry;
    lk.unlock();
    std::shared_ptr<Generation> gen;
    std::exception_ptr err;
    try {
        gen = buildGeneration(entry, number);
    } catch (...) {
        err = std::current_exception();
    }
    lk.lock();
    Slot &s = slots_[i];
    s.building = false;
    cv_.notifyAll();
    if (err) {
        s.health = ModelHealth::Unhealthy;
        s.reason = describeException(err);
        throw ModelUnhealthyError("model '" + ids_[i] +
                                  "' is quarantined: " + s.reason);
    }
    if (stopped_) {
        // stop() ran while we were building off-lock: it could not
        // see this engine, so retire it here and refuse like any
        // other post-stop submit.
        lk.unlock();
        gen->engine->stop();
        throw EngineStoppedError("ServeFront is stopped; model '" +
                                 ids_[i] + "' cannot serve");
    }
    s.current = gen;
    s.generation = number;
    s.health = ModelHealth::Healthy;
    s.reason.clear();
    return gen;
}

void
ServeFront::mergeRetiredLocked(Slot &s, const ServeStats &st) const
{
    RetiredStats &r = s.retired;
    r.requests += st.requests;
    r.failed += st.failed;
    r.rejected += st.rejected;
    r.shed += st.shed;
    r.batches += st.batches;
    r.latencyWeighted += st.meanLatencyMs * (double)st.requests;
    r.batchWeighted += st.meanBatchSize * (double)st.batches;
    r.maxMs = std::max(r.maxMs, st.maxMs);
}

void
ServeFront::retireGeneration(size_t i, std::shared_ptr<Generation> gen)
{
    if (!gen || !gen->engine)
        return;
    // stop() answers every request the engine accepted, then refuses;
    // racing submitters see EngineStoppedError and retry on the new
    // generation (see submit()), so retirement drops nothing.
    gen->engine->stop();
    const ServeStats st = gen->engine->stats();
    base::LockGuard lk(mu_);
    mergeRetiredLocked(slots_[i], st);
}

void
ServeFront::reloadModel(const std::string &modelId, ModelEntry entry)
{
    validateEntry(modelId, entry);
    const size_t i = indexOf(modelId);

    base::LockGuard lk(mu_);
    // One stand-up per slot at a time: wait out a racing first-touch
    // build (or another reload) instead of numbering generations
    // against a moving target.
    while (slots_[i].building)
        cv_.wait(lk);
    if (stopped_)
        throw EngineStoppedError(
            "reloadModel() on a stopped ServeFront");
    slots_[i].building = true;
    const uint64_t number = slots_[i].generation + 1;
    lk.unlock();

    // Build generation N+1 entirely off to the side: the live
    // generation keeps serving, untouched, while the new bundle
    // decodes and its engine spins up. Any failure lands here,
    // before anything swapped.
    std::shared_ptr<Generation> gen;
    std::exception_ptr err;
    try {
        gen = buildGeneration(entry, number);
    } catch (...) {
        err = std::current_exception();
    }

    lk.lock();
    Slot &s = slots_[i];
    s.building = false;
    cv_.notifyAll();
    if (err) {
        if (perEngineOpts_.reloadFallback && s.current &&
            s.health == ModelHealth::Healthy) {
            // The previous healthy generation just keeps serving;
            // the operator still learns the reload failed.
            ++s.fallbacks;
            std::rethrow_exception(err);
        }
        s.health = ModelHealth::Unhealthy;
        s.reason = describeException(err);
        auto old = std::move(s.current);
        lk.unlock();
        retireGeneration(i, std::move(old));
        std::rethrow_exception(err);
    }
    if (stopped_) {
        lk.unlock();
        gen->engine->stop();
        throw EngineStoppedError(
            "reloadModel() on a stopped ServeFront");
    }
    auto old = std::move(s.current);
    s.current = std::move(gen);
    s.entry = std::move(entry);
    s.generation = number;
    s.health = ModelHealth::Healthy;
    s.reason.clear();
    lk.unlock();
    // Swap done: new submits already route to N+1. Now retire N —
    // it answers everything it accepted first.
    retireGeneration(i, std::move(old));
}

ModelEntry
makeModelEntry(core::ModelBundle bundle, NetFactory factory,
               const core::SeOptions &se_opts,
               const core::ApplyOptions &apply_opts,
               WeightSource source)
{
    ModelEntry e;
    e.records =
        std::make_shared<const std::vector<core::SeLayerRecord>>(
            std::move(bundle.records));
    e.factory = std::move(factory);
    e.seOpts = se_opts;
    e.applyOpts = apply_opts;
    e.dense =
        std::make_shared<const std::vector<core::DenseTensor>>(
            std::move(bundle.dense));
    e.weightSource = source;
    return e;
}

ModelEntry
makeModelEntry(std::shared_ptr<core::StreamedModel> streamed,
               NetFactory factory, const core::SeOptions &se_opts,
               const core::ApplyOptions &apply_opts,
               WeightSource source)
{
    if (!streamed)
        throw std::invalid_argument(
            "makeModelEntry: null streamed model");
    ModelEntry e;
    e.factory = std::move(factory);
    e.seOpts = se_opts;
    e.applyOpts = apply_opts;
    // The dense residual lives in the (already validated) meta
    // section: copying it out now costs nothing piece-related and
    // lets replica nets build before any piece decodes.
    e.dense = std::make_shared<const std::vector<core::DenseTensor>>(
        streamed->dense());
    e.weightSource = source;
    e.streamed = std::move(streamed);
    return e;
}

size_t
ServeFront::indexOf(const std::string &modelId) const
{
    for (size_t i = 0; i < ids_.size(); ++i)
        if (ids_[i] == modelId)
            return i;
    throw UnknownModelError("model '" + modelId +
                            "' is not registered");
}

std::future<Tensor>
ServeFront::submit(const std::string &modelId, Tensor sample)
{
    const size_t i = indexOf(modelId);
    for (;;) {
        std::shared_ptr<Generation> gen = generationFor(i);
        try {
            // Pass a copy: a submit that loses the race against a
            // generation swap is retried with the original sample.
            return gen->engine->submit(sample);
        } catch (const EngineStoppedError &) {
            base::LockGuard lk(mu_);
            if (slots_[i].current == gen)
                throw;  // the front itself stopped this engine
            // Reload flipped the generation between our snapshot and
            // the enqueue: retry on the new one. This is the
            // zero-dropped-requests half of hot reload.
        }
    }
}

std::vector<std::shared_ptr<ServeFront::Generation>>
ServeFront::builtGenerations() const
{
    // Snapshot under the lock (generations are swapped by concurrent
    // reloads), then operate outside it so a long drain can't block
    // an unrelated model's engine build. The shared_ptrs keep the
    // engines alive across the walk even if a reload retires them.
    base::LockGuard lk(mu_);
    std::vector<std::shared_ptr<Generation>> out;
    out.reserve(slots_.size());
    for (const auto &s : slots_)
        if (s.current && s.current->engine)
            out.push_back(s.current);
    return out;
}

void
ServeFront::drain()
{
    for (const auto &gen : builtGenerations())
        gen->engine->drain();
}

void
ServeFront::stop()
{
    {
        base::LockGuard lk(mu_);
        stopped_ = true;
    }
    // Wake first-touch waiters so they observe stopped_ instead of
    // sleeping on a build that may be about to refuse its engine.
    cv_.notifyAll();
    for (const auto &gen : builtGenerations())
        gen->engine->stop();
}

ServeStats
ServeFront::stats(const std::string &modelId) const
{
    const size_t i = indexOf(modelId);
    std::shared_ptr<Generation> cur;
    RetiredStats retired;
    {
        base::LockGuard lk(mu_);
        cur = slots_[i].current;
        retired = slots_[i].retired;
    }
    // Live generation first: its percentiles are the ones reported
    // (retired reservoirs are gone; counters and means merge).
    ServeStats s = cur && cur->engine ? cur->engine->stats()
                                      : ServeStats{};
    double latWeighted = s.meanLatencyMs * (double)s.requests +
                         retired.latencyWeighted;
    double batchWeighted = s.meanBatchSize * (double)s.batches +
                           retired.batchWeighted;
    s.requests += retired.requests;
    s.failed += retired.failed;
    s.rejected += retired.rejected;
    s.shed += retired.shed;
    s.batches += retired.batches;
    s.maxMs = std::max(s.maxMs, retired.maxMs);
    s.meanLatencyMs =
        s.requests > 0 ? latWeighted / (double)s.requests : 0.0;
    s.meanBatchSize =
        s.batches > 0 ? batchWeighted / (double)s.batches : 0.0;
    return s;
}

ServeStats
ServeFront::aggregateStats() const
{
    ServeStats agg;
    double latWeighted = 0.0;
    double batchWeighted = 0.0;
    for (const std::string &id : ids_) {
        const ServeStats s = stats(id);  // per-model, all generations
        agg.requests += s.requests;
        agg.failed += s.failed;
        agg.rejected += s.rejected;
        agg.shed += s.shed;
        agg.batches += s.batches;
        latWeighted += s.meanLatencyMs * (double)s.requests;
        batchWeighted += s.meanBatchSize * (double)s.batches;
        if (s.maxMs > agg.maxMs)
            agg.maxMs = s.maxMs;
    }
    if (agg.requests > 0)
        agg.meanLatencyMs = latWeighted / (double)agg.requests;
    if (agg.batches > 0)
        agg.meanBatchSize = batchWeighted / (double)agg.batches;
    return agg;
}

ServeEngine &
ServeFront::engine(const std::string &modelId)
{
    return *generationFor(indexOf(modelId))->engine;
}

bool
ServeFront::engineBuilt(const std::string &modelId) const
{
    const size_t i = indexOf(modelId);
    base::LockGuard lk(mu_);
    return slots_[i].current && slots_[i].current->engine;
}

uint64_t
ServeFront::generation(const std::string &modelId) const
{
    const size_t i = indexOf(modelId);
    base::LockGuard lk(mu_);
    return slots_[i].generation;
}

ModelHealth
ServeFront::health(const std::string &modelId) const
{
    const size_t i = indexOf(modelId);
    base::LockGuard lk(mu_);
    return slots_[i].health;
}

uint64_t
ServeFront::reloadFallbacks(const std::string &modelId) const
{
    const size_t i = indexOf(modelId);
    base::LockGuard lk(mu_);
    return slots_[i].fallbacks;
}

int
ServeFront::replicaCount() const
{
    int n = 0;
    for (const auto &gen : builtGenerations())
        n += gen->engine->replicaCount();
    return n;
}

} // namespace serve
} // namespace se
