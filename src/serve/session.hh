/**
 * @file
 * InferenceSession — run inference directly from the shipped
 * SmartExchange form.
 *
 * The paper's deployment story is that the Ce*B form is what lives in
 * storage; dense weights exist only transiently, rebuilt by the
 * accelerator's rebuild engine as tiles stream in. This class is the
 * software mirror: it holds a (shared, immutable) bundle of
 * SeLayerRecord pieces plus a live architecture instance, and
 * materializes W = Ce*B into the live weight tensors on demand.
 *
 * Two policies bracket the paper's storage/compute trade-off:
 *  - cached (default): each layer is rebuilt once, lazily, and a
 *    per-layer copy of the assembled weight is kept so later rebuilds
 *    are a tensor copy instead of per-slice matmuls;
 *  - rebuild-per-call: every forward() re-materializes all weights,
 *    emulating an accelerator that never persists the dense form
 *    (optionally still through the per-layer cache, modelling a warm
 *    on-chip rebuild buffer).
 *
 * A session is single-threaded by design — forward() mutates layer
 * caches. ServeEngine owns one replica per worker. (Internally a
 * cold rebuild-all fans the disjoint layers over the kernel pool;
 * results and counters stay identical for any worker count.)
 *
 * Pipelined rebuild (SessionOptions::pipelineRebuild): instead of
 * rebuilding every stale layer before the first GEMM, forward() walks
 * the net child by child while a one-thread rebuild lane
 * re-materializes the NEXT decomposed layer's W = Ce*B concurrently —
 * layer k+1's packed-Ce decode overlaps layer k's compute, the
 * software mirror of the accelerator's rebuild engine streaming ahead
 * of the PE array. The stepped walk is the same plain loop
 * Sequential::forward runs and each layer's weight is complete before
 * its forward starts, so responses are bit-identical to the serial
 * path; only SessionStats::decodeStallMs (time forward actually
 * blocked on a rebuild) moves. Layer scratch stays race-free because
 * every BoundLayer owns its arena and weight tensor — the lane writes
 * layer k+1's buffers while compute reads layer k's, a double-buffer
 * by construction.
 */

#ifndef SE_SERVE_SESSION_HH
#define SE_SERVE_SESSION_HH

#include <memory>
#include <vector>

#include "base/thread_pool.hh"
#include "core/model_file.hh"
#include "nn/blocks.hh"

namespace se {
namespace serve {

/**
 * Per-sample shape of one serve-request input: a (C, H, W)-style
 * tensor is returned as-is, a 4-D tensor must carry a leading batch
 * dim of 1 (stripped) — anything else throws std::invalid_argument.
 * Shared by ServeEngine's admission check and by callers that want to
 * pre-validate traffic.
 */
Shape sampleShape(const Tensor &t);

/**
 * What the rebuild engine reads W = Ce*B from.
 *
 *  - Dense: each piece's decoded float Ce matrix (the v2-era path).
 *  - CeDirect: the packed 4-bit codes (core::PackedCe — the model
 *    file v3 wire form), decoded per panel into a scratch arena by
 *    kernels::gemmCeB. The stored datapath width reaches the hot
 *    loop, mirroring the accelerator. Responses are bit-identical to
 *    Dense: nibble decode is exact (powers of two) and the panel
 *    split preserves every element's accumulation order, so no
 *    tolerance is needed. Requires a 4-bit alphabet (numLevels <= 7,
 *    i.e. SeOptions::coefBits == 4); binding a wider model throws
 *    core::ModelFileError.
 *
 * CeDirect is wire-format agnostic: bind packs whatever SeMatrix the
 * loader produced, so a v4 bundle's adaptive-width pieces transcode
 * to the same fixed 4-bit PackedCe here (codes are codes) and serve
 * bit-identically to the v3 path.
 */
enum class WeightSource
{
    Dense,
    CeDirect,
};

/** Weight rebuild policy of a session. */
struct SessionOptions
{
    /**
     * Re-materialize W = Ce*B on every forward() instead of once,
     * emulating the accelerator's no-dense-storage operating point.
     */
    bool rebuildPerCall = false;
    /**
     * Keep a per-layer copy of each assembled weight tensor so repeat
     * rebuilds are a copy (warm) instead of per-slice reconstructions
     * (cold). Disable to force every rebuild cold.
     */
    bool cacheRebuiltWeights = true;
    /** Storage the cold rebuild path consumes. */
    WeightSource weightSource = WeightSource::Dense;
    /**
     * Overlap weight rebuild with compute: a one-thread rebuild lane
     * re-materializes the next decomposed layer while the current one
     * runs its forward (see the class comment). Bit-identical to the
     * serial rebuild; SE_PIPELINE turns it on in the serve drivers.
     */
    bool pipelineRebuild = false;
    /**
     * Model-file v3 dense residual (BN gamma/beta/running stats,
     * biases, undecomposed weights), installed into the net at bind
     * time with full congruence validation — this is what makes a
     * channel-pruned bundle servable with no out-of-band restore.
     * Null or empty keeps the legacy contract: the factory net must
     * bit-reproduce the compression-time non-decomposed state.
     */
    std::shared_ptr<const std::vector<core::DenseTensor>> denseState;
};

/** Rebuild-engine counters of one session. */
struct SessionStats
{
    uint64_t forwardCalls = 0;
    uint64_t coldRebuilds = 0;  ///< layers assembled from Ce*B pieces
    uint64_t warmRebuilds = 0;  ///< layers restored from the cache
    double rebuildMs = 0.0;     ///< total wall-clock spent rebuilding
    /**
     * Wall-clock forward() actually spent blocked on weight rebuild.
     * On the serial path this equals the inline rebuild time (every
     * rebuild blocks compute); under pipelineRebuild only the residue
     * the lane could not hide remains — the number the pipelined
     * serve path drives toward ~0.
     */
    double decodeStallMs = 0.0;
    /** Layers whose rebuild ran on the lane concurrently with compute. */
    uint64_t overlappedRebuilds = 0;
    /**
     * One-time CeDirect bind cost: wall-clock spent packing the
     * records' Ce matrices to 4-bit form at construction (the
     * cold-start price of serving at the stored datapath width;
     * 0 under WeightSource::Dense).
     */
    double packMs = 0.0;
};

class InferenceSession
{
  public:
    /**
     * Bind a shipped model to a freshly built architecture instance.
     * The net's decomposed-layer geometry must match the records
     * (same architecture and ApplyOptions as at compression time);
     * throws core::ModelFileError otherwise. The records stay shared
     * and immutable — the compressed form is the storage of record.
     *
     * CONTRACT: records carry only the decomposed weights. Every
     * other tensor — BN gamma/beta/running stats, biases, layers too
     * small to decompose — comes from ONE of two places:
     *
     *  - SessionOptions::denseState (a model-file v3 bundle's dense
     *    residual): installed here with full congruence validation
     *    (throws core::ModelFileError on any name/shape drift). This
     *    is the only way to serve a channel-pruned model, whose BN
     *    tensors were mutated at compression time.
     *  - the factory net as built (denseState null/empty): the
     *    factory must bit-reproduce the compression-time net's
     *    non-decomposed state (e.g. the same seeded builder), and no
     *    congruence check can catch a drift there.
     */
    InferenceSession(
        std::unique_ptr<nn::Sequential> net,
        std::shared_ptr<const std::vector<core::SeLayerRecord>> model,
        const core::SeOptions &se_opts,
        const core::ApplyOptions &apply_opts,
        SessionOptions opts = {});

    ~InferenceSession();
    InferenceSession(const InferenceSession &) = delete;
    InferenceSession &operator=(const InferenceSession &) = delete;

    /**
     * Eval-mode forward of a (N, ...) batch, rebuilding weights first
     * per the session policy.
     */
    Tensor forward(const Tensor &batch);

    /** Mark every decomposed layer stale (next forward rebuilds). */
    void invalidateWeights();

    /** Drop the per-layer rebuilt-weight cache (next rebuild is cold). */
    void clearRebuildCache();

    /** Number of decomposed (rebuildable) layers. */
    size_t rebuildableLayers() const;

    const SessionStats &stats() const { return stats_; }
    nn::Sequential &net() { return *net_; }

  private:
    struct BoundLayer;

    /**
     * Whether one layer rebuild was cold (folded into stats_ by
     * ensureRebuilt, which also owns the wall-clock timing — layers
     * overlap under the parallel rebuild, so per-layer times would
     * not sum to anything meaningful).
     */
    bool rebuildLayer(BoundLayer &bl);
    void ensureRebuilt();
    Tensor forwardPipelined(const Tensor &batch);
    bool anyStale() const;

    std::unique_ptr<nn::Sequential> net_;
    std::shared_ptr<const std::vector<core::SeLayerRecord>> model_;
    SessionOptions opts_;
    std::vector<BoundLayer> layers_;
    SessionStats stats_;
    /** Top-level net child owning each bound layer's weight (-1 if it
     *  could not be mapped — pipelining then falls back to serial). */
    std::vector<int> childOf_;
    bool pipelineOk_ = false;
    /** One-thread rebuild lane (pipelineRebuild only). */
    std::unique_ptr<ThreadPool> lane_;
};

} // namespace serve
} // namespace se

#endif // SE_SERVE_SESSION_HH
