/**
 * @file
 * Multi-model serving: ModelRegistry + ServeFront.
 *
 * The paper ships one compressed Ce*B bundle per model; a deployment
 * serves many models at once. ModelRegistry maps a model id to
 * everything needed to stand a model up (records bundle, net factory,
 * compression/apply options). ServeFront instantiates one ServeEngine
 * per registered model and routes submit(modelId, sample) to it, so
 * several compressed models serve concurrently behind one facade —
 * each with its own replicas, queue, admission cap and flush policy,
 * and with responses bit-identical to a single-model session of the
 * same bundle.
 *
 * Thread budget: a front splits ServeOptions::threads evenly across
 * its engines (at least one replica each) so registering more models
 * doesn't multiply the worker count; pass threads == 0 for inline
 * engines.
 *
 * Failure semantics are ServeEngine's, plus: submit() with an
 * unregistered model id throws UnknownModelError.
 */

#ifndef SE_SERVE_FRONT_HH
#define SE_SERVE_FRONT_HH

#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "serve/engine.hh"

namespace se {
namespace core {
class StreamedModel;
}

namespace serve {

/** submit()/stats() named a model id the registry does not hold. */
class UnknownModelError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Everything needed to stand up one servable model. */
struct ModelEntry
{
    std::shared_ptr<const std::vector<core::SeLayerRecord>> records;
    NetFactory factory;
    core::SeOptions seOpts;
    core::ApplyOptions applyOpts;
    /**
     * Model-file v3 dense residual (BN/bias/undecomposed state),
     * installed into every replica at bind time. Null (the default)
     * keeps the legacy v2 contract: the factory must bit-reproduce
     * the compression-time non-decomposed state. Required to serve a
     * channel-pruned bundle.
     */
    std::shared_ptr<const std::vector<core::DenseTensor>> dense;
    /**
     * Per-model weight storage the engine serves from. Authoritative
     * for this entry's engine: it overrides whatever
     * ServeOptions::session.weightSource says, so one front can A/B
     * a CeDirect engine against a Dense engine of the same bundle.
     */
    WeightSource weightSource = WeightSource::Dense;
    /**
     * Lazy alternative to `records`: an open v4 streaming bundle.
     * When set (and `records` is null) the front defers the engine —
     * and with it the bundle's piece decode — until the model's first
     * submit, so a fleet of mostly-cold models pays open-time O(meta)
     * per model instead of decoding every piece of every bundle.
     * Responses are bit-identical to the eager path (same decoder,
     * same bits, just later).
     */
    std::shared_ptr<core::StreamedModel> streamed;
};

/**
 * Wrap a loaded bundle (v2, v3 or v4) as a registrable entry: the
 * records and the dense residual move into shared ownership.
 */
ModelEntry makeModelEntry(core::ModelBundle bundle, NetFactory factory,
                          const core::SeOptions &se_opts,
                          const core::ApplyOptions &apply_opts,
                          WeightSource source = WeightSource::Dense);

/**
 * Wrap an open v4 streaming bundle as a lazily-decoded entry. The
 * dense residual (needed to build replica nets) is copied out of the
 * meta section up front; piece decode waits for the first submit.
 */
ModelEntry makeModelEntry(std::shared_ptr<core::StreamedModel> streamed,
                          NetFactory factory,
                          const core::SeOptions &se_opts,
                          const core::ApplyOptions &apply_opts,
                          WeightSource source = WeightSource::Dense);

/**
 * An ordered id -> ModelEntry map (registration order is the serving
 * order everywhere: ids(), per-engine thread split, stats).
 */
class ModelRegistry
{
  public:
    /** Throws std::invalid_argument on an empty or duplicate id. */
    void add(std::string id, ModelEntry entry);

    bool contains(const std::string &id) const;
    /** Throws UnknownModelError when absent. */
    const ModelEntry &at(const std::string &id) const;
    std::vector<std::string> ids() const;
    size_t size() const { return entries_.size(); }

  private:
    std::vector<std::pair<std::string, ModelEntry>> entries_;
};

class ServeFront
{
  public:
    /**
     * Builds one engine per records-backed registered model (the
     * registry is only read during construction — entries are copied
     * in); engines of streamed (v4) entries are deferred to the
     * model's first submit. `opts` is applied to every engine, except
     * that a positive/per-core thread budget is split evenly across
     * models.
     */
    explicit ServeFront(const ModelRegistry &registry,
                        ServeOptions opts = {});

    ~ServeFront();
    ServeFront(const ServeFront &) = delete;
    ServeFront &operator=(const ServeFront &) = delete;

    /** Route one sample to the named model's engine (building the
     *  engine first when this is a streamed model's first submit). */
    std::future<Tensor> submit(const std::string &modelId,
                               Tensor sample);

    /** Drain every built engine (all accepted requests answered). */
    void drain();

    /** Stop every engine; later submits throw EngineStoppedError
     *  (including first submits to still-unbuilt streamed models). */
    void stop();

    /** Per-model statistics (latency percentiles included). A
     *  streamed model that never saw a submit reports all zeros. */
    ServeStats stats(const std::string &modelId) const;

    /**
     * Counters summed across models, mean latency weighted by
     * request count, max latency the overall max. Percentiles are a
     * per-model quantity (per-engine reservoirs can't be merged
     * exactly) and stay 0 here — read stats(modelId) for them.
     */
    ServeStats aggregateStats() const;

    /** Direct engine access (e.g. per-model drain or replica count).
     *  Forces a deferred streamed engine to build. */
    ServeEngine &engine(const std::string &modelId);

    /** True once the model's engine exists — the lazy-serving
     *  observable: false for a streamed model nobody submitted to. */
    bool engineBuilt(const std::string &modelId) const;

    std::vector<std::string> modelIds() const { return ids_; }
    size_t modelCount() const { return ids_.size(); }
    int replicaCount() const;  ///< summed across BUILT engines

  private:
    size_t indexOf(const std::string &modelId) const;
    /** Build engine i if needed, then return it. */
    ServeEngine &engineAt(size_t i);
    void buildEngineLocked(size_t i);
    std::vector<ServeEngine *> builtEngines() const;

    std::vector<std::string> ids_;
    std::vector<ModelEntry> entries_;
    ServeOptions perEngineOpts_;
    mutable std::mutex buildMu_;
    bool stopped_ = false;
    std::vector<std::unique_ptr<ServeEngine>> engines_;
};

} // namespace serve
} // namespace se

#endif // SE_SERVE_FRONT_HH
