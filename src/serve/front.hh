/**
 * @file
 * Multi-model serving: ModelRegistry + ServeFront.
 *
 * The paper ships one compressed Ce*B bundle per model; a deployment
 * serves many models at once. ModelRegistry maps a model id to
 * everything needed to stand a model up (records bundle, net factory,
 * compression/apply options). ServeFront instantiates one ServeEngine
 * per registered model and routes submit(modelId, sample) to it, so
 * several compressed models serve concurrently behind one facade —
 * each with its own replicas, queue, admission cap and flush policy,
 * and with responses bit-identical to a single-model session of the
 * same bundle.
 *
 * Generations and hot reload: every model slot serves from a
 * numbered Generation (entry + engine). reloadModel() builds
 * generation N+1 completely off to the side — the live generation
 * keeps serving, untouched, while the new engine decodes and binds —
 * then atomically swaps it in and retires generation N (every
 * accepted request answered first). submit() rides the swap with a
 * retry: a request that races the flip and hits the retiring engine's
 * stop is resubmitted to the new generation, so a reload drops zero
 * requests and every response is bit-identical to whichever
 * generation's bundle answered it.
 *
 * Quarantine: a failure while standing a generation up (piece decode
 * of a streamed bundle, engine build, an injected fault) marks only
 * that model Unhealthy — submits to it throw ModelUnhealthyError,
 * every other model keeps serving. With
 * ServeOptions::reloadFallback set, a failed reload instead keeps
 * the previous healthy generation serving (counted in
 * reloadFallbacks). A later successful reloadModel() returns the
 * model to Healthy.
 *
 * Thread budget: a front splits ServeOptions::threads evenly across
 * its engines (at least one replica each) so registering more models
 * doesn't multiply the worker count; pass threads == 0 for inline
 * engines.
 *
 * Failure semantics are ServeEngine's, plus: submit() with an
 * unregistered model id throws UnknownModelError, and submit() to a
 * quarantined model throws ModelUnhealthyError.
 */

#ifndef SE_SERVE_FRONT_HH
#define SE_SERVE_FRONT_HH

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "base/mutex.hh"
#include "serve/engine.hh"

namespace se {
namespace core {
class StreamedModel;
}

namespace serve {

/** submit()/stats() named a model id the registry does not hold. */
class UnknownModelError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** submit() named a model whose current generation failed to stand
 *  up; the message carries the original build error. A successful
 *  reloadModel() clears the condition. */
class ModelUnhealthyError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Per-model serving health (see the quarantine rules above). */
enum class ModelHealth
{
    Healthy,
    Unhealthy,
};

/** Everything needed to stand up one servable model. */
struct ModelEntry
{
    std::shared_ptr<const std::vector<core::SeLayerRecord>> records;
    NetFactory factory;
    core::SeOptions seOpts;
    core::ApplyOptions applyOpts;
    /**
     * Model-file v3 dense residual (BN/bias/undecomposed state),
     * installed into every replica at bind time. Null (the default)
     * keeps the legacy v2 contract: the factory must bit-reproduce
     * the compression-time non-decomposed state. Required to serve a
     * channel-pruned bundle.
     */
    std::shared_ptr<const std::vector<core::DenseTensor>> dense;
    /**
     * Per-model weight storage the engine serves from. Authoritative
     * for this entry's engine: it overrides whatever
     * ServeOptions::session.weightSource says, so one front can A/B
     * a CeDirect engine against a Dense engine of the same bundle.
     */
    WeightSource weightSource = WeightSource::Dense;
    /**
     * Lazy alternative to `records`: an open v4 streaming bundle.
     * When set (and `records` is null) the front defers the engine —
     * and with it the bundle's piece decode — until the model's first
     * submit, so a fleet of mostly-cold models pays open-time O(meta)
     * per model instead of decoding every piece of every bundle.
     * Responses are bit-identical to the eager path (same decoder,
     * same bits, just later).
     */
    std::shared_ptr<core::StreamedModel> streamed;
};

/**
 * Wrap a loaded bundle (v2, v3 or v4) as a registrable entry: the
 * records and the dense residual move into shared ownership.
 */
ModelEntry makeModelEntry(core::ModelBundle bundle, NetFactory factory,
                          const core::SeOptions &se_opts,
                          const core::ApplyOptions &apply_opts,
                          WeightSource source = WeightSource::Dense);

/**
 * Wrap an open v4 streaming bundle as a lazily-decoded entry. The
 * dense residual (needed to build replica nets) is copied out of the
 * meta section up front; piece decode waits for the first submit.
 */
ModelEntry makeModelEntry(std::shared_ptr<core::StreamedModel> streamed,
                          NetFactory factory,
                          const core::SeOptions &se_opts,
                          const core::ApplyOptions &apply_opts,
                          WeightSource source = WeightSource::Dense);

/**
 * An ordered id -> ModelEntry map (registration order is the serving
 * order everywhere: ids(), per-engine thread split, stats). Entries
 * are generation-tagged: replace() bumps the tag so a caller can tell
 * which bundle revision a registry snapshot holds.
 */
class ModelRegistry
{
  public:
    /** Throws std::invalid_argument on an empty or duplicate id. */
    void add(std::string id, ModelEntry entry);

    /** Swap a registered id's entry in place (same serving order),
     *  bumping its generation tag. Throws UnknownModelError when the
     *  id is absent and std::invalid_argument on an invalid entry. */
    void replace(const std::string &id, ModelEntry entry);

    bool contains(const std::string &id) const;
    /** Throws UnknownModelError when absent. */
    const ModelEntry &at(const std::string &id) const;
    /** 1 after add(), +1 per replace(). Throws UnknownModelError. */
    uint64_t generationOf(const std::string &id) const;
    std::vector<std::string> ids() const;
    size_t size() const { return entries_.size(); }

  private:
    struct Row
    {
        std::string id;
        ModelEntry entry;
        uint64_t generation = 1;
    };
    std::vector<Row> entries_;
};

class ServeFront
{
  public:
    /**
     * Builds one engine per records-backed registered model (the
     * registry is only read during construction — entries are copied
     * in); engines of streamed (v4) entries are deferred to the
     * model's first submit. `opts` is applied to every engine, except
     * that a positive/per-core thread budget is split evenly across
     * models.
     */
    explicit ServeFront(const ModelRegistry &registry,
                        ServeOptions opts = {});

    ~ServeFront();
    ServeFront(const ServeFront &) = delete;
    ServeFront &operator=(const ServeFront &) = delete;

    /**
     * Route one sample to the named model's current generation
     * (building the engine first when this is a streamed model's
     * first submit). Rides generation swaps transparently: a request
     * that races reloadModel() is retried on the new generation, so
     * reloads drop nothing. Throws ModelUnhealthyError for a
     * quarantined model.
     */
    std::future<Tensor> submit(const std::string &modelId,
                               Tensor sample) SE_EXCLUDES(mu_);

    /**
     * Hot-swap `modelId` to a new generation serving `entry` with
     * zero downtime: generation N+1 is built entirely off to the side
     * (decode + engine up; the `serve_engine_build` failpoint and any
     * piece-decode fault fire here, before anything is touched), then
     * swapped in atomically; generation N answers everything it
     * accepted and is retired, its counters folded into stats().
     *
     * On a build failure the live generation is untouched; with
     * ServeOptions::reloadFallback it simply keeps serving (counted
     * in reloadFallbacks()), otherwise the model is quarantined. The
     * build error is rethrown either way. A successful reload also
     * recovers a quarantined model (Unhealthy -> Healthy).
     */
    void reloadModel(const std::string &modelId, ModelEntry entry)
        SE_EXCLUDES(mu_);

    /** Drain every built engine (all accepted requests answered). */
    void drain() SE_EXCLUDES(mu_);

    /** Stop every engine; later submits throw EngineStoppedError
     *  (including first submits to still-unbuilt streamed models). */
    void stop() SE_EXCLUDES(mu_);

    /** Per-model statistics (latency percentiles included), merged
     *  across every generation the model has served: counters sum,
     *  the latency mean is request-weighted, percentiles are the
     *  current generation's (reservoirs don't merge exactly). A
     *  streamed model that never saw a submit reports all zeros. */
    ServeStats stats(const std::string &modelId) const
        SE_EXCLUDES(mu_);

    /**
     * Counters summed across models, mean latency weighted by
     * request count, max latency the overall max. Percentiles are a
     * per-model quantity (per-engine reservoirs can't be merged
     * exactly) and stay 0 here — read stats(modelId) for them.
     */
    ServeStats aggregateStats() const SE_EXCLUDES(mu_);

    /** Direct engine access (e.g. per-model drain or replica count).
     *  Forces a deferred streamed engine to build. The pointer is
     *  only stable until the model's next reloadModel(). */
    ServeEngine &engine(const std::string &modelId)
        SE_EXCLUDES(mu_);

    /** True once the model's engine exists — the lazy-serving
     *  observable: false for a streamed model nobody submitted to
     *  (and for a quarantined model, whose engine is retired). */
    bool engineBuilt(const std::string &modelId) const
        SE_EXCLUDES(mu_);

    /** Current generation number: 0 before the first build, 1 after
     *  it, +1 per successful reloadModel(). A quarantined model keeps
     *  the number of the last generation that became current. */
    uint64_t generation(const std::string &modelId) const
        SE_EXCLUDES(mu_);

    /** Healthy unless the model's last stand-up attempt failed. */
    ModelHealth health(const std::string &modelId) const
        SE_EXCLUDES(mu_);

    /** Failed reloads absorbed by falling back to the previous
     *  healthy generation (only grows under reloadFallback). */
    uint64_t reloadFallbacks(const std::string &modelId) const
        SE_EXCLUDES(mu_);

    std::vector<std::string> modelIds() const { return ids_; }
    size_t modelCount() const { return ids_.size(); }
    int replicaCount() const SE_EXCLUDES(mu_);  ///< BUILT engines

  private:
    /** One numbered (entry, engine) pair; engines_ of old. */
    struct Generation
    {
        uint64_t number = 0;
        ModelEntry entry;
        std::unique_ptr<ServeEngine> engine;
    };

    /** Retired-generation counters folded into stats(). */
    struct RetiredStats
    {
        uint64_t requests = 0;
        uint64_t failed = 0;
        uint64_t rejected = 0;
        uint64_t shed = 0;
        uint64_t batches = 0;
        double latencyWeighted = 0.0;  ///< sum of mean * requests
        double batchWeighted = 0.0;    ///< sum of meanBatch * batches
        double maxMs = 0.0;
    };

    struct Slot
    {
        ModelEntry entry;  ///< registered entry (generation-1 source)
        std::shared_ptr<Generation> current;  ///< null until built
        bool building = false;  ///< a stand-up is in flight off-lock
        ModelHealth health = ModelHealth::Healthy;
        std::string reason;       ///< last stand-up error (Unhealthy)
        uint64_t generation = 0;  ///< newest number that went live
        uint64_t fallbacks = 0;
        RetiredStats retired;
    };

    size_t indexOf(const std::string &modelId) const;
    /** Current generation of slot i, standing one up (outside the
     *  lock) on first touch. Throws on stopped/unhealthy. */
    std::shared_ptr<Generation> generationFor(size_t i)
        SE_EXCLUDES(mu_);
    /** Decode + construct one generation. Runs with no front lock
     *  held; the `serve_engine_build` failpoint fires here. */
    std::shared_ptr<Generation> buildGeneration(const ModelEntry &e,
                                                uint64_t number) const
        SE_EXCLUDES(mu_);
    void mergeRetiredLocked(Slot &s, const ServeStats &st) const
        SE_REQUIRES(mu_);
    /** Stop `gen`'s engine and fold its counters into slot i. */
    void retireGeneration(size_t i, std::shared_ptr<Generation> gen)
        SE_EXCLUDES(mu_);
    std::vector<std::shared_ptr<Generation>> builtGenerations() const
        SE_EXCLUDES(mu_);

    std::vector<std::string> ids_;  ///< immutable after construction
    ServeOptions perEngineOpts_;    ///< immutable after construction
    mutable base::Mutex mu_;
    base::CondVar cv_;  ///< building-flag waiters
    bool stopped_ SE_GUARDED_BY(mu_) = false;
    /** Slot state (entry, current generation, health, counters) is
     *  all mu_-guarded; a slot's `building` flag grants its one
     *  stand-up thread the right to read the ENTRY COPY it took
     *  under the lock, never to touch the slot itself off-lock. */
    std::vector<Slot> slots_ SE_GUARDED_BY(mu_);
};

} // namespace serve
} // namespace se

#endif // SE_SERVE_FRONT_HH
