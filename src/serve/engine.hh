/**
 * @file
 * ServeEngine — an async micro-batching front end over
 * InferenceSession replicas.
 *
 * submit() validates and admits one sample and returns a future. A
 * dispatcher thread groups queued requests into batches (up to
 * maxBatch, per the flush policy) and hands each batch to a free
 * session replica; with threads > 0 batches run concurrently on a
 * ThreadPool (one replica per worker, so sessions are never shared
 * across threads), with threads == 0 they run inline on the
 * dispatcher.
 *
 * Responses are bit-identical regardless of thread count, batch size
 * or flush policy: every replica rebuilds the same dense weights from
 * the same shared records, and each sample's arithmetic inside a
 * batched forward is independent of its batch-mates.
 *
 * Batching is also where the paper's storage/compute trade-off pays
 * off at serving time: in rebuild-per-call sessions the Ce*B rebuild
 * cost is paid once per batch, not once per request.
 *
 * Pipelined mode (ServeOptions::pipeline, SE_PIPELINE in the
 * drivers) decouples the serial admit -> form -> execute -> complete
 * loop into overlapping stages: the dispatcher assembles batch t+1's
 * input tensor (form) while batch t runs its forward on a pool worker
 * (execute) and a dedicated completer thread slices and publishes
 * batch t-1's responses (complete). Form staging tensors are recycled
 * through a bounded pool (double-buffered by the pipeline depth), and
 * up to pipelineDepth formed batches queue ahead of the replicas.
 * Per-sample arithmetic is independent of batch composition and each
 * batch still runs on exactly one replica, so responses stay
 * bit-identical to the serial loop; stats-commit-before-publish and
 * the stop()/drain() contracts are preserved (the completer commits a
 * batch's stats before fulfilling its promises, and drain() waits on
 * the same pending_ counter, now decremented at publish). The
 * `pipeline_stage_delay` failpoint perturbs the stage hand-off
 * schedule for race-hunting tests.
 *
 * Failure semantics (nothing in here panics the process):
 *  - malformed request (bad batch dim, or a per-sample shape that
 *    differs from the engine's locked shape): the returned future
 *    carries std::invalid_argument; batch-mates are unaffected and
 *    the request is counted in ServeStats::rejected;
 *  - queue at queueCap: submit() throws AdmissionError (fail fast,
 *    nothing is enqueued); counted in ServeStats::shed;
 *  - submit() after stop() (or mid-destruction): submit() throws
 *    EngineStoppedError;
 *  - model forward throws: every still-unanswered request of that
 *    batch fails with the model's exception; counted in
 *    ServeStats::failed.
 */

#ifndef SE_SERVE_ENGINE_HH
#define SE_SERVE_ENGINE_HH

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/mutex.hh"
#include "base/thread_pool.hh"
#include "serve/latency.hh"
#include "serve/session.hh"

namespace se {
namespace serve {

/** submit() rejected a request because the queue is at queueCap. */
class AdmissionError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** submit() was called on a stopped (or stopping) engine. */
class EngineStoppedError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** When the dispatcher closes a batch. */
enum class FlushPolicy
{
    /** Dispatch whatever is queued as soon as a replica frees up. */
    Greedy,
    /** Hold until maxBatch requests queue up (drain() flushes). */
    Full,
    /**
     * Hold like Full, but close the batch once the oldest queued
     * request has waited flushDeadlineMs — the latency/throughput
     * knob: large deadlines approach Full's batch sizes, deadline 0
     * degenerates to Greedy.
     */
    Deadline,
};

/** Engine configuration. */
struct ServeOptions
{
    /**
     * Worker threads == session replicas; 0 runs batches inline on
     * the dispatcher (single replica), negative means one per core.
     */
    int threads = -1;
    /** Micro-batch size cap. */
    size_t maxBatch = 8;
    FlushPolicy flush = FlushPolicy::Greedy;
    /** Oldest-request age that closes a batch under Deadline. */
    double flushDeadlineMs = 5.0;
    /**
     * Admission cap on queued-but-undispatched requests; submit()
     * beyond it throws AdmissionError. 0 = unbounded (accept all).
     */
    size_t queueCap = 0;
    /**
     * Latency-reservoir capacity: stats() percentiles are estimated
     * from a uniform sample of at most this many requests, so a
     * million-request soak holds constant memory.
     */
    size_t latencyReservoirCap = 4096;
    /**
     * Per-sample input shape every request must match. Empty (the
     * default) locks to the first well-formed submitted sample.
     */
    Shape expectedSample;
    /**
     * Stage-decoupled execution (see the class comment): form,
     * execute and complete overlap instead of running serially on
     * the dispatcher. Bit-identical responses; only wall-clock and
     * the stage/occupancy stats move.
     */
    bool pipeline = false;
    /**
     * Formed-batch lookahead under `pipeline`: how many assembled
     * batches may queue ahead of the replicas before the form stage
     * applies backpressure (clamped to >= 1).
     */
    size_t pipelineDepth = 2;
    /** Rebuild policy handed to every replica. */
    SessionOptions session;
    /**
     * Consumed by ServeFront, ignored by a bare engine: when a
     * reloadModel() build fails, keep the previous healthy
     * generation serving (counted in reloadFallbacks()) instead of
     * quarantining the model.
     */
    bool reloadFallback = false;

    int
    resolvedThreads() const
    {
        if (threads >= 0)
            return threads;
        const unsigned hc = std::thread::hardware_concurrency();
        return hc > 0 ? (int)hc : 1;
    }
};

/** Aggregate serving statistics (latency is enqueue -> response). */
struct ServeStats
{
    uint64_t requests = 0;  ///< successfully answered
    uint64_t failed = 0;    ///< answered with an exception mid-serve
    uint64_t rejected = 0;  ///< malformed, refused at admission
    uint64_t shed = 0;      ///< refused at admission (queue full)
    uint64_t batches = 0;   ///< successful batches
    double meanBatchSize = 0.0;
    double meanLatencyMs = 0.0;  ///< exact running mean
    double p50Ms = 0.0;          ///< reservoir-estimated
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;  ///< exact running max

    // Stage accounting (both modes; overlap metrics move only under
    // ServeOptions::pipeline).
    double formMs = 0.0;      ///< batch-assembly wall-clock
    double execMs = 0.0;      ///< replica-forward wall-clock
    double completeMs = 0.0;  ///< slice-and-publish wall-clock
    /**
     * Wall-clock replicas spent blocked on weight rebuild (the fold
     * of SessionStats::decodeStallMs deltas per batch) — the number
     * pipelined rebuild drives toward ~0.
     */
    double decodeStallMs = 0.0;
    /** Batches formed while another batch was executing/publishing. */
    uint64_t overlappedBatches = 0;
    /** overlappedBatches / batches — 1.0 means the form stage never
     *  found the pipeline empty. */
    double pipelineOccupancy = 0.0;
};

/** Builds one architecture instance per replica (deterministic). */
using NetFactory = std::function<std::unique_ptr<nn::Sequential>()>;

class ServeEngine
{
  public:
    ServeEngine(
        std::shared_ptr<const std::vector<core::SeLayerRecord>> model,
        const NetFactory &factory, const core::SeOptions &se_opts,
        const core::ApplyOptions &apply_opts, ServeOptions opts = {});

    /** Equivalent to stop(). */
    ~ServeEngine();

    ServeEngine(const ServeEngine &) = delete;
    ServeEngine &operator=(const ServeEngine &) = delete;

    /**
     * Enqueue one sample — (C, H, W), (1, C, H, W) or any shape the
     * model accepts with a leading batch dim of 1. The future carries
     * the per-sample output (batch dim stripped) or the error that
     * occurred while serving it. See the class comment for the
     * admission-failure semantics (AdmissionError /
     * EngineStoppedError throw; malformed shapes fail the future).
     */
    std::future<Tensor> submit(Tensor sample) SE_EXCLUDES(mu_);

    /** Block until every accepted request has been answered (flushes
     *  partial batches under Full/Deadline). Concurrent drainers each
     *  observe an empty engine before returning. */
    void drain() SE_EXCLUDES(mu_);

    /**
     * Answer every accepted request, then stop accepting: subsequent
     * submit() calls throw EngineStoppedError instead of killing the
     * process. Idempotent and safe to race with submit().
     */
    void stop() SE_EXCLUDES(stop_mu_, mu_);

    ServeStats stats() const SE_EXCLUDES(stats_mu_);
    int replicaCount() const { return (int)replicas_.size(); }

  private:
    struct Request
    {
        Tensor input;
        std::promise<Tensor> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    /** One formed (input-assembled) batch awaiting a replica. */
    struct FormedBatch
    {
        std::vector<Request> reqs;
        Tensor input;
    };

    /** One executed batch awaiting publish by the completer. */
    struct DoneBatch
    {
        std::vector<Request> reqs;
        Tensor out;
        std::exception_ptr err;
        double execMs = 0.0;
        double stallDelta = 0.0;  ///< replica decode-stall delta
    };

    void dispatchLoop() SE_EXCLUDES(mu_);
    void runBatch(size_t replica, std::vector<Request> &batch)
        SE_EXCLUDES(mu_, stats_mu_);
    void releaseReplica(size_t idx) SE_EXCLUDES(mu_);

    // Pipelined mode.
    void pipelinedDispatchLoop() SE_EXCLUDES(mu_, stats_mu_);
    void completerLoop() SE_EXCLUDES(mu_, stats_mu_);
    /** Hand formed batches to free replicas (pool mode). */
    void launchLocked() SE_REQUIRES(mu_);
    void formBatch(FormedBatch &fb, Tensor staging);
    void execBatch(size_t replica, FormedBatch &fb)
        SE_EXCLUDES(mu_, stats_mu_);
    void publishBatch(DoneBatch &d) SE_EXCLUDES(mu_, stats_mu_);

    ServeOptions opts_;
    /** Immutable after construction; each replica is used by at most
     *  one in-flight batch at a time (the freeReplicas_ protocol). */
    std::vector<std::unique_ptr<InferenceSession>> replicas_;
    std::unique_ptr<ThreadPool> pool_;  ///< null when threads == 0

    /** Serializes stop() callers. House lock order:
     *  stop_mu_ -> mu_ -> stats_mu_ (documented here, spot-enforced
     *  by the SE_ACQUIRED_AFTER annotations below under clang's
     *  -Wthread-safety-beta, and dynamically by TSan's deadlock
     *  detector in the `-L concurrency` CI job). */
    base::Mutex stop_mu_;

    mutable base::Mutex mu_ SE_ACQUIRED_AFTER(stop_mu_);
    base::CondVar cv_;
    std::deque<Request> queue_ SE_GUARDED_BY(mu_);
    /** Locked per-sample shape. */
    Shape expected_ SE_GUARDED_BY(mu_);
    /** Accepted but not yet answered. */
    uint64_t pending_ SE_GUARDED_BY(mu_) = 0;
    /** Concurrent drain() callers. */
    int drainers_ SE_GUARDED_BY(mu_) = 0;
    bool stopping_ SE_GUARDED_BY(mu_) = false;
    std::vector<size_t> freeReplicas_ SE_GUARDED_BY(mu_);

    // Pipelined-mode stage queues (empty and idle in serial mode).
    std::deque<FormedBatch> formed_ SE_GUARDED_BY(mu_);
    std::deque<DoneBatch> done_ SE_GUARDED_BY(mu_);
    /** Batches currently in their execute stage. */
    size_t executing_ SE_GUARDED_BY(mu_) = 0;
    /** The pipelined dispatcher exited (stop in progress). */
    bool dispatcherDone_ SE_GUARDED_BY(mu_) = false;
    /** Recycled form-stage staging tensors (bounded by depth +
     *  replica count — the pipeline's double buffers). */
    std::vector<Tensor> stagePool_ SE_GUARDED_BY(mu_);

    mutable base::Mutex stats_mu_ SE_ACQUIRED_AFTER(mu_);
    LatencyReservoir latency_ SE_GUARDED_BY(stats_mu_);
    uint64_t batches_ SE_GUARDED_BY(stats_mu_) = 0;
    uint64_t batchedRequests_ SE_GUARDED_BY(stats_mu_) = 0;
    uint64_t failed_ SE_GUARDED_BY(stats_mu_) = 0;
    uint64_t rejected_ SE_GUARDED_BY(stats_mu_) = 0;
    uint64_t shed_ SE_GUARDED_BY(stats_mu_) = 0;
    double formMs_ SE_GUARDED_BY(stats_mu_) = 0.0;
    double execMs_ SE_GUARDED_BY(stats_mu_) = 0.0;
    double completeMs_ SE_GUARDED_BY(stats_mu_) = 0.0;
    double stallMs_ SE_GUARDED_BY(stats_mu_) = 0.0;
    uint64_t overlapped_ SE_GUARDED_BY(stats_mu_) = 0;

    std::thread dispatcher_;  ///< set in ctor, joined under stop_mu_
    std::thread completer_;   ///< pipelined mode only
};

} // namespace serve
} // namespace se

#endif // SE_SERVE_ENGINE_HH
