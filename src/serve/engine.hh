/**
 * @file
 * ServeEngine — an async micro-batching front end over
 * InferenceSession replicas.
 *
 * submit() validates and admits one sample and returns a future. A
 * dispatcher thread groups queued requests into batches (up to
 * maxBatch, per the flush policy) and hands each batch to a free
 * session replica; with threads > 0 batches run concurrently on a
 * ThreadPool (one replica per worker, so sessions are never shared
 * across threads), with threads == 0 they run inline on the
 * dispatcher.
 *
 * Responses are bit-identical regardless of thread count, batch size
 * or flush policy: every replica rebuilds the same dense weights from
 * the same shared records, and each sample's arithmetic inside a
 * batched forward is independent of its batch-mates.
 *
 * Batching is also where the paper's storage/compute trade-off pays
 * off at serving time: in rebuild-per-call sessions the Ce*B rebuild
 * cost is paid once per batch, not once per request.
 *
 * Failure semantics (nothing in here panics the process):
 *  - malformed request (bad batch dim, or a per-sample shape that
 *    differs from the engine's locked shape): the returned future
 *    carries std::invalid_argument; batch-mates are unaffected and
 *    the request is counted in ServeStats::rejected;
 *  - queue at queueCap: submit() throws AdmissionError (fail fast,
 *    nothing is enqueued); counted in ServeStats::shed;
 *  - submit() after stop() (or mid-destruction): submit() throws
 *    EngineStoppedError;
 *  - model forward throws: every still-unanswered request of that
 *    batch fails with the model's exception; counted in
 *    ServeStats::failed.
 */

#ifndef SE_SERVE_ENGINE_HH
#define SE_SERVE_ENGINE_HH

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/mutex.hh"
#include "base/thread_pool.hh"
#include "serve/latency.hh"
#include "serve/session.hh"

namespace se {
namespace serve {

/** submit() rejected a request because the queue is at queueCap. */
class AdmissionError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** submit() was called on a stopped (or stopping) engine. */
class EngineStoppedError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** When the dispatcher closes a batch. */
enum class FlushPolicy
{
    /** Dispatch whatever is queued as soon as a replica frees up. */
    Greedy,
    /** Hold until maxBatch requests queue up (drain() flushes). */
    Full,
    /**
     * Hold like Full, but close the batch once the oldest queued
     * request has waited flushDeadlineMs — the latency/throughput
     * knob: large deadlines approach Full's batch sizes, deadline 0
     * degenerates to Greedy.
     */
    Deadline,
};

/** Engine configuration. */
struct ServeOptions
{
    /**
     * Worker threads == session replicas; 0 runs batches inline on
     * the dispatcher (single replica), negative means one per core.
     */
    int threads = -1;
    /** Micro-batch size cap. */
    size_t maxBatch = 8;
    FlushPolicy flush = FlushPolicy::Greedy;
    /** Oldest-request age that closes a batch under Deadline. */
    double flushDeadlineMs = 5.0;
    /**
     * Admission cap on queued-but-undispatched requests; submit()
     * beyond it throws AdmissionError. 0 = unbounded (accept all).
     */
    size_t queueCap = 0;
    /**
     * Latency-reservoir capacity: stats() percentiles are estimated
     * from a uniform sample of at most this many requests, so a
     * million-request soak holds constant memory.
     */
    size_t latencyReservoirCap = 4096;
    /**
     * Per-sample input shape every request must match. Empty (the
     * default) locks to the first well-formed submitted sample.
     */
    Shape expectedSample;
    /** Rebuild policy handed to every replica. */
    SessionOptions session;
    /**
     * Consumed by ServeFront, ignored by a bare engine: when a
     * reloadModel() build fails, keep the previous healthy
     * generation serving (counted in reloadFallbacks()) instead of
     * quarantining the model.
     */
    bool reloadFallback = false;

    int
    resolvedThreads() const
    {
        if (threads >= 0)
            return threads;
        const unsigned hc = std::thread::hardware_concurrency();
        return hc > 0 ? (int)hc : 1;
    }
};

/** Aggregate serving statistics (latency is enqueue -> response). */
struct ServeStats
{
    uint64_t requests = 0;  ///< successfully answered
    uint64_t failed = 0;    ///< answered with an exception mid-serve
    uint64_t rejected = 0;  ///< malformed, refused at admission
    uint64_t shed = 0;      ///< refused at admission (queue full)
    uint64_t batches = 0;   ///< successful batches
    double meanBatchSize = 0.0;
    double meanLatencyMs = 0.0;  ///< exact running mean
    double p50Ms = 0.0;          ///< reservoir-estimated
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;  ///< exact running max
};

/** Builds one architecture instance per replica (deterministic). */
using NetFactory = std::function<std::unique_ptr<nn::Sequential>()>;

class ServeEngine
{
  public:
    ServeEngine(
        std::shared_ptr<const std::vector<core::SeLayerRecord>> model,
        const NetFactory &factory, const core::SeOptions &se_opts,
        const core::ApplyOptions &apply_opts, ServeOptions opts = {});

    /** Equivalent to stop(). */
    ~ServeEngine();

    ServeEngine(const ServeEngine &) = delete;
    ServeEngine &operator=(const ServeEngine &) = delete;

    /**
     * Enqueue one sample — (C, H, W), (1, C, H, W) or any shape the
     * model accepts with a leading batch dim of 1. The future carries
     * the per-sample output (batch dim stripped) or the error that
     * occurred while serving it. See the class comment for the
     * admission-failure semantics (AdmissionError /
     * EngineStoppedError throw; malformed shapes fail the future).
     */
    std::future<Tensor> submit(Tensor sample) SE_EXCLUDES(mu_);

    /** Block until every accepted request has been answered (flushes
     *  partial batches under Full/Deadline). Concurrent drainers each
     *  observe an empty engine before returning. */
    void drain() SE_EXCLUDES(mu_);

    /**
     * Answer every accepted request, then stop accepting: subsequent
     * submit() calls throw EngineStoppedError instead of killing the
     * process. Idempotent and safe to race with submit().
     */
    void stop() SE_EXCLUDES(stop_mu_, mu_);

    ServeStats stats() const SE_EXCLUDES(stats_mu_);
    int replicaCount() const { return (int)replicas_.size(); }

  private:
    struct Request
    {
        Tensor input;
        std::promise<Tensor> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void dispatchLoop() SE_EXCLUDES(mu_);
    void runBatch(size_t replica, std::vector<Request> &batch)
        SE_EXCLUDES(mu_, stats_mu_);
    void releaseReplica(size_t idx) SE_EXCLUDES(mu_);

    ServeOptions opts_;
    /** Immutable after construction; each replica is used by at most
     *  one in-flight batch at a time (the freeReplicas_ protocol). */
    std::vector<std::unique_ptr<InferenceSession>> replicas_;
    std::unique_ptr<ThreadPool> pool_;  ///< null when threads == 0

    /** Serializes stop() callers. House lock order:
     *  stop_mu_ -> mu_ -> stats_mu_ (documented here, spot-enforced
     *  by the SE_ACQUIRED_AFTER annotations below under clang's
     *  -Wthread-safety-beta, and dynamically by TSan's deadlock
     *  detector in the `-L concurrency` CI job). */
    base::Mutex stop_mu_;

    mutable base::Mutex mu_ SE_ACQUIRED_AFTER(stop_mu_);
    base::CondVar cv_;
    std::deque<Request> queue_ SE_GUARDED_BY(mu_);
    /** Locked per-sample shape. */
    Shape expected_ SE_GUARDED_BY(mu_);
    /** Accepted but not yet answered. */
    uint64_t pending_ SE_GUARDED_BY(mu_) = 0;
    /** Concurrent drain() callers. */
    int drainers_ SE_GUARDED_BY(mu_) = 0;
    bool stopping_ SE_GUARDED_BY(mu_) = false;
    std::vector<size_t> freeReplicas_ SE_GUARDED_BY(mu_);

    mutable base::Mutex stats_mu_ SE_ACQUIRED_AFTER(mu_);
    LatencyReservoir latency_ SE_GUARDED_BY(stats_mu_);
    uint64_t batches_ SE_GUARDED_BY(stats_mu_) = 0;
    uint64_t batchedRequests_ SE_GUARDED_BY(stats_mu_) = 0;
    uint64_t failed_ SE_GUARDED_BY(stats_mu_) = 0;
    uint64_t rejected_ SE_GUARDED_BY(stats_mu_) = 0;
    uint64_t shed_ SE_GUARDED_BY(stats_mu_) = 0;

    std::thread dispatcher_;  ///< set in ctor, joined under stop_mu_
};

} // namespace serve
} // namespace se

#endif // SE_SERVE_ENGINE_HH
