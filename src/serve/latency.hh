/**
 * @file
 * LatencyReservoir — constant-memory latency statistics.
 *
 * ServeEngine used to append every request latency to a vector, which
 * grows without bound under sustained traffic (and stats() copied the
 * whole history per call). This class keeps exact running aggregates
 * (count, mean via a running sum, max) plus a fixed-capacity uniform
 * sample of the stream (Vitter's Algorithm R) from which percentiles
 * are estimated: after n adds, each of the n values has been retained
 * with probability capacity/n, so sample quantiles converge on stream
 * quantiles with the usual sqrt(capacity) sampling error regardless
 * of how long the engine has been up.
 *
 * Not thread-safe — the owner serializes access (ServeEngine guards
 * its reservoir with the stats mutex).
 */

#ifndef SE_SERVE_LATENCY_HH
#define SE_SERVE_LATENCY_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/random.hh"

namespace se {
namespace serve {

class LatencyReservoir
{
  public:
    explicit LatencyReservoir(size_t capacity = 4096,
                              uint64_t seed = 0x5eedULL)
        : cap_(capacity > 0 ? capacity : 1), rng_(seed)
    {
    }

    void
    add(double v)
    {
        ++count_;
        sum_ += v;
        if (v > max_)
            max_ = v;
        if (sample_.size() < cap_) {
            sample_.push_back(v);
            return;
        }
        // Algorithm R: the i-th value replaces a random slot with
        // probability cap/i, keeping the sample uniform over the
        // whole stream.
        const uint64_t j =
            (uint64_t)rng_.integer(0, (int64_t)count_ - 1);
        if (j < (uint64_t)cap_)
            sample_[(size_t)j] = v;
    }

    uint64_t count() const { return count_; }
    double mean() const { return count_ > 0 ? sum_ / (double)count_ : 0.0; }
    double max() const { return max_; }
    size_t capacity() const { return cap_; }
    size_t sampleSize() const { return sample_.size(); }

    /** The current sample, sorted ascending (percentile source). */
    std::vector<double>
    sortedSample() const
    {
        std::vector<double> s = sample_;
        std::sort(s.begin(), s.end());
        return s;
    }

  private:
    size_t cap_;
    std::vector<double> sample_;
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double max_ = 0.0;
    Rng rng_;
};

} // namespace serve
} // namespace se

#endif // SE_SERVE_LATENCY_HH
