/**
 * @file
 * Sparsity annotation of paper-scale workloads.
 *
 * The accelerator models consume per-layer sparsity statistics. Two
 * sources exist: (a) measured values from reduced-scale functional runs
 * (SmartExchange compression reports + activation statistics), and
 * (b) calibrated per-model defaults matching the statistics the paper
 * reports (Table II/III sparsity columns, Fig. 4 bit-level sparsity).
 */

#ifndef SE_ACCEL_ANNOTATE_HH
#define SE_ACCEL_ANNOTATE_HH

#include "models/zoo.hh"
#include "sim/layer_shape.hh"

namespace se {
namespace accel {

/** Uniform sparsity statistics applied across a workload. */
struct SparsityProfile
{
    double weightVectorSparsity = 0.0;
    double weightElementSparsity = 0.0;
    double channelSparsity = 0.0;
    double actValueSparsity = 0.45;
    double actVectorSparsity = 0.05;
    double actAvgBoothDigits = 1.2;   ///< of 4 possible digits
    double actAvgEssentialBits = 1.3; ///< of 8 possible bits
};

/** Apply a profile to every layer (first layer's input stays dense). */
void annotate(sim::Workload &w, const SparsityProfile &p);

/**
 * Per-model default profiles calibrated to the paper's reported
 * statistics: SmartExchange sparsity from Tables II/III, activation
 * bit-level sparsity from Fig. 4.
 */
SparsityProfile defaultProfile(models::ModelId id);

/** An annotated paper-scale workload in one call. */
sim::Workload annotatedWorkload(models::ModelId id);

} // namespace accel
} // namespace se

#endif // SE_ACCEL_ANNOTATE_HH
