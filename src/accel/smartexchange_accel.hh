/**
 * @file
 * The SmartExchange accelerator model (Section IV).
 *
 * Features modelled:
 *  - weights travel as {Ce, B}: non-zero coefficient rows (4-bit) plus
 *    a 1-bit vector index and a tiny 8-bit basis per filter;
 *  - rebuild engines (REs) inside the PE lines restore weights via
 *    shift-and-add, with ping-pong double-REs hiding basis-load
 *    stalls;
 *  - an index selector pairs non-zero coefficient rows with non-zero
 *    activation rows, skipping both computation and GB traffic;
 *  - bit-serial Booth multipliers exploit activation bit-level
 *    sparsity;
 *  - 1D row-stationary dataflow within PE lines (input rows reused
 *    for S cycles), output-stationary across a slice;
 *  - a dedicated dataflow remap for depth-wise CONV (R 1D convolutions
 *    spread across PE lines) and MAC-array clustering for
 *    squeeze-excite/FC layers.
 *
 * Every feature has an ablation switch so the benches can reproduce
 * the paper's component-contribution studies (Section V-B, Fig. 15).
 */

#ifndef SE_ACCEL_SMARTEXCHANGE_ACCEL_HH
#define SE_ACCEL_SMARTEXCHANGE_ACCEL_HH

#include "accel/accelerator.hh"

namespace se {
namespace accel {

/** Ablation switches for the SmartExchange accelerator. */
struct SeAccelOptions
{
    /** Vector-sparsity skipping via the index selector. */
    bool useIndexSelector = true;
    /** Bit-serial Booth MACs (otherwise plain 8-bit parallel MACs). */
    bool useBitSerial = true;
    /** SmartExchange weight compression in DRAM/GB (otherwise dense
     *  8-bit weights move). */
    bool useCompression = true;
    /** Dedicated depth-wise / squeeze-excite dataflow (Section IV-B,
     *  Fig. 15 ablation). */
    bool dedicatedCompactSupport = true;
    /** REs placed inside PE lines; when false, weights are rebuilt at
     *  the GB and move to PEs dense (RE-placement principle). */
    bool rebuildInPeLine = true;
    /** Ping-pong double REs; when false, basis loads stall the PEs. */
    bool pingPongRe = true;
};

/** The SmartExchange accelerator. */
class SmartExchangeAccel : public Accelerator
{
  public:
    explicit SmartExchangeAccel(SeAccelOptions opts = {},
                                sim::EnergyModel em = {})
        : Accelerator(sim::ArrayConfig::bitSerialDefault(), em),
          opts(opts)
    {}

    std::string name() const override { return "SmartExchange"; }
    sim::RunStats runLayer(const sim::LayerShape &l) const override;

    const SeAccelOptions &options() const { return opts; }

  private:
    SeAccelOptions opts;
};

} // namespace accel
} // namespace se

#endif // SE_ACCEL_SMARTEXCHANGE_ACCEL_HH
