/**
 * @file
 * Base class of the cycle-approximate accelerator models.
 *
 * Methodology: every accelerator is evaluated per layer under the same
 * Table V resource budget and the same Table I unit energies. A layer
 * run produces cycles (max of compute-bound and DRAM-bandwidth-bound
 * terms) and an energy breakdown over the Fig. 13 components. The
 * models count the same quantities the paper's RTL-validated simulator
 * counts — DRAM/GB/RF accesses and datapath operations under each
 * dataflow — which is what the published relative results reduce to.
 */

#ifndef SE_ACCEL_ACCELERATOR_HH
#define SE_ACCEL_ACCELERATOR_HH

#include <memory>
#include <string>

#include "sim/config.hh"
#include "sim/energy_model.hh"
#include "sim/layer_shape.hh"
#include "sim/stats.hh"

namespace se {
namespace accel {

/** Abstract accelerator model. */
class Accelerator
{
  public:
    Accelerator(sim::ArrayConfig cfg, sim::EnergyModel em)
        : cfg(cfg), em(em)
    {}
    virtual ~Accelerator() = default;

    virtual std::string name() const = 0;

    /** Simulate one layer at batch 1. */
    virtual sim::RunStats runLayer(const sim::LayerShape &l) const = 0;

    /**
     * Simulate a whole network. include_fc=false reproduces the
     * paper's Figures 10-12 protocol (FC layers excluded for fairness
     * to SCNN); squeeze-excite layers always run.
     */
    sim::RunStats runNetwork(const sim::Workload &w,
                             bool include_fc = true) const;

    const sim::ArrayConfig &config() const { return cfg; }
    const sim::EnergyModel &energyModel() const { return em; }

  protected:
    /** Add DRAM traffic + energy for one tensor stream. */
    void
    addDram(sim::RunStats &st, sim::Component comp, int64_t bits) const
    {
        st.energy(comp) += em.dramEnergy(bits);
        st.dramTrafficBits += bits;
    }

    /** Add one SRAM stream against a bank of the given capacity. */
    void
    addSram(sim::RunStats &st, sim::Component comp, int64_t bits,
            int64_t bank_bytes) const
    {
        st.energy(comp) += em.sramEnergy(bits, bank_bytes);
    }

    /**
     * Combine compute-bound and weight-fetch-bound cycles. Activation
     * streams are double-buffered behind compute (the paper expands
     * the input GB bandwidth 4x for exactly this reason), so only the
     * weight/index DRAM stream can stall the array.
     */
    int64_t
    boundCycles(double compute_cycles, int64_t weight_dram_bits) const
    {
        const double dram_cycles =
            (double)weight_dram_bits / 8.0 / cfg.dramBytesPerCycle;
        return (int64_t)std::max(compute_cycles, dram_cycles) + 1;
    }

    /**
     * DRAM traffic fraction for an activation tensor: tensors that fit
     * in the input GB are mostly retained on chip between layers.
     */
    double
    actDramFraction(int64_t bits) const
    {
        return bits / 8 > cfg.inputGbBytes
                   ? 1.0 : cfg.onChipRetentionResidual;
    }

    /** Charge the per-cycle array control/static energy. */
    void
    addControl(sim::RunStats &st) const
    {
        st.energy(sim::Component::Pe) +=
            (double)st.cycles * em.arrayControlPjPerCycle;
    }

    sim::ArrayConfig cfg;
    sim::EnergyModel em;
};

using AcceleratorPtr = std::unique_ptr<Accelerator>;

} // namespace accel
} // namespace se

#endif // SE_ACCEL_ACCELERATOR_HH
