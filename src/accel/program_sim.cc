#include "accel/program_sim.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace se {
namespace accel {

using compiler::Instruction;
using compiler::Opcode;
using compiler::TilePlan;
using sim::LayerKind;
using sim::LayerShape;

namespace {

/** Per-layer derived quantities used while walking the stream. */
struct LayerContext
{
    double computeCyclesPerTilePair = 0.0;  ///< one (mt, ct) Compute
    double coeffBytesPerMTile = 0.0;
    double basisBytesPerMTile = 0.0;
    double inputBytesPerTile = 0.0;
    double outputBytesPerMTile = 0.0;
};

LayerContext
deriveContext(const LayerShape &l, const TilePlan &plan,
              const sim::ArrayConfig &cfg)
{
    LayerContext ctx;
    // Effective work after vector skipping, with the partial
    // cycle-conversion used by the analytical model.
    const double keep_pairs = (1.0 - l.weightVectorSparsity) *
                              (1.0 - l.actVectorSparsity);
    const double cycle_keep =
        1.0 - cfg.vectorSkipCycleEfficiency * (1.0 - keep_pairs);
    const double serial_digits =
        std::max(1.0, l.actAvgBoothDigits * cfg.digitSyncOverhead);
    const double util = std::max(plan.utilization, 1e-3);
    const double total_compute =
        (double)l.macs() * cycle_keep * serial_digits /
        ((double)cfg.bitSerialLanes() * util);
    const double tile_pairs =
        (double)(plan.mTiles * std::max<int64_t>(plan.cTiles, 1));
    ctx.computeCyclesPerTilePair = total_compute / tile_pairs;

    const int64_t s = std::max<int64_t>(l.s, 1);
    const int64_t rows = std::max<int64_t>(1, l.weightCount() / s);
    const int64_t nz_rows =
        (int64_t)((double)rows * (1.0 - l.weightVectorSparsity));
    const double ce_bytes =
        (double)(nz_rows * s * l.coefBits + rows) / 8.0;
    const double basis_bytes =
        (l.kind == LayerKind::Conv ||
         l.kind == LayerKind::DepthwiseConv)
            ? (double)(l.m * s * s * l.basisBits) / 8.0
            : (double)(s * s * l.basisBits) / 8.0;
    ctx.coeffBytesPerMTile = ce_bytes / (double)plan.mTiles;
    ctx.basisBytesPerMTile = basis_bytes / (double)plan.mTiles;

    const int64_t input_tiles =
        plan.inputFitsGb
            ? 1
            : std::max<int64_t>(
                  1, (plan.inputGbBytes + cfg.inputGbBytes - 1) /
                         cfg.inputGbBytes);
    ctx.inputBytesPerTile =
        (double)(l.inputCount() * l.actBits) / 8.0 /
        (double)input_tiles;
    ctx.outputBytesPerMTile =
        (double)(l.outputCount() * l.actBits) / 8.0 /
        (double)plan.mTiles;
    return ctx;
}

} // namespace

ProgramStats
simulateProgram(const compiler::Program &prog, const sim::Workload &w,
                const sim::ArrayConfig &cfg)
{
    SE_ASSERT(prog.plans.size() == w.layers.size(),
              "program/workload layer count mismatch");

    ProgramStats st;
    st.layerCycles.assign(w.layers.size(), 0);

    std::vector<LayerContext> ctx;
    ctx.reserve(w.layers.size());
    for (size_t i = 0; i < w.layers.size(); ++i)
        ctx.push_back(
            deriveContext(w.layers[i], prog.plans[i], cfg));

    // Resource availability times (cycle stamps). Outputs drain
    // through the FIFO-buffered write-back path (Section IV-B) so
    // stores do not block the read channel that feeds the next tile's
    // coefficient/input loads.
    double dram_free = 0.0, compute_free = 0.0, writeback_free = 0.0;
    // Readiness of the data the next Compute needs, per layer walk.
    double input_ready = 0.0, coeff_ready = 0.0, basis_ready = 0.0;
    std::vector<double> layer_start(w.layers.size(), -1.0);
    std::vector<double> layer_end(w.layers.size(), 0.0);
    double mtile_compute_done = 0.0;

    auto dramOp = [&](double bytes, double earliest) {
        const double dur = bytes / cfg.dramBytesPerCycle;
        const double start = std::max(dram_free, earliest);
        dram_free = start + dur;
        st.dramBusyCycles += (int64_t)dur;
        return dram_free;
    };

    for (const auto &ins : prog.instructions) {
        const size_t li = (size_t)ins.layer;
        const LayerContext &c = ctx[li];
        switch (ins.op) {
          case Opcode::ConfigLayer:
            // One controller cycle; negligible, but marks layer start.
            if (layer_start[li] < 0.0)
                layer_start[li] =
                    std::max(dram_free, compute_free);
            mtile_compute_done = 0.0;
            break;
          case Opcode::LoadInput:
            input_ready = dramOp(c.inputBytesPerTile, 0.0);
            break;
          case Opcode::LoadCoeff:
            coeff_ready = dramOp(c.coeffBytesPerMTile, 0.0);
            break;
          case Opcode::LoadBasis:
            // Basis moves from the weight buffer to the RE register
            // files; the ping-pong pair hides it unless it is the
            // very first basis of the layer (already covered by the
            // coefficient load time).
            basis_ready = coeff_ready;
            break;
          case Opcode::Compute: {
            const double ready = std::max(
                {input_ready, coeff_ready, basis_ready});
            const double start = std::max(compute_free, ready);
            st.stallCycles += (int64_t)std::max(
                0.0, ready - compute_free);
            compute_free = start + c.computeCyclesPerTilePair;
            st.computeBusyCycles +=
                (int64_t)c.computeCyclesPerTilePair;
            mtile_compute_done = compute_free;
            layer_end[li] = std::max(layer_end[li], compute_free);
            break;
          }
          case Opcode::StoreOutput: {
            const double dur =
                c.outputBytesPerMTile / cfg.dramBytesPerCycle;
            const double start =
                std::max(writeback_free, mtile_compute_done);
            writeback_free = start + dur;
            st.writebackBusyCycles += (int64_t)dur;
            layer_end[li] = std::max(layer_end[li], writeback_free);
            break;
          }
        }
    }

    const double total =
        std::max({dram_free, compute_free, writeback_free});
    st.totalCycles = (int64_t)total + 1;
    for (size_t i = 0; i < w.layers.size(); ++i)
        st.layerCycles[i] = (int64_t)std::max(
            0.0, layer_end[i] - std::max(layer_start[i], 0.0));
    return st;
}

} // namespace accel
} // namespace se
