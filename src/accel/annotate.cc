#include "accel/annotate.hh"

namespace se {
namespace accel {

void
annotate(sim::Workload &w, const SparsityProfile &p)
{
    bool first = true;
    for (auto &l : w.layers) {
        l.weightVectorSparsity = p.weightVectorSparsity;
        l.weightElementSparsity = p.weightElementSparsity;
        l.channelSparsity = first ? 0.0 : p.channelSparsity;
        l.actValueSparsity = first ? 0.1 : p.actValueSparsity;
        l.actVectorSparsity = first ? 0.0 : p.actVectorSparsity;
        l.actAvgBoothDigits = p.actAvgBoothDigits;
        l.actAvgEssentialBits = p.actAvgEssentialBits;
        // Depth-wise layers keep little weight sparsity (tiny kernels).
        if (l.kind == sim::LayerKind::DepthwiseConv) {
            l.weightVectorSparsity = p.weightVectorSparsity * 0.2;
            l.weightElementSparsity = p.weightElementSparsity * 0.3;
        }
        first = false;
    }
}

SparsityProfile
defaultProfile(models::ModelId id)
{
    using models::ModelId;
    SparsityProfile p;
    switch (id) {
      case ModelId::VGG11:
        // Table II: 86.0% sparsity; Fig. 4: 86.5% / 76.6% bit sparsity.
        p.weightVectorSparsity = 0.80;
        p.weightElementSparsity = 0.86;
        p.channelSparsity = 0.30;
        p.actAvgEssentialBits = 8.0 * (1.0 - 0.865);
        p.actAvgBoothDigits = 4.0 * (1.0 - 0.766);
        p.actValueSparsity = 0.50;
        p.actVectorSparsity = 0.08;
        break;
      case ModelId::ResNet50:
        // Table II: 45-58.6% sparsity; Fig. 4: 85.2% / 73.9%.
        p.weightVectorSparsity = 0.45;
        p.weightElementSparsity = 0.55;
        p.channelSparsity = 0.10;
        p.actAvgEssentialBits = 8.0 * (1.0 - 0.852);
        p.actAvgBoothDigits = 4.0 * (1.0 - 0.739);
        p.actValueSparsity = 0.45;
        p.actVectorSparsity = 0.05;
        break;
      case ModelId::MobileNetV2:
        // Table III: 0% weight sparsity; Fig. 4: 79.8% / 66.0%.
        p.weightVectorSparsity = 0.0;
        p.weightElementSparsity = 0.10;
        p.channelSparsity = 0.0;
        p.actAvgEssentialBits = 8.0 * (1.0 - 0.798);
        p.actAvgBoothDigits = 4.0 * (1.0 - 0.660);
        p.actValueSparsity = 0.35;
        // Up to 27.1% vector sparsity in late layers; low on average.
        p.actVectorSparsity = 0.08;
        break;
      case ModelId::EfficientNetB0:
        p.weightVectorSparsity = 0.0;
        p.weightElementSparsity = 0.10;
        p.channelSparsity = 0.0;
        p.actAvgEssentialBits = 8.0 * (1.0 - 0.80);
        p.actAvgBoothDigits = 4.0 * (1.0 - 0.67);
        p.actValueSparsity = 0.30;
        p.actVectorSparsity = 0.05;
        break;
      case ModelId::VGG19:
        // Table II: 92.8-93.7%; Fig. 4: 86.8% / 76.9%. The paper also
        // notes 90.79% filter-wise sparsity enabling large activation
        // pruning on VGG19/CIFAR.
        p.weightVectorSparsity = 0.90;
        p.weightElementSparsity = 0.93;
        p.channelSparsity = 0.45;
        p.actAvgEssentialBits = 8.0 * (1.0 - 0.868);
        p.actAvgBoothDigits = 4.0 * (1.0 - 0.769);
        p.actValueSparsity = 0.55;
        p.actVectorSparsity = 0.15;
        break;
      case ModelId::ResNet164:
        // Table II: 37.6-61%; Fig. 4: 84.1% / 73.0%; vector-wise
        // activation sparsity up to 32.4%.
        p.weightVectorSparsity = 0.50;
        p.weightElementSparsity = 0.61;
        p.channelSparsity = 0.15;
        p.actAvgEssentialBits = 8.0 * (1.0 - 0.841);
        p.actAvgBoothDigits = 4.0 * (1.0 - 0.730);
        p.actValueSparsity = 0.45;
        p.actVectorSparsity = 0.10;
        break;
      case ModelId::DeepLabV3Plus:
        // Section V-A: 10.86x CR; Fig. 4: 86.7% / 76.1%.
        p.weightVectorSparsity = 0.55;
        p.weightElementSparsity = 0.65;
        p.channelSparsity = 0.15;
        p.actAvgEssentialBits = 8.0 * (1.0 - 0.867);
        p.actAvgBoothDigits = 4.0 * (1.0 - 0.761);
        p.actValueSparsity = 0.45;
        p.actVectorSparsity = 0.08;
        break;
      case ModelId::MLP1:
        p.weightVectorSparsity = 0.80;
        p.weightElementSparsity = 0.82;
        p.actAvgEssentialBits = 1.2;
        p.actAvgBoothDigits = 1.0;
        break;
      case ModelId::MLP2:
        p.weightVectorSparsity = 0.90;
        p.weightElementSparsity = 0.93;
        p.actAvgEssentialBits = 1.2;
        p.actAvgBoothDigits = 1.0;
        break;
    }
    return p;
}

sim::Workload
annotatedWorkload(models::ModelId id)
{
    sim::Workload w = models::paperShapes(id);
    annotate(w, defaultProfile(id));
    return w;
}

} // namespace accel
} // namespace se
