#include "accel/accelerator.hh"

namespace se {
namespace accel {

sim::RunStats
Accelerator::runNetwork(const sim::Workload &w, bool include_fc) const
{
    sim::RunStats total;
    for (const auto &l : w.layers) {
        if (!include_fc && l.kind == sim::LayerKind::FullyConnected)
            continue;
        total += runLayer(l);
    }
    return total;
}

} // namespace accel
} // namespace se
