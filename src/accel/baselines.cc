#include "accel/baselines.hh"

#include <algorithm>
#include <cmath>

namespace se {
namespace accel {

using sim::Component;
using sim::LayerKind;
using sim::LayerShape;
using sim::RunStats;

namespace {

/**
 * Structural utilization of a parallel PE array on a layer: how much
 * of the inner-product parallelism (dimC x dimF lanes) a layer can
 * actually occupy. Depth-wise layers have a single input channel per
 * group and starve dense arrays; squeeze-excite/FC layers have no
 * weight reuse but can fill lanes.
 */
double
structuralUtilization(const sim::ArrayConfig &cfg, const LayerShape &l)
{
    const double lanes = (double)(cfg.dimC * cfg.dimF);
    switch (l.kind) {
      case LayerKind::DepthwiseConv:
        // Only R*S useful products per output; channels do not help.
        return std::min(1.0, (double)(l.r * l.s) / lanes);
      case LayerKind::FullyConnected:
      case LayerKind::SqueezeExcite:
        return std::min(1.0, (double)l.c / lanes);
      case LayerKind::Conv:
        return std::min(1.0, (double)(l.c * l.r * l.s) / lanes);
    }
    return 1.0;
}

/** Output-channel tiling passes over the input. */
int64_t
outputPasses(const sim::ArrayConfig &cfg, const LayerShape &l)
{
    return std::max<int64_t>(1, (l.m + cfg.dimM - 1) / cfg.dimM);
}

} // namespace

// --------------------------------------------------------------- DianNao

RunStats
DianNao::runLayer(const LayerShape &l) const
{
    RunStats st;
    const int64_t macs = l.macs();
    const int64_t in_bits = l.inputCount() * l.actBits;
    const int64_t out_bits = l.outputCount() * l.actBits;
    const int64_t w_bits = l.weightCount() * l.weightBits;

    // DRAM: dense weights; activations pay only the non-retained
    // fraction when they fit on chip.
    addDram(st, Component::DramInput,
            (int64_t)((double)in_bits * actDramFraction(in_bits)));
    addDram(st, Component::DramWeight, w_bits);
    addDram(st, Component::DramOutput,
            (int64_t)((double)out_bits * actDramFraction(out_bits)));

    // GB traffic. Inputs are broadcast across the dimM parallel output
    // neurons and re-streamed once per output-channel pass; weights
    // stream from the buffer with only the inner spatial loop (dimF)
    // of reuse.
    const int64_t in_reads = in_bits * outputPasses(cfg, l);
    const int64_t w_reads = macs / std::max<int64_t>(1, cfg.dimF) * 8;
    addSram(st, Component::InputGbWrite, in_bits, cfg.inputGbBankBytes);
    addSram(st, Component::InputGbRead, in_reads, cfg.inputGbBankBytes);
    addSram(st, Component::WeightGbWrite, w_bits,
            cfg.weightBufBankBytes);
    addSram(st, Component::WeightGbRead, w_reads,
            cfg.weightBufBankBytes);
    addSram(st, Component::OutputGbWrite, out_bits,
            cfg.outputGbBankBytes);
    addSram(st, Component::OutputGbRead, out_bits,
            cfg.outputGbBankBytes);

    // Datapath: one 8-bit MAC per operation plus adder-tree merges.
    st.energy(Component::Pe) += (double)macs * em.macPj;
    st.energy(Component::Accumulator) +=
        (double)macs / (double)cfg.dimF * em.addPj;

    const double util =
        std::max(structuralUtilization(cfg, l), 1e-3);
    const double compute =
        (double)macs / ((double)cfg.parallelMultipliers() * util);
    st.cycles = boundCycles(compute, w_bits);
    addControl(st);
    return st;
}

// ----------------------------------------------------------- Cambricon-X

RunStats
CambriconX::runLayer(const LayerShape &l) const
{
    RunStats st;
    // Baselines run the rebuilt dense model, where the visible zero
    // weights are the vector-wise-pruned rows (the Ce-space element
    // sparsity is not observable without the SmartExchange format).
    const double keep = 1.0 - l.weightVectorSparsity;
    const int64_t macs = l.macs();
    const double eff_macs = (double)macs * keep;

    const int64_t in_bits = l.inputCount() * l.actBits;
    const int64_t out_bits = l.outputCount() * l.actBits;
    // Non-zero weights + step index (4b per nnz, unstructured).
    const int64_t nnz = (int64_t)((double)l.weightCount() * keep);
    const int64_t w_bits = nnz * l.weightBits;
    const int64_t idx_bits = nnz * 4;

    addDram(st, Component::DramInput,
            (int64_t)((double)in_bits * actDramFraction(in_bits)));
    addDram(st, Component::DramWeight, w_bits);
    addDram(st, Component::DramIndex, idx_bits);
    addDram(st, Component::DramOutput,
            (int64_t)((double)out_bits * actDramFraction(out_bits)));

    // The indexing module gathers the needed activations per PE; input
    // reads scale with surviving MACs.
    const int64_t in_reads = in_bits * outputPasses(cfg, l);
    addSram(st, Component::InputGbWrite, in_bits, cfg.inputGbBankBytes);
    addSram(st, Component::InputGbRead, in_reads, cfg.inputGbBankBytes);
    addSram(st, Component::WeightGbWrite, w_bits + idx_bits,
            cfg.weightBufBankBytes);
    addSram(st, Component::WeightGbRead, w_bits + idx_bits,
            cfg.weightBufBankBytes);
    addSram(st, Component::OutputGbWrite, out_bits,
            cfg.outputGbBankBytes);
    addSram(st, Component::OutputGbRead, out_bits,
            cfg.outputGbBankBytes);

    st.energy(Component::Pe) += eff_macs * em.macPj;
    st.energy(Component::Accumulator) +=
        eff_macs / (double)cfg.dimF * em.addPj;
    // Indexing-module overhead per surviving weight.
    st.energy(Component::IndexSelector) +=
        (double)nnz * em.indexSelectPj * 4.0;

    // Unstructured sparsity causes lane imbalance: ~85% of ideal.
    const double util =
        std::max(structuralUtilization(cfg, l) * 0.85, 1e-3);
    const double compute =
        eff_macs / ((double)cfg.parallelMultipliers() * util);
    st.cycles = boundCycles(compute, w_bits + idx_bits);
    addControl(st);
    return st;
}

// ------------------------------------------------------------------ SCNN

RunStats
Scnn::runLayer(const LayerShape &l) const
{
    RunStats st;
    // Same dense-model visibility argument as Cambricon-X.
    const double w_keep = 1.0 - l.weightVectorSparsity;
    const double a_keep = 1.0 - l.actValueSparsity;
    const int64_t macs = l.macs();
    const double eff_macs = (double)macs * w_keep * a_keep;

    // Both tensors move compressed: value + 4-bit RLC index.
    const int64_t in_vals =
        (int64_t)((double)l.inputCount() * a_keep);
    const int64_t out_bits = l.outputCount() * l.actBits;
    const int64_t w_nnz = (int64_t)((double)l.weightCount() * w_keep);
    const int64_t in_bits = in_vals * (l.actBits + 4);
    const int64_t w_bits = w_nnz * l.weightBits;
    const int64_t idx_bits = w_nnz * 4;

    addDram(st, Component::DramInput,
            (int64_t)((double)in_bits * actDramFraction(in_bits)));
    addDram(st, Component::DramWeight, w_bits);
    addDram(st, Component::DramIndex, idx_bits);
    addDram(st, Component::DramOutput,
            (int64_t)((double)out_bits * actDramFraction(out_bits)));

    // SCNN's Cartesian-product dataflow multicasts both operands, so
    // GB reads are proportional to the compressed tensors.
    const int64_t in_reads = in_bits * outputPasses(cfg, l);
    addSram(st, Component::InputGbWrite, in_bits, cfg.inputGbBankBytes);
    addSram(st, Component::InputGbRead, in_reads, cfg.inputGbBankBytes);
    addSram(st, Component::WeightGbWrite, w_bits + idx_bits,
            cfg.weightBufBankBytes);
    addSram(st, Component::WeightGbRead, w_bits + idx_bits,
            cfg.weightBufBankBytes);
    // Scatter-accumulation doubles output-buffer traffic.
    addSram(st, Component::OutputGbWrite, out_bits * 2,
            cfg.outputGbBankBytes);
    addSram(st, Component::OutputGbRead, out_bits * 2,
            cfg.outputGbBankBytes);

    st.energy(Component::Pe) += eff_macs * em.macPj;
    // Crossbar scatter adds cost more than tree accumulation.
    st.energy(Component::Accumulator) += eff_macs * em.addPj;

    // Cartesian-product PEs suffer contention; 1x1/depth-wise layers
    // map poorly (the paper excludes squeeze-excite nets for SCNN).
    double util = structuralUtilization(cfg, l) * 0.7;
    if (l.kind == LayerKind::Conv && l.r == 1 && l.s == 1)
        util *= 0.5;
    util = std::max(util, 1e-3);
    const double compute =
        eff_macs / ((double)cfg.parallelMultipliers() * util);
    st.cycles = boundCycles(compute, w_bits + idx_bits);
    addControl(st);
    return st;
}

// --------------------------------------------------------- Bit-pragmatic

RunStats
BitPragmatic::runLayer(const LayerShape &l) const
{
    RunStats st;
    const int64_t macs = l.macs();
    const int64_t in_bits = l.inputCount() * l.actBits;
    const int64_t out_bits = l.outputCount() * l.actBits;
    const int64_t w_bits = l.weightCount() * l.weightBits;

    addDram(st, Component::DramInput,
            (int64_t)((double)in_bits * actDramFraction(in_bits)));
    addDram(st, Component::DramWeight, w_bits);
    addDram(st, Component::DramOutput,
            (int64_t)((double)out_bits * actDramFraction(out_bits)));

    const int64_t in_reads = in_bits * outputPasses(cfg, l);
    const int64_t w_reads = macs / std::max<int64_t>(1, cfg.dimF) * 8;
    addSram(st, Component::InputGbWrite, in_bits, cfg.inputGbBankBytes);
    addSram(st, Component::InputGbRead, in_reads, cfg.inputGbBankBytes);
    addSram(st, Component::WeightGbWrite, w_bits,
            cfg.weightBufBankBytes);
    addSram(st, Component::WeightGbRead, w_reads,
            cfg.weightBufBankBytes);
    addSram(st, Component::OutputGbWrite, out_bits,
            cfg.outputGbBankBytes);
    addSram(st, Component::OutputGbRead, out_bits,
            cfg.outputGbBankBytes);

    // Serial processing of non-zero Booth digits only; synchronized
    // lanes pay the digit-sync overhead in time (not energy).
    const double digit_ops = (double)macs * l.actAvgBoothDigits;
    st.energy(Component::Pe) += digit_ops * em.bitSerialDigitPj;
    st.energy(Component::Accumulator) +=
        (double)macs / (double)cfg.dimF * em.addPj;

    const double util =
        std::max(structuralUtilization(cfg, l), 1e-3);
    const double serial_digits = std::max(
        1.0, l.actAvgBoothDigits * cfg.digitSyncOverhead);
    const double compute = (double)macs * serial_digits /
                           ((double)cfg.bitSerialLanes() * util);
    st.cycles = boundCycles(compute, w_bits);
    addControl(st);
    return st;
}

} // namespace accel
} // namespace se
