/**
 * @file
 * Instruction-driven program simulator: executes the compiler's
 * instruction stream (Fig. 7) on a two-resource timeline — the DRAM
 * channel and the PE array — with data dependencies between loads and
 * computes. Because loads only contend for the DRAM resource, the
 * next tile's coefficient/input loads naturally overlap the current
 * tile's compute, modelling the double-buffered (ping-pong) operation
 * of Section IV-B.
 *
 * This sits between the per-layer analytical models (src/accel) and
 * the functional engine (src/arch): it is driven by the *compiled
 * program*, so tiling decisions and load/compute overlap are visible.
 */

#ifndef SE_ACCEL_PROGRAM_SIM_HH
#define SE_ACCEL_PROGRAM_SIM_HH

#include <vector>

#include "compiler/compiler.hh"
#include "sim/config.hh"
#include "sim/energy_model.hh"
#include "sim/layer_shape.hh"

namespace se {
namespace accel {

/** Timeline outcome of one program execution. */
struct ProgramStats
{
    int64_t totalCycles = 0;
    std::vector<int64_t> layerCycles;   ///< end-to-end per layer
    int64_t dramBusyCycles = 0;      ///< read channel (loads)
    int64_t writebackBusyCycles = 0; ///< write-back channel (stores)
    int64_t computeBusyCycles = 0;
    int64_t stallCycles = 0;            ///< compute waiting on data

    double
    dramUtilization() const
    {
        return totalCycles > 0
                   ? (double)dramBusyCycles / (double)totalCycles
                   : 0.0;
    }
    double
    computeUtilization() const
    {
        return totalCycles > 0
                   ? (double)computeBusyCycles / (double)totalCycles
                   : 0.0;
    }
};

/**
 * Execute a compiled program against its workload. The workload must
 * be the one the program was compiled from (layer indices must
 * correspond).
 */
ProgramStats simulateProgram(const compiler::Program &prog,
                             const sim::Workload &w,
                             const sim::ArrayConfig &cfg);

} // namespace accel
} // namespace se

#endif // SE_ACCEL_PROGRAM_SIM_HH
