/**
 * @file
 * The four baseline accelerators of Table IV, reimplemented from their
 * papers' dataflow descriptions under the shared Table V resources:
 *
 *   DianNao      — dense models, 1K parallel 8-bit multipliers;
 *   Cambricon-X  — unstructured weight sparsity (step indexing);
 *   SCNN         — unstructured weight sparsity + activation value
 *                  sparsity (RLC-compressed tensors, scatter adds);
 *   Bit-pragmatic— bit-level activation sparsity (serial essential
 *                  Booth digits, 8K bit-serial lanes).
 */

#ifndef SE_ACCEL_BASELINES_HH
#define SE_ACCEL_BASELINES_HH

#include "accel/accelerator.hh"

namespace se {
namespace accel {

/** DianNao: dense dataflow, no sparsity exploitation. */
class DianNao : public Accelerator
{
  public:
    explicit DianNao(sim::EnergyModel em = {})
        : Accelerator(sim::ArrayConfig::parallelDefault(), em)
    {}

    std::string name() const override { return "DianNao"; }
    sim::RunStats runLayer(const sim::LayerShape &l) const override;
};

/** Cambricon-X: skips zero weights via per-PE step indexing. */
class CambriconX : public Accelerator
{
  public:
    explicit CambriconX(sim::EnergyModel em = {})
        : Accelerator(sim::ArrayConfig::parallelDefault(), em)
    {}

    std::string name() const override { return "Cambricon-X"; }
    sim::RunStats runLayer(const sim::LayerShape &l) const override;
};

/** SCNN: compressed weights and activations, Cartesian-product PEs. */
class Scnn : public Accelerator
{
  public:
    explicit Scnn(sim::EnergyModel em = {})
        : Accelerator(sim::ArrayConfig::parallelDefault(), em)
    {}

    std::string name() const override { return "SCNN"; }
    sim::RunStats runLayer(const sim::LayerShape &l) const override;
};

/** Bit-pragmatic: activation-bit-serial lanes, dense weights. */
class BitPragmatic : public Accelerator
{
  public:
    explicit BitPragmatic(sim::EnergyModel em = {})
        : Accelerator(sim::ArrayConfig::bitSerialDefault(), em)
    {}

    std::string name() const override { return "Bit-pragmatic"; }
    sim::RunStats runLayer(const sim::LayerShape &l) const override;
};

} // namespace accel
} // namespace se

#endif // SE_ACCEL_BASELINES_HH
