#include "accel/smartexchange_accel.hh"

#include <algorithm>
#include <cmath>

namespace se {
namespace accel {

using sim::Component;
using sim::LayerKind;
using sim::LayerShape;
using sim::RunStats;

RunStats
SmartExchangeAccel::runLayer(const LayerShape &l) const
{
    RunStats st;
    const int64_t macs = l.macs();
    const int64_t s = std::max<int64_t>(l.s, 1);

    // ---- effective work after sparsity skipping ------------------------
    const double vec_keep =
        opts.useIndexSelector ? 1.0 - l.weightVectorSparsity : 1.0;
    const double act_vec_keep =
        opts.useIndexSelector ? 1.0 - l.actVectorSparsity : 1.0;
    const double eff_macs = (double)macs * vec_keep * act_vec_keep;

    // ---- weight storage format ----------------------------------------
    // Rows of Ce across the layer: one per S-element weight vector.
    const int64_t rows =
        std::max<int64_t>(1, l.weightCount() / s);
    const int64_t nonzero_rows =
        (int64_t)((double)rows * (1.0 - l.weightVectorSparsity));
    // Basis matrices: one S x S per filter (8-bit entries).
    const int64_t basis_bits =
        (l.kind == LayerKind::Conv || l.kind == LayerKind::DepthwiseConv)
            ? l.m * s * s * l.basisBits
            : s * s * l.basisBits * std::max<int64_t>(1, l.m / 64);
    int64_t w_bits, idx_bits;
    if (opts.useCompression) {
        w_bits = nonzero_rows * s * l.coefBits + basis_bits;
        // 1-bit direct vector index; clustered zeros from channel
        // pruning are removed wholesale and carry no index bits.
        idx_bits =
            (int64_t)((double)rows * (1.0 - l.channelSparsity));
    } else {
        w_bits = l.weightCount() * l.weightBits;
        idx_bits = 0;
    }

    // ---- DRAM traffic ---------------------------------------------------
    // Channel-wise pruning lets the accelerator skip fetching the
    // input-feature-map regions of pruned channels.
    // Input skipping: pruned channels never fetch, and the aligned
    // share of vector-wise weight sparsity skips input rows from DRAM
    // too (Fig. 14's input DRAM+GB reduction with weight sparsity).
    const double in_vec_skip =
        opts.useIndexSelector
            ? cfg.inputVectorSkipAlignment * l.weightVectorSparsity
            : 0.0;
    const int64_t in_bits = (int64_t)((double)l.inputCount() *
                                      l.actBits *
                                      (1.0 - l.channelSparsity) *
                                      (1.0 - in_vec_skip));
    // Filter-pruned output channels (the next layer's pruned input
    // channels under the uniform profile) are never produced.
    const int64_t out_bits =
        (int64_t)((double)l.outputCount() * l.actBits *
                  (1.0 - l.channelSparsity));
    addDram(st, Component::DramInput,
            (int64_t)((double)in_bits * actDramFraction(in_bits)));
    addDram(st, Component::DramWeight, w_bits);
    addDram(st, Component::DramIndex, idx_bits);
    addDram(st, Component::DramOutput,
            (int64_t)((double)out_bits * actDramFraction(out_bits)));

    // ---- GB traffic ------------------------------------------------------
    // Inputs: written once; read once per output-channel pass, with
    // the index selector dropping rows whose coefficient vector (or
    // activation row) is zero. The 1D row-stationary FIFO amortizes S
    // reuses per fetch.
    const int64_t passes =
        std::max<int64_t>(1, (l.m + cfg.dimM - 1) / cfg.dimM);
    int64_t in_reads =
        (int64_t)((double)in_bits * (double)passes * vec_keep *
                  act_vec_keep);
    // Without the dedicated compact-model remap, the lone active PE
    // line per slice re-streams the input region that the remapped R
    // lines would have shared.
    if (l.kind == LayerKind::DepthwiseConv &&
        !opts.dedicatedCompactSupport)
        in_reads *= l.r;
    addSram(st, Component::InputGbWrite, in_bits, cfg.inputGbBankBytes);
    addSram(st, Component::InputGbRead, in_reads, cfg.inputGbBankBytes);

    // Weights: compressed coefficients/basis enter the distributed
    // per-slice buffers once and are consumed once (rows stay
    // stationary in the RE until their computations finish).
    const int64_t w_gb_bits =
        opts.rebuildInPeLine ? w_bits + idx_bits
                             : l.weightCount() * l.weightBits;
    addSram(st, Component::WeightGbWrite, w_gb_bits,
            cfg.weightBufBankBytes);
    addSram(st, Component::WeightGbRead, w_gb_bits,
            cfg.weightBufBankBytes);
    if (!opts.rebuildInPeLine) {
        // Rebuilding at the GB still pays the (cheap) rebuild ops but
        // moves dense weights across the array interconnect.
        addSram(st, Component::WeightGbRead,
                l.weightCount() * l.weightBits, cfg.weightBufBankBytes);
    }

    // Outputs: FIFO-buffered, written once, read once for write-back.
    addSram(st, Component::OutputGbWrite, out_bits,
            cfg.outputGbBankBytes);
    addSram(st, Component::OutputGbRead, out_bits,
            cfg.outputGbBankBytes);

    // ---- datapath ---------------------------------------------------------
    if (opts.useBitSerial) {
        const double digit_ops = eff_macs * l.actAvgBoothDigits;
        st.energy(Component::Pe) += digit_ops * em.bitSerialDigitPj;
    } else {
        st.energy(Component::Pe) += eff_macs * em.macPj;
    }
    st.energy(Component::Accumulator) +=
        eff_macs / (double)cfg.dimF * em.addPj;

    // RE: each surviving coefficient row rebuilds S weights with
    // shift-and-add (non-zero coefficients only) plus an RF read.
    if (opts.useCompression) {
        const double rebuilt_rows = (double)nonzero_rows;
        const double nnz_per_row =
            (double)s * (1.0 - l.weightElementSparsity) /
            std::max(1e-9, 1.0 - l.weightVectorSparsity);
        const double rebuild_adds =
            rebuilt_rows * std::min((double)s, nnz_per_row) * (double)s;
        st.energy(Component::Re) +=
            rebuild_adds * em.addPj + rebuilt_rows * em.rfPj8;
    }

    // Index selector: one comparison per (coefficient row, activation
    // row) pair examined.
    if (opts.useIndexSelector)
        st.energy(Component::IndexSelector) +=
            (double)rows * 2.0 * em.indexSelectPj;

    // ---- cycles --------------------------------------------------------------
    // Structural utilization of the 3D array under the SmartExchange
    // dataflow; the dedicated compact-model support remaps depth-wise
    // and squeeze-excite/FC layers to keep lanes busy.
    double util = 1.0;
    switch (l.kind) {
      case LayerKind::Conv:
        util = std::min(1.0, (double)l.c / (double)cfg.dimC) *
               std::min(1.0, (double)l.outW() / (double)cfg.dimF);
        break;
      case LayerKind::DepthwiseConv:
        if (opts.dedicatedCompactSupport) {
            // Map the R 1D convolutions of each filter across PE
            // lines and split MAC arrays into clusters.
            util = std::min(1.0, (double)l.r / (double)cfg.dimC) *
                   std::min(1.0, (double)l.outW() / (double)cfg.dimF);
        } else {
            // One PE line per slice does all the work.
            util = (1.0 / (double)cfg.dimC) *
                   std::min(1.0, (double)l.outW() / (double)cfg.dimF);
        }
        break;
      case LayerKind::FullyConnected:
      case LayerKind::SqueezeExcite:
        if (opts.dedicatedCompactSupport) {
            // MAC clusters serve multiple output pixels; both REs
            // feed the clusters.
            util = std::min(1.0, (double)l.c / (double)cfg.dimC) * 0.5;
        } else {
            util = std::min(1.0, (double)l.c / (double)cfg.dimC) /
                   (double)cfg.dimF;
        }
        break;
    }
    util = std::max(util, 1e-3);

    // Vector skipping converts only partially into cycle savings: the
    // index selector removes row pairs, but lockstepped PE lines leave
    // bubbles when their skip patterns diverge.
    const double keep_pairs = vec_keep * act_vec_keep;
    const double cycle_keep =
        1.0 - cfg.vectorSkipCycleEfficiency * (1.0 - keep_pairs);
    const double cycle_macs = (double)macs * cycle_keep;
    double compute;
    if (opts.useBitSerial) {
        const double serial_digits = std::max(
            1.0, l.actAvgBoothDigits * cfg.digitSyncOverhead);
        compute = cycle_macs * serial_digits /
                  ((double)cfg.bitSerialLanes() * util);
    } else {
        compute = cycle_macs /
                  ((double)(cfg.bitSerialLanes() / 8) * util);
    }

    // Basis-load stalls: each basis matrix occupies its RE for S*S
    // cycles of loading; ping-pong double REs hide this behind
    // compute, a single RE exposes it.
    if (opts.useCompression && !opts.pingPongRe) {
        const double basis_loads =
            (double)basis_bits / (double)l.basisBits;  // elements
        compute += basis_loads;
    }

    st.cycles = boundCycles(compute, w_bits + idx_bits);
    addControl(st);
    return st;
}

} // namespace accel
} // namespace se
