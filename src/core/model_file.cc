#include "core/model_file.hh"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "base/hash.hh"
#include "base/logging.hh"
#include "nn/layers.hh"

namespace se {
namespace core {

namespace {

constexpr uint32_t kMagic = 0x5345584Du;  // "SEXM"
constexpr uint32_t kVersion = 2;
constexpr uint32_t kVersionV3 = 3;
/** Widest alphabet a 4-bit nibble (1 sign + 3 code bits) can carry. */
constexpr int kMaxPackedLevels = 7;
/** Hard ceiling on any stored dimension / count (anti-corruption). */
constexpr int64_t kMaxDim = 1 << 24;
constexpr int64_t kMaxElems = 1 << 26;
constexpr uint64_t kMaxBodyBytes = 1ull << 31;

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is.good())
        throw ModelFileError(
            "unexpected end of SmartExchange model stream");
    return v;
}

void
writeString(std::ostream &os, const std::string &s)
{
    writePod<uint32_t>(os, (uint32_t)s.size());
    os.write(s.data(), (std::streamsize)s.size());
}

std::string
readString(std::istream &is)
{
    const uint32_t len = readPod<uint32_t>(is);
    if (len >= (1u << 20))
        throw ModelFileError("implausible string length in model file");
    std::string s((size_t)len, '\0');
    is.read(s.data(), len);
    if ((uint32_t)is.gcount() != len)
        throw ModelFileError("truncated string in model file");
    return s;
}

/** Encode a power-of-2 coefficient as one byte. */
uint8_t
encodeCoef(float v, const quant::Pow2Alphabet &a)
{
    if (v == 0.0f)
        return 0;
    int exp;
    const float frac = std::frexp(std::abs(v), &exp);
    SE_ASSERT(frac == 0.5f, "non-power-of-2 coefficient in file save");
    const int code = (exp - 1) - a.expMin() + 1;  // 1..numLevels
    SE_ASSERT(code >= 1 && code <= a.numLevels,
              "coefficient exponent outside alphabet");
    return (uint8_t)((v < 0 ? 0x80 : 0x00) | code);
}

float
decodeCoef(uint8_t byte, const quant::Pow2Alphabet &a)
{
    if (byte == 0)
        return 0.0f;
    const bool neg = (byte & 0x80) != 0;
    const int code = byte & 0x7F;
    // code 0 with the sign bit set (byte 0x80) is not a legal
    // encoding either — it would decode below the alphabet.
    if (code < 1 || code > a.numLevels)
        throw ModelFileError(
            "coefficient code outside the stored alphabet");
    return quant::pow2CodeValue(a.expMin(), code, neg);
}

void
checkDim(int64_t d, const char *what)
{
    if (d < 0 || d > kMaxDim)
        throw ModelFileError(std::string("implausible ") + what +
                             " in model file");
}

/** Convert a v2 coefficient byte to a v3 nibble (codes are codes). */
uint8_t
byteToNibble(uint8_t byte)
{
    if (byte == 0)
        return 0;
    const uint8_t code = byte & 0x7F;
    SE_ASSERT(code >= 1 && code <= kMaxPackedLevels,
              "coefficient code too wide for 4-bit packing");
    return (uint8_t)(((byte & 0x80) ? 0x8 : 0x0) | code);
}

float
decodeNibble(uint8_t nib, const quant::Pow2Alphabet &a)
{
    if (nib == 0)
        return 0.0f;
    const int code = nib & 0x7;
    // Nibble 0x8 (sign bit with exponent code 0) is the packed
    // sibling of the v2 byte 0x80 — not a legal encoding.
    if (code < 1 || code > a.numLevels)
        throw ModelFileError(
            "packed coefficient nibble outside the stored alphabet");
    return quant::pow2CodeValue(a.expMin(), code, (nib & 0x8) != 0);
}

} // namespace

PackedCe
packCe(const Tensor &ce, const quant::Pow2Alphabet &alphabet)
{
    SE_ASSERT(ce.ndim() == 2, "packCe expects a 2-D Ce matrix");
    if (alphabet.numLevels < 1 ||
        alphabet.numLevels > kMaxPackedLevels)
        throw ModelFileError(
            "alphabet has " + std::to_string(alphabet.numLevels) +
            " levels; 4-bit packing carries at most " +
            std::to_string(kMaxPackedLevels) +
            " (save this model as v2)");
    PackedCe p;
    p.rows = ce.dim(0);
    p.cols = ce.dim(1);
    p.alphabet = alphabet;
    p.rowMask.assign((size_t)((p.rows + 7) / 8), 0);

    std::vector<uint8_t> codes;  // nibbles of non-zero rows, in order
    codes.reserve((size_t)ce.size());
    for (int64_t i = 0; i < p.rows; ++i) {
        bool nz = false;
        for (int64_t j = 0; j < p.cols && !nz; ++j)
            nz = ce.at(i, j) != 0.0f;
        if (!nz)
            continue;
        p.rowMask[(size_t)(i >> 3)] |= (uint8_t)(1u << (i & 7));
        ++p.nonZeroRows;
        for (int64_t j = 0; j < p.cols; ++j)
            codes.push_back(
                byteToNibble(encodeCoef(ce.at(i, j), alphabet)));
    }
    p.nibbles.assign((codes.size() + 1) / 2, 0);
    for (size_t k = 0; k < codes.size(); ++k)
        p.nibbles[k / 2] |=
            (uint8_t)(codes[k] << ((k & 1) ? 4 : 0));
    return p;
}

Tensor
unpackCe(const PackedCe &p)
{
    Tensor ce({p.rows, p.cols});
    int64_t nz_seen = 0;
    for (int64_t i = 0; i < p.rows; ++i) {
        if (!(p.rowMask[(size_t)(i >> 3)] & (1u << (i & 7))))
            continue;
        for (int64_t j = 0; j < p.cols; ++j) {
            const int64_t k = nz_seen * p.cols + j;
            uint8_t nib = p.nibbles[(size_t)(k >> 1)];
            nib = (k & 1) ? (uint8_t)(nib >> 4) : (uint8_t)(nib & 0xF);
            ce.at(i, j) = decodeNibble(nib, p.alphabet);
        }
        ++nz_seen;
    }
    return ce;
}

namespace {

/**
 * v3 piece: a 27-byte metadata header (a third of the v2-style one —
 * with a piece per conv filter, header bytes are a visible share of
 * the bundle), then row mask + packed nibbles + float basis. Rank
 * and basis width are u16: the reshape rules only ever produce
 * kernel- or group-sized widths, and a wider matrix belongs in v2.
 */
void
saveSeMatrixV3(std::ostream &os, const SeMatrix &m)
{
    const PackedCe p = packCe(m.ce, m.alphabet);
    if (m.ce.dim(1) > 0xFFFF || m.basis.dim(1) > 0xFFFF ||
        m.alphabet.expMax < -32768 || m.alphabet.expMax > 32767)
        throw ModelFileError(
            "matrix too wide for the v3 piece header (save as v2)");
    writePod<uint32_t>(os, (uint32_t)m.ce.dim(0));
    writePod<uint16_t>(os, (uint16_t)m.ce.dim(1));
    writePod<uint16_t>(os, (uint16_t)m.basis.dim(1));
    writePod<int16_t>(os, (int16_t)m.alphabet.expMax);
    writePod<uint8_t>(os, (uint8_t)m.alphabet.numLevels);
    writePod<int32_t>(os, m.iterations);
    writePod<double>(os, m.reconRelError);
    writePod<uint32_t>(os, (uint32_t)p.nonZeroRows);
    os.write(reinterpret_cast<const char *>(p.rowMask.data()),
             (std::streamsize)p.rowMask.size());
    os.write(reinterpret_cast<const char *>(p.nibbles.data()),
             (std::streamsize)p.nibbles.size());
    for (int64_t i = 0; i < m.basis.size(); ++i)
        writePod<float>(os, m.basis[i]);
}

SeMatrix
loadSeMatrixV3(std::istream &is)
{
    SeMatrix m;
    const int64_t rows = (int64_t)readPod<uint32_t>(is);
    const int64_t rank = (int64_t)readPod<uint16_t>(is);
    const int64_t cols = (int64_t)readPod<uint16_t>(is);
    checkDim(rows, "row count");
    checkDim(rank, "rank");
    checkDim(cols, "column count");
    if (rows * rank > kMaxElems || rank * cols > kMaxElems)
        throw ModelFileError("implausible matrix size in model file");
    m.alphabet.expMax = readPod<int16_t>(is);
    m.alphabet.numLevels = readPod<uint8_t>(is);
    if (m.alphabet.numLevels < 1 ||
        m.alphabet.numLevels > kMaxPackedLevels ||
        m.alphabet.expMax < -1000 || m.alphabet.expMax > 1000)
        throw ModelFileError("implausible alphabet in model file");
    m.iterations = readPod<int32_t>(is);
    if (m.iterations < 0 || m.iterations > (1 << 20))
        throw ModelFileError("implausible iteration count");
    m.reconRelError = readPod<double>(is);
    if (!std::isfinite(m.reconRelError))
        throw ModelFileError("non-finite metadata in model file");

    PackedCe p;
    p.rows = rows;
    p.cols = rank;
    p.alphabet = m.alphabet;
    p.nonZeroRows = (int64_t)readPod<uint32_t>(is);
    if (p.nonZeroRows < 0 || p.nonZeroRows > rows)
        throw ModelFileError(
            "implausible non-zero row count in model file");
    p.rowMask.resize((size_t)((rows + 7) / 8));
    is.read(reinterpret_cast<char *>(p.rowMask.data()),
            (std::streamsize)p.rowMask.size());
    if ((size_t)is.gcount() != p.rowMask.size())
        throw ModelFileError("truncated row mask in model file");
    p.nibbles.resize((size_t)((p.nonZeroRows * rank + 1) / 2));
    is.read(reinterpret_cast<char *>(p.nibbles.data()),
            (std::streamsize)p.nibbles.size());
    if ((size_t)is.gcount() != p.nibbles.size())
        throw ModelFileError("truncated coefficients in model file");

    // Structural validation: the mask must agree with the stored
    // non-zero count (tail bits clear), and a padded odd code count
    // must end in a zero nibble — otherwise two different byte
    // streams could decode to the same matrix.
    int64_t mask_bits = 0;
    for (int64_t i = 0; i < rows; ++i)
        mask_bits +=
            (p.rowMask[(size_t)(i >> 3)] >> (i & 7)) & 1;
    if (mask_bits != p.nonZeroRows)
        throw ModelFileError(
            "row mask does not match non-zero row count");
    if (rows & 7) {
        const uint8_t tail = p.rowMask.empty() ? 0 : p.rowMask.back();
        if (tail >> (rows & 7))
            throw ModelFileError("row mask has bits past the last row");
    }
    if ((p.nonZeroRows * rank) & 1) {
        if (!p.nibbles.empty() && (p.nibbles.back() >> 4))
            throw ModelFileError(
                "non-zero padding nibble in model file");
    }

    m.ce = unpackCe(p);  // throws on 0x8-style invalid nibbles
    // A row the mask flags non-zero must actually carry a non-zero
    // code, or save/load would not round-trip.
    for (int64_t i = 0; i < rows; ++i) {
        if (!(p.rowMask[(size_t)(i >> 3)] & (1u << (i & 7))))
            continue;
        bool nz = false;
        for (int64_t j = 0; j < rank && !nz; ++j)
            nz = m.ce.at(i, j) != 0.0f;
        if (!nz)
            throw ModelFileError(
                "all-zero row flagged non-zero in model file");
    }
    m.basis = Tensor({rank, cols});
    for (int64_t i = 0; i < m.basis.size(); ++i)
        m.basis[i] = readPod<float>(is);
    return m;
}

void
saveDenseTensor(std::ostream &os, const DenseTensor &d)
{
    writeString(os, d.name);
    writePod<uint32_t>(os, (uint32_t)d.value.ndim());
    for (int i = 0; i < d.value.ndim(); ++i)
        writePod<int64_t>(os, d.value.dim(i));
    for (int64_t i = 0; i < d.value.size(); ++i)
        writePod<float>(os, d.value[i]);
}

DenseTensor
loadDenseTensor(std::istream &is)
{
    DenseTensor d;
    d.name = readString(is);
    const uint32_t ndim = readPod<uint32_t>(is);
    if (ndim > 8)
        throw ModelFileError("implausible dense tensor rank");
    Shape shape;
    int64_t elems = 1;
    for (uint32_t i = 0; i < ndim; ++i) {
        const int64_t dim = readPod<int64_t>(is);
        checkDim(dim, "dense tensor dimension");
        shape.push_back(dim);
        elems *= dim;
        if (elems > kMaxElems)
            throw ModelFileError(
                "implausible dense tensor size in model file");
    }
    d.value = Tensor(shape);
    for (int64_t i = 0; i < d.value.size(); ++i)
        d.value[i] = readPod<float>(is);
    return d;
}

} // namespace

void
saveSeMatrix(std::ostream &os, const SeMatrix &m)
{
    writePod<int64_t>(os, m.ce.dim(0));
    writePod<int64_t>(os, m.ce.dim(1));
    writePod<int64_t>(os, m.basis.dim(1));
    writePod<int32_t>(os, m.alphabet.expMax);
    writePod<int32_t>(os, m.alphabet.numLevels);
    writePod<int32_t>(os, m.iterations);
    writePod<double>(os, m.reconRelError);
    for (int64_t i = 0; i < m.ce.size(); ++i)
        writePod<uint8_t>(os, encodeCoef(m.ce[i], m.alphabet));
    for (int64_t i = 0; i < m.basis.size(); ++i)
        writePod<float>(os, m.basis[i]);
}

SeMatrix
loadSeMatrix(std::istream &is)
{
    SeMatrix m;
    const int64_t rows = readPod<int64_t>(is);
    const int64_t rank = readPod<int64_t>(is);
    const int64_t cols = readPod<int64_t>(is);
    checkDim(rows, "row count");
    checkDim(rank, "rank");
    checkDim(cols, "column count");
    if (rows * rank > kMaxElems || rank * cols > kMaxElems)
        throw ModelFileError("implausible matrix size in model file");
    m.alphabet.expMax = readPod<int32_t>(is);
    m.alphabet.numLevels = readPod<int32_t>(is);
    if (m.alphabet.numLevels < 1 || m.alphabet.numLevels > 126 ||
        m.alphabet.expMax < -1000 || m.alphabet.expMax > 1000)
        throw ModelFileError("implausible alphabet in model file");
    m.iterations = readPod<int32_t>(is);
    if (m.iterations < 0 || m.iterations > (1 << 20))
        throw ModelFileError("implausible iteration count");
    m.reconRelError = readPod<double>(is);
    if (!std::isfinite(m.reconRelError))
        throw ModelFileError("non-finite metadata in model file");
    m.ce = Tensor({rows, rank});
    for (int64_t i = 0; i < m.ce.size(); ++i)
        m.ce[i] = decodeCoef(readPod<uint8_t>(is), m.alphabet);
    m.basis = Tensor({rank, cols});
    for (int64_t i = 0; i < m.basis.size(); ++i)
        m.basis[i] = readPod<float>(is);
    return m;
}

namespace {

/**
 * Bundle checksum. v2 hashes the body alone (the format predates
 * multiple versions and stays byte-compatible); v3 seeds the hash
 * with the version word so a bit flip that turns one valid version
 * into another can never hand a body to the wrong parser with a
 * still-matching checksum.
 */
uint64_t
bodyChecksum(uint32_t version, const std::string &body)
{
    const uint64_t seed = version == kVersion
                              ? kFnvOffsetBasis
                              : hashValue(version);
    return fnv1a(body.data(), body.size(), seed);
}

/**
 * Frame a serialized body with the shared header (magic, version,
 * size, FNV-1a checksum); load verifies all four before parsing a
 * byte of the body.
 */
void
writeFramedBody(std::ostream &os, uint32_t version,
                const std::string &body)
{
    writePod<uint32_t>(os, kMagic);
    writePod<uint32_t>(os, version);
    writePod<uint64_t>(os, (uint64_t)body.size());
    writePod<uint64_t>(os, bodyChecksum(version, body));
    os.write(body.data(), (std::streamsize)body.size());
}

/** Verify the frame and return {version, body}. */
std::pair<uint32_t, std::string>
readFramedBody(std::istream &is)
{
    if (readPod<uint32_t>(is) != kMagic)
        throw ModelFileError("not a SmartExchange model file");
    const uint32_t version = readPod<uint32_t>(is);
    if (version != kVersion && version != kVersionV3)
        throw ModelFileError("unsupported model file version");
    const uint64_t body_size = readPod<uint64_t>(is);
    const uint64_t checksum = readPod<uint64_t>(is);
    if (body_size > kMaxBodyBytes)
        throw ModelFileError("implausible model file size");
    // On seekable streams, reject a corrupted size field before
    // allocating body_size bytes for it.
    const std::streampos at = is.tellg();
    if (at != std::streampos(-1)) {
        is.seekg(0, std::ios::end);
        const std::streampos end = is.tellg();
        is.seekg(at);
        if (end != std::streampos(-1) &&
            (uint64_t)(end - at) < body_size)
            throw ModelFileError("truncated model file");
    }
    std::string body((size_t)body_size, '\0');
    is.read(body.data(), (std::streamsize)body_size);
    if ((uint64_t)is.gcount() != body_size)
        throw ModelFileError("truncated model file");
    if (bodyChecksum(version, body) != checksum)
        throw ModelFileError("model file checksum mismatch "
                             "(corrupted stream)");
    return {version, std::move(body)};
}

std::vector<SeLayerRecord>
loadRecords(std::istream &body_is, uint32_t version)
{
    const uint32_t n = readPod<uint32_t>(body_is);
    if (n > (1u << 20))
        throw ModelFileError("implausible layer count in model file");
    std::vector<SeLayerRecord> layers((size_t)n);
    for (auto &l : layers) {
        l.name = readString(body_is);
        const uint32_t pieces = readPod<uint32_t>(body_is);
        if (pieces > (1u << 24))
            throw ModelFileError("implausible piece count");
        l.pieces.reserve(pieces);
        for (uint32_t i = 0; i < pieces; ++i)
            l.pieces.push_back(version == kVersionV3
                                   ? loadSeMatrixV3(body_is)
                                   : loadSeMatrix(body_is));
    }
    return layers;
}

} // namespace

void
saveModel(std::ostream &os, const std::vector<SeLayerRecord> &layers)
{
    std::ostringstream body_os(std::ios::binary);
    writePod<uint32_t>(body_os, (uint32_t)layers.size());
    for (const auto &l : layers) {
        writeString(body_os, l.name);
        writePod<uint32_t>(body_os, (uint32_t)l.pieces.size());
        for (const auto &p : l.pieces)
            saveSeMatrix(body_os, p);
    }
    writeFramedBody(os, kVersion, body_os.str());
}

void
saveModelV3(std::ostream &os,
            const std::vector<SeLayerRecord> &layers,
            const std::vector<DenseTensor> &dense)
{
    std::ostringstream body_os(std::ios::binary);
    writePod<uint32_t>(body_os, (uint32_t)layers.size());
    for (const auto &l : layers) {
        writeString(body_os, l.name);
        writePod<uint32_t>(body_os, (uint32_t)l.pieces.size());
        for (const auto &p : l.pieces)
            saveSeMatrixV3(body_os, p);
    }
    writePod<uint32_t>(body_os, (uint32_t)dense.size());
    for (const auto &d : dense)
        saveDenseTensor(body_os, d);
    writeFramedBody(os, kVersionV3, body_os.str());
}

ModelBundle
loadModelBundle(std::istream &is)
{
    auto [version, body] = readFramedBody(is);
    std::istringstream body_is(body, std::ios::binary);
    ModelBundle bundle;
    bundle.records = loadRecords(body_is, version);
    if (version == kVersionV3) {
        const uint32_t n = readPod<uint32_t>(body_is);
        if (n > (1u << 20))
            throw ModelFileError(
                "implausible dense tensor count in model file");
        bundle.dense.reserve(n);
        for (uint32_t i = 0; i < n; ++i)
            bundle.dense.push_back(loadDenseTensor(body_is));
    }
    // Trailing garbage inside a checksummed body is still damage: two
    // different byte streams must never load as the same bundle.
    if (body_is.peek() != std::char_traits<char>::eof())
        throw ModelFileError("trailing bytes in model file body");
    return bundle;
}

std::vector<SeLayerRecord>
loadModel(std::istream &is)
{
    ModelBundle bundle = loadModelBundle(is);
    if (!bundle.dense.empty())
        throw ModelFileError(
            "bundle carries dense residual state; load it with "
            "loadModelBundle() instead of the records-only view");
    return std::move(bundle.records);
}

void
saveModelFile(const std::string &path,
              const std::vector<SeLayerRecord> &layers)
{
    std::ofstream os(path, std::ios::binary);
    if (!os.good())
        throw ModelFileError("cannot open " + path + " for writing");
    saveModel(os, layers);
}

std::vector<SeLayerRecord>
loadModelFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.good())
        throw ModelFileError("cannot open " + path + " for reading");
    return loadModel(is);
}

void
saveModelV3File(const std::string &path, const ModelBundle &b)
{
    std::ofstream os(path, std::ios::binary);
    if (!os.good())
        throw ModelFileError("cannot open " + path + " for writing");
    saveModelV3(os, b.records, b.dense);
}

ModelBundle
loadModelBundleFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.good())
        throw ModelFileError("cannot open " + path + " for reading");
    return loadModelBundle(is);
}

// ------------------------------------------------- nn <-> record glue

namespace {

/**
 * The one walk both sides of the dense-residual contract share:
 * visit every leaf in depth-first order and emit (name, tensor)
 * pairs for the state the Ce*B records do not carry.
 */
void
visitDenseState(
    nn::Sequential &net,
    const std::vector<const Tensor *> &decomposed_weights,
    const std::function<void(const std::string &, Tensor &)> &fn)
{
    std::unordered_set<const Tensor *> decomposed(
        decomposed_weights.begin(), decomposed_weights.end());
    size_t idx = 0;
    net.visit([&](nn::Layer &l) {
        const std::string prefix =
            std::to_string(idx++) + ":" + l.name() + ":";
        if (auto *c = dynamic_cast<nn::Conv2d *>(&l)) {
            if (!decomposed.count(&c->weightTensor()))
                fn(prefix + "weight", c->weightTensor());
            if (!c->biasTensor().empty())
                fn(prefix + "bias", c->biasTensor());
        } else if (auto *f = dynamic_cast<nn::Linear *>(&l)) {
            if (!decomposed.count(&f->weightTensor()))
                fn(prefix + "weight", f->weightTensor());
            if (!f->biasTensor().empty())
                fn(prefix + "bias", f->biasTensor());
        } else if (auto *b = dynamic_cast<nn::BatchNorm2d *>(&l)) {
            fn(prefix + "gamma", b->gammaTensor());
            fn(prefix + "beta", b->betaTensor());
            fn(prefix + "running_mean", b->runningMeanTensor());
            fn(prefix + "running_var", b->runningVarTensor());
        }
    });
}

} // namespace

std::vector<DenseTensor>
collectDenseState(nn::Sequential &net,
                  const std::vector<const Tensor *> &decomposed_weights)
{
    std::vector<DenseTensor> out;
    visitDenseState(net, decomposed_weights,
                    [&](const std::string &name, Tensor &t) {
                        out.push_back({name, t});
                    });
    return out;
}

void
installDenseState(
    nn::Sequential &net, const std::vector<DenseTensor> &dense,
    const std::vector<const Tensor *> &decomposed_weights)
{
    size_t at = 0;
    visitDenseState(
        net, decomposed_weights,
        [&](const std::string &name, Tensor &t) {
            if (at >= dense.size())
                throw ModelFileError(
                    "dense residual ends before tensor '" + name +
                    "'");
            const DenseTensor &d = dense[at++];
            if (d.name != name)
                throw ModelFileError(
                    "dense tensor '" + d.name +
                    "' does not match expected '" + name + "'");
            if (d.value.shape() != t.shape())
                throw ModelFileError("dense tensor '" + name +
                                     "' has a mismatched shape");
            t = d.value;
        });
    if (at != dense.size())
        throw ModelFileError(
            "dense residual has " +
            std::to_string(dense.size() - at) + " extra tensor(s)");
}

CompressedModel
compressToRecords(nn::Sequential &net, const SeOptions &se_opts,
                  const ApplyOptions &apply_opts,
                  const DecomposeFn &decomp)
{
    if (apply_opts.channelGammaThreshold > 0.0)
        SE_WARN("compressToRecords: channel pruning mutates BN "
                "gamma/beta in THIS net; the mutated state ships in "
                "CompressedModel::dense and only saveModelV3 writes "
                "it — a records-only v2 save of this model serves "
                "diverged outputs from a fresh factory net.");
    CompressionPlan plan = planCompression(net, se_opts, apply_opts);

    std::vector<SeMatrix> results;
    results.reserve(plan.units.size());
    for (const DecompUnit &u : plan.units)
        results.push_back(decomp ? decomp(u.matrix, se_opts)
                                 : decomposeMatrix(u.matrix, se_opts));

    // Group the pieces per decomposed layer before finishCompression
    // consumes the originals. The copy is deliberate: records and the
    // finish pass both need the pieces, and a compressed bundle is
    // small (Ce codes + tiny bases), so transiently holding two
    // copies is cheaper than contorting finishCompression's
    // ownership for every caller.
    CompressedModel out;
    size_t ui = 0;
    for (size_t li = 0; li < plan.layers.size(); ++li) {
        SeLayerRecord rec;
        rec.name = plan.layers[li].report.name;
        while (ui < plan.units.size() &&
               plan.units[ui].layerIndex == li)
            rec.pieces.push_back(results[ui++]);
        if (!rec.pieces.empty())
            out.records.push_back(std::move(rec));
    }

    // The dense residual (what the old "BN not shipped" warning was
    // about): snapshot AFTER planCompression, so channel pruning's
    // BN gamma/beta mutations ship with the model, and biases /
    // running stats / undecomposed weights come along too.
    std::vector<const Tensor *> decomposed_weights;
    for (const PlannedLayer &pl : plan.layers)
        if (pl.weight)
            decomposed_weights.push_back(pl.weight);
    out.dense = collectDenseState(net, decomposed_weights);

    out.report = finishCompression(plan, std::move(results), se_opts);
    return out;
}

std::vector<RecordBinding>
matchRecordsToPlan(const CompressionPlan &plan,
                   const std::vector<SeLayerRecord> &records)
{
    std::vector<RecordBinding> bindings;
    size_t ri = 0, ui = 0;
    for (size_t li = 0; li < plan.layers.size(); ++li) {
        size_t unit_count = 0;
        while (ui + unit_count < plan.units.size() &&
               plan.units[ui + unit_count].layerIndex == li)
            ++unit_count;
        if (unit_count == 0)
            continue;
        const std::string &name = plan.layers[li].report.name;
        if (ri >= records.size())
            throw ModelFileError("model records end before layer " +
                                 name);
        const SeLayerRecord &rec = records[ri++];
        if (rec.name != name)
            throw ModelFileError("record '" + rec.name +
                                 "' does not match planned layer '" +
                                 name + "'");
        if (rec.pieces.size() != unit_count)
            throw ModelFileError("record '" + rec.name + "' has " +
                                 std::to_string(rec.pieces.size()) +
                                 " pieces, expected " +
                                 std::to_string(unit_count));
        for (size_t k = 0; k < unit_count; ++k) {
            const SeMatrix &p = rec.pieces[k];
            const Tensor &m = plan.units[ui + k].matrix;
            if (p.ce.dim(0) != m.dim(0) || p.basis.dim(1) != m.dim(1))
                throw ModelFileError(
                    "piece shape mismatch in record '" + rec.name +
                    "'");
        }
        bindings.push_back({li, ui, unit_count, &rec});
        ui += unit_count;
    }
    if (ri != records.size())
        throw ModelFileError("model bundle has " +
                             std::to_string(records.size() - ri) +
                             " extra record(s)");
    return bindings;
}

namespace {

CompressionReport
installRecordsImpl(nn::Sequential &net,
                   const std::vector<SeLayerRecord> &records,
                   const std::vector<DenseTensor> *dense,
                   const SeOptions &se_opts,
                   const ApplyOptions &apply_opts)
{
    // Never re-prune: the threshold rule must not fire on the
    // factory net's unrelated gamma values. Pruned CONV channels
    // arrive zeroed through the records themselves; pruned BN
    // gamma/beta state arrives through the dense residual when the
    // caller ships one (v3) — without it, the factory net must
    // bit-reproduce the compression-time non-decomposed state.
    ApplyOptions install_opts = apply_opts;
    install_opts.channelGammaThreshold = 0.0;
    CompressionPlan plan = planCompression(net, se_opts, install_opts);

    // Bindings are in unit order and cover every planned unit, so
    // flattening their pieces reassembles finishCompression's input.
    std::vector<SeMatrix> results;
    results.reserve(plan.units.size());
    for (const RecordBinding &b : matchRecordsToPlan(plan, records))
        for (size_t k = 0; k < b.unitCount; ++k)
            results.push_back(b.record->pieces[k]);

    if (dense && !dense->empty()) {
        std::vector<const Tensor *> decomposed_weights;
        for (const PlannedLayer &pl : plan.layers)
            if (pl.weight)
                decomposed_weights.push_back(pl.weight);
        installDenseState(net, *dense, decomposed_weights);
    }

    return finishCompression(plan, std::move(results), se_opts);
}

} // namespace

CompressionReport
installLayerRecords(nn::Sequential &net,
                    const std::vector<SeLayerRecord> &records,
                    const SeOptions &se_opts,
                    const ApplyOptions &apply_opts)
{
    return installRecordsImpl(net, records, nullptr, se_opts,
                              apply_opts);
}

CompressionReport
installModelBundle(nn::Sequential &net, const ModelBundle &bundle,
                   const SeOptions &se_opts,
                   const ApplyOptions &apply_opts)
{
    return installRecordsImpl(net, bundle.records, &bundle.dense,
                              se_opts, apply_opts);
}

} // namespace core
} // namespace se
