#include "core/model_file.hh"

#include <cmath>
#include <cstdint>
#include <fstream>

#include "base/logging.hh"

namespace se {
namespace core {

namespace {

constexpr uint32_t kMagic = 0x5345584Du;  // "SEXM"
constexpr uint32_t kVersion = 1;

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    SE_ASSERT(is.good(), "unexpected end of SmartExchange model file");
    return v;
}

void
writeString(std::ostream &os, const std::string &s)
{
    writePod<uint32_t>(os, (uint32_t)s.size());
    os.write(s.data(), (std::streamsize)s.size());
}

std::string
readString(std::istream &is)
{
    const uint32_t len = readPod<uint32_t>(is);
    SE_ASSERT(len < (1u << 20), "implausible string length in file");
    std::string s((size_t)len, '\0');
    is.read(s.data(), len);
    return s;
}

/** Encode a power-of-2 coefficient as one byte. */
uint8_t
encodeCoef(float v, const quant::Pow2Alphabet &a)
{
    if (v == 0.0f)
        return 0;
    int exp;
    const float frac = std::frexp(std::abs(v), &exp);
    SE_ASSERT(frac == 0.5f, "non-power-of-2 coefficient in file save");
    const int code = (exp - 1) - a.expMin() + 1;  // 1..numLevels
    SE_ASSERT(code >= 1 && code <= a.numLevels,
              "coefficient exponent outside alphabet");
    return (uint8_t)((v < 0 ? 0x80 : 0x00) | code);
}

float
decodeCoef(uint8_t byte, const quant::Pow2Alphabet &a)
{
    if (byte == 0)
        return 0.0f;
    const bool neg = (byte & 0x80) != 0;
    const int code = byte & 0x7F;
    const int exp = a.expMin() + code - 1;
    const float mag = std::ldexp(1.0f, exp);
    return neg ? -mag : mag;
}

} // namespace

void
saveSeMatrix(std::ostream &os, const SeMatrix &m)
{
    writePod<int64_t>(os, m.ce.dim(0));
    writePod<int64_t>(os, m.ce.dim(1));
    writePod<int64_t>(os, m.basis.dim(1));
    writePod<int32_t>(os, m.alphabet.expMax);
    writePod<int32_t>(os, m.alphabet.numLevels);
    writePod<int32_t>(os, m.iterations);
    writePod<double>(os, m.reconRelError);
    for (int64_t i = 0; i < m.ce.size(); ++i)
        writePod<uint8_t>(os, encodeCoef(m.ce[i], m.alphabet));
    for (int64_t i = 0; i < m.basis.size(); ++i)
        writePod<float>(os, m.basis[i]);
}

SeMatrix
loadSeMatrix(std::istream &is)
{
    SeMatrix m;
    const int64_t rows = readPod<int64_t>(is);
    const int64_t rank = readPod<int64_t>(is);
    const int64_t cols = readPod<int64_t>(is);
    m.alphabet.expMax = readPod<int32_t>(is);
    m.alphabet.numLevels = readPod<int32_t>(is);
    m.iterations = readPod<int32_t>(is);
    m.reconRelError = readPod<double>(is);
    m.ce = Tensor({rows, rank});
    for (int64_t i = 0; i < m.ce.size(); ++i)
        m.ce[i] = decodeCoef(readPod<uint8_t>(is), m.alphabet);
    m.basis = Tensor({rank, cols});
    for (int64_t i = 0; i < m.basis.size(); ++i)
        m.basis[i] = readPod<float>(is);
    return m;
}

void
saveModel(std::ostream &os, const std::vector<SeLayerRecord> &layers)
{
    writePod<uint32_t>(os, kMagic);
    writePod<uint32_t>(os, kVersion);
    writePod<uint32_t>(os, (uint32_t)layers.size());
    for (const auto &l : layers) {
        writeString(os, l.name);
        writePod<uint32_t>(os, (uint32_t)l.pieces.size());
        for (const auto &p : l.pieces)
            saveSeMatrix(os, p);
    }
}

std::vector<SeLayerRecord>
loadModel(std::istream &is)
{
    SE_ASSERT(readPod<uint32_t>(is) == kMagic,
              "not a SmartExchange model file");
    SE_ASSERT(readPod<uint32_t>(is) == kVersion,
              "unsupported model file version");
    const uint32_t n = readPod<uint32_t>(is);
    std::vector<SeLayerRecord> layers((size_t)n);
    for (auto &l : layers) {
        l.name = readString(is);
        const uint32_t pieces = readPod<uint32_t>(is);
        l.pieces.reserve(pieces);
        for (uint32_t i = 0; i < pieces; ++i)
            l.pieces.push_back(loadSeMatrix(is));
    }
    return layers;
}

void
saveModelFile(const std::string &path,
              const std::vector<SeLayerRecord> &layers)
{
    std::ofstream os(path, std::ios::binary);
    SE_ASSERT(os.good(), "cannot open ", path, " for writing");
    saveModel(os, layers);
}

std::vector<SeLayerRecord>
loadModelFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    SE_ASSERT(is.good(), "cannot open ", path, " for reading");
    return loadModel(is);
}

} // namespace core
} // namespace se
