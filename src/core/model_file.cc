#include "core/model_file.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "base/failpoint.hh"
#include "base/hash.hh"
#include "base/logging.hh"
#include "encode/bitstream.hh"
#include "nn/layers.hh"

namespace se {
namespace core {

namespace {

constexpr uint32_t kMagic = 0x5345584Du;  // "SEXM"
constexpr uint32_t kVersion = 2;
constexpr uint32_t kVersionV3 = 3;
constexpr uint32_t kVersionV4 = 4;
/** Widest alphabet a 4-bit nibble (1 sign + 3 code bits) can carry. */
constexpr int kMaxPackedLevels = 7;
/** Hard ceiling on any stored dimension / count (anti-corruption). */
constexpr int64_t kMaxDim = 1 << 24;
constexpr int64_t kMaxElems = 1 << 26;
constexpr uint64_t kMaxBodyBytes = 1ull << 31;

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is.good())
        throw ModelFileError(
            "unexpected end of SmartExchange model stream");
    return v;
}

void
writeString(std::ostream &os, const std::string &s)
{
    writePod<uint32_t>(os, (uint32_t)s.size());
    os.write(s.data(), (std::streamsize)s.size());
}

std::string
readString(std::istream &is)
{
    const uint32_t len = readPod<uint32_t>(is);
    if (len >= (1u << 20))
        throw ModelFileError("implausible string length in model file");
    std::string s((size_t)len, '\0');
    is.read(s.data(), len);
    if ((uint32_t)is.gcount() != len)
        throw ModelFileError("truncated string in model file");
    return s;
}

/** Encode a power-of-2 coefficient as one byte. */
uint8_t
encodeCoef(float v, const quant::Pow2Alphabet &a)
{
    if (v == 0.0f)
        return 0;
    int exp;
    const float frac = std::frexp(std::abs(v), &exp);
    SE_ASSERT(frac == 0.5f, "non-power-of-2 coefficient in file save");
    const int code = (exp - 1) - a.expMin() + 1;  // 1..numLevels
    SE_ASSERT(code >= 1 && code <= a.numLevels,
              "coefficient exponent outside alphabet");
    return (uint8_t)((v < 0 ? 0x80 : 0x00) | code);
}

float
decodeCoef(uint8_t byte, const quant::Pow2Alphabet &a)
{
    if (byte == 0)
        return 0.0f;
    const bool neg = (byte & 0x80) != 0;
    const int code = byte & 0x7F;
    // code 0 with the sign bit set (byte 0x80) is not a legal
    // encoding either — it would decode below the alphabet.
    if (code < 1 || code > a.numLevels)
        throw ModelFileError(
            "coefficient code outside the stored alphabet");
    return quant::pow2CodeValue(a.expMin(), code, neg);
}

void
checkDim(int64_t d, const char *what)
{
    if (d < 0 || d > kMaxDim)
        throw ModelFileError(std::string("implausible ") + what +
                             " in model file");
}

/** Convert a v2 coefficient byte to a v3 nibble (codes are codes). */
uint8_t
byteToNibble(uint8_t byte)
{
    if (byte == 0)
        return 0;
    const uint8_t code = byte & 0x7F;
    SE_ASSERT(code >= 1 && code <= kMaxPackedLevels,
              "coefficient code too wide for 4-bit packing");
    return (uint8_t)(((byte & 0x80) ? 0x8 : 0x0) | code);
}

float
decodeNibble(uint8_t nib, const quant::Pow2Alphabet &a)
{
    if (nib == 0)
        return 0.0f;
    const int code = nib & 0x7;
    // Nibble 0x8 (sign bit with exponent code 0) is the packed
    // sibling of the v2 byte 0x80 — not a legal encoding.
    if (code < 1 || code > a.numLevels)
        throw ModelFileError(
            "packed coefficient nibble outside the stored alphabet");
    return quant::pow2CodeValue(a.expMin(), code, (nib & 0x8) != 0);
}

} // namespace

PackedCe
packCe(const Tensor &ce, const quant::Pow2Alphabet &alphabet)
{
    SE_ASSERT(ce.ndim() == 2, "packCe expects a 2-D Ce matrix");
    if (alphabet.numLevels < 1 ||
        alphabet.numLevels > kMaxPackedLevels)
        throw ModelFileError(
            "alphabet has " + std::to_string(alphabet.numLevels) +
            " levels; 4-bit packing carries at most " +
            std::to_string(kMaxPackedLevels) +
            " (save this model as v2)");
    PackedCe p;
    p.rows = ce.dim(0);
    p.cols = ce.dim(1);
    p.alphabet = alphabet;
    p.rowMask.assign((size_t)((p.rows + 7) / 8), 0);

    std::vector<uint8_t> codes;  // nibbles of non-zero rows, in order
    codes.reserve((size_t)ce.size());
    for (int64_t i = 0; i < p.rows; ++i) {
        bool nz = false;
        for (int64_t j = 0; j < p.cols && !nz; ++j)
            nz = ce.at(i, j) != 0.0f;
        if (!nz)
            continue;
        p.rowMask[(size_t)(i >> 3)] |= (uint8_t)(1u << (i & 7));
        ++p.nonZeroRows;
        for (int64_t j = 0; j < p.cols; ++j)
            codes.push_back(
                byteToNibble(encodeCoef(ce.at(i, j), alphabet)));
    }
    p.nibbles.assign((codes.size() + 1) / 2, 0);
    for (size_t k = 0; k < codes.size(); ++k)
        p.nibbles[k / 2] |=
            (uint8_t)(codes[k] << ((k & 1) ? 4 : 0));
    return p;
}

Tensor
unpackCe(const PackedCe &p)
{
    Tensor ce({p.rows, p.cols});
    int64_t nz_seen = 0;
    for (int64_t i = 0; i < p.rows; ++i) {
        if (!(p.rowMask[(size_t)(i >> 3)] & (1u << (i & 7))))
            continue;
        for (int64_t j = 0; j < p.cols; ++j) {
            const int64_t k = nz_seen * p.cols + j;
            uint8_t nib = p.nibbles[(size_t)(k >> 1)];
            nib = (k & 1) ? (uint8_t)(nib >> 4) : (uint8_t)(nib & 0xF);
            ce.at(i, j) = decodeNibble(nib, p.alphabet);
        }
        ++nz_seen;
    }
    return ce;
}

namespace {

/**
 * v3 piece: a 27-byte metadata header (a third of the v2-style one —
 * with a piece per conv filter, header bytes are a visible share of
 * the bundle), then row mask + packed nibbles + float basis. Rank
 * and basis width are u16: the reshape rules only ever produce
 * kernel- or group-sized widths, and a wider matrix belongs in v2.
 */
void
saveSeMatrixV3(std::ostream &os, const SeMatrix &m)
{
    const PackedCe p = packCe(m.ce, m.alphabet);
    if (m.ce.dim(1) > 0xFFFF || m.basis.dim(1) > 0xFFFF ||
        m.alphabet.expMax < -32768 || m.alphabet.expMax > 32767)
        throw ModelFileError(
            "matrix too wide for the v3 piece header (save as v2)");
    writePod<uint32_t>(os, (uint32_t)m.ce.dim(0));
    writePod<uint16_t>(os, (uint16_t)m.ce.dim(1));
    writePod<uint16_t>(os, (uint16_t)m.basis.dim(1));
    writePod<int16_t>(os, (int16_t)m.alphabet.expMax);
    writePod<uint8_t>(os, (uint8_t)m.alphabet.numLevels);
    writePod<int32_t>(os, m.iterations);
    writePod<double>(os, m.reconRelError);
    writePod<uint32_t>(os, (uint32_t)p.nonZeroRows);
    os.write(reinterpret_cast<const char *>(p.rowMask.data()),
             (std::streamsize)p.rowMask.size());
    os.write(reinterpret_cast<const char *>(p.nibbles.data()),
             (std::streamsize)p.nibbles.size());
    for (int64_t i = 0; i < m.basis.size(); ++i)
        writePod<float>(os, m.basis[i]);
}

SeMatrix
loadSeMatrixV3(std::istream &is)
{
    SeMatrix m;
    const int64_t rows = (int64_t)readPod<uint32_t>(is);
    const int64_t rank = (int64_t)readPod<uint16_t>(is);
    const int64_t cols = (int64_t)readPod<uint16_t>(is);
    checkDim(rows, "row count");
    checkDim(rank, "rank");
    checkDim(cols, "column count");
    if (rows * rank > kMaxElems || rank * cols > kMaxElems)
        throw ModelFileError("implausible matrix size in model file");
    m.alphabet.expMax = readPod<int16_t>(is);
    m.alphabet.numLevels = readPod<uint8_t>(is);
    if (m.alphabet.numLevels < 1 ||
        m.alphabet.numLevels > kMaxPackedLevels ||
        m.alphabet.expMax < -1000 || m.alphabet.expMax > 1000)
        throw ModelFileError("implausible alphabet in model file");
    m.iterations = readPod<int32_t>(is);
    if (m.iterations < 0 || m.iterations > (1 << 20))
        throw ModelFileError("implausible iteration count");
    m.reconRelError = readPod<double>(is);
    if (!std::isfinite(m.reconRelError))
        throw ModelFileError("non-finite metadata in model file");

    PackedCe p;
    p.rows = rows;
    p.cols = rank;
    p.alphabet = m.alphabet;
    p.nonZeroRows = (int64_t)readPod<uint32_t>(is);
    if (p.nonZeroRows < 0 || p.nonZeroRows > rows)
        throw ModelFileError(
            "implausible non-zero row count in model file");
    p.rowMask.resize((size_t)((rows + 7) / 8));
    is.read(reinterpret_cast<char *>(p.rowMask.data()),
            (std::streamsize)p.rowMask.size());
    if ((size_t)is.gcount() != p.rowMask.size())
        throw ModelFileError("truncated row mask in model file");
    p.nibbles.resize((size_t)((p.nonZeroRows * rank + 1) / 2));
    is.read(reinterpret_cast<char *>(p.nibbles.data()),
            (std::streamsize)p.nibbles.size());
    if ((size_t)is.gcount() != p.nibbles.size())
        throw ModelFileError("truncated coefficients in model file");

    // Structural validation: the mask must agree with the stored
    // non-zero count (tail bits clear), and a padded odd code count
    // must end in a zero nibble — otherwise two different byte
    // streams could decode to the same matrix.
    int64_t mask_bits = 0;
    for (int64_t i = 0; i < rows; ++i)
        mask_bits +=
            (p.rowMask[(size_t)(i >> 3)] >> (i & 7)) & 1;
    if (mask_bits != p.nonZeroRows)
        throw ModelFileError(
            "row mask does not match non-zero row count");
    if (rows & 7) {
        const uint8_t tail = p.rowMask.empty() ? 0 : p.rowMask.back();
        if (tail >> (rows & 7))
            throw ModelFileError("row mask has bits past the last row");
    }
    if ((p.nonZeroRows * rank) & 1) {
        if (!p.nibbles.empty() && (p.nibbles.back() >> 4))
            throw ModelFileError(
                "non-zero padding nibble in model file");
    }

    m.ce = unpackCe(p);  // throws on 0x8-style invalid nibbles
    // A row the mask flags non-zero must actually carry a non-zero
    // code, or save/load would not round-trip.
    for (int64_t i = 0; i < rows; ++i) {
        if (!(p.rowMask[(size_t)(i >> 3)] & (1u << (i & 7))))
            continue;
        bool nz = false;
        for (int64_t j = 0; j < rank && !nz; ++j)
            nz = m.ce.at(i, j) != 0.0f;
        if (!nz)
            throw ModelFileError(
                "all-zero row flagged non-zero in model file");
    }
    m.basis = Tensor({rank, cols});
    for (int64_t i = 0; i < m.basis.size(); ++i)
        m.basis[i] = readPod<float>(is);
    return m;
}

void
saveDenseTensor(std::ostream &os, const DenseTensor &d)
{
    writeString(os, d.name);
    writePod<uint32_t>(os, (uint32_t)d.value.ndim());
    for (int i = 0; i < d.value.ndim(); ++i)
        writePod<int64_t>(os, d.value.dim(i));
    for (int64_t i = 0; i < d.value.size(); ++i)
        writePod<float>(os, d.value[i]);
}

DenseTensor
loadDenseTensor(std::istream &is)
{
    DenseTensor d;
    d.name = readString(is);
    const uint32_t ndim = readPod<uint32_t>(is);
    if (ndim > 8)
        throw ModelFileError("implausible dense tensor rank");
    Shape shape;
    int64_t elems = 1;
    for (uint32_t i = 0; i < ndim; ++i) {
        const int64_t dim = readPod<int64_t>(is);
        checkDim(dim, "dense tensor dimension");
        shape.push_back(dim);
        elems *= dim;
        if (elems > kMaxElems)
            throw ModelFileError(
                "implausible dense tensor size in model file");
    }
    d.value = Tensor(shape);
    for (int64_t i = 0; i < d.value.size(); ++i)
        d.value[i] = readPod<float>(is);
    return d;
}

/**
 * Bounds-checked cursor over an in-memory byte span — the buffer
 * sibling of the readPod/readString istream helpers, shared by the
 * v4 meta parser and piece decoder so the eager loadModelBundle path
 * and the mmap-backed StreamedModel run the exact same code.
 */
class BufReader
{
  public:
    BufReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
    }

    template <typename T>
    T
    pod()
    {
        if (size_ - at_ < sizeof(T))
            throw ModelFileError(
                "unexpected end of SmartExchange model stream");
        T v{};
        std::memcpy(&v, data_ + at_, sizeof(T));
        at_ += sizeof(T);
        return v;
    }

    std::string
    str()
    {
        const uint32_t len = pod<uint32_t>();
        if (len >= (1u << 20))
            throw ModelFileError(
                "implausible string length in model file");
        if (size_ - at_ < len)
            throw ModelFileError("truncated string in model file");
        std::string s(reinterpret_cast<const char *>(data_ + at_),
                      (size_t)len);
        at_ += len;
        return s;
    }

    const uint8_t *cursor() const { return data_ + at_; }
    size_t remaining() const { return size_ - at_; }

    void
    skip(size_t n)
    {
        if (remaining() < n)
            throw ModelFileError(
                "unexpected end of SmartExchange model stream");
        at_ += n;
    }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t at_ = 0;
};

DenseTensor
loadDenseTensorBuf(BufReader &r)
{
    DenseTensor d;
    d.name = r.str();
    const uint32_t ndim = r.pod<uint32_t>();
    if (ndim > 8)
        throw ModelFileError("implausible dense tensor rank");
    Shape shape;
    int64_t elems = 1;
    for (uint32_t i = 0; i < ndim; ++i) {
        const int64_t dim = r.pod<int64_t>();
        checkDim(dim, "dense tensor dimension");
        shape.push_back(dim);
        elems *= dim;
        if (elems > kMaxElems)
            throw ModelFileError(
                "implausible dense tensor size in model file");
    }
    d.value = Tensor(shape);
    for (int64_t i = 0; i < d.value.size(); ++i)
        d.value[i] = r.pod<float>();
    return d;
}

} // namespace

void
saveSeMatrix(std::ostream &os, const SeMatrix &m)
{
    writePod<int64_t>(os, m.ce.dim(0));
    writePod<int64_t>(os, m.ce.dim(1));
    writePod<int64_t>(os, m.basis.dim(1));
    writePod<int32_t>(os, m.alphabet.expMax);
    writePod<int32_t>(os, m.alphabet.numLevels);
    writePod<int32_t>(os, m.iterations);
    writePod<double>(os, m.reconRelError);
    for (int64_t i = 0; i < m.ce.size(); ++i)
        writePod<uint8_t>(os, encodeCoef(m.ce[i], m.alphabet));
    for (int64_t i = 0; i < m.basis.size(); ++i)
        writePod<float>(os, m.basis[i]);
}

SeMatrix
loadSeMatrix(std::istream &is)
{
    SeMatrix m;
    const int64_t rows = readPod<int64_t>(is);
    const int64_t rank = readPod<int64_t>(is);
    const int64_t cols = readPod<int64_t>(is);
    checkDim(rows, "row count");
    checkDim(rank, "rank");
    checkDim(cols, "column count");
    if (rows * rank > kMaxElems || rank * cols > kMaxElems)
        throw ModelFileError("implausible matrix size in model file");
    m.alphabet.expMax = readPod<int32_t>(is);
    m.alphabet.numLevels = readPod<int32_t>(is);
    if (m.alphabet.numLevels < 1 || m.alphabet.numLevels > 126 ||
        m.alphabet.expMax < -1000 || m.alphabet.expMax > 1000)
        throw ModelFileError("implausible alphabet in model file");
    m.iterations = readPod<int32_t>(is);
    if (m.iterations < 0 || m.iterations > (1 << 20))
        throw ModelFileError("implausible iteration count");
    m.reconRelError = readPod<double>(is);
    if (!std::isfinite(m.reconRelError))
        throw ModelFileError("non-finite metadata in model file");
    m.ce = Tensor({rows, rank});
    for (int64_t i = 0; i < m.ce.size(); ++i)
        m.ce[i] = decodeCoef(readPod<uint8_t>(is), m.alphabet);
    m.basis = Tensor({rank, cols});
    for (int64_t i = 0; i < m.basis.size(); ++i)
        m.basis[i] = readPod<float>(is);
    return m;
}

namespace {

/**
 * Bundle checksum. v2 hashes the body alone (the format predates
 * multiple versions and stays byte-compatible); v3 seeds the hash
 * with the version word so a bit flip that turns one valid version
 * into another can never hand a body to the wrong parser with a
 * still-matching checksum.
 */
uint64_t
bodyChecksum(uint32_t version, const std::string &body)
{
    const uint64_t seed = version == kVersion
                              ? kFnvOffsetBasis
                              : hashValue(version);
    return fnv1a(body.data(), body.size(), seed);
}

/**
 * Frame a serialized body with the shared header (magic, version,
 * size, FNV-1a checksum); load verifies all four before parsing a
 * byte of the body.
 */
void
writeFramedBody(std::ostream &os, uint32_t version,
                const std::string &body)
{
    writePod<uint32_t>(os, kMagic);
    writePod<uint32_t>(os, version);
    writePod<uint64_t>(os, (uint64_t)body.size());
    writePod<uint64_t>(os, bodyChecksum(version, body));
    os.write(body.data(), (std::streamsize)body.size());
}

/**
 * Verify the rest of a v2/v3 frame (magic and version words already
 * consumed by loadModelBundle's dispatch) and return the body.
 */
std::string
readFramedBodyRest(std::istream &is, uint32_t version)
{
    const uint64_t body_size = readPod<uint64_t>(is);
    const uint64_t checksum = readPod<uint64_t>(is);
    if (body_size > kMaxBodyBytes)
        throw ModelFileError("implausible model file size");
    // On seekable streams, reject a corrupted size field before
    // allocating body_size bytes for it.
    const std::streampos at = is.tellg();
    if (at != std::streampos(-1)) {
        is.seekg(0, std::ios::end);
        const std::streampos end = is.tellg();
        is.seekg(at);
        if (end != std::streampos(-1) &&
            (uint64_t)(end - at) < body_size)
            throw ModelFileError("truncated model file");
    }
    std::string body((size_t)body_size, '\0');
    is.read(body.data(), (std::streamsize)body_size);
    if ((uint64_t)is.gcount() != body_size)
        throw ModelFileError("truncated model file");
    if (bodyChecksum(version, body) != checksum)
        throw ModelFileError("model file checksum mismatch "
                             "(corrupted stream)");
    return body;
}

std::vector<SeLayerRecord>
loadRecords(std::istream &body_is, uint32_t version)
{
    const uint32_t n = readPod<uint32_t>(body_is);
    if (n > (1u << 20))
        throw ModelFileError("implausible layer count in model file");
    std::vector<SeLayerRecord> layers((size_t)n);
    for (auto &l : layers) {
        l.name = readString(body_is);
        const uint32_t pieces = readPod<uint32_t>(body_is);
        if (pieces > (1u << 24))
            throw ModelFileError("implausible piece count");
        l.pieces.reserve(pieces);
        for (uint32_t i = 0; i < pieces; ++i) {
            // A bundle can hold thousands of pieces; name the one
            // that failed or a corruption report is undebuggable.
            try {
                l.pieces.push_back(version == kVersionV3
                                       ? loadSeMatrixV3(body_is)
                                       : loadSeMatrix(body_is));
            } catch (const ModelFileError &e) {
                throw ModelFileError(
                    "record '" + l.name + "' piece " +
                    std::to_string(i) + ": " + e.what());
            }
        }
    }
    return layers;
}

} // namespace

// ------------------------------------------------- v4 streaming codec

namespace {

uint64_t
alignUp(uint64_t v, uint64_t a)
{
    return (v + a - 1) & ~(a - 1);
}

/** Every v4 checksum (meta and per piece) is seeded with the version
 *  word, like the v3 body checksum — a flip that changes the version
 *  can never keep a matching digest. */
uint64_t
v4Seed()
{
    return hashValue(kVersionV4);
}

/** Bits needed for the value: 0 for 0, else position of the top set
 *  bit plus one. The adaptive column width is this, over the column's
 *  surviving codes. */
int
codeBitWidth(uint32_t v)
{
    int w = 0;
    while (v) {
        ++w;
        v >>= 1;
    }
    return w;
}

/** v4 piece header: the v3 header plus the basis scale, minus the
 *  non-zero-row count (derived from the row mask at decode). */
constexpr size_t kV4PieceHeaderBytes = 27;

/**
 * Serialize one piece at v4 width: 27-byte header, row mask (v3
 * rules), a 2-bit-packed width table, the adaptive sign+magnitude
 * bitstream (byte-aligned flush), then the basis as int8. Throws
 * unless the basis sits exactly on its own 8-bit fixed-point grid —
 * shipping a rounded basis would serve different bits than the
 * compression-time net.
 */
std::vector<uint8_t>
encodePieceV4(const SeMatrix &m)
{
    const int64_t rows = m.ce.dim(0);
    const int64_t rank = m.ce.dim(1);
    const int64_t cols = m.basis.dim(1);
    if (rank > 0xFFFF || cols > 0xFFFF ||
        m.alphabet.expMax < -32768 || m.alphabet.expMax > 32767)
        throw ModelFileError(
            "matrix too wide for the v4 piece header (save as v2)");
    if (m.alphabet.numLevels < 1 ||
        m.alphabet.numLevels > kMaxPackedLevels)
        throw ModelFileError(
            "alphabet has " + std::to_string(m.alphabet.numLevels) +
            " levels; adaptive packing carries at most " +
            std::to_string(kMaxPackedLevels) +
            " (save this model as v2)");

    // Surviving rows and their sign|code bytes, v2 byte encoding.
    std::vector<uint8_t> row_mask((size_t)((rows + 7) / 8), 0);
    std::vector<uint8_t> codes;
    codes.reserve((size_t)m.ce.size());
    for (int64_t i = 0; i < rows; ++i) {
        bool nz = false;
        for (int64_t j = 0; j < rank && !nz; ++j)
            nz = m.ce.at(i, j) != 0.0f;
        if (!nz)
            continue;
        row_mask[(size_t)(i >> 3)] |= (uint8_t)(1u << (i & 7));
        for (int64_t j = 0; j < rank; ++j)
            codes.push_back(encodeCoef(m.ce.at(i, j), m.alphabet));
    }

    // Per-column width: exactly the bits the column's occupied
    // alphabet needs (0 when the column is all zero over the
    // surviving rows — such a column spends no bits at all).
    std::vector<uint8_t> widths((size_t)rank, 0);
    for (size_t k = 0; k < codes.size(); ++k) {
        const size_t j = k % (size_t)rank;
        widths[j] = (uint8_t)std::max<int>(
            widths[j], codeBitWidth(codes[k] & 0x7Fu));
    }

    // Basis at 8-bit fixed point, exact-recovery check per value.
    const auto fq = quant::FixedPointQuantizer::calibrate(m.basis, 8);
    std::vector<int8_t> q((size_t)(rank * cols));
    for (int64_t i = 0; i < m.basis.size(); ++i) {
        const float orig = m.basis[i];
        const int32_t v = fq.toInt(orig);
        const float back = fq.toFloat(v);
        if (std::memcmp(&back, &orig, sizeof(float)) != 0)
            throw ModelFileError(
                "basis is not at an 8-bit fixed point; run "
                "quantizeBasisAtCompress() before saveModelV4, or "
                "ship this model as v3");
        q[(size_t)i] = (int8_t)v;
    }

    std::ostringstream os(std::ios::binary);
    writePod<uint32_t>(os, (uint32_t)rows);
    writePod<uint16_t>(os, (uint16_t)rank);
    writePod<uint16_t>(os, (uint16_t)cols);
    writePod<int16_t>(os, (int16_t)m.alphabet.expMax);
    writePod<uint8_t>(os, (uint8_t)m.alphabet.numLevels);
    writePod<int32_t>(os, m.iterations);
    writePod<double>(os, m.reconRelError);
    writePod<float>(os, fq.scale);
    os.write(reinterpret_cast<const char *>(row_mask.data()),
             (std::streamsize)row_mask.size());
    // The width table itself is bit-packed: widths are 0..3, so two
    // bits per column, byte-aligned zero-padded flush.
    encode::BitWriter wbw;
    for (const uint8_t w : widths)
        wbw.writeBits(w, 2);
    wbw.alignToByte();
    const std::vector<uint8_t> &wbytes = wbw.bytes();
    os.write(reinterpret_cast<const char *>(wbytes.data()),
             (std::streamsize)wbytes.size());

    encode::BitWriter bw;
    for (size_t k = 0; k < codes.size(); ++k) {
        const uint32_t code = codes[k] & 0x7Fu;
        const int w = widths[k % (size_t)rank];
        if (w == 0)
            continue;
        bw.writeBits(code, w);
        if (code != 0)
            bw.writeBit((codes[k] & 0x80u) != 0);
    }
    bw.alignToByte();
    const std::vector<uint8_t> &bits = bw.bytes();
    os.write(reinterpret_cast<const char *>(bits.data()),
             (std::streamsize)bits.size());
    os.write(reinterpret_cast<const char *>(q.data()),
             (std::streamsize)q.size());

    const std::string s = os.str();
    return std::vector<uint8_t>(s.begin(), s.end());
}

/**
 * Exact inverse of encodePieceV4 over one checksum-verified payload.
 * Enforces the canonical-encoding rules (mask tail clear, minimal
 * column widths, zero pad bits, no spare bytes, flagged rows
 * non-zero, positive finite scale, scale 1.0 for an all-zero basis)
 * so two different payloads never decode identically.
 */
SeMatrix
decodePieceV4Payload(const uint8_t *p, size_t len)
{
    BufReader r(p, len);
    SeMatrix m;
    const int64_t rows = (int64_t)r.pod<uint32_t>();
    const int64_t rank = (int64_t)r.pod<uint16_t>();
    const int64_t cols = (int64_t)r.pod<uint16_t>();
    checkDim(rows, "row count");
    checkDim(rank, "rank");
    checkDim(cols, "column count");
    if (rows * rank > kMaxElems || rank * cols > kMaxElems)
        throw ModelFileError("implausible matrix size in model file");
    m.alphabet.expMax = r.pod<int16_t>();
    m.alphabet.numLevels = r.pod<uint8_t>();
    if (m.alphabet.numLevels < 1 ||
        m.alphabet.numLevels > kMaxPackedLevels ||
        m.alphabet.expMax < -1000 || m.alphabet.expMax > 1000)
        throw ModelFileError("implausible alphabet in model file");
    m.iterations = r.pod<int32_t>();
    if (m.iterations < 0 || m.iterations > (1 << 20))
        throw ModelFileError("implausible iteration count");
    m.reconRelError = r.pod<double>();
    if (!std::isfinite(m.reconRelError))
        throw ModelFileError("non-finite metadata in model file");
    const float scale = r.pod<float>();
    if (!std::isfinite(scale) || scale <= 0.0f)
        throw ModelFileError("implausible basis scale in model file");

    const size_t mask_bytes = (size_t)((rows + 7) / 8);
    const size_t width_bytes = (size_t)((rank + 3) / 4);
    if (r.remaining() < mask_bytes + width_bytes)
        throw ModelFileError("truncated piece payload in model file");
    const uint8_t *mask = r.cursor();
    r.skip(mask_bytes);
    encode::BitReader wbr(r.cursor(), width_bytes);
    r.skip(width_bytes);

    if ((rows & 7) && mask_bytes &&
        (mask[mask_bytes - 1] >> (rows & 7)))
        throw ModelFileError("row mask has bits past the last row");
    // Two bits per column can only spell 0..3, so the 3-bit-alphabet
    // bound holds by construction; only the pad bits need checking.
    std::vector<uint8_t> widths((size_t)rank, 0);
    for (int64_t j = 0; j < rank; ++j)
        widths[(size_t)j] = (uint8_t)wbr.readBits(2);
    if (wbr.alignToByte() != 0)
        throw ModelFileError(
            "non-zero padding bits in the column width table");

    // Everything between here and the int8 basis is the bitstream;
    // its byte length is implied by the payload length, and the
    // decode below must consume it exactly.
    const size_t basis_bytes = (size_t)(rank * cols);
    if (r.remaining() < basis_bytes)
        throw ModelFileError("truncated piece payload in model file");
    const size_t bs_bytes = r.remaining() - basis_bytes;
    encode::BitReader br(r.cursor(), bs_bytes);
    r.skip(bs_bytes);

    m.ce = Tensor({rows, rank});
    std::vector<uint8_t> col_max((size_t)rank, 0);
    for (int64_t i = 0; i < rows; ++i) {
        if (!(mask[(size_t)(i >> 3)] & (1u << (i & 7))))
            continue;
        bool row_nz = false;
        for (int64_t j = 0; j < rank; ++j) {
            const int w = widths[(size_t)j];
            if (w == 0)
                continue;
            const uint32_t code = br.readBits(w);
            if ((int)code > m.alphabet.numLevels)
                throw ModelFileError(
                    "coefficient code outside the stored alphabet");
            if (code == 0)
                continue;
            const bool neg = br.readBit();
            m.ce.at(i, j) = quant::pow2CodeValue(
                m.alphabet.expMin(), (int)code, neg);
            col_max[(size_t)j] =
                (uint8_t)std::max<uint32_t>(col_max[(size_t)j], code);
            row_nz = true;
        }
        if (!row_nz)
            throw ModelFileError(
                "all-zero row flagged non-zero in model file");
    }
    if (br.alignToByte() != 0)
        throw ModelFileError(
            "non-zero padding bits in piece bitstream");
    if (!br.atEnd())
        throw ModelFileError(
            "piece bitstream has trailing bytes");
    for (int64_t j = 0; j < rank; ++j)
        if (widths[(size_t)j] != 0 &&
            codeBitWidth(col_max[(size_t)j]) != widths[(size_t)j])
            throw ModelFileError(
                "column width is not minimal for its codes");

    m.basis = Tensor({rank, cols});
    const uint8_t *qb = r.cursor();
    r.skip(basis_bytes);
    bool any_q = false;
    for (int64_t i = 0; i < m.basis.size(); ++i) {
        const int8_t q = (int8_t)qb[(size_t)i];
        any_q = any_q || q != 0;
        m.basis[i] = (float)q * scale;  // == FixedPointQuantizer::toFloat
    }
    if (!any_q && basis_bytes > 0 && scale != 1.0f)
        throw ModelFileError(
            "non-canonical scale for an all-zero basis");
    if (r.remaining() != 0)
        throw ModelFileError("trailing bytes in piece payload");
    return m;
}

} // namespace

namespace modelv4 {

Meta
parseMeta(const uint8_t *file, size_t size)
{
    if (size < kHeaderBytes)
        throw ModelFileError("truncated model file");
    BufReader h(file, kHeaderBytes);
    if (h.pod<uint32_t>() != kMagic)
        throw ModelFileError("not a SmartExchange model file");
    const uint32_t version = h.pod<uint32_t>();
    if (version != kVersionV4)
        throw ModelFileError(
            "model file version " + std::to_string(version) +
            " is not a v4 streaming bundle");
    Meta meta;
    meta.metaBytes = h.pod<uint64_t>();
    meta.fileBytes = h.pod<uint64_t>();
    const uint64_t checksum = h.pod<uint64_t>();
    if (meta.fileBytes < kHeaderBytes ||
        meta.fileBytes > kMaxBodyBytes)
        throw ModelFileError("implausible model file size");
    if (meta.metaBytes > meta.fileBytes - kHeaderBytes)
        throw ModelFileError(
            "meta section overruns the model file");
    if ((uint64_t)size != meta.fileBytes)
        throw ModelFileError(
            "model file size does not match its header "
            "(truncated or trailing bytes)");
    if (fnv1a(file + kHeaderBytes, (size_t)meta.metaBytes, v4Seed()) !=
        checksum)
        throw ModelFileError(
            "model file meta checksum mismatch (corrupted stream)");

    BufReader r(file + kHeaderBytes, (size_t)meta.metaBytes);
    const uint32_t nrec = r.pod<uint32_t>();
    if (nrec > (1u << 20))
        throw ModelFileError("implausible layer count in model file");
    meta.recordNames.reserve(nrec);
    meta.pieceCounts.reserve(nrec);
    uint64_t sum = 0;
    for (uint32_t i = 0; i < nrec; ++i) {
        meta.recordNames.push_back(r.str());
        const uint32_t pieces = r.pod<uint32_t>();
        if (pieces > (1u << 24))
            throw ModelFileError("implausible piece count");
        meta.pieceCounts.push_back(pieces);
        sum += pieces;
    }
    const uint32_t ndense = r.pod<uint32_t>();
    if (ndense > (1u << 20))
        throw ModelFileError(
            "implausible dense tensor count in model file");
    meta.dense.reserve(ndense);
    for (uint32_t i = 0; i < ndense; ++i) {
        try {
            meta.dense.push_back(loadDenseTensorBuf(r));
        } catch (const ModelFileError &e) {
            throw ModelFileError("dense tensor " + std::to_string(i) +
                                 ": " + e.what());
        }
    }
    const uint32_t total = r.pod<uint32_t>();
    if (total > (1u << 24))
        throw ModelFileError("implausible piece count");
    if ((uint64_t)total != sum)
        throw ModelFileError(
            "piece directory count does not match the record table");
    meta.directory.reserve(total);
    // Offsets are derived, not stored: the piece region starts on the
    // first 64-byte boundary past the meta and payloads are packed
    // back-to-back in directory order. An 8-byte row (u32 length +
    // u32 truncated FNV-1a) is all the directory carries per piece —
    // the whole directory sits under the u64 meta checksum anyway.
    uint64_t expect = kHeaderBytes + meta.metaBytes;
    if (total > 0)
        expect = alignUp(expect, kPieceAlign);
    for (uint32_t i = 0; i < total; ++i) {
        PieceDirEntry e;
        e.length = r.pod<uint32_t>();
        e.checksum = r.pod<uint32_t>();
        e.offset = expect;
        if (e.length > meta.fileBytes ||
            e.offset > meta.fileBytes - e.length)
            throw ModelFileError(
                "piece " + std::to_string(i) + " at offset " +
                std::to_string(e.offset) +
                " overruns the model file");
        expect = e.offset + e.length;
        meta.directory.push_back(e);
    }
    if (r.remaining() != 0)
        throw ModelFileError("trailing bytes in model file meta");
    if (expect != meta.fileBytes)
        throw ModelFileError(
            "model file has " +
            std::to_string(meta.fileBytes - expect) +
            " byte(s) past the last piece");
    return meta;
}

SeMatrix
decodePiece(const uint8_t *file, const Meta &meta, size_t index)
{
    SE_ASSERT(index < meta.directory.size(),
              "piece index out of range");
    const PieceDirEntry &e = meta.directory[index];
    try {
        if ((uint32_t)fnv1a(file + e.offset, (size_t)e.length,
                            v4Seed()) != e.checksum)
            throw ModelFileError(
                "piece checksum mismatch (corrupted stream)");
        return decodePieceV4Payload(file + e.offset,
                                    (size_t)e.length);
    } catch (const std::exception &ex) {
        throw ModelFileError("piece " + std::to_string(index) +
                             " at offset " + std::to_string(e.offset) +
                             ": " + ex.what());
    }
}

} // namespace modelv4

void
saveModelV4(std::ostream &os, const std::vector<SeLayerRecord> &layers,
            const std::vector<DenseTensor> &dense)
{
    std::vector<std::vector<uint8_t>> payloads;
    std::ostringstream meta_os(std::ios::binary);
    writePod<uint32_t>(meta_os, (uint32_t)layers.size());
    for (const auto &l : layers) {
        writeString(meta_os, l.name);
        writePod<uint32_t>(meta_os, (uint32_t)l.pieces.size());
        for (const auto &p : l.pieces)
            payloads.push_back(encodePieceV4(p));
    }
    writePod<uint32_t>(meta_os, (uint32_t)dense.size());
    for (const auto &d : dense)
        saveDenseTensor(meta_os, d);
    writePod<uint32_t>(meta_os, (uint32_t)payloads.size());

    // The directory has a fixed 8-byte row, so metaBytes — and with
    // it every derived piece offset — is known before the rows are
    // written. Only the region start is aligned; payloads pack
    // back-to-back so tiny pieces carry no per-piece padding tax.
    const std::string meta_prefix = meta_os.str();
    const uint64_t meta_bytes =
        meta_prefix.size() + 8ull * payloads.size();
    std::vector<modelv4::PieceDirEntry> dir;
    dir.reserve(payloads.size());
    uint64_t end = modelv4::kHeaderBytes + meta_bytes;
    if (!payloads.empty())
        end = alignUp(end, modelv4::kPieceAlign);
    for (const auto &pl : payloads) {
        modelv4::PieceDirEntry e;
        if (pl.size() > UINT32_MAX)
            throw ModelFileError("piece too large for a v4 bundle");
        e.offset = end;
        e.length = pl.size();
        e.checksum = (uint32_t)fnv1a(pl.data(), pl.size(), v4Seed());
        end = e.offset + e.length;
        dir.push_back(e);
    }
    if (end > kMaxBodyBytes)
        throw ModelFileError("model too large for a v4 bundle");

    std::ostringstream dir_os(std::ios::binary);
    for (const auto &e : dir) {
        writePod<uint32_t>(dir_os, (uint32_t)e.length);
        writePod<uint32_t>(dir_os, (uint32_t)e.checksum);
    }
    const std::string meta = meta_prefix + dir_os.str();
    SE_ASSERT(meta.size() == meta_bytes, "v4 meta size mismatch");

    writePod<uint32_t>(os, kMagic);
    writePod<uint32_t>(os, kVersionV4);
    writePod<uint64_t>(os, meta_bytes);
    writePod<uint64_t>(os, end);
    writePod<uint64_t>(os, fnv1a(meta.data(), meta.size(), v4Seed()));
    os.write(meta.data(), (std::streamsize)meta.size());
    uint64_t at = modelv4::kHeaderBytes + meta_bytes;
    for (size_t i = 0; i < payloads.size(); ++i) {
        for (; at < dir[i].offset; ++at)
            os.put('\0');
        os.write(reinterpret_cast<const char *>(payloads[i].data()),
                 (std::streamsize)payloads[i].size());
        at += payloads[i].size();
    }
}

namespace {

/** Eager v4 load over a complete in-memory image: validate the meta,
 *  every padding byte, and every piece. */
ModelBundle
loadBundleV4(const uint8_t *file, size_t size)
{
    const modelv4::Meta meta = modelv4::parseMeta(file, size);
    // The only padding run sits between the meta and the aligned
    // piece-region start; it must be zero so an eager load validates
    // every byte and two different files never load identically.
    uint64_t expect = modelv4::kHeaderBytes + meta.metaBytes;
    for (const auto &e : meta.directory) {
        for (uint64_t b = expect; b < e.offset; ++b)
            if (file[b] != 0)
                throw ModelFileError(
                    "non-zero padding byte at offset " +
                    std::to_string(b));
        expect = e.offset + e.length;
    }
    ModelBundle bundle;
    bundle.dense = meta.dense;
    bundle.records.resize(meta.recordNames.size());
    size_t flat = 0;
    for (size_t ri = 0; ri < meta.recordNames.size(); ++ri) {
        SeLayerRecord &rec = bundle.records[ri];
        rec.name = meta.recordNames[ri];
        rec.pieces.reserve(meta.pieceCounts[ri]);
        for (uint32_t k = 0; k < meta.pieceCounts[ri]; ++k) {
            try {
                rec.pieces.push_back(
                    modelv4::decodePiece(file, meta, flat++));
            } catch (const ModelFileError &e) {
                throw ModelFileError("record '" + rec.name + "': " +
                                     e.what());
            }
        }
    }
    return bundle;
}

/** Continue a v4 load after loadModelBundle consumed magic+version:
 *  rebuild the full image and run the shared buffer path. */
ModelBundle
loadBundleV4Stream(std::istream &is)
{
    std::string file(modelv4::kHeaderBytes, '\0');
    std::memcpy(&file[0], &kMagic, sizeof(kMagic));
    std::memcpy(&file[4], &kVersionV4, sizeof(kVersionV4));
    is.read(&file[8], 24);
    if (is.gcount() != 24)
        throw ModelFileError("truncated model file");
    uint64_t file_bytes = 0;
    std::memcpy(&file_bytes, file.data() + 16, sizeof(file_bytes));
    if (file_bytes < modelv4::kHeaderBytes ||
        file_bytes > kMaxBodyBytes)
        throw ModelFileError("implausible model file size");
    // On seekable streams, reject a corrupted size field before
    // allocating for it (same policy as the v2/v3 frame reader).
    const std::streampos at = is.tellg();
    if (at != std::streampos(-1)) {
        is.seekg(0, std::ios::end);
        const std::streampos stream_end = is.tellg();
        is.seekg(at);
        if (stream_end != std::streampos(-1) &&
            (uint64_t)(stream_end - at) <
                file_bytes - modelv4::kHeaderBytes)
            throw ModelFileError("truncated model file");
    }
    file.resize((size_t)file_bytes);
    is.read(&file[modelv4::kHeaderBytes],
            (std::streamsize)(file_bytes - modelv4::kHeaderBytes));
    if ((uint64_t)is.gcount() != file_bytes - modelv4::kHeaderBytes)
        throw ModelFileError("truncated model file");
    // The header's fileBytes is not under the meta checksum, so a
    // flip there must be caught structurally: the stream must end
    // exactly where the header says the file does.
    if (is.peek() != std::char_traits<char>::eof())
        throw ModelFileError("trailing bytes past the model file");
    return loadBundleV4(
        reinterpret_cast<const uint8_t *>(file.data()), file.size());
}

} // namespace

void
saveModel(std::ostream &os, const std::vector<SeLayerRecord> &layers)
{
    std::ostringstream body_os(std::ios::binary);
    writePod<uint32_t>(body_os, (uint32_t)layers.size());
    for (const auto &l : layers) {
        writeString(body_os, l.name);
        writePod<uint32_t>(body_os, (uint32_t)l.pieces.size());
        for (const auto &p : l.pieces)
            saveSeMatrix(body_os, p);
    }
    writeFramedBody(os, kVersion, body_os.str());
}

void
saveModelV3(std::ostream &os,
            const std::vector<SeLayerRecord> &layers,
            const std::vector<DenseTensor> &dense)
{
    std::ostringstream body_os(std::ios::binary);
    writePod<uint32_t>(body_os, (uint32_t)layers.size());
    for (const auto &l : layers) {
        writeString(body_os, l.name);
        writePod<uint32_t>(body_os, (uint32_t)l.pieces.size());
        for (const auto &p : l.pieces)
            saveSeMatrixV3(body_os, p);
    }
    writePod<uint32_t>(body_os, (uint32_t)dense.size());
    for (const auto &d : dense)
        saveDenseTensor(body_os, d);
    writeFramedBody(os, kVersionV3, body_os.str());
}

ModelBundle
loadModelBundle(std::istream &is)
{
    if (readPod<uint32_t>(is) != kMagic)
        throw ModelFileError("not a SmartExchange model file");
    const uint32_t version = readPod<uint32_t>(is);
    if (version == kVersionV4)
        return loadBundleV4Stream(is);
    if (version != kVersion && version != kVersionV3)
        throw ModelFileError("unsupported model file version");
    const std::string body = readFramedBodyRest(is, version);
    std::istringstream body_is(body, std::ios::binary);
    ModelBundle bundle;
    bundle.records = loadRecords(body_is, version);
    if (version == kVersionV3) {
        const uint32_t n = readPod<uint32_t>(body_is);
        if (n > (1u << 20))
            throw ModelFileError(
                "implausible dense tensor count in model file");
        bundle.dense.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
            try {
                bundle.dense.push_back(loadDenseTensor(body_is));
            } catch (const ModelFileError &e) {
                throw ModelFileError("dense tensor " +
                                     std::to_string(i) + ": " +
                                     e.what());
            }
        }
    }
    // Trailing garbage inside a checksummed body is still damage: two
    // different byte streams must never load as the same bundle.
    if (body_is.peek() != std::char_traits<char>::eof())
        throw ModelFileError("trailing bytes in model file body");
    return bundle;
}

std::vector<SeLayerRecord>
loadModel(std::istream &is)
{
    ModelBundle bundle = loadModelBundle(is);
    if (!bundle.dense.empty())
        throw ModelFileError(
            "bundle carries dense residual state; load it with "
            "loadModelBundle() instead of the records-only view");
    return std::move(bundle.records);
}

void
saveModelFile(const std::string &path,
              const std::vector<SeLayerRecord> &layers)
{
    // The failpoint takes the exact path a full disk / yanked volume
    // would: ModelFileError out of the save, nothing half-installed.
    SE_FAILPOINT_THROW("model_file_save_io", ModelFileError);
    std::ofstream os(path, std::ios::binary);
    if (!os.good())
        throw ModelFileError("cannot open " + path + " for writing");
    saveModel(os, layers);
}

std::vector<SeLayerRecord>
loadModelFile(const std::string &path)
{
    SE_FAILPOINT_THROW("model_file_load_io", ModelFileError);
    std::ifstream is(path, std::ios::binary);
    if (!is.good())
        throw ModelFileError("cannot open " + path + " for reading");
    return loadModel(is);
}

void
saveModelV3File(const std::string &path, const ModelBundle &b)
{
    SE_FAILPOINT_THROW("model_file_save_io", ModelFileError);
    std::ofstream os(path, std::ios::binary);
    if (!os.good())
        throw ModelFileError("cannot open " + path + " for writing");
    saveModelV3(os, b.records, b.dense);
}

void
saveModelV4File(const std::string &path, const ModelBundle &b)
{
    SE_FAILPOINT_THROW("model_file_save_io", ModelFileError);
    std::ofstream os(path, std::ios::binary);
    if (!os.good())
        throw ModelFileError("cannot open " + path + " for writing");
    saveModelV4(os, b.records, b.dense);
    os.flush();
    if (!os.good())
        throw ModelFileError("write to " + path + " failed");
}

ModelBundle
loadModelBundleFile(const std::string &path)
{
    SE_FAILPOINT_THROW("model_file_load_io", ModelFileError);
    std::ifstream is(path, std::ios::binary);
    if (!is.good())
        throw ModelFileError("cannot open " + path + " for reading");
    return loadModelBundle(is);
}

// ------------------------------------------------- nn <-> record glue

namespace {

/**
 * The one walk both sides of the dense-residual contract share:
 * visit every leaf in depth-first order and emit (name, tensor)
 * pairs for the state the Ce*B records do not carry.
 */
void
visitDenseState(
    nn::Sequential &net,
    const std::vector<const Tensor *> &decomposed_weights,
    const std::function<void(const std::string &, Tensor &)> &fn)
{
    std::unordered_set<const Tensor *> decomposed(
        decomposed_weights.begin(), decomposed_weights.end());
    size_t idx = 0;
    net.visit([&](nn::Layer &l) {
        const std::string prefix =
            std::to_string(idx++) + ":" + l.name() + ":";
        if (auto *c = dynamic_cast<nn::Conv2d *>(&l)) {
            if (!decomposed.count(&c->weightTensor()))
                fn(prefix + "weight", c->weightTensor());
            if (!c->biasTensor().empty())
                fn(prefix + "bias", c->biasTensor());
        } else if (auto *f = dynamic_cast<nn::Linear *>(&l)) {
            if (!decomposed.count(&f->weightTensor()))
                fn(prefix + "weight", f->weightTensor());
            if (!f->biasTensor().empty())
                fn(prefix + "bias", f->biasTensor());
        } else if (auto *b = dynamic_cast<nn::BatchNorm2d *>(&l)) {
            fn(prefix + "gamma", b->gammaTensor());
            fn(prefix + "beta", b->betaTensor());
            fn(prefix + "running_mean", b->runningMeanTensor());
            fn(prefix + "running_var", b->runningVarTensor());
        }
    });
}

} // namespace

std::vector<DenseTensor>
collectDenseState(nn::Sequential &net,
                  const std::vector<const Tensor *> &decomposed_weights)
{
    std::vector<DenseTensor> out;
    visitDenseState(net, decomposed_weights,
                    [&](const std::string &name, Tensor &t) {
                        out.push_back({name, t});
                    });
    return out;
}

void
installDenseState(
    nn::Sequential &net, const std::vector<DenseTensor> &dense,
    const std::vector<const Tensor *> &decomposed_weights)
{
    size_t at = 0;
    visitDenseState(
        net, decomposed_weights,
        [&](const std::string &name, Tensor &t) {
            if (at >= dense.size())
                throw ModelFileError(
                    "dense residual ends before tensor '" + name +
                    "'");
            const DenseTensor &d = dense[at++];
            if (d.name != name)
                throw ModelFileError(
                    "dense tensor '" + d.name +
                    "' does not match expected '" + name + "'");
            if (d.value.shape() != t.shape())
                throw ModelFileError("dense tensor '" + name +
                                     "' has a mismatched shape");
            t = d.value;
        });
    if (at != dense.size())
        throw ModelFileError(
            "dense residual has " +
            std::to_string(dense.size() - at) + " extra tensor(s)");
}

CompressedModel
compressToRecords(nn::Sequential &net, const SeOptions &se_opts,
                  const ApplyOptions &apply_opts,
                  const DecomposeFn &decomp)
{
    if (apply_opts.channelGammaThreshold > 0.0)
        SE_WARN("compressToRecords: channel pruning mutates BN "
                "gamma/beta in THIS net; the mutated state ships in "
                "CompressedModel::dense and only saveModelV3 writes "
                "it — a records-only v2 save of this model serves "
                "diverged outputs from a fresh factory net.");
    CompressionPlan plan = planCompression(net, se_opts, apply_opts);

    std::vector<SeMatrix> results;
    results.reserve(plan.units.size());
    for (const DecompUnit &u : plan.units)
        results.push_back(decomp ? decomp(u.matrix, se_opts)
                                 : decomposeMatrix(u.matrix, se_opts));

    // Group the pieces per decomposed layer before finishCompression
    // consumes the originals. The copy is deliberate: records and the
    // finish pass both need the pieces, and a compressed bundle is
    // small (Ce codes + tiny bases), so transiently holding two
    // copies is cheaper than contorting finishCompression's
    // ownership for every caller.
    CompressedModel out;
    size_t ui = 0;
    for (size_t li = 0; li < plan.layers.size(); ++li) {
        SeLayerRecord rec;
        rec.name = plan.layers[li].report.name;
        while (ui < plan.units.size() &&
               plan.units[ui].layerIndex == li)
            rec.pieces.push_back(results[ui++]);
        if (!rec.pieces.empty())
            out.records.push_back(std::move(rec));
    }

    // The dense residual (what the old "BN not shipped" warning was
    // about): snapshot AFTER planCompression, so channel pruning's
    // BN gamma/beta mutations ship with the model, and biases /
    // running stats / undecomposed weights come along too.
    std::vector<const Tensor *> decomposed_weights;
    for (const PlannedLayer &pl : plan.layers)
        if (pl.weight)
            decomposed_weights.push_back(pl.weight);
    out.dense = collectDenseState(net, decomposed_weights);

    out.report = finishCompression(plan, std::move(results), se_opts);
    return out;
}

std::vector<RecordBinding>
matchRecordsToPlan(const CompressionPlan &plan,
                   const std::vector<SeLayerRecord> &records)
{
    std::vector<RecordBinding> bindings;
    size_t ri = 0, ui = 0;
    for (size_t li = 0; li < plan.layers.size(); ++li) {
        size_t unit_count = 0;
        while (ui + unit_count < plan.units.size() &&
               plan.units[ui + unit_count].layerIndex == li)
            ++unit_count;
        if (unit_count == 0)
            continue;
        const std::string &name = plan.layers[li].report.name;
        if (ri >= records.size())
            throw ModelFileError("model records end before layer " +
                                 name);
        const SeLayerRecord &rec = records[ri++];
        if (rec.name != name)
            throw ModelFileError("record '" + rec.name +
                                 "' does not match planned layer '" +
                                 name + "'");
        if (rec.pieces.size() != unit_count)
            throw ModelFileError("record '" + rec.name + "' has " +
                                 std::to_string(rec.pieces.size()) +
                                 " pieces, expected " +
                                 std::to_string(unit_count));
        for (size_t k = 0; k < unit_count; ++k) {
            const SeMatrix &p = rec.pieces[k];
            const Tensor &m = plan.units[ui + k].matrix;
            if (p.ce.dim(0) != m.dim(0) || p.basis.dim(1) != m.dim(1))
                throw ModelFileError(
                    "piece shape mismatch in record '" + rec.name +
                    "'");
        }
        bindings.push_back({li, ui, unit_count, &rec});
        ui += unit_count;
    }
    if (ri != records.size())
        throw ModelFileError("model bundle has " +
                             std::to_string(records.size() - ri) +
                             " extra record(s)");
    return bindings;
}

namespace {

CompressionReport
installRecordsImpl(nn::Sequential &net,
                   const std::vector<SeLayerRecord> &records,
                   const std::vector<DenseTensor> *dense,
                   const SeOptions &se_opts,
                   const ApplyOptions &apply_opts)
{
    // Never re-prune: the threshold rule must not fire on the
    // factory net's unrelated gamma values. Pruned CONV channels
    // arrive zeroed through the records themselves; pruned BN
    // gamma/beta state arrives through the dense residual when the
    // caller ships one (v3) — without it, the factory net must
    // bit-reproduce the compression-time non-decomposed state.
    ApplyOptions install_opts = apply_opts;
    install_opts.channelGammaThreshold = 0.0;
    CompressionPlan plan = planCompression(net, se_opts, install_opts);

    // Bindings are in unit order and cover every planned unit, so
    // flattening their pieces reassembles finishCompression's input.
    std::vector<SeMatrix> results;
    results.reserve(plan.units.size());
    for (const RecordBinding &b : matchRecordsToPlan(plan, records))
        for (size_t k = 0; k < b.unitCount; ++k)
            results.push_back(b.record->pieces[k]);

    if (dense && !dense->empty()) {
        std::vector<const Tensor *> decomposed_weights;
        for (const PlannedLayer &pl : plan.layers)
            if (pl.weight)
                decomposed_weights.push_back(pl.weight);
        installDenseState(net, *dense, decomposed_weights);
    }

    return finishCompression(plan, std::move(results), se_opts);
}

} // namespace

CompressionReport
installLayerRecords(nn::Sequential &net,
                    const std::vector<SeLayerRecord> &records,
                    const SeOptions &se_opts,
                    const ApplyOptions &apply_opts)
{
    return installRecordsImpl(net, records, nullptr, se_opts,
                              apply_opts);
}

CompressionReport
installModelBundle(nn::Sequential &net, const ModelBundle &bundle,
                   const SeOptions &se_opts,
                   const ApplyOptions &apply_opts)
{
    return installRecordsImpl(net, bundle.records, &bundle.dense,
                              se_opts, apply_opts);
}

namespace {

bool
tensorBitsEqual(const Tensor &a, const Tensor &b)
{
    if (a.shape() != b.shape())
        return false;
    return a.empty() ||
           std::memcmp(a.data(), b.data(),
                       (size_t)a.size() * sizeof(float)) == 0;
}

} // namespace

size_t
quantizeBasisAtCompress(std::vector<SeLayerRecord> &records, int bits)
{
    size_t changed = 0;
    for (auto &rec : records)
        for (auto &p : rec.pieces) {
            bool touched = false;
            // Iterate to a BITWISE fixed point. One fakeQuantize pass
            // is not idempotent: recalibrating on the quantized
            // tensor can move the scale by an ulp (the new max |x| is
            // the rounded one), which would make saveModelV4's
            // recalibrate-and-recover check flake. At a fixed point
            // that check holds by construction.
            for (int iter = 0;; ++iter) {
                if (iter >= 8)
                    throw ModelFileError(
                        "basis quantization did not reach a fixed "
                        "point for record '" + rec.name + "'");
                const auto fq =
                    quant::FixedPointQuantizer::calibrate(p.basis,
                                                          bits);
                Tensor next = fq.fakeQuantize(p.basis);
                if (tensorBitsEqual(next, p.basis))
                    break;
                p.basis = std::move(next);
                touched = true;
            }
            if (touched)
                ++changed;
        }
    return changed;
}

void
quantizeBasisAtCompress(nn::Sequential &net, CompressedModel &model,
                        const SeOptions &se_opts,
                        const ApplyOptions &apply_opts, int bits)
{
    if (quantizeBasisAtCompress(model.records, bits) == 0)
        return;
    // The bases moved, so the Ce*B reconstructions sitting in the live
    // net's weights are stale: reinstall so the compression-time net
    // is bit-identical to what a v4 bundle will serve.
    installLayerRecords(net, model.records, se_opts, apply_opts);
}

} // namespace core
} // namespace se
