#include "core/model_file.hh"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "base/hash.hh"
#include "base/logging.hh"

namespace se {
namespace core {

namespace {

constexpr uint32_t kMagic = 0x5345584Du;  // "SEXM"
constexpr uint32_t kVersion = 2;
/** Hard ceiling on any stored dimension / count (anti-corruption). */
constexpr int64_t kMaxDim = 1 << 24;
constexpr int64_t kMaxElems = 1 << 26;
constexpr uint64_t kMaxBodyBytes = 1ull << 31;

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is.good())
        throw ModelFileError(
            "unexpected end of SmartExchange model stream");
    return v;
}

void
writeString(std::ostream &os, const std::string &s)
{
    writePod<uint32_t>(os, (uint32_t)s.size());
    os.write(s.data(), (std::streamsize)s.size());
}

std::string
readString(std::istream &is)
{
    const uint32_t len = readPod<uint32_t>(is);
    if (len >= (1u << 20))
        throw ModelFileError("implausible string length in model file");
    std::string s((size_t)len, '\0');
    is.read(s.data(), len);
    if ((uint32_t)is.gcount() != len)
        throw ModelFileError("truncated string in model file");
    return s;
}

/** Encode a power-of-2 coefficient as one byte. */
uint8_t
encodeCoef(float v, const quant::Pow2Alphabet &a)
{
    if (v == 0.0f)
        return 0;
    int exp;
    const float frac = std::frexp(std::abs(v), &exp);
    SE_ASSERT(frac == 0.5f, "non-power-of-2 coefficient in file save");
    const int code = (exp - 1) - a.expMin() + 1;  // 1..numLevels
    SE_ASSERT(code >= 1 && code <= a.numLevels,
              "coefficient exponent outside alphabet");
    return (uint8_t)((v < 0 ? 0x80 : 0x00) | code);
}

float
decodeCoef(uint8_t byte, const quant::Pow2Alphabet &a)
{
    if (byte == 0)
        return 0.0f;
    const bool neg = (byte & 0x80) != 0;
    const int code = byte & 0x7F;
    // code 0 with the sign bit set (byte 0x80) is not a legal
    // encoding either — it would decode below the alphabet.
    if (code < 1 || code > a.numLevels)
        throw ModelFileError(
            "coefficient code outside the stored alphabet");
    const int exp = a.expMin() + code - 1;
    const float mag = std::ldexp(1.0f, exp);
    return neg ? -mag : mag;
}

void
checkDim(int64_t d, const char *what)
{
    if (d < 0 || d > kMaxDim)
        throw ModelFileError(std::string("implausible ") + what +
                             " in model file");
}

} // namespace

void
saveSeMatrix(std::ostream &os, const SeMatrix &m)
{
    writePod<int64_t>(os, m.ce.dim(0));
    writePod<int64_t>(os, m.ce.dim(1));
    writePod<int64_t>(os, m.basis.dim(1));
    writePod<int32_t>(os, m.alphabet.expMax);
    writePod<int32_t>(os, m.alphabet.numLevels);
    writePod<int32_t>(os, m.iterations);
    writePod<double>(os, m.reconRelError);
    for (int64_t i = 0; i < m.ce.size(); ++i)
        writePod<uint8_t>(os, encodeCoef(m.ce[i], m.alphabet));
    for (int64_t i = 0; i < m.basis.size(); ++i)
        writePod<float>(os, m.basis[i]);
}

SeMatrix
loadSeMatrix(std::istream &is)
{
    SeMatrix m;
    const int64_t rows = readPod<int64_t>(is);
    const int64_t rank = readPod<int64_t>(is);
    const int64_t cols = readPod<int64_t>(is);
    checkDim(rows, "row count");
    checkDim(rank, "rank");
    checkDim(cols, "column count");
    if (rows * rank > kMaxElems || rank * cols > kMaxElems)
        throw ModelFileError("implausible matrix size in model file");
    m.alphabet.expMax = readPod<int32_t>(is);
    m.alphabet.numLevels = readPod<int32_t>(is);
    if (m.alphabet.numLevels < 1 || m.alphabet.numLevels > 126 ||
        m.alphabet.expMax < -1000 || m.alphabet.expMax > 1000)
        throw ModelFileError("implausible alphabet in model file");
    m.iterations = readPod<int32_t>(is);
    if (m.iterations < 0 || m.iterations > (1 << 20))
        throw ModelFileError("implausible iteration count");
    m.reconRelError = readPod<double>(is);
    if (!std::isfinite(m.reconRelError))
        throw ModelFileError("non-finite metadata in model file");
    m.ce = Tensor({rows, rank});
    for (int64_t i = 0; i < m.ce.size(); ++i)
        m.ce[i] = decodeCoef(readPod<uint8_t>(is), m.alphabet);
    m.basis = Tensor({rank, cols});
    for (int64_t i = 0; i < m.basis.size(); ++i)
        m.basis[i] = readPod<float>(is);
    return m;
}

void
saveModel(std::ostream &os, const std::vector<SeLayerRecord> &layers)
{
    // Serialize the body first so the header can carry its size and
    // FNV-1a checksum; load verifies both before parsing a byte.
    std::ostringstream body_os(std::ios::binary);
    writePod<uint32_t>(body_os, (uint32_t)layers.size());
    for (const auto &l : layers) {
        writeString(body_os, l.name);
        writePod<uint32_t>(body_os, (uint32_t)l.pieces.size());
        for (const auto &p : l.pieces)
            saveSeMatrix(body_os, p);
    }
    const std::string body = body_os.str();

    writePod<uint32_t>(os, kMagic);
    writePod<uint32_t>(os, kVersion);
    writePod<uint64_t>(os, (uint64_t)body.size());
    writePod<uint64_t>(os, fnv1a(body.data(), body.size()));
    os.write(body.data(), (std::streamsize)body.size());
}

std::vector<SeLayerRecord>
loadModel(std::istream &is)
{
    if (readPod<uint32_t>(is) != kMagic)
        throw ModelFileError("not a SmartExchange model file");
    if (readPod<uint32_t>(is) != kVersion)
        throw ModelFileError("unsupported model file version");
    const uint64_t body_size = readPod<uint64_t>(is);
    const uint64_t checksum = readPod<uint64_t>(is);
    if (body_size > kMaxBodyBytes)
        throw ModelFileError("implausible model file size");
    // On seekable streams, reject a corrupted size field before
    // allocating body_size bytes for it.
    const std::streampos at = is.tellg();
    if (at != std::streampos(-1)) {
        is.seekg(0, std::ios::end);
        const std::streampos end = is.tellg();
        is.seekg(at);
        if (end != std::streampos(-1) &&
            (uint64_t)(end - at) < body_size)
            throw ModelFileError("truncated model file");
    }
    std::string body((size_t)body_size, '\0');
    is.read(body.data(), (std::streamsize)body_size);
    if ((uint64_t)is.gcount() != body_size)
        throw ModelFileError("truncated model file");
    if (fnv1a(body.data(), body.size()) != checksum)
        throw ModelFileError("model file checksum mismatch "
                             "(corrupted stream)");

    std::istringstream body_is(body, std::ios::binary);
    const uint32_t n = readPod<uint32_t>(body_is);
    if (n > (1u << 20))
        throw ModelFileError("implausible layer count in model file");
    std::vector<SeLayerRecord> layers((size_t)n);
    for (auto &l : layers) {
        l.name = readString(body_is);
        const uint32_t pieces = readPod<uint32_t>(body_is);
        if (pieces > (1u << 24))
            throw ModelFileError("implausible piece count");
        l.pieces.reserve(pieces);
        for (uint32_t i = 0; i < pieces; ++i)
            l.pieces.push_back(loadSeMatrix(body_is));
    }
    return layers;
}

void
saveModelFile(const std::string &path,
              const std::vector<SeLayerRecord> &layers)
{
    std::ofstream os(path, std::ios::binary);
    if (!os.good())
        throw ModelFileError("cannot open " + path + " for writing");
    saveModel(os, layers);
}

std::vector<SeLayerRecord>
loadModelFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.good())
        throw ModelFileError("cannot open " + path + " for reading");
    return loadModel(is);
}

// ------------------------------------------------- nn <-> record glue

CompressedModel
compressToRecords(nn::Sequential &net, const SeOptions &se_opts,
                  const ApplyOptions &apply_opts,
                  const DecomposeFn &decomp)
{
    if (apply_opts.channelGammaThreshold > 0.0)
        SE_WARN("compressToRecords: channel pruning zeroes BN "
                "gamma/beta in THIS net, but records ship only the "
                "decomposed weights — a serving-side install into a "
                "fresh net keeps its unpruned BN tensors and will "
                "diverge. Ship dense BN state separately (record "
                "format v3, see ROADMAP) or serve unpruned models.");
    CompressionPlan plan = planCompression(net, se_opts, apply_opts);

    std::vector<SeMatrix> results;
    results.reserve(plan.units.size());
    for (const DecompUnit &u : plan.units)
        results.push_back(decomp ? decomp(u.matrix, se_opts)
                                 : decomposeMatrix(u.matrix, se_opts));

    // Group the pieces per decomposed layer before finishCompression
    // consumes the originals. The copy is deliberate: records and the
    // finish pass both need the pieces, and a compressed bundle is
    // small (Ce codes + tiny bases), so transiently holding two
    // copies is cheaper than contorting finishCompression's
    // ownership for every caller.
    CompressedModel out;
    size_t ui = 0;
    for (size_t li = 0; li < plan.layers.size(); ++li) {
        SeLayerRecord rec;
        rec.name = plan.layers[li].report.name;
        while (ui < plan.units.size() &&
               plan.units[ui].layerIndex == li)
            rec.pieces.push_back(results[ui++]);
        if (!rec.pieces.empty())
            out.records.push_back(std::move(rec));
    }

    out.report = finishCompression(plan, std::move(results), se_opts);
    return out;
}

std::vector<RecordBinding>
matchRecordsToPlan(const CompressionPlan &plan,
                   const std::vector<SeLayerRecord> &records)
{
    std::vector<RecordBinding> bindings;
    size_t ri = 0, ui = 0;
    for (size_t li = 0; li < plan.layers.size(); ++li) {
        size_t unit_count = 0;
        while (ui + unit_count < plan.units.size() &&
               plan.units[ui + unit_count].layerIndex == li)
            ++unit_count;
        if (unit_count == 0)
            continue;
        const std::string &name = plan.layers[li].report.name;
        if (ri >= records.size())
            throw ModelFileError("model records end before layer " +
                                 name);
        const SeLayerRecord &rec = records[ri++];
        if (rec.name != name)
            throw ModelFileError("record '" + rec.name +
                                 "' does not match planned layer '" +
                                 name + "'");
        if (rec.pieces.size() != unit_count)
            throw ModelFileError("record '" + rec.name + "' has " +
                                 std::to_string(rec.pieces.size()) +
                                 " pieces, expected " +
                                 std::to_string(unit_count));
        for (size_t k = 0; k < unit_count; ++k) {
            const SeMatrix &p = rec.pieces[k];
            const Tensor &m = plan.units[ui + k].matrix;
            if (p.ce.dim(0) != m.dim(0) || p.basis.dim(1) != m.dim(1))
                throw ModelFileError(
                    "piece shape mismatch in record '" + rec.name +
                    "'");
        }
        bindings.push_back({li, ui, unit_count, &rec});
        ui += unit_count;
    }
    if (ri != records.size())
        throw ModelFileError("model bundle has " +
                             std::to_string(records.size() - ri) +
                             " extra record(s)");
    return bindings;
}

CompressionReport
installLayerRecords(nn::Sequential &net,
                    const std::vector<SeLayerRecord> &records,
                    const SeOptions &se_opts,
                    const ApplyOptions &apply_opts)
{
    // Never re-prune: the threshold rule must not fire on the
    // factory net's unrelated gamma values. Pruned CONV channels
    // arrive zeroed through the records themselves; pruned BN
    // gamma/beta state is NOT shipped (see the compressToRecords
    // warning), so pruned models need their BN tensors restored by
    // the caller.
    ApplyOptions install_opts = apply_opts;
    install_opts.channelGammaThreshold = 0.0;
    CompressionPlan plan = planCompression(net, se_opts, install_opts);

    // Bindings are in unit order and cover every planned unit, so
    // flattening their pieces reassembles finishCompression's input.
    std::vector<SeMatrix> results;
    results.reserve(plan.units.size());
    for (const RecordBinding &b : matchRecordsToPlan(plan, records))
        for (size_t k = 0; k < b.unitCount; ++k)
            results.push_back(b.record->pieces[k]);

    return finishCompression(plan, std::move(results), se_opts);
}

} // namespace core
} // namespace se
