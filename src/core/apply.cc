#include "core/apply.hh"

#include <algorithm>
#include <cmath>

namespace se {
namespace core {

namespace {

/** Split `rows` into near-equal slices no taller than max_rows. */
std::vector<std::pair<int64_t, int64_t>>
sliceRows(int64_t rows, int64_t max_rows, int64_t min_rows)
{
    std::vector<std::pair<int64_t, int64_t>> slices;
    if (max_rows <= 0 || rows <= max_rows) {
        slices.emplace_back(0, rows);
        return slices;
    }
    const int64_t count = (rows + max_rows - 1) / max_rows;
    const int64_t base = rows / count;
    int64_t extra = rows % count;
    int64_t at = 0;
    for (int64_t i = 0; i < count; ++i) {
        int64_t len = base + (extra-- > 0 ? 1 : 0);
        // Keep every slice at least min_rows tall (m >= n requirement).
        if (len < min_rows && !slices.empty()) {
            slices.back().second += len;
        } else {
            slices.emplace_back(at, len);
        }
        at += len;
    }
    return slices;
}

/** Decompose one tall matrix, slicing if requested. */
std::vector<SeMatrix>
decomposeTall(const Tensor &mat, const SeOptions &se_opts,
              int64_t max_slice_rows)
{
    std::vector<SeMatrix> pieces;
    const int64_t rows = mat.dim(0), cols = mat.dim(1);
    for (auto [at, len] : sliceRows(rows, max_slice_rows, cols)) {
        Tensor slice({len, cols});
        for (int64_t i = 0; i < len; ++i)
            for (int64_t j = 0; j < cols; ++j)
                slice.at(i, j) = mat.at(at + i, j);
        pieces.push_back(decomposeMatrix(slice, se_opts));
    }
    return pieces;
}

/** Accumulate piece statistics into a layer report. */
void
accumulate(LayerReport &rep, const std::vector<SeMatrix> &pieces,
           const SeOptions &se_opts)
{
    int64_t rows_total = 0, zero_rows = 0, elems = 0, zero_elems = 0;
    double err_weighted = 0.0;
    for (const auto &p : pieces) {
        const int64_t m = p.ce.dim(0), r = p.ce.dim(1);
        rows_total += m;
        zero_rows += (int64_t)std::llround(p.vectorSparsity() * m);
        elems += m * r;
        zero_elems +=
            (int64_t)std::llround(p.elementSparsity() * m * r);
        rep.ceBits += p.ceStorageBits(se_opts.coefBits);
        rep.basisBits += p.basisStorageBits(se_opts.basisBits);
        err_weighted += p.reconRelError * (double)(m * r);
    }
    rep.pieces = (int)pieces.size();
    rep.vectorSparsity =
        rows_total > 0 ? (double)zero_rows / rows_total : 0.0;
    rep.elementSparsity = elems > 0 ? (double)zero_elems / elems : 0.0;
    rep.reconRelError = elems > 0 ? err_weighted / (double)elems : 0.0;
    rep.decomposed = true;
}

} // namespace

int64_t
CompressionReport::originalBits() const
{
    int64_t t = 0;
    for (const auto &l : layers)
        t += l.originalBits;
    return t;
}

int64_t
CompressionReport::compressedBits() const
{
    int64_t t = 0;
    for (const auto &l : layers) {
        if (l.decomposed)
            t += l.ceBits + l.basisBits;
        else
            t += l.weightCount * 8;  // undecomposed layers kept at 8b
    }
    return t;
}

int64_t
CompressionReport::ceBitsTotal() const
{
    int64_t t = 0;
    for (const auto &l : layers)
        t += l.ceBits;
    return t;
}

int64_t
CompressionReport::basisBitsTotal() const
{
    int64_t t = 0;
    for (const auto &l : layers)
        t += l.basisBits;
    return t;
}

double
CompressionReport::compressionRate() const
{
    const int64_t c = compressedBits();
    return c > 0 ? (double)originalBits() / (double)c : 0.0;
}

double
CompressionReport::overallVectorSparsity() const
{
    double num = 0.0;
    int64_t den = 0;
    for (const auto &l : layers)
        if (l.decomposed) {
            num += l.vectorSparsity * (double)l.weightCount;
            den += l.weightCount;
        }
    return den > 0 ? num / (double)den : 0.0;
}

double
CompressionReport::prunedParamRatio() const
{
    double num = 0.0;
    int64_t den = 0;
    for (const auto &l : layers)
        if (l.decomposed) {
            num += l.elementSparsity * (double)l.weightCount;
            den += l.weightCount;
        }
    return den > 0 ? num / (double)den : 0.0;
}

std::vector<SeMatrix>
decomposeConvWeight(const Tensor &weight, const SeOptions &se_opts,
                    const ApplyOptions &apply_opts)
{
    // weight is (M, Cg, R, S). R == S > 1 assumed by the caller;
    // each filter reshapes to (Cg*R, S).
    const int64_t m = weight.dim(0), cg = weight.dim(1);
    const int64_t r = weight.dim(2), s = weight.dim(3);
    std::vector<SeMatrix> pieces;
    for (int64_t f = 0; f < m; ++f) {
        Tensor mat({cg * r, s});
        for (int64_t c = 0; c < cg; ++c)
            for (int64_t kr = 0; kr < r; ++kr)
                for (int64_t ks = 0; ks < s; ++ks)
                    mat.at(c * r + kr, ks) = weight.at(f, c, kr, ks);
        auto filter_pieces =
            decomposeTall(mat, se_opts, apply_opts.maxSliceRows);
        for (auto &p : filter_pieces)
            pieces.push_back(std::move(p));
    }
    return pieces;
}

std::vector<SeMatrix>
decomposeFcWeight(const Tensor &weight, const SeOptions &se_opts,
                  const ApplyOptions &apply_opts)
{
    // weight is (M, C); each row reshapes to (ceil(C/S) x S), padded.
    const int64_t m = weight.dim(0), c = weight.dim(1);
    const int64_t s = apply_opts.fcGroupSize;
    const int64_t rows = (c + s - 1) / s;
    SE_ASSERT(rows >= s, "FC layer too narrow for group size ", s);
    std::vector<SeMatrix> pieces;
    for (int64_t i = 0; i < m; ++i) {
        Tensor mat({rows, s});
        for (int64_t j = 0; j < c; ++j)
            mat.at(j / s, j % s) = weight.at(i, j);
        auto row_pieces =
            decomposeTall(mat, se_opts, apply_opts.maxSliceRows);
        for (auto &p : row_pieces)
            pieces.push_back(std::move(p));
    }
    return pieces;
}

namespace {

/**
 * Append one unit per slice of the reshaped matrix `mat` (the per-
 * filter conv view or per-row FC view of `owner`).
 */
void
planUnits(CompressionPlan &plan, Tensor mat, size_t layer_index,
          int64_t owner, int64_t max_slice_rows)
{
    const int64_t rows = mat.dim(0), cols = mat.dim(1);
    for (auto [at, len] : sliceRows(rows, max_slice_rows, cols)) {
        DecompUnit u;
        u.layerIndex = layer_index;
        u.filter = owner;
        u.rowOffset = at;
        if (at == 0 && len == rows) {
            u.matrix = std::move(mat);
            plan.units.push_back(std::move(u));
            return;  // single-slice fast path
        }
        Tensor slice({len, cols});
        for (int64_t i = 0; i < len; ++i)
            for (int64_t j = 0; j < cols; ++j)
                slice.at(i, j) = mat.at(at + i, j);
        u.matrix = std::move(slice);
        plan.units.push_back(std::move(u));
    }
}

/** The per-filter conv reshape: (Cg*R, S) from filter f of (M,Cg,R,S). */
Tensor
convFilterMatrix(const Tensor &w, int64_t f)
{
    const int64_t cg = w.dim(1), r = w.dim(2), s = w.dim(3);
    Tensor mat({cg * r, s});
    for (int64_t c = 0; c < cg; ++c)
        for (int64_t kr = 0; kr < r; ++kr)
            for (int64_t ks = 0; ks < s; ++ks)
                mat.at(c * r + kr, ks) = w.at(f, c, kr, ks);
    return mat;
}

/** The per-row FC reshape: (ceil(C/S), S) from row f, zero padded. */
Tensor
fcRowMatrix(const Tensor &w, int64_t f, int64_t row_length, int64_t s)
{
    const int64_t rows = (row_length + s - 1) / s;
    Tensor mat({rows, s});
    for (int64_t j = 0; j < row_length; ++j)
        mat.at(j / s, j % s) = w[f * row_length + j];
    return mat;
}

} // namespace

CompressionPlan
planCompression(nn::Sequential &net, const SeOptions &se_opts,
                const ApplyOptions &apply_opts)
{
    (void)se_opts;  // eligibility depends only on the apply options
    // Flatten the leaf layers in execution order so conv->BN pairs can
    // be detected for channel pruning.
    std::vector<nn::Layer *> leaves;
    net.visit([&](nn::Layer &l) { leaves.push_back(&l); });

    // Channel-wise pruning (applied once, before decomposition).
    if (apply_opts.channelGammaThreshold > 0.0) {
        for (size_t i = 0; i + 1 < leaves.size(); ++i) {
            auto *conv = dynamic_cast<nn::Conv2d *>(leaves[i]);
            auto *bn = dynamic_cast<nn::BatchNorm2d *>(leaves[i + 1]);
            if (!conv || !bn)
                continue;
            Tensor &gamma = bn->gammaTensor();
            Tensor &w = conv->weightTensor();
            const int64_t per_filter = w.size() / w.dim(0);
            for (int64_t ch = 0; ch < gamma.size(); ++ch) {
                if (std::abs(gamma[ch]) >=
                    apply_opts.channelGammaThreshold)
                    continue;
                gamma[ch] = 0.0f;
                bn->betaTensor()[ch] = 0.0f;
                for (int64_t k = 0; k < per_filter; ++k)
                    w[ch * per_filter + k] = 0.0f;
            }
        }
    }

    CompressionPlan plan;
    int layer_idx = 0;
    for (nn::Layer *l : leaves) {
        PlannedLayer pl;
        LayerReport &rep = pl.report;
        if (auto *conv = dynamic_cast<nn::Conv2d *>(l)) {
            Tensor &w = conv->weightTensor();
            rep.name = "conv" + std::to_string(layer_idx++) + "_" +
                       std::to_string(conv->kernelSize()) + "x" +
                       std::to_string(conv->kernelSize());
            rep.weightCount = w.size();
            rep.originalBits = w.size() * 32;

            // Channel sparsity after gamma pruning.
            const int64_t per_filter = w.size() / w.dim(0);
            int64_t dead = 0;
            for (int64_t f = 0; f < w.dim(0); ++f) {
                bool all_zero = true;
                for (int64_t k = 0; k < per_filter && all_zero; ++k)
                    all_zero = w[f * per_filter + k] == 0.0f;
                dead += all_zero;
            }
            rep.channelSparsity = (double)dead / (double)w.dim(0);

            if (w.size() < apply_opts.minWeightsToDecompose) {
                plan.layers.push_back(std::move(pl));
                continue;
            }
            if (conv->kernelSize() > 1) {
                pl.weight = &w;
                pl.convKxK = true;
                pl.kernelR = w.dim(2);
                pl.kernelS = w.dim(3);
                const size_t li = plan.layers.size();
                for (int64_t f = 0; f < w.dim(0); ++f)
                    planUnits(plan, convFilterMatrix(w, f), li, f,
                              apply_opts.maxSliceRows);
            } else if ((w.dim(1) + apply_opts.fcGroupSize - 1) /
                           apply_opts.fcGroupSize <
                       apply_opts.fcGroupSize) {
                // 1x1 conv too narrow for the FC reshape rule (would
                // produce a wide matrix): leave it dense.
                plan.layers.push_back(std::move(pl));
                continue;
            } else {
                // 1x1 conv: FC rule on the (M, C) view.
                pl.weight = &w;
                pl.kernelS = apply_opts.fcGroupSize;
                pl.rowLength = w.dim(1);
                const size_t li = plan.layers.size();
                for (int64_t f = 0; f < w.dim(0); ++f)
                    planUnits(plan,
                              fcRowMatrix(w, f, pl.rowLength,
                                          pl.kernelS),
                              li, f, apply_opts.maxSliceRows);
            }
            plan.layers.push_back(std::move(pl));
        } else if (auto *lin = dynamic_cast<nn::Linear *>(l)) {
            Tensor &w = lin->weightTensor();
            rep.name = "fc" + std::to_string(layer_idx++);
            rep.weightCount = w.size();
            rep.originalBits = w.size() * 32;
            const int64_t s = apply_opts.fcGroupSize;
            const int64_t rows = (w.dim(1) + s - 1) / s;
            if (w.size() < apply_opts.minWeightsToDecompose ||
                rows < s) {
                plan.layers.push_back(std::move(pl));
                continue;
            }
            pl.weight = &w;
            pl.kernelS = s;
            pl.rowLength = w.dim(1);
            const size_t li = plan.layers.size();
            for (int64_t f = 0; f < w.dim(0); ++f)
                planUnits(plan, fcRowMatrix(w, f, pl.rowLength, s), li,
                          f, apply_opts.maxSliceRows);
            plan.layers.push_back(std::move(pl));
        }
    }
    return plan;
}

CompressionReport
finishCompression(const CompressionPlan &plan,
                  std::vector<SeMatrix> results, const SeOptions &se_opts)
{
    SE_ASSERT(results.size() == plan.units.size(),
              "decomposition result count mismatch: ", results.size(),
              " vs ", plan.units.size());

    // Write every piece back into its slice of the owning weight.
    // Slices are disjoint, so order does not matter.
    for (size_t ui = 0; ui < plan.units.size(); ++ui) {
        const DecompUnit &u = plan.units[ui];
        const PlannedLayer &pl = plan.layers[u.layerIndex];
        SE_ASSERT(pl.weight, "unit for an undecomposed layer");
        Tensor &w = *pl.weight;
        Tensor recon = results[ui].reconstruct();
        if (pl.convKxK) {
            const int64_t r = pl.kernelR, s = pl.kernelS;
            for (int64_t i = 0; i < recon.dim(0); ++i) {
                const int64_t g = u.rowOffset + i;
                for (int64_t ks = 0; ks < s; ++ks)
                    w.at(u.filter, g / r, g % r, ks) = recon.at(i, ks);
            }
        } else {
            // FC rule (Linear or 1x1 conv): both store row f
            // contiguously at flat offset f * rowLength.
            const int64_t s = pl.kernelS, c = pl.rowLength;
            for (int64_t i = 0; i < recon.dim(0); ++i) {
                const int64_t g = u.rowOffset + i;
                for (int64_t k = 0; k < s; ++k) {
                    const int64_t j = g * s + k;
                    if (j < c)
                        w[u.filter * c + j] = recon.at(i, k);
                }
            }
        }
    }

    // Assemble the report: units are grouped by layer in plan order.
    CompressionReport report;
    report.layers.reserve(plan.layers.size());
    size_t ui = 0;
    for (size_t li = 0; li < plan.layers.size(); ++li) {
        LayerReport rep = plan.layers[li].report;
        std::vector<SeMatrix> pieces;
        while (ui < plan.units.size() &&
               plan.units[ui].layerIndex == li)
            pieces.push_back(std::move(results[ui++]));
        if (!pieces.empty())
            accumulate(rep, pieces, se_opts);
        report.layers.push_back(std::move(rep));
    }
    SE_ASSERT(ui == plan.units.size(), "unit bookkeeping error");
    return report;
}

CompressionReport
applySmartExchange(nn::Sequential &net, const SeOptions &se_opts,
                   const ApplyOptions &apply_opts)
{
    CompressionPlan plan = planCompression(net, se_opts, apply_opts);
    std::vector<SeMatrix> results;
    results.reserve(plan.units.size());
    for (const DecompUnit &u : plan.units)
        results.push_back(decomposeMatrix(u.matrix, se_opts));
    return finishCompression(plan, std::move(results), se_opts);
}

} // namespace core
} // namespace se
