#include "core/smart_exchange.hh"

#include <algorithm>
#include <cmath>

#include "linalg/linalg.hh"

namespace se {
namespace core {

namespace {

/**
 * Normalize each column of ce to unit L2 norm, scaling the matching row
 * of basis so the product Ce * B is unchanged. Zero columns are left
 * alone.
 */
void
normalizeColumns(Tensor &ce, Tensor &basis)
{
    const int64_t m = ce.dim(0), r = ce.dim(1), n = basis.dim(1);
    for (int64_t j = 0; j < r; ++j) {
        double norm = 0.0;
        for (int64_t i = 0; i < m; ++i)
            norm += (double)ce.at(i, j) * ce.at(i, j);
        norm = std::sqrt(norm);
        if (norm < 1e-12)
            continue;
        for (int64_t i = 0; i < m; ++i)
            ce.at(i, j) = (float)(ce.at(i, j) / norm);
        for (int64_t k = 0; k < n; ++k)
            basis.at(j, k) = (float)(basis.at(j, k) * norm);
    }
}

/**
 * Zero rows of ce whose max |element| is below theta; also honour a
 * minimum vector-sparsity floor by pruning the smallest-norm rows.
 * At least `min_keep` rows (the basis rank) always survive so no
 * filter is zeroed outright — the paper's per-layer manual Sc control
 * implies the same safeguard. Returns the row mask (1 = kept).
 */
std::vector<bool>
sparsifyRows(Tensor &ce, double theta, double min_vector_sparsity,
             int64_t min_keep)
{
    const int64_t m = ce.dim(0), r = ce.dim(1);
    std::vector<double> row_mag((size_t)m, 0.0);
    for (int64_t i = 0; i < m; ++i) {
        double mx = 0.0;
        for (int64_t j = 0; j < r; ++j)
            mx = std::max(mx, (double)std::abs(ce.at(i, j)));
        row_mag[(size_t)i] = mx;
    }

    std::vector<bool> keep((size_t)m, true);
    int64_t zeroed = 0;
    for (int64_t i = 0; i < m; ++i)
        if (row_mag[(size_t)i] < theta) {
            keep[(size_t)i] = false;
            ++zeroed;
        }

    // Enforce the sparsity floor by dropping the weakest extra rows,
    // but never below min_keep survivors.
    const int64_t want = std::min(
        (int64_t)std::ceil(min_vector_sparsity * m),
        std::max<int64_t>(0, m - min_keep));
    if (zeroed < want) {
        std::vector<int64_t> order;
        for (int64_t i = 0; i < m; ++i)
            if (keep[(size_t)i])
                order.push_back(i);
        std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
            return row_mag[(size_t)a] < row_mag[(size_t)b];
        });
        for (int64_t k = 0; k < want - zeroed &&
                            k < (int64_t)order.size(); ++k)
            keep[(size_t)order[(size_t)k]] = false;
    } else if (zeroed > m - min_keep) {
        // Threshold pruning went too far: resurrect the strongest
        // pruned rows (their values return on the next Ce refit).
        std::vector<int64_t> order;
        for (int64_t i = 0; i < m; ++i)
            if (!keep[(size_t)i])
                order.push_back(i);
        std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
            return row_mag[(size_t)a] > row_mag[(size_t)b];
        });
        for (int64_t k = 0; k < zeroed - (m - min_keep) &&
                            k < (int64_t)order.size(); ++k)
            keep[(size_t)order[(size_t)k]] = true;
    }

    for (int64_t i = 0; i < m; ++i)
        if (!keep[(size_t)i])
            for (int64_t j = 0; j < r; ++j)
                ce.at(i, j) = 0.0f;
    return keep;
}

double
rowVectorSparsity(const Tensor &ce)
{
    const int64_t m = ce.dim(0), r = ce.dim(1);
    int64_t zero_rows = 0;
    for (int64_t i = 0; i < m; ++i) {
        bool all_zero = true;
        for (int64_t j = 0; j < r; ++j)
            if (ce.at(i, j) != 0.0f) {
                all_zero = false;
                break;
            }
        zero_rows += all_zero;
    }
    return m > 0 ? (double)zero_rows / (double)m : 0.0;
}

} // namespace

Tensor
SeMatrix::reconstruct() const
{
    return linalg::matmul(ce, basis);
}

double
SeMatrix::vectorSparsity() const
{
    return rowVectorSparsity(ce);
}

double
SeMatrix::elementSparsity() const
{
    int64_t zeros = 0;
    for (int64_t i = 0; i < ce.size(); ++i)
        zeros += ce[i] == 0.0f;
    return ce.size() > 0 ? (double)zeros / (double)ce.size() : 0.0;
}

int64_t
SeMatrix::ceStorageBits(int coef_bits) const
{
    // 1-bit direct vector index per row; non-zero rows stored dense.
    const int64_t m = ce.dim(0), r = ce.dim(1);
    const int64_t nonzero_rows =
        m - (int64_t)std::llround(vectorSparsity() * (double)m);
    return m /* index bits */ + nonzero_rows * r * coef_bits;
}

int64_t
SeMatrix::basisStorageBits(int basis_bits) const
{
    return basis.dim(0) * basis.dim(1) * basis_bits;
}

SeMatrix
decomposeMatrix(const Tensor &w, const SeOptions &opts, SeTrace *trace)
{
    SE_ASSERT(w.ndim() == 2, "decomposeMatrix needs a 2-D weight");
    const int64_t m = w.dim(0), n = w.dim(1);
    SE_ASSERT(n <= m, "expected tall matrix (m >= n); got ", m, "x", n);

    const double w_norm = std::max(linalg::frobNorm(w), 1e-30);

    SeMatrix out;
    // Paper initialization: Ce = W, B = I (r = n).
    out.ce = w;
    out.basis = eye(n);
    const Tensor identity = eye(n);
    const double id_norm = linalg::frobNorm(identity);

    std::vector<bool> keep((size_t)m, true);
    auto record = [&]() {
        if (!trace)
            return;
        trace->reconError.push_back(
            linalg::frobDiff(w, linalg::matmul(out.ce, out.basis)) /
            w_norm);
        trace->vectorSparsity.push_back(rowVectorSparsity(out.ce));
        trace->basisDrift.push_back(
            linalg::frobDiff(out.basis, identity) / id_norm);
    };

    out.iterations = 0;
    for (int iter = 0; iter < opts.maxIterations; ++iter) {
        ++out.iterations;
        // Step 1: normalize columns, choose Omega_P, quantize Ce.
        normalizeColumns(out.ce, out.basis);
        out.alphabet = quant::choosePow2Alphabet(out.ce, opts.coefBits);
        const double delta =
            quant::pow2Distance(out.ce, out.alphabet) / (double)(m * n);
        out.ce = quant::projectPow2(out.ce, out.alphabet);

        // Step 2: fit B to the quantized Ce. The trace records this
        // state — quantized coefficients with a fitted basis — which
        // is the solution quality Fig. 9 plots.
        out.basis = linalg::fitBasis(w, out.ce, opts.ridge);
        record();

        // ... then refit Ce freely for the next round.
        out.ce = linalg::fitCoefficients(w, out.basis, opts.ridge);

        // Step 3: vector-wise sparsification (monotone: once a row is
        // pruned it stays pruned, mirroring the hard-threshold
        // practice in the paper).
        for (int64_t i = 0; i < m; ++i)
            if (!keep[(size_t)i])
                for (int64_t j = 0; j < n; ++j)
                    out.ce.at(i, j) = 0.0f;
        auto mask = sparsifyRows(out.ce, opts.vectorThreshold,
                                 opts.minVectorSparsity, n);
        for (int64_t i = 0; i < m; ++i)
            keep[(size_t)i] = keep[(size_t)i] && mask[(size_t)i];

        if (delta < opts.tol)
            break;
    }

    // Optional support-restricted refinement before concluding.
    if (opts.refineOnSupport) {
        Tensor mask({m, n});
        for (int64_t i = 0; i < m; ++i)
            for (int64_t j = 0; j < n; ++j)
                mask.at(i, j) = keep[(size_t)i] ? 1.0f : 0.0f;
        out.ce = linalg::fitCoefficientsMasked(w, out.basis, mask,
                                               opts.ridge);
    }

    // Conclusion: re-quantize Ce and re-fit B on the final support.
    normalizeColumns(out.ce, out.basis);
    out.alphabet = quant::choosePow2Alphabet(out.ce, opts.coefBits);
    out.ce = quant::projectPow2(out.ce, out.alphabet);
    out.basis = linalg::fitBasis(w, out.ce, opts.ridge);
    record();

    out.reconRelError =
        linalg::frobDiff(w, linalg::matmul(out.ce, out.basis)) / w_norm;
    return out;
}

} // namespace core
} // namespace se
