#include "core/trainer.hh"

#include "base/logging.hh"

namespace se {
namespace core {

double
trainClassifier(nn::Sequential &net, const data::ClassificationTask &task,
                const TrainConfig &cfg)
{
    nn::Sgd opt(cfg.lr, cfg.momentum, cfg.weightDecay);
    for (int e = 0; e < cfg.epochs; ++e) {
        double loss_sum = 0.0;
        for (size_t b = 0; b < task.train.batches.size(); ++b) {
            Tensor logits =
                net.forward(task.train.batches[b], /*train=*/true);
            auto res =
                nn::softmaxCrossEntropy(logits, task.train.labels[b]);
            loss_sum += res.loss;
            net.backward(res.grad);
            opt.step(net.params());
        }
        if (cfg.verbose)
            SE_INFORM("epoch ", e, " loss ",
                      loss_sum / (double)task.train.batches.size());
    }
    return evaluate(net, task.test);
}

double
evaluate(nn::Sequential &net, const data::ClassificationSet &set)
{
    double acc = 0.0;
    for (size_t b = 0; b < set.batches.size(); ++b) {
        Tensor logits = net.forward(set.batches[b], /*train=*/false);
        acc += nn::accuracy(logits, set.labels[b]);
    }
    return set.batches.empty() ? 0.0 : acc / (double)set.batches.size();
}

double
trainSegmenter(nn::Sequential &net, const data::SegmentationTask &task,
               const TrainConfig &cfg)
{
    nn::Sgd opt(cfg.lr, cfg.momentum, cfg.weightDecay);
    for (int e = 0; e < cfg.epochs; ++e) {
        for (size_t b = 0; b < task.train.images.size(); ++b) {
            Tensor logits =
                net.forward(task.train.images[b], /*train=*/true);
            auto res =
                nn::pixelCrossEntropy(logits, task.train.labels[b]);
            net.backward(res.grad);
            opt.step(net.params());
        }
    }
    return evaluateSegmenter(net, task.test);
}

double
evaluateSegmenter(nn::Sequential &net, const data::SegmentationSet &set)
{
    double miou = 0.0;
    for (size_t b = 0; b < set.images.size(); ++b) {
        Tensor logits = net.forward(set.images[b], /*train=*/false);
        miou += nn::meanIoU(logits, set.labels[b], set.numClasses);
    }
    return set.images.empty() ? 0.0 : miou / (double)set.images.size();
}

SeRetrainResult
retrainWithSmartExchange(nn::Sequential &net,
                         const data::ClassificationTask &task,
                         const SeOptions &se_opts,
                         const ApplyOptions &apply_opts,
                         const SeRetrainConfig &cfg)
{
    SeRetrainResult out;
    out.accBaseline = evaluate(net, task.test);

    auto apply = [&](nn::Sequential &n) {
        return cfg.applyFn ? cfg.applyFn(n, se_opts, apply_opts)
                           : applySmartExchange(n, se_opts, apply_opts);
    };

    out.report = apply(net);
    out.accPostProcess = evaluate(net, task.test);

    // Alternate: one epoch of SGD (which breaks the Ce structure),
    // then re-apply SmartExchange (which restores it).
    for (int r = 0; r < cfg.rounds; ++r) {
        trainClassifier(net, task, cfg.perRound);
        out.report = apply(net);
    }
    out.accRetrained = evaluate(net, task.test);
    return out;
}

} // namespace core
} // namespace se
