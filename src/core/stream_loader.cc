#include "core/stream_loader.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "base/failpoint.hh"
#include "base/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#define SE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SE_HAVE_MMAP 0
#endif

namespace se {
namespace core {

namespace {

std::string
readWholeFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.good())
        throw ModelFileError("cannot open " + path + " for reading");
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

} // namespace

StreamedModel::StreamedModel(const std::string &path,
                             StreamLoaderOptions opts)
    : path_(path)
{
    SE_FAILPOINT_THROW("stream_open", ModelFileError);
#if SE_HAVE_MMAP
    if (!opts.forceRead) {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            throw ModelFileError("cannot open " + path +
                                 " for reading");
        struct stat st;
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            throw ModelFileError("cannot stat " + path);
        }
        mapLen_ = (size_t)st.st_size;
        // mmap refuses empty files; an empty bundle is invalid
        // anyway, so route it through the parser for the real error.
        map_ = mapLen_ ? ::mmap(nullptr, mapLen_, PROT_READ,
                                MAP_PRIVATE, fd, 0)
                       : MAP_FAILED;
        ::close(fd);
        mapped_ = map_ != MAP_FAILED;
        if (!mapped_) {
            map_ = nullptr;
            buffer_ = readWholeFile(path);
        }
    } else {
        buffer_ = readWholeFile(path);
    }
#else
    (void)opts.forceRead;
    buffer_ = readWholeFile(path);
#endif

    try {
        const size_t size = mapped_ ? mapLen_ : buffer_.size();
        meta_ = modelv4::parseMeta(filePtr(), size);
    } catch (...) {
#if SE_HAVE_MMAP
        if (mapped_)
            ::munmap(map_, mapLen_);
#endif
        throw;
    }
    cache_.resize(meta_.directory.size());

    if (opts.eager) {
        // Full validation, matching loadModelBundle: padding bytes
        // between pieces must be zero, and every piece must decode.
        const uint8_t *file = filePtr();
        uint64_t expect = modelv4::kHeaderBytes + meta_.metaBytes;
        for (const auto &e : meta_.directory) {
            for (uint64_t b = expect; b < e.offset; ++b)
                if (file[b] != 0)
                    throw ModelFileError(
                        "non-zero padding byte at offset " +
                        std::to_string(b));
            expect = e.offset + e.length;
        }
        records();
    }
}

StreamedModel::~StreamedModel()
{
#if SE_HAVE_MMAP
    if (mapped_)
        ::munmap(map_, mapLen_);
#endif
}

const uint8_t *
StreamedModel::filePtr() const
{
    return mapped_ ? (const uint8_t *)map_
                   : (const uint8_t *)buffer_.data();
}

const SeMatrix &
StreamedModel::pieceLocked(size_t index) const
{
    SE_ASSERT(index < cache_.size(), "piece index out of range");
    if (!cache_[index]) {
        if (failpoint::evaluate("stream_piece_decode"))
            throw ModelFileError(
                std::string(failpoint::kInjectedPrefix) +
                " 'stream_piece_decode': piece " +
                std::to_string(index));
        cache_[index].reset(
            new SeMatrix(modelv4::decodePiece(filePtr(), meta_, index)));
        decoded_.fetch_add(1, std::memory_order_relaxed);
    }
    return *cache_[index];
}

const SeMatrix &
StreamedModel::piece(size_t index) const
{
    base::LockGuard lk(mu_);
    return pieceLocked(index);
}

size_t
StreamedModel::prefetch(size_t first, size_t count) const
{
    base::LockGuard lk(mu_);
    if (first >= cache_.size() || count == 0)
        return 0;
    // Clamp instead of comparing against first + count: the sum can
    // wrap around size_t, and a wrapped bound used to make huge
    // prefetch requests silently fetch nothing.
    count = std::min(count, cache_.size() - first);
    size_t fresh = 0;
    for (size_t i = first; i < first + count; ++i) {
        if (!cache_[i]) {
            try {
                pieceLocked(i);
            } catch (const ModelFileError &e) {
                throw ModelFileError("prefetch: piece " +
                                     std::to_string(i) + ": " +
                                     e.what());
            } catch (const std::exception &e) {
                throw ModelFileError("prefetch: piece " +
                                     std::to_string(i) + ": " +
                                     e.what());
            }
            ++fresh;
        }
    }
    return fresh;
}

std::shared_ptr<const std::vector<SeLayerRecord>>
StreamedModel::records() const
{
    base::LockGuard lk(mu_);
    if (records_)
        return records_;
    auto out = std::make_shared<std::vector<SeLayerRecord>>();
    out->resize(meta_.recordNames.size());
    size_t flat = 0;
    for (size_t ri = 0; ri < meta_.recordNames.size(); ++ri) {
        SeLayerRecord &rec = (*out)[ri];
        rec.name = meta_.recordNames[ri];
        rec.pieces.reserve(meta_.pieceCounts[ri]);
        for (uint32_t k = 0; k < meta_.pieceCounts[ri]; ++k) {
            try {
                rec.pieces.push_back(pieceLocked(flat++));
            } catch (const ModelFileError &e) {
                throw ModelFileError("record '" + rec.name + "': " +
                                     e.what());
            }
        }
    }
    records_ = std::move(out);
    return records_;
}

ModelBundle
StreamedModel::bundle() const
{
    ModelBundle b;
    b.records = *records();
    b.dense = meta_.dense;
    return b;
}

} // namespace core
} // namespace se
