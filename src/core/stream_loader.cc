#include "core/stream_loader.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "base/clock.hh"
#include "base/failpoint.hh"
#include "base/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#define SE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SE_HAVE_MMAP 0
#endif

namespace se {
namespace core {

namespace {

std::string
readWholeFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.good())
        throw ModelFileError("cannot open " + path + " for reading");
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

} // namespace

StreamedModel::StreamedModel(const std::string &path,
                             StreamLoaderOptions opts)
    : path_(path)
{
    SE_FAILPOINT_THROW("stream_open", ModelFileError);
#if SE_HAVE_MMAP
    if (!opts.forceRead) {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            throw ModelFileError("cannot open " + path +
                                 " for reading");
        struct stat st;
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            throw ModelFileError("cannot stat " + path);
        }
        mapLen_ = (size_t)st.st_size;
        // mmap refuses empty files; an empty bundle is invalid
        // anyway, so route it through the parser for the real error.
        map_ = mapLen_ ? ::mmap(nullptr, mapLen_, PROT_READ,
                                MAP_PRIVATE, fd, 0)
                       : MAP_FAILED;
        ::close(fd);
        mapped_ = map_ != MAP_FAILED;
        if (!mapped_) {
            map_ = nullptr;
            buffer_ = readWholeFile(path);
        }
    } else {
        buffer_ = readWholeFile(path);
    }
#else
    (void)opts.forceRead;
    buffer_ = readWholeFile(path);
#endif

    try {
        const size_t size = mapped_ ? mapLen_ : buffer_.size();
        meta_ = modelv4::parseMeta(filePtr(), size);
    } catch (...) {
#if SE_HAVE_MMAP
        if (mapped_)
            ::munmap(map_, mapLen_);
#endif
        throw;
    }
    cache_.resize(meta_.directory.size());
    state_.assign(meta_.directory.size(), PieceState::Cold);
    laneFilled_.assign(meta_.directory.size(), 0);

    prefetchDepth_ = opts.prefetchDepth;
    if (prefetchDepth_ > 0 && !meta_.directory.empty()) {
        prefetcher_ = std::make_unique<ThreadPool>(1);
        // Warm the head of the bundle: the first consumer touch then
        // has a chance to be a hit instead of paying the first decode.
        base::LockGuard lk(mu_);
        schedulePrefetchLocked(0);
    }

    if (opts.eager) {
        // Full validation, matching loadModelBundle: padding bytes
        // between pieces must be zero, and every piece must decode.
        const uint8_t *file = filePtr();
        uint64_t expect = modelv4::kHeaderBytes + meta_.metaBytes;
        for (const auto &e : meta_.directory) {
            for (uint64_t b = expect; b < e.offset; ++b)
                if (file[b] != 0)
                    throw ModelFileError(
                        "non-zero padding byte at offset " +
                        std::to_string(b));
            expect = e.offset + e.length;
        }
        records();
    }
}

StreamedModel::~StreamedModel()
{
    // Stop the lane before anything it reads (the mapping, the meta,
    // the state vectors) goes away. ~ThreadPool drains already-queued
    // tasks, so every member they touch must still be alive here.
    prefetcher_.reset();
#if SE_HAVE_MMAP
    if (mapped_)
        ::munmap(map_, mapLen_);
#endif
}

const uint8_t *
StreamedModel::filePtr() const
{
    return mapped_ ? (const uint8_t *)map_
                   : (const uint8_t *)buffer_.data();
}

void
StreamedModel::schedulePrefetchLocked(size_t first) const
{
    if (!prefetcher_)
        return;
    const size_t last =
        std::min(cache_.size(), first + prefetchDepth_);
    for (size_t i = first; i < last; ++i) {
        if (state_[i] != PieceState::Cold)
            continue;
        state_[i] = PieceState::Queued;
        ++laneOutstanding_;
        ++sstats_.prefetchScheduled;
        prefetcher_->submit([this, i] { prefetchTask(i); });
    }
}

void
StreamedModel::prefetchTask(size_t index) const
{
    base::LockGuard lk(mu_);
    if (state_[index] != PieceState::Queued) {
        // A consumer beat the lane to it (claimed or already Ready).
        --laneOutstanding_;
        cv_.notifyAll();
        return;
    }
    state_[index] = PieceState::Decoding;
    lk.unlock();

    // The decode reads only the immutable mapping and parsed meta, so
    // it runs off-lock — this is the overlap the lane exists for.
    // Failures (real or injected via `stream_prefetch`) are swallowed:
    // the piece reverts to Cold and the first consumer touch retries
    // inline, where a real corruption reports with full context. The
    // consumer-path `stream_piece_decode` failpoint is deliberately
    // NOT evaluated here so its firing schedule ignores lookahead.
    std::unique_ptr<SeMatrix> m;
    if (!failpoint::evaluate("stream_prefetch")) {
        try {
            m.reset(new SeMatrix(
                modelv4::decodePiece(filePtr(), meta_, index)));
        } catch (...) {
            m.reset();
        }
    }

    lk.lock();
    if (m) {
        cache_[index] = std::move(m);
        state_[index] = PieceState::Ready;
        laneFilled_[index] = 1;
        decoded_.fetch_add(1, std::memory_order_relaxed);
    } else {
        state_[index] = PieceState::Cold;
        ++sstats_.prefetchErrors;
    }
    --laneOutstanding_;
    cv_.notifyAll();
}

const SeMatrix &
StreamedModel::fetchPiece(size_t index, bool *freshly) const
{
    SE_ASSERT(index < cache_.size(), "piece index out of range");
    if (freshly)
        *freshly = false;
    base::LockGuard lk(mu_);
    for (;;) {
        switch (state_[index]) {
        case PieceState::Ready:
            if (laneFilled_[index]) {
                laneFilled_[index] = 0;
                ++sstats_.prefetchHits;
            }
            schedulePrefetchLocked(index + 1);
            return *cache_[index];

        case PieceState::Decoding: {
            // The lane (or another consumer) has it in flight; the
            // wait is decode-stall, but not a miss — the work itself
            // ran overlapped.
            const auto t0 = SteadyClock::now();
            while (state_[index] == PieceState::Decoding)
                cv_.wait(lk);
            sstats_.decodeStallMs += msSince(t0);
            continue;  // Ready, or Cold if the decode was dropped
        }

        case PieceState::Queued:
        case PieceState::Cold: {
            // Claim it and decode inline (the lane skips a claimed
            // piece). Everything below the unlock touches only the
            // immutable mapping.
            state_[index] = PieceState::Decoding;
            lk.unlock();
            std::unique_ptr<SeMatrix> m;
            const auto t0 = SteadyClock::now();
            try {
                if (failpoint::evaluate("stream_piece_decode"))
                    throw ModelFileError(
                        std::string(failpoint::kInjectedPrefix) +
                        " 'stream_piece_decode': piece " +
                        std::to_string(index));
                m.reset(new SeMatrix(
                    modelv4::decodePiece(filePtr(), meta_, index)));
            } catch (...) {
                lk.lock();
                state_[index] = PieceState::Cold;
                cv_.notifyAll();
                throw;
            }
            const double ms = msSince(t0);
            lk.lock();
            cache_[index] = std::move(m);
            state_[index] = PieceState::Ready;
            laneFilled_[index] = 0;
            sstats_.decodeStallMs += ms;
            ++sstats_.prefetchMisses;
            decoded_.fetch_add(1, std::memory_order_relaxed);
            cv_.notifyAll();
            if (freshly)
                *freshly = true;
            schedulePrefetchLocked(index + 1);
            return *cache_[index];
        }
        }
    }
}

const SeMatrix &
StreamedModel::piece(size_t index) const
{
    return fetchPiece(index);
}

size_t
StreamedModel::prefetch(size_t first, size_t count) const
{
    if (first >= cache_.size() || count == 0)
        return 0;
    // Clamp instead of comparing against first + count: the sum can
    // wrap around size_t, and a wrapped bound used to make huge
    // prefetch requests silently fetch nothing.
    count = std::min(count, cache_.size() - first);
    size_t fresh = 0;
    for (size_t i = first; i < first + count; ++i) {
        bool mine = false;
        try {
            fetchPiece(i, &mine);
        } catch (const ModelFileError &e) {
            throw ModelFileError("prefetch: piece " +
                                 std::to_string(i) + ": " + e.what());
        } catch (const std::exception &e) {
            throw ModelFileError("prefetch: piece " +
                                 std::to_string(i) + ": " + e.what());
        }
        if (mine)
            ++fresh;
    }
    return fresh;
}

std::shared_ptr<const std::vector<SeLayerRecord>>
StreamedModel::records() const
{
    {
        base::LockGuard lk(mu_);
        if (records_)
            return records_;
    }
    // Decode everything through the piece state machine so the lane
    // (when enabled) splits the cold bind with this thread; the lock
    // is NOT held across decodes.
    size_t flat = 0;
    for (size_t ri = 0; ri < meta_.recordNames.size(); ++ri) {
        for (uint32_t k = 0; k < meta_.pieceCounts[ri]; ++k) {
            try {
                fetchPiece(flat++);
            } catch (const ModelFileError &e) {
                throw ModelFileError("record '" +
                                     meta_.recordNames[ri] + "': " +
                                     e.what());
            }
        }
    }

    base::LockGuard lk(mu_);
    if (records_)  // another thread assembled while we decoded
        return records_;
    auto out = std::make_shared<std::vector<SeLayerRecord>>();
    out->resize(meta_.recordNames.size());
    flat = 0;
    for (size_t ri = 0; ri < meta_.recordNames.size(); ++ri) {
        SeLayerRecord &rec = (*out)[ri];
        rec.name = meta_.recordNames[ri];
        rec.pieces.reserve(meta_.pieceCounts[ri]);
        for (uint32_t k = 0; k < meta_.pieceCounts[ri]; ++k)
            rec.pieces.push_back(*cache_[flat++]);
    }
    records_ = std::move(out);
    return records_;
}

ModelBundle
StreamedModel::bundle() const
{
    ModelBundle b;
    b.records = *records();
    b.dense = meta_.dense;
    return b;
}

StreamStats
StreamedModel::streamStats() const
{
    base::LockGuard lk(mu_);
    return sstats_;
}

void
StreamedModel::drainPrefetch() const
{
    base::LockGuard lk(mu_);
    while (laneOutstanding_ != 0)
        cv_.wait(lk);
}

} // namespace core
} // namespace se
