/**
 * @file
 * Applying the SmartExchange algorithm to whole networks
 * (Section III-C): layer reshaping rules, channel-wise BN-gamma
 * pruning, in-place weight replacement with the Ce*B reconstruction,
 * and the storage accounting behind the paper's CR / Param / B / Ce /
 * Spar. columns (Tables II and III).
 */

#ifndef SE_CORE_APPLY_HH
#define SE_CORE_APPLY_HH

#include <string>
#include <vector>

#include "core/smart_exchange.hh"
#include "nn/blocks.hh"

namespace se {
namespace core {

/** Network-level application knobs. */
struct ApplyOptions
{
    /** S used when reshaping FC rows into (C/S x S) matrices. */
    int64_t fcGroupSize = 4;
    /**
     * Slice reshaped matrices taller than this along the first
     * dimension (the paper's imbalanced-dimension mitigation);
     * 0 disables slicing.
     */
    int64_t maxSliceRows = 0;
    /**
     * Channel-wise pruning: zero conv output channels whose following
     * BN gamma magnitude is below this (0 disables). Applied once, as
     * in the paper.
     */
    double channelGammaThreshold = 0.0;
    /** Skip layers with fewer weights than this (tiny layers). */
    int64_t minWeightsToDecompose = 16;
};

/** Per-layer compression outcome. */
struct LayerReport
{
    std::string name;
    int64_t weightCount = 0;
    int64_t originalBits = 0;  ///< FP32 storage of the dense weights
    int64_t ceBits = 0;        ///< non-zero Ce rows + 1-bit row index
    int64_t basisBits = 0;
    double vectorSparsity = 0.0;
    double elementSparsity = 0.0;
    double channelSparsity = 0.0;
    double reconRelError = 0.0;
    bool decomposed = false;
    int pieces = 0;            ///< number of {Ce,B} pairs in the layer
};

/** Whole-network compression outcome. */
struct CompressionReport
{
    std::vector<LayerReport> layers;

    int64_t originalBits() const;
    int64_t compressedBits() const;  ///< Ce + B + index (+ dense rest)
    int64_t ceBitsTotal() const;
    int64_t basisBitsTotal() const;

    /** Paper's CR: FP32 bits / (Ce + B + index) bits. */
    double compressionRate() const;

    /** Weighted mean vector-wise sparsity over decomposed layers. */
    double overallVectorSparsity() const;

    /** Paper's "Spar.": pruned / total parameters. */
    double prunedParamRatio() const;

    double originalMB() const { return (double)originalBits() / 8e6; }
    double paramMB() const { return (double)compressedBits() / 8e6; }
    double ceMB() const { return (double)ceBitsTotal() / 8e6; }
    double basisMB() const { return (double)basisBitsTotal() / 8e6; }
};

/**
 * Apply SmartExchange to every eligible layer of a network, replacing
 * weights in place with their Ce*B reconstruction so the network runs
 * exactly what the accelerator would rebuild.
 */
CompressionReport applySmartExchange(nn::Sequential &net,
                                     const SeOptions &se_opts,
                                     const ApplyOptions &apply_opts);

// --- plan / decompose / finish decomposition of applySmartExchange ----
//
// applySmartExchange() is equivalent to:
//   1. planCompression()  — reshape every eligible layer into
//      independent 2-D slices (one DecompUnit each),
//   2. decomposeMatrix()  — on each unit's matrix, in any order
//      (units are mutually independent and decomposeMatrix is
//      deterministic),
//   3. finishCompression() — write the Ce*B reconstructions back into
//      the network and assemble the CompressionReport.
// The split exists so se::runtime can run step 2 across a thread pool
// (and through a result cache) while producing bit-identical output.

/** One independent decomposition task: a reshaped 2-D slice. */
struct DecompUnit
{
    Tensor matrix;         ///< slice to decompose (rows x cols)
    size_t layerIndex = 0; ///< into CompressionPlan::layers
    int64_t filter = 0;    ///< owning conv filter / FC row
    int64_t rowOffset = 0; ///< first row within the reshaped matrix
};

/** A reported layer plus the geometry needed to write results back. */
struct PlannedLayer
{
    LayerReport report;        ///< pre-filled name / counts / chan-spar
    Tensor *weight = nullptr;  ///< write-back target (the live tensor)
    bool convKxK = false;      ///< conv reshape rule vs. FC group rule
    int64_t kernelR = 1;       ///< conv kernel height (write-back)
    int64_t kernelS = 1;       ///< conv kernel width / FC group size
    int64_t rowLength = 0;     ///< FC / 1x1 conv: flattened row length
};

/** Everything needed to run and then finish a compression pass. */
struct CompressionPlan
{
    std::vector<PlannedLayer> layers;
    std::vector<DecompUnit> units;  ///< grouped by layer, in order
};

/**
 * Build the slice plan for a network. Performs the one-time channel
 * gamma pruning (mutating the network), so call it exactly once per
 * application.
 */
CompressionPlan planCompression(nn::Sequential &net,
                                const SeOptions &se_opts,
                                const ApplyOptions &apply_opts);

/**
 * Write decomposed pieces back into the network and assemble the
 * report. `results[i]` must be decomposeMatrix(plan.units[i].matrix).
 */
CompressionReport finishCompression(const CompressionPlan &plan,
                                    std::vector<SeMatrix> results,
                                    const SeOptions &se_opts);

/**
 * Decompose one conv layer's weights (per-filter reshape, CONV rules
 * from Section III-C) without touching the network. Used by unit tests
 * and by the single-matrix benches.
 */
std::vector<SeMatrix> decomposeConvWeight(const Tensor &weight,
                                          const SeOptions &se_opts,
                                          const ApplyOptions &apply_opts);

/**
 * Decompose an FC weight (per-row C/S x S reshape with zero padding).
 */
std::vector<SeMatrix> decomposeFcWeight(const Tensor &weight,
                                        const SeOptions &se_opts,
                                        const ApplyOptions &apply_opts);

} // namespace core
} // namespace se

#endif // SE_CORE_APPLY_HH
