/**
 * @file
 * The SmartExchange decomposition (Section III of the paper).
 *
 * Given a weight matrix W (m x n), find W ~= Ce * B where B is a small
 * n x n basis and Ce is (a) vector-wise sparse (whole rows zero) and
 * (b) readily quantized (every non-zero is +-2^p with p drawn from a
 * small alphabet). Algorithm 1 alternates:
 *   Step 1  quantize Ce onto Omega_P (after column normalization,
 *           absorbing scales into B),
 *   Step 2  alternating least-squares refits of B and Ce,
 *   Step 3  vector-wise magnitude sparsification of Ce,
 * and concludes with a final re-quantization of Ce and re-fit of B.
 */

#ifndef SE_CORE_SMART_EXCHANGE_HH
#define SE_CORE_SMART_EXCHANGE_HH

#include <vector>

#include "quant/quant.hh"
#include "tensor/tensor.hh"

namespace se {
namespace core {

/** Knobs of the SmartExchange algorithm. */
struct SeOptions
{
    /** Bits per Ce entry (1 sign + exponent codes); paper uses 4. */
    int coefBits = 4;
    /** Bits per basis entry; paper uses 8. */
    int basisBits = 8;
    /**
     * theta: rows of Ce whose max |element| (after column
     * normalization) falls below this are zeroed vector-wise. The
     * VGG19 experiment in the paper uses 4e-3; larger values push
     * sparsity up at some accuracy cost.
     */
    double vectorThreshold = 4e-3;
    /** Optional floor on the fraction of zero rows (0 disables). */
    double minVectorSparsity = 0.0;
    /** Algorithm 1 iteration cap; the paper uses 30. */
    int maxIterations = 30;
    /** Convergence tolerance on the quantization residual delta(Ce). */
    double tol = 1e-10;
    /** Ridge added to the ALS normal equations. */
    double ridge = 1e-8;
    /**
     * After sparsification, refit the surviving Ce entries restricted
     * to their support (masked least squares) instead of the free
     * refit-then-rezero. Slightly better reconstruction at extra
     * solve cost; off by default to match Algorithm 1 literally.
     */
    bool refineOnSupport = false;
};

/** Per-iteration trace used to reproduce Fig. 9. */
struct SeTrace
{
    std::vector<double> reconError;   ///< ||W - CeB||_F / ||W||_F
    std::vector<double> vectorSparsity;
    std::vector<double> basisDrift;   ///< ||B - I||_F / ||I||_F
};

/** The SmartExchange form {Ce, B} of a matrix plus diagnostics. */
struct SeMatrix
{
    Tensor ce;                      ///< m x r, entries in Omega_P
    Tensor basis;                   ///< r x n
    quant::Pow2Alphabet alphabet;   ///< the Omega_P used for Ce
    int iterations = 0;
    double reconRelError = 0.0;     ///< relative Frobenius error

    /** Rebuild the (approximate) weight matrix Ce * B. */
    Tensor reconstruct() const;

    /** Fraction of all-zero rows of Ce (vector-wise sparsity). */
    double vectorSparsity() const;

    /** Fraction of zero elements of Ce. */
    double elementSparsity() const;

    /** Storage cost of Ce: 1-bit row index + dense non-zero rows. */
    int64_t ceStorageBits(int coef_bits) const;

    /** Storage cost of B. */
    int64_t basisStorageBits(int basis_bits) const;
};

/**
 * Run Algorithm 1 on one matrix. W must be 2-D with n <= m; r is fixed
 * to n (full basis) as in the paper's experiments. An optional trace
 * records the per-iteration evolution.
 */
SeMatrix decomposeMatrix(const Tensor &w, const SeOptions &opts,
                         SeTrace *trace = nullptr);

} // namespace core
} // namespace se

#endif // SE_CORE_SMART_EXCHANGE_HH
