/**
 * @file
 * On-disk format for SmartExchange-form weights — what a deployment
 * pipeline would ship to the accelerator (or to se::serve).
 *
 * Two bundle versions share one header (magic, version, body size,
 * FNV-1a body checksum — truncated or bit-corrupted streams are
 * always rejected with a ModelFileError instead of crashing or
 * silently mis-loading):
 *
 *  - v2 (saveModel): coefficients as one byte per entry holding
 *    {zero | sign, exponent-code}, the basis as float32, plus the
 *    alphabet so the power-of-2 codes decode exactly. Records only —
 *    a channel-pruned model is NOT servable from a v2 bundle alone
 *    (its BN gamma/beta were mutated at compression time).
 *
 *  - v3 (saveModelV3): the hardware's true storage width. All-zero Ce
 *    rows collapse to a 1-bit row mask and the surviving rows pack
 *    two 4-bit codes per byte (sign + 3 exponent bits, exactly the
 *    paper's Omega_P encoding), plus a dense-residual section —
 *    BN gamma/beta/running stats, biases, undecomposed weights — so
 *    a channel-pruned model round-trips and serves from the bundle
 *    alone. Coefficient round-trips stay exact (codes are codes);
 *    only layers whose alphabet exceeds 7 levels (coefBits > 4)
 *    cannot be packed and make saveModelV3 throw.
 *
 *  - v4 (saveModelV4): the streaming format. A small meta section
 *    (record table, dense residual, 8-byte-per-piece directory of
 *    lengths + FNV-1a checksums — offsets are derived, not stored)
 *    under its own version-seeded checksum, followed by the piece
 *    region: its start is 64-byte aligned, and the independently-
 *    checksummed payloads pack back-to-back inside it, so
 *    core::StreamedModel can mmap a bundle, verify only the
 *    meta at open, and decode pieces lazily on first touch. Piece
 *    payloads shrink below v3 two ways: Ce columns carry tthresh-
 *    style adaptive bit widths (each column pays only the bits its
 *    occupied code alphabet needs, sign+magnitude, byte-aligned
 *    per-piece flush through encode::BitWriter; the width table
 *    itself is 2-bit packed), and the basis ships
 *    as 8-bit fixed-point integers plus one float scale — the
 *    paper's accelerator width. saveModelV4 therefore requires every
 *    basis to already BE 8-bit fixed-point (it throws otherwise):
 *    run quantizeBasisAtCompress() at compression time so the live
 *    net and the shipped bundle stay bit-faithful to each other.
 *
 * loadModelBundle() accepts all versions; loadModel() remains the
 * records-only view (and refuses to silently drop a v3/v4 bundle's
 * dense section). Load errors name the offending record, piece index
 * and byte offset, so a corrupt multi-thousand-piece bundle is
 * debuggable from the message alone.
 */

#ifndef SE_CORE_MODEL_FILE_HH
#define SE_CORE_MODEL_FILE_HH

#include <cstdint>
#include <functional>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/apply.hh"
#include "core/smart_exchange.hh"

namespace se {
namespace core {

/**
 * Thrown on any malformed, truncated or corrupted model stream. Load
 * never aborts on bad input: it either returns a fully-validated
 * bundle or throws this.
 */
class ModelFileError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Serialize one SmartExchange matrix. */
void saveSeMatrix(std::ostream &os, const SeMatrix &m);

/**
 * Deserialize one SmartExchange matrix (exact round trip). Throws
 * ModelFileError on truncation or implausible metadata.
 */
SeMatrix loadSeMatrix(std::istream &is);

/** A named bundle of SeMatrix pieces (e.g. one conv layer). */
struct SeLayerRecord
{
    std::string name;
    std::vector<SeMatrix> pieces;
};

/**
 * One named dense tensor of the residual section: everything a served
 * model needs that the Ce*B records do not carry — BN gamma/beta and
 * running stats, conv/linear biases, weights of layers too small to
 * decompose. Names are positional ("<leaf index>:<kind>:<role>") and
 * validated on install, so a bundle can never be applied to a
 * mismatched architecture.
 */
struct DenseTensor
{
    std::string name;
    Tensor value;
};

/** An in-memory model bundle: records plus (v3) dense residual. */
struct ModelBundle
{
    std::vector<SeLayerRecord> records;
    std::vector<DenseTensor> dense;  ///< empty for v2 loads
};

/**
 * A Ce matrix at the accelerator's storage width: a 1-bit-per-row
 * non-zero mask plus the surviving rows' codes packed two 4-bit
 * nibbles per byte (low nibble first; nibble = 0 for zero, else
 * sign bit 0x8 | exponent code 1..numLevels; 0x8 alone is illegal).
 * This is both the v3 wire form and what serve's CeDirect weight
 * source keeps in memory and feeds to kernels::gemmCeB.
 */
struct PackedCe
{
    int64_t rows = 0;
    int64_t cols = 0;
    int64_t nonZeroRows = 0;
    quant::Pow2Alphabet alphabet;
    std::vector<uint8_t> rowMask;  ///< ceil(rows/8), LSB-first
    std::vector<uint8_t> nibbles;  ///< ceil(nonZeroRows*cols/2)
};

/**
 * Pack a Ce tensor (entries in Omega_P) at true 4-bit width. Throws
 * ModelFileError when the alphabet needs more than 7 levels (a
 * coefBits > 4 run cannot pack; ship it as v2).
 */
PackedCe packCe(const Tensor &ce, const quant::Pow2Alphabet &alphabet);

/** Exact inverse of packCe. */
Tensor unpackCe(const PackedCe &p);

/** Serialize a whole model's decomposed layers to a stream (v2). */
void saveModel(std::ostream &os,
               const std::vector<SeLayerRecord> &layers);

/**
 * Load the records of a model bundle. Throws ModelFileError on any
 * damage, and on a v3 bundle that carries dense residual state (which
 * this records-only view would silently drop — use loadModelBundle).
 */
std::vector<SeLayerRecord> loadModel(std::istream &is);

/**
 * Serialize records + dense residual as a v3 bundle: packed 4-bit Ce
 * codes with zero rows elided, float32 bases, float32 dense tensors.
 */
void saveModelV3(std::ostream &os,
                 const std::vector<SeLayerRecord> &layers,
                 const std::vector<DenseTensor> &dense = {});

/**
 * Serialize records + dense residual as a v4 streaming bundle:
 * checksummed meta (record table, dense residual, length+checksum
 * piece directory) followed by back-to-back independently-checksummed
 * piece payloads in a 64-byte-aligned region — adaptive per-column
 * Ce bit widths, int8 basis + one float scale per piece. Every basis must already be at an 8-bit
 * fixed point (see quantizeBasisAtCompress); saveModelV4 throws
 * ModelFileError otherwise rather than ship a bundle that would not
 * be bit-faithful to the live net.
 */
void saveModelV4(std::ostream &os,
                 const std::vector<SeLayerRecord> &layers,
                 const std::vector<DenseTensor> &dense = {});

/** Load a v2, v3 or v4 bundle. Throws ModelFileError on any damage. */
ModelBundle loadModelBundle(std::istream &is);

/** Save to / load from a file path. */
void saveModelFile(const std::string &path,
                   const std::vector<SeLayerRecord> &layers);
std::vector<SeLayerRecord> loadModelFile(const std::string &path);
void saveModelV3File(const std::string &path, const ModelBundle &b);
void saveModelV4File(const std::string &path, const ModelBundle &b);
ModelBundle loadModelBundleFile(const std::string &path);

/**
 * Snap every piece's basis to an 8-bit (or `bits`-wide) fixed point
 * in place: iterate fakeQuantize under a freshly calibrated
 * quant::FixedPointQuantizer until the tensor is bitwise stable, so
 * saveModelV4's exact-recovery check (re-calibrate, toInt, toFloat,
 * compare bits) is deterministic — a basis that merely LOOKS
 * quantized but sits one ulp off a representable point can never
 * slip through. Returns the number of pieces whose basis changed.
 */
size_t quantizeBasisAtCompress(std::vector<SeLayerRecord> &records,
                               int bits = 8);

// ------------------------------------------------- v4 streaming layout
//
// Shared between the eager loadModelBundle path and the lazy
// core::StreamedModel: both must agree bit-for-bit on what a valid
// v4 bundle looks like.
namespace modelv4 {

/** Fixed 32-byte header: u32 magic, u32 version=4, u64 metaBytes,
 *  u64 fileBytes (total, header included), u64 meta checksum
 *  (FNV-1a over the meta section, seeded with hashValue(4u)). */
constexpr size_t kHeaderBytes = 32;
/** The piece region (first payload) starts on a 64-byte boundary
 *  (one cache line / mmap-friendly); payloads then pack back-to-back
 *  and the meta→region padding run must be zero. */
constexpr size_t kPieceAlign = 64;

/** One piece directory row as parsed: the file stores only a u32
 *  payload length and the low 32 bits of the version-seeded FNV-1a
 *  checksum of the payload bytes (8 bytes per piece — the directory
 *  itself sits under the u64 meta checksum); the absolute offset is
 *  derived by parseMeta from the aligned region start + running
 *  lengths. */
struct PieceDirEntry
{
    uint64_t offset = 0;    ///< derived, not stored in the file
    uint64_t length = 0;
    uint64_t checksum = 0;  ///< low 32 bits of fnv1a(payload, v4 seed)
};

/** Parsed + validated header/meta of a v4 bundle. Piece payloads are
 *  NOT decoded (that is decodePiece, per piece). */
struct Meta
{
    std::vector<std::string> recordNames;
    std::vector<uint32_t> pieceCounts;  ///< per record, sums to directory size
    std::vector<DenseTensor> dense;
    std::vector<PieceDirEntry> directory;
    uint64_t metaBytes = 0;
    uint64_t fileBytes = 0;
};

/**
 * Parse and validate the header + meta section of a v4 bundle held
 * (or mmapped) in memory: magic/version, meta checksum, dense
 * residual, and full directory canonicality (offsets derived from
 * the aligned region start and running lengths, last piece ends
 * exactly at fileBytes == size). Throws ModelFileError on any damage. O(meta),
 * independent of total piece bytes — this is the lazy loader's
 * open-time cost.
 */
Meta parseMeta(const uint8_t *file, size_t size);

/**
 * Checksum-verify and decode directory entry `index` of a bundle
 * whose parseMeta already succeeded. Errors carry the piece index
 * and byte offset. Exact: re-encoding the result reproduces the
 * payload bytes.
 */
SeMatrix decodePiece(const uint8_t *file, const Meta &meta, size_t index);

} // namespace modelv4

// ------------------------------------------------- nn <-> record glue

/**
 * Pluggable single-matrix decomposition, so callers can route the ALS
 * work through runtime::CompressionPipeline's cache/pool. Defaults to
 * the serial core::decomposeMatrix.
 */
using DecomposeFn =
    std::function<SeMatrix(const Tensor &, const SeOptions &)>;

/** A shippable compressed model plus its compression report. */
struct CompressedModel
{
    /**
     * One record per decomposed layer, pieces in plan/unit order — the
     * exact shape installLayerRecords() and serve::InferenceSession
     * expect back.
     */
    std::vector<SeLayerRecord> records;
    /**
     * The dense residual (what used to be a "BN not shipped" warning,
     * now shipped data): BN gamma/beta/running stats, biases, and
     * undecomposed weights, captured AFTER channel pruning — so a
     * pruned model serves from {records, dense} alone, no out-of-band
     * restore. saveModelV3 ships it; v2 saves drop it (legacy
     * contract: the serving factory must bit-reproduce this state).
     */
    std::vector<DenseTensor> dense;
    CompressionReport report;

    ModelBundle
    bundle() const
    {
        return {records, dense};
    }
};

/**
 * Compress a network into shippable records: plan, decompose every
 * unit, install the Ce*B reconstructions in place (exactly like
 * applySmartExchange) and keep the decomposed pieces grouped per
 * layer plus the dense residual. Undecomposed layers produce no
 * record (their weights ship in the dense section).
 */
CompressedModel compressToRecords(nn::Sequential &net,
                                  const SeOptions &se_opts,
                                  const ApplyOptions &apply_opts,
                                  const DecomposeFn &decomp = nullptr);

/**
 * Compress-time variant of quantizeBasisAtCompress(records): quantize
 * the bases of `model.records` and, when anything changed, reinstall
 * the records into the live net so the compression-time net is
 * bit-identical to what a v4 bundle will serve. Call between
 * compressToRecords() and saveModelV4().
 */
void quantizeBasisAtCompress(nn::Sequential &net, CompressedModel &model,
                             const SeOptions &se_opts,
                             const ApplyOptions &apply_opts, int bits = 8);

/**
 * Snapshot a network's dense residual state — every tensor a served
 * model needs that is NOT one of the decomposed weights: BN
 * gamma/beta/running stats, conv/linear biases, and the weights of
 * layers absent from `decomposed_weights`. Leaf visit order gives the
 * positional names installDenseState() validates against.
 */
std::vector<DenseTensor> collectDenseState(
    nn::Sequential &net,
    const std::vector<const Tensor *> &decomposed_weights);

/**
 * Write a shipped dense residual back into a live network. The
 * bundle must cover exactly the net's non-decomposed state (same
 * names, same shapes, same order) — anything else throws
 * ModelFileError, so a pruned bundle can never half-apply.
 */
void installDenseState(
    nn::Sequential &net, const std::vector<DenseTensor> &dense,
    const std::vector<const Tensor *> &decomposed_weights);

/**
 * One decomposed planned layer matched to its shipped record: plan
 * units [unitBegin, unitBegin + unitCount) belong to layer
 * plan.layers[layerIndex], and record->pieces[k] corresponds to unit
 * unitBegin + k.
 */
struct RecordBinding
{
    size_t layerIndex = 0;
    size_t unitBegin = 0;
    size_t unitCount = 0;
    const SeLayerRecord *record = nullptr;
};

/**
 * Match shipped records against a re-derived compression plan,
 * validating full congruence (layer names, piece counts, slice
 * shapes). Throws ModelFileError on any mismatch. Shared by
 * installLayerRecords and serve::InferenceSession.
 */
std::vector<RecordBinding> matchRecordsToPlan(
    const CompressionPlan &plan,
    const std::vector<SeLayerRecord> &records);

/**
 * Install previously-shipped records into a freshly built instance of
 * the same architecture: re-plan the layer geometry, check that the
 * records are congruent (via matchRecordsToPlan), and write every
 * Ce*B reconstruction into the live weights. Channel pruning is never
 * re-applied: its effect is already baked into the shipped
 * coefficients.
 */
CompressionReport installLayerRecords(
    nn::Sequential &net, const std::vector<SeLayerRecord> &records,
    const SeOptions &se_opts, const ApplyOptions &apply_opts);

/**
 * installLayerRecords for a whole bundle: install the dense residual
 * first (when present), then the Ce*B reconstructions. With a v3
 * bundle of a channel-pruned model this restores the pruned BN
 * state — the fresh net ends bit-identical to the compression-time
 * net, with no out-of-band restore.
 */
CompressionReport installModelBundle(nn::Sequential &net,
                                     const ModelBundle &bundle,
                                     const SeOptions &se_opts,
                                     const ApplyOptions &apply_opts);

} // namespace core
} // namespace se

#endif // SE_CORE_MODEL_FILE_HH
