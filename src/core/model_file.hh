/**
 * @file
 * On-disk format for SmartExchange-form weights — what a deployment
 * pipeline would ship to the accelerator (or to se::serve).
 *
 * Each SeMatrix is stored compactly: coefficients as one byte per
 * entry holding {zero | sign, exponent-code} (the hardware packs two
 * such codes per byte at 4-bit precision; the file trades that last
 * 2x for simplicity and self-description), the basis as float32, plus
 * the alphabet so the power-of-2 codes decode exactly.
 *
 * Bundles (saveModel / loadModel) carry a header with the body size
 * and an FNV-1a checksum of the body, so truncated or bit-corrupted
 * streams are always rejected with a ModelFileError instead of
 * crashing or silently mis-loading.
 */

#ifndef SE_CORE_MODEL_FILE_HH
#define SE_CORE_MODEL_FILE_HH

#include <functional>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/apply.hh"
#include "core/smart_exchange.hh"

namespace se {
namespace core {

/**
 * Thrown on any malformed, truncated or corrupted model stream. Load
 * never aborts on bad input: it either returns a fully-validated
 * bundle or throws this.
 */
class ModelFileError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Serialize one SmartExchange matrix. */
void saveSeMatrix(std::ostream &os, const SeMatrix &m);

/**
 * Deserialize one SmartExchange matrix (exact round trip). Throws
 * ModelFileError on truncation or implausible metadata.
 */
SeMatrix loadSeMatrix(std::istream &is);

/** A named bundle of SeMatrix pieces (e.g. one conv layer). */
struct SeLayerRecord
{
    std::string name;
    std::vector<SeMatrix> pieces;
};

/** Serialize a whole model's decomposed layers to a stream. */
void saveModel(std::ostream &os,
               const std::vector<SeLayerRecord> &layers);

/** Load a model bundle back. Throws ModelFileError on any damage. */
std::vector<SeLayerRecord> loadModel(std::istream &is);

/** Save to / load from a file path. */
void saveModelFile(const std::string &path,
                   const std::vector<SeLayerRecord> &layers);
std::vector<SeLayerRecord> loadModelFile(const std::string &path);

// ------------------------------------------------- nn <-> record glue

/**
 * Pluggable single-matrix decomposition, so callers can route the ALS
 * work through runtime::CompressionPipeline's cache/pool. Defaults to
 * the serial core::decomposeMatrix.
 */
using DecomposeFn =
    std::function<SeMatrix(const Tensor &, const SeOptions &)>;

/** A shippable compressed model plus its compression report. */
struct CompressedModel
{
    /**
     * One record per decomposed layer, pieces in plan/unit order — the
     * exact shape installLayerRecords() and serve::InferenceSession
     * expect back.
     */
    std::vector<SeLayerRecord> records;
    CompressionReport report;
};

/**
 * Compress a network into shippable records: plan, decompose every
 * unit, install the Ce*B reconstructions in place (exactly like
 * applySmartExchange) and keep the decomposed pieces grouped per
 * layer. Undecomposed layers produce no record.
 */
CompressedModel compressToRecords(nn::Sequential &net,
                                  const SeOptions &se_opts,
                                  const ApplyOptions &apply_opts,
                                  const DecomposeFn &decomp = nullptr);

/**
 * One decomposed planned layer matched to its shipped record: plan
 * units [unitBegin, unitBegin + unitCount) belong to layer
 * plan.layers[layerIndex], and record->pieces[k] corresponds to unit
 * unitBegin + k.
 */
struct RecordBinding
{
    size_t layerIndex = 0;
    size_t unitBegin = 0;
    size_t unitCount = 0;
    const SeLayerRecord *record = nullptr;
};

/**
 * Match shipped records against a re-derived compression plan,
 * validating full congruence (layer names, piece counts, slice
 * shapes). Throws ModelFileError on any mismatch. Shared by
 * installLayerRecords and serve::InferenceSession.
 */
std::vector<RecordBinding> matchRecordsToPlan(
    const CompressionPlan &plan,
    const std::vector<SeLayerRecord> &records);

/**
 * Install previously-shipped records into a freshly built instance of
 * the same architecture: re-plan the layer geometry, check that the
 * records are congruent (via matchRecordsToPlan), and write every
 * Ce*B reconstruction into the live weights. Channel pruning is never
 * re-applied: its effect is already baked into the shipped
 * coefficients.
 */
CompressionReport installLayerRecords(
    nn::Sequential &net, const std::vector<SeLayerRecord> &records,
    const SeOptions &se_opts, const ApplyOptions &apply_opts);

} // namespace core
} // namespace se

#endif // SE_CORE_MODEL_FILE_HH
