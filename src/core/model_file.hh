/**
 * @file
 * On-disk format for SmartExchange-form weights — what a deployment
 * pipeline would ship to the accelerator (or to se::serve).
 *
 * Two bundle versions share one header (magic, version, body size,
 * FNV-1a body checksum — truncated or bit-corrupted streams are
 * always rejected with a ModelFileError instead of crashing or
 * silently mis-loading):
 *
 *  - v2 (saveModel): coefficients as one byte per entry holding
 *    {zero | sign, exponent-code}, the basis as float32, plus the
 *    alphabet so the power-of-2 codes decode exactly. Records only —
 *    a channel-pruned model is NOT servable from a v2 bundle alone
 *    (its BN gamma/beta were mutated at compression time).
 *
 *  - v3 (saveModelV3): the hardware's true storage width. All-zero Ce
 *    rows collapse to a 1-bit row mask and the surviving rows pack
 *    two 4-bit codes per byte (sign + 3 exponent bits, exactly the
 *    paper's Omega_P encoding), plus a dense-residual section —
 *    BN gamma/beta/running stats, biases, undecomposed weights — so
 *    a channel-pruned model round-trips and serves from the bundle
 *    alone. Coefficient round-trips stay exact (codes are codes);
 *    only layers whose alphabet exceeds 7 levels (coefBits > 4)
 *    cannot be packed and make saveModelV3 throw.
 *
 * loadModelBundle() accepts both versions; loadModel() remains the
 * records-only view (and refuses to silently drop a v3 bundle's
 * dense section).
 */

#ifndef SE_CORE_MODEL_FILE_HH
#define SE_CORE_MODEL_FILE_HH

#include <cstdint>
#include <functional>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/apply.hh"
#include "core/smart_exchange.hh"

namespace se {
namespace core {

/**
 * Thrown on any malformed, truncated or corrupted model stream. Load
 * never aborts on bad input: it either returns a fully-validated
 * bundle or throws this.
 */
class ModelFileError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Serialize one SmartExchange matrix. */
void saveSeMatrix(std::ostream &os, const SeMatrix &m);

/**
 * Deserialize one SmartExchange matrix (exact round trip). Throws
 * ModelFileError on truncation or implausible metadata.
 */
SeMatrix loadSeMatrix(std::istream &is);

/** A named bundle of SeMatrix pieces (e.g. one conv layer). */
struct SeLayerRecord
{
    std::string name;
    std::vector<SeMatrix> pieces;
};

/**
 * One named dense tensor of the residual section: everything a served
 * model needs that the Ce*B records do not carry — BN gamma/beta and
 * running stats, conv/linear biases, weights of layers too small to
 * decompose. Names are positional ("<leaf index>:<kind>:<role>") and
 * validated on install, so a bundle can never be applied to a
 * mismatched architecture.
 */
struct DenseTensor
{
    std::string name;
    Tensor value;
};

/** An in-memory model bundle: records plus (v3) dense residual. */
struct ModelBundle
{
    std::vector<SeLayerRecord> records;
    std::vector<DenseTensor> dense;  ///< empty for v2 loads
};

/**
 * A Ce matrix at the accelerator's storage width: a 1-bit-per-row
 * non-zero mask plus the surviving rows' codes packed two 4-bit
 * nibbles per byte (low nibble first; nibble = 0 for zero, else
 * sign bit 0x8 | exponent code 1..numLevels; 0x8 alone is illegal).
 * This is both the v3 wire form and what serve's CeDirect weight
 * source keeps in memory and feeds to kernels::gemmCeB.
 */
struct PackedCe
{
    int64_t rows = 0;
    int64_t cols = 0;
    int64_t nonZeroRows = 0;
    quant::Pow2Alphabet alphabet;
    std::vector<uint8_t> rowMask;  ///< ceil(rows/8), LSB-first
    std::vector<uint8_t> nibbles;  ///< ceil(nonZeroRows*cols/2)
};

/**
 * Pack a Ce tensor (entries in Omega_P) at true 4-bit width. Throws
 * ModelFileError when the alphabet needs more than 7 levels (a
 * coefBits > 4 run cannot pack; ship it as v2).
 */
PackedCe packCe(const Tensor &ce, const quant::Pow2Alphabet &alphabet);

/** Exact inverse of packCe. */
Tensor unpackCe(const PackedCe &p);

/** Serialize a whole model's decomposed layers to a stream (v2). */
void saveModel(std::ostream &os,
               const std::vector<SeLayerRecord> &layers);

/**
 * Load the records of a model bundle. Throws ModelFileError on any
 * damage, and on a v3 bundle that carries dense residual state (which
 * this records-only view would silently drop — use loadModelBundle).
 */
std::vector<SeLayerRecord> loadModel(std::istream &is);

/**
 * Serialize records + dense residual as a v3 bundle: packed 4-bit Ce
 * codes with zero rows elided, float32 bases, float32 dense tensors.
 */
void saveModelV3(std::ostream &os,
                 const std::vector<SeLayerRecord> &layers,
                 const std::vector<DenseTensor> &dense = {});

/** Load a v2 or v3 bundle. Throws ModelFileError on any damage. */
ModelBundle loadModelBundle(std::istream &is);

/** Save to / load from a file path. */
void saveModelFile(const std::string &path,
                   const std::vector<SeLayerRecord> &layers);
std::vector<SeLayerRecord> loadModelFile(const std::string &path);
void saveModelV3File(const std::string &path, const ModelBundle &b);
ModelBundle loadModelBundleFile(const std::string &path);

// ------------------------------------------------- nn <-> record glue

/**
 * Pluggable single-matrix decomposition, so callers can route the ALS
 * work through runtime::CompressionPipeline's cache/pool. Defaults to
 * the serial core::decomposeMatrix.
 */
using DecomposeFn =
    std::function<SeMatrix(const Tensor &, const SeOptions &)>;

/** A shippable compressed model plus its compression report. */
struct CompressedModel
{
    /**
     * One record per decomposed layer, pieces in plan/unit order — the
     * exact shape installLayerRecords() and serve::InferenceSession
     * expect back.
     */
    std::vector<SeLayerRecord> records;
    /**
     * The dense residual (what used to be a "BN not shipped" warning,
     * now shipped data): BN gamma/beta/running stats, biases, and
     * undecomposed weights, captured AFTER channel pruning — so a
     * pruned model serves from {records, dense} alone, no out-of-band
     * restore. saveModelV3 ships it; v2 saves drop it (legacy
     * contract: the serving factory must bit-reproduce this state).
     */
    std::vector<DenseTensor> dense;
    CompressionReport report;

    ModelBundle
    bundle() const
    {
        return {records, dense};
    }
};

/**
 * Compress a network into shippable records: plan, decompose every
 * unit, install the Ce*B reconstructions in place (exactly like
 * applySmartExchange) and keep the decomposed pieces grouped per
 * layer plus the dense residual. Undecomposed layers produce no
 * record (their weights ship in the dense section).
 */
CompressedModel compressToRecords(nn::Sequential &net,
                                  const SeOptions &se_opts,
                                  const ApplyOptions &apply_opts,
                                  const DecomposeFn &decomp = nullptr);

/**
 * Snapshot a network's dense residual state — every tensor a served
 * model needs that is NOT one of the decomposed weights: BN
 * gamma/beta/running stats, conv/linear biases, and the weights of
 * layers absent from `decomposed_weights`. Leaf visit order gives the
 * positional names installDenseState() validates against.
 */
std::vector<DenseTensor> collectDenseState(
    nn::Sequential &net,
    const std::vector<const Tensor *> &decomposed_weights);

/**
 * Write a shipped dense residual back into a live network. The
 * bundle must cover exactly the net's non-decomposed state (same
 * names, same shapes, same order) — anything else throws
 * ModelFileError, so a pruned bundle can never half-apply.
 */
void installDenseState(
    nn::Sequential &net, const std::vector<DenseTensor> &dense,
    const std::vector<const Tensor *> &decomposed_weights);

/**
 * One decomposed planned layer matched to its shipped record: plan
 * units [unitBegin, unitBegin + unitCount) belong to layer
 * plan.layers[layerIndex], and record->pieces[k] corresponds to unit
 * unitBegin + k.
 */
struct RecordBinding
{
    size_t layerIndex = 0;
    size_t unitBegin = 0;
    size_t unitCount = 0;
    const SeLayerRecord *record = nullptr;
};

/**
 * Match shipped records against a re-derived compression plan,
 * validating full congruence (layer names, piece counts, slice
 * shapes). Throws ModelFileError on any mismatch. Shared by
 * installLayerRecords and serve::InferenceSession.
 */
std::vector<RecordBinding> matchRecordsToPlan(
    const CompressionPlan &plan,
    const std::vector<SeLayerRecord> &records);

/**
 * Install previously-shipped records into a freshly built instance of
 * the same architecture: re-plan the layer geometry, check that the
 * records are congruent (via matchRecordsToPlan), and write every
 * Ce*B reconstruction into the live weights. Channel pruning is never
 * re-applied: its effect is already baked into the shipped
 * coefficients.
 */
CompressionReport installLayerRecords(
    nn::Sequential &net, const std::vector<SeLayerRecord> &records,
    const SeOptions &se_opts, const ApplyOptions &apply_opts);

/**
 * installLayerRecords for a whole bundle: install the dense residual
 * first (when present), then the Ce*B reconstructions. With a v3
 * bundle of a channel-pruned model this restores the pruned BN
 * state — the fresh net ends bit-identical to the compression-time
 * net, with no out-of-band restore.
 */
CompressionReport installModelBundle(nn::Sequential &net,
                                     const ModelBundle &bundle,
                                     const SeOptions &se_opts,
                                     const ApplyOptions &apply_opts);

} // namespace core
} // namespace se

#endif // SE_CORE_MODEL_FILE_HH
