/**
 * @file
 * On-disk format for SmartExchange-form weights — what a deployment
 * pipeline would ship to the accelerator.
 *
 * Each SeMatrix is stored compactly: coefficients as one byte per
 * entry holding {zero | sign, exponent-code} (the hardware packs two
 * such codes per byte at 4-bit precision; the file trades that last
 * 2x for simplicity and self-description), the basis as float32, plus
 * the alphabet so the power-of-2 codes decode exactly.
 */

#ifndef SE_CORE_MODEL_FILE_HH
#define SE_CORE_MODEL_FILE_HH

#include <iostream>
#include <string>
#include <vector>

#include "core/smart_exchange.hh"

namespace se {
namespace core {

/** Serialize one SmartExchange matrix. */
void saveSeMatrix(std::ostream &os, const SeMatrix &m);

/** Deserialize one SmartExchange matrix (exact round trip). */
SeMatrix loadSeMatrix(std::istream &is);

/** A named bundle of SeMatrix pieces (e.g. one conv layer). */
struct SeLayerRecord
{
    std::string name;
    std::vector<SeMatrix> pieces;
};

/** Serialize a whole model's decomposed layers to a stream. */
void saveModel(std::ostream &os,
               const std::vector<SeLayerRecord> &layers);

/** Load a model bundle back. */
std::vector<SeLayerRecord> loadModel(std::istream &is);

/** Save to / load from a file path. */
void saveModelFile(const std::string &path,
                   const std::vector<SeLayerRecord> &layers);
std::vector<SeLayerRecord> loadModelFile(const std::string &path);

} // namespace core
} // namespace se

#endif // SE_CORE_MODEL_FILE_HH
