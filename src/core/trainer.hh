/**
 * @file
 * Training, evaluation and the SmartExchange re-training loop
 * (Section III-C: alternate one epoch of SGD with re-applying the
 * SmartExchange projection so the Ce structure survives training).
 */

#ifndef SE_CORE_TRAINER_HH
#define SE_CORE_TRAINER_HH

#include <functional>

#include "core/apply.hh"
#include "data/synthetic.hh"
#include "nn/blocks.hh"
#include "nn/loss.hh"
#include "nn/optim.hh"

namespace se {
namespace core {

/** Plain-SGD training options. */
struct TrainConfig
{
    int epochs = 10;
    float lr = 0.05f;
    float momentum = 0.9f;
    float weightDecay = 1e-4f;
    bool verbose = false;
};

/** Train a classifier; returns final test accuracy. */
double trainClassifier(nn::Sequential &net,
                       const data::ClassificationTask &task,
                       const TrainConfig &cfg);

/** Top-1 accuracy over a classification set. */
double evaluate(nn::Sequential &net, const data::ClassificationSet &set);

/** Train a segmentation net; returns final test mIoU. */
double trainSegmenter(nn::Sequential &net,
                      const data::SegmentationTask &task,
                      const TrainConfig &cfg);

/** Mean IoU over a segmentation set. */
double evaluateSegmenter(nn::Sequential &net,
                         const data::SegmentationSet &set);

/** Outcome of the compress + re-train pipeline. */
struct SeRetrainResult
{
    double accBaseline = 0.0;     ///< before compression
    double accPostProcess = 0.0;  ///< right after SE, no re-training
    double accRetrained = 0.0;    ///< after the alternating loop
    CompressionReport report;     ///< from the final SE application
};

/** Re-training loop options. */
struct SeRetrainConfig
{
    int rounds = 6;          ///< alternations (paper: 50/25 epochs)
    TrainConfig perRound{1, 0.02f, 0.9f, 0.0f, false};
    /**
     * Pluggable SE application step. Null means the serial
     * core::applySmartExchange; the runtime layer injects its
     * thread-pooled, cached CompressionPipeline here (bit-identical
     * output, so the training trajectory is unchanged).
     */
    std::function<CompressionReport(
        nn::Sequential &, const SeOptions &, const ApplyOptions &)>
        applyFn;
};

/**
 * Post-process a trained net with SmartExchange, then alternate
 * {1 training epoch, SE projection} for `rounds` rounds, as the paper
 * does to recover accuracy while keeping the Ce structure.
 */
SeRetrainResult retrainWithSmartExchange(
    nn::Sequential &net, const data::ClassificationTask &task,
    const SeOptions &se_opts, const ApplyOptions &apply_opts,
    const SeRetrainConfig &cfg);

} // namespace core
} // namespace se

#endif // SE_CORE_TRAINER_HH
