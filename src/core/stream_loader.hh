/**
 * @file
 * StreamedModel — mmap-backed lazy access to a v4 model bundle.
 *
 * loadModelBundle() decodes every piece of every record before the
 * caller sees a byte; fine for one model, hostile to a multi-model
 * fleet where most models are cold at process start. StreamedModel
 * opens a v4 bundle by mmapping it and validating only the header +
 * checksummed meta section (record table, dense residual, piece
 * directory) — O(meta), independent of how many gigabytes of piece
 * payloads follow. Pieces are checksum-verified and decoded on first
 * touch and cached; a model nobody submits to never pays its decode.
 *
 * The dense residual lives in the meta section and is available
 * immediately after open (it is small and the serve factory needs it
 * to build a net before any piece decodes).
 *
 * Laziness is an access policy, not a validation loophole: every
 * byte that IS read is checksummed first, so a corrupt piece fails
 * loudly at first touch with its index and offset, exactly like the
 * eager loader. Opening with StreamLoaderOptions::eager decodes (and
 * fully validates, padding included) everything up front — same
 * guarantees as loadModelBundleFile, same decoded bits.
 *
 * prefetch() is the hook for pipelined streaming execution (ROADMAP:
 * overlap decode with compute): decode a window of pieces ahead of
 * the consumer without blocking it on the whole bundle.
 *
 * Thread safety: all accessors are safe to call concurrently after
 * construction; piece decode is serialized by an internal mutex.
 */

#ifndef SE_CORE_STREAM_LOADER_HH
#define SE_CORE_STREAM_LOADER_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "base/mutex.hh"
#include "core/model_file.hh"

namespace se {
namespace core {

struct StreamLoaderOptions
{
    /** Decode and validate every piece (and every padding byte) at
     *  open — the eager fallback with mmap residency. */
    bool eager = false;
    /** Skip mmap and read the file into an owned buffer (platforms
     *  without mmap get this automatically; tests use it to pin both
     *  backends to identical bits). */
    bool forceRead = false;
};

class StreamedModel
{
  public:
    explicit StreamedModel(const std::string &path,
                           StreamLoaderOptions opts = {});
    ~StreamedModel();

    StreamedModel(const StreamedModel &) = delete;
    StreamedModel &operator=(const StreamedModel &) = delete;

    /** True when the bundle is mmapped (false on the read fallback). */
    bool mapped() const { return mapped_; }

    size_t pieceCount() const { return meta_.directory.size(); }

    /** Pieces decoded so far — the lazy-loading observable: after a
     *  lazy open it is 0, and it only grows when something actually
     *  touches a piece. */
    size_t decodedPieces() const
    {
        return decoded_.load(std::memory_order_relaxed);
    }

    const std::vector<std::string> &
    recordNames() const
    {
        return meta_.recordNames;
    }

    /** Dense residual — available at open, no piece decode. */
    const std::vector<DenseTensor> &dense() const { return meta_.dense; }

    const modelv4::Meta &meta() const { return meta_; }

    /**
     * Piece `index` (flat directory order), checksum-verified and
     * decoded on first touch, cached thereafter. Throws ModelFileError
     * (with the piece index and byte offset) on corruption.
     */
    const SeMatrix &piece(size_t index) const SE_EXCLUDES(mu_);

    /**
     * Decode pieces [first, first+count) ahead of a consumer —
     * clamped to the directory (overflow-safe: first+count past
     * SIZE_MAX still prefetches the tail), never an error to
     * over-ask. Returns the number of pieces this call actually
     * decoded. A piece that fails mid-range surfaces as a
     * ModelFileError naming that piece, whatever the underlying
     * decode threw.
     */
    size_t prefetch(size_t first, size_t count) const
        SE_EXCLUDES(mu_);

    /**
     * The full record vector (grouped per layer, piece order
     * preserved) — decodes every remaining piece on first call, then
     * serves the cached copy. This is what a serve engine binds
     * against; shared_ptr so a caller can hold the records across a
     * registry swap without copying them.
     */
    std::shared_ptr<const std::vector<SeLayerRecord>> records() const
        SE_EXCLUDES(mu_);

    /** records() + dense() as an eager-equivalent bundle (decodes
     *  everything). */
    ModelBundle bundle() const;

  private:
    const uint8_t *filePtr() const;
    const SeMatrix &pieceLocked(size_t index) const SE_REQUIRES(mu_);

    std::string path_;
    bool mapped_ = false;
    void *map_ = nullptr;     ///< mmap base (mapped_ == true)
    size_t mapLen_ = 0;
    std::string buffer_;      ///< read fallback (mapped_ == false)
    modelv4::Meta meta_;

    /** Serializes piece decode; guards the decode cache and the
     *  assembled record vector. decoded_ stays an atomic so the
     *  decodedPieces() observable needs no lock. */
    mutable base::Mutex mu_;
    mutable std::vector<std::unique_ptr<SeMatrix>> cache_
        SE_GUARDED_BY(mu_);
    mutable std::shared_ptr<const std::vector<SeLayerRecord>> records_
        SE_GUARDED_BY(mu_);
    mutable std::atomic<size_t> decoded_{0};
};

} // namespace core
} // namespace se

#endif // SE_CORE_STREAM_LOADER_HH
