/**
 * @file
 * StreamedModel — mmap-backed lazy access to a v4 model bundle.
 *
 * loadModelBundle() decodes every piece of every record before the
 * caller sees a byte; fine for one model, hostile to a multi-model
 * fleet where most models are cold at process start. StreamedModel
 * opens a v4 bundle by mmapping it and validating only the header +
 * checksummed meta section (record table, dense residual, piece
 * directory) — O(meta), independent of how many gigabytes of piece
 * payloads follow. Pieces are checksum-verified and decoded on first
 * touch and cached; a model nobody submits to never pays its decode.
 *
 * The dense residual lives in the meta section and is available
 * immediately after open (it is small and the serve factory needs it
 * to build a net before any piece decodes).
 *
 * Laziness is an access policy, not a validation loophole: every
 * byte that IS read is checksummed first, so a corrupt piece fails
 * loudly at first touch with its index and offset, exactly like the
 * eager loader. Opening with StreamLoaderOptions::eager decodes (and
 * fully validates, padding included) everything up front — same
 * guarantees as loadModelBundleFile, same decoded bits.
 *
 * Async lookahead (StreamLoaderOptions::prefetchDepth > 0): a
 * one-thread prefetch lane checksum+decodes the next N pieces behind
 * every touch while the consumer serves earlier ones — the software
 * mirror of the paper's rebuild engine streaming Ce-code decode ahead
 * of the PE array. Each piece moves Cold -> Queued -> Decoding ->
 * Ready under the internal mutex, with the decode itself running
 * off-lock (it reads only the immutable mapping and meta). A consumer
 * touching a piece the lane already finished counts a prefetch hit;
 * one that arrives mid-decode waits (the wait is decode-stall time);
 * one that beats the lane claims the piece and decodes it inline (a
 * miss). The decoded bits are identical on every path — prefetch
 * moves wall-clock, never values.
 *
 * A lane decode failure (including the `stream_prefetch` failpoint)
 * is swallowed: the piece reverts to Cold and the first real touch
 * retries on the consumer path, where corruption surfaces with the
 * full ModelFileError context exactly as if prefetch were off. The
 * consumer decode path keeps the `stream_piece_decode` failpoint;
 * the lane deliberately does not evaluate it, so drills that target
 * consumer decode keep their arithmetic regardless of lookahead.
 *
 * Thread safety: all accessors are safe to call concurrently after
 * construction; piece state is serialized by an internal mutex.
 */

#ifndef SE_CORE_STREAM_LOADER_HH
#define SE_CORE_STREAM_LOADER_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "base/mutex.hh"
#include "base/thread_pool.hh"
#include "core/model_file.hh"

namespace se {
namespace core {

struct StreamLoaderOptions
{
    /** Decode and validate every piece (and every padding byte) at
     *  open — the eager fallback with mmap residency. */
    bool eager = false;
    /** Skip mmap and read the file into an owned buffer (platforms
     *  without mmap get this automatically; tests use it to pin both
     *  backends to identical bits). */
    bool forceRead = false;
    /**
     * Lookahead window of the async prefetch lane: behind every piece
     * touch, the next `prefetchDepth` still-cold pieces are queued
     * for background checksum+decode (SE_PREFETCH_DEPTH in the serve
     * drivers). 0 (the default) disables the lane — every decode runs
     * inline on the consumer, the pre-pipelining behaviour.
     */
    size_t prefetchDepth = 0;
};

/** Prefetch-lane observables of one StreamedModel. */
struct StreamStats
{
    /** Consumer touches served by a lane-decoded piece. */
    uint64_t prefetchHits = 0;
    /** Consumer touches that decoded the piece inline themselves. */
    uint64_t prefetchMisses = 0;
    /** Pieces handed to the lane (some may be reclaimed by faster
     *  consumers; those end up counted as misses). */
    uint64_t prefetchScheduled = 0;
    /** Lane decodes dropped (fault or `stream_prefetch` injection);
     *  the piece reverted to Cold for the consumer to retry. */
    uint64_t prefetchErrors = 0;
    /** Wall-clock consumers spent blocked on piece decode — inline
     *  decodes plus waits on an in-flight lane decode. The number the
     *  pipelined serve path drives toward ~0. */
    double decodeStallMs = 0.0;
};

class StreamedModel
{
  public:
    explicit StreamedModel(const std::string &path,
                           StreamLoaderOptions opts = {});
    ~StreamedModel();

    StreamedModel(const StreamedModel &) = delete;
    StreamedModel &operator=(const StreamedModel &) = delete;

    /** True when the bundle is mmapped (false on the read fallback). */
    bool mapped() const { return mapped_; }

    size_t pieceCount() const { return meta_.directory.size(); }

    /** Pieces decoded so far — the lazy-loading observable: after a
     *  lazy open it is 0, and it only grows when something actually
     *  touches a piece (or the prefetch lane runs ahead of one). */
    size_t decodedPieces() const
    {
        return decoded_.load(std::memory_order_relaxed);
    }

    const std::vector<std::string> &
    recordNames() const
    {
        return meta_.recordNames;
    }

    /** Dense residual — available at open, no piece decode. */
    const std::vector<DenseTensor> &dense() const { return meta_.dense; }

    const modelv4::Meta &meta() const { return meta_; }

    /**
     * Piece `index` (flat directory order), checksum-verified and
     * decoded on first touch, cached thereafter. Throws ModelFileError
     * (with the piece index and byte offset) on corruption.
     */
    const SeMatrix &piece(size_t index) const SE_EXCLUDES(mu_);

    /**
     * Decode pieces [first, first+count) ahead of a consumer —
     * clamped to the directory (overflow-safe: first+count past
     * SIZE_MAX still prefetches the tail), never an error to
     * over-ask. Returns the number of pieces this call actually
     * decoded. A piece that fails mid-range surfaces as a
     * ModelFileError naming that piece, whatever the underlying
     * decode threw.
     */
    size_t prefetch(size_t first, size_t count) const
        SE_EXCLUDES(mu_);

    /**
     * The full record vector (grouped per layer, piece order
     * preserved) — decodes every remaining piece on first call (the
     * prefetch lane, when enabled, splits that decode with the
     * caller), then serves the cached copy. This is what a serve
     * engine binds against; shared_ptr so a caller can hold the
     * records across a registry swap without copying them.
     */
    std::shared_ptr<const std::vector<SeLayerRecord>> records() const
        SE_EXCLUDES(mu_);

    /** records() + dense() as an eager-equivalent bundle (decodes
     *  everything). */
    ModelBundle bundle() const;

    /** Prefetch-lane counters (zeroes when the lane is off). */
    StreamStats streamStats() const SE_EXCLUDES(mu_);

    /** Block until the lane has no queued or in-flight decode — the
     *  deterministic settle point for tests and benches. */
    void drainPrefetch() const SE_EXCLUDES(mu_);

  private:
    /** Lifecycle of one piece under mu_. Decode bytes are produced
     *  off-lock; only the state transitions are serialized. */
    enum class PieceState : uint8_t
    {
        Cold,      ///< untouched (or a dropped lane decode)
        Queued,    ///< handed to the lane, not yet started
        Decoding,  ///< someone (lane or consumer) is decoding it
        Ready,     ///< cached in cache_
    };

    const uint8_t *filePtr() const;
    const SeMatrix &fetchPiece(size_t index,
                               bool *freshly = nullptr) const
        SE_EXCLUDES(mu_);
    void schedulePrefetchLocked(size_t first) const SE_REQUIRES(mu_);
    void prefetchTask(size_t index) const SE_EXCLUDES(mu_);

    std::string path_;
    bool mapped_ = false;
    void *map_ = nullptr;     ///< mmap base (mapped_ == true)
    size_t mapLen_ = 0;
    std::string buffer_;      ///< read fallback (mapped_ == false)
    modelv4::Meta meta_;
    size_t prefetchDepth_ = 0;

    /** Serializes piece state; guards the decode cache and the
     *  assembled record vector. decoded_ stays an atomic so the
     *  decodedPieces() observable needs no lock. */
    mutable base::Mutex mu_;
    mutable base::CondVar cv_;
    mutable std::vector<std::unique_ptr<SeMatrix>> cache_
        SE_GUARDED_BY(mu_);
    mutable std::vector<PieceState> state_ SE_GUARDED_BY(mu_);
    /** Lane-decoded and not yet claimed as a hit (counted once). */
    mutable std::vector<uint8_t> laneFilled_ SE_GUARDED_BY(mu_);
    /** Lane tasks queued or decoding (drainPrefetch waits on 0). */
    mutable size_t laneOutstanding_ SE_GUARDED_BY(mu_) = 0;
    mutable StreamStats sstats_ SE_GUARDED_BY(mu_);
    mutable std::shared_ptr<const std::vector<SeLayerRecord>> records_
        SE_GUARDED_BY(mu_);
    mutable std::atomic<size_t> decoded_{0};

    /** One-thread prefetch lane; null when prefetchDepth == 0.
     *  Declared last so no task can outlive the state it touches;
     *  the destructor additionally resets it before unmapping. */
    std::unique_ptr<ThreadPool> prefetcher_;
};

} // namespace core
} // namespace se

#endif // SE_CORE_STREAM_LOADER_HH
