/**
 * @file
 * Table III: SmartExchange on the compact models MobileNetV2 and
 * EfficientNet-B0. The paper reports zero weight sparsity here (the
 * compact models have little slack to prune) with CR ~6.6x coming from
 * the 4-bit coefficient + small basis representation alone.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"
#include "runtime/pipeline.hh"

int
main()
{
    using namespace se;
    using models::ModelId;

    std::printf("=== Table III: SmartExchange on compact models ===\n");
    std::printf("paper reference: MBV2SE CR 6.57 (13.92 -> 2.12 MB), "
                "Eff-B0SE CR 6.67 (20.40 -> 3.06 MB),\nboth with 0%% "
                "pruned parameters.\n\n");

    Table t({"model", "top-1 base (%)", "top-1 SE (%)", "CR (x)",
             "Param (MB)", "B (MB)", "Ce (MB)", "Spar. (%)"});
    for (ModelId id : {ModelId::MobileNetV2, ModelId::EfficientNetB0}) {
        auto tm = bench::trainSimModel(id);
        core::SeOptions opts;
        // Compact models: no vector pruning (matches the paper's 0%
        // sparsity row), compression comes from quantization alone.
        opts.vectorThreshold = 0.0;
        core::SeRetrainConfig rc;
        rc.rounds = 3;
        // Decompose through the thread-pooled runtime pipeline
        // (bit-identical to the serial path).
        runtime::CompressionPipeline pipe(bench::envRuntimeOptions());
        rc.applyFn = [&pipe](nn::Sequential &n,
                             const core::SeOptions &o,
                             const core::ApplyOptions &a) {
            return pipe.run(n, o, a);
        };
        auto res = core::retrainWithSmartExchange(
            *tm.net, tm.task, opts, core::ApplyOptions{}, rc);

        auto paper = models::paperShapes(id);
        auto proj = bench::projectStorage(
            paper, res.report.overallVectorSparsity());

        t.row()
            .cell(models::modelName(id) + "SE")
            .cell(100.0 * res.accBaseline, 1)
            .cell(100.0 * res.accRetrained, 1)
            .cell(proj.compressionRate(), 2)
            .cell(proj.paramMB(), 2)
            .cell(proj.basisMB, 2)
            .cell(proj.ceMB, 2)
            .cell(100.0 * res.report.prunedParamRatio(), 1);
    }
    t.print();
    std::printf("\nshape check: CR lands near the 6-8x band driven by "
                "4-bit coefficients, with low sparsity.\n");
    return 0;
}
