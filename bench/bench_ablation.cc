/**
 * @file
 * Component-contribution ablation (Section V-B): build up the
 * SmartExchange accelerator feature by feature on ResNet50 and report
 * each component's share of the energy saving and the speedup, plus
 * the DESIGN.md design-choice ablations (RE placement, ping-pong REs).
 *
 * Paper reference: 3.65x energy and 7.41x speedup over a
 * similar-resource dense baseline; DRAM-reduction contributions of
 * 23.99% (compression), 12.48% (vector sparsity), 36.14% (bit-level
 * sparsity).
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "bench_util.hh"
#include "runtime/sim_driver.hh"

int
main()
{
    using namespace se;

    auto w = accel::annotatedWorkload(models::ModelId::ResNet50);

    struct Step
    {
        const char *name;
        accel::SeAccelOptions opts;
    };
    accel::SeAccelOptions none;
    none.useCompression = false;
    none.useIndexSelector = false;
    none.useBitSerial = false;
    accel::SeAccelOptions comp = none;
    comp.useCompression = true;
    accel::SeAccelOptions comp_idx = comp;
    comp_idx.useIndexSelector = true;
    accel::SeAccelOptions full = comp_idx;
    full.useBitSerial = true;

    const Step steps[] = {
        {"dense baseline (similar resources)", none},
        {"+ SE compression", comp},
        {"+ vector-sparsity index selector", comp_idx},
        {"+ bit-serial Booth MACs (full)", full},
    };

    std::printf("=== Component ablation on ResNet50 (Section V-B) "
                "===\n");
    std::printf("paper: 3.65x energy, 7.41x speedup vs similar-"
                "resource dense baseline\n\n");

    Table t({"configuration", "energy (mJ)", "cycles (M)",
             "energy gain (x)", "speedup (x)",
             "marginal energy saving (%)"});

    // One batched sweep over every configuration (the four build-up
    // steps plus the two design-choice variants) on the one workload.
    accel::SeAccelOptions re_at_gb = full;
    re_at_gb.rebuildInPeLine = false;
    accel::SeAccelOptions single_re = full;
    single_re.pingPongRe = false;

    std::vector<accel::SmartExchangeAccel> variants;
    variants.reserve(6);
    for (const auto &s : steps)
        variants.emplace_back(s.opts);
    variants.emplace_back(re_at_gb);
    variants.emplace_back(single_re);
    std::vector<const accel::Accelerator *> accs;
    for (const auto &v : variants)
        accs.push_back(&v);

    runtime::SimDriver driver(bench::envRuntimeOptions());
    auto cells = driver.sweep(accs, {w}, /*include_fc=*/true);

    // steps[3] is the full design; steps[0] the dense baseline.
    const double full_saving =
        std::max(cells[0][0].stats.totalEnergyPj() -
                     cells[3][0].stats.totalEnergyPj(),
                 1e-9);
    const double base_e = cells[0][0].stats.totalEnergyPj();
    const double base_c = (double)cells[0][0].stats.cycles;
    double prev_e = base_e;
    for (size_t i = 0; i < 4; ++i) {
        const auto &st = cells[i][0].stats;
        const double e = st.totalEnergyPj();
        t.row()
            .cell(steps[i].name)
            .cell(e / 1e9, 3)
            .cell((double)st.cycles / 1e6, 3)
            .cell(base_e / e, 2)
            .cell(base_c / (double)st.cycles, 2)
            .cell(100.0 * (prev_e - e) / full_saving, 1);
        prev_e = e;
    }
    t.print();

    std::printf("\n--- design-choice ablations (DESIGN.md section 5) "
                "---\n");
    Table d({"design choice", "energy (mJ)", "cycles (M)"});
    const struct
    {
        const char *name;
        size_t cell;
    } designs[] = {
        {"full design (RE in PE line, ping-pong)", 3},
        {"RE at GB instead of in PE lines", 4},
        {"single RE (no ping-pong stall hiding)", 5},
    };
    for (const auto &cfg : designs) {
        const auto &st = cells[cfg.cell][0].stats;
        d.row()
            .cell(cfg.name)
            .cell(st.totalEnergyPj() / 1e9, 3)
            .cell((double)st.cycles / 1e6, 3);
    }
    d.print();
    return 0;
}
