/**
 * @file
 * Component-contribution ablation (Section V-B): build up the
 * SmartExchange accelerator feature by feature on ResNet50 and report
 * each component's share of the energy saving and the speedup, plus
 * the DESIGN.md design-choice ablations (RE placement, ping-pong REs).
 *
 * Paper reference: 3.65x energy and 7.41x speedup over a
 * similar-resource dense baseline; DRAM-reduction contributions of
 * 23.99% (compression), 12.48% (vector sparsity), 36.14% (bit-level
 * sparsity).
 */

#include <cstdio>

#include "accel/annotate.hh"
#include "accel/smartexchange_accel.hh"
#include "base/table.hh"

int
main()
{
    using namespace se;

    auto w = accel::annotatedWorkload(models::ModelId::ResNet50);

    struct Step
    {
        const char *name;
        accel::SeAccelOptions opts;
    };
    accel::SeAccelOptions none;
    none.useCompression = false;
    none.useIndexSelector = false;
    none.useBitSerial = false;
    accel::SeAccelOptions comp = none;
    comp.useCompression = true;
    accel::SeAccelOptions comp_idx = comp;
    comp_idx.useIndexSelector = true;
    accel::SeAccelOptions full = comp_idx;
    full.useBitSerial = true;

    const Step steps[] = {
        {"dense baseline (similar resources)", none},
        {"+ SE compression", comp},
        {"+ vector-sparsity index selector", comp_idx},
        {"+ bit-serial Booth MACs (full)", full},
    };

    std::printf("=== Component ablation on ResNet50 (Section V-B) "
                "===\n");
    std::printf("paper: 3.65x energy, 7.41x speedup vs similar-"
                "resource dense baseline\n\n");

    Table t({"configuration", "energy (mJ)", "cycles (M)",
             "energy gain (x)", "speedup (x)",
             "marginal energy saving (%)"});
    double base_e = 0.0, base_c = 0.0, prev_e = 0.0;
    double full_saving = 0.0;
    // Precompute full-feature energy for contribution shares.
    {
        accel::SmartExchangeAccel acc(full);
        auto st = acc.runNetwork(w, true);
        accel::SmartExchangeAccel acc0(none);
        auto st0 = acc0.runNetwork(w, true);
        full_saving = st0.totalEnergyPj() - st.totalEnergyPj();
    }
    for (const auto &s : steps) {
        accel::SmartExchangeAccel acc(s.opts);
        auto st = acc.runNetwork(w, true);
        const double e = st.totalEnergyPj();
        const double c = (double)st.cycles;
        if (base_e == 0.0) {
            base_e = e;
            base_c = c;
            prev_e = e;
        }
        t.row()
            .cell(s.name)
            .cell(e / 1e9, 3)
            .cell(c / 1e6, 3)
            .cell(base_e / e, 2)
            .cell(base_c / c, 2)
            .cell(100.0 * (prev_e - e) / std::max(full_saving, 1e-9),
                  1);
        prev_e = e;
    }
    t.print();

    std::printf("\n--- design-choice ablations (DESIGN.md section 5) "
                "---\n");
    Table d({"design choice", "energy (mJ)", "cycles (M)"});
    accel::SeAccelOptions re_at_gb = full;
    re_at_gb.rebuildInPeLine = false;
    accel::SeAccelOptions single_re = full;
    single_re.pingPongRe = false;
    const struct
    {
        const char *name;
        accel::SeAccelOptions opts;
    } designs[] = {
        {"full design (RE in PE line, ping-pong)", full},
        {"RE at GB instead of in PE lines", re_at_gb},
        {"single RE (no ping-pong stall hiding)", single_re},
    };
    for (const auto &cfg : designs) {
        accel::SmartExchangeAccel acc(cfg.opts);
        auto st = acc.runNetwork(w, true);
        d.row()
            .cell(cfg.name)
            .cell(st.totalEnergyPj() / 1e9, 3)
            .cell((double)st.cycles / 1e6, 3);
    }
    d.print();
    return 0;
}
