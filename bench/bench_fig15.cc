/**
 * @file
 * Fig. 15: effectiveness of the dedicated compact-model support.
 * Normalized energy and latency of selected MobileNetV2 depth-wise
 * CONV layers with and without the dedicated dataflow/PE-line remap.
 * The paper reports up to 28.8% energy and 38.3-65.7% latency savings.
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "bench_util.hh"
#include "runtime/sim_driver.hh"

int
main()
{
    using namespace se;

    accel::SeAccelOptions with, without;
    without.dedicatedCompactSupport = false;
    accel::SmartExchangeAccel acc_with(with), acc_without(without);

    auto w = accel::annotatedWorkload(models::ModelId::MobileNetV2);
    // Collect the depth-wise layers, in network order.
    std::vector<const sim::LayerShape *> dw;
    for (const auto &l : w.layers)
        if (l.kind == sim::LayerKind::DepthwiseConv)
            dw.push_back(&l);

    std::printf("=== Fig. 15: dedicated compact-model design on "
                "MobileNetV2 depth-wise layers ===\n");
    std::printf("paper: energy savings up to 28.8%%, latency savings "
                "38.3%%-65.7%% on layers 5/20/23/38\n\n");

    Table t({"dw layer #", "shape (CxHxW)", "energy w/o (uJ)",
             "energy w/ (uJ)", "saving (%)", "latency w/o (kcyc)",
             "latency w/ (kcyc)", "saving (%)"});
    // The paper indexes layers 5, 20, 23, 38 in its (57-layer)
    // numbering; we pick the corresponding early/mid/late dw layers.
    const size_t picks[] = {1, 7, 9, 14};

    // Batch both accelerator variants over the picked layers (one
    // single-layer workload per pick).
    std::vector<sim::Workload> singles;
    std::vector<size_t> kept;
    for (size_t p : picks) {
        if (p >= dw.size())
            continue;
        sim::Workload one;
        one.layers.push_back(*dw[p]);
        singles.push_back(std::move(one));
        kept.push_back(p);
    }
    runtime::SimDriver driver(bench::envRuntimeOptions());
    const std::vector<const accel::Accelerator *> accs{&acc_without,
                                                       &acc_with};
    auto cells = driver.sweep(accs, singles);

    for (size_t i = 0; i < kept.size(); ++i) {
        const size_t p = kept[i];
        const auto &l = singles[i].layers[0];
        const auto &a = cells[0][i].stats;
        const auto &b = cells[1][i].stats;
        char shape[48];
        std::snprintf(shape, sizeof(shape), "%lldx%lldx%lld",
                      (long long)l.c, (long long)l.h, (long long)l.w);
        t.row()
            .cell((int64_t)p)
            .cell(std::string(shape))
            .cell(a.totalEnergyPj() / 1e6, 2)
            .cell(b.totalEnergyPj() / 1e6, 2)
            .cell(100.0 * (1.0 - b.totalEnergyPj() /
                                     a.totalEnergyPj()), 1)
            .cell((double)a.cycles / 1e3, 1)
            .cell((double)b.cycles / 1e3, 1)
            .cell(100.0 * (1.0 - (double)b.cycles / (double)a.cycles),
                  1);
    }
    t.print();
    return 0;
}
