/**
 * @file
 * Fig. 11: normalized number of DRAM accesses (over the SmartExchange
 * accelerator). The paper reports baselines needing 1.1x-3.5x the
 * DRAM accesses of SmartExchange, with compact (activation-dominated)
 * models showing the smallest gap.
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "bench_util.hh"
#include "runtime/sim_driver.hh"

int
main()
{
    using namespace se;

    auto accs = bench::paperAccelerators();
    auto ids = models::acceleratorBenchmarkModels();

    std::printf("=== Fig. 11: normalized # DRAM accesses over "
                "SmartExchange ===\n");
    std::printf("paper: baselines need 1.1x-3.5x; smallest gaps on "
                "compact models\n\n");

    std::vector<std::string> header{"accelerator"};
    for (auto id : ids)
        header.push_back(models::modelName(id));
    header.push_back("geomean");
    Table t(header);

    // One batched sweep; SmartExchange (last row) is the reference.
    runtime::SimDriver driver(bench::envRuntimeOptions());
    auto cells =
        driver.sweep(accs, bench::annotatedWorkloads(ids),
                     /*include_fc=*/false,
                     bench::scnnEffNetSkip(accs, ids));
    const size_t se_row = accs.size() - 1;

    for (size_t ai = 0; ai < accs.size(); ++ai) {
        t.row().cell(accs[ai]->name());
        std::vector<double> ratios;
        for (size_t wi = 0; wi < ids.size(); ++wi) {
            if (!cells[ai][wi].run) {
                t.cell("-");
                continue;
            }
            const double ratio =
                (double)cells[ai][wi].stats.dramAccessBytes() /
                (double)cells[se_row][wi].stats.dramAccessBytes();
            ratios.push_back(ratio);
            t.cell(ratio, 2);
        }
        t.cell(bench::geomean(ratios), 2);
    }
    t.print();
    return 0;
}
