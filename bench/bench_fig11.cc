/**
 * @file
 * Fig. 11: normalized number of DRAM accesses (over the SmartExchange
 * accelerator). The paper reports baselines needing 1.1x-3.5x the
 * DRAM accesses of SmartExchange, with compact (activation-dominated)
 * models showing the smallest gap.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "accel/annotate.hh"
#include "accel/baselines.hh"
#include "accel/smartexchange_accel.hh"
#include "base/table.hh"
#include "bench_util.hh"

int
main()
{
    using namespace se;

    std::vector<accel::AcceleratorPtr> accs;
    accs.push_back(std::make_unique<accel::DianNao>());
    accs.push_back(std::make_unique<accel::Scnn>());
    accs.push_back(std::make_unique<accel::CambriconX>());
    accs.push_back(std::make_unique<accel::BitPragmatic>());
    accs.push_back(std::make_unique<accel::SmartExchangeAccel>());

    std::printf("=== Fig. 11: normalized # DRAM accesses over "
                "SmartExchange ===\n");
    std::printf("paper: baselines need 1.1x-3.5x; smallest gaps on "
                "compact models\n\n");

    std::vector<std::string> header{"accelerator"};
    auto ids = models::acceleratorBenchmarkModels();
    for (auto id : ids)
        header.push_back(models::modelName(id));
    header.push_back("geomean");
    Table t(header);

    std::vector<int64_t> se_bytes;
    for (auto id : ids) {
        auto w = accel::annotatedWorkload(id);
        se_bytes.push_back(
            accs.back()->runNetwork(w, false).dramAccessBytes());
    }

    for (const auto &acc : accs) {
        t.row().cell(acc->name());
        std::vector<double> ratios;
        for (size_t i = 0; i < ids.size(); ++i) {
            if (acc->name() == "SCNN" &&
                ids[i] == models::ModelId::EfficientNetB0) {
                t.cell("-");
                continue;
            }
            auto w = accel::annotatedWorkload(ids[i]);
            const double ratio =
                (double)acc->runNetwork(w, false).dramAccessBytes() /
                (double)se_bytes[i];
            ratios.push_back(ratio);
            t.cell(ratio, 2);
        }
        t.cell(bench::geomean(ratios), 2);
    }
    t.print();
    return 0;
}
