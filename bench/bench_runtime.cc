/**
 * @file
 * Runtime-layer wall-clock benchmark. Emits JSON (one object to
 * stdout) timing the same multi-layer SmartExchange decomposition
 * sweep three ways — legacy serial path, N-thread CompressionPipeline,
 * and a cache-warm re-run — plus a batched accelerator sweep through
 * SimDriver. Future PRs diff these numbers to track the perf
 * trajectory.
 *
 * Usage: ./bench_runtime [--smoke] [max_threads]
 *
 * --smoke runs the serial reference, the kernel_matmul column and the
 * masked_refit section only, and exits non-zero unless the GEMM-backed
 * ALS refit beats the legacy per-row-dot path by > 1.3x while staying
 * bit-identical (and the end-to-end Naive-vs-Auto sweep agrees too) —
 * the CI regression gate for the compression-time kernel lowering.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "base/clock.hh"
#include "base/hash.hh"
#include "base/random.hh"
#include "bench_util.hh"
#include "kernels/kernels.hh"
#include "linalg/linalg.hh"
#include "runtime/pipeline.hh"
#include "runtime/sim_driver.hh"

namespace {

using Clock = se::SteadyClock;
using se::msSince;

/** The sweep subject: a reduced-scale VGG19 (16 conv + 1 fc layers). */
std::unique_ptr<se::nn::Sequential>
makeSubject()
{
    se::models::SimConfig mcfg;
    mcfg.baseWidth = 12;
    mcfg.inHeight = mcfg.inWidth = 12;
    mcfg.seed = 99;
    return se::models::buildSim(se::models::ModelId::VGG19, mcfg);
}

/** FNV digest over every conv/fc weight, to prove runs agree. */
uint64_t
weightDigest(se::nn::Sequential &net)
{
    uint64_t h = se::kFnvOffsetBasis;
    net.visit([&](se::nn::Layer &l) {
        if (auto *c = dynamic_cast<se::nn::Conv2d *>(&l))
            h = se::hashTensor(c->weightTensor(), h);
        else if (auto *f = dynamic_cast<se::nn::Linear *>(&l))
            h = se::hashTensor(f->weightTensor(), h);
    });
    return h;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace se;

    bool smoke = false;
    int max_threads = (int)std::thread::hardware_concurrency();
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else
            max_threads = std::atoi(argv[i]);
    }
    if (max_threads < 1)
        max_threads = 1;

    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;

    // --- serial reference (the legacy path, no runtime layer) -------
    auto serial_net = makeSubject();
    auto t0 = Clock::now();
    auto serial_report =
        core::applySmartExchange(*serial_net, se_opts, apply_opts);
    const double serial_ms = msSince(t0);
    const uint64_t serial_digest = weightDigest(*serial_net);

    std::printf("{\n");
    std::printf("  \"bench\": \"runtime_pipeline\",\n");
    std::printf("  \"decomposed_layers\": %zu,\n",
                serial_report.layers.size());
    std::printf("  \"serial_ms\": %.2f,\n", serial_ms);

    // --- kernel layer: the same serial sweep, legacy vs blocked ----
    // The ALS loops inside decomposeMatrix funnel through
    // linalg::matmul AND linalg::fitCoefficientsMasked — both are
    // kernel-lowered under Auto (blocked GEMM / precomputed Gram) and
    // both fall back to the legacy loops under Naive, bit-identically.
    // Since the masked refit was the dominant ALS cost, this column
    // now shows a real end-to-end compression speedup where it used
    // to sit at ~1x. RuntimeOptions carries the programmatic override.
    bool e2e_identical = false;
    double e2e_speedup = 0.0;
    {
        const kernels::ConvImpl prev = kernels::defaultConvImpl();
        runtime::RuntimeOptions impl_ro;

        impl_ro.convImpl = kernels::ConvImpl::Naive;
        impl_ro.applyKernelConfig();
        auto legacy_net = makeSubject();
        t0 = Clock::now();
        core::applySmartExchange(*legacy_net, se_opts, apply_opts);
        const double legacy_ms = msSince(t0);

        impl_ro.convImpl = kernels::ConvImpl::Auto;
        impl_ro.applyKernelConfig();
        auto fast_net = makeSubject();
        t0 = Clock::now();
        core::applySmartExchange(*fast_net, se_opts, apply_opts);
        const double fast_ms = msSince(t0);

        kernels::setDefaultConvImpl(prev);
        e2e_identical =
            weightDigest(*fast_net) == weightDigest(*legacy_net);
        e2e_speedup = legacy_ms / fast_ms;
        std::printf("  \"legacy_matmul_ms\": %.2f,\n", legacy_ms);
        std::printf("  \"kernel_matmul\": {\"ms\": %.2f, "
                    "\"speedup\": %.2f, \"bit_identical\": %s},\n",
                    fast_ms, e2e_speedup,
                    bench::jsonBool(e2e_identical));
    }

    // --- masked ALS refit: legacy per-row dots vs GEMM-backed ------
    // The isolated measurement of what the fitCoefficientsMasked
    // lowering buys: same inputs, Naive (recompute every masked Gram
    // dot per row) vs Auto (B*B^T and W*B^T once through the
    // double-chain GEMM, per-row gather). Bit-identical Ce required.
    bool refit_identical = false;
    double refit_speedup = 0.0;
    {
        const int64_t m = 1024, r = 9, n = 9;
        Rng rng(23);
        Tensor w = randn({m, n}, rng);
        Tensor b = randn({r, n}, rng);
        for (int64_t i = 0; i < r; ++i)
            b.at(i, i % n) += 2.0f;
        Tensor mask({m, r}, 1.0f);
        for (int64_t i = 0; i < mask.size(); ++i)
            if (rng.chance(0.3))
                mask[i] = 0.0f;
        const int reps = smoke ? 3 : 10;
        const kernels::ConvImpl prev = kernels::defaultConvImpl();

        kernels::setDefaultConvImpl(kernels::ConvImpl::Naive);
        Tensor ce_legacy = linalg::fitCoefficientsMasked(w, b, mask);
        double legacy_ms = 1e30;
        for (int round = 0; round < 3; ++round) {
            t0 = Clock::now();
            for (int rep = 0; rep < reps; ++rep)
                linalg::fitCoefficientsMasked(w, b, mask);
            legacy_ms = std::min(legacy_ms, msSince(t0) / reps);
        }

        kernels::setDefaultConvImpl(kernels::ConvImpl::Auto);
        Tensor ce_fast = linalg::fitCoefficientsMasked(w, b, mask);
        double fast_ms = 1e30;
        for (int round = 0; round < 3; ++round) {
            t0 = Clock::now();
            for (int rep = 0; rep < reps; ++rep)
                linalg::fitCoefficientsMasked(w, b, mask);
            fast_ms = std::min(fast_ms, msSince(t0) / reps);
        }
        kernels::setDefaultConvImpl(prev);

        refit_identical = hashTensor(ce_legacy) == hashTensor(ce_fast);
        refit_speedup = legacy_ms / fast_ms;
        std::printf("  \"masked_refit\": {\"shape\": \"%dx%dx%d\", "
                    "\"legacy_ms\": %.3f, \"gemm_ms\": %.3f, "
                    "\"speedup\": %.2f, \"bit_identical\": %s}%s\n",
                    (int)m, (int)r, (int)n, legacy_ms, fast_ms,
                    refit_speedup, bench::jsonBool(refit_identical),
                    ",");
    }

    if (smoke) {
        const bool pass = refit_identical && e2e_identical &&
                          refit_speedup > 1.3;
        std::printf("  \"smoke_refit_speedup\": %.2f,\n",
                    refit_speedup);
        std::printf("  \"smoke_pass\": %s\n}\n",
                    bench::jsonBool(pass));
        return pass ? 0 : 1;
    }

    // --- pipeline at 1..max_threads ---------------------------------
    std::printf("  \"pipeline\": [\n");
    std::vector<int> thread_counts;
    for (int t = 1; t <= max_threads; t *= 2)
        thread_counts.push_back(t);
    if (thread_counts.back() != max_threads)
        thread_counts.push_back(max_threads);
    for (size_t i = 0; i < thread_counts.size(); ++i) {
        const int threads = thread_counts[i];
        runtime::RuntimeOptions ro;
        ro.threads = threads;
        runtime::CompressionPipeline pipe(ro);
        auto net = makeSubject();
        t0 = Clock::now();
        pipe.run(*net, se_opts, apply_opts);
        const double ms = msSince(t0);
        const bool identical = weightDigest(*net) == serial_digest;
        std::printf("    {\"threads\": %d, \"units\": %zu, "
                    "\"ms\": %.2f, \"speedup\": %.2f, "
                    "\"bit_identical\": %s}%s\n",
                    threads, pipe.stats().units, ms, serial_ms / ms,
                    bench::jsonBool(identical),
                    bench::jsonSep(i, thread_counts.size()));
    }
    std::printf("  ],\n");

    // --- cache-warm re-run (the ablation / design-scan pattern) -----
    {
        runtime::RuntimeOptions ro;
        ro.threads = max_threads;
        ro.cacheCapacity = 65536;
        runtime::CompressionPipeline pipe(ro);
        auto warm_net = makeSubject();
        pipe.run(*warm_net, se_opts, apply_opts);  // populate

        auto net = makeSubject();
        t0 = Clock::now();
        pipe.run(*net, se_opts, apply_opts);
        const double ms = msSince(t0);
        std::printf("  \"cache_warm\": {\"ms\": %.2f, "
                    "\"speedup\": %.2f, \"hits\": %zu, "
                    "\"units\": %zu, \"bit_identical\": %s},\n",
                    ms, serial_ms / ms, pipe.stats().cacheHits,
                    pipe.stats().units,
                    bench::jsonBool(weightDigest(*net) ==
                                    serial_digest));
    }

    // --- batched accelerator sweep through SimDriver ----------------
    {
        auto accs = bench::paperAccelerators();
        auto ids = models::acceleratorBenchmarkModels();
        auto workloads = bench::annotatedWorkloads(ids);
        auto skip = bench::scnnEffNetSkip(accs, ids);
        const int reps = 40;

        runtime::RuntimeOptions serial_ro;
        serial_ro.threads = 0;
        runtime::SimDriver serial_driver(serial_ro);
        t0 = Clock::now();
        for (int r = 0; r < reps; ++r)
            serial_driver.sweep(accs, workloads, false, skip);
        const double sweep_serial_ms = msSince(t0);

        runtime::RuntimeOptions par_ro;
        par_ro.threads = max_threads;
        runtime::SimDriver par_driver(par_ro);
        t0 = Clock::now();
        for (int r = 0; r < reps; ++r)
            par_driver.sweep(accs, workloads, false, skip);
        const double sweep_par_ms = msSince(t0);

        std::printf("  \"sim_sweep\": {\"cells\": %zu, \"reps\": %d, "
                    "\"serial_ms\": %.2f, \"threads\": %d, "
                    "\"parallel_ms\": %.2f, \"speedup\": %.2f}\n",
                    accs.size() * workloads.size(), reps,
                    sweep_serial_ms, max_threads, sweep_par_ms,
                    sweep_serial_ms / sweep_par_ms);
    }
    std::printf("}\n");
    return 0;
}
