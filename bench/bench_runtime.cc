/**
 * @file
 * Runtime-layer wall-clock benchmark. Emits JSON (one object to
 * stdout) timing the same multi-layer SmartExchange decomposition
 * sweep three ways — legacy serial path, N-thread CompressionPipeline,
 * and a cache-warm re-run — plus a batched accelerator sweep through
 * SimDriver. Future PRs diff these numbers to track the perf
 * trajectory.
 *
 * Usage: ./bench_runtime [max_threads]   (default: hardware cores)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "base/clock.hh"
#include "base/hash.hh"
#include "bench_util.hh"
#include "kernels/kernels.hh"
#include "runtime/pipeline.hh"
#include "runtime/sim_driver.hh"

namespace {

using Clock = se::SteadyClock;
using se::msSince;

/** The sweep subject: a reduced-scale VGG19 (16 conv + 1 fc layers). */
std::unique_ptr<se::nn::Sequential>
makeSubject()
{
    se::models::SimConfig mcfg;
    mcfg.baseWidth = 12;
    mcfg.inHeight = mcfg.inWidth = 12;
    mcfg.seed = 99;
    return se::models::buildSim(se::models::ModelId::VGG19, mcfg);
}

/** FNV digest over every conv/fc weight, to prove runs agree. */
uint64_t
weightDigest(se::nn::Sequential &net)
{
    uint64_t h = se::kFnvOffsetBasis;
    net.visit([&](se::nn::Layer &l) {
        if (auto *c = dynamic_cast<se::nn::Conv2d *>(&l))
            h = se::hashTensor(c->weightTensor(), h);
        else if (auto *f = dynamic_cast<se::nn::Linear *>(&l))
            h = se::hashTensor(f->weightTensor(), h);
    });
    return h;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace se;

    int max_threads = (int)std::thread::hardware_concurrency();
    if (argc > 1)
        max_threads = std::atoi(argv[1]);
    if (max_threads < 1)
        max_threads = 1;

    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;

    // --- serial reference (the legacy path, no runtime layer) -------
    auto serial_net = makeSubject();
    auto t0 = Clock::now();
    auto serial_report =
        core::applySmartExchange(*serial_net, se_opts, apply_opts);
    const double serial_ms = msSince(t0);
    const uint64_t serial_digest = weightDigest(*serial_net);

    std::printf("{\n");
    std::printf("  \"bench\": \"runtime_pipeline\",\n");
    std::printf("  \"decomposed_layers\": %zu,\n",
                serial_report.layers.size());
    std::printf("  \"serial_ms\": %.2f,\n", serial_ms);

    // --- kernel layer: the same serial sweep, legacy vs blocked ----
    // The ALS loops inside decomposeMatrix funnel through
    // linalg::matmul; this column pins both lowerings explicitly
    // (independent of SE_CONV_IMPL in the environment) and tracks
    // what the blocked GEMM buys them end-to-end, bit-identical by
    // construction. RuntimeOptions carries the programmatic override.
    {
        const kernels::ConvImpl prev = kernels::defaultConvImpl();
        runtime::RuntimeOptions impl_ro;

        impl_ro.convImpl = kernels::ConvImpl::Naive;
        impl_ro.applyKernelConfig();
        auto legacy_net = makeSubject();
        t0 = Clock::now();
        core::applySmartExchange(*legacy_net, se_opts, apply_opts);
        const double legacy_ms = msSince(t0);

        impl_ro.convImpl = kernels::ConvImpl::Auto;
        impl_ro.applyKernelConfig();
        auto fast_net = makeSubject();
        t0 = Clock::now();
        core::applySmartExchange(*fast_net, se_opts, apply_opts);
        const double fast_ms = msSince(t0);

        kernels::setDefaultConvImpl(prev);
        std::printf("  \"legacy_matmul_ms\": %.2f,\n", legacy_ms);
        std::printf("  \"kernel_matmul\": {\"ms\": %.2f, "
                    "\"speedup\": %.2f, \"bit_identical\": %s},\n",
                    fast_ms, legacy_ms / fast_ms,
                    bench::jsonBool(weightDigest(*fast_net) ==
                                    weightDigest(*legacy_net)));
    }

    // --- pipeline at 1..max_threads ---------------------------------
    std::printf("  \"pipeline\": [\n");
    std::vector<int> thread_counts;
    for (int t = 1; t <= max_threads; t *= 2)
        thread_counts.push_back(t);
    if (thread_counts.back() != max_threads)
        thread_counts.push_back(max_threads);
    for (size_t i = 0; i < thread_counts.size(); ++i) {
        const int threads = thread_counts[i];
        runtime::RuntimeOptions ro;
        ro.threads = threads;
        runtime::CompressionPipeline pipe(ro);
        auto net = makeSubject();
        t0 = Clock::now();
        pipe.run(*net, se_opts, apply_opts);
        const double ms = msSince(t0);
        const bool identical = weightDigest(*net) == serial_digest;
        std::printf("    {\"threads\": %d, \"units\": %zu, "
                    "\"ms\": %.2f, \"speedup\": %.2f, "
                    "\"bit_identical\": %s}%s\n",
                    threads, pipe.stats().units, ms, serial_ms / ms,
                    bench::jsonBool(identical),
                    bench::jsonSep(i, thread_counts.size()));
    }
    std::printf("  ],\n");

    // --- cache-warm re-run (the ablation / design-scan pattern) -----
    {
        runtime::RuntimeOptions ro;
        ro.threads = max_threads;
        ro.cacheCapacity = 65536;
        runtime::CompressionPipeline pipe(ro);
        auto warm_net = makeSubject();
        pipe.run(*warm_net, se_opts, apply_opts);  // populate

        auto net = makeSubject();
        t0 = Clock::now();
        pipe.run(*net, se_opts, apply_opts);
        const double ms = msSince(t0);
        std::printf("  \"cache_warm\": {\"ms\": %.2f, "
                    "\"speedup\": %.2f, \"hits\": %zu, "
                    "\"units\": %zu, \"bit_identical\": %s},\n",
                    ms, serial_ms / ms, pipe.stats().cacheHits,
                    pipe.stats().units,
                    bench::jsonBool(weightDigest(*net) ==
                                    serial_digest));
    }

    // --- batched accelerator sweep through SimDriver ----------------
    {
        auto accs = bench::paperAccelerators();
        auto ids = models::acceleratorBenchmarkModels();
        auto workloads = bench::annotatedWorkloads(ids);
        auto skip = bench::scnnEffNetSkip(accs, ids);
        const int reps = 40;

        runtime::RuntimeOptions serial_ro;
        serial_ro.threads = 0;
        runtime::SimDriver serial_driver(serial_ro);
        t0 = Clock::now();
        for (int r = 0; r < reps; ++r)
            serial_driver.sweep(accs, workloads, false, skip);
        const double sweep_serial_ms = msSince(t0);

        runtime::RuntimeOptions par_ro;
        par_ro.threads = max_threads;
        runtime::SimDriver par_driver(par_ro);
        t0 = Clock::now();
        for (int r = 0; r < reps; ++r)
            par_driver.sweep(accs, workloads, false, skip);
        const double sweep_par_ms = msSince(t0);

        std::printf("  \"sim_sweep\": {\"cells\": %zu, \"reps\": %d, "
                    "\"serial_ms\": %.2f, \"threads\": %d, "
                    "\"parallel_ms\": %.2f, \"speedup\": %.2f}\n",
                    accs.size() * workloads.size(), reps,
                    sweep_serial_ms, max_threads, sweep_par_ms,
                    sweep_serial_ms / sweep_par_ms);
    }
    std::printf("}\n");
    return 0;
}
