/**
 * @file
 * Fig. 14: SmartExchange accelerator energy breakdown and latency when
 * running ResNet50 at four vector-wise weight sparsity ratios (45.0%,
 * 51.7%, 57.5%, 60.0%). The paper reports input DRAM+GB energy falling
 * 18.33% and latency falling 41.83% from the lowest to the highest
 * sparsity.
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "bench_util.hh"
#include "runtime/sim_driver.hh"

int
main()
{
    using namespace se;
    using sim::Component;

    accel::SmartExchangeAccel acc;
    const double ratios[] = {0.45, 0.517, 0.575, 0.60};

    std::printf("=== Fig. 14: ResNet50 at four vector-wise weight "
                "sparsity ratios ===\n\n");
    Table t({"sparsity (%)", "energy (mJ)", "latency (ms)",
             "input DRAM+GB (mJ)", "norm. energy eff", "norm. speedup"});

    // One workload per sparsity point, swept in a single batch.
    std::vector<sim::Workload> sweeps;
    for (double r : ratios) {
        auto w = accel::annotatedWorkload(models::ModelId::ResNet50);
        for (auto &l : w.layers) {
            l.weightVectorSparsity = r;
            l.weightElementSparsity = std::min(0.95, r + 0.1);
        }
        sweeps.push_back(std::move(w));
    }
    runtime::SimDriver driver(bench::envRuntimeOptions());
    auto cells = driver.sweep({&acc}, sweeps, /*include_fc=*/true);

    const double base_energy = cells[0][0].stats.totalEnergyPj();
    const double base_cycles = (double)cells[0][0].stats.cycles;
    for (size_t i = 0; i < sweeps.size(); ++i) {
        const auto &st = cells[0][i].stats;
        const double input_mem =
            st.energy(Component::DramInput) +
            st.energy(Component::InputGbRead) +
            st.energy(Component::InputGbWrite);
        t.row()
            .cell(100.0 * ratios[i], 1)
            .cell(st.totalEnergyPj() / 1e9, 3)
            .cell((double)st.cycles / 1e6, 3)
            .cell(input_mem / 1e9, 3)
            .cell(base_energy / st.totalEnergyPj(), 2)
            .cell(base_cycles / (double)st.cycles, 2);
    }
    t.print();
    std::printf("\nshape check: both energy and latency fall "
                "monotonically as vector sparsity rises\n(paper: "
                "-18.33%% input-memory energy, -41.83%% latency from "
                "45%% to 60%%).\n");
    return 0;
}
