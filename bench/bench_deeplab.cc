/**
 * @file
 * Section V-A "beyond classification": DeepLabV3+ on CamVid. The paper
 * reports 10.86x CR with mIoU dropping 74.20% -> 71.20%. We train the
 * reduced-scale DeepLab on the synthetic CamVid and project storage on
 * the paper-scale geometry.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"
#include "runtime/pipeline.hh"

int
main()
{
    using namespace se;

    data::SegSetConfig scfg;
    scfg.numClasses = 4;
    scfg.height = scfg.width = 16;
    scfg.batchSize = 6;
    scfg.trainBatches = 10;
    scfg.testBatches = 4;
    auto task = data::makeSegmentation(scfg);

    models::SimConfig mcfg;
    mcfg.numClasses = scfg.numClasses;
    mcfg.inHeight = mcfg.inWidth = 16;
    mcfg.baseWidth = 6;
    auto net = models::buildSim(models::ModelId::DeepLabV3Plus, mcfg);

    core::TrainConfig tc;
    tc.epochs = 6;
    tc.lr = 0.1f;
    const double miou = core::trainSegmenter(*net, task, tc);

    core::SeOptions opts;
    opts.vectorThreshold = 0.01;
    opts.minVectorSparsity = 0.55;
    // SE with re-training, as the paper's DeepLab row uses: alternate
    // a training epoch with the SmartExchange projection. The runtime
    // pipeline fans the per-layer decompositions across the cores
    // (bit-identical to the serial path).
    runtime::CompressionPipeline pipe(bench::envRuntimeOptions());
    auto report = pipe.run(*net, opts, core::ApplyOptions{});
    core::TrainConfig ft;
    ft.epochs = 2;
    ft.lr = 0.05f;
    for (int round = 0; round < 4; ++round) {
        core::trainSegmenter(*net, task, ft);
        report = pipe.run(*net, opts, core::ApplyOptions{});
    }
    const double miou_se = core::evaluateSegmenter(*net, task.test);

    auto paper = models::paperShapes(models::ModelId::DeepLabV3Plus);
    auto proj = bench::projectStorage(
        paper, report.overallVectorSparsity());

    std::printf("=== DeepLabV3+ on CamVid (Section V-A) ===\n");
    std::printf("paper: CR 10.86x, mIoU 74.20%% -> 71.20%%\n\n");
    Table t({"metric", "baseline", "SmartExchange"});
    t.row().cell("mIoU (%)").cell(100.0 * miou, 1).cell(
        100.0 * miou_se, 1);
    t.row()
        .cell("params (paper-scale, MB)")
        .cell(proj.originalMB, 1)
        .cell(proj.paramMB(), 2);
    t.row().cell("CR (x)").cell("-").cell(proj.compressionRate(), 2);
    t.row()
        .cell("vector sparsity (%)")
        .cell("-")
        .cell(100.0 * report.overallVectorSparsity(), 1);
    t.print();
    return 0;
}
