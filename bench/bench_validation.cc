/**
 * @file
 * Simulator validation (the paper validates its cycle-accurate
 * simulator against RTL; we validate the analytical accelerator model
 * against the functional engine, which executes real convolutions
 * through modelled REs, index selectors and bit-serial PE lines).
 *
 * For each layer the functional engine reports exact synchronized MAC
 * cycles; the analytical prediction is macs_eff * serial_digits /
 * dimF. The table reports both and the implied digit-sync factor,
 * which calibrates ArrayConfig::digitSyncOverhead.
 */

#include <cstdio>

#include "arch/engine.hh"
#include "base/random.hh"
#include "base/table.hh"
#include "core/apply.hh"
#include "nn/layers.hh"
#include "quant/quant.hh"

namespace {

struct Case
{
    const char *name;
    int64_t c, m, hw, k;
    double sparsity;
};

} // namespace

int
main()
{
    using namespace se;

    const Case cases[] = {
        {"dense small", 4, 4, 10, 3, 0.0},
        {"dense wide", 8, 6, 12, 3, 0.0},
        {"sparse 50%", 8, 6, 12, 3, 0.5},
        {"sparse 80%", 8, 6, 12, 3, 0.8},
        {"5x5 kernel", 4, 4, 12, 5, 0.3},
    };

    std::printf("=== Analytical-vs-functional cycle validation ===\n\n");
    Table t({"case", "engine cycles", "analytical cycles", "ratio",
             "implied sync factor", "rows skipped"});

    for (const auto &cs : cases) {
        Rng rng(77);
        nn::Conv2d conv(cs.c, cs.m, cs.k, 1, cs.k / 2, 1, rng, false);
        core::SeOptions opts;
        opts.vectorThreshold = 0.0;
        opts.minVectorSparsity = cs.sparsity;
        auto pieces = core::decomposeConvWeight(
            conv.weightTensor(), opts, core::ApplyOptions{});

        Tensor x = randn({1, cs.c, cs.hw, cs.hw}, rng);
        // ReLU-like input so bit-level sparsity resembles real nets.
        x.apply([](float v) { return v > 0 ? v : 0.0f; });

        arch::EngineConfig ecfg;
        auto res = arch::runConvLayer(x, pieces, cs.k, 1, cs.k / 2,
                                      ecfg);

        // Analytical prediction with measured statistics.
        auto bits = quant::measureBitSparsity(x, 8);
        const double total_rows =
            (double)(res.rowsProcessed + res.rowsSkipped);
        const double keep =
            total_rows > 0 ? (double)res.rowsProcessed / total_rows
                           : 1.0;
        const int64_t e_out = cs.hw, f_out = cs.hw;
        const double macs = (double)cs.m * cs.c * cs.k * cs.k *
                            e_out * f_out;
        const double digits = std::max(1.0, bits.avgBoothDigits);
        const double analytical =
            macs * keep * digits / (double)ecfg.dimF;

        const double ratio = (double)res.macCycles / analytical;
        // Implied sync factor: measured cycles relative to the
        // unsynchronized mean-digit prediction.
        t.row()
            .cell(cs.name)
            .cell((int64_t)res.macCycles)
            .cell(analytical, 0)
            .cell(ratio, 2)
            .cell(ratio * digits / bits.avgBoothDigits > 0
                      ? ratio : 0.0, 2)
            .cell((int64_t)res.rowsSkipped);
    }
    t.print();
    std::printf("\nthe ratio over 1.0 is lane-synchronization "
                "overhead. The functional engine models\nthe "
                "unmitigated worst case (every lane group waits for "
                "its slowest activation,\n~2.5-3.0x); real designs "
                "recover most of it with per-lane digit queues "
                "(Bit-tactical\n[10]), which is why the analytical "
                "model uses digitSyncOverhead = 1.5.\n");
    return 0;
}
