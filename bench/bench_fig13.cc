/**
 * @file
 * Fig. 13: energy breakdown of the SmartExchange accelerator over its
 * fourteen components, (a) CONV + squeeze-excite layers only and
 * (b) all layers including FC. The paper highlights: activation DRAM
 * dominates for most models, weight DRAM still dominates very large
 * models (VGG19/CIFAR, ResNet50), and RE (<0.78%) and the index
 * selector (<0.05%) are negligible.
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "bench_util.hh"
#include "runtime/sim_driver.hh"

namespace {

void
breakdown(bool include_fc, const char *title)
{
    using namespace se;
    accel::SmartExchangeAccel acc;
    auto ids = models::acceleratorBenchmarkModels();

    std::printf("\n--- %s ---\n", title);
    std::vector<std::string> header{"component (%)"};
    for (auto id : ids)
        header.push_back(models::modelName(id));
    Table t(header);

    // Batched one-accelerator sweep across the seven models.
    runtime::SimDriver driver(bench::envRuntimeOptions());
    const std::vector<const accel::Accelerator *> accs{&acc};
    auto cells =
        driver.sweep(accs, bench::annotatedWorkloads(ids), include_fc);

    for (size_t c = 0; c < sim::kNumComponents; ++c) {
        t.row().cell(sim::componentName((sim::Component)c));
        for (const auto &cell : cells[0])
            t.cell(100.0 * cell.stats.energyPj[c] /
                       cell.stats.totalEnergyPj(),
                   2);
    }
    t.print();
}

} // namespace

int
main()
{
    std::printf("=== Fig. 13: SmartExchange accelerator energy "
                "breakdown ===\n");
    breakdown(false,
              "(a) CONV + squeeze-excite layers (FC excluded)");
    breakdown(true, "(b) all layers (FC included)");
    std::printf("\nshape check: DRAM input/output dominates most "
                "models; DRAM weight grows for the largest\nmodels; RE "
                "and index-selector shares stay well under 1%%.\n");
    return 0;
}
