/**
 * @file
 * Fig. 10: normalized energy efficiency (over DianNao) of the
 * SmartExchange accelerator and the four baselines on the seven
 * benchmark models (FC layers excluded per the paper's protocol; SCNN
 * skipped on EfficientNet-B0).
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "bench_util.hh"
#include "runtime/sim_driver.hh"

int
main()
{
    using namespace se;

    auto accs = bench::paperAccelerators();
    auto ids = models::acceleratorBenchmarkModels();

    std::printf("=== Fig. 10: normalized energy efficiency over "
                "DianNao ===\n");
    std::printf("paper: SmartExchange wins everywhere, 2.0x-6.7x, "
                "geomean 3.7x\n\n");

    std::vector<std::string> header{"accelerator"};
    for (auto id : ids)
        header.push_back(models::modelName(id));
    header.push_back("geomean");
    Table t(header);

    // One batched sweep over every (accelerator, model) cell; DianNao
    // (row 0) is the normalization reference.
    runtime::SimDriver driver(bench::envRuntimeOptions());
    auto cells =
        driver.sweep(accs, bench::annotatedWorkloads(ids),
                     /*include_fc=*/false,
                     bench::scnnEffNetSkip(accs, ids));

    for (size_t ai = 0; ai < accs.size(); ++ai) {
        t.row().cell(accs[ai]->name());
        std::vector<double> ratios;
        for (size_t wi = 0; wi < ids.size(); ++wi) {
            if (!cells[ai][wi].run) {
                t.cell("-");
                continue;
            }
            const double ratio = cells[0][wi].stats.totalEnergyPj() /
                                 cells[ai][wi].stats.totalEnergyPj();
            ratios.push_back(ratio);
            t.cell(ratio, 2);
        }
        t.cell(bench::geomean(ratios), 2);
    }
    t.print();
    return 0;
}
