/**
 * @file
 * Fig. 10: normalized energy efficiency (over DianNao) of the
 * SmartExchange accelerator and the four baselines on the seven
 * benchmark models (FC layers excluded per the paper's protocol; SCNN
 * skipped on EfficientNet-B0).
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "accel/annotate.hh"
#include "accel/baselines.hh"
#include "accel/smartexchange_accel.hh"
#include "base/table.hh"
#include "bench_util.hh"

int
main()
{
    using namespace se;

    std::vector<accel::AcceleratorPtr> accs;
    accs.push_back(std::make_unique<accel::DianNao>());
    accs.push_back(std::make_unique<accel::Scnn>());
    accs.push_back(std::make_unique<accel::CambriconX>());
    accs.push_back(std::make_unique<accel::BitPragmatic>());
    accs.push_back(std::make_unique<accel::SmartExchangeAccel>());

    std::printf("=== Fig. 10: normalized energy efficiency over "
                "DianNao ===\n");
    std::printf("paper: SmartExchange wins everywhere, 2.0x-6.7x, "
                "geomean 3.7x\n\n");

    std::vector<std::string> header{"accelerator"};
    auto ids = models::acceleratorBenchmarkModels();
    for (auto id : ids)
        header.push_back(models::modelName(id));
    header.push_back("geomean");
    Table t(header);

    // Reference energies.
    std::vector<double> dn_energy;
    for (auto id : ids) {
        auto w = accel::annotatedWorkload(id);
        dn_energy.push_back(
            accs[0]->runNetwork(w, false).totalEnergyPj());
    }

    for (const auto &acc : accs) {
        t.row().cell(acc->name());
        std::vector<double> ratios;
        for (size_t i = 0; i < ids.size(); ++i) {
            if (acc->name() == "SCNN" &&
                ids[i] == models::ModelId::EfficientNetB0) {
                t.cell("-");
                continue;
            }
            auto w = accel::annotatedWorkload(ids[i]);
            const double e =
                acc->runNetwork(w, false).totalEnergyPj();
            const double ratio = dn_energy[i] / e;
            ratios.push_back(ratio);
            t.cell(ratio, 2);
        }
        t.cell(bench::geomean(ratios), 2);
    }
    t.print();
    return 0;
}
