/**
 * @file
 * Fig. 4: bit-level sparsity in activations with and without 4-bit
 * Booth encoding, measured on real forward passes of six trained
 * reduced-scale models standing in for the paper's six model/dataset
 * pairs.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"
#include "quant/quant.hh"

namespace {

/** Collect all intermediate activations of a net on one batch. */
se::quant::BitSparsityStats
measureModel(se::models::ModelId id)
{
    using namespace se;
    auto tm = bench::trainSimModel(id, /*epochs=*/4);
    // Aggregate activation statistics over all test batches: we use
    // the logits plus re-forwarded hidden maps via layer-wise feed.
    Tensor all_acts;
    std::vector<float> pool;
    for (const auto &batch : tm.task.test.batches) {
        Tensor y = tm.net->forward(batch, /*train=*/false);
        for (int64_t i = 0; i < y.size(); ++i)
            pool.push_back(std::max(0.0f, y[i]));
        // Also sample the input after the first layers by re-running
        // the truncated network: cheap proxy — use the batch itself
        // ReLU'd as an additional activation sample.
        for (int64_t i = 0; i < batch.size(); ++i)
            pool.push_back(std::max(0.0f, batch[i]));
    }
    const int64_t count = (int64_t)pool.size();
    Tensor t({count}, std::move(pool));
    return quant::measureBitSparsity(t, 8);
}

} // namespace

int
main()
{
    using namespace se;
    using models::ModelId;

    std::printf("=== Fig. 4: activation bit-level sparsity (%%), "
                "w/o vs w/ 4-bit Booth encoding ===\n");
    std::printf("paper: VGG11 86.5/76.6, ResNet50 85.2/73.9, "
                "MBV2 79.8/66.0, VGG19 86.8/76.9,\n"
                "       ResNet164 84.1/73.0, DeepLabV3+ 86.7/76.1\n\n");

    const ModelId ids[] = {ModelId::VGG11, ModelId::ResNet50,
                           ModelId::MobileNetV2, ModelId::VGG19,
                           ModelId::ResNet164, ModelId::DeepLabV3Plus};

    Table t({"model", "dataset", "w/o Booth (%)", "w/ Booth (%)",
             "value sparsity (%)", "avg Booth digits"});
    for (ModelId id : ids) {
        // DeepLab is a segmentation model; measure it on the
        // classification proxy anyway (activation statistics are what
        // matters).
        auto s = measureModel(id == ModelId::DeepLabV3Plus
                                  ? ModelId::ResNet50
                                  : id);
        t.row()
            .cell(models::modelName(id))
            .cell(models::datasetName(id))
            .cell(100.0 * s.plainBitSparsity, 1)
            .cell(100.0 * s.boothBitSparsity, 1)
            .cell(100.0 * s.valueSparsity, 1)
            .cell(s.avgBoothDigits, 2);
    }
    t.print();
    std::printf("\nshape check: bit sparsity is high (>60%%) and Booth "
                "digit sparsity is lower than plain bit sparsity, as "
                "in the paper.\n");
    return 0;
}
