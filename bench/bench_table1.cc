/**
 * @file
 * Table I: unit energy cost per 8-bit in a commercial 28 nm technology,
 * plus the derived ratios the paper argues from (memory access >= 9.5x
 * the cost of a MAC).
 */

#include <cstdio>

#include "base/table.hh"
#include "sim/energy_model.hh"

int
main()
{
    using namespace se;
    sim::EnergyModel em;

    std::printf("=== Table I: unit energy cost per 8-bit (pJ), "
                "28 nm ===\n\n");
    Table t({"component", "energy (pJ/8bit)"});
    t.row().cell("DRAM").cell(em.dramPj8, 2);
    char sram[64];
    std::snprintf(sram, sizeof(sram), "%.2f - %.2f", em.sramMinPj8,
                  em.sramMaxPj8);
    t.row().cell("SRAM").cell(std::string(sram));
    t.row().cell("MAC").cell(em.macPj, 3);
    t.row().cell("multiplier").cell(em.multPj, 3);
    t.row().cell("adder").cell(em.addPj, 3);
    t.print();

    std::printf("\nderived ratios (Section II-C motivation):\n");
    Table r({"ratio", "value"});
    r.row().cell("DRAM / MAC").cell(em.dramPj8 / em.macPj, 1);
    r.row().cell("SRAM(min) / MAC").cell(em.sramMinPj8 / em.macPj, 1);
    r.row().cell("SRAM(max) / MAC").cell(em.sramMaxPj8 / em.macPj, 1);
    r.row().cell("MAC / adder").cell(em.macPj / em.addPj, 1);
    r.print();

    std::printf("\nSRAM interpolation by macro capacity:\n");
    Table s({"capacity", "pJ/8bit"});
    for (int kb : {2, 4, 8, 16, 32, 64})
        s.row()
            .cell(std::to_string(kb) + " KB")
            .cell(em.sramPj8((int64_t)kb * 1024), 2);
    s.print();
    return 0;
}
