/**
 * @file
 * Fig. 12: normalized speedup (over DianNao) at batch size 1. The
 * paper reports SmartExchange reaching 8.8x-19.2x over DianNao and
 * average gains of 3.8x/2.5x/2.0x over SCNN/Cambricon-X/Bit-pragmatic.
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "bench_util.hh"
#include "runtime/sim_driver.hh"

int
main()
{
    using namespace se;

    auto accs = bench::paperAccelerators();
    auto ids = models::acceleratorBenchmarkModels();

    std::printf("=== Fig. 12: normalized speedup over DianNao "
                "(batch 1) ===\n");
    std::printf("paper: SmartExchange 8.8x-19.2x; avg 3.8x over SCNN, "
                "2.5x over Cambricon-X, 2.0x over Bit-pragmatic\n\n");

    std::vector<std::string> header{"accelerator"};
    for (auto id : ids)
        header.push_back(models::modelName(id));
    header.push_back("geomean");
    Table t(header);

    // One batched sweep; DianNao (row 0) sets the cycle reference.
    runtime::SimDriver driver(bench::envRuntimeOptions());
    auto cells =
        driver.sweep(accs, bench::annotatedWorkloads(ids),
                     /*include_fc=*/false,
                     bench::scnnEffNetSkip(accs, ids));

    for (size_t ai = 0; ai < accs.size(); ++ai) {
        t.row().cell(accs[ai]->name());
        std::vector<double> ratios;
        for (size_t wi = 0; wi < ids.size(); ++wi) {
            if (!cells[ai][wi].run) {
                t.cell("-");
                continue;
            }
            const double ratio =
                (double)cells[0][wi].stats.cycles /
                (double)cells[ai][wi].stats.cycles;
            ratios.push_back(ratio);
            t.cell(ratio, 2);
        }
        t.cell(bench::geomean(ratios), 2);
    }
    t.print();
    return 0;
}
