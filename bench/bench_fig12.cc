/**
 * @file
 * Fig. 12: normalized speedup (over DianNao) at batch size 1. The
 * paper reports SmartExchange reaching 8.8x-19.2x over DianNao and
 * average gains of 3.8x/2.5x/2.0x over SCNN/Cambricon-X/Bit-pragmatic.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "accel/annotate.hh"
#include "accel/baselines.hh"
#include "accel/smartexchange_accel.hh"
#include "base/table.hh"
#include "bench_util.hh"

int
main()
{
    using namespace se;

    std::vector<accel::AcceleratorPtr> accs;
    accs.push_back(std::make_unique<accel::DianNao>());
    accs.push_back(std::make_unique<accel::Scnn>());
    accs.push_back(std::make_unique<accel::CambriconX>());
    accs.push_back(std::make_unique<accel::BitPragmatic>());
    accs.push_back(std::make_unique<accel::SmartExchangeAccel>());

    std::printf("=== Fig. 12: normalized speedup over DianNao "
                "(batch 1) ===\n");
    std::printf("paper: SmartExchange 8.8x-19.2x; avg 3.8x over SCNN, "
                "2.5x over Cambricon-X, 2.0x over Bit-pragmatic\n\n");

    std::vector<std::string> header{"accelerator"};
    auto ids = models::acceleratorBenchmarkModels();
    for (auto id : ids)
        header.push_back(models::modelName(id));
    header.push_back("geomean");
    Table t(header);

    std::vector<int64_t> dn_cycles;
    for (auto id : ids) {
        auto w = accel::annotatedWorkload(id);
        dn_cycles.push_back(accs[0]->runNetwork(w, false).cycles);
    }

    std::vector<double> se_speedups;
    for (const auto &acc : accs) {
        t.row().cell(acc->name());
        std::vector<double> ratios;
        for (size_t i = 0; i < ids.size(); ++i) {
            if (acc->name() == "SCNN" &&
                ids[i] == models::ModelId::EfficientNetB0) {
                t.cell("-");
                continue;
            }
            auto w = accel::annotatedWorkload(ids[i]);
            const double ratio =
                (double)dn_cycles[i] /
                (double)acc->runNetwork(w, false).cycles;
            ratios.push_back(ratio);
            t.cell(ratio, 2);
        }
        t.cell(bench::geomean(ratios), 2);
        if (acc->name() == "SmartExchange")
            se_speedups = ratios;
    }
    t.print();
    return 0;
}
