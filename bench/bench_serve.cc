/**
 * @file
 * Serving-layer wall-clock benchmark. Emits one JSON object timing
 * the zoo CNN (reduced-scale VGG19) served from its SmartExchange
 * form:
 *
 *  - rebuild engine: cold (per-slice Ce*B reconstruction) vs warm
 *    (per-layer rebuilt-weight cache) latency per rebuild-all;
 *  - per-call serving (dense weights are transient, rebuilt per
 *    forward — the paper's storage/compute trade-off): serial
 *    one-request-at-a-time vs the micro-batching ServeEngine, where
 *    batching amortizes the rebuild across the batch;
 *  - cached-weight serving: the same comparison when weights persist
 *    after the first rebuild (wins come from batching + threads);
 *  - engine latency percentiles.
 *
 * Usage: ./bench_serve [threads] [requests]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "base/clock.hh"
#include "base/hash.hh"
#include "bench_util.hh"
#include "kernels/kernels.hh"
#include "runtime/pipeline.hh"
#include "serve/engine.hh"

namespace {

using Clock = se::SteadyClock;
using se::msSince;

se::models::SimConfig
subjectConfig()
{
    // Wider channels on a small spatial grid: the serving-relevant
    // regime where weight-rebuild cost is a visible share of a
    // single-request forward (late VGG stages are exactly that).
    se::models::SimConfig cfg;
    cfg.baseWidth = 12;
    cfg.inHeight = cfg.inWidth = 8;
    cfg.seed = 77;
    return cfg;
}

std::unique_ptr<se::nn::Sequential>
makeSubject()
{
    return se::models::buildSim(se::models::ModelId::VGG19,
                                subjectConfig());
}

/** Fixed synthetic request stream. */
std::vector<se::Tensor>
makeTraffic(int n)
{
    se::Rng rng(123);
    std::vector<se::Tensor> xs;
    xs.reserve((size_t)n);
    const auto cfg = subjectConfig();
    for (int i = 0; i < n; ++i)
        xs.push_back(se::randn(
            {cfg.inChannels, cfg.inHeight, cfg.inWidth}, rng, 0.0f,
            1.0f));
    return xs;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace se;

    int max_threads = (int)std::thread::hardware_concurrency();
    if (argc > 1)
        max_threads = std::atoi(argv[1]);
    if (max_threads < 1)
        max_threads = 1;
    int requests = 128;
    if (argc > 2)
        requests = std::atoi(argv[2]);
    if (requests < 8)
        requests = 8;

    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    core::ApplyOptions apply_opts;

    // Compress the subject (per-matrix work through the pipeline's
    // decomposition cache) and keep the shippable records — the
    // serving-side storage of record.
    // SE_CONV_IMPL is honoured automatically (the kernel layer reads
    // it at startup); fromEnv only carries the thread/cache knobs.
    auto subject = makeSubject();
    runtime::CompressionPipeline pipe(
        runtime::RuntimeOptions::fromEnv());
    auto compressed = core::compressToRecords(
        *subject, se_opts, apply_opts,
        [&pipe](const Tensor &w, const core::SeOptions &o) {
            return pipe.cache().getOrCompute(w, o);
        });
    auto records =
        std::make_shared<std::vector<core::SeLayerRecord>>(
            std::move(compressed.records));
    auto traffic = makeTraffic(requests);

    std::printf("{\n");
    std::printf("  \"bench\": \"serve\",\n");
    std::printf("  \"model\": \"VGG19-sim\",\n");
    std::printf("  \"requests\": %d,\n", requests);
    std::printf("  \"decomposed_layers\": %zu,\n", records->size());
    std::printf("  \"compression_rate\": %.2f,\n",
                compressed.report.compressionRate());

    // --- rebuild engine: cold vs warm ------------------------------
    double cold_ms, warm_ms;
    {
        const int reps = 20;
        serve::SessionOptions cold_opts;
        cold_opts.rebuildPerCall = true;
        cold_opts.cacheRebuiltWeights = false;
        serve::InferenceSession cold(makeSubject(), records, se_opts,
                                     apply_opts, cold_opts);
        Tensor probe = traffic[0].reshaped(
            {1, traffic[0].dim(0), traffic[0].dim(1),
             traffic[0].dim(2)});
        for (int r = 0; r < reps; ++r)
            cold.forward(probe);
        cold_ms = cold.stats().rebuildMs / reps;

        serve::SessionOptions warm_opts;
        warm_opts.rebuildPerCall = true;
        warm_opts.cacheRebuiltWeights = true;
        serve::InferenceSession warm(makeSubject(), records, se_opts,
                                     apply_opts, warm_opts);
        warm.forward(probe);  // populate the rebuilt-weight cache
        const double after_warmup = warm.stats().rebuildMs;
        for (int r = 0; r < reps; ++r)
            warm.forward(probe);
        warm_ms = (warm.stats().rebuildMs - after_warmup) / reps;

        std::printf("  \"rebuild\": {\"layers\": %zu, "
                    "\"cold_ms\": %.3f, \"warm_ms\": %.3f, "
                    "\"warm_speedup\": %.2f},\n",
                    cold.rebuildableLayers(), cold_ms, warm_ms,
                    cold_ms / warm_ms);
    }

    const auto factory = [] { return makeSubject(); };

    // --- per-call mode: serial one-at-a-time reference -------------
    // Dense weights are transient (the accelerator operating point):
    // every request pays a full Ce*B rebuild before its forward.
    double serial_percall_rps;
    uint64_t serial_digest = kFnvOffsetBasis;
    {
        serve::SessionOptions so;
        so.rebuildPerCall = true;
        so.cacheRebuiltWeights = false;
        serve::InferenceSession session(makeSubject(), records,
                                        se_opts, apply_opts, so);
        session.forward(traffic[0].reshaped(
            {1, traffic[0].dim(0), traffic[0].dim(1),
             traffic[0].dim(2)}));  // warmup allocation paths
        auto t0 = Clock::now();
        for (const Tensor &x : traffic) {
            Tensor y = session.forward(x.reshaped(
                {1, x.dim(0), x.dim(1), x.dim(2)}));
            // Engine responses come batch-dim-stripped; hash the
            // same 1-D view so the digests are comparable.
            serial_digest =
                hashTensor(y.reshaped({y.size()}), serial_digest);
        }
        const double ms = msSince(t0);
        serial_percall_rps = 1000.0 * requests / ms;
        std::printf("  \"serial_per_call\": {\"ms\": %.2f, "
                    "\"rps\": %.1f},\n",
                    ms, serial_percall_rps);
    }

    // --- per-call mode: micro-batching engine ----------------------
    // One rebuild per batch instead of one per request; with threads,
    // batches also run concurrently.
    std::printf("  \"engine_per_call\": [\n");
    double best_percall_rps = 0.0;
    bool digests_match = true;
    {
        std::vector<int> thread_counts{1};
        if (max_threads > 1)
            thread_counts.push_back(max_threads);
        for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
            serve::ServeOptions opts;
            opts.threads = thread_counts[ti];
            opts.maxBatch = 16;
            opts.session.rebuildPerCall = true;
            opts.session.cacheRebuiltWeights = false;
            serve::ServeEngine engine(records, factory, se_opts,
                                      apply_opts, opts);
            auto t0 = Clock::now();
            std::vector<std::future<Tensor>> futs;
            futs.reserve(traffic.size());
            for (const Tensor &x : traffic)
                futs.push_back(engine.submit(x));
            engine.drain();
            uint64_t digest = kFnvOffsetBasis;
            for (auto &f : futs)
                digest = hashTensor(f.get(), digest);
            const double ms = msSince(t0);
            const double rps = 1000.0 * requests / ms;
            if (rps > best_percall_rps)
                best_percall_rps = rps;
            digests_match =
                digests_match && digest == serial_digest;
            auto st = engine.stats();
            std::printf(
                "    {\"threads\": %d, \"max_batch\": 16, "
                "\"ms\": %.2f, \"rps\": %.1f, "
                "\"mean_batch\": %.1f, \"p50_ms\": %.2f, "
                "\"p95_ms\": %.2f, \"p99_ms\": %.2f, "
                "\"bit_identical\": %s}%s\n",
                thread_counts[ti], ms, rps, st.meanBatchSize,
                st.p50Ms, st.p95Ms, st.p99Ms,
                digest == serial_digest ? "true" : "false",
                ti + 1 < thread_counts.size() ? "," : "");
        }
    }
    std::printf("  ],\n");
    std::printf("  \"batched_speedup_vs_serial\": %.2f,\n",
                best_percall_rps / serial_percall_rps);

    // --- cached-weight mode ----------------------------------------
    // Weights persist after the first rebuild; gains now come from
    // batching overheads and (on multi-core hosts) replica fan-out.
    {
        serve::InferenceSession session(makeSubject(), records,
                                        se_opts, apply_opts);
        Tensor warm0 = traffic[0].reshaped(
            {1, traffic[0].dim(0), traffic[0].dim(1),
             traffic[0].dim(2)});
        session.forward(warm0);
        auto t0 = Clock::now();
        for (const Tensor &x : traffic)
            session.forward(x.reshaped(
                {1, x.dim(0), x.dim(1), x.dim(2)}));
        const double serial_ms = msSince(t0);

        serve::ServeOptions opts;
        opts.threads = max_threads;
        opts.maxBatch = 16;
        serve::ServeEngine engine(records, factory, se_opts,
                                  apply_opts, opts);
        // Warm the replicas' weight rebuilds out of the timed region.
        for (int i = 0; i < max_threads * 2; ++i)
            engine.submit(traffic[(size_t)i % traffic.size()]);
        engine.drain();
        t0 = Clock::now();
        std::vector<std::future<Tensor>> futs;
        for (const Tensor &x : traffic)
            futs.push_back(engine.submit(x));
        engine.drain();
        for (auto &f : futs)
            f.get();
        const double batched_ms = msSince(t0);
        std::printf(
            "  \"cached_mode\": {\"serial_ms\": %.2f, "
            "\"serial_rps\": %.1f, \"batched_ms\": %.2f, "
            "\"batched_rps\": %.1f},\n",
            serial_ms, 1000.0 * requests / serial_ms, batched_ms,
            1000.0 * requests / batched_ms);
    }

    // --- conv lowering: end-to-end serving speedup ------------------
    // The same cached-weight serial serving loop under the legacy
    // conv loops vs the im2col+GEMM kernel layer. Responses must be
    // bit-identical (the lowering preserves the naive rounding
    // sequence); the ratio is the end-to-end win the kernel layer
    // buys this serving workload.
    bool conv_identical;
    {
        const int probe_requests =
            std::min<int>(requests, 48);
        const kernels::ConvImpl impls[2] = {
            kernels::ConvImpl::Naive, kernels::ConvImpl::Im2colGemm};
        double impl_ms[2];
        uint64_t impl_digest[2];
        for (int v = 0; v < 2; ++v) {
            kernels::setDefaultConvImpl(impls[v]);
            serve::InferenceSession session(makeSubject(), records,
                                            se_opts, apply_opts);
            Tensor warm0 = traffic[0].reshaped(
                {1, traffic[0].dim(0), traffic[0].dim(1),
                 traffic[0].dim(2)});
            session.forward(warm0);
            uint64_t digest = kFnvOffsetBasis;
            auto t0 = Clock::now();
            for (int i = 0; i < probe_requests; ++i) {
                const Tensor &x = traffic[(size_t)i];
                Tensor y = session.forward(x.reshaped(
                    {1, x.dim(0), x.dim(1), x.dim(2)}));
                digest =
                    hashTensor(y.reshaped({y.size()}), digest);
            }
            impl_ms[v] = msSince(t0);
            impl_digest[v] = digest;
        }
        kernels::setDefaultConvImpl(kernels::convImplFromEnv());
        conv_identical = impl_digest[0] == impl_digest[1];
        std::printf(
            "  \"conv_impl\": {\"requests\": %d, "
            "\"naive_ms\": %.2f, \"naive_rps\": %.1f, "
            "\"gemm_ms\": %.2f, \"gemm_rps\": %.1f, "
            "\"gemm_speedup\": %.2f, \"bit_identical\": %s},\n",
            probe_requests, impl_ms[0],
            1000.0 * probe_requests / impl_ms[0], impl_ms[1],
            1000.0 * probe_requests / impl_ms[1],
            impl_ms[0] / impl_ms[1],
            conv_identical ? "true" : "false");
    }

    std::printf("  \"responses_bit_identical\": %s\n",
                digests_match ? "true" : "false");
    std::printf("}\n");
    // Exit status gates only the noise-immune invariants (response
    // fidelity across engines and conv lowerings; warm rebuild
    // beating cold, a ~50x margin). The batched-vs-serial and
    // gemm-vs-naive throughput ratios are reported in the JSON but
    // not gated: on a loaded 1-2 core CI runner a wall-clock margin
    // could flake an unrelated PR (bench_kernels --smoke gates the
    // kernel speedup in the Release job instead).
    return digests_match && conv_identical && warm_ms < cold_ms ? 0
                                                                : 1;
}
