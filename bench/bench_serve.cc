/**
 * @file
 * Serving-layer wall-clock benchmark. Emits one JSON object timing
 * the zoo CNN (reduced-scale VGG19) served from its SmartExchange
 * form:
 *
 *  - rebuild engine: cold (per-slice Ce*B reconstruction) vs warm
 *    (per-layer rebuilt-weight cache) latency per rebuild-all;
 *  - per-call serving (dense weights are transient, rebuilt per
 *    forward — the paper's storage/compute trade-off): serial
 *    one-request-at-a-time vs the micro-batching ServeEngine, where
 *    batching amortizes the rebuild across the batch;
 *  - cached-weight serving: the same comparison when weights persist
 *    after the first rebuild (wins come from batching + threads);
 *  - model file: v2 vs v3 bytes of the same bundle (v3 = packed
 *    4-bit codes + zero-row elision + dense residual);
 *  - quantized serving: a CeDirect (packed-code) engine A/B'd
 *    against the Dense engine of the same bundle behind one
 *    ServeFront, with per-tenant latency stats, cold-start
 *    (pack + first rebuild) cost, and a bit-identity gate;
 *  - multi-model serving: two zoo models behind one ServeFront, each
 *    response checked bit-identical to its single-model session;
 *  - hot reload: 50 reloadModel() generation flips under in-flight
 *    traffic — zero drops, no cross-generation blends, gen == 51;
 *  - admission control: queueCap shed rate under a burst, with the
 *    completed+shed == offered conservation check;
 *  - flush policy: Deadline vs Full p99 at equal paced offered load
 *    (the latency/throughput knob made visible);
 *  - pipelined streaming execution: the streamed-v4 CeDirect bundle
 *    served by the serial one-request loop vs the stage-decoupled
 *    engine with prefetch/pipelining off and on, with decode-stall,
 *    prefetch hit/miss and pipeline-occupancy counters;
 *  - engine latency percentiles.
 *
 * Usage: ./bench_serve [--smoke] [threads] [requests]
 *
 * --smoke shrinks the run and turns the noise-tolerant invariants
 * into exit gates (batched >= serial, deadline p99 < full p99,
 * v3 <= 60% of v2 bytes, v4 <= 90% of v3 bytes, lazy v4 cold start
 * < eager, pipelined >= 1.15x the serial loop with a shrinking
 * rebuild stall and ~0 prefetched decode stall) on top of the
 * always-gated bit-identity/warm<cold checks — the Release CI job
 * runs it on every PR.
 *
 * SE_SERVE_QUEUE_CAP / SE_SERVE_DEADLINE_MS / SE_SERVE_WEIGHT_SOURCE
 * / SE_MODEL_FORMAT (via RuntimeOptions::fromEnv) override the
 * admission cap, deadline, serving weight source and reported save
 * format used by the respective sections. SE_PIPELINE switches the
 * per-call engine section to the stage-decoupled loop (responses
 * must not change) and SE_PREFETCH_DEPTH sets the lookahead the
 * pipeline section's prefetch lane uses.
 *
 * SE_FAILPOINTS=<spec> switches the whole run into a fault drill:
 * the perf sections are skipped (faults would corrupt their timings)
 * and a quarantine/fallback/recovery scenario is gated instead — the
 * Release CI job runs it with stream_piece_decode:1in8.
 */

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "base/clock.hh"
#include "base/failpoint.hh"
#include "base/hash.hh"
#include "bench_util.hh"
#include "core/stream_loader.hh"
#include "kernels/kernels.hh"
#include "nn/blocks.hh"
#include "runtime/pipeline.hh"
#include "serve/engine.hh"
#include "serve/front.hh"

namespace {

using Clock = se::SteadyClock;
using se::msSince;

se::models::SimConfig
subjectConfig()
{
    // Wider channels on a small spatial grid: the serving-relevant
    // regime where weight-rebuild cost is a visible share of a
    // single-request forward (late VGG stages are exactly that).
    se::models::SimConfig cfg;
    cfg.baseWidth = 12;
    cfg.inHeight = cfg.inWidth = 8;
    cfg.seed = 77;
    return cfg;
}

std::unique_ptr<se::nn::Sequential>
makeSubject()
{
    return se::models::buildSim(se::models::ModelId::VGG19,
                                subjectConfig());
}

/** Second tenant for the multi-model section (same input geometry). */
std::unique_ptr<se::nn::Sequential>
makeSecondSubject()
{
    return se::models::buildSim(se::models::ModelId::VGG11,
                                subjectConfig());
}

/**
 * Tiny CNN for the failpoint drill's streamed victim tenant: few
 * enough v4 pieces (two) that a 1-in-N decode fault leaves most
 * stand-up attempts clean, so reload-driven recovery is reachable.
 */
std::unique_ptr<se::nn::Sequential>
makeDrillNet(uint64_t seed)
{
    se::Rng rng(seed);
    const auto cfg = subjectConfig();
    auto net = std::make_unique<se::nn::Sequential>();
    net->add<se::nn::Conv2d>(cfg.inChannels, 4, 3, 1, 1, 1, rng,
                             false);
    net->add<se::nn::ReLU>();
    net->add<se::nn::GlobalAvgPool>();
    net->add<se::nn::Flatten>();
    net->add<se::nn::Linear>(4, 4, rng, false);
    return net;
}

/** Fixed synthetic request stream. */
std::vector<se::Tensor>
makeTraffic(int n)
{
    se::Rng rng(123);
    std::vector<se::Tensor> xs;
    xs.reserve((size_t)n);
    const auto cfg = subjectConfig();
    for (int i = 0; i < n; ++i)
        xs.push_back(se::randn(
            {cfg.inChannels, cfg.inHeight, cfg.inWidth}, rng, 0.0f,
            1.0f));
    return xs;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace se;

    bool smoke = false;
    int max_threads = (int)std::thread::hardware_concurrency();
    int requests = 0;  // 0 = default per mode
    int pos = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (pos == 0) {
            max_threads = std::atoi(argv[i]);
            ++pos;
        } else if (pos == 1) {
            requests = std::atoi(argv[i]);
            ++pos;
        }
    }
    if (max_threads < 1)
        max_threads = 1;
    if (requests <= 0)
        requests = smoke ? 32 : 128;
    if (requests < 8)
        requests = 8;

    core::SeOptions se_opts;
    se_opts.vectorThreshold = 0.01;
    // Serve at the paper's operating point: Table II reports 60-87%
    // vector-wise sparsity for the retrained VGG19, which an
    // untrained random-weight subject cannot reach through the
    // threshold alone. The floor keeps the serving workload (and the
    // v3 zero-row elision it feeds) representative.
    se_opts.minVectorSparsity = 0.5;
    core::ApplyOptions apply_opts;

    // Compress the subject (per-matrix work through the pipeline's
    // decomposition cache) and keep the shippable records — the
    // serving-side storage of record.
    // SE_CONV_IMPL is honoured automatically (the kernel layer reads
    // it at startup); fromEnv only carries the thread/cache knobs.
    auto subject = makeSubject();
    const runtime::RuntimeOptions run_opts =
        runtime::RuntimeOptions::fromEnv();
    run_opts.applyFailpoints();  // arm SE_FAILPOINTS, if any
    runtime::CompressionPipeline pipe(run_opts);
    auto compressed = core::compressToRecords(
        *subject, se_opts, apply_opts,
        [&pipe](const Tensor &w, const core::SeOptions &o) {
            return pipe.cache().getOrCompute(w, o);
        });
    auto records =
        std::make_shared<std::vector<core::SeLayerRecord>>(
            std::move(compressed.records));
    auto dense =
        std::make_shared<const std::vector<core::DenseTensor>>(
            std::move(compressed.dense));
    // SE_SERVE_WEIGHT_SOURCE selects what the serving sections
    // rebuild from; responses are bit-identical either way.
    const serve::WeightSource weight_source =
        run_opts.serveWeightSource ==
                runtime::ServeWeightSource::CeDirect
            ? serve::WeightSource::CeDirect
            : serve::WeightSource::Dense;
    auto traffic = makeTraffic(requests);

    std::printf("{\n");
    std::printf("  \"bench\": \"serve\",\n");
    std::printf("  \"smoke\": %s,\n", bench::jsonBool(smoke));
    std::printf("  \"model\": \"VGG19-sim\",\n");
    std::printf("  \"requests\": %d,\n", requests);
    std::printf("  \"decomposed_layers\": %zu,\n", records->size());
    std::printf("  \"compression_rate\": %.2f,\n",
                compressed.report.compressionRate());
    std::printf("  \"weight_source\": \"%s\",\n",
                weight_source == serve::WeightSource::CeDirect
                    ? "ce"
                    : "dense");

    // --- failpoint drill (replaces the perf run when armed) ---------
    // With SE_FAILPOINTS armed, wall-clock numbers are meaningless (a
    // fault can land mid-measurement), so the run becomes a fault
    // drill: a streamed "victim" tenant absorbs the injected faults
    // through quarantine / fallback / reload recovery while a
    // records-backed "resident" bystander must keep answering
    // bit-identically. Designed for decode/build/exec-class faults
    // (the CI job arms stream_piece_decode:1in8); the exit status
    // gates confinement, conservation and recovery.
    if (failpoint::anyArmed()) {
        std::string armed_json;
        for (const auto &n : failpoint::armedNames()) {
            if (!armed_json.empty())
                armed_json += ", ";
            armed_json += "\"" + n + "\"";
        }

        // Ship the victim as a v4 streaming bundle; every stand-up
        // re-opens the file so piece decode stays on the fault path.
        core::SeOptions drill_se;
        drill_se.vectorThreshold = 0.01;
        auto drill_net = makeDrillNet(5);
        auto drill_comp =
            core::compressToRecords(*drill_net, drill_se, apply_opts);
        core::quantizeBasisAtCompress(drill_comp.records);
        const char *victim_path = "/tmp/se_bench_serve_failpoint.sexm";
        {
            std::ostringstream os(std::ios::binary);
            core::saveModelV4(os, drill_comp.records,
                              drill_comp.dense);
            std::ofstream f(victim_path,
                            std::ios::binary | std::ios::trunc);
            f << os.str();
        }
        const serve::NetFactory drill_factory = [] {
            return makeDrillNet(5);
        };
        const auto openVictim = [&] {
            return serve::makeModelEntry(
                std::make_shared<core::StreamedModel>(victim_path),
                drill_factory, drill_se, apply_opts);
        };

        // Per-input resident references from a plain session (no
        // engine, no stream — the reference path carries no
        // failpoints the drill arms).
        const int offered = 24;
        std::vector<Tensor> resident_ref;
        {
            serve::SessionOptions so;
            so.weightSource = weight_source;
            so.denseState = dense;
            serve::InferenceSession session(makeSubject(), records,
                                            se_opts, apply_opts, so);
            for (int i = 0; i < offered; ++i) {
                const Tensor &x = traffic[(size_t)i % traffic.size()];
                resident_ref.push_back(session.forward(x.reshaped(
                    {1, x.dim(0), x.dim(1), x.dim(2)})));
            }
        }

        // Stand the front up. A fault injected into the eager
        // resident build or the victim's open only advances the
        // policy counters — retry until one attempt gets through.
        serve::ServeOptions fopts;
        fopts.threads = 2;
        fopts.maxBatch = 8;
        fopts.reloadFallback = true;
        std::unique_ptr<serve::ServeFront> front;
        int standup_retries = 0;
        while (!front && standup_retries < 64) {
            try {
                serve::ModelRegistry reg;
                reg.add("resident",
                        serve::ModelEntry{records,
                                          [] { return makeSubject(); },
                                          se_opts, apply_opts, dense,
                                          weight_source});
                reg.add("victim", openVictim());
                front = std::make_unique<serve::ServeFront>(reg,
                                                            fopts);
            } catch (const std::exception &) {
                ++standup_retries;
            }
        }

        int resident_ok = 0, resident_fault = 0;
        int resident_mismatch = 0;
        int victim_ok = 0, victim_fault = 0, victim_mismatch = 0;
        int quarantines = 0, recoveries = 0, churn_failures = 0;
        bool recovered = false, probe_identical = false;
        uint64_t fallbacks = 0, generation = 0;
        if (front) {
            Tensor victim_ref;  // first successful victim response
            const auto checkVictim = [&](const Tensor &y) {
                if (victim_ref.size() == 0)
                    victim_ref = y;
                else if (y.size() != victim_ref.size() ||
                         std::memcmp(y.data(), victim_ref.data(),
                                     (size_t)y.size() *
                                         sizeof(float)) != 0)
                    ++victim_mismatch;
            };

            // Phase 1: mixed traffic. The bystander must answer every
            // request bit-identically; the victim may fault but never
            // answer wrong, and a quarantine must be curable by
            // reloadModel() while traffic keeps flowing.
            for (int i = 0; i < offered; ++i) {
                const Tensor &x = traffic[(size_t)i % traffic.size()];
                try {
                    Tensor y = front->submit("resident", x).get();
                    const Tensor &ref = resident_ref[(size_t)i];
                    if (y.size() != ref.size() ||
                        std::memcmp(y.data(), ref.data(),
                                    (size_t)y.size() *
                                        sizeof(float)) != 0)
                        ++resident_mismatch;
                    else
                        ++resident_ok;
                } catch (const std::exception &) {
                    ++resident_fault;
                }
                // The victim always gets the same probe input so its
                // responses are comparable across generations.
                try {
                    Tensor y =
                        front->submit("victim", traffic[0]).get();
                    checkVictim(y);
                    ++victim_ok;
                } catch (const std::exception &) {
                    ++victim_fault;
                    if (front->health("victim") ==
                        serve::ModelHealth::Unhealthy) {
                        ++quarantines;
                        try {
                            front->reloadModel("victim",
                                               openVictim());
                            ++recoveries;
                        } catch (const std::exception &) {
                        }
                    }
                }
            }

            // Phase 2: reload churn. Failed reloads must fall back to
            // the live generation (reloadFallback) — after every
            // attempt, good or bad, the victim still answers.
            for (int r = 0; r < 16; ++r) {
                try {
                    front->reloadModel("victim", openVictim());
                } catch (const std::exception &) {
                    ++churn_failures;
                }
                try {
                    Tensor y =
                        front->submit("victim", traffic[0]).get();
                    checkVictim(y);
                    ++victim_ok;
                } catch (const std::exception &) {
                    ++victim_fault;
                }
            }
            fallbacks = front->reloadFallbacks("victim");

            // Phase 3: final recovery — a quarantined victim must be
            // nursed back to Healthy by reloading (counters advance
            // every attempt, so a non-1in1 policy lets one through).
            for (int r = 0;
                 r < 64 && front->health("victim") !=
                               serve::ModelHealth::Healthy;
                 ++r) {
                try {
                    front->reloadModel("victim", openVictim());
                } catch (const std::exception &) {
                }
            }
            recovered = front->health("victim") ==
                        serve::ModelHealth::Healthy;
            if (recovered) {
                try {
                    Tensor y =
                        front->submit("victim", traffic[0]).get();
                    probe_identical =
                        victim_ref.size() == y.size() &&
                        std::memcmp(y.data(), victim_ref.data(),
                                    (size_t)y.size() *
                                        sizeof(float)) == 0;
                } catch (const std::exception &) {
                }
            }
            generation = front->generation("victim");
            front->stop();
        }
        std::remove(victim_path);

        const bool drill_pass =
            front != nullptr && resident_ok == offered &&
            resident_fault == 0 && resident_mismatch == 0 &&
            victim_mismatch == 0 && recovered && probe_identical;
        std::printf(
            "  \"failpoint_drill\": {\"armed\": [%s], "
            "\"offered\": %d, "
            "\"resident\": {\"answered\": %d, \"faulted\": %d, "
            "\"mismatched\": %d}, "
            "\"victim\": {\"answered\": %d, \"faulted\": %d, "
            "\"mismatched\": %d, \"quarantines\": %d, "
            "\"recoveries\": %d, \"reload_failures\": %d, "
            "\"fallbacks\": %" PRIu64 ", "
            "\"generation\": %" PRIu64 ", "
            "\"recovered\": %s, \"probe_identical\": %s}, "
            "\"pass\": %s}\n",
            armed_json.c_str(), offered, resident_ok, resident_fault,
            resident_mismatch, victim_ok, victim_fault,
            victim_mismatch, quarantines, recoveries, churn_failures,
            fallbacks, generation, bench::jsonBool(recovered),
            bench::jsonBool(probe_identical),
            bench::jsonBool(drill_pass));
        std::printf("}\n");
        return drill_pass ? 0 : 1;
    }

    // --- model file: v2 vs v3 size on the same bundle ---------------
    // v3 packs Ce codes two per byte with zero rows elided AND ships
    // the dense residual (BN/bias/undecomposed state) — it must still
    // land well under the records-only v2 bytes (the --smoke gate
    // holds it to <= 60%).
    double v3_over_v2;
    bool v3_reload_ok;
    {
        std::ostringstream v2os(std::ios::binary),
            v3os(std::ios::binary);
        core::saveModel(v2os, *records);
        core::saveModelV3(v3os, *records, *dense);
        const size_t v2_bytes = v2os.str().size();
        const size_t v3_bytes = v3os.str().size();
        v3_over_v2 = (double)v3_bytes / (double)v2_bytes;
        std::istringstream reload_is(v3os.str(), std::ios::binary);
        const core::ModelBundle reloaded =
            core::loadModelBundle(reload_is);
        v3_reload_ok = reloaded.records.size() == records->size() &&
                       reloaded.dense.size() == dense->size();
        std::printf(
            "  \"model_file\": {\"save_format_env\": %d, "
            "\"v2_bytes\": %zu, \"v3_bytes\": %zu, "
            "\"v3_over_v2\": %.3f, \"dense_tensors\": %zu, "
            "\"v3_reload_ok\": %s},\n",
            run_opts.modelFormat, v2_bytes, v3_bytes, v3_over_v2,
            dense->size(), bench::jsonBool(v3_reload_ok));
    }

    // --- model file v4: adaptive widths + int8 basis, streamed ------
    // The same bundle with bases pinned to the int8 grid at compress
    // time, shipped as v3 and v4: adaptive per-column Ce widths plus
    // the 4x-smaller basis must beat v3's fixed nibbles even after
    // the directory overhead (--smoke holds v4 <= 90% of v3).
    // Cold start compares a lazy mmap open + first-piece decode
    // against an eager decode-everything open.
    double v4_over_v3;
    bool v4_ok;
    double v4_lazy_cold_ms, v4_eager_cold_ms;
    bool v4_lazy_faster;
    {
        std::vector<core::SeLayerRecord> qrecords = *records;
        core::quantizeBasisAtCompress(qrecords);
        std::ostringstream v3os(std::ios::binary),
            v4os(std::ios::binary);
        core::saveModelV3(v3os, qrecords, *dense);
        core::saveModelV4(v4os, qrecords, *dense);
        const size_t v3_bytes = v3os.str().size();
        const size_t v4_bytes = v4os.str().size();
        v4_over_v3 = (double)v4_bytes / (double)v3_bytes;

        // Reload bit-identity: the eager loader must hand back the
        // quantized records exactly.
        std::istringstream reload_is(v4os.str(), std::ios::binary);
        const core::ModelBundle rb =
            core::loadModelBundle(reload_is);
        bool identical = rb.records.size() == qrecords.size();
        for (size_t r = 0; identical && r < qrecords.size(); ++r) {
            identical = rb.records[r].pieces.size() ==
                        qrecords[r].pieces.size();
            for (size_t p = 0;
                 identical && p < qrecords[r].pieces.size(); ++p) {
                const core::SeMatrix &a = qrecords[r].pieces[p];
                const core::SeMatrix &b = rb.records[r].pieces[p];
                identical =
                    a.ce.size() == b.ce.size() &&
                    a.basis.size() == b.basis.size() &&
                    !std::memcmp(a.ce.data(), b.ce.data(),
                                 (size_t)a.ce.size() *
                                     sizeof(float)) &&
                    !std::memcmp(a.basis.data(), b.basis.data(),
                                 (size_t)a.basis.size() *
                                     sizeof(float));
            }
        }

        const char *path = "/tmp/se_bench_serve_v4.sexm";
        {
            std::ofstream f(path,
                            std::ios::binary | std::ios::trunc);
            f << v4os.str();
        }
        // Lazy cold start: open (O(meta)) + decode of the one piece
        // a first response touches — every other piece stays cold.
        size_t lazy_decoded, lazy_total;
        {
            const auto t0 = SteadyClock::now();
            core::StreamedModel sm(path);
            sm.piece(0);
            v4_lazy_cold_ms = msSince(t0);
            lazy_decoded = sm.decodedPieces();
            lazy_total = sm.pieceCount();
        }
        {
            const auto t0 = SteadyClock::now();
            core::StreamLoaderOptions eager_opts;
            eager_opts.eager = true;
            core::StreamedModel sm(path, eager_opts);
            v4_eager_cold_ms = msSince(t0);
        }
        std::remove(path);
        const bool lazy_partial =
            lazy_decoded == 1 && lazy_total > 1;
        v4_ok = identical && lazy_partial;
        v4_lazy_faster = v4_lazy_cold_ms < v4_eager_cold_ms;

        std::printf(
            "  \"model_file_v4\": {\"v3_bytes\": %zu, "
            "\"v4_bytes\": %zu, \"v4_over_v3\": %.3f, "
            "\"pieces\": %zu, \"lazy_decoded_pieces\": %zu, "
            "\"lazy_cold_start_ms\": %.3f, "
            "\"eager_cold_start_ms\": %.3f, "
            "\"lazy_faster\": %s, \"v4_reload_ok\": %s},\n",
            v3_bytes, v4_bytes, v4_over_v3, lazy_total,
            lazy_decoded, v4_lazy_cold_ms, v4_eager_cold_ms,
            bench::jsonBool(v4_lazy_faster),
            bench::jsonBool(v4_ok));
    }

    // --- rebuild engine: cold vs warm ------------------------------
    double cold_ms, warm_ms;
    {
        const int reps = 20;
        serve::SessionOptions cold_opts;
        cold_opts.rebuildPerCall = true;
        cold_opts.cacheRebuiltWeights = false;
        serve::InferenceSession cold(makeSubject(), records, se_opts,
                                     apply_opts, cold_opts);
        Tensor probe = traffic[0].reshaped(
            {1, traffic[0].dim(0), traffic[0].dim(1),
             traffic[0].dim(2)});
        for (int r = 0; r < reps; ++r)
            cold.forward(probe);
        cold_ms = cold.stats().rebuildMs / reps;

        serve::SessionOptions warm_opts;
        warm_opts.rebuildPerCall = true;
        warm_opts.cacheRebuiltWeights = true;
        serve::InferenceSession warm(makeSubject(), records, se_opts,
                                     apply_opts, warm_opts);
        warm.forward(probe);  // populate the rebuilt-weight cache
        const double after_warmup = warm.stats().rebuildMs;
        for (int r = 0; r < reps; ++r)
            warm.forward(probe);
        warm_ms = (warm.stats().rebuildMs - after_warmup) / reps;

        std::printf("  \"rebuild\": {\"layers\": %zu, "
                    "\"cold_ms\": %.3f, \"warm_ms\": %.3f, "
                    "\"warm_speedup\": %.2f},\n",
                    cold.rebuildableLayers(), cold_ms, warm_ms,
                    cold_ms / warm_ms);
    }

    const auto factory = [] { return makeSubject(); };

    // --- per-call mode: serial one-at-a-time reference -------------
    // Dense weights are transient (the accelerator operating point):
    // every request pays a full Ce*B rebuild before its forward.
    double serial_percall_rps;
    uint64_t serial_digest = kFnvOffsetBasis;
    {
        serve::SessionOptions so;
        so.rebuildPerCall = true;
        so.cacheRebuiltWeights = false;
        so.weightSource = weight_source;
        so.denseState = dense;
        serve::InferenceSession session(makeSubject(), records,
                                        se_opts, apply_opts, so);
        session.forward(traffic[0].reshaped(
            {1, traffic[0].dim(0), traffic[0].dim(1),
             traffic[0].dim(2)}));  // warmup allocation paths
        auto t0 = Clock::now();
        for (const Tensor &x : traffic) {
            Tensor y = session.forward(x.reshaped(
                {1, x.dim(0), x.dim(1), x.dim(2)}));
            // Engine responses come batch-dim-stripped; hash the
            // same 1-D view so the digests are comparable.
            serial_digest =
                hashTensor(y.reshaped({y.size()}), serial_digest);
        }
        const double ms = msSince(t0);
        serial_percall_rps = 1000.0 * requests / ms;
        std::printf("  \"serial_per_call\": {\"ms\": %.2f, "
                    "\"rps\": %.1f},\n",
                    ms, serial_percall_rps);
    }

    // --- per-call mode: micro-batching engine ----------------------
    // One rebuild per batch instead of one per request; with threads,
    // batches also run concurrently.
    std::printf("  \"engine_per_call\": [\n");
    double best_percall_rps = 0.0;
    bool digests_match = true;
    {
        std::vector<int> thread_counts{1};
        if (max_threads > 1)
            thread_counts.push_back(max_threads);
        for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
            serve::ServeOptions opts;
            opts.threads = thread_counts[ti];
            opts.maxBatch = 16;
            // SE_PIPELINE flips this section's engines to the
            // stage-decoupled loop; responses must stay identical.
            opts.pipeline = run_opts.servePipeline;
            opts.session.rebuildPerCall = true;
            opts.session.cacheRebuiltWeights = false;
            opts.session.weightSource = weight_source;
            opts.session.denseState = dense;
            opts.session.pipelineRebuild = run_opts.servePipeline;
            serve::ServeEngine engine(records, factory, se_opts,
                                      apply_opts, opts);
            auto t0 = Clock::now();
            std::vector<std::future<Tensor>> futs;
            futs.reserve(traffic.size());
            for (const Tensor &x : traffic)
                futs.push_back(engine.submit(x));
            engine.drain();
            uint64_t digest = kFnvOffsetBasis;
            for (auto &f : futs)
                digest = hashTensor(f.get(), digest);
            const double ms = msSince(t0);
            const double rps = 1000.0 * requests / ms;
            if (rps > best_percall_rps)
                best_percall_rps = rps;
            digests_match =
                digests_match && digest == serial_digest;
            auto st = engine.stats();
            std::printf(
                "    {\"threads\": %d, \"max_batch\": 16, "
                "\"pipeline\": %s, "
                "\"ms\": %.2f, \"rps\": %.1f, "
                "\"mean_batch\": %.1f, \"p50_ms\": %.2f, "
                "\"p95_ms\": %.2f, \"p99_ms\": %.2f, "
                "\"bit_identical\": %s}%s\n",
                thread_counts[ti],
                bench::jsonBool(run_opts.servePipeline), ms, rps,
                st.meanBatchSize, st.p50Ms, st.p95Ms, st.p99Ms,
                bench::jsonBool(digest == serial_digest),
                bench::jsonSep(ti, thread_counts.size()));
        }
    }
    std::printf("  ],\n");
    std::printf("  \"batched_speedup_vs_serial\": %.2f,\n",
                best_percall_rps / serial_percall_rps);

    // --- cached-weight mode ----------------------------------------
    // Weights persist after the first rebuild; gains now come from
    // batching overheads and (on multi-core hosts) replica fan-out.
    {
        serve::InferenceSession session(makeSubject(), records,
                                        se_opts, apply_opts);
        Tensor warm0 = traffic[0].reshaped(
            {1, traffic[0].dim(0), traffic[0].dim(1),
             traffic[0].dim(2)});
        session.forward(warm0);
        auto t0 = Clock::now();
        for (const Tensor &x : traffic)
            session.forward(x.reshaped(
                {1, x.dim(0), x.dim(1), x.dim(2)}));
        const double serial_ms = msSince(t0);

        serve::ServeOptions opts;
        opts.threads = max_threads;
        opts.maxBatch = 16;
        serve::ServeEngine engine(records, factory, se_opts,
                                  apply_opts, opts);
        // Warm the replicas' weight rebuilds out of the timed region.
        for (int i = 0; i < max_threads * 2; ++i)
            engine.submit(traffic[(size_t)i % traffic.size()]);
        engine.drain();
        t0 = Clock::now();
        std::vector<std::future<Tensor>> futs;
        for (const Tensor &x : traffic)
            futs.push_back(engine.submit(x));
        engine.drain();
        for (auto &f : futs)
            f.get();
        const double batched_ms = msSince(t0);
        std::printf(
            "  \"cached_mode\": {\"serial_ms\": %.2f, "
            "\"serial_rps\": %.1f, \"batched_ms\": %.2f, "
            "\"batched_rps\": %.1f},\n",
            serial_ms, 1000.0 * requests / serial_ms, batched_ms,
            1000.0 * requests / batched_ms);
    }

    // --- conv lowering: end-to-end serving speedup ------------------
    // The same cached-weight serial serving loop under the legacy
    // conv loops vs the im2col+GEMM kernel layer. Responses must be
    // bit-identical (the lowering preserves the naive rounding
    // sequence); the ratio is the end-to-end win the kernel layer
    // buys this serving workload.
    bool conv_identical;
    {
        const int probe_requests =
            std::min<int>(requests, 48);
        const kernels::ConvImpl impls[2] = {
            kernels::ConvImpl::Naive, kernels::ConvImpl::Im2colGemm};
        double impl_ms[2];
        uint64_t impl_digest[2];
        for (int v = 0; v < 2; ++v) {
            kernels::setDefaultConvImpl(impls[v]);
            serve::InferenceSession session(makeSubject(), records,
                                            se_opts, apply_opts);
            Tensor warm0 = traffic[0].reshaped(
                {1, traffic[0].dim(0), traffic[0].dim(1),
                 traffic[0].dim(2)});
            session.forward(warm0);
            uint64_t digest = kFnvOffsetBasis;
            auto t0 = Clock::now();
            for (int i = 0; i < probe_requests; ++i) {
                const Tensor &x = traffic[(size_t)i];
                Tensor y = session.forward(x.reshaped(
                    {1, x.dim(0), x.dim(1), x.dim(2)}));
                digest =
                    hashTensor(y.reshaped({y.size()}), digest);
            }
            impl_ms[v] = msSince(t0);
            impl_digest[v] = digest;
        }
        kernels::setDefaultConvImpl(kernels::convImplFromEnv());
        conv_identical = impl_digest[0] == impl_digest[1];
        std::printf(
            "  \"conv_impl\": {\"requests\": %d, "
            "\"naive_ms\": %.2f, \"naive_rps\": %.1f, "
            "\"gemm_ms\": %.2f, \"gemm_rps\": %.1f, "
            "\"gemm_speedup\": %.2f, \"bit_identical\": %s},\n",
            probe_requests, impl_ms[0],
            1000.0 * probe_requests / impl_ms[0], impl_ms[1],
            1000.0 * probe_requests / impl_ms[1],
            impl_ms[0] / impl_ms[1],
            bench::jsonBool(conv_identical));
    }

    // --- quantized serving: CeDirect vs Dense A/B -------------------
    // One bundle, two ServeFront tenants — the float engine and the
    // 4-bit-code engine. Responses must be bit-identical (decode
    // order is preserved end to end: nibble decode is exact and the
    // panel split keeps every element's accumulation order, so no
    // tolerance applies); the numbers show what serving at the
    // stored datapath width costs, including the CeDirect cold-start
    // (pack + first rebuild-all).
    bool ce_identical;
    {
        const int per_mode = std::min(requests, 48);

        // Cold-start: one-time pack cost plus the first cold
        // rebuild-all, per weight source.
        double mode_rebuild_ms[2], mode_pack_ms[2];
        for (int v = 0; v < 2; ++v) {
            serve::SessionOptions so;
            so.weightSource = v ? serve::WeightSource::CeDirect
                                : serve::WeightSource::Dense;
            so.denseState = dense;
            so.cacheRebuiltWeights = false;
            serve::InferenceSession session(makeSubject(), records,
                                            se_opts, apply_opts, so);
            Tensor probe = traffic[0].reshaped(
                {1, traffic[0].dim(0), traffic[0].dim(1),
                 traffic[0].dim(2)});
            session.forward(probe);  // the cold rebuild-all
            mode_rebuild_ms[v] = session.stats().rebuildMs;
            mode_pack_ms[v] = session.stats().packMs;
        }

        serve::ModelRegistry reg;
        serve::ModelEntry dense_entry{records, factory, se_opts,
                                      apply_opts, dense,
                                      serve::WeightSource::Dense};
        serve::ModelEntry ce_entry = dense_entry;
        ce_entry.weightSource = serve::WeightSource::CeDirect;
        reg.add("dense", dense_entry);
        reg.add("ce4", ce_entry);
        serve::ServeOptions fopts;
        fopts.threads = max_threads;
        fopts.maxBatch = 16;
        fopts.session.rebuildPerCall = true;  // rebuild every batch:
        fopts.session.cacheRebuiltWeights = false;  // decode visible
        serve::ServeFront front(reg, fopts);

        auto t0 = Clock::now();
        std::vector<std::future<Tensor>> fd, fc;
        for (int i = 0; i < per_mode; ++i) {
            const Tensor &x = traffic[(size_t)i % traffic.size()];
            fd.push_back(front.submit("dense", x));
            fc.push_back(front.submit("ce4", x));
        }
        front.drain();
        const double ms = msSince(t0);
        uint64_t dense_digest = kFnvOffsetBasis;
        uint64_t ce_digest = kFnvOffsetBasis;
        for (auto &f : fd)
            dense_digest = hashTensor(f.get(), dense_digest);
        for (auto &f : fc)
            ce_digest = hashTensor(f.get(), ce_digest);
        ce_identical = ce_digest == dense_digest;
        const auto ds = front.stats("dense");
        const auto cs = front.stats("ce4");
        std::printf(
            "  \"ce_direct\": {\"requests_per_mode\": %d, "
            "\"ms\": %.2f, \"rps\": %.1f, "
            "\"dense_cold_rebuild_ms\": %.3f, "
            "\"ce_cold_rebuild_ms\": %.3f, \"ce_pack_ms\": %.3f, "
            "\"dense\": {\"p50_ms\": %.2f, \"p99_ms\": %.2f, "
            "\"mean_latency_ms\": %.2f}, "
            "\"ce\": {\"p50_ms\": %.2f, \"p99_ms\": %.2f, "
            "\"mean_latency_ms\": %.2f}, "
            "\"bit_identical\": %s},\n",
            per_mode, ms, 1000.0 * 2 * per_mode / ms,
            mode_rebuild_ms[0], mode_rebuild_ms[1], mode_pack_ms[1],
            ds.p50Ms, ds.p99Ms, ds.meanLatencyMs, cs.p50Ms, cs.p99Ms,
            cs.meanLatencyMs, bench::jsonBool(ce_identical));
    }

    // --- multi-model serving: two tenants behind one front ---------
    // Each model's responses must be bit-identical to its own
    // single-model session — tenants never bleed into each other.
    // Second tenant bundle, shared by the multi-model and hot-reload
    // sections.
    auto second = makeSecondSubject();
    auto compressed2 = core::compressToRecords(
        *second, se_opts, apply_opts,
        [&pipe](const Tensor &w, const core::SeOptions &o) {
            return pipe.cache().getOrCompute(w, o);
        });
    auto records2 =
        std::make_shared<std::vector<core::SeLayerRecord>>(
            std::move(compressed2.records));

    bool multi_model_identical;
    {
        // Per-model reference digests from direct sessions.
        uint64_t ref_digest[2] = {kFnvOffsetBasis, kFnvOffsetBasis};
        const int per_model = std::min(requests, 48);
        {
            serve::InferenceSession sa(makeSubject(), records,
                                       se_opts, apply_opts);
            serve::InferenceSession sb(makeSecondSubject(), records2,
                                       se_opts, apply_opts);
            for (int i = 0; i < per_model; ++i) {
                const Tensor &x = traffic[(size_t)i % traffic.size()];
                Tensor xa = x.reshaped(
                    {1, x.dim(0), x.dim(1), x.dim(2)});
                Tensor ya = sa.forward(xa);
                ref_digest[0] = hashTensor(
                    ya.reshaped({ya.size()}), ref_digest[0]);
                Tensor yb = sb.forward(xa);
                ref_digest[1] = hashTensor(
                    yb.reshaped({yb.size()}), ref_digest[1]);
            }
        }

        serve::ModelRegistry reg;
        // The tenants honor SE_SERVE_WEIGHT_SOURCE like the rest of
        // the serving sections (ModelEntry::weightSource is
        // authoritative per engine); their responses must match the
        // Dense reference sessions above either way.
        reg.add("vgg19", {records, [] { return makeSubject(); },
                          se_opts, apply_opts, nullptr,
                          weight_source});
        reg.add("vgg11",
                {records2, [] { return makeSecondSubject(); },
                 se_opts, apply_opts, nullptr, weight_source});
        serve::ServeOptions fopts;
        fopts.threads = max_threads;
        fopts.maxBatch = 16;
        serve::ServeFront front(reg, fopts);

        auto t0 = Clock::now();
        std::vector<std::future<Tensor>> fa, fb;
        for (int i = 0; i < per_model; ++i) {
            const Tensor &x = traffic[(size_t)i % traffic.size()];
            fa.push_back(front.submit("vgg19", x));
            fb.push_back(front.submit("vgg11", x));
        }
        front.drain();
        const double ms = msSince(t0);
        uint64_t got_digest[2] = {kFnvOffsetBasis, kFnvOffsetBasis};
        for (auto &f : fa)
            got_digest[0] = hashTensor(f.get(), got_digest[0]);
        for (auto &f : fb)
            got_digest[1] = hashTensor(f.get(), got_digest[1]);
        multi_model_identical = got_digest[0] == ref_digest[0] &&
                                got_digest[1] == ref_digest[1];
        const auto agg = front.aggregateStats();
        std::printf(
            "  \"multi_model\": {\"models\": 2, \"replicas\": %d, "
            "\"requests_per_model\": %d, \"ms\": %.2f, "
            "\"rps\": %.1f, \"mean_batch\": %.1f, "
            "\"bit_identical_per_model\": %s},\n",
            front.replicaCount(), per_model, ms,
            1000.0 * 2 * per_model / ms, agg.meanBatchSize,
            bench::jsonBool(multi_model_identical));
    }

    // --- hot reload: generation flips under in-flight traffic ------
    // reloadModel() flips one tenant between the VGG19 and VGG11
    // bundles 50 times while a traffic thread keeps submitting. Zero
    // requests may drop (a submit that races the swap is retried on
    // the new generation), every response must be bit-identical to
    // one of the two generations' serial references (a response can
    // never blend generations), and the generation counter must land
    // at flips + 1 (--smoke gates all three).
    bool hot_reload_ok;
    {
        const int flips = 50, ref_n = 8;
        std::vector<Tensor> refA, refB;
        {
            serve::InferenceSession sa(makeSubject(), records,
                                       se_opts, apply_opts);
            serve::InferenceSession sb(makeSecondSubject(), records2,
                                       se_opts, apply_opts);
            for (int i = 0; i < ref_n; ++i) {
                const Tensor &x = traffic[(size_t)i];
                Tensor xb = x.reshaped(
                    {1, x.dim(0), x.dim(1), x.dim(2)});
                refA.push_back(sa.forward(xb));
                refB.push_back(sb.forward(xb));
            }
        }

        serve::ModelRegistry reg;
        reg.add("hot", {records, factory, se_opts, apply_opts,
                        nullptr});
        serve::ServeOptions opts;
        opts.threads = 2;
        opts.maxBatch = 8;
        serve::ServeFront front(reg, opts);

        std::atomic<bool> done{false};
        std::atomic<int> answered{0}, dropped{0}, blended{0};
        std::thread traffic_thread([&] {
            int i = 0;
            while (!done.load()) {
                const size_t k = (size_t)(i++ % ref_n);
                try {
                    Tensor y = front.submit("hot", traffic[k]).get();
                    const Tensor &a = refA[k], &b = refB[k];
                    const bool is_a =
                        y.size() == a.size() &&
                        !std::memcmp(y.data(), a.data(),
                                     (size_t)y.size() *
                                         sizeof(float));
                    const bool is_b =
                        y.size() == b.size() &&
                        !std::memcmp(y.data(), b.data(),
                                     (size_t)y.size() *
                                         sizeof(float));
                    if (!is_a && !is_b)
                        ++blended;
                    ++answered;
                } catch (const serve::EngineStoppedError &) {
                    ++dropped;  // a swap escape = a dropped request
                }
            }
        });

        auto t0 = Clock::now();
        for (int flip = 0; flip < flips; ++flip) {
            serve::ModelEntry next;
            if (flip % 2 == 0) {
                next = serve::ModelEntry{
                    records2, [] { return makeSecondSubject(); },
                    se_opts, apply_opts, nullptr};
            } else {
                next = serve::ModelEntry{records, factory, se_opts,
                                         apply_opts, nullptr};
            }
            front.reloadModel("hot", std::move(next));
        }
        const double ms = msSince(t0);
        done.store(true);
        traffic_thread.join();
        front.drain();

        const uint64_t gen = front.generation("hot");
        hot_reload_ok =
            dropped.load() == 0 && blended.load() == 0 &&
            answered.load() > 0 && gen == (uint64_t)(flips + 1) &&
            front.health("hot") == serve::ModelHealth::Healthy;
        std::printf(
            "  \"hot_reload\": {\"flips\": %d, \"ms\": %.2f, "
            "\"ms_per_reload\": %.2f, \"answered\": %d, "
            "\"dropped\": %d, \"blended\": %d, "
            "\"generation\": %" PRIu64 ", \"zero_downtime\": %s},\n",
            flips, ms, ms / flips, answered.load(), dropped.load(),
            blended.load(), gen, bench::jsonBool(hot_reload_ok));
        front.stop();
    }

    // --- admission control: queueCap shed rate under a burst -------
    // Conservation gate: every offered request either completes or
    // sheds with AdmissionError — never queues forever, never hangs.
    bool shed_accounted;
    {
        const size_t cap = run_opts.serveQueueCap > 0
                               ? run_opts.serveQueueCap
                               : 8;
        serve::ServeOptions opts;
        opts.threads = 1;
        opts.maxBatch = 4;
        opts.queueCap = cap;
        serve::ServeEngine engine(records, factory, se_opts,
                                  apply_opts, opts);
        int shed = 0;
        std::vector<std::future<Tensor>> futs;
        for (const Tensor &x : traffic) {
            try {
                futs.push_back(engine.submit(x));
            } catch (const serve::AdmissionError &) {
                ++shed;
            }
        }
        engine.drain();
        int completed = 0;
        for (auto &f : futs) {
            f.get();
            ++completed;
        }
        const auto st = engine.stats();
        shed_accounted =
            completed + shed == requests &&
            st.requests == (uint64_t)completed &&
            st.shed == (uint64_t)shed && st.failed == 0;
        std::printf(
            "  \"admission\": {\"queue_cap\": %zu, \"offered\": %d, "
            "\"completed\": %d, \"shed\": %d, \"shed_rate\": %.2f, "
            "\"all_accounted\": %s},\n",
            cap, requests, completed, shed,
            (double)shed / (double)requests,
            bench::jsonBool(shed_accounted));
    }

    // --- flush policy: Deadline vs Full p99 at equal offered load --
    // Paced arrivals (one request every pace_ms) against maxBatch 16:
    // under Full the first request of every batch waits for 15 more
    // arrivals (~15*pace_ms); under Deadline its wait is capped at
    // the deadline. Equal load, structurally lower tail latency.
    double full_p99, deadline_p99;
    {
        const double pace_ms = 2.0;
        const double deadline_ms = run_opts.serveDeadlineMs > 0.0
                                       ? run_opts.serveDeadlineMs
                                       : 4.0;
        const int paced_n = std::min(requests, 48);
        const serve::FlushPolicy policies[2] = {
            serve::FlushPolicy::Full, serve::FlushPolicy::Deadline};
        double p99[2], p50[2], mean_batch[2];
        for (int v = 0; v < 2; ++v) {
            serve::ServeOptions opts;
            opts.threads = 1;
            opts.maxBatch = 16;
            opts.flush = policies[v];
            opts.flushDeadlineMs = deadline_ms;
            serve::ServeEngine engine(records, factory, se_opts,
                                      apply_opts, opts);
            std::vector<std::future<Tensor>> futs;
            futs.reserve((size_t)paced_n);
            for (int i = 0; i < paced_n; ++i) {
                futs.push_back(engine.submit(
                    traffic[(size_t)i % traffic.size()]));
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        pace_ms));
            }
            engine.drain();
            for (auto &f : futs)
                f.get();
            const auto st = engine.stats();
            p99[v] = st.p99Ms;
            p50[v] = st.p50Ms;
            mean_batch[v] = st.meanBatchSize;
        }
        full_p99 = p99[0];
        deadline_p99 = p99[1];
        std::printf(
            "  \"flush_policy\": {\"offered\": %d, "
            "\"pace_ms\": %.1f, \"deadline_ms\": %.1f, "
            "\"full\": {\"p50_ms\": %.2f, \"p99_ms\": %.2f, "
            "\"mean_batch\": %.1f}, "
            "\"deadline\": {\"p50_ms\": %.2f, \"p99_ms\": %.2f, "
            "\"mean_batch\": %.1f}, "
            "\"deadline_p99_speedup\": %.2f},\n",
            paced_n, pace_ms, deadline_ms, p50[0], p99[0],
            mean_batch[0], p50[1], p99[1], mean_batch[1],
            full_p99 / deadline_p99);
    }

    // --- pipelined streaming execution -----------------------------
    // The v4 bundle served CeDirect at three rungs of the same work:
    // the serial one-request-at-a-time loop (every request pays a
    // full inline rebuild), the stage-decoupled engine with
    // everything off, and with everything on — prefetch lane decoding
    // pieces ahead of the consumer, the session rebuilding layer
    // group g+1 while group g's GEMMs run, and the engine's
    // admit -> form -> execute -> complete stages overlapped.
    // Responses must be bit-identical on all three rungs; --smoke
    // additionally gates pipelined >= 1.15x the serial loop and the
    // rebuild stall shrinking against the serial-stage engine.
    bool pipe_identical, prefetch_clean;
    double pipe_speedup, pipe_stall_ms[2];
    double stream_stall_inline_ms, stream_stall_lane_ms;
    {
        const int pipe_n = std::min(requests, 64);
        std::vector<core::SeLayerRecord> qrecords = *records;
        core::quantizeBasisAtCompress(qrecords);
        const char *path = "/tmp/se_bench_serve_pipe.sexm";
        {
            std::ostringstream os(std::ios::binary);
            core::saveModelV4(os, qrecords, *dense);
            std::ofstream f(path,
                            std::ios::binary | std::ios::trunc);
            f << os.str();
        }
        const size_t depth =
            run_opts.prefetchDepth > 0 ? run_opts.prefetchDepth : 3;

        // Piece-decode stall: inline (every piece decoded on the
        // consumer's clock) vs a lane with a head start (every touch
        // a hit — the success metric's "decode-stall ~0").
        uint64_t lane_hits;
        size_t pieces;
        {
            core::StreamedModel inline_sm(path);
            inline_sm.records();
            stream_stall_inline_ms =
                inline_sm.streamStats().decodeStallMs;
            pieces = inline_sm.pieceCount();

            core::StreamLoaderOptions lo;
            lo.prefetchDepth = 4096;  // full lookahead
            core::StreamedModel lane_sm(path, lo);
            lane_sm.drainPrefetch();  // the head start
            lane_sm.records();
            stream_stall_lane_ms =
                lane_sm.streamStats().decodeStallMs;
            lane_hits = lane_sm.streamStats().prefetchHits;
        }

        // Rung 1: serial one-at-a-time loop on the streamed bundle.
        double serial_loop_rps;
        uint64_t pipe_digest[3];
        {
            core::StreamedModel sm(path);
            serve::SessionOptions so;
            so.rebuildPerCall = true;
            so.cacheRebuiltWeights = false;
            so.weightSource = serve::WeightSource::CeDirect;
            so.denseState = std::make_shared<
                const std::vector<core::DenseTensor>>(sm.dense());
            serve::InferenceSession session(makeSubject(),
                                            sm.records(), se_opts,
                                            apply_opts, so);
            session.forward(traffic[0].reshaped(
                {1, traffic[0].dim(0), traffic[0].dim(1),
                 traffic[0].dim(2)}));  // warmup allocation paths
            uint64_t digest = kFnvOffsetBasis;
            auto t0 = Clock::now();
            for (int i = 0; i < pipe_n; ++i) {
                const Tensor &x = traffic[(size_t)i % traffic.size()];
                Tensor y = session.forward(x.reshaped(
                    {1, x.dim(0), x.dim(1), x.dim(2)}));
                digest =
                    hashTensor(y.reshaped({y.size()}), digest);
            }
            const double ms = msSince(t0);
            serial_loop_rps = 1000.0 * pipe_n / ms;
            pipe_digest[0] = digest;
        }

        // Rungs 2 and 3: the engine with SE_PIPELINE off, then on.
        double mode_rps[2], mode_occ[2];
        double mode_form[2], mode_exec[2], mode_complete[2];
        uint64_t mode_overlapped[2];
        uint64_t mode_hits[2], mode_misses[2], mode_errors[2];
        for (int v = 0; v < 2; ++v) {
            const bool on = v == 1;
            core::StreamLoaderOptions lo;
            lo.prefetchDepth = on ? depth : 0;
            core::StreamedModel sm(path, lo);
            serve::ServeOptions opts;
            opts.pipeline = on;
            opts.threads = max_threads;
            opts.maxBatch = 16;
            opts.session.rebuildPerCall = true;
            opts.session.cacheRebuiltWeights = false;
            opts.session.weightSource =
                serve::WeightSource::CeDirect;
            opts.session.pipelineRebuild = on;
            opts.session.denseState = std::make_shared<
                const std::vector<core::DenseTensor>>(sm.dense());
            serve::ServeEngine engine(sm.records(), factory,
                                      se_opts, apply_opts, opts);
            auto t0 = Clock::now();
            std::vector<std::future<Tensor>> futs;
            futs.reserve((size_t)pipe_n);
            for (int i = 0; i < pipe_n; ++i)
                futs.push_back(engine.submit(
                    traffic[(size_t)i % traffic.size()]));
            engine.drain();
            uint64_t digest = kFnvOffsetBasis;
            for (auto &f : futs)
                digest = hashTensor(f.get(), digest);
            const double ms = msSince(t0);
            engine.stop();
            sm.drainPrefetch();
            const auto st = engine.stats();
            const auto ss = sm.streamStats();
            mode_rps[v] = 1000.0 * pipe_n / ms;
            pipe_digest[v + 1] = digest;
            pipe_stall_ms[v] = st.decodeStallMs;
            mode_occ[v] = st.pipelineOccupancy;
            mode_overlapped[v] = st.overlappedBatches;
            mode_form[v] = st.formMs;
            mode_exec[v] = st.execMs;
            mode_complete[v] = st.completeMs;
            mode_hits[v] = ss.prefetchHits;
            mode_misses[v] = ss.prefetchMisses;
            mode_errors[v] = ss.prefetchErrors;
        }
        std::remove(path);

        pipe_identical = pipe_digest[0] == pipe_digest[1] &&
                         pipe_digest[1] == pipe_digest[2];
        prefetch_clean = lane_hits == (uint64_t)pieces &&
                         mode_errors[0] == 0 &&
                         mode_errors[1] == 0 &&
                         mode_hits[1] + mode_misses[1] ==
                             (uint64_t)pieces;
        pipe_speedup = mode_rps[1] / serial_loop_rps;

        std::printf(
            "  \"pipeline\": {\"env_pipeline\": \"%s\", "
            "\"prefetch_depth\": %zu, \"requests\": %d, "
            "\"stream_decode\": {\"pieces\": %zu, "
            "\"inline_stall_ms\": %.3f, \"lane_stall_ms\": %.3f, "
            "\"lane_hits\": %" PRIu64 "}, "
            "\"serial_loop_rps\": %.1f,\n"
            "    \"engine\": [\n",
            run_opts.servePipeline ? "on" : "off", depth, pipe_n,
            pieces, stream_stall_inline_ms, stream_stall_lane_ms,
            lane_hits, serial_loop_rps);
        for (int v = 0; v < 2; ++v)
            std::printf(
                "      {\"pipeline\": %s, \"rps\": %.1f, "
                "\"decode_stall_ms\": %.3f, \"form_ms\": %.3f, "
                "\"exec_ms\": %.3f, \"complete_ms\": %.3f, "
                "\"overlapped_batches\": %" PRIu64 ", "
                "\"occupancy\": %.2f, "
                "\"prefetch_hits\": %" PRIu64 ", "
                "\"prefetch_misses\": %" PRIu64 ", "
                "\"prefetch_errors\": %" PRIu64 "}%s\n",
                bench::jsonBool(v == 1), mode_rps[v],
                pipe_stall_ms[v], mode_form[v], mode_exec[v],
                mode_complete[v], mode_overlapped[v], mode_occ[v],
                mode_hits[v], mode_misses[v], mode_errors[v],
                bench::jsonSep((size_t)v, 2));
        std::printf(
            "    ],\n"
            "    \"pipelined_speedup_vs_serial_loop\": %.2f, "
            "\"stall_reduction\": %.2f, \"bit_identical\": %s},\n",
            pipe_speedup,
            pipe_stall_ms[1] > 0.0
                ? pipe_stall_ms[0] / pipe_stall_ms[1]
                : 0.0,
            bench::jsonBool(pipe_identical));
    }

    std::printf("  \"responses_bit_identical\": %s\n",
                bench::jsonBool(digests_match));
    std::printf("}\n");
    // Exit status always gates the noise-immune invariants (response
    // fidelity across engines, conv lowerings, tenants and weight
    // sources — CeDirect must match Dense bit for bit; warm rebuild
    // beating cold at a ~50x margin; admission conservation; the v3
    // bundle reloading cleanly; the v4 bundle reloading bit-identical
    // with a first response that decodes exactly one piece). --smoke
    // additionally gates the structural margins — batched per-call
    // serving >= serial (the rebuild amortization), Deadline p99 <
    // Full p99 at paced load (a ~5-10x margin), the v3 bundle at
    // <= 60% of the v2 bytes, the v4 bundle at <= 90% of the v3
    // bytes, and the lazy v4 cold start under the eager one — so the
    // Release CI job enforces them on every PR; the unflagged run
    // keeps reporting them without gating (a loaded 1-2 core runner
    // could flake an unrelated PR otherwise).
    bool pass = digests_match && conv_identical &&
                warm_ms < cold_ms && multi_model_identical &&
                shed_accounted && ce_identical && v3_reload_ok &&
                v4_ok && pipe_identical && prefetch_clean;
    if (smoke)
        pass = pass && best_percall_rps >= serial_percall_rps &&
               deadline_p99 < full_p99 && v3_over_v2 <= 0.60 &&
               v4_over_v3 <= 0.90 && v4_lazy_faster &&
               hot_reload_ok && pipe_speedup >= 1.15 &&
               pipe_stall_ms[1] < pipe_stall_ms[0] &&
               stream_stall_lane_ms <=
                   std::max(0.25 * stream_stall_inline_ms, 0.1);
    return pass ? 0 : 1;
}
