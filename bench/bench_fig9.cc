/**
 * @file
 * Fig. 9: evolution of the SmartExchange decomposition on one weight
 * matrix W in R^{192x3} (the paper takes it from the second CONV layer
 * of the second block of a CIFAR-10 ResNet164). We train the
 * reduced-scale ResNet164 and pull a real 3x3-conv weight, reshaped
 * per the CONV rule, padding with a synthetic matrix of the same shape
 * if the trained one is smaller.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"
#include "core/smart_exchange.hh"

int
main()
{
    using namespace se;

    // Train the reduced ResNet164 and take a real trained 3x3 conv.
    auto tm = bench::trainSimModel(models::ModelId::ResNet164,
                                   /*epochs=*/3);
    Tensor w192({192, 3});
    {
        // Find the first 3x3 conv with enough rows; tile if needed.
        Tensor src;
        tm.net->visit([&](nn::Layer &l) {
            if (src.empty())
                if (auto *c = dynamic_cast<nn::Conv2d *>(&l))
                    if (c->kernelSize() == 3)
                        src = c->weightTensor();
        });
        // Reshape (M, C, 3, 3) -> rows of 3, tiling to 192 rows.
        const int64_t total = src.size() / 3;
        for (int64_t i = 0; i < 192; ++i)
            for (int64_t j = 0; j < 3; ++j)
                w192.at(i, j) = src[(i % total) * 3 + j];
        // Normalize overall scale so the ||B - I|| trace starts near
        // the identity, as in the paper's plot.
        double norm = 0.0;
        for (int64_t i = 0; i < w192.size(); ++i)
            norm += (double)w192[i] * w192[i];
        const float inv =
            (float)(1.0 / std::sqrt(norm / 3.0 + 1e-12));
        for (int64_t i = 0; i < w192.size(); ++i)
            w192[i] *= inv;
    }

    core::SeOptions opts;
    opts.vectorThreshold = 0.045;
    opts.maxIterations = 20;
    core::SeTrace trace;
    core::decomposeMatrix(w192, opts, &trace);

    std::printf("=== Fig. 9: SmartExchange solution evolution on a "
                "192x3 ResNet164 weight ===\n");
    std::printf("paper shape: sparsity rises early at the cost of a "
                "bump in error; fitting then\nremedies the error while "
                "sparsity is maintained; ||B - I|| grows steadily.\n\n");
    Table t({"iter", "||W-CeB||/||W||", "Ce sparsity (%)",
             "||B-I||/||I||"});
    for (size_t i = 0; i < trace.reconError.size(); ++i)
        t.row()
            .cell((int64_t)(i + 1))
            .cell(trace.reconError[i], 4)
            .cell(100.0 * trace.vectorSparsity[i], 1)
            .cell(trace.basisDrift[i], 4);
    t.print();
    return 0;
}
