/**
 * @file
 * google-benchmark microbenchmarks of the core kernels: the
 * SmartExchange decomposition itself, the ALS solvers, convolution
 * forward, Booth encoding and the accelerator layer models. These are
 * engineering benchmarks (throughput of this library), not paper
 * figures.
 */

#include <benchmark/benchmark.h>

#include "accel/annotate.hh"
#include "accel/smartexchange_accel.hh"
#include "base/random.hh"
#include "core/smart_exchange.hh"
#include "linalg/linalg.hh"
#include "nn/layers.hh"
#include "quant/quant.hh"

namespace {

using namespace se;

void
BM_DecomposeMatrix(benchmark::State &state)
{
    Rng rng(1);
    Tensor w = randn({state.range(0), 3}, rng, 0.0f, 0.1f);
    core::SeOptions opts;
    for (auto _ : state) {
        auto se_mat = core::decomposeMatrix(w, opts);
        benchmark::DoNotOptimize(se_mat.reconRelError);
    }
}
BENCHMARK(BM_DecomposeMatrix)->Arg(48)->Arg(192)->Arg(768);

void
BM_Matmul(benchmark::State &state)
{
    Rng rng(2);
    const int64_t n = state.range(0);
    Tensor a = randn({n, n}, rng);
    Tensor b = randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = linalg::matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
}
BENCHMARK(BM_Matmul)->Arg(16)->Arg(64)->Arg(128);

void
BM_FitBasis(benchmark::State &state)
{
    Rng rng(3);
    Tensor w = randn({state.range(0), 3}, rng);
    Tensor ce = randn({state.range(0), 3}, rng);
    for (auto _ : state) {
        Tensor b = linalg::fitBasis(w, ce);
        benchmark::DoNotOptimize(b.data());
    }
}
BENCHMARK(BM_FitBasis)->Arg(192)->Arg(1536);

void
BM_Conv2dForward(benchmark::State &state)
{
    Rng rng(4);
    nn::Conv2d conv(16, 16, 3, 1, 1, 1, rng);
    Tensor x = randn({1, 16, (int64_t)state.range(0),
                      (int64_t)state.range(0)}, rng);
    for (auto _ : state) {
        Tensor y = conv.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16);

void
BM_BoothEncoding(benchmark::State &state)
{
    Rng rng(5);
    Tensor t = randn({4096}, rng);
    for (auto _ : state) {
        auto s = quant::measureBitSparsity(t, 8);
        benchmark::DoNotOptimize(s.boothBitSparsity);
    }
}
BENCHMARK(BM_BoothEncoding);

void
BM_AcceleratorNetworkRun(benchmark::State &state)
{
    auto w = accel::annotatedWorkload(models::ModelId::ResNet50);
    accel::SmartExchangeAccel acc;
    for (auto _ : state) {
        auto st = acc.runNetwork(w, false);
        benchmark::DoNotOptimize(st.cycles);
    }
}
BENCHMARK(BM_AcceleratorNetworkRun);

} // namespace

BENCHMARK_MAIN();
