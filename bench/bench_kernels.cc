/**
 * @file
 * Kernel-layer GFLOP/s tracker. Emits one JSON object timing the hot
 * compute paths three ways — legacy naive loops, im2col+GEMM on one
 * thread, and im2col+GEMM over the kernel pool — across
 * ResNet/DeepLab-representative conv shapes (reduced spatial scale,
 * paper kernel geometry), a depth-wise shape, a classifier-head
 * Linear and raw square/skinny GEMMs. Every fast result is also
 * checked bit-identical to the naive path (the golden-stability
 * invariant).
 *
 * Usage: ./bench_kernels [--smoke] [threads]
 *
 * --smoke runs only the ResNet 3x3/stride-1 shape with small repeat
 * counts and exits non-zero unless the single-threaded im2col+GEMM
 * path beats naive and matches it bit-exactly — the CI regression
 * gate for this subsystem. The isa_dispatch section (every compiled
 * micro-kernel ISA variant vs the scalar reference) and the
 * gemm_ce_fused section (fused Ce-code decode-in-GEMM vs the staged
 * panel-decode baseline) run in smoke mode too, and feed the same
 * gate: any bit-divergence or a fused kernel slower than the staged
 * one fails the run.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "base/clock.hh"
#include "bench_util.hh"
#include "base/hash.hh"
#include "base/random.hh"
#include "core/model_file.hh"
#include "kernels/ce_gemm.hh"
#include "kernels/dispatch.hh"
#include "kernels/gemm.hh"
#include "kernels/kernels.hh"
#include "kernels/scratch.hh"
#include "linalg/linalg.hh"
#include "nn/layers.hh"

namespace {

using namespace se;

struct ConvCase
{
    const char *name;
    int64_t c, m, k, stride, pad, dil, groups, h, w;
};

/**
 * Reduced-spatial-scale stand-ins for the layer geometries the paper
 * workloads spend their time in. Kernel/stride/pad/dilation/groups
 * match the real layers; channel and spatial sizes are scaled so the
 * naive reference stays affordable in CI.
 */
const std::vector<ConvCase> &
convCases()
{
    static const std::vector<ConvCase> cases{
        {"resnet_3x3_s1", 64, 64, 3, 1, 1, 1, 1, 28, 28},
        {"resnet_1x1_s1", 64, 256, 1, 1, 0, 1, 1, 28, 28},
        {"resnet_3x3_s2", 96, 96, 3, 2, 1, 1, 1, 28, 28},
        {"resnet_7x7_s2", 3, 64, 7, 2, 3, 1, 1, 64, 64},
        {"deeplab_3x3_d2", 64, 64, 3, 1, 2, 2, 1, 24, 22},
        {"mobilenet_dw_3x3", 96, 96, 3, 1, 1, 1, 96, 28, 28},
    };
    return cases;
}

double
convFlops(const ConvCase &cc)
{
    const int64_t kext = cc.dil * (cc.k - 1) + 1;
    const int64_t oh = (cc.h + 2 * cc.pad - kext) / cc.stride + 1;
    const int64_t ow = (cc.w + 2 * cc.pad - kext) / cc.stride + 1;
    return 2.0 * (double)cc.m * oh * ow * (cc.c / cc.groups) * cc.k *
           cc.k;
}

/** Wall-clock one conv forward configuration; returns ms/call. */
double
timeConv(nn::Conv2d &conv, const Tensor &x, int reps)
{
    conv.forward(x, false);  // warm caches and scratch
    const auto t0 = SteadyClock::now();
    for (int r = 0; r < reps; ++r) {
        Tensor y = conv.forward(x, false);
        (void)y;
    }
    return msSince(t0) / reps;
}

struct ConvResult
{
    double naive_ms, gemm1_ms, gemmN_ms;
    bool identical;
};

ConvResult
runConvCase(const ConvCase &cc, int reps, int pool_threads)
{
    Rng rng(7);
    nn::Conv2d conv(cc.c, cc.m, cc.k, cc.stride, cc.pad, cc.groups,
                    rng, /*bias=*/true, cc.dil);
    Tensor x = randn({2, cc.c, cc.h, cc.w}, rng);

    ConvResult res;
    kernels::setDefaultConvImpl(kernels::ConvImpl::Naive);
    Tensor y_naive = conv.forward(x, false);
    res.naive_ms = timeConv(conv, x, reps);

    kernels::setDefaultConvImpl(kernels::ConvImpl::Im2colGemm);
    Tensor y_gemm = conv.forward(x, false);
    res.identical = hashTensor(y_naive) == hashTensor(y_gemm);

    kernels::configureThreads(1);
    res.gemm1_ms = timeConv(conv, x, reps * 4) ;
    kernels::configureThreads(pool_threads);
    res.gemmN_ms = timeConv(conv, x, reps * 4);
    kernels::setDefaultConvImpl(kernels::ConvImpl::Auto);
    return res;
}

/** linalg::matmul forced onto the legacy loop (the GEMM reference). */
Tensor
naiveMatmul(const Tensor &a, const Tensor &b)
{
    const kernels::ConvImpl prev = kernels::defaultConvImpl();
    kernels::setDefaultConvImpl(kernels::ConvImpl::Naive);
    Tensor c = linalg::matmul(a, b);
    kernels::setDefaultConvImpl(prev);
    return c;
}

/** Best-of-`rounds` ms/call — robust against scheduler noise. */
template <typename F>
double
bestMs(int rounds, int reps, F &&body)
{
    double best = 1e30;
    for (int r = 0; r < rounds; ++r) {
        const auto t0 = SteadyClock::now();
        for (int i = 0; i < reps; ++i)
            body();
        best = std::min(best, msSince(t0) / reps);
    }
    return best;
}

/** Random Ce in Omega_P (sparse rows/entries, power-of-2 values). */
Tensor
randomCe(Rng &rng, int64_t rows, int64_t cols,
         const quant::Pow2Alphabet &a)
{
    Tensor ce({rows, cols});
    for (int64_t i = 0; i < rows; ++i) {
        if (rng.chance(0.3))
            continue;
        for (int64_t j = 0; j < cols; ++j) {
            if (rng.chance(0.2))
                continue;
            const int exp = (int)rng.integer(a.expMin(), a.expMax);
            const float mag = std::ldexp(1.0f, exp);
            ce.at(i, j) = rng.chance(0.5) ? mag : -mag;
        }
    }
    return ce;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace se;

    bool smoke = false;
    int pool_threads = (int)std::thread::hardware_concurrency();
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else
            pool_threads = std::atoi(argv[i]);
    }
    if (pool_threads < 1)
        pool_threads = 1;

    std::printf("{\n");
    std::printf("  \"bench\": \"kernels\",\n");
    std::printf("  \"threads\": %d,\n", pool_threads);
    std::printf("  \"smoke\": %s,\n", bench::jsonBool(smoke));

    bool ok = true;
    double smoke_speedup = 0.0;

    std::printf("  \"conv\": [\n");
    {
        std::vector<ConvCase> cases;
        if (smoke)
            cases.push_back(convCases()[0]);
        else
            cases = convCases();
        for (size_t i = 0; i < cases.size(); ++i) {
            const ConvCase &cc = cases[i];
            const int reps = smoke ? 2 : 3;
            const ConvResult r = runConvCase(cc, reps, pool_threads);
            // The bench batches 2 images per call.
            const double flops = 2.0 * convFlops(cc);
            const double s1 = r.naive_ms / r.gemm1_ms;
            const double sn = r.naive_ms / r.gemmN_ms;
            if (cc.name == std::string("resnet_3x3_s1"))
                smoke_speedup = s1;
            ok = ok && r.identical;
            std::printf(
                "    {\"shape\": \"%s\", \"mflop\": %.1f, "
                "\"naive_ms\": %.3f, \"naive_gflops\": %.2f, "
                "\"gemm1_ms\": %.3f, \"gemm1_gflops\": %.2f, "
                "\"gemmN_ms\": %.3f, \"gemmN_gflops\": %.2f, "
                "\"speedup_1t\": %.2f, \"speedup_nt\": %.2f, "
                "\"bit_identical\": %s}%s\n",
                cc.name, flops / 1e6, r.naive_ms,
                flops / r.naive_ms / 1e6, r.gemm1_ms,
                flops / r.gemm1_ms / 1e6, r.gemmN_ms,
                flops / r.gemmN_ms / 1e6, s1, sn,
                bench::jsonBool(r.identical),
                bench::jsonSep(i, cases.size()));
        }
    }
    std::printf("  ],\n");

    if (!smoke) {
        // --- raw GEMM: legacy loop vs blocked vs threaded ----------
        struct GemmCase
        {
            const char *name;
            int64_t m, k, n;
        };
        const std::vector<GemmCase> gcases{
            {"gemm_256", 256, 256, 256},
            {"gemm_tall_512x64x384", 512, 64, 384},
            {"gemm_ce_basis_2048x9x9", 2048, 9, 9},
        };
        std::printf("  \"gemm\": [\n");
        for (size_t i = 0; i < gcases.size(); ++i) {
            const GemmCase &gc = gcases[i];
            Rng rng(11);
            Tensor a = randn({gc.m, gc.k}, rng);
            Tensor b = randn({gc.k, gc.n}, rng);
            const int reps = 5;

            Tensor c_ref = naiveMatmul(a, b);
            auto t0 = SteadyClock::now();
            for (int r = 0; r < reps; ++r)
                naiveMatmul(a, b);
            const double naive_ms = msSince(t0) / reps;

            kernels::configureThreads(1);
            Tensor c_fast = kernels::gemm(a, b);
            const bool identical =
                hashTensor(c_ref) == hashTensor(c_fast);
            ok = ok && identical;
            t0 = SteadyClock::now();
            for (int r = 0; r < reps * 4; ++r)
                kernels::gemm(a, b);
            const double gemm1_ms = msSince(t0) / (reps * 4);

            kernels::configureThreads(pool_threads);
            t0 = SteadyClock::now();
            for (int r = 0; r < reps * 4; ++r)
                kernels::gemm(a, b);
            const double gemmN_ms = msSince(t0) / (reps * 4);

            const double flops = 2.0 * gc.m * gc.k * gc.n;
            std::printf(
                "    {\"shape\": \"%s\", \"mflop\": %.1f, "
                "\"naive_ms\": %.3f, \"gemm1_ms\": %.3f, "
                "\"gemmN_ms\": %.3f, \"gemm1_gflops\": %.2f, "
                "\"speedup_1t\": %.2f, \"speedup_nt\": %.2f, "
                "\"bit_identical\": %s}%s\n",
                gc.name, flops / 1e6, naive_ms, gemm1_ms, gemmN_ms,
                flops / gemm1_ms / 1e6, naive_ms / gemm1_ms,
                naive_ms / gemmN_ms, bench::jsonBool(identical),
                bench::jsonSep(i, gcases.size()));
        }
        std::printf("  ],\n");

        // --- classifier-head Linear -------------------------------
        {
            Rng rng(13);
            nn::Linear fc(512, 128, rng);
            Tensor x = randn({16, 512}, rng);
            const int reps = 20;

            kernels::setDefaultConvImpl(kernels::ConvImpl::Naive);
            Tensor y_ref = fc.forward(x, false);
            auto t0 = SteadyClock::now();
            for (int r = 0; r < reps; ++r)
                fc.forward(x, false);
            const double naive_ms = msSince(t0) / reps;

            kernels::setDefaultConvImpl(kernels::ConvImpl::Auto);
            Tensor y_fast = fc.forward(x, false);
            const bool identical =
                hashTensor(y_ref) == hashTensor(y_fast);
            ok = ok && identical;
            t0 = SteadyClock::now();
            for (int r = 0; r < reps * 4; ++r)
                fc.forward(x, false);
            const double gemm_ms = msSince(t0) / (reps * 4);
            std::printf(
                "  \"linear_512x128_b16\": {\"naive_ms\": %.3f, "
                "\"gemm_ms\": %.3f, \"speedup\": %.2f, "
                "\"bit_identical\": %s},\n",
                naive_ms, gemm_ms, naive_ms / gemm_ms,
                bench::jsonBool(identical));
        }
    }

    // --- ISA dispatch: per-variant GFLOP/s + differential wall ----
    //
    // Runs in smoke mode too: CI pins SE_KERNEL_ISA=scalar in one job
    // and best-detected in another, and this section is what proves
    // every variant the build carries stays bit-identical.
    kernels::configureThreads(1);
    {
        const int64_t m = smoke ? 96 : 256, k = smoke ? 96 : 256,
                      n = smoke ? 96 : 256;
        const int reps = smoke ? 3 : 10;
        Rng rng(17);
        Tensor a = randn({m, k}, rng);
        Tensor b = randn({k, n}, rng);
        Tensor c({m, n});
        const kernels::KernelIsa prev_isa = kernels::activeIsa();

        kernels::setActiveIsa(kernels::KernelIsa::Scalar);
        Tensor c_ref({m, n});
        kernels::sgemm(a.data(), b.data(), c_ref.data(), m, k, n,
                       false);

        const auto isas = kernels::supportedIsas();
        std::printf("  \"isa_dispatch\": {\n");
        std::printf("    \"active\": \"%s\",\n",
                    kernels::isaName(prev_isa));
        std::printf("    \"detected_best\": \"%s\",\n",
                    kernels::isaName(kernels::detectBestIsa()));
        std::printf("    \"variants\": [\n");
        const double flops = 2.0 * m * k * n;
        for (size_t i = 0; i < isas.size(); ++i) {
            kernels::setActiveIsa(isas[i]);
            kernels::sgemm(a.data(), b.data(), c.data(), m, k, n,
                           false);
            const bool identical =
                hashTensor(c_ref) == hashTensor(c);
            ok = ok && identical;
            const double ms = bestMs(3, reps, [&] {
                kernels::sgemm(a.data(), b.data(), c.data(), m, k, n,
                               false);
            });
            std::printf(
                "      {\"isa\": \"%s\", \"gemm_ms\": %.3f, "
                "\"gflops\": %.2f, \"bit_identical\": %s}%s\n",
                kernels::isaName(isas[i]), ms, flops / ms / 1e6,
                bench::jsonBool(identical),
                bench::jsonSep(i, isas.size()));
        }
        kernels::setActiveIsa(prev_isa);
        std::printf("    ]\n  },\n");
    }

    // --- fused Ce-code GEMM vs the staged panel-decode baseline ---
    double fused_speedup = 0.0;
    bool fused_identical = true;
    {
        // The serve-layer rebuild geometry: tall packed Ce against a
        // small basis. The fused kernel must at least match the
        // staged variant (it skips the decode-store-reload pass).
        const int64_t m = smoke ? 2048 : 8192, r = 9, n = 9;
        const int reps = smoke ? 20 : 50;
        Rng rng(19);
        quant::Pow2Alphabet alpha;
        alpha.expMax = 0;
        alpha.numLevels = 7;
        Tensor ce = randomCe(rng, m, r, alpha);
        Tensor basis = randn({r, n}, rng);
        const auto packed = core::packCe(ce, alpha);
        kernels::ScratchArena arena;

        Tensor staged({m, n});
        kernels::gemmCeBPanelDecode(packed.rowMask.data(),
                                    packed.nibbles.data(), m, r,
                                    basis.data(), n, alpha,
                                    staged.data(), arena);
        Tensor fused({m, n});
        kernels::gemmCeB(packed.rowMask.data(), packed.nibbles.data(),
                         m, r, basis.data(), n, alpha, fused.data(),
                         arena);
        fused_identical = hashTensor(staged) == hashTensor(fused);
        ok = ok && fused_identical;

        const double staged_ms = bestMs(3, reps, [&] {
            kernels::gemmCeBPanelDecode(
                packed.rowMask.data(), packed.nibbles.data(), m, r,
                basis.data(), n, alpha, staged.data(), arena);
        });
        const double fused_ms = bestMs(3, reps, [&] {
            kernels::gemmCeB(packed.rowMask.data(),
                             packed.nibbles.data(), m, r,
                             basis.data(), n, alpha, fused.data(),
                             arena);
        });
        fused_speedup = staged_ms / fused_ms;
        const double flops = 2.0 * m * r * n;
        std::printf(
            "  \"gemm_ce_fused\": {\"shape\": \"%lldx%dx%d\", "
            "\"panel_decode_ms\": %.3f, \"fused_ms\": %.3f, "
            "\"fused_gflops\": %.2f, \"speedup\": %.2f, "
            "\"bit_identical\": %s},\n",
            (long long)m, (int)r, (int)n, staged_ms, fused_ms,
            flops / fused_ms / 1e6, fused_speedup,
            bench::jsonBool(fused_identical));
    }

    std::printf("  \"all_bit_identical\": %s", bench::jsonBool(ok));
    if (smoke) {
        std::printf(",\n  \"smoke_speedup_1t\": %.2f,\n",
                    smoke_speedup);
        std::printf("  \"smoke_fused_speedup\": %.2f,\n",
                    fused_speedup);
        // Gate: fast conv path beats naive, fused Ce GEMM at least
        // matches the staged decode (>= 1.0 minus timer noise), and
        // every ISA variant of every checked kernel is bit-identical.
        const bool pass =
            ok && smoke_speedup > 1.0 && fused_speedup >= 0.98;
        std::printf("  \"smoke_pass\": %s\n}\n",
                    bench::jsonBool(pass));
        return pass ? 0 : 1;
    }
    std::printf("\n}\n");
    return ok ? 0 : 1;
}
