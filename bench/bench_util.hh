/**
 * @file
 * Shared helpers for the benchmark binaries: deterministic training of
 * reduced-scale models, paper-scale storage projection from measured
 * sparsity, geometric means, and the JSON-emission idioms every
 * bench_* main used to hand-roll.
 */

#ifndef SE_BENCH_BENCH_UTIL_HH
#define SE_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdlib>
#include <functional>
#include <memory>
#include <vector>

#include "accel/annotate.hh"
#include "accel/baselines.hh"
#include "accel/smartexchange_accel.hh"
#include "core/trainer.hh"
#include "models/zoo.hh"
#include "runtime/options.hh"

namespace se {
namespace bench {

// ------------------------------------------------- JSON emission glue
//
// The bench binaries print JSON through std::printf; these are the
// two idioms (bool literals and array separators) that
// bench_kernels/bench_serve/bench_runtime each re-implemented.

/** JSON boolean literal. */
inline const char *
jsonBool(bool b)
{
    return b ? "true" : "false";
}

/** Array-element separator: "," while more items follow. */
inline const char *
jsonSep(size_t index, size_t count)
{
    return index + 1 < count ? "," : "";
}

/**
 * Runtime options for the bench drivers: SE_THREADS in the environment
 * overrides (0 = legacy serial path); the default is one worker per
 * core. Sweep results are bit-identical either way — the knob only
 * moves wall-clock.
 */
inline runtime::RuntimeOptions
envRuntimeOptions()
{
    return runtime::RuntimeOptions::fromEnv();
}

/** The five accelerators of the paper's comparison, in figure order. */
inline std::vector<accel::AcceleratorPtr>
paperAccelerators()
{
    std::vector<accel::AcceleratorPtr> accs;
    accs.push_back(std::make_unique<accel::DianNao>());
    accs.push_back(std::make_unique<accel::Scnn>());
    accs.push_back(std::make_unique<accel::CambriconX>());
    accs.push_back(std::make_unique<accel::BitPragmatic>());
    accs.push_back(std::make_unique<accel::SmartExchangeAccel>());
    return accs;
}

/** Annotated paper-scale workloads for a list of model ids. */
inline std::vector<sim::Workload>
annotatedWorkloads(const std::vector<models::ModelId> &ids)
{
    std::vector<sim::Workload> ws;
    ws.reserve(ids.size());
    for (auto id : ids)
        ws.push_back(accel::annotatedWorkload(id));
    return ws;
}

/**
 * The Fig. 10-12 protocol hole: SCNN cannot run the squeeze-excite
 * EfficientNet-B0, so that cell is excluded.
 */
inline std::function<bool(size_t, size_t)>
scnnEffNetSkip(const std::vector<accel::AcceleratorPtr> &accs,
               const std::vector<models::ModelId> &ids)
{
    std::vector<bool> is_scnn, is_effnet;
    for (const auto &a : accs)
        is_scnn.push_back(a->name() == "SCNN");
    for (auto id : ids)
        is_effnet.push_back(id == models::ModelId::EfficientNetB0);
    return [is_scnn, is_effnet](size_t ai, size_t wi) {
        return is_scnn[ai] && is_effnet[wi];
    };
}

/** A trained reduced-scale model plus its task. */
struct TrainedModel
{
    std::unique_ptr<nn::Sequential> net;
    data::ClassificationTask task;
    double accuracy = 0.0;
};

/** Deterministically train a Sim-scale model on a synthetic task. */
inline TrainedModel
trainSimModel(models::ModelId id, int epochs = 8, int num_classes = 6,
              int64_t hw = 10, int64_t base_width = 6,
              uint64_t seed = 42)
{
    TrainedModel out;
    data::ClassSetConfig dcfg;
    dcfg.numClasses = num_classes;
    dcfg.height = dcfg.width = hw;
    dcfg.trainBatches = 12;
    dcfg.testBatches = 5;
    dcfg.noise = 0.4f;
    dcfg.seed = seed;
    dcfg.noise = 0.75f;  // hard enough that damage shows up
    out.task = data::makeClassification(dcfg);

    models::SimConfig mcfg;
    mcfg.numClasses = num_classes;
    mcfg.inHeight = mcfg.inWidth = hw;
    mcfg.baseWidth = base_width;
    mcfg.seed = seed;
    out.net = models::buildSim(id, mcfg);

    core::TrainConfig tc;
    tc.epochs = epochs;
    tc.lr = 0.05f;
    out.accuracy = core::trainClassifier(*out.net, out.task, tc);
    return out;
}

/** Paper-scale storage projection of the SmartExchange format. */
struct ProjectedStorage
{
    double originalMB = 0.0;  ///< FP32 dense
    double ceMB = 0.0;        ///< non-zero rows + 1-bit index
    double basisMB = 0.0;
    double
    paramMB() const
    {
        return ceMB + basisMB;
    }
    double
    compressionRate() const
    {
        return originalMB / std::max(paramMB(), 1e-12);
    }
};

/**
 * Project the storage of a paper-scale workload under the SmartExchange
 * format with the given measured vector sparsity (uniform), 4-bit
 * coefficients and 8-bit basis matrices.
 */
inline ProjectedStorage
projectStorage(const sim::Workload &w, double vector_sparsity,
               int coef_bits = 4, int basis_bits = 8)
{
    ProjectedStorage out;
    for (const auto &l : w.layers) {
        const int64_t s = std::max<int64_t>(l.s, 1);
        const int64_t rows = std::max<int64_t>(1, l.weightCount() / s);
        const int64_t nz_rows =
            (int64_t)((double)rows * (1.0 - vector_sparsity));
        const int64_t ce_bits = rows + nz_rows * s * coef_bits;
        int64_t basis_bits_total;
        if (l.kind == sim::LayerKind::Conv ||
            l.kind == sim::LayerKind::DepthwiseConv)
            basis_bits_total = l.m * s * s * basis_bits;
        else
            basis_bits_total =
                std::max<int64_t>(1, l.m / 64) * s * s * basis_bits;
        out.originalMB += (double)(l.weightCount() * 32) / 8e6;
        out.ceMB += (double)ce_bits / 8e6;
        out.basisMB += (double)basis_bits_total / 8e6;
    }
    return out;
}

/** Geometric mean of a series of positive ratios. */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / (double)v.size());
}

} // namespace bench
} // namespace se

#endif // SE_BENCH_BENCH_UTIL_HH
