/**
 * @file
 * Table II: SmartExchange with re-training on VGG11/ResNet50 (ImageNet
 * proxy), VGG19/ResNet164 (CIFAR-10 proxy) and MLP-1/MLP-2 (MNIST
 * proxy). Accuracy columns come from the reduced-scale functional
 * runs; the storage columns (CR / Param / B / Ce) are projected onto
 * the exact paper-scale layer geometry using the measured vector
 * sparsity, which is what the paper's numbers measure.
 *
 * Usage: ./bench_table2 [--reduced]
 *
 * --reduced runs the same six rows with a cut-down protocol (half the
 * training epochs, 2 re-training rounds instead of 5) — the variant
 * ctest pins as a golden, keeping the suite fast. The full protocol
 * stays pinned in tests/golden/bench_table2.txt and runnable as a
 * disabled golden test.
 */

#include <cstdio>
#include <cstring>

#include "base/table.hh"
#include "bench_util.hh"
#include "runtime/pipeline.hh"

namespace {

struct RowSpec
{
    se::models::ModelId id;
    /** Sparsity budget (the paper's per-layer Sc, expressed as the
     *  target fraction of zero vectors; Table II "Spar." column). */
    double sparsityTarget;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace se;
    using models::ModelId;

    bool reduced = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--reduced"))
            reduced = true;

    std::printf("=== Table II: SmartExchange with re-training%s ===\n",
                reduced ? " (reduced protocol)" : "");
    std::printf("paper reference rows: VGG11SE CR 47.04 spar 86%%; "
                "ResNet50SE CR 11.53-14.24 spar 45-58.6%%;\n"
                "VGG19SE CR 74.19-80.94 spar 92.8-93.7%%; ResNet164SE "
                "CR 8.04-10.55 spar 37.6-61%%;\n"
                "MLP-1SE CR 130 spar 82.34%%; MLP-2SE CR 45.03 spar "
                "93.33%%\n\n");

    const RowSpec rows[] = {
        {ModelId::VGG11, 0.86},     {ModelId::ResNet50, 0.55},
        {ModelId::VGG19, 0.93},     {ModelId::ResNet164, 0.55},
        {ModelId::MLP1, 0.82},      {ModelId::MLP2, 0.93},
    };

    Table t({"model", "top-1 base (%)", "top-1 SE (%)", "CR (x)",
             "Param (MB)", "B (MB)", "Ce (MB)", "Spar. (%)"});
    for (const auto &spec : rows) {
        // Wider sims for the aggressive-sparsity rows: the paper's
        // full-size VGGs have the overparameterization that makes >85%
        // sparsity survivable, so the stand-ins need headroom too.
        const int64_t width = spec.sparsityTarget > 0.9
                                  ? 16
                                  : spec.sparsityTarget > 0.8 ? 12 : 6;
        auto tm = bench::trainSimModel(spec.id, reduced ? 4 : 8, 6, 10,
                                       width);
        core::SeOptions opts;
        opts.vectorThreshold = 0.01;
        opts.minVectorSparsity = spec.sparsityTarget;
        core::ApplyOptions ao;
        core::SeRetrainConfig rc;
        rc.rounds = reduced ? 2 : 5;
        if (spec.sparsityTarget > 0.9) {
            rc.perRound.epochs = 2;
            rc.perRound.lr = 0.05f;
        }
        // Decompose through the thread-pooled runtime pipeline
        // (bit-identical to the serial path).
        runtime::CompressionPipeline pipe(bench::envRuntimeOptions());
        rc.applyFn = [&pipe](nn::Sequential &n,
                             const core::SeOptions &o,
                             const core::ApplyOptions &a) {
            return pipe.run(n, o, a);
        };
        auto res = core::retrainWithSmartExchange(*tm.net, tm.task,
                                                  opts, ao, rc);

        // Project storage onto the paper-scale geometry with the
        // measured vector sparsity.
        auto paper = models::paperShapes(spec.id);
        auto proj = bench::projectStorage(
            paper, res.report.overallVectorSparsity());

        t.row()
            .cell(models::modelName(spec.id) + "SE")
            .cell(100.0 * res.accBaseline, 1)
            .cell(100.0 * res.accRetrained, 1)
            .cell(proj.compressionRate(), 2)
            .cell(proj.paramMB(), 2)
            .cell(proj.basisMB, 2)
            .cell(proj.ceMB, 2)
            .cell(100.0 * res.report.prunedParamRatio(), 1);
    }
    t.print();
    if (reduced)
        std::printf("\nshape check (reduced): VGG family compresses "
                    "hardest (tens of x), ResNets land around\n8-15x, "
                    "MLPs reach very high CR; full accuracy recovery "
                    "needs the 5-round protocol.\n");
    else
        std::printf("\nshape check: VGG family compresses hardest "
                    "(tens of x), ResNets land around 8-15x,\nMLPs "
                    "reach very high CR; accuracy loss after "
                    "re-training stays small.\n");
    return 0;
}
