/**
 * @file
 * Fig. 8: accuracy vs model size of the SmartExchange algorithm
 * against pruning-alone (Network Slimming / ThiNet style) and
 * quantization-alone (DoReFa k-bit, power-of-2) baselines, on
 * synthetic proxies for the ImageNet (ResNet50-sim) and CIFAR-10
 * (VGG19-sim) settings. Each point trains a fresh deterministic model
 * and applies one technique.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"
#include "compress/baselines.hh"

namespace {

struct Point
{
    std::string technique;
    double sizeKB;
    double accuracy;
};

std::vector<Point>
sweep(se::models::ModelId id)
{
    using namespace se;
    std::vector<Point> points;

    // Baseline (uncompressed).
    {
        auto tm = bench::trainSimModel(id);
        int64_t weights = 0;
        tm.net->visit([&](nn::Layer &l) {
            for (auto &p : l.params())
                if (p.name.find("weight") != std::string::npos)
                    weights += p.value->size();
        });
        points.push_back({"FP32 baseline",
                          (double)(weights * 4) / 1e3, tm.accuracy});
    }

    // SmartExchange at two sparsity budgets (with re-training).
    for (double target : {0.5, 0.85}) {
        auto tm = bench::trainSimModel(id);
        core::SeOptions opts;
        opts.vectorThreshold = 0.01;
        opts.minVectorSparsity = target;
        core::SeRetrainConfig rc;
        rc.rounds = 3;
        auto res = core::retrainWithSmartExchange(
            *tm.net, tm.task, opts, core::ApplyOptions{}, rc);
        char name[64];
        std::snprintf(name, sizeof(name),
                      "SmartExchange (Sc=%.0f%%)", 100.0 * target);
        points.push_back({name, res.report.paramMB() * 1e3,
                          res.accRetrained});
    }

    // Pruning-alone baselines (with fine-tuning epochs after).
    for (double ratio : {0.3, 0.6}) {
        auto tm = bench::trainSimModel(id);
        auto rep = compress::pruneFiltersL1(*tm.net, ratio);
        core::TrainConfig ft;
        ft.epochs = 3;
        ft.lr = 0.02f;
        const double acc =
            core::trainClassifier(*tm.net, tm.task, ft);
        char name[32];
        std::snprintf(name, sizeof(name), "ThiNet-%d",
                      (int)(100 * (1.0 - ratio)));
        points.push_back(
            {name, (double)rep.storedBits / 8e3, acc});
    }
    for (double ratio : {0.4}) {
        auto tm = bench::trainSimModel(id);
        auto rep = compress::pruneChannelsBnGamma(*tm.net, ratio);
        core::TrainConfig ft;
        ft.epochs = 3;
        ft.lr = 0.02f;
        const double acc =
            core::trainClassifier(*tm.net, tm.task, ft);
        points.push_back({"NetworkSlimming",
                          (double)rep.storedBits / 8e3, acc});
    }

    // Quantization-alone baselines.
    for (int bits : {8, 4, 2}) {
        auto tm = bench::trainSimModel(id);
        auto rep = compress::quantizeKBit(*tm.net, bits);
        const double acc = core::evaluate(*tm.net, tm.task.test);
        char name[32];
        std::snprintf(name, sizeof(name), "DoReFa-%db", bits);
        points.push_back(
            {name, (double)rep.storedBits / 8e3, acc});
    }
    {
        auto tm = bench::trainSimModel(id);
        auto rep = compress::quantizePow2(*tm.net, 4);
        const double acc = core::evaluate(*tm.net, tm.task.test);
        points.push_back(
            {"Pow2-4b", (double)rep.storedBits / 8e3, acc});
    }
    return points;
}

void
printSweep(const char *title, const std::vector<Point> &points)
{
    std::printf("\n--- %s ---\n", title);
    se::Table t({"technique", "model size (KB)", "accuracy (%)"});
    for (const auto &p : points)
        t.row()
            .cell(p.technique)
            .cell(p.sizeKB, 2)
            .cell(100.0 * p.accuracy, 1);
    t.print();
}

} // namespace

int
main()
{
    using namespace se;
    std::printf("=== Fig. 8: accuracy vs model size — SmartExchange "
                "vs pruning-alone vs quantization-alone ===\n");
    std::printf("paper shape: SE sits on the Pareto frontier — as "
                "compact as aggressive quantization\nwhile as accurate "
                "as structured pruning.\n");

    printSweep("(a) ImageNet proxy: ResNet50-sim",
               sweep(models::ModelId::ResNet50));
    printSweep("(b) CIFAR-10 proxy: VGG19-sim",
               sweep(models::ModelId::VGG19));
    return 0;
}
