/**
 * @file
 * Property tests of the encode::BitWriter / BitReader pair under the
 * model-file v4 adaptive-width codec, plus differential tests pinning
 * the v4 decode bit-identical to the v3 decode of the same model.
 *
 * The bitstream layer is the one place a single off-by-one bit would
 * silently skew every coefficient after it, so the walls here are
 * exhaustive in spirit: random width sequences round-trip exactly,
 * the writer refuses values that do not fit and unaligned handoffs,
 * the reader refuses reads past the end, and the LSB-first layout is
 * pinned against the v3 nibble order byte for byte.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <vector>

#include "base/random.hh"
#include "core/model_file.hh"
#include "core/smart_exchange.hh"
#include "encode/bitstream.hh"
#include "linalg/linalg.hh"

namespace se {
namespace {

TEST(Bitstream, RandomWidthSequencesRoundTrip)
{
    Rng rng(1);
    for (int round = 0; round < 50; ++round) {
        std::vector<std::pair<uint32_t, int>> fields;
        encode::BitWriter bw;
        const int n = (int)rng.integer(0, 200);
        size_t bits = 0;
        for (int k = 0; k < n; ++k) {
            const int w = (int)rng.integer(0, 32);
            const uint32_t mask =
                w == 32 ? ~0u : ((1u << w) - 1u);
            const uint32_t v = (uint32_t)rng.integer(0, 1 << 30) & mask;
            bw.writeBits(v, w);
            bits += (size_t)w;
            fields.emplace_back(v, w);
        }
        EXPECT_EQ(bw.bitsWritten(), bits);
        bw.alignToByte();
        const std::vector<uint8_t> bytes = bw.bytes();
        EXPECT_EQ(bytes.size(), (bits + 7) / 8);

        encode::BitReader br(bytes.data(), bytes.size());
        for (const auto &[v, w] : fields)
            EXPECT_EQ(br.readBits(w), v) << "width " << w;
        EXPECT_EQ(br.alignToByte(), 0u);  // writer pad is zero
        EXPECT_TRUE(br.atEnd());
    }
}

TEST(Bitstream, WriterRejectsBadWidthsAndOversizedValues)
{
    encode::BitWriter bw;
    EXPECT_THROW(bw.writeBits(0, -1), encode::BitstreamError);
    EXPECT_THROW(bw.writeBits(0, 33), encode::BitstreamError);
    // A value that does not fit must throw, not be silently masked.
    EXPECT_THROW(bw.writeBits(2, 1), encode::BitstreamError);
    EXPECT_THROW(bw.writeBits(1, 0), encode::BitstreamError);
    EXPECT_THROW(bw.writeBits(8, 3), encode::BitstreamError);
    EXPECT_EQ(bw.bitsWritten(), 0u);  // failed writes left no bits
    bw.writeBits(0, 0);               // zero-width zero is legal
    EXPECT_EQ(bw.bitsWritten(), 0u);
}

TEST(Bitstream, WriterFlushAlignment)
{
    encode::BitWriter bw;
    bw.writeBits(0x5, 3);
    EXPECT_FALSE(bw.aligned());
    // Handing out a buffer whose tail byte is still open is an error.
    EXPECT_THROW(bw.bytes(), encode::BitstreamError);
    EXPECT_THROW(bw.take(), encode::BitstreamError);
    bw.alignToByte();
    EXPECT_TRUE(bw.aligned());
    EXPECT_EQ(bw.bitsWritten(), 8u);
    ASSERT_EQ(bw.bytes().size(), 1u);
    EXPECT_EQ(bw.bytes()[0], 0x05);  // pad bits are zero
    bw.alignToByte();                // idempotent when aligned
    EXPECT_EQ(bw.bitsWritten(), 8u);

    const std::vector<uint8_t> taken = bw.take();
    EXPECT_EQ(taken.size(), 1u);
    EXPECT_EQ(bw.bitsWritten(), 0u);  // take() resets the writer
}

TEST(Bitstream, ReaderRefusesReadsPastEnd)
{
    const uint8_t one = 0xFF;
    encode::BitReader br(&one, 1);
    EXPECT_EQ(br.bitsRemaining(), 8u);
    EXPECT_EQ(br.readBits(5), 0x1Fu);
    EXPECT_THROW(br.readBits(4), encode::BitstreamError);
    // A failed read consumes nothing.
    EXPECT_EQ(br.bitsRemaining(), 3u);
    EXPECT_EQ(br.readBits(3), 0x7u);
    EXPECT_TRUE(br.atEnd());
    EXPECT_THROW(br.readBits(1), encode::BitstreamError);
    EXPECT_THROW(br.readBits(-1), encode::BitstreamError);
    EXPECT_THROW(br.readBits(33), encode::BitstreamError);

    encode::BitReader empty(nullptr, 0);
    EXPECT_TRUE(empty.atEnd());
    EXPECT_EQ(empty.readBits(0), 0u);
    EXPECT_THROW(empty.readBits(1), encode::BitstreamError);
}

TEST(Bitstream, ReaderAlignReturnsDirtyPadBits)
{
    // 0b1011'0101: read 5 bits, the 3 pad bits are 0b101 = 5.
    const uint8_t byte = 0xB5;
    encode::BitReader br(&byte, 1);
    EXPECT_EQ(br.readBits(5), 0x15u);
    EXPECT_EQ(br.alignToByte(), 5u);  // caller can enforce == 0
    EXPECT_TRUE(br.atEnd());
    EXPECT_EQ(br.alignToByte(), 0u);  // aligned: no-op
}

TEST(Bitstream, LsbFirstLayoutMatchesV3NibbleOrder)
{
    // Two 4-bit fields per byte, first field in the LOW nibble —
    // exactly core::PackedCe's packing. Pin the bit order by writing
    // nibble values through the BitWriter and packing the same values
    // the v3 way.
    Rng rng(2);
    std::vector<uint8_t> nibbles;
    encode::BitWriter bw;
    for (int k = 0; k < 31; ++k) {  // odd count exercises the pad
        const uint8_t v = (uint8_t)rng.integer(0, 15);
        nibbles.push_back(v);
        bw.writeBits(v, 4);
    }
    bw.alignToByte();
    const std::vector<uint8_t> &got = bw.bytes();

    std::vector<uint8_t> expect((nibbles.size() + 1) / 2, 0);
    for (size_t k = 0; k < nibbles.size(); ++k)
        expect[k / 2] |= (uint8_t)(nibbles[k] << ((k & 1) ? 4 : 0));
    ASSERT_EQ(got.size(), expect.size());
    EXPECT_EQ(std::memcmp(got.data(), expect.data(), got.size()), 0);
}

// ------------------------------------------- v4 vs v3 differential

/** A random SmartExchange-form matrix built directly (no ALS). */
core::SeMatrix
randomSeMatrix(Rng &rng)
{
    core::SeMatrix m;
    const int64_t rows = rng.integer(1, 40);
    const int64_t rank = rng.integer(1, 6);
    const int64_t cols = rng.integer(1, 6);
    m.alphabet.expMax = (int)rng.integer(-8, 8);
    m.alphabet.numLevels = (int)rng.integer(1, 7);
    m.iterations = (int)rng.integer(0, 30);
    m.reconRelError = rng.uniform(0.0f, 0.5f);
    m.ce = Tensor({rows, rank});
    for (int64_t i = 0; i < m.ce.size(); ++i) {
        if (rng.chance(0.4))
            continue;
        const int exp = (int)rng.integer(m.alphabet.expMin(),
                                         m.alphabet.expMax);
        const float mag = std::ldexp(1.0f, exp);
        m.ce[i] = rng.chance(0.5) ? mag : -mag;
    }
    m.basis = randn({rank, cols}, rng, 0.0f, 1.0f);
    return m;
}

void
expectRecordsBitIdentical(
    const std::vector<core::SeLayerRecord> &a,
    const std::vector<core::SeLayerRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t r = 0; r < a.size(); ++r) {
        EXPECT_EQ(a[r].name, b[r].name);
        ASSERT_EQ(a[r].pieces.size(), b[r].pieces.size());
        for (size_t k = 0; k < a[r].pieces.size(); ++k) {
            const core::SeMatrix &x = a[r].pieces[k];
            const core::SeMatrix &y = b[r].pieces[k];
            ASSERT_EQ(x.ce.shape(), y.ce.shape());
            ASSERT_EQ(x.basis.shape(), y.basis.shape());
            EXPECT_EQ(std::memcmp(x.ce.data(), y.ce.data(),
                                  (size_t)x.ce.size() * sizeof(float)),
                      0);
            EXPECT_EQ(
                std::memcmp(y.basis.data(), x.basis.data(),
                            (size_t)x.basis.size() * sizeof(float)),
                0);
            EXPECT_EQ(x.alphabet.expMax, y.alphabet.expMax);
            EXPECT_EQ(x.alphabet.numLevels, y.alphabet.numLevels);
        }
    }
}

TEST(BitstreamDifferential, V4DecodeBitIdenticalToV3)
{
    // Same records (bases quantized once, shared by both saves),
    // shipped as v3 and as v4: the two loaders must hand back the
    // same bits, coefficient for coefficient, basis for basis.
    Rng rng(3);
    for (int round = 0; round < 10; ++round) {
        std::vector<core::SeLayerRecord> records;
        records.push_back({"a", {randomSeMatrix(rng)}});
        records.push_back(
            {"b", {randomSeMatrix(rng), randomSeMatrix(rng)}});
        core::quantizeBasisAtCompress(records);

        std::stringstream v3, v4;
        core::saveModelV3(v3, records);
        core::saveModelV4(v4, records);
        const core::ModelBundle b3 = core::loadModelBundle(v3);
        const core::ModelBundle b4 = core::loadModelBundle(v4);
        expectRecordsBitIdentical(b3.records, b4.records);
        expectRecordsBitIdentical(records, b4.records);

        // And the reconstructions (what serving actually computes)
        // are bitwise equal as a consequence.
        for (size_t r = 0; r < b3.records.size(); ++r)
            for (size_t k = 0; k < b3.records[r].pieces.size(); ++k) {
                const Tensor w3 =
                    b3.records[r].pieces[k].reconstruct();
                const Tensor w4 =
                    b4.records[r].pieces[k].reconstruct();
                EXPECT_EQ(std::memcmp(w3.data(), w4.data(),
                                      (size_t)w3.size() *
                                          sizeof(float)),
                          0);
            }
    }
}

TEST(BitstreamDifferential, V4DenseResidualMatchesV3)
{
    Rng rng(4);
    std::vector<core::SeLayerRecord> records;
    records.push_back({"conv", {randomSeMatrix(rng)}});
    core::quantizeBasisAtCompress(records);
    const std::vector<core::DenseTensor> dense{
        {"0:bn:gamma", randn({8}, rng)},
        {"1:conv:bias", randn({4}, rng)}};

    std::stringstream v3, v4;
    core::saveModelV3(v3, records, dense);
    core::saveModelV4(v4, records, dense);
    const core::ModelBundle b3 = core::loadModelBundle(v3);
    const core::ModelBundle b4 = core::loadModelBundle(v4);
    ASSERT_EQ(b3.dense.size(), b4.dense.size());
    for (size_t i = 0; i < b3.dense.size(); ++i) {
        EXPECT_EQ(b3.dense[i].name, b4.dense[i].name);
        ASSERT_EQ(b3.dense[i].value.shape(), b4.dense[i].value.shape());
        EXPECT_EQ(std::memcmp(b3.dense[i].value.data(),
                              b4.dense[i].value.data(),
                              (size_t)b3.dense[i].value.size() *
                                  sizeof(float)),
                  0);
    }
}

} // namespace
} // namespace se
