/**
 * @file
 * Round-trip property tests for the sparse encodings: every encoder
 * must decode back to the original data, for random sparsity patterns
 * and code widths.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "encode/encoding.hh"

namespace se {
namespace {

using encode::bitmapDecode;
using encode::bitmapPayload;
using encode::directBitmap;
using encode::runLengthDecode;
using encode::runLengthEncode;
using encode::runLengthPayload;

std::vector<float>
randomSparseVector(int64_t len, double sparsity, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v((size_t)len);
    for (auto &x : v)
        x = rng.chance(sparsity) ? 0.0f : rng.gaussian();
    return v;
}

TEST(BitmapRoundTrip, Simple)
{
    const std::vector<float> v{0, 1.5f, 0, -2.0f, 0, 0, 3.25f};
    auto bm = directBitmap(v);
    auto payload = bitmapPayload(v);
    auto back = bitmapDecode(bm, payload);
    ASSERT_EQ(back.size(), v.size());
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_FLOAT_EQ(back[i], v[i]);
}

TEST(BitmapRoundTrip, PayloadLengthMismatchDies)
{
    encode::Bitmap bm{{1, 0, 1}};
    EXPECT_DEATH(bitmapDecode(bm, {1.0f}), "payload");
    EXPECT_DEATH(bitmapDecode(bm, {1.0f, 2.0f, 3.0f}), "payload");
}

TEST(RlcRoundTrip, WithPadding)
{
    // Long zero runs force padding entries; the round trip must still
    // be exact.
    std::vector<float> v(40, 0.0f);
    v[25] = 4.0f;
    v[39] = -1.0f;
    auto rl = runLengthEncode(v, 3);
    auto payload = runLengthPayload(v, 3);
    auto back = runLengthDecode(rl, payload, (int64_t)v.size());
    ASSERT_EQ(back.size(), v.size());
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_FLOAT_EQ(back[i], v[i]) << i;
}

TEST(RlcRoundTrip, TrailingZerosRestored)
{
    const std::vector<float> v{1.0f, 0, 0, 0, 0};
    auto rl = runLengthEncode(v, 4);
    auto payload = runLengthPayload(v, 4);
    auto back = runLengthDecode(rl, payload, 5);
    EXPECT_FLOAT_EQ(back[0], 1.0f);
    for (size_t i = 1; i < 5; ++i)
        EXPECT_FLOAT_EQ(back[i], 0.0f);
}

/** Sweep sparsity levels and code widths. */
struct RtParam
{
    double sparsity;
    int codeBits;
};

class RoundTripSweep : public ::testing::TestWithParam<RtParam>
{
};

TEST_P(RoundTripSweep, RlcExactForRandomPatterns)
{
    const auto [sparsity, code_bits] = GetParam();
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        auto v = randomSparseVector(257, sparsity, seed);
        auto rl = runLengthEncode(v, code_bits);
        auto payload = runLengthPayload(v, code_bits);
        auto back =
            runLengthDecode(rl, payload, (int64_t)v.size());
        ASSERT_EQ(back.size(), v.size());
        for (size_t i = 0; i < v.size(); ++i)
            ASSERT_FLOAT_EQ(back[i], v[i])
                << "seed " << seed << " i " << i;
    }
}

TEST_P(RoundTripSweep, BitmapExactForRandomPatterns)
{
    const auto [sparsity, code_bits] = GetParam();
    (void)code_bits;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        auto v = randomSparseVector(211, sparsity, seed);
        auto back =
            bitmapDecode(directBitmap(v), bitmapPayload(v));
        for (size_t i = 0; i < v.size(); ++i)
            ASSERT_FLOAT_EQ(back[i], v[i]);
    }
}

TEST_P(RoundTripSweep, StorageComparisonFavoursRightEncodingBySparsity)
{
    const auto [sparsity, code_bits] = GetParam();
    auto v = randomSparseVector(4096, sparsity, 9);
    auto rl = runLengthEncode(v, code_bits);
    auto bm = directBitmap(v);
    const int64_t nnz = (int64_t)bitmapPayload(v).size();
    const int64_t rlc_bits = rl.storageBits() + nnz * 8;
    const int64_t bm_bits = bm.storageBits() + nnz * 8;
    // At very high sparsity RLC beats the bitmap; at low sparsity the
    // bitmap is never much worse than RLC.
    if (sparsity >= 0.9 && code_bits >= 4) {
        EXPECT_LT(rlc_bits, bm_bits);
    }
    if (sparsity <= 0.3) {
        EXPECT_LE(bm_bits, rlc_bits + 4096);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, RoundTripSweep,
    ::testing::Values(RtParam{0.0, 4}, RtParam{0.3, 4},
                      RtParam{0.6, 4}, RtParam{0.9, 4},
                      RtParam{0.97, 4}, RtParam{0.9, 2},
                      RtParam{0.9, 6}));

} // namespace
} // namespace se
