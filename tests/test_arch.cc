/**
 * @file
 * Tests of the functional hardware component models: the bit-serial
 * Booth MAC (exactness vs plain multiplication, cycle counts), the
 * rebuild engine (exact Ce*B restoration via shift-and-add, ping-pong
 * stall hiding), FIFOs, the streaming index selector, the PE-line 1D
 * convolution, and the end-to-end functional engine validated against
 * the NN framework's convolution.
 */

#include <gtest/gtest.h>

#include "arch/bit_serial_mac.hh"
#include "arch/engine.hh"
#include "arch/fifo.hh"
#include "arch/index_selector.hh"
#include "arch/pe_line.hh"
#include "arch/rebuild_engine.hh"
#include "base/random.hh"
#include "core/apply.hh"
#include "linalg/linalg.hh"
#include "nn/layers.hh"
#include "quant/quant.hh"

namespace se {
namespace {

using arch::BitSerialMac;
using arch::DoubleBuffer;
using arch::Fifo;
using arch::IndexSelector;
using arch::RebuildEngine;
using arch::RebuildEnginePair;

TEST(BitSerialMacTest, ExactForAll8BitPairs)
{
    for (int a = -128; a <= 127; a += 3)
        for (int w = -128; w <= 127; w += 7) {
            auto p = BitSerialMac::multiply(a, w, 8);
            EXPECT_EQ(p.value, (int64_t)a * w)
                << "a=" << a << " w=" << w;
        }
}

TEST(BitSerialMacTest, CyclesEqualNonzeroBoothDigits)
{
    for (int a : {0, 1, -1, 5, 127, -128, 64, 85}) {
        auto p = BitSerialMac::multiply(a, 3, 8);
        const int expected =
            std::max(1, quant::boothNonzeroDigits(a, 8));
        EXPECT_EQ(p.cycles, expected) << "a=" << a;
    }
}

TEST(BitSerialMacTest, SparseActivationsAreFaster)
{
    // A power-of-two activation needs fewer cycles than a dense one.
    auto sparse = BitSerialMac::multiply(64, 93, 8);
    auto dense = BitSerialMac::multiply(85, 93, 8);  // 0b01010101
    EXPECT_LT(sparse.cycles, dense.cycles);
}

TEST(BitSerialMacTest, AccumulatorSums)
{
    BitSerialMac mac;
    mac.accumulate(BitSerialMac::multiply(3, 4).value);
    mac.accumulate(BitSerialMac::multiply(-2, 10).value);
    EXPECT_EQ(mac.partialSum(), 12 - 20);
    mac.reset();
    EXPECT_EQ(mac.partialSum(), 0);
}

TEST(RebuildEngineTest, ExactRebuildFromPow2Coefficients)
{
    Rng rng(1);
    Tensor basis = randn({3, 3}, rng);
    RebuildEngine re;
    re.loadBasis(basis);

    const std::vector<float> ce_row{0.25f, 0.0f, -0.5f};
    auto w = re.rebuildRow(ce_row);
    for (int64_t k = 0; k < 3; ++k) {
        const float expect =
            0.25f * basis.at(0, k) - 0.5f * basis.at(2, k);
        EXPECT_FLOAT_EQ(w[(size_t)k], expect);
    }
}

TEST(RebuildEngineTest, CycleAccounting)
{
    Rng rng(2);
    Tensor basis = randn({3, 3}, rng);
    RebuildEngine re;
    re.loadBasis(basis);
    EXPECT_EQ(re.cyclesUsed(), 9);  // 3x3 load
    re.rebuildRow({0.5f, -1.0f, 0.0f});
    EXPECT_EQ(re.cyclesUsed(), 9 + 2 * 3);  // 2 nnz coeffs x 3 cols
    re.rebuildRow({0.0f, 0.0f, 0.0f});
    EXPECT_EQ(re.cyclesUsed(), 9 + 6 + 1);  // zero-row bypass
}

TEST(RebuildEngineTest, RejectsNonPow2Coefficient)
{
    Rng rng(3);
    Tensor basis = randn({3, 3}, rng);
    RebuildEngine re;
    re.loadBasis(basis);
    EXPECT_DEATH(re.rebuildRow({0.3f, 0.0f, 0.0f}), "power of two");
}

TEST(RebuildEngineTest, PingPongHidesLoadBehindCompute)
{
    Rng rng(4);
    Tensor basis = randn({3, 3}, rng);
    RebuildEnginePair pair;
    pair.prefetchBasis(basis);
    // Plenty of foreground compute since the prefetch: no stall.
    EXPECT_EQ(pair.swap(100), 0);
    pair.prefetchBasis(basis);
    // Only 2 cycles elapsed: 9 - 2 = 7 stall cycles exposed.
    EXPECT_EQ(pair.swap(2), 7);
    EXPECT_EQ(pair.stalls(), 7);
}

TEST(FifoTest, FifoOrderAndCapacity)
{
    Fifo<int> f(3);
    EXPECT_TRUE(f.empty());
    EXPECT_TRUE(f.push(1));
    EXPECT_TRUE(f.push(2));
    EXPECT_TRUE(f.push(3));
    EXPECT_TRUE(f.full());
    EXPECT_FALSE(f.push(4));  // dropped
    EXPECT_EQ(f.pop(), 1);
    EXPECT_TRUE(f.push(4));
    EXPECT_EQ(f.pop(), 2);
    EXPECT_EQ(f.pop(), 3);
    EXPECT_EQ(f.pop(), 4);
    EXPECT_TRUE(f.empty());
}

TEST(FifoTest, PeekDoesNotConsume)
{
    Fifo<int> f(4);
    f.push(7);
    f.push(8);
    EXPECT_EQ(f.peek(0), 7);
    EXPECT_EQ(f.peek(1), 8);
    EXPECT_EQ(f.size(), 2u);
}

TEST(FifoTest, PopEmptyDies)
{
    Fifo<int> f(2);
    EXPECT_DEATH(f.pop(), "empty");
}

TEST(DoubleBufferTest, CleanSwapWhenReady)
{
    DoubleBuffer<int> db;
    db.fill({1, 2, 3});
    EXPECT_TRUE(db.ready());
    EXPECT_TRUE(db.swap());
    EXPECT_EQ(db.current().size(), 3u);
    // No refill: the next swap reports a stall.
    EXPECT_FALSE(db.swap());
}

TEST(IndexSelectorTest, SelectsIntersection)
{
    IndexSelector sel({1, 0, 1, 1, 0, 1}, {1, 1, 0, 1, 0, 1});
    auto picks = sel.selectAll();
    ASSERT_EQ(picks.size(), 3u);
    EXPECT_EQ(picks[0], 0);
    EXPECT_EQ(picks[1], 3);
    EXPECT_EQ(picks[2], 5);
    // One cycle per examined position.
    EXPECT_EQ(sel.cyclesUsed(), 6);
}

TEST(IndexSelectorTest, StreamingNextInterface)
{
    IndexSelector sel({0, 1, 0}, {1, 1, 1});
    auto p = sel.next();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, 1);
    EXPECT_FALSE(sel.next().has_value());
}

TEST(PeLineTest, MatchesReference1dConv)
{
    // out[f] = sum_s w[s] * in[f * stride + s], exact integers.
    const std::vector<int32_t> w{2, -1, 3};
    const std::vector<int32_t> in{1, 4, -2, 0, 5, 7, -3};
    arch::PeLineConfig cfg{8, 8};
    auto res = arch::conv1d(w, in, 5, 1, cfg);
    for (int64_t f = 0; f < 5; ++f) {
        int64_t expect = 0;
        for (int64_t s = 0; s < 3; ++s)
            expect += (int64_t)w[(size_t)s] * in[(size_t)(f + s)];
        EXPECT_EQ(res.outputs[(size_t)f], expect) << "f=" << f;
    }
    EXPECT_GT(res.cycles, 0);
}

TEST(PeLineTest, StridedConv)
{
    const std::vector<int32_t> w{1, 1, 1};
    const std::vector<int32_t> in{1, 2, 3, 4, 5, 6, 7};
    arch::PeLineConfig cfg{4, 8};
    auto res = arch::conv1d(w, in, 3, 2, cfg);
    EXPECT_EQ(res.outputs[0], 6);    // 1+2+3
    EXPECT_EQ(res.outputs[1], 12);   // 3+4+5
    EXPECT_EQ(res.outputs[2], 18);   // 5+6+7
}

TEST(PeLineTest, ZeroWeightSlotsCostNothing)
{
    const std::vector<int32_t> in{9, 9, 9, 9, 9, 9};
    arch::PeLineConfig cfg{4, 8};
    auto dense = arch::conv1d({1, 1, 1}, in, 4, 1, cfg);
    auto sparse = arch::conv1d({1, 0, 0}, in, 4, 1, cfg);
    EXPECT_LT(sparse.cycles, dense.cycles);
}

TEST(PeLineTest, LaneSynchronizationCost)
{
    // One dense activation in the group forces the whole group to its
    // digit count.
    arch::PeLineConfig cfg{4, 8};
    const std::vector<int32_t> all_sparse{64, 64, 64, 64, 64, 64};
    const std::vector<int32_t> one_dense{85, 64, 64, 64, 64, 64};
    auto fast = arch::conv1d({3, 3, 3}, all_sparse, 4, 1, cfg);
    auto slow = arch::conv1d({3, 3, 3}, one_dense, 4, 1, cfg);
    EXPECT_LT(fast.cycles, slow.cycles);
}

// --------------------------------------------------------------- engine

/** Build SE pieces for a small conv weight, one piece per filter. */
std::vector<core::SeMatrix>
makePieces(const Tensor &weight, double min_sparsity = 0.0)
{
    core::SeOptions opts;
    opts.vectorThreshold = 0.0;
    opts.minVectorSparsity = min_sparsity;
    core::ApplyOptions ao;
    return core::decomposeConvWeight(weight, opts, ao);
}

TEST(EngineTest, MatchesNnConvolutionWithinQuantization)
{
    Rng rng(10);
    const int64_t c = 4, m = 3, k = 3, hw = 8;
    nn::Conv2d conv(c, m, k, 1, 1, 1, rng, false);
    Tensor x = randn({1, c, hw, hw}, rng);

    auto pieces = makePieces(conv.weightTensor());
    arch::EngineConfig cfg;
    auto res = arch::runConvLayer(x, pieces, k, 1, 1, cfg);

    // Reference: float conv with the reconstructed (SE-form) weights.
    nn::Conv2d ref(c, m, k, 1, 1, 1, rng, false);
    {
        Tensor &wt = ref.weightTensor();
        for (int64_t f = 0; f < m; ++f) {
            Tensor rec = pieces[(size_t)f].reconstruct();
            for (int64_t cc = 0; cc < c; ++cc)
                for (int64_t kr = 0; kr < k; ++kr)
                    for (int64_t ks = 0; ks < k; ++ks)
                        wt.at(f, cc, kr, ks) =
                            rec.at(cc * k + kr, ks);
        }
    }
    Tensor y_ref = ref.forward(x, false);

    ASSERT_EQ(res.output.size(), y_ref.size());
    // 8-bit activations and weights: tolerance scales with the
    // accumulation depth.
    double max_abs = 0.0;
    for (int64_t i = 0; i < y_ref.size(); ++i)
        max_abs = std::max(max_abs, (double)std::abs(y_ref[i]));
    const double tol = std::max(0.05 * max_abs, 0.05);
    for (int64_t i = 0; i < y_ref.size(); ++i)
        EXPECT_NEAR(res.output[i], y_ref[i], tol) << "i=" << i;
}

TEST(EngineTest, VectorSkippingPreservesOutputOfZeroRows)
{
    Rng rng(11);
    const int64_t c = 4, m = 2, k = 3, hw = 6;
    nn::Conv2d conv(c, m, k, 1, 1, 1, rng, false);
    auto pieces = makePieces(conv.weightTensor(), 0.5);

    arch::EngineConfig with, without;
    without.skipZeroRows = false;
    Tensor x = randn({1, c, hw, hw}, rng);
    auto a = arch::runConvLayer(x, pieces, k, 1, 1, with);
    auto b = arch::runConvLayer(x, pieces, k, 1, 1, without);

    // Identical numerics: skipping only avoids provably-zero work.
    for (int64_t i = 0; i < a.output.size(); ++i)
        EXPECT_FLOAT_EQ(a.output[i], b.output[i]);
    // And it saves cycles.
    EXPECT_LT(a.macCycles, b.macCycles);
    EXPECT_GT(a.rowsSkipped, 0);
}

TEST(EngineTest, CycleCountsScaleWithSparsity)
{
    Rng rng(12);
    const int64_t c = 6, m = 4, k = 3, hw = 8;
    nn::Conv2d conv(c, m, k, 1, 1, 1, rng, false);
    auto dense_pieces = makePieces(conv.weightTensor(), 0.0);
    auto sparse_pieces = makePieces(conv.weightTensor(), 0.6);
    Tensor x = randn({1, c, hw, hw}, rng);
    arch::EngineConfig cfg;
    auto dense = arch::runConvLayer(x, dense_pieces, k, 1, 1, cfg);
    auto sparse = arch::runConvLayer(x, sparse_pieces, k, 1, 1, cfg);
    EXPECT_LT(sparse.macCycles, dense.macCycles);
    EXPECT_LT(sparse.rowsProcessed, dense.rowsProcessed);
}

TEST(EngineTest, PingPongKeepsStallsSmall)
{
    Rng rng(13);
    const int64_t c = 8, m = 6, k = 3, hw = 8;
    nn::Conv2d conv(c, m, k, 1, 1, 1, rng, false);
    auto pieces = makePieces(conv.weightTensor());
    Tensor x = randn({1, c, hw, hw}, rng);
    arch::EngineConfig cfg;
    auto res = arch::runConvLayer(x, pieces, k, 1, 1, cfg);
    // Only the first basis load is exposed; later loads hide behind
    // the previous filter's compute.
    EXPECT_LE(res.reStallCycles, k * k);
    EXPECT_GT(res.macCycles, 0);
}

TEST(EngineTest, StridedAndPaddedGeometry)
{
    Rng rng(14);
    const int64_t c = 3, m = 2, k = 3, hw = 9;
    nn::Conv2d conv(c, m, k, 2, 1, 1, rng, false);
    auto pieces = makePieces(conv.weightTensor());
    Tensor x = randn({1, c, hw, hw}, rng);
    arch::EngineConfig cfg;
    auto res = arch::runConvLayer(x, pieces, k, 2, 1, cfg);
    EXPECT_EQ(res.output.dim(2), (hw + 2 - k) / 2 + 1);
    EXPECT_EQ(res.output.dim(3), (hw + 2 - k) / 2 + 1);
}

} // namespace
} // namespace se
